
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/concolic/CMakeFiles/dart_concolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dart_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/dart_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dart_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dart_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/dart_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/dart_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/dart_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/dart_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
