# Empty compiler generated dependencies file for concolic_test.
# This may be replaced when dependencies are built.
