file(REMOVE_RECURSE
  "CMakeFiles/concolic_test.dir/concolic_test.cpp.o"
  "CMakeFiles/concolic_test.dir/concolic_test.cpp.o.d"
  "concolic_test"
  "concolic_test.pdb"
  "concolic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concolic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
