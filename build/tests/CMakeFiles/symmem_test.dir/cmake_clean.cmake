file(REMOVE_RECURSE
  "CMakeFiles/symmem_test.dir/symmem_test.cpp.o"
  "CMakeFiles/symmem_test.dir/symmem_test.cpp.o.d"
  "symmem_test"
  "symmem_test.pdb"
  "symmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
