# Empty dependencies file for symmem_test.
# This may be replaced when dependencies are built.
