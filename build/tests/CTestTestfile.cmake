# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/symmem_test[1]_include.cmake")
include("/root/repo/build/tests/concolic_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/switch_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/domains_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
