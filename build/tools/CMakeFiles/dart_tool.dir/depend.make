# Empty dependencies file for dart_tool.
# This may be replaced when dependencies are built.
