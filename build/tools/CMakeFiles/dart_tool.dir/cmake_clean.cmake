file(REMOVE_RECURSE
  "CMakeFiles/dart_tool.dir/dart_tool.cpp.o"
  "CMakeFiles/dart_tool.dir/dart_tool.cpp.o.d"
  "dart"
  "dart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
