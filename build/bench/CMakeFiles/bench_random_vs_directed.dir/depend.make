# Empty dependencies file for bench_random_vs_directed.
# This may be replaced when dependencies are built.
