file(REMOVE_RECURSE
  "CMakeFiles/bench_random_vs_directed.dir/bench_random_vs_directed.cpp.o"
  "CMakeFiles/bench_random_vs_directed.dir/bench_random_vs_directed.cpp.o.d"
  "bench_random_vs_directed"
  "bench_random_vs_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_vs_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
