# Empty compiler generated dependencies file for bench_osip.
# This may be replaced when dependencies are built.
