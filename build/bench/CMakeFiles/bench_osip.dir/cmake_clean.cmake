file(REMOVE_RECURSE
  "CMakeFiles/bench_osip.dir/bench_osip.cpp.o"
  "CMakeFiles/bench_osip.dir/bench_osip.cpp.o.d"
  "bench_osip"
  "bench_osip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_osip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
