file(REMOVE_RECURSE
  "CMakeFiles/bench_ac_controller.dir/bench_ac_controller.cpp.o"
  "CMakeFiles/bench_ac_controller.dir/bench_ac_controller.cpp.o.d"
  "bench_ac_controller"
  "bench_ac_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ac_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
