# Empty compiler generated dependencies file for bench_ac_controller.
# This may be replaced when dependencies are built.
