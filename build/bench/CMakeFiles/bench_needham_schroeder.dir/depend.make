# Empty dependencies file for bench_needham_schroeder.
# This may be replaced when dependencies are built.
