file(REMOVE_RECURSE
  "CMakeFiles/bench_needham_schroeder.dir/bench_needham_schroeder.cpp.o"
  "CMakeFiles/bench_needham_schroeder.dir/bench_needham_schroeder.cpp.o.d"
  "bench_needham_schroeder"
  "bench_needham_schroeder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_needham_schroeder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
