# Empty compiler generated dependencies file for sip_audit.
# This may be replaced when dependencies are built.
