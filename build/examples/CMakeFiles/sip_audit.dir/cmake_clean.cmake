file(REMOVE_RECURSE
  "CMakeFiles/sip_audit.dir/sip_audit.cpp.o"
  "CMakeFiles/sip_audit.dir/sip_audit.cpp.o.d"
  "sip_audit"
  "sip_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
