file(REMOVE_RECURSE
  "CMakeFiles/ac_controller.dir/ac_controller.cpp.o"
  "CMakeFiles/ac_controller.dir/ac_controller.cpp.o.d"
  "ac_controller"
  "ac_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
