# Empty dependencies file for ac_controller.
# This may be replaced when dependencies are built.
