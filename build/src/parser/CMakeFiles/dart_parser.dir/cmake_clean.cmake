file(REMOVE_RECURSE
  "CMakeFiles/dart_parser.dir/Parser.cpp.o"
  "CMakeFiles/dart_parser.dir/Parser.cpp.o.d"
  "libdart_parser.a"
  "libdart_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
