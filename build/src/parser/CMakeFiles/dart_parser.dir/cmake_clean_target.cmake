file(REMOVE_RECURSE
  "libdart_parser.a"
)
