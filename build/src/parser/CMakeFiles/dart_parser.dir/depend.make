# Empty dependencies file for dart_parser.
# This may be replaced when dependencies are built.
