file(REMOVE_RECURSE
  "libdart_concolic.a"
)
