file(REMOVE_RECURSE
  "CMakeFiles/dart_concolic.dir/Concolic.cpp.o"
  "CMakeFiles/dart_concolic.dir/Concolic.cpp.o.d"
  "CMakeFiles/dart_concolic.dir/PathSearch.cpp.o"
  "CMakeFiles/dart_concolic.dir/PathSearch.cpp.o.d"
  "CMakeFiles/dart_concolic.dir/SymbolicMemory.cpp.o"
  "CMakeFiles/dart_concolic.dir/SymbolicMemory.cpp.o.d"
  "libdart_concolic.a"
  "libdart_concolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_concolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
