# Empty dependencies file for dart_concolic.
# This may be replaced when dependencies are built.
