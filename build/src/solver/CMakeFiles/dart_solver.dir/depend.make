# Empty dependencies file for dart_solver.
# This may be replaced when dependencies are built.
