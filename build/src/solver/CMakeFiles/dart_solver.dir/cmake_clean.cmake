file(REMOVE_RECURSE
  "CMakeFiles/dart_solver.dir/LinearSolver.cpp.o"
  "CMakeFiles/dart_solver.dir/LinearSolver.cpp.o.d"
  "libdart_solver.a"
  "libdart_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
