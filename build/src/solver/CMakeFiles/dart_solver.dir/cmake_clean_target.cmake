file(REMOVE_RECURSE
  "libdart_solver.a"
)
