# Empty dependencies file for dart_sema.
# This may be replaced when dependencies are built.
