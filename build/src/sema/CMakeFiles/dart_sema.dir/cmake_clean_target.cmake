file(REMOVE_RECURSE
  "libdart_sema.a"
)
