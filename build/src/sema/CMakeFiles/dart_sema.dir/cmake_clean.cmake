file(REMOVE_RECURSE
  "CMakeFiles/dart_sema.dir/Sema.cpp.o"
  "CMakeFiles/dart_sema.dir/Sema.cpp.o.d"
  "libdart_sema.a"
  "libdart_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
