# Empty dependencies file for dart_ast.
# This may be replaced when dependencies are built.
