file(REMOVE_RECURSE
  "CMakeFiles/dart_ast.dir/AST.cpp.o"
  "CMakeFiles/dart_ast.dir/AST.cpp.o.d"
  "CMakeFiles/dart_ast.dir/ASTPrinter.cpp.o"
  "CMakeFiles/dart_ast.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/dart_ast.dir/Type.cpp.o"
  "CMakeFiles/dart_ast.dir/Type.cpp.o.d"
  "libdart_ast.a"
  "libdart_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
