file(REMOVE_RECURSE
  "libdart_ast.a"
)
