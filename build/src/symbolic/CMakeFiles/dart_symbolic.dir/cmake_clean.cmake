file(REMOVE_RECURSE
  "CMakeFiles/dart_symbolic.dir/SymExpr.cpp.o"
  "CMakeFiles/dart_symbolic.dir/SymExpr.cpp.o.d"
  "libdart_symbolic.a"
  "libdart_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
