# Empty compiler generated dependencies file for dart_symbolic.
# This may be replaced when dependencies are built.
