file(REMOVE_RECURSE
  "libdart_symbolic.a"
)
