file(REMOVE_RECURSE
  "libdart_support.a"
)
