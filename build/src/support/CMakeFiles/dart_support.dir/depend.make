# Empty dependencies file for dart_support.
# This may be replaced when dependencies are built.
