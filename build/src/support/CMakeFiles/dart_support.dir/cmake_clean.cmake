file(REMOVE_RECURSE
  "CMakeFiles/dart_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/dart_support.dir/Diagnostics.cpp.o.d"
  "libdart_support.a"
  "libdart_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
