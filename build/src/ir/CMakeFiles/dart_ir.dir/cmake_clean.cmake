file(REMOVE_RECURSE
  "CMakeFiles/dart_ir.dir/IR.cpp.o"
  "CMakeFiles/dart_ir.dir/IR.cpp.o.d"
  "CMakeFiles/dart_ir.dir/Lowering.cpp.o"
  "CMakeFiles/dart_ir.dir/Lowering.cpp.o.d"
  "libdart_ir.a"
  "libdart_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
