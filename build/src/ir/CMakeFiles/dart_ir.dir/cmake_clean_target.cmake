file(REMOVE_RECURSE
  "libdart_ir.a"
)
