# Empty compiler generated dependencies file for dart_ir.
# This may be replaced when dependencies are built.
