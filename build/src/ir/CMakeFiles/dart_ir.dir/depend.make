# Empty dependencies file for dart_ir.
# This may be replaced when dependencies are built.
