# Empty dependencies file for dart_lexer.
# This may be replaced when dependencies are built.
