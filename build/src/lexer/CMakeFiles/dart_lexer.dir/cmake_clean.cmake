file(REMOVE_RECURSE
  "CMakeFiles/dart_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/dart_lexer.dir/Lexer.cpp.o.d"
  "libdart_lexer.a"
  "libdart_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
