file(REMOVE_RECURSE
  "libdart_lexer.a"
)
