# Empty compiler generated dependencies file for dart_interp.
# This may be replaced when dependencies are built.
