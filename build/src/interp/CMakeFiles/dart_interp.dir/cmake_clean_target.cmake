file(REMOVE_RECURSE
  "libdart_interp.a"
)
