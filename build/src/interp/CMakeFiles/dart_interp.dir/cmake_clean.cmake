file(REMOVE_RECURSE
  "CMakeFiles/dart_interp.dir/Interp.cpp.o"
  "CMakeFiles/dart_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/dart_interp.dir/Memory.cpp.o"
  "CMakeFiles/dart_interp.dir/Memory.cpp.o.d"
  "libdart_interp.a"
  "libdart_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
