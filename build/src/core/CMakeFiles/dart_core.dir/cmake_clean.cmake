file(REMOVE_RECURSE
  "CMakeFiles/dart_core.dir/Dart.cpp.o"
  "CMakeFiles/dart_core.dir/Dart.cpp.o.d"
  "CMakeFiles/dart_core.dir/DartEngine.cpp.o"
  "CMakeFiles/dart_core.dir/DartEngine.cpp.o.d"
  "CMakeFiles/dart_core.dir/Interface.cpp.o"
  "CMakeFiles/dart_core.dir/Interface.cpp.o.d"
  "CMakeFiles/dart_core.dir/TestDriver.cpp.o"
  "CMakeFiles/dart_core.dir/TestDriver.cpp.o.d"
  "libdart_core.a"
  "libdart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
