# Empty dependencies file for dart_workloads.
# This may be replaced when dependencies are built.
