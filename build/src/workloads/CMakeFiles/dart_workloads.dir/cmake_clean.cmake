file(REMOVE_RECURSE
  "CMakeFiles/dart_workloads.dir/AcController.cpp.o"
  "CMakeFiles/dart_workloads.dir/AcController.cpp.o.d"
  "CMakeFiles/dart_workloads.dir/MiniSip.cpp.o"
  "CMakeFiles/dart_workloads.dir/MiniSip.cpp.o.d"
  "CMakeFiles/dart_workloads.dir/NeedhamSchroeder.cpp.o"
  "CMakeFiles/dart_workloads.dir/NeedhamSchroeder.cpp.o.d"
  "libdart_workloads.a"
  "libdart_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
