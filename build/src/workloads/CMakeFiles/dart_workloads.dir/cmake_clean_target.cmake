file(REMOVE_RECURSE
  "libdart_workloads.a"
)
