
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/AcController.cpp" "src/workloads/CMakeFiles/dart_workloads.dir/AcController.cpp.o" "gcc" "src/workloads/CMakeFiles/dart_workloads.dir/AcController.cpp.o.d"
  "/root/repo/src/workloads/MiniSip.cpp" "src/workloads/CMakeFiles/dart_workloads.dir/MiniSip.cpp.o" "gcc" "src/workloads/CMakeFiles/dart_workloads.dir/MiniSip.cpp.o.d"
  "/root/repo/src/workloads/NeedhamSchroeder.cpp" "src/workloads/CMakeFiles/dart_workloads.dir/NeedhamSchroeder.cpp.o" "gcc" "src/workloads/CMakeFiles/dart_workloads.dir/NeedhamSchroeder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
