//===- Parser.h - MiniC recursive-descent parser ----------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC with precedence-climbing expression
/// parsing and panic-mode error recovery. Produces the AST of src/ast; sema
/// (src/sema) performs all name/type resolution afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef DART_PARSER_PARSER_H
#define DART_PARSER_PARSER_H

#include "ast/AST.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace dart {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticsEngine &Diags);

  /// Parses a whole program. Always returns a tree (possibly partial);
  /// check Diags.hasErrors() before using it.
  std::unique_ptr<TranslationUnit> parseTranslationUnit();

  /// Convenience: lex + parse in one step.
  static std::unique_ptr<TranslationUnit>
  parse(std::string_view Source, DiagnosticsEngine &Diags);

private:
  // Token cursor.
  const Token &peek(unsigned LookAhead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind K) const { return current().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void synchronizeToDeclBoundary();
  void synchronizeToStmtBoundary();

  // Types.
  bool startsType(const Token &Tok) const;
  /// Parses a type specifier plus pointer declarators ("struct s **").
  /// Returns null on error.
  const Type *parseTypeSpecifier();
  /// Parses trailing array suffixes "[N][M]" onto \p Base.
  const Type *parseArraySuffixes(const Type *Base);

  // Declarations.
  void parseTopLevelDecl(TranslationUnit &TU);
  void parseStructDecl(TranslationUnit &TU);
  std::unique_ptr<FunctionDecl> parseFunctionRest(const Type *RetTy,
                                                  SourceLocation Loc,
                                                  std::string Name);

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseCompoundStmt();
  StmtPtr parseIfStmt();
  StmtPtr parseWhileStmt();
  StmtPtr parseDoWhileStmt();
  StmtPtr parseForStmt();
  StmtPtr parseSwitchStmt();
  StmtPtr parseReturnStmt();
  /// Parses "type declarator [= init] {, declarator [= init]};" into one or
  /// more DeclStmts appended to \p Out. Used in blocks.
  void parseLocalDecl(std::vector<StmtPtr> &Out);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();           // assignment expression (no comma operator)
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrecedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  /// Registers a struct name so `struct foo;` forward refs resolve. Struct
  /// identity is by name within one translation unit.
  StructDecl *lookupOrCreateStruct(const std::string &Name,
                                   SourceLocation Loc);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticsEngine &Diags;
  TranslationUnit *TU = nullptr;
  // Owned by the TranslationUnit once parsing finishes; struct decls are
  // appended to the TU as they are created so forward references work.
  std::vector<StructDecl *> KnownStructs;
};

} // namespace dart

#endif // DART_PARSER_PARSER_H
