//===- Parser.cpp - MiniC recursive-descent parser ------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "lexer/Lexer.h"

#include <cassert>

using namespace dart;

Parser::Parser(std::vector<Token> Tokens, DiagnosticsEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

std::unique_ptr<TranslationUnit> Parser::parse(std::string_view Source,
                                               DiagnosticsEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseTranslationUnit();
}

const Token &Parser::peek(unsigned LookAhead) const {
  size_t Index = Pos + LookAhead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof
  return Tokens[Index];
}

Token Parser::advance() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(K) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::synchronizeToDeclBoundary() {
  // Skip to something that plausibly starts a new top-level declaration.
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace)) {
      advance();
      accept(TokenKind::Semi);
      return;
    }
    advance();
  }
}

void Parser::synchronizeToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace))
      return;
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType(const Token &Tok) const {
  switch (Tok.Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwChar:
  case TokenKind::KwUnsigned:
  case TokenKind::KwLong:
  case TokenKind::KwVoid:
  case TokenKind::KwStruct:
    return true;
  default:
    return false;
  }
}

StructDecl *Parser::lookupOrCreateStruct(const std::string &Name,
                                         SourceLocation Loc) {
  for (StructDecl *S : KnownStructs)
    if (S->name() == Name)
      return S;
  auto Owned = std::make_unique<StructDecl>(Loc, Name);
  StructDecl *Raw = Owned.get();
  KnownStructs.push_back(Raw);
  TU->addDecl(std::move(Owned));
  return Raw;
}

const Type *Parser::parseTypeSpecifier() {
  TypeContext &Types = TU->types();
  const Type *Base = nullptr;
  switch (current().Kind) {
  case TokenKind::KwInt:
    advance();
    Base = Types.intType();
    break;
  case TokenKind::KwChar:
    advance();
    Base = Types.charType();
    break;
  case TokenKind::KwUnsigned:
    advance();
    accept(TokenKind::KwInt); // `unsigned int`
    Base = Types.unsignedType();
    break;
  case TokenKind::KwLong:
    advance();
    accept(TokenKind::KwInt); // `long int`
    Base = Types.longType();
    break;
  case TokenKind::KwVoid:
    advance();
    Base = Types.voidType();
    break;
  case TokenKind::KwStruct: {
    advance();
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected struct name after 'struct'");
      return nullptr;
    }
    Token Name = advance();
    Base = Types.structType(lookupOrCreateStruct(Name.Text, Name.Loc));
    break;
  }
  default:
    Diags.error(current().Loc, std::string("expected type, found ") +
                                   tokenKindName(current().Kind));
    return nullptr;
  }
  while (accept(TokenKind::Star))
    Base = Types.pointerTo(Base);
  return Base;
}

const Type *Parser::parseArraySuffixes(const Type *Base) {
  // Collect dimensions outside-in, then build the type inside-out so that
  // `int a[2][3]` is array-2 of array-3 of int.
  std::vector<uint64_t> Dims;
  while (accept(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLiteral)) {
      Diags.error(current().Loc, "expected constant array size");
      synchronizeToStmtBoundary();
      return Base;
    }
    Token Size = advance();
    if (Size.IntValue <= 0)
      Diags.error(Size.Loc, "array size must be positive");
    Dims.push_back(static_cast<uint64_t>(Size.IntValue));
    expect(TokenKind::RBracket, "after array size");
  }
  const Type *Result = Base;
  for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
    Result = TU->types().arrayOf(Result, *It);
  return Result;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<TranslationUnit> Parser::parseTranslationUnit() {
  auto Unit = std::make_unique<TranslationUnit>();
  TU = Unit.get();
  KnownStructs.clear();
  while (!check(TokenKind::Eof))
    parseTopLevelDecl(*Unit);
  TU = nullptr;
  return Unit;
}

void Parser::parseStructDecl(TranslationUnit &TU) {
  (void)TU;
  // Caller consumed nothing; current() is KwStruct with `{` after the name.
  advance(); // struct
  Token Name = advance();
  StructDecl *S = lookupOrCreateStruct(Name.Text, Name.Loc);
  advance(); // {
  if (S->isComplete())
    Diags.error(Name.Loc, "redefinition of struct '" + Name.Text + "'");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    const Type *FieldTy = parseTypeSpecifier();
    if (!FieldTy) {
      synchronizeToStmtBoundary();
      continue;
    }
    // One or more declarators per field line.
    for (;;) {
      const Type *ThisTy = FieldTy;
      while (accept(TokenKind::Star))
        ThisTy = this->TU->types().pointerTo(ThisTy);
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected field name");
        synchronizeToStmtBoundary();
        break;
      }
      Token FieldName = advance();
      ThisTy = parseArraySuffixes(ThisTy);
      S->addField(
          std::make_unique<FieldDecl>(FieldName.Loc, FieldName.Text, ThisTy));
      if (!accept(TokenKind::Comma))
        break;
    }
    expect(TokenKind::Semi, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct definition");
  expect(TokenKind::Semi, "after struct definition");
  S->setComplete();
}

void Parser::parseTopLevelDecl(TranslationUnit &TU) {
  // struct definition?
  if (check(TokenKind::KwStruct) && peek(1).is(TokenKind::Identifier) &&
      peek(2).is(TokenKind::LBrace)) {
    parseStructDecl(TU);
    return;
  }
  // `struct foo;` forward declaration.
  if (check(TokenKind::KwStruct) && peek(1).is(TokenKind::Identifier) &&
      peek(2).is(TokenKind::Semi)) {
    advance();
    Token Name = advance();
    advance();
    lookupOrCreateStruct(Name.Text, Name.Loc);
    return;
  }

  bool IsExtern = accept(TokenKind::KwExtern);
  if (!startsType(current())) {
    Diags.error(current().Loc,
                std::string("expected declaration, found ") +
                    tokenKindName(current().Kind));
    synchronizeToDeclBoundary();
    return;
  }
  const Type *BaseTy = parseTypeSpecifier();
  if (!BaseTy) {
    synchronizeToDeclBoundary();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected declarator name");
    synchronizeToDeclBoundary();
    return;
  }
  Token Name = advance();

  if (check(TokenKind::LParen)) {
    auto Fn = parseFunctionRest(BaseTy, Name.Loc, Name.Text);
    if (Fn)
      TU.addDecl(std::move(Fn));
    return;
  }

  // Global variable(s).
  for (;;) {
    const Type *VarTy = parseArraySuffixes(BaseTy);
    ExprPtr Init;
    if (accept(TokenKind::Eq))
      Init = parseAssignment();
    TU.addDecl(std::make_unique<VarDecl>(Name.Loc, Name.Text, VarTy,
                                         VarDecl::Storage::Global, IsExtern,
                                         std::move(Init)));
    if (!accept(TokenKind::Comma))
      break;
    // Further declarators may add their own stars.
    const Type *NextBase = BaseTy;
    while (accept(TokenKind::Star))
      NextBase = this->TU->types().pointerTo(NextBase);
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected declarator name after ','");
      synchronizeToDeclBoundary();
      return;
    }
    Name = advance();
    BaseTy = NextBase;
  }
  expect(TokenKind::Semi, "after global variable declaration");
}

std::unique_ptr<FunctionDecl>
Parser::parseFunctionRest(const Type *RetTy, SourceLocation Loc,
                          std::string Name) {
  auto Fn = std::make_unique<FunctionDecl>(Loc, std::move(Name), RetTy);
  expect(TokenKind::LParen, "in function declaration");
  if (!check(TokenKind::RParen) &&
      !(check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen))) {
    for (;;) {
      const Type *ParamTy = parseTypeSpecifier();
      if (!ParamTy) {
        synchronizeToStmtBoundary();
        return Fn;
      }
      std::string ParamName;
      SourceLocation ParamLoc = current().Loc;
      if (check(TokenKind::Identifier))
        ParamName = advance().Text;
      // Array parameters decay to pointers, as in C.
      ParamTy = parseArraySuffixes(ParamTy);
      if (const auto *A = dyn_cast<ArrayType>(ParamTy))
        ParamTy = TU->types().pointerTo(A->element());
      Fn->addParam(std::make_unique<VarDecl>(ParamLoc, ParamName, ParamTy,
                                             VarDecl::Storage::Param,
                                             /*IsExtern=*/false, nullptr));
      if (!accept(TokenKind::Comma))
        break;
    }
  } else {
    accept(TokenKind::KwVoid);
  }
  expect(TokenKind::RParen, "after parameter list");

  if (accept(TokenKind::Semi))
    return Fn; // prototype / external function

  if (!check(TokenKind::LBrace)) {
    Diags.error(current().Loc, "expected function body or ';'");
    synchronizeToDeclBoundary();
    return Fn;
  }
  Fn->setBody(parseCompoundStmt());
  return Fn;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Parser::parseLocalDecl(std::vector<StmtPtr> &Out) {
  SourceLocation Loc = current().Loc;
  const Type *BaseTy = parseTypeSpecifier();
  if (!BaseTy) {
    synchronizeToStmtBoundary();
    return;
  }
  for (;;) {
    const Type *VarTy = BaseTy;
    // parseTypeSpecifier consumed stars for the first declarator only.
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected variable name in declaration");
      synchronizeToStmtBoundary();
      return;
    }
    Token Name = advance();
    VarTy = parseArraySuffixes(VarTy);
    ExprPtr Init;
    if (accept(TokenKind::Eq))
      Init = parseAssignment();
    auto Var = std::make_unique<VarDecl>(Name.Loc, Name.Text, VarTy,
                                         VarDecl::Storage::Local,
                                         /*IsExtern=*/false, std::move(Init));
    Out.push_back(std::make_unique<DeclStmt>(Loc, std::move(Var)));
    if (!accept(TokenKind::Comma))
      break;
    // Subsequent declarators: strip array/pointer decorations of the first.
    const Type *Stripped = BaseTy;
    while (const auto *P = dyn_cast<PointerType>(Stripped))
      Stripped = P->pointee();
    BaseTy = Stripped;
    while (accept(TokenKind::Star))
      BaseTy = TU->types().pointerTo(BaseTy);
  }
  expect(TokenKind::Semi, "after variable declaration");
}

StmtPtr Parser::parseCompoundStmt() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::LBrace, "to open block");
  auto Block = std::make_unique<CompoundStmt>(Loc);
  std::vector<StmtPtr> Pending;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (startsType(current())) {
      Pending.clear();
      parseLocalDecl(Pending);
      for (auto &S : Pending)
        Block->addStmt(std::move(S));
      continue;
    }
    if (StmtPtr S = parseStmt())
      Block->addStmt(std::move(S));
  }
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseIfStmt() {
  SourceLocation Loc = advance().Loc; // if
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhileStmt() {
  SourceLocation Loc = advance().Loc; // while
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseDoWhileStmt() {
  SourceLocation Loc = advance().Loc; // do
  StmtPtr Body = parseStmt();
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while statement");
  return std::make_unique<DoWhileStmt>(Loc, std::move(Body), std::move(Cond));
}

StmtPtr Parser::parseForStmt() {
  SourceLocation Loc = advance().Loc; // for
  expect(TokenKind::LParen, "after 'for'");
  StmtPtr Init;
  if (!accept(TokenKind::Semi)) {
    if (startsType(current())) {
      std::vector<StmtPtr> Decls;
      parseLocalDecl(Decls); // consumes the ';'
      if (Decls.size() == 1) {
        Init = std::move(Decls.front());
      } else if (!Decls.empty()) {
        auto Block = std::make_unique<CompoundStmt>(Loc);
        for (auto &D : Decls)
          Block->addStmt(std::move(D));
        Init = std::move(Block);
      }
    } else {
      Init = std::make_unique<ExprStmt>(current().Loc, parseExpr());
      expect(TokenKind::Semi, "after for-init");
    }
  }
  ExprPtr Cond;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");
  ExprPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseExpr();
  expect(TokenKind::RParen, "after for-step");
  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(Loc, std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body));
}

StmtPtr Parser::parseSwitchStmt() {
  SourceLocation Loc = advance().Loc; // switch
  expect(TokenKind::LParen, "after 'switch'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after switch condition");
  auto Switch = std::make_unique<SwitchStmt>(Loc, std::move(Cond));
  expect(TokenKind::LBrace, "to open switch body");
  bool SawDefault = false;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    SwitchCase Case;
    Case.Loc = current().Loc;
    if (accept(TokenKind::KwCase)) {
      // Case labels are constant expressions; MiniC accepts (optionally
      // negated) integer and character literals.
      bool Negative = accept(TokenKind::Minus);
      if (!check(TokenKind::IntLiteral) && !check(TokenKind::CharLiteral)) {
        Diags.error(current().Loc, "expected constant after 'case'");
        synchronizeToStmtBoundary();
        continue;
      }
      Token V = advance();
      Case.Value = Negative ? -V.IntValue : V.IntValue;
      expect(TokenKind::Colon, "after case label");
    } else if (accept(TokenKind::KwDefault)) {
      if (SawDefault)
        Diags.error(Case.Loc, "multiple 'default' labels in switch");
      SawDefault = true;
      expect(TokenKind::Colon, "after 'default'");
    } else {
      Diags.error(current().Loc,
                  "expected 'case' or 'default' in switch body");
      synchronizeToStmtBoundary();
      continue;
    }
    // Statements up to the next label or the closing brace. Adjacent
    // labels (case 1: case 2: ...) yield empty bodies = C fallthrough.
    while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
           !check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
      if (startsType(current())) {
        std::vector<StmtPtr> Decls;
        parseLocalDecl(Decls);
        for (auto &D : Decls)
          Case.Body.push_back(std::move(D));
        continue;
      }
      if (StmtPtr S = parseStmt())
        Case.Body.push_back(std::move(S));
    }
    Switch->addCase(std::move(Case));
  }
  expect(TokenKind::RBrace, "to close switch body");
  return Switch;
}

StmtPtr Parser::parseReturnStmt() {
  SourceLocation Loc = advance().Loc; // return
  ExprPtr Value;
  if (!check(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after return statement");
  return std::make_unique<ReturnStmt>(Loc, std::move(Value));
}

StmtPtr Parser::parseStmt() {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseCompoundStmt();
  case TokenKind::KwIf:
    return parseIfStmt();
  case TokenKind::KwWhile:
    return parseWhileStmt();
  case TokenKind::KwDo:
    return parseDoWhileStmt();
  case TokenKind::KwFor:
    return parseForStmt();
  case TokenKind::KwSwitch:
    return parseSwitchStmt();
  case TokenKind::KwReturn:
    return parseReturnStmt();
  case TokenKind::KwBreak: {
    SourceLocation Loc = advance().Loc;
    expect(TokenKind::Semi, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLocation Loc = advance().Loc;
    expect(TokenKind::Semi, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::Semi: {
    SourceLocation Loc = advance().Loc;
    return std::make_unique<NullStmt>(Loc);
  }
  default: {
    SourceLocation Loc = current().Loc;
    ExprPtr E = parseExpr();
    if (!E) {
      synchronizeToStmtBoundary();
      return nullptr;
    }
    expect(TokenKind::Semi, "after expression statement");
    return std::make_unique<ExprStmt>(Loc, std::move(E));
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr LHS = parseConditional();
  if (!LHS)
    return nullptr;
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Eq:
    advance();
    return std::make_unique<AssignExpr>(Loc, std::move(LHS),
                                        parseAssignment());
  case TokenKind::PlusEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Add, std::move(LHS),
                                        parseAssignment());
  case TokenKind::MinusEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Sub, std::move(LHS),
                                        parseAssignment());
  case TokenKind::StarEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Mul, std::move(LHS),
                                        parseAssignment());
  case TokenKind::SlashEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Div, std::move(LHS),
                                        parseAssignment());
  case TokenKind::PercentEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Rem, std::move(LHS),
                                        parseAssignment());
  case TokenKind::AmpEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::BitAnd, std::move(LHS),
                                        parseAssignment());
  case TokenKind::PipeEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::BitOr, std::move(LHS),
                                        parseAssignment());
  case TokenKind::CaretEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::BitXor, std::move(LHS),
                                        parseAssignment());
  case TokenKind::ShlEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Shl, std::move(LHS),
                                        parseAssignment());
  case TokenKind::ShrEq:
    advance();
    return std::make_unique<AssignExpr>(Loc, BinaryOp::Shr, std::move(LHS),
                                        parseAssignment());
  default:
    return LHS;
  }
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinary(0);
  if (!Cond || !check(TokenKind::Question))
    return Cond;
  SourceLocation Loc = advance().Loc; // ?
  ExprPtr Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseConditional();
  return std::make_unique<ConditionalExpr>(Loc, std::move(Cond),
                                           std::move(Then), std::move(Else));
}

namespace {
/// Binary operator precedence (C-like); -1 if not a binary operator.
int binaryPrecedence(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Amp:
    return 5;
  case TokenKind::EqEq:
  case TokenKind::BangEq:
    return 6;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq:
    return 7;
  case TokenKind::Shl:
  case TokenKind::Shr:
    return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinaryOp binaryOpForToken(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryOp::LogOr;
  case TokenKind::AmpAmp:
    return BinaryOp::LogAnd;
  case TokenKind::Pipe:
    return BinaryOp::BitOr;
  case TokenKind::Caret:
    return BinaryOp::BitXor;
  case TokenKind::Amp:
    return BinaryOp::BitAnd;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::BangEq:
    return BinaryOp::Ne;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::LessEq:
    return BinaryOp::Le;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::GreaterEq:
    return BinaryOp::Ge;
  case TokenKind::Shl:
    return BinaryOp::Shl;
  case TokenKind::Shr:
    return BinaryOp::Shr;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}
} // namespace

ExprPtr Parser::parseBinary(int MinPrecedence) {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  for (;;) {
    int Prec = binaryPrecedence(current().Kind);
    if (Prec < 0 || Prec < MinPrecedence)
      return LHS;
    Token Op = advance();
    ExprPtr RHS = parseBinary(Prec + 1); // all binary ops left-associative
    if (!RHS)
      return LHS;
    LHS = std::make_unique<BinaryExpr>(Op.Loc, binaryOpForToken(Op.Kind),
                                       std::move(LHS), std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Minus:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, parseUnary());
  case TokenKind::Bang:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::LogNot, parseUnary());
  case TokenKind::Tilde:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::BitNot, parseUnary());
  case TokenKind::Star:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Deref, parseUnary());
  case TokenKind::Amp:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::AddrOf, parseUnary());
  case TokenKind::PlusPlus:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::PreInc, parseUnary());
  case TokenKind::MinusMinus:
    advance();
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::PreDec, parseUnary());
  case TokenKind::Plus: // unary plus is a no-op
    advance();
    return parseUnary();
  case TokenKind::KwSizeof: {
    advance();
    expect(TokenKind::LParen, "after 'sizeof'");
    if (!startsType(current())) {
      Diags.error(current().Loc,
                  "MiniC supports only 'sizeof(type)', not 'sizeof expr'");
      synchronizeToStmtBoundary();
      return std::make_unique<IntLiteralExpr>(Loc, 0);
    }
    const Type *Ty = parseTypeSpecifier();
    if (Ty)
      Ty = parseArraySuffixes(Ty);
    expect(TokenKind::RParen, "after sizeof type");
    return std::make_unique<SizeofTypeExpr>(
        Loc, Ty ? Ty : TU->types().intType());
  }
  case TokenKind::LParen:
    // Cast expression? Look one token ahead for a type keyword.
    if (startsType(peek(1))) {
      advance(); // (
      const Type *Ty = parseTypeSpecifier();
      if (Ty)
        Ty = parseArraySuffixes(Ty);
      expect(TokenKind::RParen, "after cast type");
      ExprPtr Operand = parseUnary();
      return std::make_unique<CastExpr>(
          Loc, Ty ? Ty : TU->types().intType(), std::move(Operand));
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    SourceLocation Loc = current().Loc;
    if (accept(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      E = std::make_unique<IndexExpr>(Loc, std::move(E), std::move(Index));
      continue;
    }
    if (accept(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected field name after '.'");
        return E;
      }
      Token Field = advance();
      E = std::make_unique<MemberExpr>(Loc, std::move(E), Field.Text,
                                       /*IsArrow=*/false);
      continue;
    }
    if (accept(TokenKind::Arrow)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected field name after '->'");
        return E;
      }
      Token Field = advance();
      E = std::make_unique<MemberExpr>(Loc, std::move(E), Field.Text,
                                       /*IsArrow=*/true);
      continue;
    }
    if (accept(TokenKind::PlusPlus)) {
      E = std::make_unique<UnaryExpr>(Loc, UnaryOp::PostInc, std::move(E));
      continue;
    }
    if (accept(TokenKind::MinusMinus)) {
      E = std::make_unique<UnaryExpr>(Loc, UnaryOp::PostDec, std::move(E));
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = advance();
    return std::make_unique<IntLiteralExpr>(Loc, T.IntValue);
  }
  case TokenKind::CharLiteral: {
    Token T = advance();
    return std::make_unique<IntLiteralExpr>(Loc, T.IntValue);
  }
  case TokenKind::StringLiteral: {
    Token T = advance();
    return std::make_unique<StringLiteralExpr>(Loc, T.StrValue);
  }
  case TokenKind::KwNull:
    advance();
    return std::make_unique<IntLiteralExpr>(Loc, 0, /*IsNull=*/true);
  case TokenKind::Identifier: {
    Token Name = advance();
    if (check(TokenKind::LParen)) {
      advance();
      auto Call = std::make_unique<CallExpr>(Loc, Name.Text);
      if (!check(TokenKind::RParen)) {
        for (;;) {
          ExprPtr Arg = parseAssignment();
          if (!Arg)
            break;
          Call->addArg(std::move(Arg));
          if (!accept(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "after call arguments");
      return Call;
    }
    return std::make_unique<VarRefExpr>(Loc, Name.Text);
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr Inner = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return Inner;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(current().Kind));
    advance();
    return nullptr;
  }
}
