//===- TestDriver.cpp - Random test driver generation ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TestDriver.h"

#include "ast/ASTPrinter.h"
#include "ir/Lowering.h"

#include <cassert>

using namespace dart;

//===----------------------------------------------------------------------===//
// InputManager
//===----------------------------------------------------------------------===//

InputId InputManager::createInput(InputKind Kind, ValType VT,
                                  const std::string &Name) {
  InputId Id = NextId++;
  if (Id < Registry.size()) {
    // Positional overwrite (the common case after the first run): assign
    // into the existing entry so its string keeps — and usually reuses —
    // its allocation. Runs once per input per call.
    InputInfo &Slot = Registry[Id];
    Slot.Kind = Kind;
    Slot.VT = VT;
    if (Slot.Name != Name)
      Slot.Name = Name;
    return Id;
  }
  InputInfo Info;
  Info.Kind = Kind;
  Info.VT = VT;
  Info.Name = Name;
  Registry.push_back(std::move(Info));
  return Id;
}

int64_t InputManager::valueFor(InputId Id) {
  if (Id < RunDefined.size() && RunDefined[Id])
    return RunValues[Id];
  // Ids are handed out in increasing order, so a fresh input (one with no
  // solver-preset value) belongs at the map's end; reusing the lower_bound
  // position turns the find-then-insert pair into a single walk with an
  // O(1) insert — this runs once per input per call.
  auto It = IM.lower_bound(Id);
  int64_t V;
  if (It != IM.end() && It->first == Id) {
    V = It->second;
  } else {
    assert(Id < Registry.size() && "value requested for unregistered input");
    const InputInfo &Info = Registry[Id];
    if (Info.Kind == InputKind::PointerChoice)
      V = R.coinToss() ? 1 : 0; // Fig. 8's fair coin
    else
      V = R.nextBits(Info.VT.bits());
    if (!EphemeralDraws)
      IM.emplace_hint(It, Id, V);
  }
  if (Id >= RunValues.size()) {
    RunValues.resize(Id + 1);
    RunDefined.resize(Id + 1, 0);
  }
  RunValues[Id] = V;
  RunDefined[Id] = 1;
  return V;
}

void InputManager::applyModel(const std::map<InputId, int64_t> &Model) {
  for (const auto &[Id, V] : Model) {
    IM[Id] = V;
    // Drop the stale per-run cache entry so the next valueFor re-reads
    // the preset from IM.
    if (Id < RunDefined.size())
      RunDefined[Id] = 0;
  }
}

VarDomain InputManager::domainOf(InputId Id) const {
  if (Id >= Registry.size())
    return VarDomain{INT32_MIN, INT32_MAX};
  return VarDomain{Registry[Id].domainMin(), Registry[Id].domainMax()};
}

//===----------------------------------------------------------------------===//
// TestDriver
//===----------------------------------------------------------------------===//

TestDriver::TestDriver(const ProgramInterface &Interface,
                       const std::map<const VarDecl *, unsigned> &GlobalIndexOf,
                       InputManager &Inputs, Interp &VM, ConcolicRun *Hooks,
                       DriverOptions Options)
    : Interface(Interface), GlobalIndexOf(GlobalIndexOf), Inputs(Inputs),
      VM(VM), Hooks(Hooks), Options(Options) {}

std::pair<int64_t, InputId>
TestDriver::makePointerInput(const PointerType *Ty, const std::string &Name,
                             unsigned Depth) {
  InputId ChoiceId =
      Inputs.createInput(InputKind::PointerChoice, ValType::pointer(), Name);
  bool Allocate = (Inputs.valueFor(ChoiceId) & 1) != 0;
  if (Depth > Options.MaxPointerInitDepth)
    Allocate = false; // force termination of recursive shapes
  if (!Allocate)
    return {0, ChoiceId};
  const Type *Pointee = Ty->pointee();
  // void* inputs point at an opaque byte.
  uint64_t Size = Pointee->isVoid() ? 1 : Pointee->size();
  Addr Cell = VM.memory().allocate(Size, RegionKind::Heap, Name + "@cell");
  if (!Pointee->isVoid())
    randomInitCell(Cell, Pointee, Name + "[0]", Depth + 1);
  return {static_cast<int64_t>(Cell), ChoiceId};
}

void TestDriver::randomInitCell(Addr A, const Type *Ty,
                                const std::string &Name, unsigned Depth) {
  if (Ty->isInteger()) {
    ValType VT = valTypeFor(Ty);
    InputId Id = Inputs.createInput(InputKind::Integer, VT, Name);
    int64_t V = VT.canonicalize(Inputs.valueFor(Id));
    VM.memory().store(A, VT.SizeBytes, static_cast<uint64_t>(V));
    if (Hooks)
      Hooks->bindInput(A, VT, Id);
    return;
  }
  if (const auto *P = dyn_cast<PointerType>(Ty)) {
    auto [V, ChoiceId] = makePointerInput(P, Name, Depth);
    VM.memory().store(A, 8, static_cast<uint64_t>(V));
    if (Hooks)
      Hooks->bindInput(A, ValType::pointer(), ChoiceId);
    return;
  }
  if (const auto *S = dyn_cast<StructType>(Ty)) {
    for (const auto &F : S->decl()->fields())
      randomInitCell(A + F->offset(), F->type(), Name + "." + F->name(),
                     Depth);
    return;
  }
  if (const auto *Arr = dyn_cast<ArrayType>(Ty)) {
    uint64_t ElemSize = Arr->element()->size();
    for (uint64_t I = 0; I < Arr->numElements(); ++I)
      randomInitCell(A + I * ElemSize, Arr->element(),
                     Name + "[" + std::to_string(I) + "]", Depth);
    return;
  }
  // void or other non-value type: nothing to initialize.
}

void TestDriver::initExternVariables() {
  for (const VarDecl *V : Interface.ExternVariables) {
    auto It = GlobalIndexOf.find(V);
    assert(It != GlobalIndexOf.end() && "extern variable not lowered");
    Addr Base = VM.globalAddr(It->second);
    randomInitCell(Base, V->type(), V->name(), 0);
  }
}

/// Appends the decimal digits of \p V without the std::to_string
/// temporary (one of these runs per toplevel call).
static void appendUnsigned(std::string &S, unsigned V) {
  char Buf[10];
  char *End = Buf + sizeof(Buf);
  char *P = End;
  do {
    *--P = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V);
  S.append(P, static_cast<size_t>(End - P));
}

void TestDriver::prepareToplevelArgs(unsigned CallIndex, PreparedArgs &Args) {
  Args.Values.clear();
  Args.Bindings.clear();
  NameScratch.assign(Interface.Toplevel->name());
  NameScratch += '#';
  appendUnsigned(NameScratch, CallIndex);
  NameScratch += '.';
  const size_t PrefixLen = NameScratch.size();
  unsigned Index = 0;
  for (const VarDecl *P : Interface.ToplevelParams) {
    NameScratch.resize(PrefixLen);
    if (P->name().empty()) {
      NameScratch += "arg";
      appendUnsigned(NameScratch, Index);
    } else {
      NameScratch += P->name();
    }
    const std::string &Name = NameScratch;
    const Type *Ty = P->type();
    if (Ty->isInteger()) {
      ValType VT = valTypeFor(Ty);
      InputId Id = Inputs.createInput(InputKind::Integer, VT, Name);
      Args.Values.push_back(VT.canonicalize(Inputs.valueFor(Id)));
      Args.Bindings.push_back({Index, Id, VT});
    } else if (const auto *Ptr = dyn_cast<PointerType>(Ty)) {
      auto [V, ChoiceId] = makePointerInput(Ptr, Name, 0);
      Args.Values.push_back(V);
      Args.Bindings.push_back({Index, ChoiceId, ValType::pointer()});
    } else {
      // Aggregate by value: rejected earlier; defensive zero.
      Args.Values.push_back(0);
    }
    ++Index;
  }
}

void TestDriver::bindParams(const std::vector<Addr> &ParamAddrs,
                            const PreparedArgs &Args) {
  if (!Hooks)
    return;
  for (const PreparedArgs::Binding &B : Args.Bindings) {
    assert(B.ParamIndex < ParamAddrs.size() && "parameter index mismatch");
    Hooks->bindInput(ParamAddrs[B.ParamIndex], B.VT, B.Id);
  }
}

void TestDriver::installExternalModel(const TranslationUnit &TU) {
  ExternalReturnTypes.clear();
  for (const ExternalFunctionInfo &F : Interface.ExternalFunctions)
    if (F.Decl)
      ExternalReturnTypes[F.Name] = F.Decl->returnType();
  (void)TU;
  if (!Hooks)
    return;
  Hooks->ExternalFn = [this](EvalContext &Ctx, const CallInstr &Call,
                             Addr Dest, ValType RetVT) -> int64_t {
    (void)Ctx;
    const std::string Name = "ext:" + Call.callee();
    auto It = ExternalReturnTypes.find(Call.callee());
    const Type *RetTy = It == ExternalReturnTypes.end() ? nullptr
                                                        : It->second;
    if (RetTy && RetTy->isPointer()) {
      // External function returning a pointer: NULL or a fresh cell
      // (paper §3.4 — never a previously defined object).
      auto [V, ChoiceId] =
          makePointerInput(cast<PointerType>(RetTy), Name, 0);
      if (Dest != 0)
        Hooks->bindInput(Dest, ValType::pointer(), ChoiceId);
      return V;
    }
    InputId Id = Inputs.createInput(InputKind::Integer, RetVT, Name);
    int64_t V = RetVT.canonicalize(Inputs.valueFor(Id));
    if (Dest != 0)
      Hooks->bindInput(Dest, RetVT, Id);
    return V;
  };
}

//===----------------------------------------------------------------------===//
// Driver source emission (Fig. 7)
//===----------------------------------------------------------------------===//

std::string dart::emitDriverSource(const ProgramInterface &Interface,
                                   unsigned Depth) {
  std::string Out;
  Out += "/* Test driver generated by DART (cf. paper Fig. 7).\n";
  Out += " * Simulates the most general environment of the program. */\n\n";

  for (const ExternalFunctionInfo &F : Interface.ExternalFunctions) {
    const Type *RetTy =
        F.Decl ? F.Decl->returnType() : nullptr;
    std::string RetName = RetTy ? RetTy->toString() : "int";
    Out += RetName + " " + F.Name + "() {\n";
    Out += "  " + RetName + " tmp;\n";
    Out += "  random_init(&tmp, " + RetName + ");\n";
    Out += "  return tmp;\n";
    Out += "}\n\n";
  }

  Out += "void main() {\n";
  for (const VarDecl *V : Interface.ExternVariables)
    Out += "  random_init(&" + V->name() + ", " + V->type()->toString() +
           ");\n";
  Out += "  int i;\n";
  Out += "  for (i = 0; i < " + std::to_string(Depth) + "; i++) {\n";
  std::string CallArgs;
  unsigned Index = 0;
  for (const VarDecl *P : Interface.ToplevelParams) {
    std::string Name =
        P->name().empty() ? "tmp" + std::to_string(Index) : P->name();
    Out += "    " + printTypedName(P->type(), Name) + ";\n";
    Out += "    random_init(&" + Name + ", " + P->type()->toString() +
           ");\n";
    if (!CallArgs.empty())
      CallArgs += ", ";
    CallArgs += Name;
    ++Index;
  }
  if (Interface.Toplevel)
    Out += "    " + Interface.Toplevel->name() + "(" + CallArgs + ");\n";
  Out += "  }\n";
  Out += "}\n";
  return Out;
}
