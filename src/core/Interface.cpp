//===- Interface.cpp - Automatic interface extraction ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Interface.h"

#include "sema/Sema.h"

#include <algorithm>
#include <set>

using namespace dart;

std::string ProgramInterface::toString() const {
  std::string Out;
  if (!Toplevel)
    return "<no toplevel>\n";
  Out += "toplevel: " + Toplevel->name() + "\n";
  for (const VarDecl *P : ToplevelParams)
    Out += "  param " + P->name() + " : " + P->type()->toString() + "\n";
  for (const VarDecl *V : ExternVariables)
    Out += "  extern var " + V->name() + " : " + V->type()->toString() +
           "\n";
  for (const ExternalFunctionInfo &F : ExternalFunctions)
    Out += "  external function " + F.Name + "\n";
  return Out;
}

ProgramInterface dart::extractInterface(const TranslationUnit &TU,
                                        const std::string &ToplevelName) {
  ProgramInterface Info;

  std::set<std::string> Defined;
  for (const auto &D : TU.decls())
    if (const auto *F = dyn_cast<FunctionDecl>(D.get()))
      if (F->hasBody())
        Defined.insert(F->name());

  const auto &Builtins = Sema::builtinNames();
  std::set<std::string> SeenExternal;
  for (const auto &D : TU.decls()) {
    if (const auto *F = dyn_cast<FunctionDecl>(D.get())) {
      if (F->hasBody()) {
        if (F->name() == ToplevelName)
          Info.Toplevel = F;
        continue;
      }
      if (Defined.count(F->name()) || SeenExternal.count(F->name()))
        continue;
      if (std::find(Builtins.begin(), Builtins.end(), F->name()) !=
          Builtins.end())
        continue; // library function, not environment
      SeenExternal.insert(F->name());
      Info.ExternalFunctions.push_back({F, F->name()});
      continue;
    }
    if (const auto *V = dyn_cast<VarDecl>(D.get()))
      if (V->isExtern() && !V->init())
        Info.ExternVariables.push_back(V);
  }

  if (Info.Toplevel)
    for (const auto &P : Info.Toplevel->params())
      Info.ToplevelParams.push_back(P.get());
  return Info;
}
