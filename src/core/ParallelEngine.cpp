//===- ParallelEngine.cpp - Multi-worker directed search -------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ParallelEngine.h"

#include "analysis/BranchDistance.h"
#include "analysis/StaticSummary.h"
#include "jit/Jit.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

using namespace dart;

uint64_t dart::mixSeed(uint64_t Seed, uint64_t Ordinal) {
  // SplitMix64 finalizer over (seed, ordinal): child seeds depend only on
  // the parent seed and the branch position, never on the schedule.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (Ordinal + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

namespace {

/// One frontier entry: everything a worker needs to reproduce the run the
/// sequential engine would make at this point of the path tree.
struct WorkItem {
  /// Predicted stack (prefix with one branch flipped; entries above the
  /// flip are pre-marked done so only deeper branches get expanded).
  std::vector<BranchRecord> Stack;
  /// Input vector IM: the parent run's final IM plus the solver model.
  std::map<InputId, int64_t> IM;
  /// Seed for this run's fresh random bits.
  uint64_t RngSeed = 0;
  /// Dedup domain: one salt per restart tree, so a fresh random restart
  /// may legitimately re-explore paths an earlier tree already saw (the
  /// sequential outer loop does exactly that).
  uint64_t TreeSalt = 0;
  /// Parent run's checkpoint pack (immutable, shared across siblings) and
  /// the smallest input id the solver model perturbed — computed against
  /// the parent's IM at push time, so the resume decision is a pure
  /// function of the item, independent of worker scheduling.
  std::shared_ptr<CheckpointPack> Pack;
  std::optional<InputId> MinChanged;
  /// Distance strategy only: static priority of the direction the item's
  /// flip newly takes, computed at push time (0 = lands on an uncovered
  /// direction). Distance-strategy pops claim the minimum first.
  uint32_t Priority = 0;
  /// Diversity strategy only: predicted path signature of the run this
  /// item forces (PathSearch::predictedSignature), computed at push time.
  /// Diversity pops claim the item most Hamming-distant from the
  /// executed-path sample.
  uint64_t Sig = 0;
};

/// How a worker claims its next frontier item; each worker passes its
/// strategy's policy to pop(), so a portfolio's workers share one queue
/// but walk it in their own orders.
enum class PopPolicy { Newest, MinPriority, MaxDiversity };

/// FNV-1a over the (site, direction) sequence of a predicted stack,
/// salted by the restart tree.
uint64_t prefixHash(const std::vector<BranchRecord> &Stack, uint64_t Salt) {
  uint64_t H = 1469598103934665603ULL ^ Salt;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  for (const BranchRecord &R : Stack)
    Mix(uint64_t(R.SiteId) * 2 + (R.Branch ? 1 : 0));
  Mix(Stack.size());
  return H;
}

/// Sharded seen-prefix filter: workers only contend on 1/16th of the
/// space. insert() returns true if the hash was new.
class PrefixFilter {
public:
  bool insert(uint64_t H) {
    Shard &S = Shards[H & (NumShards - 1)];
    std::lock_guard<std::mutex> L(S.M);
    return S.Set.insert(H).second;
  }

private:
  static constexpr size_t NumShards = 16;
  struct Shard {
    std::mutex M;
    std::unordered_set<uint64_t> Set;
  };
  std::array<Shard, NumShards> Shards;
};

/// Work queue with drain detection. pop() blocks until an item arrives;
/// when the queue is empty and no worker is busy, the drain handler runs
/// (under the lock, so exactly once) and either refills the queue (random
/// restart) or closes it (budget, bug, or completeness).
class Frontier {
public:
  using DrainFn = std::function<std::vector<WorkItem>()>;

  /// \p Sampler (diversity strategy / portfolio): the executed-path
  /// archive MaxDiversity pops score items against; may be null when no
  /// worker uses that policy.
  explicit Frontier(DrainFn OnDrain, const DiversitySampler *Sampler = nullptr)
      : OnDrain(std::move(OnDrain)), Sampler(Sampler) {}

  void push(WorkItem I) {
    std::lock_guard<std::mutex> L(M);
    if (Closed)
      return;
    Items.push_back(std::move(I));
    CV.notify_one();
  }

  /// Claims the next item (the caller is then "busy" until taskDone()).
  std::optional<WorkItem> pop(PopPolicy Policy) {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      if (Closed)
        return std::nullopt;
      if (!Items.empty()) {
        // Newest-first (depth-first) claim order: a pack's children are
        // consumed soon after their parent enqueues them, so the set of
        // live checkpoint packs tracks the frontier *depth*, not the whole
        // breadth of pending work. FIFO order kept nearly every pack of
        // the session pinned simultaneously (tens of MB on branchy
        // workloads) and churned the allocator accordingly.
        auto It = std::prev(Items.end());
        if (Policy == PopPolicy::MinPriority) {
          It = std::min_element(Items.begin(), Items.end(),
                                [](const WorkItem &A, const WorkItem &B) {
                                  return A.Priority < B.Priority;
                                });
        } else if (Policy == PopPolicy::MaxDiversity && Sampler) {
          // ART claim order: the pending run most distant from what has
          // already executed. >= keeps the newest among ties, preserving
          // the depth-first pack-residency property above.
          std::vector<uint64_t> Snap = Sampler->snapshot();
          if (!Snap.empty()) {
            unsigned Best = 0;
            for (auto Cur = Items.begin(); Cur != Items.end(); ++Cur) {
              unsigned D = DiversitySampler::minDistance(Cur->Sig, Snap);
              if (D >= Best) {
                Best = D;
                It = Cur;
              }
            }
          }
        }
        WorkItem I = std::move(*It);
        Items.erase(It);
        ++Busy;
        return I;
      }
      if (Busy == 0) {
        std::vector<WorkItem> Refill = OnDrain();
        if (Refill.empty()) {
          Closed = true;
          CV.notify_all();
          return std::nullopt;
        }
        for (WorkItem &I : Refill)
          Items.push_back(std::move(I));
        continue;
      }
      CV.wait(L);
    }
  }

  void taskDone() {
    std::lock_guard<std::mutex> L(M);
    assert(Busy > 0 && "taskDone without a claimed item");
    --Busy;
    // The drain condition (empty queue, no busy workers) can only become
    // true here, and only waiters can evaluate it.
    CV.notify_all();
  }

  void close() {
    std::lock_guard<std::mutex> L(M);
    Closed = true;
    CV.notify_all();
  }

private:
  DrainFn OnDrain;
  const DiversitySampler *Sampler;
  std::mutex M;
  std::condition_variable CV;
  std::deque<WorkItem> Items;
  unsigned Busy = 0;
  bool Closed = false;
};

/// Branch coverage only, for the random-testing baseline (mirrors the
/// sequential engine's file-local hooks).
class RandomCoverageHooks : public ExecHooks {
public:
  explicit RandomCoverageHooks(unsigned NumBranchSites)
      : Covered(2 * size_t(NumBranchSites), false) {}
  bool onBranch(EvalContext &Ctx, const CondJumpInstr &Branch,
                bool Taken) override {
    (void)Ctx;
    size_t Bit = 2 * size_t(Branch.siteId()) + (Taken ? 1 : 0);
    if (Bit >= Covered.size())
      Covered.resize(Bit + 1, false);
    Covered[Bit] = true;
    return true;
  }
  std::vector<bool> Covered;
};

/// State shared by all workers. Coverage is an atomic bitmap (one fetch_or
/// per 64 directions), budgets and flags are single atomics; everything
/// that must stay ordered (timeline, run log, run numbering) goes through
/// one report mutex.
struct SharedState {
  explicit SharedState(unsigned BranchSitesTotal)
      : CovWords((2 * size_t(BranchSitesTotal) + 63) / 64) {}

  std::vector<std::atomic<uint64_t>> CovWords;
  std::atomic<unsigned> CoveredCount{0};
  std::atomic<unsigned> RunsClaimed{0};
  std::atomic<unsigned> RunsDone{0};
  std::atomic<uint64_t> TotalSteps{0};
  std::atomic<unsigned> ForcingMismatches{0};
  std::atomic<bool> AllLinear{true};
  std::atomic<bool> AllLocsDefinite{true};
  std::atomic<bool> BugFound{false};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Truncated{false};
  std::atomic<bool> StoppedEarly{false};
  /// Bumped whenever mergeCoverage lands at least one fresh bit. Workers
  /// compare it against their last-synced value to decide whether their
  /// incremental distance tracker needs a sync — the common case (no new
  /// coverage since the last solve) is one relaxed load, no bitmap walk.
  std::atomic<uint64_t> CovGen{0};
  /// Word-form mask of the statically coverable directions
  /// (StaticSummary::CoverableDirs); empty when early exit is off.
  std::vector<uint64_t> CoverableWords;
  std::atomic<unsigned> CoverableCovered{0};

  std::atomic<uint64_t> CheckpointsCaptured{0};
  std::atomic<uint64_t> RunsResumed{0};
  std::atomic<uint64_t> ResumeMisses{0};
  std::atomic<uint64_t> InstructionsExecuted{0};
  std::atomic<uint64_t> InstructionsSkipped{0};
  std::atomic<uint64_t> CaptureNanos{0};
  std::atomic<uint64_t> MaterializeNanos{0};
  std::atomic<uint64_t> LevelsSkippedByDemand{0};

  std::atomic<uint64_t> JitBlockEntries{0};
  std::atomic<uint64_t> JitNativeInstrs{0};
  std::atomic<uint64_t> JitDeopts{0};

  /// Folds one VM's native-tier counters in after its run.
  void mergeJit(const JitRunStats &S) {
    if (S.BlockEntries)
      JitBlockEntries.fetch_add(S.BlockEntries);
    if (S.NativeInstrs)
      JitNativeInstrs.fetch_add(S.NativeInstrs);
    if (S.Deopts)
      JitDeopts.fetch_add(S.Deopts);
  }

  std::mutex ReportMutex;
  std::vector<unsigned> CoverageTimeline;
  std::vector<std::string> RunLog;

  /// Merges one run's coverage bitmap; returns how many direction bits
  /// this call covered first (the attribution credit).
  unsigned mergeCoverage(const std::vector<bool> &Bits) {
    unsigned FreshCount = 0;
    size_t Limit = std::min(Bits.size(), CovWords.size() * 64);
    for (size_t W = 0; W * 64 < Limit; ++W) {
      uint64_t Mask = 0;
      size_t Base = W * 64;
      size_t End = std::min<size_t>(64, Limit - Base);
      for (size_t B = 0; B < End; ++B)
        if (Bits[Base + B])
          Mask |= uint64_t(1) << B;
      if (!Mask)
        continue;
      uint64_t Old = CovWords[W].fetch_or(Mask);
      uint64_t Fresh = Mask & ~Old;
      if (Fresh) {
        FreshCount += unsigned(std::popcount(Fresh));
        CoveredCount.fetch_add(unsigned(std::popcount(Fresh)));
        if (W < CoverableWords.size()) {
          uint64_t FreshCoverable = Fresh & CoverableWords[W];
          if (FreshCoverable)
            CoverableCovered.fetch_add(
                unsigned(std::popcount(FreshCoverable)));
        }
      }
    }
    if (FreshCount)
      CovGen.fetch_add(1);
    return FreshCount;
  }

  /// Snapshot of the atomic bitmap as a plain vector<bool> (report form).
  std::vector<bool> coverageBits() const {
    std::vector<bool> Bits(CovWords.size() * 64, false);
    for (size_t W = 0; W < CovWords.size(); ++W) {
      uint64_t V = CovWords[W].load();
      for (size_t B = 0; B < 64; ++B)
        if (V & (uint64_t(1) << B))
          Bits[W * 64 + B] = true;
    }
    return Bits;
  }
};

/// Portfolio assignment: worker 0 keeps the paper's depth-first order,
/// worker 1 chases statically-near uncovered branches, everyone else
/// diversifies over path signatures. Pure function of the worker index,
/// so the assignment (and each worker's Rng-free claim policy) is
/// schedule-independent.
SearchStrategy strategyForWorker(SearchStrategy S, unsigned W) {
  if (S != SearchStrategy::Portfolio)
    return S;
  if (W == 0)
    return SearchStrategy::DepthFirst;
  if (W == 1)
    return SearchStrategy::Distance;
  return SearchStrategy::Diversity;
}

/// Deterministic bug order for the merged report: signature, then inputs,
/// then run number — so the bug list is independent of worker scheduling.
void sortBugs(std::vector<BugInfo> &Bugs) {
  std::sort(Bugs.begin(), Bugs.end(),
            [](const BugInfo &A, const BugInfo &B) {
              std::string SA = A.Error.toString();
              std::string SB = B.Error.toString();
              if (SA != SB)
                return SA < SB;
              if (A.Inputs != B.Inputs)
                return A.Inputs < B.Inputs;
              return A.FoundAtRun < B.FoundAtRun;
            });
}

std::string describeRun(unsigned RunNumber, const RunResult &Result,
                        const ConcolicRun *Hooks,
                        const InputManager &Inputs) {
  std::string Line = "run " + std::to_string(RunNumber) + ": ";
  switch (Result.Status) {
  case RunStatus::Halted:
    Line += "halted";
    break;
  case RunStatus::Errored:
    Line += "ERROR " + Result.Error.toString();
    break;
  case RunStatus::ForcingMismatch:
    Line += "forcing mismatch";
    break;
  }
  if (Hooks)
    Line += ", " + std::to_string(Hooks->conditionalsExecuted()) +
            " conditionals";
  Line += ", inputs:";
  for (InputId Id = 0; Id < Inputs.inputsThisRun(); ++Id) {
    if (const int64_t *V = Inputs.lookup(Id))
      Line += " " + Inputs.registry()[Id].Name + "=" +
              std::to_string(*V);
  }
  return Line;
}

std::vector<std::pair<std::string, int64_t>>
collectBugInputs(const InputManager &Inputs) {
  std::vector<std::pair<std::string, int64_t>> Out;
  for (InputId Id = 0; Id < Inputs.inputsThisRun(); ++Id) {
    if (const int64_t *V = Inputs.lookup(Id))
      Out.emplace_back(Inputs.registry()[Id].Name, *V);
  }
  return Out;
}

} // namespace

ParallelDartEngine::ParallelDartEngine(const TranslationUnit &TU,
                                       const LoweredProgram &Program,
                                       DartOptions Options)
    : TU(TU), Program(Program), Options(std::move(Options)),
      Interface(extractInterface(TU, this->Options.ToplevelName)) {
  assert(Interface.Toplevel && "toplevel function not found or has no body");
}

DartReport ParallelDartEngine::run() {
  if (Options.Jobs <= 1) {
    // Paper-exact sequential loop: the W=1 report is byte-identical to
    // DartEngine's, including the random sequence.
    DartEngine Sequential(TU, Program, Options);
    return Sequential.run();
  }
  Options.Concolic.NumBranchSites = Program.Module->numBranchSites();
  return Options.RandomOnly ? runRandomOnly() : runDirected();
}

DartReport ParallelDartEngine::runDirected() {
  const unsigned NumWorkers = Options.Jobs;
  DartReport Report;
  Report.BranchSitesTotal = Program.Module->numBranchSites();

  // Static dataflow pass, computed once before the workers start: every
  // worker's runs share the verdict bitmap (read-only, outlives the join).
  std::optional<StaticSummary> Summary;
  if (Options.StaticPrune) {
    Summary = computeStaticSummary(*Program.Module, Options.ToplevelName);
    Options.Concolic.PrunedSites = &Summary->PrunedSites;
    Report.PointsTo = Summary->PointsTo;
    if (Summary->Dependence)
      Report.Dependence = Summary->Dependence->Stats;
  }
  // Prove-or-test verifier, once per session (see DartEngine): proved
  // directions leave the coverable universe and feed every worker's
  // distance tracker as pre-covered.
  std::optional<BranchProofs> Proofs;
  if (Summary && Options.Verify) {
    Proofs = proveBranchDirections(*Program.Module, Options.ToplevelName,
                                   *Summary, Options.Depth == 1);
    applyBranchProofs(*Summary, *Proofs);
    Report.Verify = Proofs->Stats;
    Report.DirsProvedInfeasible = Proofs->ProvedCount;
  }
  if (Summary)
    Report.CoverableDirsTotal = Summary->CoverableCount;

  // Distance strategy / portfolio: one shared static block graph; each
  // worker maintains its own incremental priority tracker over it and
  // re-syncs from the shared bitmap only when the coverage generation
  // counter moves (BranchDistance.h).
  std::optional<BranchDistanceMap> DistMap;
  if (Options.Strategy == SearchStrategy::Distance ||
      Options.Strategy == SearchStrategy::Portfolio)
    DistMap = BranchDistanceMap::build(*Program.Module);
  // Diversity strategy / portfolio with a diversity worker: one shared
  // executed-path archive, fed by every worker.
  std::optional<DiversitySampler> Sampler;
  if (Options.Strategy == SearchStrategy::Diversity ||
      (Options.Strategy == SearchStrategy::Portfolio && NumWorkers >= 3))
    Sampler.emplace(Options.Seed ^ 0x9e3779b97f4a7c15ULL);

  // One compiled image for the whole session; immutable, so every worker
  // shares it without synchronization.
  std::unique_ptr<const jit::JitProgram> Jit;
  if (Options.Jit)
    Jit = jit::JitProgram::build(*Program.Module, Options.ToplevelName);
  if (Jit) {
    Report.Jit.Enabled = true;
    Report.Jit.BlocksCompiled = Jit->stats().BlocksCompiled;
    Report.Jit.UnitsCompiled = Jit->stats().UnitsCompiled;
    Report.Jit.CodeBytes = Jit->stats().CodeBytes;
  }

  SharedState Shared(Report.BranchSitesTotal);
  // Early exit for the heuristic strategies: stop once every statically
  // coverable direction is covered (dfs keeps running toward the
  // all-paths completeness claim, which coverage saturation does not
  // imply). ε bound: workers that already claimed a run finish it, so
  // the overshoot is at most NumWorkers runs.
  unsigned CoverableTotal = 0;
  if (Summary && Summary->CoverableCount > 0) {
    // The mask always feeds the CoverableCovered count (certificate
    // accounting); only the non-dfs strategies arm the early exit on it.
    if (Options.Strategy != SearchStrategy::DepthFirst)
      CoverableTotal = Summary->CoverableCount;
    Shared.CoverableWords.assign(Shared.CovWords.size(), 0);
    for (size_t Bit = 0;
         Bit < Summary->CoverableDirs.size() &&
         Bit < Shared.CoverableWords.size() * 64;
         ++Bit)
      if (Summary->CoverableDirs[Bit])
        Shared.CoverableWords[Bit / 64] |= uint64_t(1) << (Bit % 64);
  }
  SolverQueryCache Cache;
  SessionUnsatCache SessCache;
  PredArena Arena;
  PrefixFilter Seen;
  const bool UseSnapshots = Options.Snapshots;
  CheckpointLedger Ledger(Options.SnapshotBudgetBytes);
  CaptureDemand Demand;

  // Drain bookkeeping (only ever touched by the drain handler, which the
  // frontier runs under its lock with no busy workers — single-threaded).
  unsigned Restarts = 0;
  bool Complete = false;

  Frontier Queue([&]() -> std::vector<WorkItem> {
    if (Shared.Stop.load())
      return {};
    if (Shared.RunsClaimed.load() >= Options.MaxRuns)
      return {};
    if (!Shared.Truncated.load() && Shared.AllLinear.load() &&
        Shared.AllLocsDefinite.load()) {
      // Theorem 1(b): the generational expansion partitions the path
      // tree, every feasible path of this restart tree was exercised,
      // and no theory fallback occurred anywhere. Unlike the sequential
      // loop — where only depth-first avoids discarding deeper flips —
      // the frontier pushes every satisfiable flip as its own item, so
      // exhaustion is independent of the pop order: any strategy (and
      // the portfolio) inherits the claim.
      Complete = true;
      return {};
    }
    // Fig. 2's outer loop: fresh random restart as its own dedup tree.
    ++Restarts;
    WorkItem W;
    W.RngSeed = mixSeed(Options.Seed, 0x517cc1b7ULL + Restarts);
    W.TreeSalt = W.RngSeed;
    return {std::move(W)};
  }, Sampler ? &*Sampler : nullptr);

  // Seed the frontier with the root of the first restart tree.
  {
    WorkItem Root;
    Root.RngSeed = Options.Seed;
    Root.TreeSalt = mixSeed(Options.Seed, 0xa5a5a5a5ULL);
    Queue.push(std::move(Root));
  }

  struct WorkerResult {
    std::vector<BugInfo> Bugs;
    SolverStats Solver;
    uint64_t SolverCalls = 0;
    // Attribution (portfolio --stats) and tracker maintenance counters.
    SearchStrategy Strategy = SearchStrategy::DepthFirst;
    uint64_t Runs = 0;
    uint64_t FreshDirections = 0;
    uint64_t BugRuns = 0;
    uint64_t IncrementalUpdates = 0;
    uint64_t FullRecomputes = 0;
  };
  std::vector<WorkerResult> Results(NumWorkers);
  std::vector<std::thread> Workers;
  Workers.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W) {
    Workers.emplace_back([&, W]() {
      LinearSolver Solver(Options.Solver);
      Solver.setSharedCache(&Cache);
      Solver.setSharedSessionCache(&SessCache);
      WorkerResult &Mine = Results[W];
      const SearchStrategy MyStrategy =
          strategyForWorker(Options.Strategy, W);
      Mine.Strategy = MyStrategy;
      const PopPolicy MyPolicy =
          MyStrategy == SearchStrategy::Distance ? PopPolicy::MinPriority
          : MyStrategy == SearchStrategy::Diversity
              ? PopPolicy::MaxDiversity
              : PopPolicy::Newest;

      // Per-worker pooled machinery (mirrors the sequential engine): one
      // VM resumed from its pristine image per item, one ConcolicRun
      // reset() per item, one recorder, one driver, one re-seeded Rng.
      // Every WorkItem fully determines its run (seed, IM, stack), so
      // pooling is schedule-invariant by the same argument as before.
      Rng R(0);
      InputManager Inputs(R);
      Interp VM(*Program.Module, Options.Interp);
      if (Jit)
        VM.setJit(Jit.get());
      const Interp::Snapshot Pristine = VM.snapshot();
      ConcolicRun Hooks(Inputs.registry(), Arena, std::vector<BranchRecord>(),
                        Options.Concolic);
      VM.setHooks(&Hooks);
      // Every worker keeps a tracker when the block graph exists — even
      // portfolio's non-distance workers, so the children they push carry
      // valid frontier priorities for the distance worker's claims. Each
      // tracker re-syncs from the shared bitmap only when the coverage
      // generation counter moved since its last sync.
      std::optional<DistancePriorityTracker> Tracker;
      uint64_t LastSyncGen = ~uint64_t(0);
      if (DistMap)
        Tracker.emplace(*DistMap);
      auto SyncTracker = [&]() -> const std::vector<uint32_t> * {
        if (!Tracker)
          return nullptr;
        uint64_t Gen = Shared.CovGen.load();
        if (Gen != LastSyncGen) {
          // Verifier-proved directions are not targets: fold them in as
          // covered so distance priorities aim at UNKNOWN sites only.
          std::vector<bool> Bits = Shared.coverageBits();
          if (Proofs && Proofs->ProvedCount)
            for (size_t I = 0;
                 I < Proofs->ProvedDirs.size() && I < Bits.size(); ++I)
              if (Proofs->ProvedDirs[I])
                Bits[I] = true;
          Tracker->sync(Bits);
          LastSyncGen = Gen;
        }
        return &Tracker->priorities();
      };
      std::optional<CheckpointRecorder> Recorder;
      if (UseSnapshots)
        Recorder.emplace(
            VM, [&Inputs] { return Inputs.inputsThisRun(); }, Options.Capture,
            &Demand, Tracker ? &Tracker->priorities() : nullptr);
      TestDriver Driver(Interface, Program.GlobalIndexOf, Inputs, VM, &Hooks,
                        Options.Driver);
      uint64_t PrevExecuted = 0;
      JitRunStats PrevJit;
      uint64_t LocalMaterializeNanos = 0;

      auto ProcessItem = [&](WorkItem Item) {
        unsigned Slot = Shared.RunsClaimed.fetch_add(1);
        if (Slot >= Options.MaxRuns) {
          Queue.close();
          return;
        }

        R.setState(Item.RngSeed);
        Inputs.reset();
        Inputs.setIM(std::move(Item.IM));
        Hooks.reset(std::move(Item.Stack));
        if (Recorder) {
          Recorder->reset();
          Hooks.setCaptureHook(&*Recorder);
        }
        unsigned StartCall = 0;
        bool Resumed = false;
        if (Item.Pack) {
          // Resume from the parent's deepest checkpoint consistent with
          // the model. The replayed prefix consumes no random bits (all
          // its inputs are IM-defined), so a re-seeded Rng reaches the
          // suffix in the same state either way.
          std::optional<MaterializedCheckpoint> Resume;
          if (Item.MinChanged) {
            auto T0 = std::chrono::steady_clock::now();
            Resume = Item.Pack->resumeFor(*Item.MinChanged);
            LocalMaterializeNanos +=
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
          }
          if (Resume) {
            Inputs.resumeRun(Resume->InputsCreated, Resume->RegistryPrefix);
            VM.resume(Resume->Vm);
            Hooks.adoptCheckpoint(Resume->BranchIndex,
                                  std::move(Resume->Constraints),
                                  std::move(Resume->S),
                                  std::move(Resume->Cov), Resume->CovCount,
                                  Resume->Flags);
            StartCall = Resume->CallIndex;
            Resumed = true;
            Shared.RunsResumed.fetch_add(1);
            Shared.InstructionsSkipped.fetch_add(Resume->SkippedSteps);
          } else {
            Shared.ResumeMisses.fetch_add(1);
            VM.resume(Pristine);
            Inputs.beginRun();
          }
          Item.Pack.reset();
        } else {
          VM.resume(Pristine);
          Inputs.beginRun();
        }
        RunResult Result = executeDartRun(Options, TU, Driver, VM,
                                          Recorder ? &*Recorder : nullptr,
                                          StartCall, Resumed);

        Shared.TotalSteps.fetch_add(Result.Steps);
        Shared.InstructionsExecuted.fetch_add(VM.executedSteps() -
                                              PrevExecuted);
        PrevExecuted = VM.executedSteps();
        {
          JitRunStats JS = VM.jitStats();
          JitRunStats D;
          D.BlockEntries = JS.BlockEntries - PrevJit.BlockEntries;
          D.NativeInstrs = JS.NativeInstrs - PrevJit.NativeInstrs;
          D.Deopts = JS.Deopts - PrevJit.Deopts;
          Shared.mergeJit(D);
          PrevJit = JS;
        }
        if (!Hooks.flags().AllLinear)
          Shared.AllLinear.store(false);
        if (!Hooks.flags().AllLocsDefinite)
          Shared.AllLocsDefinite.store(false);
        ++Mine.Runs;
        Mine.FreshDirections += Shared.mergeCoverage(Hooks.coveredBits());

        unsigned RunNumber;
        {
          std::lock_guard<std::mutex> L(Shared.ReportMutex);
          RunNumber = Shared.RunsDone.fetch_add(1) + 1;
          if (Options.TrackCoverageTimeline)
            Shared.CoverageTimeline.push_back(Shared.CoveredCount.load());
          if (Options.LogRuns)
            Shared.RunLog.push_back(
                describeRun(RunNumber, Result, &Hooks, Inputs));
        }

        if (Result.Status == RunStatus::Errored) {
          BugInfo Bug;
          Bug.Error = Result.Error;
          Bug.FoundAtRun = RunNumber;
          Bug.Inputs = collectBugInputs(Inputs);
          Mine.Bugs.push_back(std::move(Bug));
          ++Mine.BugRuns;
          Shared.BugFound.store(true);
          if (Options.StopAtFirstError) {
            Shared.Stop.store(true);
            Queue.close();
            return;
          }
          // The errored path is terminal but its prefix still gets
          // expanded, exactly like the sequential fall-through to
          // solve_path_constraint.
        } else if (Result.Status == RunStatus::ForcingMismatch) {
          // A prior incompleteness misled the prediction; the item is
          // dropped and — as in the sequential engine — completeness is
          // forfeited, so the drain handler will schedule a random
          // restart.
          Shared.ForcingMismatches.fetch_add(1);
          Shared.AllLinear.store(false);
          return;
        }

        if (CoverableTotal &&
            Shared.CoverableCovered.load() >= CoverableTotal) {
          // Coverage saturated: the remaining budget would only re-walk
          // known behaviour. Stop the campaign; in-flight runs finish.
          Shared.StoppedEarly.store(true);
          Shared.Stop.store(true);
          Queue.close();
          return;
        }

        // Speculative expansion: solve the negation of every not-done
        // branch of this path and push all satisfiable flips.
        PathData Path = Hooks.takePath();
        std::shared_ptr<CheckpointPack> Pack;
        if (Recorder) {
          Pack = Recorder->finalize(Hooks, Path, Inputs.registry());
          Shared.CheckpointsCaptured.fetch_add(Pack->numEntries());
          Ledger.admit(Pack);
        }
        auto DomainOf = [&Inputs, Static = Options.StaticPrune](InputId Id) {
          return Static ? staticInputDomain(Inputs, Id) : Inputs.domainOf(Id);
        };
        if (Sampler)
          Sampler->insert(pathSignature(Path, Arena));
        const std::vector<uint32_t> *PriorityPtr = SyncTracker();
        CandidateSet Set = solveCandidates(
            Path, Arena, Solver, DomainOf, Inputs.im(), MyStrategy, R,
            Options.MaxSpeculativePerRun,
            MyStrategy == SearchStrategy::Distance ? PriorityPtr : nullptr,
            MyStrategy == SearchStrategy::Diversity && Sampler ? &*Sampler
                                                               : nullptr);
        Mine.SolverCalls += Set.SolverCalls;
        if (Set.Truncated)
          Shared.Truncated.store(true);
        if (Set.TheoryMisled)
          Shared.AllLinear.store(false);
        for (SolveOutcome &Cand : Set.Candidates) {
          WorkItem Child;
          Child.Stack = std::move(Cand.NextStack);
          // Generational: the child only expands branches deeper than the
          // flip — everything shallower belongs to this item's other
          // candidates. This makes the expansion a partition of the tree.
          for (size_t I = 0; I + 1 < Child.Stack.size(); ++I)
            Child.Stack[I].Done = true;
          Child.IM = Inputs.im();
          if (Pack) {
            Child.Pack = Pack;
            Child.MinChanged = minChangedInput(Cand.Model, Inputs.im());
            // Feed the capture cost model: this id is the gate a future
            // resume will test, so its level is worth capturing.
            if (Child.MinChanged)
              Demand.record(*Child.MinChanged);
          }
          for (const auto &[Id, V] : Cand.Model)
            Child.IM[Id] = V;
          Child.RngSeed = mixSeed(Item.RngSeed, Cand.FlippedIndex + 1);
          Child.TreeSalt = Item.TreeSalt;
          if (PriorityPtr && !Child.Stack.empty()) {
            // The flipped record's direction is what the child will newly
            // take; its priority decides the distance worker's pop order.
            const BranchRecord &Flip = Child.Stack.back();
            size_t Bit = 2 * size_t(Flip.SiteId) + (Flip.Branch ? 1 : 0);
            Child.Priority =
                Bit < PriorityPtr->size() ? (*PriorityPtr)[Bit] : 0;
          }
          if (Sampler)
            Child.Sig = predictedSignature(Path, Cand.FlippedIndex, Arena);
          if (Seen.insert(prefixHash(Child.Stack, Child.TreeSalt)))
            Queue.push(std::move(Child));
        }
      };

      for (;;) {
        std::optional<WorkItem> Item = Queue.pop(MyPolicy);
        if (!Item)
          break;
        ProcessItem(std::move(*Item));
        Queue.taskDone();
      }
      Mine.Solver = Solver.stats();
      if (Tracker) {
        Mine.IncrementalUpdates = Tracker->incrementalUpdates();
        Mine.FullRecomputes = Tracker->fullRecomputes();
      }
      Shared.MaterializeNanos.fetch_add(LocalMaterializeNanos);
      if (Recorder) {
        Shared.CaptureNanos.fetch_add(Recorder->captureNanos());
        Shared.LevelsSkippedByDemand.fetch_add(
            Recorder->levelsSkippedByDemand());
      }
    });
  }
  for (std::thread &T : Workers)
    T.join();

  Report.Runs = Shared.RunsDone.load();
  Report.Restarts = Restarts;
  Report.ForcingMismatches = Shared.ForcingMismatches.load();
  Report.CompleteExploration = Complete;
  Report.StoppedEarly = Shared.StoppedEarly.load();
  Report.FinalFlags.AllLinear = Shared.AllLinear.load();
  Report.FinalFlags.AllLocsDefinite = Shared.AllLocsDefinite.load();
  Report.BranchDirectionsCovered = Shared.CoveredCount.load();
  Report.CoverableCovered = Shared.CoverableCovered.load();
  Report.CoverageCertified =
      Summary && Report.CoverableCovered >= Summary->CoverableCount;
  Report.Coverage = Shared.coverageBits();
  Report.Arena = Arena.stats();
  Report.TotalSteps = Shared.TotalSteps.load();
  Report.Snapshot.CheckpointsCaptured = Shared.CheckpointsCaptured.load();
  Report.Snapshot.RunsResumed = Shared.RunsResumed.load();
  Report.Snapshot.ResumeMisses = Shared.ResumeMisses.load();
  Report.Snapshot.InstructionsExecuted = Shared.InstructionsExecuted.load();
  Report.Snapshot.InstructionsSkipped = Shared.InstructionsSkipped.load();
  Report.Snapshot.PacksEvicted = Ledger.evictions();
  Report.Snapshot.PeakResidentBytes = Ledger.peakResidentBytes();
  Report.Snapshot.CaptureNanos = Shared.CaptureNanos.load();
  Report.Snapshot.MaterializeNanos = Shared.MaterializeNanos.load();
  Report.Snapshot.LevelsSkippedByDemand = Shared.LevelsSkippedByDemand.load();
  Report.Jit.BlockEntries = Shared.JitBlockEntries.load();
  Report.Jit.NativeInstrs = Shared.JitNativeInstrs.load();
  Report.Jit.Deopts = Shared.JitDeopts.load();
  Report.CoverageTimeline = std::move(Shared.CoverageTimeline);
  Report.RunLog = std::move(Shared.RunLog);
  for (WorkerResult &WR : Results) {
    Report.Solver.merge(WR.Solver);
    Report.SolverCalls += WR.SolverCalls;
    Report.DistanceIncrementalUpdates += WR.IncrementalUpdates;
    Report.DistanceFullRecomputes += WR.FullRecomputes;
    for (BugInfo &B : WR.Bugs)
      Report.Bugs.push_back(std::move(B));
  }
  if (Options.Strategy == SearchStrategy::Portfolio) {
    // Attribution rows, folded per strategy in enum order so the list is
    // deterministic for any worker count or schedule.
    for (SearchStrategy S :
         {SearchStrategy::DepthFirst, SearchStrategy::Distance,
          SearchStrategy::Diversity}) {
      StrategyAttribution Row;
      Row.Strategy = S;
      for (const WorkerResult &WR : Results) {
        if (WR.Strategy != S)
          continue;
        ++Row.Workers;
        Row.Runs += WR.Runs;
        Row.FreshDirections += WR.FreshDirections;
        Row.Bugs += WR.BugRuns;
      }
      if (Row.Workers)
        Report.StrategyMix.push_back(Row);
    }
  }
  Report.BugFound = !Report.Bugs.empty();
  sortBugs(Report.Bugs);
  return Report;
}

DartReport ParallelDartEngine::runRandomOnly() {
  const unsigned NumWorkers = Options.Jobs;
  DartReport Report;
  Report.BranchSitesTotal = Program.Module->numBranchSites();

  std::unique_ptr<const jit::JitProgram> Jit;
  if (Options.Jit)
    Jit = jit::JitProgram::build(*Program.Module, Options.ToplevelName);
  if (Jit) {
    Report.Jit.Enabled = true;
    Report.Jit.BlocksCompiled = Jit->stats().BlocksCompiled;
    Report.Jit.UnitsCompiled = Jit->stats().UnitsCompiled;
    Report.Jit.CodeBytes = Jit->stats().CodeBytes;
  }

  SharedState Shared(Report.BranchSitesTotal);

  struct WorkerResult {
    std::vector<BugInfo> Bugs;
  };
  std::vector<WorkerResult> Results(NumWorkers);
  std::vector<std::thread> Workers;
  Workers.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W) {
    Workers.emplace_back([&, W]() {
      WorkerResult &Mine = Results[W];
      // Per-worker pooled VM / inputs / driver; each run re-seeds the Rng
      // by slot and resumes the pristine image, so the set of runs stays
      // the same for any worker count.
      Rng R(0);
      InputManager Inputs(R);
      Inputs.setEphemeralDraws(true);
      Interp VM(*Program.Module, Options.Interp);
      if (Jit)
        VM.setJit(Jit.get());
      const Interp::Snapshot Pristine = VM.snapshot();
      std::optional<RandomCoverageHooks> CovHooks;
      if (Options.TrackCoverageTimeline) {
        // One accumulating bitmap per worker: mergeCoverage ORs, so
        // re-merging earlier runs' bits is idempotent.
        CovHooks.emplace(Report.BranchSitesTotal);
        VM.setHooks(&*CovHooks);
      }
      TestDriver Driver(Interface, Program.GlobalIndexOf, Inputs, VM,
                        nullptr, Options.Driver);
      uint64_t PrevExecuted = 0;
      JitRunStats PrevJit;
      for (;;) {
        if (Shared.Stop.load())
          break;
        unsigned Slot = Shared.RunsClaimed.fetch_add(1);
        if (Slot >= Options.MaxRuns)
          break;
        R.setState(mixSeed(Options.Seed, Slot));
        Inputs.restartRandom();
        Inputs.beginRun();
        VM.resume(Pristine);
        RunResult Result = executeDartRun(Options, TU, Driver, VM);
        Shared.TotalSteps.fetch_add(Result.Steps);
        Shared.InstructionsExecuted.fetch_add(VM.executedSteps() -
                                              PrevExecuted);
        PrevExecuted = VM.executedSteps();
        {
          JitRunStats JS = VM.jitStats();
          JitRunStats D;
          D.BlockEntries = JS.BlockEntries - PrevJit.BlockEntries;
          D.NativeInstrs = JS.NativeInstrs - PrevJit.NativeInstrs;
          D.Deopts = JS.Deopts - PrevJit.Deopts;
          Shared.mergeJit(D);
          PrevJit = JS;
        }
        if (CovHooks)
          Shared.mergeCoverage(CovHooks->Covered);
        unsigned RunNumber;
        {
          std::lock_guard<std::mutex> L(Shared.ReportMutex);
          RunNumber = Shared.RunsDone.fetch_add(1) + 1;
          if (Options.TrackCoverageTimeline)
            Shared.CoverageTimeline.push_back(Shared.CoveredCount.load());
          if (Options.LogRuns)
            Shared.RunLog.push_back(
                describeRun(RunNumber, Result, nullptr, Inputs));
        }
        if (Result.Status == RunStatus::Errored) {
          BugInfo Bug;
          Bug.Error = Result.Error;
          Bug.FoundAtRun = RunNumber;
          Bug.Inputs = collectBugInputs(Inputs);
          Mine.Bugs.push_back(std::move(Bug));
          Shared.BugFound.store(true);
          if (Options.StopAtFirstError) {
            Shared.Stop.store(true);
            break;
          }
        }
      }
    });
  }
  for (std::thread &T : Workers)
    T.join();

  Report.Runs = Shared.RunsDone.load();
  Report.BranchDirectionsCovered = Shared.CoveredCount.load();
  Report.Coverage = Shared.coverageBits();
  Report.TotalSteps = Shared.TotalSteps.load();
  Report.Snapshot.InstructionsExecuted = Shared.InstructionsExecuted.load();
  Report.Jit.BlockEntries = Shared.JitBlockEntries.load();
  Report.Jit.NativeInstrs = Shared.JitNativeInstrs.load();
  Report.Jit.Deopts = Shared.JitDeopts.load();
  Report.CoverageTimeline = std::move(Shared.CoverageTimeline);
  Report.RunLog = std::move(Shared.RunLog);
  for (WorkerResult &WR : Results)
    for (BugInfo &B : WR.Bugs)
      Report.Bugs.push_back(std::move(B));
  Report.BugFound = !Report.Bugs.empty();
  sortBugs(Report.Bugs);
  return Report;
}
