//===- DartEngine.h - run_DART: the outer testing loop ----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 2's run_DART: the directed search (inner loop, one instrumented run
/// per iteration, next inputs from solve_path_constraint) wrapped in random
/// restarts (outer loop) that continue while any completeness flag is off.
/// A pure random-testing mode (fresh random inputs every run, no symbolic
/// work) provides the baseline the paper compares against in §4.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CORE_DARTENGINE_H
#define DART_CORE_DARTENGINE_H

#include "analysis/Dependence.h"
#include "analysis/PointsTo.h"
#include "analysis/Verify.h"
#include "concolic/Checkpoint.h"
#include "concolic/PathSearch.h"
#include "core/Interface.h"
#include "core/TestDriver.h"
#include "ir/Lowering.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace dart {

/// All knobs of one DART session.
struct DartOptions {
  std::string ToplevelName;
  /// Number of times the toplevel function is called per run (paper §3.2).
  unsigned Depth = 1;
  uint64_t Seed = 1;
  /// Total instrumented-run budget (the oSIP experiment caps this at 1000
  /// per function, §4.3).
  unsigned MaxRuns = 1000000;
  /// Stop after the first error (Fig. 2 exits at the first bug). Disable
  /// to keep exploring and collect every distinct error path.
  bool StopAtFirstError = true;
  /// Pure random testing: no symbolic shadow, fresh random inputs per run.
  bool RandomOnly = false;
  /// Worker threads. 1 = the paper-exact sequential loop (DartEngine);
  /// >1 = the frontier-based ParallelDartEngine with speculative solving.
  unsigned Jobs = 1;
  /// Parallel engine only: cap on speculative flips pushed per run
  /// (0 = every flippable branch, the only setting that preserves
  /// exhaustive exploration and hence Theorem 1(b) claims).
  unsigned MaxSpeculativePerRun = 0;
  /// Consult the static dataflow summary (src/analysis) before the search:
  /// branch sites whose negated path constraint is statically Unsat are
  /// born done and never reach the solver, and type-derived interval facts
  /// seed the solver's variable bounds. Observable behaviour (bugs, models,
  /// coverage) is identical with the switch on or off — only solver
  /// traffic changes; off = ablation baseline.
  bool StaticPrune = true;
  /// Execution snapshot-resume (src/concolic/Checkpoint.*): capture COW
  /// VM + symbolic-state checkpoints at selected conditionals (see
  /// Capture) and start each directed child run from the deepest
  /// checkpoint consistent with its solver model, replaying only the path
  /// suffix. The search is observably identical on or off (same runs,
  /// bugs, models, coverage, schedules) — only executed-instruction
  /// counts change; off = ablation baseline. Ignored in RandomOnly mode
  /// (no directed children).
  bool Snapshots = true;
  /// Byte budget for resident checkpoint packs (approximate, LRU-evicted;
  /// see CheckpointLedger). 0 = unbounded.
  uint64_t SnapshotBudgetBytes = uint64_t(64) << 20;
  /// Capture cost model: which conditionals get a checkpoint entry.
  /// Changing these knobs only shifts which resumes hit (deeper/shallower
  /// entries, more/fewer full replays), never the search itself.
  CheckpointPolicy Capture;
  /// Native-tier execution (src/jit): compile straight-line IR to x86-64
  /// machine code, keeping the interpreter as the oracle. A pure
  /// performance lever — the search is byte-identical on or off (same
  /// runs, bugs, models, coverage, step counts). Silently degrades to the
  /// interpreter on unsupported hosts, under sanitizers, and in
  /// -DDART_JIT=OFF builds.
  bool Jit = true;
  /// Run the prove-or-test verifier (Verify.h) over the static summary
  /// before the search (needs StaticPrune): directions proved infeasible
  /// by the path-sensitive zone/WP prover leave the coverable universe —
  /// heuristic early exit fires sooner and saturation becomes a
  /// completeness certificate — and count as covered in the distance
  /// strategy's target table so directed effort goes to UNKNOWN sites.
  /// With zero proofs the search is byte-identical on or off.
  bool Verify = true;
  /// Record which run first covered each branch direction, with its
  /// input vector, in DartReport::Witnesses (the dynamic evidence `dart
  /// verify` merges into BUG verdicts). Sequential engine only; off by
  /// default — it copies the input list per fresh direction.
  bool CaptureWitnesses = false;
  SearchStrategy Strategy = SearchStrategy::DepthFirst;
  ConcolicOptions Concolic;
  SolverOptions Solver;
  InterpOptions Interp;
  DriverOptions Driver;
  /// Record a one-line summary of every run in DartReport::RunLog
  /// (inputs, outcome, path length). For debugging searches; off by
  /// default — the Dolev-Yao searches make millions of runs.
  bool LogRuns = false;
  /// Record cumulative branch-direction coverage after every run in
  /// DartReport::CoverageTimeline (one entry per run). Off by default.
  bool TrackCoverageTimeline = false;
};

/// One error found, with the inputs that trigger it.
struct BugInfo {
  RunError Error;
  unsigned FoundAtRun = 0;
  /// (input name, value) pairs of the failing run.
  std::vector<std::pair<std::string, int64_t>> Inputs;

  std::string toString() const;
};

/// Snapshot-resume statistics for one session (DartOptions::Snapshots).
struct SnapshotStats {
  uint64_t CheckpointsCaptured = 0;
  uint64_t RunsResumed = 0;   ///< directed runs started from a checkpoint
  uint64_t ResumeMisses = 0;  ///< directed children with no usable entry
  uint64_t InstructionsExecuted = 0; ///< instructions actually run
  uint64_t InstructionsSkipped = 0;  ///< prefix instructions resumes avoided
  uint64_t PacksEvicted = 0;
  uint64_t PeakResidentBytes = 0;
  uint64_t CaptureNanos = 0;     ///< wall time spent taking checkpoints
  uint64_t MaterializeNanos = 0; ///< wall time spent reconstructing resumes
  uint64_t LevelsSkippedByDemand = 0; ///< captures elided by demand feedback

  /// Fraction of the search's total instruction work that resume skipped.
  double resumedInstructionFraction() const {
    uint64_t Total = InstructionsExecuted + InstructionsSkipped;
    return Total ? double(InstructionsSkipped) / double(Total) : 0.0;
  }
  void merge(const SnapshotStats &O) {
    CheckpointsCaptured += O.CheckpointsCaptured;
    RunsResumed += O.RunsResumed;
    ResumeMisses += O.ResumeMisses;
    InstructionsExecuted += O.InstructionsExecuted;
    InstructionsSkipped += O.InstructionsSkipped;
    PacksEvicted += O.PacksEvicted;
    PeakResidentBytes = std::max(PeakResidentBytes, O.PeakResidentBytes);
    CaptureNanos += O.CaptureNanos;
    MaterializeNanos += O.MaterializeNanos;
    LevelsSkippedByDemand += O.LevelsSkippedByDemand;
  }
};

/// Native-tier statistics for one session (DartOptions::Jit): build-time
/// counts from the JitProgram plus runtime counters merged across every VM
/// (and every parallel worker).
struct JitStats {
  bool Enabled = false; ///< a JitProgram was built and installed
  uint64_t BlocksCompiled = 0;
  uint64_t UnitsCompiled = 0;
  uint64_t CodeBytes = 0;
  uint64_t BlockEntries = 0;
  uint64_t NativeInstrs = 0;
  uint64_t Deopts = 0;

  /// Share of all executed instructions that retired in machine code.
  double nativeFraction(uint64_t TotalExecuted) const {
    return TotalExecuted ? double(NativeInstrs) / double(TotalExecuted) : 0.0;
  }
  void merge(const JitRunStats &R) {
    BlockEntries += R.BlockEntries;
    NativeInstrs += R.NativeInstrs;
    Deopts += R.Deopts;
  }
};

/// Which run first covered a branch direction (DartOptions::
/// CaptureWitnesses): the concrete evidence behind a BUG verdict.
struct DirectionWitness {
  uint32_t Bit = 0; ///< coverage bit `2*site + direction`
  unsigned Run = 0; ///< 1-based run that first covered it
  /// The covering run came from a solver model that targeted exactly
  /// this direction (vs. stumbled on during an initial/random run).
  bool Directed = false;
  std::vector<std::pair<std::string, int64_t>> Inputs;
};

/// Per-strategy contribution of a portfolio campaign: one row per single
/// strategy the parallel engine assigned to at least one worker
/// (`--strategy portfolio`; empty for single-strategy sessions so their
/// reports stay byte-identical).
struct StrategyAttribution {
  SearchStrategy Strategy = SearchStrategy::DepthFirst;
  unsigned Workers = 0;         ///< workers running this strategy
  uint64_t Runs = 0;            ///< instrumented runs they executed
  uint64_t FreshDirections = 0; ///< branch directions they covered first
  uint64_t Bugs = 0;            ///< erroring runs they produced
};

/// Session outcome and statistics.
struct DartReport {
  unsigned Runs = 0;
  unsigned Restarts = 0;
  unsigned ForcingMismatches = 0;
  bool BugFound = false;
  std::vector<BugInfo> Bugs;
  /// Theorem 1(b): the directed search finished with both completeness
  /// flags intact — every feasible path was exercised, no input can abort.
  bool CompleteExploration = false;
  /// The campaign stopped before exhausting its run budget because every
  /// statically coverable branch direction (StaticSummary::CoverableDirs)
  /// was covered. Heuristic strategies only — depth-first keeps running
  /// toward Theorem 1(b)'s all-paths claim, which coverage saturation
  /// does not imply.
  bool StoppedEarly = false;
  CompletenessFlags FinalFlags;
  unsigned BranchSitesTotal = 0;
  unsigned BranchDirectionsCovered = 0;
  /// Final branch-direction coverage bitmap (bit 2*site + direction); the
  /// differential tests compare these byte-for-byte across engines.
  std::vector<bool> Coverage;
  SolverStats Solver;
  /// Predicate-interning arena statistics for the session.
  PredArenaStats Arena;
  /// Points-to analysis shape of the static summary (zeroed when
  /// StaticPrune is off or in random-only mode; surfaced by --stats).
  PointsToStats PointsTo;
  /// Dependence-analysis shape (sources, relevant-input sets, control
  /// edges; zeroed under the same conditions as PointsTo).
  DependenceStats Dependence;
  uint64_t SolverCalls = 0;
  uint64_t TotalSteps = 0;
  /// Snapshot-resume accounting. TotalSteps stays replay-identical with
  /// snapshots on or off (a resumed run reports the full path's step
  /// count); Snapshot.InstructionsExecuted is the work actually done.
  SnapshotStats Snapshot;
  /// Native-tier accounting (zeroed when the JIT is off or unsupported).
  JitStats Jit;
  /// Incremental distance-table maintenance counters (distance strategy
  /// and portfolio's distance worker; zero otherwise). Updates are O(1)
  /// per fresh coverage bit; recomputes are whole-module BFS passes.
  uint64_t DistanceIncrementalUpdates = 0;
  uint64_t DistanceFullRecomputes = 0;
  /// Prove-or-test verifier accounting (zeroed when DartOptions::Verify
  /// is off, StaticPrune is off, or in random-only mode). None of these
  /// appear in toString(): existing report goldens stay byte-identical.
  unsigned DirsProvedInfeasible = 0;
  VerifyStats Verify;
  /// The post-proof coverable universe and how much of it was covered.
  unsigned CoverableDirsTotal = 0;
  unsigned CoverableCovered = 0;
  /// Every remaining coverable direction was covered: heuristic
  /// saturation upgraded to a branch-coverage completeness certificate
  /// (proofs excluded the rest).
  bool CoverageCertified = false;
  /// First-coverage witnesses (DartOptions::CaptureWitnesses only).
  std::vector<DirectionWitness> Witnesses;
  /// Portfolio attribution (`--strategy portfolio` only; surfaced by
  /// --stats). Sorted by strategy enum order, deterministic at any job
  /// count.
  std::vector<StrategyAttribution> StrategyMix;
  /// One line per run when DartOptions::LogRuns is set.
  std::vector<std::string> RunLog;
  /// Cumulative covered branch directions after each run, when
  /// DartOptions::TrackCoverageTimeline is set (the §4.1 coverage-vs-runs
  /// comparison of directed and random search).
  std::vector<unsigned> CoverageTimeline;

  std::string toString() const;
};

/// The solver domain of input \p Id under static bounds seeding: the
/// dynamic domain intersected with the canonical-value range of the
/// input's ValType (a type-derived interval fact; see DartOptions::
/// StaticPrune). Shared by both engines' DomainOf callbacks.
VarDomain staticInputDomain(const InputManager &Inputs, InputId Id);

/// Executes one instrumented run: DartOptions::Depth calls of the toplevel
/// over driver-prepared arguments. Shared by the sequential engine and the
/// parallel workers. With a non-null \p Recorder its CallIndex tracks the
/// call loop. When \p ResumeInProgress is set, the VM was resumed from a
/// checkpoint mid-call \p StartCall: extern-variable init is skipped (the
/// restored image contains it) and the first call continues via
/// finishResumedCall.
RunResult executeDartRun(const DartOptions &Options,
                         const TranslationUnit &TU, TestDriver &Driver,
                         Interp &VM, CheckpointRecorder *Recorder = nullptr,
                         unsigned StartCall = 0,
                         bool ResumeInProgress = false);

/// Drives DART over one lowered program. The TranslationUnit and
/// LoweredProgram must outlive the engine.
class DartEngine {
public:
  DartEngine(const TranslationUnit &TU, const LoweredProgram &Program,
             DartOptions Options);

  /// Runs the session to completion (bug, completeness, or budget).
  DartReport run();

  const ProgramInterface &interface() const { return Interface; }

private:
  const TranslationUnit &TU;
  const LoweredProgram &Program;
  DartOptions Options;
  ProgramInterface Interface;
};

} // namespace dart

#endif // DART_CORE_DARTENGINE_H
