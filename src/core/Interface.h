//===- Interface.h - Automatic interface extraction -------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Technique (1) of DART (paper §3.1): static extraction of a program's
/// external interface, i.e. the channels through which the environment can
/// feed it inputs:
///
///   - the arguments of the user-chosen toplevel function,
///   - external variables (`extern`, never defined/initialized),
///   - external functions (declared or called, never defined, and not a
///     built-in library function).
///
//===----------------------------------------------------------------------===//

#ifndef DART_CORE_INTERFACE_H
#define DART_CORE_INTERFACE_H

#include "ast/AST.h"

#include <string>
#include <vector>

namespace dart {

/// One external function of the interface.
struct ExternalFunctionInfo {
  const FunctionDecl *Decl = nullptr;
  std::string Name;
};

/// The extracted external interface of a program w.r.t. a toplevel
/// function.
struct ProgramInterface {
  const FunctionDecl *Toplevel = nullptr;
  /// Toplevel parameters (inputs on every call).
  std::vector<const VarDecl *> ToplevelParams;
  /// `extern` variables: inputs initialized once per run.
  std::vector<const VarDecl *> ExternVariables;
  /// Environment-controlled functions: fresh input per call.
  std::vector<ExternalFunctionInfo> ExternalFunctions;

  /// Human-readable summary for tools/tests.
  std::string toString() const;
};

/// Extracts the interface. Returns nullopt-equivalent (Toplevel == nullptr)
/// if \p ToplevelName has no definition in \p TU.
ProgramInterface extractInterface(const TranslationUnit &TU,
                                  const std::string &ToplevelName);

} // namespace dart

#endif // DART_CORE_INTERFACE_H
