//===- Dart.cpp - Public DART API ------------------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Dart.h"

#include "core/ParallelEngine.h"
#include "sema/Sema.h"

using namespace dart;

std::unique_ptr<Dart> Dart::fromSource(std::string_view Source,
                                       std::string *ErrorsOut) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  if (!TU) {
    if (ErrorsOut)
      *ErrorsOut = Diags.toString();
    return nullptr;
  }
  LoweredProgram Program = lowerToIR(*TU, Diags);
  if (Diags.hasErrors()) {
    if (ErrorsOut)
      *ErrorsOut = Diags.toString();
    return nullptr;
  }
  auto D = std::unique_ptr<Dart>(new Dart());
  D->TU = std::move(TU);
  D->Program = std::move(Program);
  return D;
}

DartReport Dart::run(const DartOptions &Options) const {
  if (Options.Jobs > 1) {
    ParallelDartEngine Engine(*TU, Program, Options);
    return Engine.run();
  }
  DartEngine Engine(*TU, Program, Options);
  return Engine.run();
}

std::vector<std::string> Dart::definedFunctions() const {
  std::vector<std::string> Names;
  for (const auto &D : TU->decls())
    if (const auto *F = dyn_cast<FunctionDecl>(D.get()))
      if (F->hasBody())
        Names.push_back(F->name());
  return Names;
}
