//===- Dart.h - Public DART API ---------------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop API of the library. Typical use:
///
/// \code
///   std::string Errors;
///   auto D = dart::Dart::fromSource(MiniCProgram, &Errors);
///   if (!D) { /* report Errors */ }
///   dart::DartOptions Opts;
///   Opts.ToplevelName = "h";
///   dart::DartReport Report = D->run(Opts);
///   if (Report.BugFound) { /* Report.Bugs[0] has the inputs */ }
/// \endcode
///
/// A Dart instance owns the parsed, checked and lowered program and can run
/// any number of sessions over it (different toplevel functions, depths,
/// seeds, strategies).
///
//===----------------------------------------------------------------------===//

#ifndef DART_CORE_DART_H
#define DART_CORE_DART_H

#include "core/DartEngine.h"

#include <memory>
#include <string>

namespace dart {

class Dart {
public:
  /// Compiles a MiniC program. On error returns null and, if \p ErrorsOut
  /// is non-null, stores the diagnostics there.
  static std::unique_ptr<Dart> fromSource(std::string_view Source,
                                          std::string *ErrorsOut = nullptr);

  /// Runs one DART session (Fig. 2's run_DART).
  DartReport run(const DartOptions &Options) const;

  /// Extracted interface for \p ToplevelName (paper §3.1).
  ProgramInterface interfaceFor(const std::string &ToplevelName) const {
    return extractInterface(*TU, ToplevelName);
  }

  /// The Fig. 7-style driver source for documentation/inspection.
  std::string driverSourceFor(const std::string &ToplevelName,
                              unsigned Depth) const {
    ProgramInterface I = interfaceFor(ToplevelName);
    return emitDriverSource(I, Depth);
  }

  /// Names of all functions with bodies (candidate toplevels), in source
  /// order — used by the oSIP-style library audit (§4.3).
  std::vector<std::string> definedFunctions() const;

  const TranslationUnit &ast() const { return *TU; }
  const IRModule &module() const { return *Program.Module; }

private:
  Dart() = default;

  std::unique_ptr<TranslationUnit> TU;
  LoweredProgram Program;
};

} // namespace dart

#endif // DART_CORE_DART_H
