//===- ParallelEngine.h - Multi-worker directed search ----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel run_DART: N workers consume a shared *frontier* of work items
/// (predicted stack prefix + input vector IM + derived RNG seed), each
/// owning a private Interp VM, ConcolicRun and LinearSolver. After every
/// instrumented run a worker speculatively solves the negation of *all*
/// not-done branches of the executed path (not just the deepest, as the
/// sequential Fig. 5 loop does) and pushes the satisfiable candidates back
/// onto the frontier — a generational expansion in the SAGE style.
///
/// The expansion partitions the path tree: a child produced by flipping
/// branch j carries the prefix 0..j with entries 0..j marked done, so it
/// only ever expands branches *deeper* than j. Every feasible path the
/// sequential depth-first search reaches is therefore reached exactly once
/// (per restart tree), just in a schedule-dependent order; Theorem 1(a)
/// soundness is untouched because every run still executes concretely.
///
/// Shared state is minimal: an atomic branch-direction coverage bitmap, a
/// sharded seen-prefix dedup filter, atomic run/step budgets and
/// completeness flags, and one SolverQueryCache memoizing UNSAT prefixes
/// across all workers. Reports merge deterministically at join (bugs sorted
/// by signature), so the bug set and final coverage are independent of the
/// worker count and schedule.
///
/// Jobs == 1 delegates to the sequential DartEngine: the report is
/// byte-identical to the paper-exact loop.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CORE_PARALLELENGINE_H
#define DART_CORE_PARALLELENGINE_H

#include "core/DartEngine.h"

namespace dart {

/// Frontier-based multi-worker engine. Construction mirrors DartEngine;
/// DartOptions::Jobs picks the worker count.
class ParallelDartEngine {
public:
  ParallelDartEngine(const TranslationUnit &TU,
                     const LoweredProgram &Program, DartOptions Options);

  /// Runs the session to completion (bug, completeness, or budget).
  DartReport run();

  const ProgramInterface &interface() const { return Interface; }

private:
  DartReport runDirected();
  DartReport runRandomOnly();

  const TranslationUnit &TU;
  const LoweredProgram &Program;
  DartOptions Options;
  ProgramInterface Interface;
};

/// Mixes a parent seed with a branch ordinal into a child seed
/// (splitmix-style finalizer). Work-item seeds are a pure function of the
/// item's position in the path tree, which keeps the parallel exploration
/// schedule-independent.
uint64_t mixSeed(uint64_t Seed, uint64_t Ordinal);

} // namespace dart

#endif // DART_CORE_PARALLELENGINE_H
