//===- DartEngine.cpp - run_DART: the outer testing loop -------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DartEngine.h"

#include "analysis/BranchDistance.h"
#include "analysis/Interval.h"
#include "analysis/StaticSummary.h"
#include "jit/Jit.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

using namespace dart;

namespace {

/// Minimal instrumentation for pure random testing: branch coverage only,
/// no symbolic shadow (used for the §4.1 coverage-vs-runs comparison).
class CoverageOnlyHooks : public ExecHooks {
public:
  explicit CoverageOnlyHooks(unsigned NumBranchSites)
      : Covered(2 * size_t(NumBranchSites), false) {}
  bool onBranch(EvalContext &Ctx, const CondJumpInstr &Branch,
                bool Taken) override {
    (void)Ctx;
    size_t Bit = 2 * size_t(Branch.siteId()) + (Taken ? 1 : 0);
    if (Bit >= Covered.size())
      Covered.resize(Bit + 1, false);
    Covered[Bit] = true;
    return true;
  }
  std::vector<bool> Covered;
};

} // namespace

VarDomain dart::staticInputDomain(const InputManager &Inputs, InputId Id) {
  VarDomain D = Inputs.domainOf(Id);
  if (Id < Inputs.registry().size()) {
    // Type-derived interval fact: the canonical-value range of the input's
    // ValType. Always a superset of the dynamic domain, so intersecting is
    // verdict- and model-neutral — it seeds the solver with the bound
    // without perturbing the search.
    int64_t Lo, Hi;
    vtRange(Inputs.registry()[Id].VT, Lo, Hi);
    D.Min = std::max(D.Min, Lo);
    D.Max = std::min(D.Max, Hi);
  }
  return D;
}

std::string BugInfo::toString() const {
  std::string Out = Error.toString() + " (run " +
                    std::to_string(FoundAtRun) + ")";
  if (!Inputs.empty()) {
    Out += " inputs:";
    for (const auto &[Name, Value] : Inputs)
      Out += " " + Name + "=" + std::to_string(Value);
  }
  return Out;
}

std::string DartReport::toString() const {
  std::string Out;
  Out += "runs: " + std::to_string(Runs) + "\n";
  Out += "restarts: " + std::to_string(Restarts) + "\n";
  Out += "bug found: " + std::string(BugFound ? "yes" : "no") + "\n";
  for (const BugInfo &B : Bugs)
    Out += "  " + B.toString() + "\n";
  Out += "complete exploration: " +
         std::string(CompleteExploration ? "yes" : "no") + "\n";
  // Only emitted when it happened: single-strategy dfs reports must stay
  // byte-identical with the strategy engine linked in.
  if (StoppedEarly)
    Out += "stopped early: yes (all coverable branch directions covered)\n";
  Out += "flags: all_linear=" +
         std::to_string(FinalFlags.AllLinear ? 1 : 0) +
         " all_locs_definite=" +
         std::to_string(FinalFlags.AllLocsDefinite ? 1 : 0) + "\n";
  Out += "branch coverage: " + std::to_string(BranchDirectionsCovered) +
         "/" + std::to_string(2 * BranchSitesTotal) + " directions\n";
  Out += "solver calls: " + std::to_string(SolverCalls) + "\n";
  return Out;
}

DartEngine::DartEngine(const TranslationUnit &TU,
                       const LoweredProgram &Program, DartOptions Options)
    : TU(TU), Program(Program), Options(std::move(Options)),
      Interface(extractInterface(TU, this->Options.ToplevelName)) {
  assert(Interface.Toplevel && "toplevel function not found or has no body");
}

RunResult dart::executeDartRun(const DartOptions &Options,
                               const TranslationUnit &TU,
                               TestDriver &Driver, Interp &VM,
                               CheckpointRecorder *Recorder,
                               unsigned StartCall, bool ResumeInProgress) {
  // On resume the restored image already contains the initialized extern
  // variables (and their inputs are defined in IM); re-initializing would
  // desync the input-id sequence.
  RunResult Result;
  const IRFunction *Toplevel = VM.findFunction(Options.ToplevelName);
  if (!Toplevel) {
    Result.Status = RunStatus::Errored;
    Result.Error.Kind = RunErrorKind::MissingFunction;
    Result.Error.Message = Options.ToplevelName;
    return Result;
  }
  if (!ResumeInProgress)
    Driver.initExternVariables();
  Driver.installExternalModel(TU);
  PreparedArgs Args; // buffers reused across the per-call loop
  for (unsigned Call = StartCall; Call < Options.Depth; ++Call) {
    if (Recorder)
      Recorder->CallIndex = Call;
    if (ResumeInProgress && Call == StartCall) {
      // The checkpoint was captured inside this call; its frames are
      // already on the restored VM stack.
      Result = VM.finishResumedCall();
    } else {
      Driver.prepareToplevelArgs(Call, Args);
      const std::vector<Addr> &ParamAddrs =
          VM.beginCall(*Toplevel, Args.Values);
      Driver.bindParams(ParamAddrs, Args);
      Result = VM.finishCall();
    }
    if (Result.Status != RunStatus::Halted)
      return Result;
  }
  return Result;
}

DartReport DartEngine::run() {
  DartReport Report;
  Report.BranchSitesTotal = Program.Module->numBranchSites();

  Rng R(Options.Seed);
  InputManager Inputs(R);
  // Pure random testing never carries input values across runs, so the
  // per-draw IM inserts can be skipped entirely.
  Inputs.setEphemeralDraws(Options.RandomOnly);
  PredArena Arena;
  LinearSolver Solver(Options.Solver);
  CompletenessFlags GlobalFlags;
  Options.Concolic.NumBranchSites = Report.BranchSitesTotal;
  // Static dataflow pass (taint + intervals): sites with statically Unsat
  // negations are born done in every run of the session. The summary must
  // outlive all runs — ConcolicRun copies the options but not the bitmap.
  std::optional<StaticSummary> Summary;
  if (!Options.RandomOnly && Options.StaticPrune) {
    Summary = computeStaticSummary(*Program.Module, Options.ToplevelName);
    Options.Concolic.PrunedSites = &Summary->PrunedSites;
    Report.PointsTo = Summary->PointsTo;
    if (Summary->Dependence)
      Report.Dependence = Summary->Dependence->Stats;
  }
  // Prove-or-test verifier: remove proved-infeasible directions from the
  // coverable universe before the search. Proofs never touch PrunedSites
  // (see Zone.h) — the solver still sees every branch; only the coverage
  // accounting and the distance targets sharpen.
  std::optional<BranchProofs> Proofs;
  if (Summary && Options.Verify) {
    Proofs = proveBranchDirections(*Program.Module, Options.ToplevelName,
                                   *Summary, Options.Depth == 1);
    applyBranchProofs(*Summary, *Proofs);
    Report.Verify = Proofs->Stats;
    Report.DirsProvedInfeasible = Proofs->ProvedCount;
  }
  if (Summary)
    Report.CoverableDirsTotal = Summary->CoverableCount;
  // Portfolio is a parallel-engine concept (per-worker strategy
  // assignment); at jobs 1 there is one worker and it runs the paper's
  // depth-first search, byte-identical with `--strategy dfs`.
  const SearchStrategy EffStrategy =
      Options.Strategy == SearchStrategy::Portfolio
          ? SearchStrategy::DepthFirst
          : Options.Strategy;
  // Distance strategy: the static block graph is built once; the
  // priority table is maintained incrementally from coverage deltas
  // (BranchDistance.h) instead of re-running the whole-module BFS before
  // every solve.
  std::optional<BranchDistanceMap> DistMap;
  std::optional<DistancePriorityTracker> DistTracker;
  if (!Options.RandomOnly && EffStrategy == SearchStrategy::Distance) {
    DistMap = BranchDistanceMap::build(*Program.Module);
    DistTracker.emplace(*DistMap);
  }
  // Diversity strategy: shared executed-path archive (trivially "shared"
  // here — one worker); seeded off the campaign seed but on a stream of
  // its own so reservoir decisions never perturb input generation.
  std::optional<DiversitySampler> Sampler;
  if (!Options.RandomOnly && EffStrategy == SearchStrategy::Diversity)
    Sampler.emplace(Options.Seed ^ 0x9e3779b97f4a7c15ULL);
  // Snapshot-resume state: the previous run's checkpoint pack, and the
  // materialized resume point for the next directed run (computed at
  // solve time, before the model is applied).
  // Native execution tier: compiled once per session, shared read-only by
  // every run's VM. Null (pure interpretation) when disabled/unsupported.
  std::unique_ptr<const jit::JitProgram> Jit;
  if (Options.Jit)
    Jit = jit::JitProgram::build(*Program.Module, Options.ToplevelName);
  if (Jit) {
    Report.Jit.Enabled = true;
    Report.Jit.BlocksCompiled = Jit->stats().BlocksCompiled;
    Report.Jit.UnitsCompiled = Jit->stats().UnitsCompiled;
    Report.Jit.CodeBytes = Jit->stats().CodeBytes;
  }
  const bool UseSnapshots = Options.Snapshots && !Options.RandomOnly;
  CheckpointLedger Ledger(Options.SnapshotBudgetBytes);
  CaptureDemand Demand;
  std::optional<MaterializedCheckpoint> Resume;

  // Early exit (heuristic strategies only): once every direction in the
  // static coverable universe is covered, further runs can only re-walk
  // known paths — Theorem 1(b)'s all-paths claim is dfs's business, not
  // the heuristics'. Needs the static summary for the universe.
  const bool UseEarlyExit = Summary && Summary->CoverableCount > 0 &&
                            EffStrategy != SearchStrategy::DepthFirst;
  std::vector<bool> Covered(2 * size_t(Report.BranchSitesTotal), false);
  unsigned CoveredCount = 0;
  unsigned CoverableCovered = 0;
  // Coverage bit the most recent solver model aimed at (attributes fresh
  // coverage to the query that targeted it; witnesses only).
  uint32_t LastTargetBit = kNoTargetBit;
  auto MergeCoverage = [&](const std::vector<bool> &Bits) {
    if (Bits.size() > Covered.size())
      Covered.resize(Bits.size(), false);
    for (size_t I = 0; I < Bits.size(); ++I)
      if (Bits[I] && !Covered[I]) {
        Covered[I] = true;
        ++CoveredCount;
        if (Summary && I < Summary->CoverableDirs.size() &&
            Summary->CoverableDirs[I])
          ++CoverableCovered;
        if (Options.CaptureWitnesses) {
          DirectionWitness W;
          W.Bit = uint32_t(I);
          W.Run = Report.Runs;
          W.Directed = uint32_t(I) == LastTargetBit;
          for (InputId Id = 0; Id < Inputs.inputsThisRun(); ++Id)
            if (const int64_t *V = Inputs.lookup(Id))
              W.Inputs.emplace_back(Inputs.registry()[Id].Name, *V);
          Report.Witnesses.push_back(std::move(W));
        }
      }
  };

  // Per-run machinery is pooled for the whole session: one VM resumed
  // from its pristine post-construction image each run (byte-identical to
  // reconstructing — resume() restores memory, stack, globals, and the
  // step counter wholesale), one ConcolicRun reset() between runs, one
  // recorder, one driver. Run-level stats come from counter deltas since
  // the VM's cumulative counters now span the session.
  Interp VM(*Program.Module, Options.Interp);
  if (Jit)
    VM.setJit(Jit.get());
  const Interp::Snapshot Pristine = VM.snapshot();
  std::optional<ConcolicRun> Hooks;
  std::optional<CoverageOnlyHooks> CovHooks;
  if (!Options.RandomOnly) {
    Hooks.emplace(Inputs.registry(), Arena, std::vector<BranchRecord>(),
                  Options.Concolic);
    VM.setHooks(&*Hooks);
  } else if (Options.TrackCoverageTimeline) {
    // Coverage bits merge idempotently, so one accumulating hook object
    // serves every random run.
    CovHooks.emplace(Report.BranchSitesTotal);
    VM.setHooks(&*CovHooks);
  }
  std::optional<CheckpointRecorder> Recorder;
  if (UseSnapshots && Hooks)
    Recorder.emplace(
        VM, [&Inputs] { return Inputs.inputsThisRun(); }, Options.Capture,
        &Demand,
        // The tracker's table lives for the session and is updated in
        // place, so the recorder can watch it directly.
        DistTracker ? &DistTracker->priorities() : nullptr);
  TestDriver Driver(Interface, Program.GlobalIndexOf, Inputs, VM,
                    Hooks ? &*Hooks : nullptr, Options.Driver);
  uint64_t PrevExecuted = 0;
  JitRunStats PrevJit;
  uint64_t MaterializeNanos = 0;

  bool Stop = false;
  while (!Stop && Report.Runs < Options.MaxRuns) {
    // Outer loop of Fig. 2: fresh random search state.
    Inputs.reset();
    Resume.reset();
    LastTargetBit = kNoTargetBit;
    std::vector<BranchRecord> PredictedStack;
    if (Report.Runs > 0)
      ++Report.Restarts;

    bool Directed = true;
    while (Directed && Report.Runs < Options.MaxRuns) {
      if (Hooks)
        Hooks->reset(std::move(PredictedStack));
      PredictedStack = std::vector<BranchRecord>();
      if (Recorder) {
        Recorder->reset();
        Hooks->setCaptureHook(&*Recorder);
      }
      unsigned StartCall = 0;
      bool Resumed = false;
      if (Resume && Hooks) {
        // Skip the shared prefix: restore VM + symbolic state as of the
        // checkpoint and continue input ids past the prefix's.
        Inputs.resumeRun(Resume->InputsCreated, Resume->RegistryPrefix);
        VM.resume(Resume->Vm);
        Hooks->adoptCheckpoint(Resume->BranchIndex,
                               std::move(Resume->Constraints),
                               std::move(Resume->S), std::move(Resume->Cov),
                               Resume->CovCount, Resume->Flags);
        StartCall = Resume->CallIndex;
        Resumed = true;
        ++Report.Snapshot.RunsResumed;
        Report.Snapshot.InstructionsSkipped += Resume->SkippedSteps;
      } else {
        VM.resume(Pristine);
        Inputs.beginRun();
      }
      Resume.reset();
      RunResult Result = executeDartRun(Options, TU, Driver, VM,
                                        Recorder ? &*Recorder : nullptr,
                                        StartCall, Resumed);
      ++Report.Runs;
      Report.TotalSteps += Result.Steps;
      Report.Snapshot.InstructionsExecuted += VM.executedSteps() - PrevExecuted;
      PrevExecuted = VM.executedSteps();
      {
        JitRunStats JS = VM.jitStats();
        JitRunStats D;
        D.BlockEntries = JS.BlockEntries - PrevJit.BlockEntries;
        D.NativeInstrs = JS.NativeInstrs - PrevJit.NativeInstrs;
        D.Deopts = JS.Deopts - PrevJit.Deopts;
        Report.Jit.merge(D);
        PrevJit = JS;
      }
      if (Options.LogRuns) {
        std::string Line = "run " + std::to_string(Report.Runs) + ": ";
        switch (Result.Status) {
        case RunStatus::Halted:
          Line += "halted";
          break;
        case RunStatus::Errored:
          Line += "ERROR " + Result.Error.toString();
          break;
        case RunStatus::ForcingMismatch:
          Line += "forcing mismatch";
          break;
        }
        if (Hooks)
          Line += ", " + std::to_string(Hooks->conditionalsExecuted()) +
                  " conditionals";
        Line += ", inputs:";
        for (InputId Id = 0; Id < Inputs.inputsThisRun(); ++Id) {
          if (const int64_t *V = Inputs.lookup(Id))
            Line += " " + Inputs.registry()[Id].Name + "=" +
                    std::to_string(*V);
        }
        Report.RunLog.push_back(std::move(Line));
      }
      if (Hooks) {
        GlobalFlags.AllLinear &= Hooks->flags().AllLinear;
        GlobalFlags.AllLocsDefinite &= Hooks->flags().AllLocsDefinite;
        MergeCoverage(Hooks->coveredBits());
      }
      if (CovHooks)
        MergeCoverage(CovHooks->Covered);
      if (Options.TrackCoverageTimeline)
        Report.CoverageTimeline.push_back(CoveredCount);

      if (Result.Status == RunStatus::Errored) {
        // Fig. 2: an exception with forcing_ok set is a real bug.
        BugInfo Bug;
        Bug.Error = Result.Error;
        Bug.FoundAtRun = Report.Runs;
        for (InputId Id = 0; Id < Inputs.inputsThisRun(); ++Id) {
          if (const int64_t *V = Inputs.lookup(Id))
            Bug.Inputs.emplace_back(Inputs.registry()[Id].Name, *V);
        }
        Report.Bugs.push_back(std::move(Bug));
        Report.BugFound = true;
        if (Options.StopAtFirstError) {
          Stop = true;
          break;
        }
        // Otherwise keep searching: the errored path is terminal; fall
        // through to solve_path_constraint on the collected prefix.
      } else if (Result.Status == RunStatus::ForcingMismatch) {
        // Fig. 4 exception with forcing_ok = 0: a prior incompleteness
        // misled the prediction (including integer-overflow corners the
        // ideal-integer theory cannot see). Restart the outer loop.
        ++Report.ForcingMismatches;
        GlobalFlags.AllLinear = false;
        break;
      }

      if (UseEarlyExit && CoverableCovered >= Summary->CoverableCount) {
        // Every statically coverable direction is covered: the budget
        // left would only re-walk known behaviour. Stop on the exact run
        // that saturated the bitmap.
        Report.StoppedEarly = true;
        Stop = true;
        break;
      }

      if (Options.RandomOnly) {
        // Fresh random inputs every run; no directed component. The
        // registry storage survives the restart (positional overwrite).
        Inputs.restartRandom();
        continue;
      }

      // solve_path_constraint (Fig. 5).
      PathData Path = Hooks->takePath();
      std::shared_ptr<CheckpointPack> Pack;
      if (Recorder) {
        Pack = Recorder->finalize(*Hooks, Path, Inputs.registry());
        Report.Snapshot.CheckpointsCaptured += Pack->numEntries();
        Ledger.admit(Pack);
      }
      auto DomainOf = [&Inputs, Static = Options.StaticPrune](InputId Id) {
        return Static ? staticInputDomain(Inputs, Id) : Inputs.domainOf(Id);
      };
      const std::vector<uint32_t> *PriorityPtr = nullptr;
      if (DistTracker) {
        // Fold this run's coverage delta in: O(1) per fresh bit, full
        // BFS only when the delta saturated a whole site. Directions the
        // verifier proved infeasible count as covered here: they are not
        // targets, so distance-directed effort goes to UNKNOWN sites.
        if (Proofs && Proofs->ProvedCount) {
          std::vector<bool> Union = Covered;
          for (size_t I = 0;
               I < Proofs->ProvedDirs.size() && I < Union.size(); ++I)
            if (Proofs->ProvedDirs[I])
              Union[I] = true;
          DistTracker->sync(Union);
        } else {
          DistTracker->sync(Covered);
        }
        PriorityPtr = &DistTracker->priorities();
      }
      if (Sampler)
        Sampler->insert(pathSignature(Path, Arena));
      SolveOutcome Outcome =
          solvePathConstraint(Path, Arena, Solver, DomainOf, Inputs.im(),
                              EffStrategy, R, PriorityPtr,
                              Sampler ? &*Sampler : nullptr);
      Report.SolverCalls += Outcome.SolverCalls;
      if (Outcome.TheoryMisled)
        GlobalFlags.AllLinear = false;
      if (Outcome.Found) {
        if (Pack) {
          // Checkpoint validity: compare the model against IM *before* it
          // is applied — any input the solver perturbed invalidates every
          // checkpoint captured after that input was created.
          std::optional<InputId> MinChanged =
              minChangedInput(Outcome.Model, Inputs.im());
          if (MinChanged) {
            Demand.record(*MinChanged);
            auto T0 = std::chrono::steady_clock::now();
            Resume = Pack->resumeFor(*MinChanged);
            MaterializeNanos +=
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
          }
          if (!Resume)
            ++Report.Snapshot.ResumeMisses;
        }
        Inputs.applyModel(Outcome.Model);
        PredictedStack = std::move(Outcome.NextStack);
        LastTargetBit = Outcome.TargetBit;
      } else {
        // Directed search exhausted.
        Directed = false;
        // Theorem 1(b) holds only for the paper's depth-first negation:
        // flipping a shallow branch under BFS/random discards the deeper
        // unexplored branches of the truncated stack, so those strategies
        // are heuristics and may never claim completeness.
        if (GlobalFlags.allSet() &&
            EffStrategy == SearchStrategy::DepthFirst) {
          // Theorem 1(b): all feasible paths have been exercised.
          Report.CompleteExploration = true;
          Stop = true;
        }
      }
    }
  }

  Report.FinalFlags = GlobalFlags;
  Report.BranchDirectionsCovered = CoveredCount;
  Report.CoverableCovered = CoverableCovered;
  // Branch-coverage completeness certificate: every direction the
  // prover could not exclude was dynamically covered.
  Report.CoverageCertified =
      Summary && CoverableCovered >= Summary->CoverableCount;
  Report.Coverage = std::move(Covered);
  Report.Solver = Solver.stats();
  Report.Arena = Arena.stats();
  Report.Snapshot.PacksEvicted = Ledger.evictions();
  Report.Snapshot.PeakResidentBytes = Ledger.peakResidentBytes();
  Report.Snapshot.MaterializeNanos = MaterializeNanos;
  if (DistTracker) {
    Report.DistanceIncrementalUpdates = DistTracker->incrementalUpdates();
    Report.DistanceFullRecomputes = DistTracker->fullRecomputes();
  }
  if (Recorder) {
    Report.Snapshot.CaptureNanos = Recorder->captureNanos();
    Report.Snapshot.LevelsSkippedByDemand = Recorder->levelsSkippedByDemand();
  }
  return Report;
}
