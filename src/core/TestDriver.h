//===- TestDriver.h - Random test driver generation -------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Technique (2) of DART (paper §3.2): an automatically generated test
/// driver simulating the most general environment.
///
///  - InputManager owns the input registry and the input vector IM that
///    solve_path_constraint updates between runs. Inputs get dense ids in
///    creation order; values come from IM when defined, otherwise from
///    `random_bits` (and are memoized into IM, Fig. 3's random
///    initialization).
///  - TestDriver performs Fig. 8's random_init over MiniC types directly on
///    VM memory: basic types become integer inputs, pointers toss a fair
///    coin between NULL and a fresh heap cell initialized recursively,
///    structs/arrays recurse over their elements. It also models external
///    functions (fresh input per call) and can emit the equivalent MiniC
///    driver source (Fig. 7) for inspection.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CORE_TESTDRIVER_H
#define DART_CORE_TESTDRIVER_H

#include "concolic/Concolic.h"
#include "core/Interface.h"
#include "interp/Interp.h"
#include "solver/LinearSolver.h"
#include "support/Rng.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace dart {

/// Owns the input registry and the inter-run input vector IM.
class InputManager {
public:
  explicit InputManager(Rng &R) : R(R) {}

  /// Starts a new run: input ids restart from 0; IM persists.
  void beginRun() {
    NextId = 0;
    std::fill(RunDefined.begin(), RunDefined.end(), uint8_t(0));
  }

  /// Starts a run that resumes a recorded execution prefix: ids continue
  /// at \p NextInputId (the prefix's inputs are already defined in IM —
  /// valueFor never draws randomness for them), and the registry adopts
  /// the recorded run's first entries, which the skipped replay would
  /// have (re)created identically. Entries past the prefix regrow as the
  /// suffix executes.
  void resumeRun(InputId NextInputId,
                 const std::vector<InputInfo> &RegistryPrefix) {
    Registry.assign(RegistryPrefix.begin(), RegistryPrefix.end());
    NextId = NextInputId;
    std::fill(RunDefined.begin(), RunDefined.end(), uint8_t(0));
  }

  /// Registers the next input. If a previous run already created an input
  /// with this id, the registry entry is overwritten (ids are positional).
  InputId createInput(InputKind Kind, ValType VT, const std::string &Name);

  /// The concrete value for input \p Id this run: IM[Id] if defined, else
  /// fresh random bits (memoized into IM).
  int64_t valueFor(InputId Id);

  /// Applies a solver model (IM := IM + IM', Fig. 5).
  void applyModel(const std::map<InputId, int64_t> &Model);

  /// Installs a saved input vector wholesale: parallel frontier items
  /// restore the parent run's IM (plus the candidate's model) into a
  /// fresh worker-local manager.
  void setIM(std::map<InputId, int64_t> M) {
    IM = std::move(M);
    std::fill(RunDefined.begin(), RunDefined.end(), uint8_t(0));
  }

  /// Fresh random restart (outer loop of Fig. 2).
  void reset() {
    IM.clear();
    Registry.clear();
    NextId = 0;
    RunValues.clear();
    RunDefined.clear();
  }

  /// Between-run restart for pure random testing: forgets the values but
  /// keeps the registry storage — the next run's identical createInput
  /// sequence overwrites the entries positionally, reusing their strings
  /// instead of freeing and reallocating them every run.
  void restartRandom() {
    IM.clear();
    NextId = 0;
  }

  /// In pure random testing nothing carries IM across runs, so valueFor
  /// can skip the per-draw map insert (the node allocations dominate
  /// short-call workloads); bug reports read the dense per-run cache.
  void setEphemeralDraws(bool E) { EphemeralDraws = E; }

  /// The value input \p Id took this run, if it was drawn or preset
  /// (bug reports and run logs).
  const int64_t *lookup(InputId Id) const {
    if (Id < RunDefined.size() && RunDefined[Id])
      return &RunValues[Id];
    auto It = IM.find(Id);
    return It == IM.end() ? nullptr : &It->second;
  }

  VarDomain domainOf(InputId Id) const;
  const std::vector<InputInfo> &registry() const { return Registry; }
  const std::map<InputId, int64_t> &im() const { return IM; }
  /// Number of inputs created in the current run.
  InputId inputsThisRun() const { return NextId; }

private:
  Rng &R;
  std::vector<InputInfo> Registry;
  std::map<InputId, int64_t> IM;
  /// Dense per-run cache of every value valueFor handed out, parallel to
  /// the registry (cleared by beginRun). Repeat queries and end-of-run
  /// reporting read it without touching the map.
  std::vector<int64_t> RunValues;
  std::vector<uint8_t> RunDefined;
  InputId NextId = 0;
  bool EphemeralDraws = false;
};

/// Driver options (see DartOptions for the engine-level view).
struct DriverOptions {
  /// Pointer chains longer than this are forced NULL so recursive types
  /// terminate even with multiple pointer fields.
  unsigned MaxPointerInitDepth = 32;
};

/// Prepared toplevel arguments: concrete values plus the deferred symbolic
/// bindings for the parameter slots (applied after Interp::beginCall).
struct PreparedArgs {
  std::vector<int64_t> Values;
  /// (param index, input id, width) to bind at the parameter addresses.
  struct Binding {
    unsigned ParamIndex;
    InputId Id;
    ValType VT;
  };
  std::vector<Binding> Bindings;
};

/// One run's driver: initializes extern variables, builds toplevel
/// arguments, and models external functions.
class TestDriver {
public:
  /// \p Hooks may be null (pure random testing without symbolic shadow).
  TestDriver(const ProgramInterface &Interface,
             const std::map<const VarDecl *, unsigned> &GlobalIndexOf,
             InputManager &Inputs, Interp &VM, ConcolicRun *Hooks,
             DriverOptions Options = {});

  /// Randomly initializes all extern variables (once per run).
  void initExternVariables();

  /// Creates the inputs for one toplevel call (\p CallIndex for naming).
  /// Fills \p Args in place so callers can reuse its buffers across the
  /// per-call loop.
  void prepareToplevelArgs(unsigned CallIndex, PreparedArgs &Args);

  /// Binds the deferred parameter inputs; call right after beginCall.
  void bindParams(const std::vector<Addr> &ParamAddrs,
                  const PreparedArgs &Args);

  /// Installs the external-function environment model on \p Hooks (or
  /// keeps it internal when Hooks is null): each call returns a fresh
  /// input of the declared return type (Fig. 7's stub functions).
  void installExternalModel(const TranslationUnit &TU);

private:
  /// Fig. 8's random_init: initializes the cell at \p A of type \p Ty.
  void randomInitCell(Addr A, const Type *Ty, const std::string &Name,
                      unsigned Depth);
  /// Builds the value of a fresh pointer input (NULL or new cell) and
  /// returns (value, choice input id).
  std::pair<int64_t, InputId> makePointerInput(const PointerType *Ty,
                                               const std::string &Name,
                                               unsigned Depth);

  const ProgramInterface &Interface;
  const std::map<const VarDecl *, unsigned> &GlobalIndexOf;
  InputManager &Inputs;
  Interp &VM;
  ConcolicRun *Hooks;
  DriverOptions Options;
  /// Return types of external functions, by name (for pointer returns).
  std::map<std::string, const Type *> ExternalReturnTypes;
  /// Reused buffer for per-call input names ("fn#3.param"): the registry
  /// copies it once, instead of this rebuilding it from temporaries on the
  /// per-call hot path.
  std::string NameScratch;
};

/// Emits the MiniC source of the Fig. 7-style driver (main + random_init
/// calls + external function stubs) for documentation and inspection.
std::string emitDriverSource(const ProgramInterface &Interface,
                             unsigned Depth);

} // namespace dart

#endif // DART_CORE_TESTDRIVER_H
