//===- Type.cpp - MiniC type system ---------------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

#include "ast/AST.h"

using namespace dart;

unsigned Type::size() const {
  switch (K) {
  case Kind::Void:
    return 0;
  case Kind::Char:
    return 1;
  case Kind::Int:
  case Kind::Unsigned:
    return 4;
  case Kind::Long:
  case Kind::Pointer:
    return 8;
  case Kind::Array: {
    const auto *A = cast<ArrayType>(this);
    return A->element()->size() * static_cast<unsigned>(A->numElements());
  }
  case Kind::Struct:
    return cast<StructType>(this)->decl()->size();
  }
  return 0;
}

unsigned Type::align() const {
  switch (K) {
  case Kind::Void:
    return 1;
  case Kind::Char:
    return 1;
  case Kind::Int:
  case Kind::Unsigned:
    return 4;
  case Kind::Long:
  case Kind::Pointer:
    return 8;
  case Kind::Array:
    return cast<ArrayType>(this)->element()->align();
  case Kind::Struct:
    return cast<StructType>(this)->decl()->align();
  }
  return 1;
}

std::string Type::toString() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Char:
    return "char";
  case Kind::Int:
    return "int";
  case Kind::Unsigned:
    return "unsigned";
  case Kind::Long:
    return "long";
  case Kind::Pointer: {
    const Type *Pointee = cast<PointerType>(this)->pointee();
    std::string S = Pointee->toString();
    if (S.back() == '*')
      return S + "*";
    return S + " *";
  }
  case Kind::Array: {
    const auto *A = cast<ArrayType>(this);
    return A->element()->toString() + " [" +
           std::to_string(A->numElements()) + "]";
  }
  case Kind::Struct:
    return "struct " + cast<StructType>(this)->decl()->name();
  }
  return "<invalid>";
}

TypeContext::TypeContext()
    : VoidTy(std::make_unique<BasicType>(Type::Kind::Void)),
      CharTy(std::make_unique<BasicType>(Type::Kind::Char)),
      IntTy(std::make_unique<BasicType>(Type::Kind::Int)),
      UnsignedTy(std::make_unique<BasicType>(Type::Kind::Unsigned)),
      LongTy(std::make_unique<BasicType>(Type::Kind::Long)) {}

const PointerType *TypeContext::pointerTo(const Type *Pointee) {
  auto &Slot = PointerTypes[Pointee];
  if (!Slot)
    Slot = std::make_unique<PointerType>(Pointee);
  return Slot.get();
}

const ArrayType *TypeContext::arrayOf(const Type *Element,
                                      uint64_t NumElements) {
  auto &Slot = ArrayTypes[{Element, NumElements}];
  if (!Slot)
    Slot = std::make_unique<ArrayType>(Element, NumElements);
  return Slot.get();
}

const StructType *TypeContext::structType(StructDecl *Decl) {
  auto &Slot = StructTypes[Decl];
  if (!Slot)
    Slot = std::make_unique<StructType>(Decl);
  return Slot.get();
}
