//===- AST.cpp - MiniC abstract syntax tree -------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

using namespace dart;

Stmt *FunctionDecl::body() const { return Body.get(); }
void FunctionDecl::setBody(StmtPtr B) { Body = std::move(B); }

bool dart::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

const char *dart::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc:
    return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec:
    return "--";
  }
  return "?";
}

const char *dart::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  }
  return "?";
}
