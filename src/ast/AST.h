//===- AST.h - MiniC abstract syntax tree -----------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations, statements and expressions of MiniC. The parser builds this
/// tree; sema resolves names, checks types, and annotates every Expr with its
/// Type; the IR lowering (src/ir) consumes the checked tree.
///
/// Node lifetimes: children are owned via unique_ptr by their parent and the
/// TranslationUnit owns all top-level declarations. Cross-references
/// (VarRefExpr -> VarDecl, CallExpr -> FunctionDecl, ...) are non-owning.
///
//===----------------------------------------------------------------------===//

#ifndef DART_AST_AST_H
#define DART_AST_AST_H

#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dart {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl {
public:
  enum class Kind { Var, Field, Function, Struct };

  Kind kind() const { return K; }
  SourceLocation loc() const { return Loc; }
  const std::string &name() const { return Name; }

  virtual ~Decl() = default;

protected:
  Decl(Kind K, SourceLocation Loc, std::string Name)
      : K(K), Loc(Loc), Name(std::move(Name)) {}

private:
  const Kind K;
  SourceLocation Loc;
  std::string Name;
};

/// A variable: global, local, or function parameter.
///
/// Globals declared `extern` with no initializer form part of the external
/// interface of the program (paper §3.1) and become DART inputs.
class VarDecl : public Decl {
public:
  enum class Storage { Global, Local, Param };

  VarDecl(SourceLocation Loc, std::string Name, const Type *Ty,
          Storage StorageKind, bool IsExtern, ExprPtr Init)
      : Decl(Kind::Var, Loc, std::move(Name)), Ty(Ty),
        StorageKind(StorageKind), IsExtern(IsExtern), Init(std::move(Init)) {}

  const Type *type() const { return Ty; }
  Storage storage() const { return StorageKind; }
  bool isExtern() const { return IsExtern; }
  Expr *init() const { return Init.get(); }
  ExprPtr &initRef() { return Init; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Var; }

private:
  const Type *Ty;
  Storage StorageKind;
  bool IsExtern;
  ExprPtr Init;
};

/// One field of a struct. Byte offset is assigned by sema during layout.
class FieldDecl : public Decl {
public:
  FieldDecl(SourceLocation Loc, std::string Name, const Type *Ty)
      : Decl(Kind::Field, Loc, std::move(Name)), Ty(Ty) {}

  const Type *type() const { return Ty; }
  unsigned offset() const { return Offset; }
  void setOffset(unsigned O) { Offset = O; }
  unsigned index() const { return Index; }
  void setIndex(unsigned I) { Index = I; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Field; }

private:
  const Type *Ty;
  unsigned Offset = 0;
  unsigned Index = 0;
};

/// A struct definition. Size/alignment are filled in by sema's layout pass;
/// Type::size() on the corresponding StructType reads them from here.
class StructDecl : public Decl {
public:
  StructDecl(SourceLocation Loc, std::string Name)
      : Decl(Kind::Struct, Loc, std::move(Name)) {}

  void addField(std::unique_ptr<FieldDecl> Field) {
    Fields.push_back(std::move(Field));
  }
  const std::vector<std::unique_ptr<FieldDecl>> &fields() const {
    return Fields;
  }
  FieldDecl *findField(const std::string &Name) const {
    for (const auto &F : Fields)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  bool isComplete() const { return Complete; }
  void setComplete() { Complete = true; }
  bool isLaidOut() const { return LaidOut; }
  unsigned size() const {
    assert(LaidOut && "struct not laid out");
    return Size;
  }
  unsigned align() const {
    assert(LaidOut && "struct not laid out");
    return Align;
  }
  void setLayout(unsigned S, unsigned A) {
    Size = S;
    Align = A;
    LaidOut = true;
  }

  static bool classof(const Decl *D) { return D->kind() == Kind::Struct; }

private:
  std::vector<std::unique_ptr<FieldDecl>> Fields;
  bool Complete = false;
  bool LaidOut = false;
  unsigned Size = 0;
  unsigned Align = 1;
};

/// A function. A declaration without a body that is never defined is an
/// *external function* — part of the program's environment interface; DART's
/// driver simulates it by returning a fresh random/symbolic value per call
/// (paper §3.1, §3.2). Functions registered as native "library functions"
/// (malloc, abort, ...) are black boxes executed concretely (paper §3.1).
class FunctionDecl : public Decl {
public:
  FunctionDecl(SourceLocation Loc, std::string Name, const Type *ReturnTy)
      : Decl(Kind::Function, Loc, std::move(Name)), ReturnTy(ReturnTy) {}

  const Type *returnType() const { return ReturnTy; }

  void addParam(std::unique_ptr<VarDecl> Param) {
    Params.push_back(std::move(Param));
  }
  const std::vector<std::unique_ptr<VarDecl>> &params() const {
    return Params;
  }

  bool hasBody() const { return Body != nullptr; }
  Stmt *body() const;
  void setBody(StmtPtr B);

  static bool classof(const Decl *D) { return D->kind() == Kind::Function; }

private:
  const Type *ReturnTy;
  std::vector<std::unique_ptr<VarDecl>> Params;
  StmtPtr Body;
};

/// Root of one parsed MiniC program.
class TranslationUnit {
public:
  void addDecl(std::unique_ptr<Decl> D) { Decls.push_back(std::move(D)); }
  const std::vector<std::unique_ptr<Decl>> &decls() const { return Decls; }

  FunctionDecl *findFunction(const std::string &Name) const {
    for (const auto &D : Decls)
      if (auto *F = dyn_cast<FunctionDecl>(D.get()))
        if (F->name() == Name)
          return F;
    return nullptr;
  }

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

private:
  std::vector<std::unique_ptr<Decl>> Decls;
  // Mutable: parser and sema intern new types while analysing.
  mutable TypeContext Types;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp {
  Neg,     // -e
  LogNot,  // !e
  BitNot,  // ~e
  Deref,   // *e
  AddrOf,  // &e
  PreInc,  // ++e
  PreDec,  // --e
  PostInc, // e++
  PostDec, // e--
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  LogAnd, // short-circuit
  LogOr,  // short-circuit
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// True for ==, !=, <, <=, >, >=.
bool isComparisonOp(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);
const char *binaryOpSpelling(BinaryOp Op);

class Expr {
public:
  enum class Kind {
    IntLiteral,
    StringLiteral,
    VarRef,
    Unary,
    Binary,
    Assign,
    Call,
    Index,
    Member,
    Cast,
    SizeofType,
    Conditional,
  };

  Kind kind() const { return K; }
  SourceLocation loc() const { return Loc; }

  /// Type assigned by sema; null before checking.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  /// Set by sema: true if this expression designates an object (can be
  /// assigned to / have its address taken).
  bool isLValue() const { return LValue; }
  void setLValue(bool V) { LValue = V; }

  virtual ~Expr() = default;

protected:
  Expr(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLocation Loc;
  const Type *Ty = nullptr;
  bool LValue = false;
};

/// Integer or character literal (characters are just small ints in MiniC).
/// Also represents `NULL` (value 0, flagged so sema gives it pointer
/// compatibility).
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLocation Loc, int64_t Value, bool IsNull = false)
      : Expr(Kind::IntLiteral, Loc), Value(Value), Null(IsNull) {}

  int64_t value() const { return Value; }
  bool isNullLiteral() const { return Null; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  int64_t Value;
  bool Null;
};

/// A string literal. Lowered to a read-only global char array; the
/// expression evaluates to the array's address.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLocation Loc, std::string Bytes)
      : Expr(Kind::StringLiteral, Loc), Bytes(std::move(Bytes)) {}

  /// Literal contents without the implicit NUL terminator.
  const std::string &bytes() const { return Bytes; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::StringLiteral;
  }

private:
  std::string Bytes;
};

/// A name use. `decl()` is resolved by sema.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLocation Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  VarDecl *decl() const { return ResolvedDecl; }
  void setDecl(VarDecl *D) { ResolvedDecl = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *ResolvedDecl = nullptr;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand.get(); }
  /// Mutable child slot, used by sema to wrap operands in implicit casts.
  ExprPtr &operandRef() { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }
  ExprPtr &lhsRef() { return LHS; }
  ExprPtr &rhsRef() { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// Assignment, plain (`=`) or compound (`+=` etc. — Op holds the arithmetic
/// operator; plain assignment has no Op).
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLocation Loc, ExprPtr Target, ExprPtr Value)
      : Expr(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  AssignExpr(SourceLocation Loc, BinaryOp CompoundOp, ExprPtr Target,
             ExprPtr Value)
      : Expr(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)), HasCompoundOp(true), CompoundOp(CompoundOp) {}

  Expr *target() const { return Target.get(); }
  Expr *value() const { return Value.get(); }
  ExprPtr &targetRef() { return Target; }
  ExprPtr &valueRef() { return Value; }
  bool isCompound() const { return HasCompoundOp; }
  BinaryOp compoundOp() const {
    assert(HasCompoundOp);
    return CompoundOp;
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Assign; }

private:
  ExprPtr Target, Value;
  bool HasCompoundOp = false;
  BinaryOp CompoundOp = BinaryOp::Add;
};

class CallExpr : public Expr {
public:
  CallExpr(SourceLocation Loc, std::string Callee)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)) {}

  const std::string &callee() const { return Callee; }
  void addArg(ExprPtr Arg) { Args.push_back(std::move(Arg)); }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::vector<ExprPtr> &argsRef() { return Args; }

  FunctionDecl *calleeDecl() const { return ResolvedCallee; }
  void setCalleeDecl(FunctionDecl *F) { ResolvedCallee = F; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  FunctionDecl *ResolvedCallee = nullptr;
};

/// Array subscript `base[index]`. Base may be an array lvalue or a pointer.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLocation Loc, ExprPtr Base, ExprPtr Index)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  Expr *base() const { return Base.get(); }
  Expr *index() const { return Index.get(); }
  ExprPtr &baseRef() { return Base; }
  ExprPtr &indexRef() { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  ExprPtr Base, Index;
};

/// Member access `base.field` or `base->field`.
class MemberExpr : public Expr {
public:
  MemberExpr(SourceLocation Loc, ExprPtr Base, std::string FieldName,
             bool IsArrow)
      : Expr(Kind::Member, Loc), Base(std::move(Base)),
        FieldName(std::move(FieldName)), Arrow(IsArrow) {}

  Expr *base() const { return Base.get(); }
  const std::string &fieldName() const { return FieldName; }
  ExprPtr &baseRef() { return Base; }
  bool isArrow() const { return Arrow; }
  FieldDecl *field() const { return ResolvedField; }
  void setField(FieldDecl *F) { ResolvedField = F; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Member; }

private:
  ExprPtr Base;
  std::string FieldName;
  bool Arrow;
  FieldDecl *ResolvedField = nullptr;
};

/// Explicit cast `(type)expr`. Implicit conversions inserted by sema reuse
/// this node with `Implicit` set, so lowering has a single conversion point.
class CastExpr : public Expr {
public:
  CastExpr(SourceLocation Loc, const Type *TargetTy, ExprPtr Operand,
           bool Implicit = false)
      : Expr(Kind::Cast, Loc), TargetTy(TargetTy), Operand(std::move(Operand)),
        Implicit(Implicit) {}

  const Type *targetType() const { return TargetTy; }
  Expr *operand() const { return Operand.get(); }
  bool isImplicit() const { return Implicit; }
  ExprPtr &operandRef() { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

private:
  const Type *TargetTy;
  ExprPtr Operand;
  bool Implicit;
};

/// `sizeof(type)`. `sizeof expr` is folded to this form by the parser.
class SizeofTypeExpr : public Expr {
public:
  SizeofTypeExpr(SourceLocation Loc, const Type *QueriedTy)
      : Expr(Kind::SizeofType, Loc), QueriedTy(QueriedTy) {}

  const Type *queriedType() const { return QueriedTy; }

  static bool classof(const Expr *E) { return E->kind() == Kind::SizeofType; }

private:
  const Type *QueriedTy;
};

/// Ternary conditional `cond ? then : else`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLocation Loc, ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(Kind::Conditional, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Expr *thenExpr() const { return Then.get(); }
  Expr *elseExpr() const { return Else.get(); }
  ExprPtr &condRef() { return Cond; }
  ExprPtr &thenRef() { return Then; }
  ExprPtr &elseRef() { return Else; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Conditional; }

private:
  ExprPtr Cond, Then, Else;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Compound,
    Decl,
    Expr,
    If,
    While,
    DoWhile,
    For,
    Switch,
    Return,
    Break,
    Continue,
    Null,
  };

  Kind kind() const { return K; }
  SourceLocation loc() const { return Loc; }

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLocation Loc;
};

class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(SourceLocation Loc) : Stmt(Kind::Compound, Loc) {}

  void addStmt(StmtPtr S) { Body.push_back(std::move(S)); }
  const std::vector<StmtPtr> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<StmtPtr> Body;
};

/// A local variable declaration statement.
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLocation Loc, std::unique_ptr<VarDecl> Var)
      : Stmt(Kind::Decl, Loc), Var(std::move(Var)) {}

  VarDecl *var() const { return Var.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::unique_ptr<VarDecl> Var;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLocation Loc, ExprPtr E)
      : Stmt(Kind::Expr, Loc), E(std::move(E)) {}

  Expr *expr() const { return E.get(); }
  ExprPtr &exprRef() { return E; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  ExprPtr E;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLocation Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }
  ExprPtr &condRef() { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLocation Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  ExprPtr &condRef() { return Cond; }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLocation Loc, StmtPtr Body, ExprPtr Cond)
      : Stmt(Kind::DoWhile, Loc), Body(std::move(Body)),
        Cond(std::move(Cond)) {}

  Stmt *body() const { return Body.get(); }
  Expr *cond() const { return Cond.get(); }
  ExprPtr &condRef() { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::DoWhile; }

private:
  StmtPtr Body;
  ExprPtr Cond;
};

/// `for (init; cond; step) body`; any of the three headers may be absent.
/// Init is a statement so it can be either a declaration or an expression.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLocation Loc, StmtPtr Init, ExprPtr Cond, ExprPtr Step,
          StmtPtr Body)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  Stmt *init() const { return Init.get(); }
  Expr *cond() const { return Cond.get(); }
  Expr *step() const { return Step.get(); }
  Stmt *body() const { return Body.get(); }
  ExprPtr &condRef() { return Cond; }
  ExprPtr &stepRef() { return Step; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  StmtPtr Init;
  ExprPtr Cond, Step;
  StmtPtr Body;
};

/// One arm of a switch: `case K:` (Value set) or `default:` (Value empty),
/// followed by its statements. C fallthrough semantics: execution continues
/// into the next arm unless it breaks.
struct SwitchCase {
  std::optional<int64_t> Value;
  std::vector<StmtPtr> Body;
  SourceLocation Loc;
};

class SwitchStmt : public Stmt {
public:
  SwitchStmt(SourceLocation Loc, ExprPtr Cond)
      : Stmt(Kind::Switch, Loc), Cond(std::move(Cond)) {}

  Expr *cond() const { return Cond.get(); }
  ExprPtr &condRef() { return Cond; }
  void addCase(SwitchCase Case) { Cases.push_back(std::move(Case)); }
  const std::vector<SwitchCase> &cases() const { return Cases; }
  std::vector<SwitchCase> &casesRef() { return Cases; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Switch; }

private:
  ExprPtr Cond;
  std::vector<SwitchCase> Cases;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, ExprPtr Value)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  Expr *value() const { return Value.get(); }
  ExprPtr &valueRef() { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Null; }
};

} // namespace dart

#endif // DART_AST_AST_H
