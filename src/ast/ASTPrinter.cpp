//===- ASTPrinter.cpp - Render MiniC ASTs back to source ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include <cassert>

using namespace dart;

namespace {

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

std::string escapeChar(char C) {
  switch (C) {
  case '\n':
    return "\\n";
  case '\t':
    return "\\t";
  case '\r':
    return "\\r";
  case '\0':
    return "\\0";
  case '\\':
    return "\\\\";
  case '"':
    return "\\\"";
  case '\'':
    return "\\'";
  default:
    if (C >= 32 && C < 127)
      return std::string(1, C);
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "\\x%02x", static_cast<unsigned char>(C));
    return Buf;
  }
}

} // namespace

std::string dart::printTypedName(const Type *Ty, const std::string &Name) {
  // Arrays need the suffix declarator form; everything else is prefix.
  if (const auto *A = dyn_cast<ArrayType>(Ty))
    return printTypedName(A->element(),
                          Name + "[" + std::to_string(A->numElements()) + "]");
  if (Name.empty())
    return Ty->toString();
  return Ty->toString() + " " + Name;
}

std::string dart::printExpr(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLiteral: {
    const auto &L = *cast<IntLiteralExpr>(&E);
    if (L.isNullLiteral())
      return "NULL";
    return std::to_string(L.value());
  }
  case Expr::Kind::StringLiteral: {
    const auto &S = *cast<StringLiteralExpr>(&E);
    std::string Out = "\"";
    for (char C : S.bytes())
      Out += escapeChar(C);
    Out += '"';
    return Out;
  }
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(&E)->name();
  case Expr::Kind::Unary: {
    const auto &U = *cast<UnaryExpr>(&E);
    std::string Inner = printExpr(*U.operand());
    if (U.op() == UnaryOp::PostInc || U.op() == UnaryOp::PostDec)
      return "(" + Inner + unaryOpSpelling(U.op()) + ")";
    return "(" + std::string(unaryOpSpelling(U.op())) + Inner + ")";
  }
  case Expr::Kind::Binary: {
    const auto &B = *cast<BinaryExpr>(&E);
    return "(" + printExpr(*B.lhs()) + " " + binaryOpSpelling(B.op()) + " " +
           printExpr(*B.rhs()) + ")";
  }
  case Expr::Kind::Assign: {
    const auto &A = *cast<AssignExpr>(&E);
    std::string Op =
        A.isCompound() ? std::string(binaryOpSpelling(A.compoundOp())) + "="
                       : "=";
    return "(" + printExpr(*A.target()) + " " + Op + " " +
           printExpr(*A.value()) + ")";
  }
  case Expr::Kind::Call: {
    const auto &C = *cast<CallExpr>(&E);
    std::string Out = C.callee() + "(";
    bool First = true;
    for (const auto &Arg : C.args()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += printExpr(*Arg);
    }
    return Out + ")";
  }
  case Expr::Kind::Index: {
    const auto &I = *cast<IndexExpr>(&E);
    return printExpr(*I.base()) + "[" + printExpr(*I.index()) + "]";
  }
  case Expr::Kind::Member: {
    const auto &M = *cast<MemberExpr>(&E);
    return printExpr(*M.base()) + (M.isArrow() ? "->" : ".") + M.fieldName();
  }
  case Expr::Kind::Cast: {
    const auto &C = *cast<CastExpr>(&E);
    if (C.isImplicit())
      return printExpr(*C.operand());
    return "((" + C.targetType()->toString() + ")" + printExpr(*C.operand()) +
           ")";
  }
  case Expr::Kind::SizeofType:
    return "sizeof(" + cast<SizeofTypeExpr>(&E)->queriedType()->toString() +
           ")";
  case Expr::Kind::Conditional: {
    const auto &C = *cast<ConditionalExpr>(&E);
    return "(" + printExpr(*C.cond()) + " ? " + printExpr(*C.thenExpr()) +
           " : " + printExpr(*C.elseExpr()) + ")";
  }
  }
  return "<expr>";
}

std::string dart::printStmt(const Stmt &S, unsigned Indent) {
  const std::string Pad = indentStr(Indent);
  switch (S.kind()) {
  case Stmt::Kind::Compound: {
    std::string Out = Pad + "{\n";
    for (const auto &Child : cast<CompoundStmt>(&S)->body())
      Out += printStmt(*Child, Indent + 1);
    return Out + Pad + "}\n";
  }
  case Stmt::Kind::Decl: {
    const VarDecl *V = cast<DeclStmt>(&S)->var();
    std::string Out = Pad + printTypedName(V->type(), V->name());
    if (V->init())
      Out += " = " + printExpr(*V->init());
    return Out + ";\n";
  }
  case Stmt::Kind::Expr:
    return Pad + printExpr(*cast<ExprStmt>(&S)->expr()) + ";\n";
  case Stmt::Kind::If: {
    const auto &I = *cast<IfStmt>(&S);
    std::string Out = Pad + "if (" + printExpr(*I.cond()) + ")\n";
    Out += printStmt(*I.thenStmt(), Indent + 1);
    if (I.elseStmt()) {
      Out += Pad + "else\n";
      Out += printStmt(*I.elseStmt(), Indent + 1);
    }
    return Out;
  }
  case Stmt::Kind::While: {
    const auto &W = *cast<WhileStmt>(&S);
    return Pad + "while (" + printExpr(*W.cond()) + ")\n" +
           printStmt(*W.body(), Indent + 1);
  }
  case Stmt::Kind::DoWhile: {
    const auto &D = *cast<DoWhileStmt>(&S);
    return Pad + "do\n" + printStmt(*D.body(), Indent + 1) + Pad + "while (" +
           printExpr(*D.cond()) + ");\n";
  }
  case Stmt::Kind::For: {
    const auto &F = *cast<ForStmt>(&S);
    std::string Init;
    if (F.init()) {
      // Reuse statement printing but strip the trailing newline and padding.
      Init = printStmt(*F.init(), 0);
      while (!Init.empty() && (Init.back() == '\n' || Init.back() == ';'))
        Init.pop_back();
    }
    std::string Out = Pad + "for (" + Init + "; " +
                      (F.cond() ? printExpr(*F.cond()) : std::string()) +
                      "; " +
                      (F.step() ? printExpr(*F.step()) : std::string()) +
                      ")\n";
    return Out + printStmt(*F.body(), Indent + 1);
  }
  case Stmt::Kind::Switch: {
    const auto &Sw = *cast<SwitchStmt>(&S);
    std::string Out = Pad + "switch (" + printExpr(*Sw.cond()) + ") {\n";
    for (const SwitchCase &Case : Sw.cases()) {
      if (Case.Value)
        Out += Pad + "case " + std::to_string(*Case.Value) + ":\n";
      else
        Out += Pad + "default:\n";
      for (const auto &Child : Case.Body)
        Out += printStmt(*Child, Indent + 1);
    }
    return Out + Pad + "}\n";
  }
  case Stmt::Kind::Return: {
    const auto &R = *cast<ReturnStmt>(&S);
    if (R.value())
      return Pad + "return " + printExpr(*R.value()) + ";\n";
    return Pad + "return;\n";
  }
  case Stmt::Kind::Break:
    return Pad + "break;\n";
  case Stmt::Kind::Continue:
    return Pad + "continue;\n";
  case Stmt::Kind::Null:
    return Pad + ";\n";
  }
  return Pad + "<stmt>;\n";
}

std::string dart::printDecl(const Decl &D, unsigned Indent) {
  const std::string Pad = indentStr(Indent);
  if (const auto *V = dyn_cast<VarDecl>(&D)) {
    std::string Out = Pad;
    if (V->isExtern())
      Out += "extern ";
    Out += printTypedName(V->type(), V->name());
    if (V->init())
      Out += " = " + printExpr(*V->init());
    return Out + ";\n";
  }
  if (const auto *SD = dyn_cast<StructDecl>(&D)) {
    std::string Out = Pad + "struct " + SD->name() + " {\n";
    for (const auto &F : SD->fields())
      Out += Pad + "  " + printTypedName(F->type(), F->name()) + ";\n";
    return Out + Pad + "};\n";
  }
  if (const auto *F = dyn_cast<FunctionDecl>(&D)) {
    std::string Out = Pad + F->returnType()->toString() + " " + F->name() +
                      "(";
    bool First = true;
    for (const auto &P : F->params()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += printTypedName(P->type(), P->name());
    }
    if (F->params().empty())
      Out += "void";
    Out += ")";
    if (!F->hasBody())
      return Out + ";\n";
    return Out + "\n" + printStmt(*F->body(), Indent);
  }
  return Pad + "/* decl */\n";
}

std::string dart::printTranslationUnit(const TranslationUnit &TU) {
  std::string Out;
  for (const auto &D : TU.decls()) {
    Out += printDecl(*D);
    Out += '\n';
  }
  return Out;
}
