//===- Type.h - MiniC type system -------------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC type system: void, the integer types (char, int, unsigned,
/// long), pointers, fixed-size arrays, and structs. Types are immutable and
/// uniqued by a TypeContext, so Type* identity is type equality. The paper
/// (§3.1) defines C types recursively in exactly these terms; `random_init`
/// (Fig. 8) walks this structure to build random inputs.
///
//===----------------------------------------------------------------------===//

#ifndef DART_AST_TYPE_H
#define DART_AST_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dart {

class StructDecl;

/// Base of the MiniC type hierarchy. Sizes follow an LP64-like model with
/// 32-bit int, matching the paper's 32-bit-word RAM machine for `int`.
class Type {
public:
  enum class Kind { Void, Char, Int, Unsigned, Long, Pointer, Array, Struct };

  Kind kind() const { return K; }

  bool isVoid() const { return K == Kind::Void; }
  bool isInteger() const {
    return K == Kind::Char || K == Kind::Int || K == Kind::Unsigned ||
           K == Kind::Long;
  }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }
  bool isStruct() const { return K == Kind::Struct; }
  /// Scalars are the types that fit in one machine word: integers and
  /// pointers. Only scalars can be assigned, compared, or passed by value
  /// through registers in the RAM machine (structs are copied bytewise).
  bool isScalar() const { return isInteger() || isPointer(); }

  /// Object size in bytes. Arrays and structs must be laid out (sema).
  unsigned size() const;
  /// Alignment in bytes.
  unsigned align() const;
  /// For integers: width in bits (8/32/64). Pointers are 64-bit.
  unsigned bitWidth() const {
    assert(isInteger() || isPointer());
    return size() * 8;
  }
  /// For integers: true if the type is signed. Pointers compare unsigned.
  bool isSigned() const {
    return K == Kind::Char || K == Kind::Int || K == Kind::Long;
  }

  /// C-like rendering, e.g. "struct foo *" or "int [4]".
  std::string toString() const;

  virtual ~Type() = default;

protected:
  explicit Type(Kind K) : K(K) {}

private:
  const Kind K;
};

/// Built-in non-composite types. One instance per kind, owned by the
/// TypeContext.
class BasicType : public Type {
public:
  explicit BasicType(Kind K) : Type(K) {
    assert(K != Kind::Pointer && K != Kind::Array && K != Kind::Struct);
  }
  static bool classof(const Type *T) {
    return !T->isPointer() && !T->isArray() && !T->isStruct();
  }
};

/// Pointer to another type. `void *` is allowed and convertible.
class PointerType : public Type {
public:
  explicit PointerType(const Type *Pointee)
      : Type(Kind::Pointer), Pointee(Pointee) {}

  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->isPointer(); }

private:
  const Type *Pointee;
};

/// Fixed-size array. MiniC has no VLAs; DART only needs statically sized
/// arrays for its input model.
class ArrayType : public Type {
public:
  ArrayType(const Type *Element, uint64_t NumElements)
      : Type(Kind::Array), Element(Element), NumElements(NumElements) {}

  const Type *element() const { return Element; }
  uint64_t numElements() const { return NumElements; }

  static bool classof(const Type *T) { return T->isArray(); }

private:
  const Type *Element;
  uint64_t NumElements;
};

/// A named struct type. Field layout lives on the StructDecl (it is computed
/// by sema once the whole translation unit is known).
class StructType : public Type {
public:
  explicit StructType(StructDecl *Decl) : Type(Kind::Struct), Decl(Decl) {}

  StructDecl *decl() const { return Decl; }

  static bool classof(const Type *T) { return T->isStruct(); }

private:
  StructDecl *Decl;
};

/// Owns and uniques all types of one translation unit. Pointer/array types
/// are interned so `Type *` equality is type equality.
class TypeContext {
public:
  TypeContext();

  const Type *voidType() const { return VoidTy.get(); }
  const Type *charType() const { return CharTy.get(); }
  const Type *intType() const { return IntTy.get(); }
  const Type *unsignedType() const { return UnsignedTy.get(); }
  const Type *longType() const { return LongTy.get(); }

  const PointerType *pointerTo(const Type *Pointee);
  const ArrayType *arrayOf(const Type *Element, uint64_t NumElements);
  const StructType *structType(StructDecl *Decl);

private:
  std::unique_ptr<BasicType> VoidTy, CharTy, IntTy, UnsignedTy, LongTy;
  std::map<const Type *, std::unique_ptr<PointerType>> PointerTypes;
  std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<ArrayType>>
      ArrayTypes;
  std::map<StructDecl *, std::unique_ptr<StructType>> StructTypes;
};

} // namespace dart

#endif // DART_AST_TYPE_H
