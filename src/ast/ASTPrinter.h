//===- ASTPrinter.h - Render MiniC ASTs back to source ----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints an AST back to compilable MiniC. Used by the driver
/// generator (to show the Fig. 7-style test driver as source) and by the
/// parser round-trip property tests (print → reparse → print is a fixpoint).
///
//===----------------------------------------------------------------------===//

#ifndef DART_AST_ASTPRINTER_H
#define DART_AST_ASTPRINTER_H

#include "ast/AST.h"

#include <string>

namespace dart {

/// Renders \p TU as MiniC source text.
std::string printTranslationUnit(const TranslationUnit &TU);

/// Renders a single expression (fully parenthesized, so precedence is
/// preserved under reparsing).
std::string printExpr(const Expr &E);

/// Renders a single statement at the given indentation depth.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a declaration (function, global, struct).
std::string printDecl(const Decl &D, unsigned Indent = 0);

/// Renders a type and declarator name, e.g. "int *x" / "char buf[16]".
std::string printTypedName(const Type *Ty, const std::string &Name);

} // namespace dart

#endif // DART_AST_ASTPRINTER_H
