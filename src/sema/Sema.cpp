//===- Sema.cpp - MiniC semantic analysis ---------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "parser/Parser.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace dart;

Sema::Sema(TranslationUnit &TU, DiagnosticsEngine &Diags)
    : TU(TU), Diags(Diags) {}

const std::vector<std::string> &Sema::builtinNames() {
  static const std::vector<std::string> Names = {"malloc", "free", "abort",
                                                 "assert", "exit"};
  return Names;
}

static bool isBuiltinName(const std::string &Name) {
  const auto &Names = Sema::builtinNames();
  return std::find(Names.begin(), Names.end(), Name) != Names.end();
}

//===----------------------------------------------------------------------===//
// Pass 1: top-level collection and struct layout
//===----------------------------------------------------------------------===//

static unsigned alignUp(unsigned Value, unsigned Align) {
  return (Value + Align - 1) / Align * Align;
}

bool Sema::layoutStruct(StructDecl *S, std::vector<StructDecl *> &InProgress) {
  if (S->isLaidOut())
    return true;
  if (std::find(InProgress.begin(), InProgress.end(), S) !=
      InProgress.end()) {
    Diags.error(S->loc(), "struct '" + S->name() +
                              "' recursively contains itself by value");
    return false;
  }
  if (!S->isComplete()) {
    // Incomplete structs can be pointed at but not laid out; defer the error
    // to the use site (sizeof / field access / by-value member).
    return false;
  }
  InProgress.push_back(S);
  unsigned Offset = 0;
  unsigned MaxAlign = 1;
  unsigned Index = 0;
  for (const auto &F : S->fields()) {
    const Type *FieldTy = F->type();
    // Struct fields by value need their own layout first.
    const Type *Probe = FieldTy;
    while (const auto *A = dyn_cast<ArrayType>(Probe))
      Probe = A->element();
    if (const auto *ST = dyn_cast<StructType>(Probe)) {
      if (!layoutStruct(ST->decl(), InProgress)) {
        Diags.error(F->loc(), "field '" + F->name() +
                                  "' has incomplete type '" +
                                  FieldTy->toString() + "'");
        InProgress.pop_back();
        return false;
      }
    }
    unsigned FieldAlign = FieldTy->align();
    Offset = alignUp(Offset, FieldAlign);
    F->setOffset(Offset);
    F->setIndex(Index++);
    Offset += FieldTy->size();
    MaxAlign = std::max(MaxAlign, FieldAlign);
  }
  InProgress.pop_back();
  S->setLayout(std::max(alignUp(Offset, MaxAlign), 1u), MaxAlign);
  return true;
}

bool Sema::collectTopLevel() {
  for (const auto &D : TU.decls()) {
    if (auto *S = dyn_cast<StructDecl>(D.get())) {
      Structs[S->name()] = S;
      continue;
    }
    if (auto *V = dyn_cast<VarDecl>(D.get())) {
      if (Globals.count(V->name()))
        Diags.error(V->loc(),
                    "redefinition of global '" + V->name() + "'");
      Globals[V->name()] = V;
      continue;
    }
    if (auto *F = dyn_cast<FunctionDecl>(D.get()))
      Functions[F->name()].push_back(F);
  }

  // Lay out all complete structs.
  std::vector<StructDecl *> InProgress;
  for (auto &[Name, S] : Structs)
    if (S->isComplete())
      layoutStruct(S, InProgress);

  // Resolve each function name to its definition (or first prototype) and
  // sanity-check redeclarations.
  for (auto &[Name, Decls] : Functions) {
    FunctionDecl *Def = nullptr;
    for (FunctionDecl *F : Decls) {
      if (!F->hasBody())
        continue;
      if (Def)
        Diags.error(F->loc(), "redefinition of function '" + Name + "'");
      Def = F;
    }
    FunctionDecl *Best = Def ? Def : Decls.front();
    for (FunctionDecl *F : Decls) {
      if (F->params().size() != Best->params().size())
        Diags.warning(F->loc(), "conflicting parameter counts in "
                                "declarations of '" +
                                    Name + "'");
    }
    FunctionImpl[Name] = Best;
  }
  return !Diags.hasErrors();
}

FunctionDecl *Sema::lookupFunction(const std::string &Name) const {
  auto It = FunctionImpl.find(Name);
  return It == FunctionImpl.end() ? nullptr : It->second;
}

bool Sema::isExternalFunction(const std::string &Name) const {
  if (isBuiltinName(Name))
    return false;
  auto It = FunctionImpl.find(Name);
  return It != FunctionImpl.end() && !It->second->hasBody();
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }
void Sema::popScope() { Scopes.pop_back(); }

VarDecl *Sema::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  auto G = Globals.find(Name);
  return G == Globals.end() ? nullptr : G->second;
}

void Sema::declareVar(VarDecl *V) {
  assert(!Scopes.empty() && "no active scope");
  auto &Scope = Scopes.back();
  if (Scope.count(V->name()))
    Diags.error(V->loc(), "redefinition of '" + V->name() + "'");
  Scope[V->name()] = V;
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

namespace {
/// Integer conversion rank: char < int == unsigned < long.
int rank(const Type *T) {
  switch (T->kind()) {
  case Type::Kind::Char:
    return 0;
  case Type::Kind::Int:
  case Type::Kind::Unsigned:
    return 1;
  case Type::Kind::Long:
    return 2;
  default:
    return -1;
  }
}
} // namespace

const Type *Sema::usualArithmeticType(const Type *A, const Type *B) {
  TypeContext &Types = TU.types();
  if (rank(A) == 2 || rank(B) == 2)
    return Types.longType();
  if (A->kind() == Type::Kind::Unsigned || B->kind() == Type::Kind::Unsigned)
    return Types.unsignedType();
  return Types.intType();
}

bool Sema::isImplicitlyConvertible(const Type *From, const Type *To,
                                   const Expr *Value) const {
  if (From == To)
    return true;
  if (From->isInteger() && To->isInteger())
    return true;
  if (From->isPointer() && To->isPointer()) {
    const Type *FromPointee = cast<PointerType>(From)->pointee();
    const Type *ToPointee = cast<PointerType>(To)->pointee();
    // void* converts freely in both directions, like C.
    return FromPointee->isVoid() || ToPointee->isVoid() ||
           FromPointee == ToPointee;
  }
  // Null-pointer constant (NULL or literal 0) converts to any pointer.
  if (To->isPointer() && From->isInteger()) {
    if (const auto *L = dyn_cast_or_null<IntLiteralExpr>(Value))
      return L->value() == 0;
    return false;
  }
  return false;
}

void Sema::convertTo(ExprPtr &Operand, const Type *To, const char *Context) {
  assert(Operand && "converting a null expression");
  const Type *From = Operand->type();
  if (!From || From == To)
    return;
  if (!isImplicitlyConvertible(From, To, Operand.get())) {
    Diags.error(Operand->loc(), std::string("cannot convert '") +
                                    From->toString() + "' to '" +
                                    To->toString() + "' " + Context);
    return;
  }
  SourceLocation Loc = Operand->loc();
  auto Cast = std::make_unique<CastExpr>(Loc, To, std::move(Operand),
                                         /*Implicit=*/true);
  Cast->setType(To);
  Operand = std::move(Cast);
}

const Type *Sema::decay(ExprPtr &Operand) {
  const Type *Ty = Operand->type();
  if (!Ty)
    return nullptr;
  const auto *A = dyn_cast<ArrayType>(Ty);
  if (!A)
    return Ty;
  const Type *PtrTy = TU.types().pointerTo(A->element());
  SourceLocation Loc = Operand->loc();
  auto Cast = std::make_unique<CastExpr>(Loc, PtrTy, std::move(Operand),
                                         /*Implicit=*/true);
  Cast->setType(PtrTy);
  Operand = std::move(Cast);
  return PtrTy;
}

//===----------------------------------------------------------------------===//
// Expression checking
//===----------------------------------------------------------------------===//

const Type *Sema::checkExpr(Expr *E) {
  if (!E)
    return nullptr;
  TypeContext &Types = TU.types();
  switch (E->kind()) {
  case Expr::Kind::IntLiteral: {
    auto *L = cast<IntLiteralExpr>(E);
    if (L->isNullLiteral())
      E->setType(Types.pointerTo(Types.voidType()));
    else if (L->value() >= INT32_MIN && L->value() <= INT32_MAX)
      E->setType(Types.intType());
    else
      E->setType(Types.longType());
    return E->type();
  }
  case Expr::Kind::StringLiteral:
    // String literals evaluate to the address of a fresh read-only array.
    E->setType(Types.pointerTo(Types.charType()));
    return E->type();
  case Expr::Kind::VarRef: {
    auto *V = cast<VarRefExpr>(E);
    VarDecl *D = lookupVar(V->name());
    if (!D) {
      Diags.error(E->loc(), "use of undeclared identifier '" + V->name() +
                                "'");
      E->setType(Types.intType());
      return nullptr;
    }
    V->setDecl(D);
    E->setType(D->type());
    E->setLValue(true);
    return E->type();
  }
  case Expr::Kind::Unary:
    return checkUnary(cast<UnaryExpr>(E));
  case Expr::Kind::Binary:
    return checkBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Assign:
    return checkAssign(cast<AssignExpr>(E));
  case Expr::Kind::Call:
    return checkCall(cast<CallExpr>(E));
  case Expr::Kind::Index: {
    auto *I = cast<IndexExpr>(E);
    checkExpr(I->base());
    const Type *BaseTy = I->base()->type();
    // Arrays are indexed in place (no decay) so the lvalue path stays
    // simple; pointers load then offset.
    const Type *ElemTy = nullptr;
    if (const auto *A = dyn_cast_or_null<ArrayType>(BaseTy)) {
      ElemTy = A->element();
    } else if (const auto *P = dyn_cast_or_null<PointerType>(BaseTy)) {
      ElemTy = P->pointee();
      if (ElemTy->isVoid()) {
        Diags.error(E->loc(), "cannot index 'void *'");
        ElemTy = Types.intType();
      }
    } else {
      if (BaseTy)
        Diags.error(E->loc(), "subscripted value '" + BaseTy->toString() +
                                  "' is not an array or pointer");
      ElemTy = Types.intType();
    }
    checkExpr(I->index());
    if (I->index()->type() && !I->index()->type()->isInteger())
      Diags.error(I->index()->loc(), "array index must be an integer");
    else if (I->index()->type())
      convertTo(I->indexRef(), Types.longType(), "in array index");
    E->setType(ElemTy);
    E->setLValue(true);
    return ElemTy;
  }
  case Expr::Kind::Member: {
    auto *M = cast<MemberExpr>(E);
    checkExpr(M->base());
    const Type *BaseTy = M->base()->type();
    const StructType *ST = nullptr;
    if (M->isArrow()) {
      if (const auto *P = dyn_cast_or_null<PointerType>(BaseTy))
        ST = dyn_cast<StructType>(P->pointee());
      if (!ST && BaseTy)
        Diags.error(E->loc(), "'->' requires a pointer to struct, got '" +
                                  BaseTy->toString() + "'");
    } else {
      ST = dyn_cast_or_null<StructType>(BaseTy);
      if (!ST && BaseTy)
        Diags.error(E->loc(), "'.' requires a struct value, got '" +
                                  BaseTy->toString() + "'");
      if (ST && !M->base()->isLValue())
        Diags.error(E->loc(), "member access on a non-lvalue struct");
    }
    if (!ST) {
      E->setType(Types.intType());
      return nullptr;
    }
    if (!ST->decl()->isComplete()) {
      Diags.error(E->loc(), "member access into incomplete 'struct " +
                                ST->decl()->name() + "'");
      E->setType(Types.intType());
      return nullptr;
    }
    FieldDecl *F = ST->decl()->findField(M->fieldName());
    if (!F) {
      Diags.error(E->loc(), "no field '" + M->fieldName() + "' in 'struct " +
                                ST->decl()->name() + "'");
      E->setType(Types.intType());
      return nullptr;
    }
    M->setField(F);
    E->setType(F->type());
    E->setLValue(true);
    return F->type();
  }
  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(E);
    checkExpr(C->operand());
    decay(C->operandRef());
    const Type *From = C->operand()->type();
    const Type *To = C->targetType();
    if (From && !From->isScalar() && From != To)
      Diags.error(E->loc(), "cannot cast from non-scalar '" +
                                From->toString() + "'");
    if (!To->isScalar() && !To->isVoid() && From != To)
      Diags.error(E->loc(), "cannot cast to non-scalar '" + To->toString() +
                                "'");
    E->setType(To);
    return To;
  }
  case Expr::Kind::SizeofType: {
    auto *S = cast<SizeofTypeExpr>(E);
    const Type *Queried = S->queriedType();
    if (const auto *ST = dyn_cast<StructType>(Queried)) {
      if (!ST->decl()->isLaidOut()) {
        Diags.error(E->loc(), "sizeof applied to incomplete 'struct " +
                                  ST->decl()->name() + "'");
      }
    }
    E->setType(Types.longType());
    return E->type();
  }
  case Expr::Kind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    checkExpr(C->cond());
    decay(C->condRef());
    if (C->cond()->type() && !C->cond()->type()->isScalar())
      Diags.error(C->cond()->loc(), "condition must be scalar");
    checkExpr(C->thenExpr());
    checkExpr(C->elseExpr());
    decay(C->thenRef());
    decay(C->elseRef());
    const Type *T1 = C->thenExpr()->type();
    const Type *T2 = C->elseExpr()->type();
    const Type *Result = Types.intType();
    if (T1 && T2) {
      if (T1 == T2) {
        Result = T1;
      } else if (T1->isInteger() && T2->isInteger()) {
        Result = usualArithmeticType(T1, T2);
        convertTo(C->thenRef(), Result, "in conditional expression");
        convertTo(C->elseRef(), Result, "in conditional expression");
      } else if (T1->isPointer() || T2->isPointer()) {
        Result = T1->isPointer() ? T1 : T2;
        convertTo(C->thenRef(), Result, "in conditional expression");
        convertTo(C->elseRef(), Result, "in conditional expression");
      } else {
        Diags.error(E->loc(), "incompatible branches in conditional "
                              "expression");
      }
    }
    E->setType(Result);
    return Result;
  }
  }
  return nullptr;
}

const Type *Sema::checkUnary(UnaryExpr *E) {
  TypeContext &Types = TU.types();
  checkExpr(E->operand());
  const Type *OperandTy = E->operand()->type();
  if (!OperandTy) {
    E->setType(Types.intType());
    return nullptr;
  }
  switch (E->op()) {
  case UnaryOp::Neg:
  case UnaryOp::BitNot: {
    if (!OperandTy->isInteger()) {
      Diags.error(E->loc(), "operand of unary '" +
                                std::string(unaryOpSpelling(E->op())) +
                                "' must be an integer");
      E->setType(Types.intType());
      return E->type();
    }
    const Type *Promoted = usualArithmeticType(OperandTy, Types.intType());
    convertTo(E->operandRef(), Promoted, "in unary expression");
    E->setType(Promoted);
    return Promoted;
  }
  case UnaryOp::LogNot:
    decay(E->operandRef());
    if (!E->operand()->type()->isScalar())
      Diags.error(E->loc(), "operand of '!' must be scalar");
    E->setType(Types.intType());
    return E->type();
  case UnaryOp::Deref: {
    const Type *Decayed = decay(E->operandRef());
    const auto *P = dyn_cast<PointerType>(Decayed);
    if (!P) {
      Diags.error(E->loc(), "cannot dereference non-pointer '" +
                                Decayed->toString() + "'");
      E->setType(Types.intType());
      return E->type();
    }
    if (P->pointee()->isVoid()) {
      Diags.error(E->loc(), "cannot dereference 'void *'");
      E->setType(Types.intType());
      return E->type();
    }
    E->setType(P->pointee());
    E->setLValue(true);
    return E->type();
  }
  case UnaryOp::AddrOf:
    if (!E->operand()->isLValue()) {
      Diags.error(E->loc(), "cannot take the address of an rvalue");
      E->setType(Types.pointerTo(Types.intType()));
      return E->type();
    }
    E->setType(Types.pointerTo(OperandTy));
    return E->type();
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec:
    if (!E->operand()->isLValue())
      Diags.error(E->loc(), "operand of increment/decrement must be an "
                            "lvalue");
    if (!OperandTy->isScalar())
      Diags.error(E->loc(), "operand of increment/decrement must be scalar");
    E->setType(OperandTy);
    return OperandTy;
  }
  return nullptr;
}

const Type *Sema::checkBinary(BinaryExpr *E) {
  TypeContext &Types = TU.types();
  checkExpr(E->lhs());
  checkExpr(E->rhs());
  const Type *L = decay(E->lhsRef());
  const Type *R = decay(E->rhsRef());
  if (!L || !R) {
    E->setType(Types.intType());
    return nullptr;
  }

  switch (E->op()) {
  case BinaryOp::LogAnd:
  case BinaryOp::LogOr:
    if (!L->isScalar() || !R->isScalar())
      Diags.error(E->loc(), "operands of '&&'/'||' must be scalar");
    E->setType(Types.intType());
    return E->type();

  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    if (L->isPointer() || R->isPointer()) {
      // Pointer comparison: both pointers (possibly via null constant).
      const Type *PtrTy = L->isPointer() ? L : R;
      convertTo(E->lhsRef(), PtrTy, "in pointer comparison");
      convertTo(E->rhsRef(), PtrTy, "in pointer comparison");
    } else if (L->isInteger() && R->isInteger()) {
      const Type *Common = usualArithmeticType(L, R);
      convertTo(E->lhsRef(), Common, "in comparison");
      convertTo(E->rhsRef(), Common, "in comparison");
    } else {
      Diags.error(E->loc(), "invalid operands to comparison ('" +
                                L->toString() + "' and '" + R->toString() +
                                "')");
    }
    E->setType(Types.intType());
    return E->type();
  }

  case BinaryOp::Add:
  case BinaryOp::Sub: {
    // Pointer arithmetic.
    if (L->isPointer() && R->isInteger()) {
      convertTo(E->rhsRef(), Types.longType(), "in pointer arithmetic");
      E->setType(L);
      return L;
    }
    if (E->op() == BinaryOp::Add && L->isInteger() && R->isPointer()) {
      convertTo(E->lhsRef(), Types.longType(), "in pointer arithmetic");
      E->setType(R);
      return R;
    }
    if (E->op() == BinaryOp::Sub && L->isPointer() && R->isPointer()) {
      if (L != R)
        Diags.error(E->loc(), "subtracting incompatible pointers");
      E->setType(Types.longType());
      return E->type();
    }
    [[fallthrough]];
  }
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor: {
    if (!L->isInteger() || !R->isInteger()) {
      Diags.error(E->loc(), std::string("invalid operands to binary '") +
                                binaryOpSpelling(E->op()) + "' ('" +
                                L->toString() + "' and '" + R->toString() +
                                "')");
      E->setType(Types.intType());
      return E->type();
    }
    const Type *Common = usualArithmeticType(L, R);
    convertTo(E->lhsRef(), Common, "in arithmetic");
    // Shift counts keep their own promoted type in C, but using the common
    // type is simpler and has identical behaviour for in-range counts.
    convertTo(E->rhsRef(), Common, "in arithmetic");
    E->setType(Common);
    return Common;
  }
  }
  return nullptr;
}

const Type *Sema::checkAssign(AssignExpr *E) {
  checkExpr(E->target());
  checkExpr(E->value());
  const Type *TargetTy = E->target()->type();
  if (!TargetTy) {
    E->setType(TU.types().intType());
    return nullptr;
  }
  if (!E->target()->isLValue())
    Diags.error(E->loc(), "assignment target is not an lvalue");
  if (TargetTy->isArray())
    Diags.error(E->loc(), "cannot assign to an array");

  if (E->isCompound()) {
    // `a op= b` requires scalar target; the operation is typed like
    // `a op b` in IR lowering.
    if (!TargetTy->isScalar())
      Diags.error(E->loc(), "compound assignment needs a scalar target");
    decay(E->valueRef());
    const Type *ValueTy = E->value()->type();
    if (ValueTy && !ValueTy->isInteger() &&
        !(TargetTy->isPointer() &&
          (E->compoundOp() == BinaryOp::Add ||
           E->compoundOp() == BinaryOp::Sub)))
      Diags.error(E->loc(), "invalid compound assignment operand");
    E->setType(TargetTy);
    return TargetTy;
  }

  if (TargetTy->isStruct()) {
    // Struct assignment: bytewise copy of identical struct types.
    if (E->value()->type() != TargetTy)
      Diags.error(E->loc(), "incompatible struct assignment");
    E->setType(TargetTy);
    return TargetTy;
  }

  decay(E->valueRef());
  if (E->value()->type())
    convertTo(E->valueRef(), TargetTy, "in assignment");
  E->setType(TargetTy);
  return TargetTy;
}

const Type *Sema::checkCall(CallExpr *E) {
  TypeContext &Types = TU.types();

  // Built-in library functions get fixed signatures.
  const std::string &Name = E->callee();
  FunctionDecl *Callee = lookupFunction(Name);
  if (!Callee && isBuiltinName(Name)) {
    // Synthesize a prototype for the builtin so calls type-check uniformly.
    auto Proto = std::make_unique<FunctionDecl>(
        E->loc(), Name,
        Name == "malloc" ? static_cast<const Type *>(
                               Types.pointerTo(Types.voidType()))
                         : Types.voidType());
    if (Name == "malloc")
      Proto->addParam(std::make_unique<VarDecl>(E->loc(), "size",
                                                Types.longType(),
                                                VarDecl::Storage::Param,
                                                false, nullptr));
    else if (Name == "free")
      Proto->addParam(std::make_unique<VarDecl>(
          E->loc(), "ptr", Types.pointerTo(Types.voidType()),
          VarDecl::Storage::Param, false, nullptr));
    else if (Name == "assert" || Name == "exit")
      Proto->addParam(std::make_unique<VarDecl>(E->loc(), "v",
                                                Types.intType(),
                                                VarDecl::Storage::Param,
                                                false, nullptr));
    Callee = Proto.get();
    Functions[Name].push_back(Callee);
    FunctionImpl[Name] = Callee;
    TU.addDecl(std::move(Proto));
  }

  if (!Callee) {
    // C implicit declaration: synthesize `extern int name(argtypes...)`.
    // Such functions are *external functions* for DART (paper §3.1).
    Diags.warning(E->loc(), "implicit declaration of function '" + Name +
                                "' (treated as external)");
    auto Proto =
        std::make_unique<FunctionDecl>(E->loc(), Name, Types.intType());
    for (size_t I = 0; I < E->args().size(); ++I) {
      checkExpr(E->args()[I].get());
      decay(E->argsRef()[I]);
      const Type *ArgTy = E->args()[I]->type();
      Proto->addParam(std::make_unique<VarDecl>(
          E->loc(), "arg" + std::to_string(I),
          ArgTy ? ArgTy : Types.intType(), VarDecl::Storage::Param, false,
          nullptr));
    }
    Callee = Proto.get();
    Functions[Name].push_back(Callee);
    FunctionImpl[Name] = Callee;
    TU.addDecl(std::move(Proto));
    E->setCalleeDecl(Callee);
    E->setType(Callee->returnType());
    return E->type();
  }

  E->setCalleeDecl(Callee);
  if (E->args().size() != Callee->params().size()) {
    Diags.error(E->loc(), "call to '" + Name + "' supplies " +
                              std::to_string(E->args().size()) +
                              " argument(s), expected " +
                              std::to_string(Callee->params().size()));
  }
  size_t N = std::min(E->args().size(), Callee->params().size());
  for (size_t I = 0; I < N; ++I) {
    checkExpr(E->args()[I].get());
    decay(E->argsRef()[I]);
    if (E->args()[I]->type())
      convertTo(E->argsRef()[I], Callee->params()[I]->type(),
                "in function argument");
  }
  for (size_t I = N; I < E->args().size(); ++I)
    checkExpr(E->args()[I].get());
  E->setType(Callee->returnType());
  return E->type();
}

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

void Sema::checkVarDecl(VarDecl *V, bool IsGlobal) {
  const Type *Ty = V->type();
  if (Ty->isVoid()) {
    Diags.error(V->loc(), "variable '" + V->name() + "' has type void");
    return;
  }
  if (const auto *ST = dyn_cast<StructType>(Ty)) {
    if (!ST->decl()->isLaidOut())
      Diags.error(V->loc(), "variable '" + V->name() +
                                "' has incomplete type '" + Ty->toString() +
                                "'");
  }
  if (V->isExtern() && V->init())
    Diags.error(V->loc(), "extern variable '" + V->name() +
                              "' cannot have an initializer");
  if (!V->init())
    return;
  checkExpr(V->init());
  decay(V->initRef());
  if (Ty->isStruct()) {
    if (V->init()->type() != Ty)
      Diags.error(V->loc(), "incompatible struct initializer");
  } else if (Ty->isArray()) {
    Diags.error(V->loc(), "array initializers are not supported in MiniC");
  } else if (V->init()->type()) {
    convertTo(V->initRef(), Ty, "in initializer");
  }
  if (IsGlobal) {
    int64_t Value;
    if (!foldConstant(V->init(), Value))
      Diags.error(V->loc(), "global initializer must be a constant "
                            "expression");
  }
}

bool Sema::foldConstant(const Expr *E, int64_t &Out) const {
  if (const auto *L = dyn_cast<IntLiteralExpr>(E)) {
    Out = L->value();
    return true;
  }
  if (const auto *S = dyn_cast<SizeofTypeExpr>(E)) {
    Out = S->queriedType()->size();
    return true;
  }
  if (const auto *C = dyn_cast<CastExpr>(E))
    return foldConstant(C->operand(), Out);
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    int64_t Inner;
    if (!foldConstant(U->operand(), Inner))
      return false;
    switch (U->op()) {
    case UnaryOp::Neg:
      Out = -Inner;
      return true;
    case UnaryOp::BitNot:
      Out = ~Inner;
      return true;
    case UnaryOp::LogNot:
      Out = !Inner;
      return true;
    default:
      return false;
    }
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    int64_t L, R;
    if (!foldConstant(B->lhs(), L) || !foldConstant(B->rhs(), R))
      return false;
    switch (B->op()) {
    case BinaryOp::Add:
      Out = L + R;
      return true;
    case BinaryOp::Sub:
      Out = L - R;
      return true;
    case BinaryOp::Mul:
      Out = L * R;
      return true;
    case BinaryOp::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinaryOp::Shl:
      Out = L << (R & 63);
      return true;
    case BinaryOp::Shr:
      Out = L >> (R & 63);
      return true;
    case BinaryOp::BitAnd:
      Out = L & R;
      return true;
    case BinaryOp::BitOr:
      Out = L | R;
      return true;
    case BinaryOp::BitXor:
      Out = L ^ R;
      return true;
    default:
      return false;
    }
  }
  return false;
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  TypeContext &Types = TU.types();
  switch (S->kind()) {
  case Stmt::Kind::Compound: {
    pushScope();
    for (const auto &Child : cast<CompoundStmt>(S)->body())
      checkStmt(Child.get());
    popScope();
    return;
  }
  case Stmt::Kind::Decl: {
    VarDecl *V = cast<DeclStmt>(S)->var();
    checkVarDecl(V, /*IsGlobal=*/false);
    declareVar(V);
    return;
  }
  case Stmt::Kind::Expr:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    checkExpr(I->cond());
    decay(I->condRef());
    if (I->cond()->type() && !I->cond()->type()->isScalar())
      Diags.error(I->cond()->loc(), "if condition must be scalar");
    checkStmt(I->thenStmt());
    checkStmt(I->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    checkExpr(W->cond());
    decay(W->condRef());
    if (W->cond()->type() && !W->cond()->type()->isScalar())
      Diags.error(W->cond()->loc(), "while condition must be scalar");
    ++LoopDepth;
    ++BreakDepth;
    checkStmt(W->body());
    --BreakDepth;
    --LoopDepth;
    return;
  }
  case Stmt::Kind::DoWhile: {
    auto *D = cast<DoWhileStmt>(S);
    ++LoopDepth;
    ++BreakDepth;
    checkStmt(D->body());
    --BreakDepth;
    --LoopDepth;
    checkExpr(D->cond());
    decay(D->condRef());
    if (D->cond()->type() && !D->cond()->type()->isScalar())
      Diags.error(D->cond()->loc(), "do-while condition must be scalar");
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope(); // for-init declarations scope over the whole loop
    checkStmt(F->init());
    if (F->cond()) {
      checkExpr(F->cond());
      decay(F->condRef());
      if (F->cond()->type() && !F->cond()->type()->isScalar())
        Diags.error(F->cond()->loc(), "for condition must be scalar");
    }
    if (F->step())
      checkExpr(F->step());
    ++LoopDepth;
    ++BreakDepth;
    checkStmt(F->body());
    --BreakDepth;
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Kind::Switch: {
    auto *Sw = cast<SwitchStmt>(S);
    checkExpr(Sw->cond());
    decay(Sw->condRef());
    if (Sw->cond()->type() && !Sw->cond()->type()->isInteger())
      Diags.error(Sw->cond()->loc(), "switch condition must be an integer");
    else if (Sw->cond()->type())
      convertTo(Sw->condRef(), Types.longType(), "in switch condition");
    std::set<int64_t> SeenValues;
    ++BreakDepth;
    pushScope(); // declarations in case bodies scope over the switch
    for (auto &Case : Sw->casesRef()) {
      if (Case.Value && !SeenValues.insert(*Case.Value).second)
        Diags.error(Case.Loc, "duplicate case value " +
                                  std::to_string(*Case.Value));
      for (auto &Child : Case.Body)
        checkStmt(Child.get());
    }
    popScope();
    --BreakDepth;
    return;
  }
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    assert(CurrentFunction && "return outside function");
    const Type *RetTy = CurrentFunction->returnType();
    if (R->value()) {
      if (RetTy->isVoid())
        Diags.error(R->loc(), "void function '" + CurrentFunction->name() +
                                  "' cannot return a value");
      checkExpr(R->value());
      decay(R->valueRef());
      if (!RetTy->isVoid() && R->value()->type())
        convertTo(R->valueRef(), RetTy, "in return statement");
    } else if (!RetTy->isVoid()) {
      Diags.error(R->loc(), "non-void function '" + CurrentFunction->name() +
                                "' must return a value");
    }
    (void)Types;
    return;
  }
  case Stmt::Kind::Break:
    if (BreakDepth == 0)
      Diags.error(S->loc(), "'break' outside of a loop or switch");
    return;
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "'continue' outside of a loop");
    return;
  case Stmt::Kind::Null:
    return;
  }
}

void Sema::checkFunction(FunctionDecl *F) {
  CurrentFunction = F;
  LoopDepth = 0;
  BreakDepth = 0;
  pushScope();
  for (const auto &P : F->params()) {
    if (P->type()->isVoid())
      Diags.error(P->loc(), "parameter cannot have type void");
    if (const auto *ST = dyn_cast<StructType>(P->type()))
      if (!ST->decl()->isLaidOut())
        Diags.error(P->loc(), "parameter has incomplete struct type");
    if (!P->name().empty())
      declareVar(P.get());
  }
  checkStmt(F->body());
  popScope();
  CurrentFunction = nullptr;
}

bool Sema::run() {
  if (!collectTopLevel())
    return false;
  // Check global initializers.
  for (const auto &D : TU.decls())
    if (auto *V = dyn_cast<VarDecl>(D.get()))
      checkVarDecl(V, /*IsGlobal=*/true);
  // Check every function definition. Iterate by index: checkCall may append
  // synthesized prototypes to the TU while we walk it.
  for (size_t I = 0; I < TU.decls().size(); ++I)
    if (auto *F = dyn_cast<FunctionDecl>(TU.decls()[I].get()))
      if (F->hasBody())
        checkFunction(F);
  return !Diags.hasErrors();
}

std::unique_ptr<TranslationUnit>
dart::parseAndCheck(std::string_view Source, DiagnosticsEngine &Diags) {
  auto TU = Parser::parse(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  Sema S(*TU, Diags);
  if (!S.run())
    return nullptr;
  return TU;
}
