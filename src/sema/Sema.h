//===- Sema.h - MiniC semantic analysis -------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniC: struct layout, name resolution, type
/// checking with C-like implicit conversions, and lvalue analysis. After a
/// successful run every Expr carries a Type, every VarRefExpr/CallExpr/
/// MemberExpr is resolved to its declaration, and implicit conversions are
/// materialized as CastExpr nodes so IR lowering never converts implicitly.
///
/// Sema also implements the C "implicit declaration" rule: a call to an
/// undeclared function synthesizes an extern prototype. This is how DART's
/// interface extraction (paper §3.1) sees *external functions*: any function
/// that is declared or called but never defined belongs to the environment.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SEMA_SEMA_H
#define DART_SEMA_SEMA_H

#include "ast/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace dart {

class Sema {
public:
  Sema(TranslationUnit &TU, DiagnosticsEngine &Diags);

  /// Runs all analyses. Returns true on success (no errors).
  bool run();

  /// After run(): the function that implements \p Name, preferring a
  /// definition over prototypes; null if unknown.
  FunctionDecl *lookupFunction(const std::string &Name) const;

  /// After run(): true if \p Name is declared/called but never defined and
  /// is not a registered library builtin — i.e. an *external function* in
  /// the paper's sense.
  bool isExternalFunction(const std::string &Name) const;

  /// Names sema treats as built-in library functions (malloc, free, abort,
  /// assert). These are never classified as external functions.
  static const std::vector<std::string> &builtinNames();

private:
  // Pass 1: collect structs/globals/functions, lay out structs.
  bool collectTopLevel();
  bool layoutStruct(StructDecl *S, std::vector<StructDecl *> &InProgress);

  // Pass 2: check function bodies.
  void checkFunction(FunctionDecl *F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDecl *V, bool IsGlobal);

  /// Type-checks an expression tree in place. Returns the expression's type
  /// or null on error (error already diagnosed; a best-effort type is still
  /// set so checking can continue).
  const Type *checkExpr(Expr *E);
  const Type *checkUnary(UnaryExpr *E);
  const Type *checkBinary(BinaryExpr *E);
  const Type *checkAssign(AssignExpr *E);
  const Type *checkCall(CallExpr *E);

  // Conversion machinery.
  const Type *usualArithmeticType(const Type *A, const Type *B);
  /// Inserts an implicit cast converting \p Operand (an owned child slot) to
  /// \p To if needed. Diagnoses incompatible conversions at \p Loc.
  void convertTo(ExprPtr &Operand, const Type *To, const char *Context);
  bool isImplicitlyConvertible(const Type *From, const Type *To,
                               const Expr *Value) const;
  /// Array-to-pointer decay; returns decayed type (and wraps the child in a
  /// decay cast) when \p Operand has array type.
  const Type *decay(ExprPtr &Operand);

  // Scope handling.
  void pushScope();
  void popScope();
  VarDecl *lookupVar(const std::string &Name) const;
  void declareVar(VarDecl *V);

  /// Folds a constant integer expression (for global initializers). Returns
  /// false if not constant.
  bool foldConstant(const Expr *E, int64_t &Out) const;

  TranslationUnit &TU;
  DiagnosticsEngine &Diags;

  std::map<std::string, StructDecl *> Structs;
  std::map<std::string, VarDecl *> Globals;
  /// All declarations of each function name, in source order.
  std::map<std::string, std::vector<FunctionDecl *>> Functions;
  /// Resolved "best" decl per name (definition preferred).
  std::map<std::string, FunctionDecl *> FunctionImpl;

  std::vector<std::map<std::string, VarDecl *>> Scopes;
  FunctionDecl *CurrentFunction = nullptr;
  unsigned LoopDepth = 0;
  unsigned BreakDepth = 0; // loops + switches

  friend class ExprChecker;
};

/// Convenience: parse + analyse a MiniC program. Returns null and fills
/// \p Diags on any error.
std::unique_ptr<TranslationUnit>
parseAndCheck(std::string_view Source, DiagnosticsEngine &Diags);

} // namespace dart

#endif // DART_SEMA_SEMA_H
