//===- Lexer.cpp - MiniC tokenizer ----------------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace dart;

const char *dart::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Unknown:
    return "unknown token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwNull:
    return "'NULL'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::AmpEq:
    return "'&='";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PipeEq:
    return "'|='";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::CaretEq:
    return "'^='";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::PlusEq:
    return "'+='";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::MinusEq:
    return "'-='";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::StarEq:
    return "'*='";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::SlashEq:
    return "'/='";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::PercentEq:
    return "'%='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::ShlEq:
    return "'<<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::ShrEq:
    return "'>>='";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  }
  return "token";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"int", TokenKind::KwInt},
      {"char", TokenKind::KwChar},
      {"unsigned", TokenKind::KwUnsigned},
      {"long", TokenKind::KwLong},
      {"void", TokenKind::KwVoid},
      {"struct", TokenKind::KwStruct},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},
      {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},
      {"extern", TokenKind::KwExtern},
      {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
      {"NULL", TokenKind::KwNull},
  };
  return Table;
}

Lexer::Lexer(std::string_view Source, DiagnosticsEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned LookAhead) const {
  size_t Index = Pos + LookAhead;
  return Index < Source.size() ? Source[Index] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

SourceLocation Lexer::currentLoc() const {
  return {Line, Column, static_cast<uint32_t>(Pos)};
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = currentLoc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  auto It = keywordTable().find(Text);
  if (It != keywordTable().end())
    return makeToken(It->second, Loc, std::string(Text));
  return makeToken(TokenKind::Identifier, Loc, std::string(Text));
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Start = Pos;
  uint64_t Value = 0;
  bool Overflow = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    if (!std::isxdigit(static_cast<unsigned char>(peek())))
      Diags.error(Loc, "hexadecimal literal has no digits");
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      unsigned Digit = std::isdigit(static_cast<unsigned char>(C))
                           ? unsigned(C - '0')
                           : unsigned(std::tolower(C) - 'a' + 10);
      if (Value > (UINT64_MAX - Digit) / 16)
        Overflow = true;
      Value = Value * 16 + Digit;
    }
  } else if (peek() == '0' &&
             std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (peek() >= '0' && peek() <= '7') {
      unsigned Digit = unsigned(advance() - '0');
      if (Value > (UINT64_MAX - Digit) / 8)
        Overflow = true;
      Value = Value * 8 + Digit;
    }
    if (std::isdigit(static_cast<unsigned char>(peek())))
      Diags.error(Loc, "invalid digit in octal literal");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      unsigned Digit = unsigned(advance() - '0');
      if (Value > (UINT64_MAX - Digit) / 10)
        Overflow = true;
      Value = Value * 10 + Digit;
    }
  }
  // Accept (and ignore) the common integer suffixes so pasted C compiles.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
    advance();
  if (Overflow)
    Diags.error(Loc, "integer literal too large for 64 bits");
  Token T = makeToken(TokenKind::IntLiteral, Loc,
                      std::string(Source.substr(Start, Pos - Start)));
  T.IntValue = static_cast<int64_t>(Value);
  return T;
}

int Lexer::lexEscapedChar() {
  char C = advance();
  if (C != '\\')
    return static_cast<unsigned char>(C);
  char E = advance();
  switch (E) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  case 'x': {
    int Value = 0;
    bool Any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      int Digit = std::isdigit(static_cast<unsigned char>(D))
                      ? D - '0'
                      : std::tolower(D) - 'a' + 10;
      Value = Value * 16 + Digit;
      Any = true;
    }
    if (!Any) {
      Diags.error(currentLoc(), "\\x escape has no hex digits");
      return -1;
    }
    return Value & 0xff;
  }
  default:
    Diags.error(currentLoc(), std::string("unknown escape sequence '\\") +
                                  E + "'");
    return -1;
  }
}

Token Lexer::lexCharLiteral(SourceLocation Loc) {
  advance(); // consume opening quote
  if (peek() == '\'' || peek() == '\0') {
    Diags.error(Loc, "empty character literal");
    advance();
    return makeToken(TokenKind::Unknown, Loc, "'");
  }
  int Value = lexEscapedChar();
  if (!match('\''))
    Diags.error(Loc, "unterminated character literal");
  Token T = makeToken(TokenKind::CharLiteral, Loc, "");
  T.IntValue = Value < 0 ? 0 : static_cast<int64_t>(static_cast<char>(Value));
  return T;
}

Token Lexer::lexStringLiteral(SourceLocation Loc) {
  advance(); // consume opening quote
  std::string Bytes;
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      Diags.error(Loc, "unterminated string literal");
      Token T = makeToken(TokenKind::StringLiteral, Loc, "");
      T.StrValue = Bytes;
      return T;
    }
    int C = lexEscapedChar();
    if (C >= 0)
      Bytes.push_back(static_cast<char>(C));
  }
  advance(); // consume closing quote
  Token T = makeToken(TokenKind::StringLiteral, Loc, "");
  T.StrValue = std::move(Bytes);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLocation Loc = currentLoc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc, "");
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '\'')
    return lexCharLiteral(Loc);
  if (C == '"')
    return lexStringLiteral(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ';':
    return makeToken(TokenKind::Semi, Loc, ";");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '.':
    return makeToken(TokenKind::Dot, Loc, ".");
  case '~':
    return makeToken(TokenKind::Tilde, Loc, "~");
  case '?':
    return makeToken(TokenKind::Question, Loc, "?");
  case ':':
    return makeToken(TokenKind::Colon, Loc, ":");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    if (match('='))
      return makeToken(TokenKind::AmpEq, Loc, "&=");
    return makeToken(TokenKind::Amp, Loc, "&");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    if (match('='))
      return makeToken(TokenKind::PipeEq, Loc, "|=");
    return makeToken(TokenKind::Pipe, Loc, "|");
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEq, Loc, "^=");
    return makeToken(TokenKind::Caret, Loc, "^");
  case '!':
    if (match('='))
      return makeToken(TokenKind::BangEq, Loc, "!=");
    return makeToken(TokenKind::Bang, Loc, "!");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqEq, Loc, "==");
    return makeToken(TokenKind::Eq, Loc, "=");
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    if (match('='))
      return makeToken(TokenKind::PlusEq, Loc, "+=");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    if (match('='))
      return makeToken(TokenKind::MinusEq, Loc, "-=");
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc, "->");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEq, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEq, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEq, Loc, "%=");
    return makeToken(TokenKind::Percent, Loc, "%");
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::ShlEq, Loc, "<<=");
      return makeToken(TokenKind::Shl, Loc, "<<");
    }
    if (match('='))
      return makeToken(TokenKind::LessEq, Loc, "<=");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::ShrEq, Loc, ">>=");
      return makeToken(TokenKind::Shr, Loc, ">>");
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEq, Loc, ">=");
    return makeToken(TokenKind::Greater, Loc, ">");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
