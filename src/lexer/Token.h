//===- Token.h - MiniC token definitions ------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the MiniC lexer.
///
//===----------------------------------------------------------------------===//

#ifndef DART_LEXER_TOKEN_H
#define DART_LEXER_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>

namespace dart {

enum class TokenKind {
  // Sentinels.
  Eof,
  Unknown,

  // Literals and names.
  Identifier,
  IntLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwChar,
  KwUnsigned,
  KwLong,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,
  KwExtern,
  KwSwitch,
  KwCase,
  KwDefault,
  KwNull, // `NULL`, lexed as a keyword so the parser can fold it to (void*)0.

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,      // ->
  Amp,        // &
  AmpAmp,     // &&
  AmpEq,      // &=
  Pipe,       // |
  PipePipe,   // ||
  PipeEq,     // |=
  Caret,      // ^
  CaretEq,    // ^=
  Tilde,      // ~
  Bang,       // !
  BangEq,     // !=
  Eq,         // =
  EqEq,       // ==
  Plus,       // +
  PlusPlus,   // ++
  PlusEq,     // +=
  Minus,      // -
  MinusMinus, // --
  MinusEq,    // -=
  Star,       // *
  StarEq,     // *=
  Slash,      // /
  SlashEq,    // /=
  Percent,    // %
  PercentEq,  // %=
  Less,       // <
  LessEq,     // <=
  Shl,        // <<
  ShlEq,      // <<=
  Greater,    // >
  GreaterEq,  // >=
  Shr,        // >>
  ShrEq,      // >>=
  Question,   // ?
  Colon,      // :
};

/// Human-readable token kind name, for diagnostics ("expected ';'").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text holds the source spelling (for identifiers and
/// literals); \c IntValue holds the decoded value of integer and character
/// literals; \c StrValue holds the decoded bytes of a string literal.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string Text;
  int64_t IntValue = 0;
  std::string StrValue;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isOneOf(TokenKind K1, TokenKind K2) const { return is(K1) || is(K2); }
  template <typename... Ts> bool isOneOf(TokenKind K1, Ts... Ks) const {
    return is(K1) || isOneOf(Ks...);
  }
};

} // namespace dart

#endif // DART_LEXER_TOKEN_H
