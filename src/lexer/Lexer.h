//===- Lexer.h - MiniC tokenizer --------------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC, the C subset that programs under test are
/// written in. Supports //- and /**/-comments, decimal/hex/octal integer
/// literals, character and string literals with the common escapes, and all
/// operators of the subset.
///
//===----------------------------------------------------------------------===//

#ifndef DART_LEXER_LEXER_H
#define DART_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace dart {

class Lexer {
public:
  /// \p Source must outlive the lexer. Errors are reported to \p Diags and
  /// yield Unknown tokens so parsing can continue.
  Lexer(std::string_view Source, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token; returns Eof forever at end of input.
  Token next();

  /// Lexes the whole buffer, Eof token included (always last).
  std::vector<Token> lexAll();

private:
  char peek(unsigned LookAhead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLocation currentLoc() const;

  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Text);
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexCharLiteral(SourceLocation Loc);
  Token lexStringLiteral(SourceLocation Loc);
  /// Decodes one (possibly escaped) character of a char/string literal.
  /// Returns -1 on a malformed escape (already diagnosed).
  int lexEscapedChar();

  std::string_view Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace dart

#endif // DART_LEXER_LEXER_H
