//===- NeedhamSchroeder.cpp - §4.2 protocol workload ------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A MiniC implementation of the Needham-Schroeder public-key authentication
// protocol in the style the paper describes (§4.2): one process simulating
// both the initiator A and the responder B; agent ids, keys, addresses and
// nonces are integers; an incoming message is a tuple of integers; an
// assertion fires exactly when Lowe's attack has happened (B completes a
// session believing it talks to A although A never initiated with B).
//
// Encryption model: a message (key, d1, d2, d3) is `{d1, d2, d3}` encrypted
// with the public key of agent `key`. Only agent `key` processes it; the
// Dolev-Yao intruder can read those addressed to I (key == AGENT_I).
//
// Intruder models:
//  - possibilistic (paper Fig. 9): the environment may deliver any tuple —
//    DART's most general environment, as strong as guessing secrets;
//  - Dolev-Yao (paper Fig. 10): an input filter accepts only messages the
//    intruder can derive — composed from atoms it knows, or verbatim
//    replays of ciphertexts it observed on the network.
//
// Session start: in the possibilistic variant A sends its first message at
// initialization; in the Dolev-Yao variant A starts when it receives any
// message while idle (the paper's depth-4 trace counts A's first send as
// depth 1). This matches the respective tables: the attack needs depth 2
// (possibilistic) and depth 4 (Dolev-Yao).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace dart;

std::string workloads::needhamSchroederSource(const NsConfig &Config) {
  std::string Src;

  Src += R"(
/* ---- agents and constants --------------------------------------------- */
int AGENT_A = 1;
int AGENT_B = 2;
int AGENT_I = 3; /* the intruder; A is willing to talk to it */

int NONCE_A = 1001;
int NONCE_B = 2002;
int NONCE_I = 3003;

/* ---- protocol state ---------------------------------------------------- */
/* initiator A */
int a_state = 0;  /* 0: idle, 1: sent msg1, awaiting msg2, 2: done */
int a_peer = 0;   /* whom A is running its session with */
int a_started_with_b = 0;

/* responder B */
int b_state = 0;  /* 0: awaiting msg1, 1: sent msg2, awaiting msg3,
                     2: session established */
int b_peer = 0;   /* whom B believes it is talking to */
int b_nonce_recv = 0;
int b_nonce_sent = 0;

/* network statistics (outputs are visible on the wire) */
int msgs_sent = 0;
)";

  if (Config.DolevYao) {
    Src += R"(
/* ---- Dolev-Yao intruder knowledge -------------------------------------- */
/* atoms the intruder knows (can place into composed messages) */
int known_atoms[24];
int known_count = 0;

/* ciphertexts observed on the wire (can be replayed verbatim) */
int seen_key[16];
int seen_d1[16];
int seen_d2[16];
int seen_d3[16];
int seen_count = 0;

int dy_knows(int v) {
  int i;
  for (i = 0; i < known_count; i++)
    if (known_atoms[i] == v)
      return 1;
  return 0;
}

void dy_learn(int v) {
  if (dy_knows(v))
    return;
  if (known_count < 24) {
    known_atoms[known_count] = v;
    known_count = known_count + 1;
  }
}

void dy_record(int key, int d1, int d2, int d3) {
  if (seen_count < 16) {
    seen_key[seen_count] = key;
    seen_d1[seen_count] = d1;
    seen_d2[seen_count] = d2;
    seen_d3[seen_count] = d3;
    seen_count = seen_count + 1;
  }
}

/* the intruder observes every message on the wire */
void dy_observe(int key, int d1, int d2, int d3) {
  if (key == AGENT_I) {
    /* addressed to the intruder: decrypt, learn the payload */
    dy_learn(d1);
    dy_learn(d2);
    dy_learn(d3);
  } else {
    /* opaque ciphertext: can only be replayed */
    dy_record(key, d1, d2, d3);
  }
}

/* can the intruder produce this message? (compose-or-replay) */
int dy_can_send(int key, int d1, int d2, int d3) {
  int i;
  /* public keys are public: encrypting to anyone is free, but every
     payload atom must be known (an absent third field is free) */
  if (dy_knows(d1) && dy_knows(d2) && (d3 == 0 || dy_knows(d3)))
    return 1;
  /* or replay an observed ciphertext verbatim */
  for (i = 0; i < seen_count; i++)
    if (seen_key[i] == key && seen_d1[i] == d1 && seen_d2[i] == d2 &&
        seen_d3[i] == d3)
      return 1;
  return 0;
}

void dy_init(void) {
  /* Keep the intruder's initial knowledge minimal: the paper tuned its
     intruder model to "the smallest state space we could get" (§4.2).
     Everything Lowe's attack composes uses only 0, the name A, and the
     nonces the intruder learns along the way. */
  dy_learn(0);
  dy_learn(AGENT_A);
}
)";
  }

  // Network send: both variants log the message; DY also feeds knowledge.
  Src += R"(
/* ---- wire --------------------------------------------------------------- */
void net_send(int key, int d1, int d2, int d3) {
  msgs_sent = msgs_sent + 1;
)";
  if (Config.DolevYao)
    Src += "  dy_observe(key, d1, d2, d3);\n";
  Src += "}\n";

  // A's session start: msg1 = {Na, A}K_peer to the intruder.
  Src += R"(
/* ---- initiator A -------------------------------------------------------- */
void a_start_session(int peer) {
  a_peer = peer;
  if (peer == AGENT_B)
    a_started_with_b = 1;
  /* Step 1: A -> peer : {Na, A}K_peer */
  net_send(peer, NONCE_A, AGENT_A, 0);
  a_state = 1;
}

void a_receive(int d1, int d2, int d3) {
)";
  if (!Config.DolevYao) {
    Src += R"(  if (a_state == 0)
    return; /* session started at init */
)";
  } else {
    Src += R"(  if (a_state == 0) {
    /* any message wakes A up: it starts its session with the intruder
       (the paper's depth-1 step: "A sends its first message") */
    a_start_session(AGENT_I);
    return;
  }
)";
  }
  Src += R"(  if (a_state == 1) {
    /* Step 4/5: expects {Na, Nb'}Ka, answers {Nb'}K_peer */
    if (d1 != NONCE_A)
      return; /* not my session */
)";
  switch (Config.Fix) {
  case workloads::LoweFix::None:
    break;
  case workloads::LoweFix::Incomplete:
    Src += R"(    /* Lowe's fix, as (incorrectly) implemented: the responder identity
       field must be present... but its value is never compared against
       the expected peer. */
    if (d3 == 0)
      return;
)";
    break;
  case workloads::LoweFix::Full:
    Src += R"(    /* Lowe's fix, correctly: the responder identity must match the agent
       A believes it is talking to. */
    if (d3 != a_peer)
      return;
)";
    break;
  }
  Src += R"(    /* A returns the second nonce, encrypted for its peer */
    net_send(a_peer, d2, 0, 0);
    a_state = 2;
    return;
  }
}

/* ---- responder B -------------------------------------------------------- */
void b_receive(int d1, int d2, int d3) {
  if (b_state == 0) {
    /* Step 2/3: expects {n, agent}Kb, answers {n, Nb (, B)}K_agent.
       B talks to A or to the intruder (B-to-B sessions are out of scope,
       shrinking the state space as in the paper's tuned model). */
    if (d2 == AGENT_A || d2 == AGENT_I) {
      b_peer = d2;
      b_nonce_recv = d1;
      b_nonce_sent = NONCE_B;
)";
  if (Config.Fix == workloads::LoweFix::None)
    Src += "      net_send(b_peer, d1, NONCE_B, 0);\n";
  else
    Src += "      net_send(b_peer, d1, NONCE_B, AGENT_B);\n";
  Src += R"(      b_state = 1;
    }
    return;
  }
  if (b_state == 1) {
    /* Step 6: expects {Nb}Kb */
    if (d1 == b_nonce_sent) {
      b_state = 2; /* session established with b_peer */
    }
    return;
  }
}
)";

  // The toplevel: one incoming message per call.
  Src += R"(
/* ---- message dispatch (toplevel under test) ------------------------------ */
int initialized = 0;

void ns_init(void) {
)";
  if (Config.DolevYao)
    Src += "  dy_init();\n";
  else
    Src += "  /* A starts its session with the intruder right away */\n"
           "  a_start_session(AGENT_I);\n";
  Src += R"(  initialized = 1;
}

void ns_step(int key, int d1, int d2, int d3) {
  if (!initialized)
    ns_init();
)";
  if (Config.DolevYao)
    Src += R"(
  /* Dolev-Yao filter: drop anything the intruder cannot produce */
  if (!dy_can_send(key, d1, d2, d3))
    return;
)";
  Src += R"(
  if (key == AGENT_A)
    a_receive(d1, d2, d3);
  else if (key == AGENT_B)
    b_receive(d1, d2, d3);
  /* messages to the intruder itself need no handling */

  /* Security property: if B completed a session believing it talks to A,
     then A must have started a session with B. Lowe's attack violates
     exactly this (paper §4.2). */
  assert(!(b_state == 2 && b_peer == AGENT_A && !a_started_with_b));
}
)";
  return Src;
}
