//===- MiniSip.cpp - §4.3 oSIP-substitute workload --------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// miniSIP: a SIP-message library written in MiniC that reproduces the
// defect pattern DART exposed in oSIP 2.0.9 (paper §4.3):
//
//  - ~90 exported functions over sip_param/sip_uri/sip_via/sip_header/
//    sip_message structures;
//  - most functions dereference pointer arguments without checking for
//    NULL — some check consistently, some check one argument but not the
//    other, some check NULL but then walk unbounded strings;
//  - the parser path contains the paper's headline flaw: a large incoming
//    message makes the internal allocation fail, the unchecked NULL is
//    handed to a helper, and the library crashes — remotely triggerable
//    by message size alone (fixed in sip_receive_fixed, mirroring oSIP
//    2.2.0's fix).
//
// The audit experiment (bench/bench_osip) runs DART on every exported
// function with a 1000-run budget, reproducing the "65% of functions
// crash" result shape.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace dart;

std::string workloads::miniSipSource() {
  return R"(
/* ======================================================================== *
 * miniSIP - a small SIP message library (oSIP-like defect pattern)
 * ======================================================================== */

/* ---- structures --------------------------------------------------------- */

struct sip_param {
  char *name;
  char *value;
  struct sip_param *next;
};

struct sip_uri {
  char *scheme;
  char *user;
  char *host;
  int port;
  struct sip_param *params;
};

struct sip_via {
  char *protocol;
  char *host;
  int port;
  int ttl;
  struct sip_via *next;
};

struct sip_header {
  char *name;
  char *value;
  struct sip_header *next;
};

struct sip_message {
  int is_request;
  int status_code;
  char *method;
  struct sip_uri *req_uri;
  struct sip_header *headers;
  struct sip_via *vias;
  char *body;
  long body_len;
};

/* ---- string helpers (unguarded: crash on NULL / short buffers) ---------- */

long sip_strlen(char *s) {
  long n = 0;
  while (s[n] != 0)
    n = n + 1;
  return n;
}

int sip_strcmp(char *a, char *b) {
  long i = 0;
  while (a[i] != 0 && b[i] != 0) {
    if (a[i] != b[i])
      return a[i] - b[i];
    i = i + 1;
  }
  return a[i] - b[i];
}

void sip_strcpy(char *dst, char *src) {
  long i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
}

char *sip_strdup(char *s) {
  long n = sip_strlen(s);
  char *d = (char *)malloc(n + 1);
  if (d == NULL)
    return NULL;
  sip_strcpy(d, s);
  return d;
}

int sip_atoi(char *s) {
  int v = 0;
  long i = 0;
  int sign = 1;
  if (s[0] == '-') {
    sign = -1;
    i = 1;
  }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  return v * sign;
}

int sip_is_digit(int c) { return c >= '0' && c <= '9'; }
int sip_is_alpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int sip_is_token_char(int c) {
  return sip_is_digit(c) || sip_is_alpha(c) || c == '-' || c == '.' ||
         c == '_';
}

void sip_buffer_copy(char *dst, char *src, long n) {
  long i = 0;
  while (i < n) {
    dst[i] = src[i]; /* crashes when dst is NULL (failed allocation) */
    i = i + 1;
  }
}

/* ---- sip_param ----------------------------------------------------------- */

struct sip_param *sip_param_new(void) {
  struct sip_param *p = (struct sip_param *)malloc(sizeof(struct sip_param));
  if (p == NULL)
    return NULL;
  p->name = NULL;
  p->value = NULL;
  p->next = NULL;
  return p;
}

void sip_param_free(struct sip_param *p) { free(p); }

char *sip_param_get_name(struct sip_param *p) { return p->name; }
char *sip_param_get_value(struct sip_param *p) { return p->value; }
void sip_param_set_name(struct sip_param *p, char *n) { p->name = n; }
void sip_param_set_value(struct sip_param *p, char *v) { p->value = v; }

int sip_param_has_value(struct sip_param *p) {
  if (p == NULL)
    return 0;
  return p->value != NULL; /* consistently guarded */
}

int sip_param_matches(struct sip_param *p, char *name) {
  return sip_strcmp(p->name, name) == 0; /* two unchecked dereferences */
}

long sip_param_list_length(struct sip_param *p) {
  long n = 0;
  while (p != NULL) { /* guarded walk: safe */
    n = n + 1;
    p = p->next;
  }
  return n;
}

struct sip_param *sip_param_list_find(struct sip_param *p, char *name) {
  while (p != NULL) {
    if (sip_param_matches(p, name)) /* crashes via callee on NULL name */
      return p;
    p = p->next;
  }
  return NULL;
}

struct sip_param *sip_param_list_tail(struct sip_param *p) {
  while (p->next != NULL) /* unguarded head */
    p = p->next;
  return p;
}

void sip_param_list_append(struct sip_param *list, struct sip_param *p) {
  struct sip_param *tail = sip_param_list_tail(list);
  tail->next = p;
}

void sip_param_list_free(struct sip_param *p) {
  while (p != NULL) { /* guarded: safe */
    struct sip_param *next = p->next;
    free(p);
    p = next;
  }
}

int sip_param_list_position(struct sip_param *list, struct sip_param *p) {
  int i = 0;
  while (list != NULL) {
    if (list == p) /* pointer comparison: safe */
      return i;
    i = i + 1;
    list = list->next;
  }
  return -1;
}

/* ---- sip_uri -------------------------------------------------------------- */

struct sip_uri *sip_uri_new(void) {
  struct sip_uri *u = (struct sip_uri *)malloc(sizeof(struct sip_uri));
  if (u == NULL)
    return NULL;
  u->scheme = NULL;
  u->user = NULL;
  u->host = NULL;
  u->port = 0;
  u->params = NULL;
  return u;
}

void sip_uri_free(struct sip_uri *u) {
  if (u == NULL)
    return;
  sip_param_list_free(u->params);
  free(u);
}

char *sip_uri_get_scheme(struct sip_uri *u) { return u->scheme; }
char *sip_uri_get_user(struct sip_uri *u) { return u->user; }
char *sip_uri_get_host(struct sip_uri *u) { return u->host; }
int sip_uri_get_port(struct sip_uri *u) { return u->port; }
void sip_uri_set_scheme(struct sip_uri *u, char *s) { u->scheme = s; }
void sip_uri_set_user(struct sip_uri *u, char *s) { u->user = s; }
void sip_uri_set_host(struct sip_uri *u, char *s) { u->host = s; }
void sip_uri_set_port(struct sip_uri *u, int p) { u->port = p; }

int sip_uri_is_secure(struct sip_uri *u) {
  /* guarded pointer, then walks the scheme string: crashes on a short
     buffer even though the NULL check is present (oSIP's inconsistent
     pattern) */
  if (u == NULL)
    return 0;
  return sip_strcmp(u->scheme, "sips") == 0;
}

int sip_uri_has_user(struct sip_uri *u) {
  if (u == NULL)
    return 0;
  return u->user != NULL; /* consistently guarded */
}

int sip_uri_port_or_default(struct sip_uri *u) {
  if (u == NULL)
    return 5060;
  if (u->port == 0)
    return 5060;
  return u->port;
}

int sip_uri_equal(struct sip_uri *a, struct sip_uri *b) {
  if (a->port != b->port) /* unguarded */
    return 0;
  if (sip_strcmp(a->host, b->host) != 0)
    return 0;
  return 1;
}

struct sip_uri *sip_uri_clone(struct sip_uri *u) {
  struct sip_uri *c = sip_uri_new();
  if (c == NULL)
    return NULL;
  c->scheme = u->scheme; /* unguarded source */
  c->user = u->user;
  c->host = u->host;
  c->port = u->port;
  return c;
}

void sip_uri_add_param(struct sip_uri *u, struct sip_param *p) {
  if (u->params == NULL) { /* unguarded u */
    u->params = p;
    return;
  }
  sip_param_list_append(u->params, p);
}

struct sip_param *sip_uri_find_param(struct sip_uri *u, char *name) {
  return sip_param_list_find(u->params, name); /* unguarded u */
}

long sip_uri_param_count(struct sip_uri *u) {
  if (u == NULL)
    return 0;
  return sip_param_list_length(u->params); /* safe */
}

/* ---- sip_via -------------------------------------------------------------- */

struct sip_via *sip_via_new(void) {
  struct sip_via *v = (struct sip_via *)malloc(sizeof(struct sip_via));
  if (v == NULL)
    return NULL;
  v->protocol = NULL;
  v->host = NULL;
  v->port = 0;
  v->ttl = 0;
  v->next = NULL;
  return v;
}

void sip_via_free(struct sip_via *v) { free(v); }

char *sip_via_get_host(struct sip_via *v) { return v->host; }
int sip_via_get_port(struct sip_via *v) { return v->port; }
void sip_via_set_host(struct sip_via *v, char *h) { v->host = h; }
void sip_via_set_port(struct sip_via *v, int p) { v->port = p; }

int sip_via_get_ttl(struct sip_via *v) {
  if (v == NULL)
    return -1;
  return v->ttl; /* consistently guarded */
}

void sip_via_set_ttl(struct sip_via *v, int ttl) {
  if (v == NULL)
    return;
  if (ttl < 0)
    ttl = 0;
  if (ttl > 255)
    ttl = 255;
  v->ttl = ttl; /* consistently guarded */
}

long sip_via_chain_length(struct sip_via *v) {
  long n = 0;
  while (v != NULL) { /* safe */
    n = n + 1;
    v = v->next;
  }
  return n;
}

struct sip_via *sip_via_chain_last(struct sip_via *v) {
  while (v->next != NULL) /* unguarded */
    v = v->next;
  return v;
}

int sip_via_uses_udp(struct sip_via *v) {
  return sip_strcmp(v->protocol, "UDP") == 0; /* unguarded x2 */
}

int sip_via_port_valid(struct sip_via *v) {
  if (v == NULL)
    return 0;
  return v->port > 0 && v->port < 65536; /* safe */
}

int sip_via_avg_hop_budget(struct sip_via *v, int hops) {
  if (v == NULL)
    return 0;
  return v->ttl / hops; /* division by zero for hops == 0 */
}

/* ---- sip_header ------------------------------------------------------------ */

struct sip_header *sip_header_new(void) {
  struct sip_header *h =
      (struct sip_header *)malloc(sizeof(struct sip_header));
  if (h == NULL)
    return NULL;
  h->name = NULL;
  h->value = NULL;
  h->next = NULL;
  return h;
}

void sip_header_free(struct sip_header *h) { free(h); }

char *sip_header_get_name(struct sip_header *h) { return h->name; }
char *sip_header_get_value(struct sip_header *h) { return h->value; }
void sip_header_set_name(struct sip_header *h, char *n) { h->name = n; }
void sip_header_set_value(struct sip_header *h, char *v) { h->value = v; }

int sip_header_name_is(struct sip_header *h, char *name) {
  return sip_strcmp(h->name, name) == 0; /* unguarded */
}

long sip_header_count(struct sip_header *h) {
  long n = 0;
  while (h != NULL) { /* safe */
    n = n + 1;
    h = h->next;
  }
  return n;
}

struct sip_header *sip_header_find(struct sip_header *h, char *name) {
  while (h != NULL) {
    if (sip_header_name_is(h, name)) /* crashes via callee */
      return h;
    h = h->next;
  }
  return NULL;
}

struct sip_header *sip_header_nth(struct sip_header *h, int n) {
  int i = 0;
  while (h != NULL) { /* safe */
    if (i == n)
      return h;
    i = i + 1;
    h = h->next;
  }
  return NULL;
}

int sip_header_value_empty(struct sip_header *h) {
  if (h == NULL)
    return 1;
  if (h->value == NULL)
    return 1;
  return h->value[0] == 0; /* consistently guarded, touches only [0] */
}

void sip_header_chain_push(struct sip_header *list, struct sip_header *h) {
  while (list->next != NULL) /* unguarded */
    list = list->next;
  list->next = h;
}

/* ---- sip_message ------------------------------------------------------------ */

struct sip_message *sip_message_new(void) {
  struct sip_message *m =
      (struct sip_message *)malloc(sizeof(struct sip_message));
  if (m == NULL)
    return NULL;
  m->is_request = 0;
  m->status_code = 0;
  m->method = NULL;
  m->req_uri = NULL;
  m->headers = NULL;
  m->vias = NULL;
  m->body = NULL;
  m->body_len = 0;
  return m;
}

void sip_message_free(struct sip_message *m) {
  if (m == NULL)
    return;
  sip_uri_free(m->req_uri);
  free(m);
}

int sip_message_is_request(struct sip_message *m) { return m->is_request; }
int sip_message_get_status(struct sip_message *m) { return m->status_code; }
char *sip_message_get_method(struct sip_message *m) { return m->method; }

void sip_message_set_status(struct sip_message *m, int code) {
  if (m == NULL)
    return;
  if (code < 100 || code > 699)
    return;
  m->status_code = code; /* consistently guarded */
}

int sip_message_is_invite(struct sip_message *m) {
  return sip_strcmp(m->method, "INVITE") == 0; /* unguarded x2 */
}

int sip_message_is_response(struct sip_message *m) {
  if (m == NULL)
    return 0;
  return m->is_request == 0; /* safe */
}

struct sip_header *sip_message_get_header(struct sip_message *m,
                                          char *name) {
  return sip_header_find(m->headers, name); /* unguarded m */
}

void sip_message_add_header(struct sip_message *m, struct sip_header *h) {
  if (m->headers == NULL) { /* unguarded m */
    m->headers = h;
    return;
  }
  sip_header_chain_push(m->headers, h);
}

long sip_message_header_count(struct sip_message *m) {
  if (m == NULL)
    return 0;
  return sip_header_count(m->headers); /* safe */
}

struct sip_via *sip_message_top_via(struct sip_message *m) {
  return m->vias; /* unguarded */
}

void sip_message_push_via(struct sip_message *m, struct sip_via *v) {
  v->next = m->vias; /* unguarded both */
  m->vias = v;
}

long sip_message_via_count(struct sip_message *m) {
  if (m == NULL)
    return 0;
  return sip_via_chain_length(m->vias); /* safe */
}

int sip_message_has_body(struct sip_message *m) {
  if (m == NULL)
    return 0;
  return m->body != NULL && m->body_len > 0; /* safe */
}

long sip_message_content_length(struct sip_message *m) {
  return m->body_len; /* unguarded */
}

int sip_message_check_transaction(struct sip_message *m, int branch) {
  if (m->status_code == 0) /* unguarded */
    return 0;
  return (m->status_code + branch) % 100;
}

/* ---- request-line / token scanning over real buffers ---------------------- */

long sip_token_length(char *s, long limit) {
  long i = 0;
  if (s == NULL)
    return 0;
  while (i < limit && sip_is_token_char(s[i]))
    i = i + 1;
  return i;
}

int sip_method_code(char *s) {
  /* classify by first character; touches only s[0]/s[1]: crashes only on
     NULL */
  if (s[0] == 'I')
    return 1; /* INVITE */
  if (s[0] == 'A')
    return 2; /* ACK */
  if (s[0] == 'B')
    return 3; /* BYE */
  if (s[0] == 'C')
    return 4; /* CANCEL */
  if (s[0] == 'R')
    return 5; /* REGISTER */
  return 0;
}

int sip_status_class(int code) {
  if (code < 100 || code > 699)
    return 0;
  return code / 100; /* pure integer function: safe */
}

int sip_response_retryable(int code) {
  if (code == 408 || code == 480 || code == 503)
    return 1;
  return 0; /* safe */
}

int sip_cseq_compare(int a, int b) {
  if (a < b)
    return -1;
  if (a > b)
    return 1;
  return 0; /* safe */
}

unsigned sip_branch_hash(unsigned seed, int value) {
  unsigned h = seed;
  h = h * 31u + (unsigned)value;
  h = h ^ (h >> 7);
  return h; /* safe */
}

int sip_port_from_string(char *s) {
  int p;
  if (s == NULL)
    return -1;
  p = sip_atoi(s); /* NULL-guarded but walks the buffer: short-buffer OOB */
  if (p < 0 || p > 65535)
    return -1;
  return p;
}

/* ---- the parser path (the paper's oSIP attack, §4.3) ----------------------- */

/* Receive a message of `len` bytes. The original code copies the packet
   into freshly allocated memory without checking the allocation result —
   a message larger than the allocator can serve crashes the stack
   (remotely triggerable by size alone). */
int sip_receive(char *pkt, long len) {
  char *work;
  if (pkt == NULL)
    return -1;
  if (len <= 0)
    return -1;
  work = (char *)malloc(len + 1); /* BUG: result never checked */
  work[0] = 0;                    /* crash: NULL + 0 write when malloc failed */
  sip_buffer_copy(work, pkt, 1);  /* (copy of the first byte suffices here) */
  work[len] = 0;
  free(work);
  return 0;
}

/* The oSIP 2.2.0 fix: check the allocation. */
int sip_receive_fixed(char *pkt, long len) {
  char *work;
  if (pkt == NULL)
    return -1;
  if (len <= 0)
    return -1;
  work = (char *)malloc(len + 1);
  if (work == NULL)
    return -2; /* allocation failure reported, not dereferenced */
  work[0] = 0;
  sip_buffer_copy(work, pkt, 1);
  work[len] = 0;
  free(work);
  return 0;
}

/* A higher-level entry: classify a packet's first byte. */
int sip_packet_kind(char *pkt, long len) {
  if (len < 1)
    return 0;
  if (pkt[0] == 'S') /* unguarded pkt */
    return 2;        /* response: "SIP/2.0 ..." */
  if (sip_is_alpha(pkt[0]))
    return 1; /* request */
  return 0;
}

/* Session-level helpers ------------------------------------------------------ */

int sip_dialog_match(struct sip_message *a, struct sip_message *b) {
  if (a == NULL || b == NULL)
    return 0;
  if (a->status_code != b->status_code)
    return 0;
  return 1; /* safe */
}

int sip_auth_check(struct sip_message *m, int secret) {
  /* input filter followed by unguarded use: classic DART target */
  if (m == NULL)
    return 0;
  if (secret != 42424242)
    return 0;
  return sip_strcmp(m->method, "REGISTER") == 0; /* method unchecked */
}

long sip_body_checksum(struct sip_message *m) {
  long sum = 0;
  long i = 0;
  while (i < m->body_len) { /* unguarded m; body may be short: OOB */
    sum = sum + m->body[i];
    i = i + 1;
  }
  return sum;
}
)";
}
