//===- Workloads.h - MiniC programs for the paper's experiments -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The programs under test for §4 of the paper, as MiniC sources:
///
///  - the AC-controller (Fig. 6, experiment §4.1),
///  - a C implementation of the Needham-Schroeder public-key protocol with
///    a possibilistic or Dolev-Yao intruder model and optional Lowe fix
///    (experiments Fig. 9 / Fig. 10 / the Lowe-fix bug of §4.2),
///  - miniSIP, a SIP-message library reproducing oSIP 2.0.9's defect
///    pattern — inconsistent NULL checking across ~90 exported functions
///    and an unchecked large allocation in the parser (experiment §4.3).
///
//===----------------------------------------------------------------------===//

#ifndef DART_WORKLOADS_WORKLOADS_H
#define DART_WORKLOADS_WORKLOADS_H

#include <string>

namespace dart::workloads {

/// Fig. 6's AC-controller program, verbatim.
std::string acControllerSource();

/// How the Needham-Schroeder responder's second message authenticates the
/// responder (Lowe's fix, §4.2).
enum class LoweFix {
  None,       // original protocol: Lowe's attack exists
  Incomplete, // the fix as DART found it implemented: presence-checked
              // identity field, value never compared -> attack survives
  Full,       // correct fix: identity compared against the expected peer
};

struct NsConfig {
  /// true: inputs pass through a Dolev-Yao intruder filter (compose from
  /// known atoms or replay observed ciphertexts). false: possibilistic
  /// intruder (any tuple of ints may arrive).
  bool DolevYao = false;
  LoweFix Fix = LoweFix::None;
};

/// The Needham-Schroeder implementation. Toplevel: `ns_step(int key, int
/// d1, int d2, int d3)` — one incoming message per call; the security
/// assertion fires when the responder completes a session with the
/// initiator that the initiator never started (Lowe's attack observed).
std::string needhamSchroederSource(const NsConfig &Config);

/// miniSIP: the §4.3 oSIP substitute. ~90 exported functions over
/// sip_uri/sip_param/sip_header/sip_message structures.
std::string miniSipSource();

} // namespace dart::workloads

#endif // DART_WORKLOADS_WORKLOADS_H
