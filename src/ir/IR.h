//===- IR.h - The paper's RAM machine as an IR ------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DART's algorithms are defined on a RAM machine (paper §2.2): programs are
/// sequences of *assignment statements* `m <- e` and *conditional statements*
/// `if (e) then goto l'`, plus `abort` and `halt`, where expressions `e` are
/// side-effect free. This IR is that machine, extended with the function
/// calls the paper's implementation handles interprocedurally (§3.3):
///
///   Store / Copy        assignment statements
///   CondJump / Jump     conditional statements (two explicit targets)
///   Call / Ret          interprocedural tracing of symbolic expressions
///   Abort / Halt        program error / normal termination
///
/// Every IRExpr is pure; AST constructs with side effects (calls, `&&`,
/// `?:`, `++`, assignments in expressions) are flattened by src/ir/Lowering
/// into instruction sequences over temporary frame slots — establishing the
/// paper's "expressions have no side-effects" invariant.
///
//===----------------------------------------------------------------------===//

#ifndef DART_IR_IR_H
#define DART_IR_IR_H

#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dart {

/// The scalar value shape the RAM machine computes with: a 1/4/8-byte
/// integer or an 8-byte pointer. (The paper's machine uses 32-bit words;
/// we carry widths so MiniC's char/int/long all behave like C.)
struct ValType {
  uint8_t SizeBytes = 4;
  bool Signed = true;
  bool IsPointer = false;

  unsigned bits() const { return SizeBytes * 8; }

  static ValType int8() { return {1, true, false}; }
  static ValType int32() { return {4, true, false}; }
  static ValType uint32() { return {4, false, false}; }
  static ValType int64() { return {8, true, false}; }
  static ValType pointer() { return {8, false, true}; }

  friend bool operator==(const ValType &A, const ValType &B) {
    return A.SizeBytes == B.SizeBytes && A.Signed == B.Signed &&
           A.IsPointer == B.IsPointer;
  }

  std::string toString() const;

  /// Truncate/sign-extend a raw 64-bit value to this type's range, i.e. the
  /// value an object of this type holds after assignment.
  int64_t canonicalize(int64_t Raw) const {
    if (SizeBytes == 8)
      return Raw;
    uint64_t Mask = (uint64_t(1) << bits()) - 1;
    uint64_t V = static_cast<uint64_t>(Raw) & Mask;
    if (Signed && (V & (uint64_t(1) << (bits() - 1))))
      V |= ~Mask;
    return static_cast<int64_t>(V);
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class IRBinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
};

enum class IRUnOp { Neg, BitNot };

/// Comparison predicates; results are int 0/1.
enum class CmpPred { Eq, Ne, Lt, Le, Gt, Ge };

CmpPred negateCmpPred(CmpPred P);
const char *cmpPredSpelling(CmpPred P);
const char *irBinOpSpelling(IRBinOp Op);

class IRExpr;
using IRExprPtr = std::unique_ptr<IRExpr>;

class IRExpr {
public:
  enum class Kind { Const, GlobalAddr, FrameAddr, Load, Unary, Binary, Cmp,
                    Cast };

  Kind kind() const { return K; }
  ValType valType() const { return VT; }

  /// Structural clone (expressions are pure, so clones are equivalent).
  IRExprPtr clone() const;

  std::string toString() const;

  virtual ~IRExpr() = default;

protected:
  IRExpr(Kind K, ValType VT) : K(K), VT(VT) {}

private:
  const Kind K;
  ValType VT;
};

/// Integer or pointer constant.
class ConstExpr : public IRExpr {
public:
  ConstExpr(int64_t Value, ValType VT)
      : IRExpr(Kind::Const, VT), Value(VT.canonicalize(Value)) {}

  int64_t value() const { return Value; }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Const; }

private:
  int64_t Value;
};

/// Address of a module global (resolved to a concrete address at run time).
class GlobalAddrExpr : public IRExpr {
public:
  explicit GlobalAddrExpr(unsigned GlobalIndex)
      : IRExpr(Kind::GlobalAddr, ValType::pointer()),
        GlobalIndex(GlobalIndex) {}

  unsigned globalIndex() const { return GlobalIndex; }

  static bool classof(const IRExpr *E) {
    return E->kind() == Kind::GlobalAddr;
  }

private:
  unsigned GlobalIndex;
};

/// Address of a slot in the current function's frame.
class FrameAddrExpr : public IRExpr {
public:
  explicit FrameAddrExpr(unsigned SlotIndex)
      : IRExpr(Kind::FrameAddr, ValType::pointer()), SlotIndex(SlotIndex) {}

  unsigned slotIndex() const { return SlotIndex; }

  static bool classof(const IRExpr *E) {
    return E->kind() == Kind::FrameAddr;
  }

private:
  unsigned SlotIndex;
};

/// Scalar load from a computed address. This is where the symbolic memory
/// map S is consulted during concolic execution (paper Fig. 1, case `m`).
class LoadExpr : public IRExpr {
public:
  LoadExpr(IRExprPtr Address, ValType VT)
      : IRExpr(Kind::Load, VT), Address(std::move(Address)) {}

  const IRExpr *address() const { return Address.get(); }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Load; }

private:
  IRExprPtr Address;
};

class UnaryIRExpr : public IRExpr {
public:
  UnaryIRExpr(IRUnOp Op, IRExprPtr Operand, ValType VT)
      : IRExpr(Kind::Unary, VT), Op(Op), Operand(std::move(Operand)) {}

  IRUnOp op() const { return Op; }
  const IRExpr *operand() const { return Operand.get(); }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Unary; }

private:
  IRUnOp Op;
  IRExprPtr Operand;
};

class BinaryIRExpr : public IRExpr {
public:
  BinaryIRExpr(IRBinOp Op, IRExprPtr LHS, IRExprPtr RHS, ValType VT)
      : IRExpr(Kind::Binary, VT), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  IRBinOp op() const { return Op; }
  const IRExpr *lhs() const { return LHS.get(); }
  const IRExpr *rhs() const { return RHS.get(); }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Binary; }

private:
  IRBinOp Op;
  IRExprPtr LHS, RHS;
};

/// Comparison producing int 0/1. Kept first-class (not lowered to control
/// flow) because the symbolic evaluator turns it directly into a path
/// constraint when it reaches a conditional (paper §2.2's `=(e',e'')`).
class CmpExpr : public IRExpr {
public:
  CmpExpr(CmpPred Pred, IRExprPtr LHS, IRExprPtr RHS, ValType OperandVT)
      : IRExpr(Kind::Cmp, ValType::int32()), Pred(Pred), LHS(std::move(LHS)),
        RHS(std::move(RHS)), OperandVT(OperandVT) {}

  CmpPred pred() const { return Pred; }
  const IRExpr *lhs() const { return LHS.get(); }
  const IRExpr *rhs() const { return RHS.get(); }
  /// The common type the operands were compared at (signedness matters).
  ValType operandValType() const { return OperandVT; }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Cmp; }

private:
  CmpPred Pred;
  IRExprPtr LHS, RHS;
  ValType OperandVT;
};

/// Width/signedness conversion (including pointer<->integer reinterpret).
class CastIRExpr : public IRExpr {
public:
  CastIRExpr(IRExprPtr Operand, ValType To)
      : IRExpr(Kind::Cast, To), Operand(std::move(Operand)) {}

  const IRExpr *operand() const { return Operand.get(); }

  static bool classof(const IRExpr *E) { return E->kind() == Kind::Cast; }

private:
  IRExprPtr Operand;
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Why an Abort instruction exists (for error reporting).
enum class AbortKind { AbortCall, AssertFailure };

class Instr {
public:
  enum class Kind { Store, Copy, CondJump, Jump, Call, Ret, Abort, Halt };

  Kind kind() const { return K; }
  SourceLocation loc() const { return Loc; }

  std::string toString() const;

  virtual ~Instr() = default;

protected:
  Instr(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLocation Loc;
};

using InstrPtr = std::unique_ptr<Instr>;

/// `m <- e` for scalars.
class StoreInstr : public Instr {
public:
  StoreInstr(SourceLocation Loc, IRExprPtr Address, IRExprPtr Value)
      : Instr(Kind::Store, Loc), Address(std::move(Address)),
        Value(std::move(Value)) {}

  const IRExpr *address() const { return Address.get(); }
  const IRExpr *value() const { return Value.get(); }
  ValType valType() const { return Value->valType(); }

  static bool classof(const Instr *I) { return I->kind() == Kind::Store; }

private:
  IRExprPtr Address, Value;
};

/// Bytewise copy (struct assignment).
class CopyInstr : public Instr {
public:
  CopyInstr(SourceLocation Loc, IRExprPtr Dst, IRExprPtr Src,
            uint64_t NumBytes)
      : Instr(Kind::Copy, Loc), Dst(std::move(Dst)), Src(std::move(Src)),
        NumBytes(NumBytes) {}

  const IRExpr *dst() const { return Dst.get(); }
  const IRExpr *src() const { return Src.get(); }
  uint64_t numBytes() const { return NumBytes; }

  static bool classof(const Instr *I) { return I->kind() == Kind::Copy; }

private:
  IRExprPtr Dst, Src;
  uint64_t NumBytes;
};

/// Two-way conditional branch. `branch value` for the concolic stack is 1
/// when the condition evaluates nonzero (the TrueTarget is taken).
class CondJumpInstr : public Instr {
public:
  CondJumpInstr(SourceLocation Loc, IRExprPtr Cond, unsigned SiteId)
      : Instr(Kind::CondJump, Loc), Cond(std::move(Cond)), SiteId(SiteId) {}

  const IRExpr *cond() const { return Cond.get(); }
  unsigned trueTarget() const { return TrueTarget; }
  unsigned falseTarget() const { return FalseTarget; }
  void setTargets(unsigned T, unsigned F) {
    TrueTarget = T;
    FalseTarget = F;
  }
  /// Module-unique id of this branch site (for coverage accounting).
  unsigned siteId() const { return SiteId; }

  static bool classof(const Instr *I) { return I->kind() == Kind::CondJump; }

private:
  IRExprPtr Cond;
  unsigned TrueTarget = 0, FalseTarget = 0;
  unsigned SiteId;
};

class JumpInstr : public Instr {
public:
  explicit JumpInstr(SourceLocation Loc) : Instr(Kind::Jump, Loc) {}

  unsigned target() const { return Target; }
  void setTarget(unsigned T) { Target = T; }

  static bool classof(const Instr *I) { return I->kind() == Kind::Jump; }

private:
  unsigned Target = 0;
};

/// Function call. The callee is resolved by name at execution time with
/// this precedence: program function > native library function > external
/// (environment) function — mirroring the paper's three kinds of functions
/// (§3.1). Scalar return values are stored to DestSlot in the caller frame.
class CallInstr : public Instr {
public:
  CallInstr(SourceLocation Loc, std::string Callee,
            std::optional<unsigned> DestSlot, ValType RetVT)
      : Instr(Kind::Call, Loc), Callee(std::move(Callee)), DestSlot(DestSlot),
        RetVT(RetVT) {}

  const std::string &callee() const { return Callee; }
  void addArg(IRExprPtr Arg) { Args.push_back(std::move(Arg)); }
  const std::vector<IRExprPtr> &args() const { return Args; }
  std::optional<unsigned> destSlot() const { return DestSlot; }
  ValType retValType() const { return RetVT; }

  static bool classof(const Instr *I) { return I->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<IRExprPtr> Args;
  std::optional<unsigned> DestSlot;
  ValType RetVT;
};

class RetInstr : public Instr {
public:
  RetInstr(SourceLocation Loc, IRExprPtr Value)
      : Instr(Kind::Ret, Loc), Value(std::move(Value)) {}

  const IRExpr *value() const { return Value.get(); } // may be null (void)

  static bool classof(const Instr *I) { return I->kind() == Kind::Ret; }

private:
  IRExprPtr Value;
};

class AbortInstr : public Instr {
public:
  AbortInstr(SourceLocation Loc, AbortKind Why)
      : Instr(Kind::Abort, Loc), Why(Why) {}

  AbortKind why() const { return Why; }

  static bool classof(const Instr *I) { return I->kind() == Kind::Abort; }

private:
  AbortKind Why;
};

class HaltInstr : public Instr {
public:
  explicit HaltInstr(SourceLocation Loc) : Instr(Kind::Halt, Loc) {}
  static bool classof(const Instr *I) { return I->kind() == Kind::Halt; }
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// One frame slot: a named local/parameter/temporary.
struct FrameSlot {
  std::string Name; // empty for temporaries
  uint64_t SizeBytes = 0;
  unsigned Align = 1;
};

/// A lowered function body.
struct IRFunction {
  std::string Name;
  unsigned NumParams = 0; // params occupy slots [0, NumParams)
  std::vector<ValType> ParamVTs;
  ValType RetVT = ValType::int32();
  bool ReturnsVoid = false;
  std::vector<FrameSlot> Slots;
  std::vector<InstrPtr> Instrs;

  std::string toString() const;
};

/// One module global: name, size, optional constant initial image.
struct IRGlobal {
  std::string Name;
  uint64_t SizeBytes = 0;
  unsigned Align = 1;
  std::vector<uint8_t> Init; // empty = zero-initialized
  bool ReadOnly = false;     // string literals
  bool IsExternInput = false; // `extern` variable: a DART input (§3.1)
};

/// A lowered program.
class IRModule {
public:
  unsigned addGlobal(IRGlobal G) {
    Globals.push_back(std::move(G));
    return static_cast<unsigned>(Globals.size() - 1);
  }
  const std::vector<IRGlobal> &globals() const { return Globals; }

  IRFunction *addFunction(std::unique_ptr<IRFunction> F) {
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }
  const std::vector<std::unique_ptr<IRFunction>> &functions() const {
    return Functions;
  }
  const IRFunction *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  unsigned numBranchSites() const { return NumBranchSites; }
  unsigned allocateBranchSite() { return NumBranchSites++; }

  std::string toString() const;

private:
  std::vector<IRGlobal> Globals;
  std::vector<std::unique_ptr<IRFunction>> Functions;
  unsigned NumBranchSites = 0;
};

} // namespace dart

#endif // DART_IR_IR_H
