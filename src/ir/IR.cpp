//===- IR.cpp - RAM machine IR utilities ----------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

using namespace dart;

CmpPred dart::negateCmpPred(CmpPred P) {
  switch (P) {
  case CmpPred::Eq:
    return CmpPred::Ne;
  case CmpPred::Ne:
    return CmpPred::Eq;
  case CmpPred::Lt:
    return CmpPred::Ge;
  case CmpPred::Le:
    return CmpPred::Gt;
  case CmpPred::Gt:
    return CmpPred::Le;
  case CmpPred::Ge:
    return CmpPred::Lt;
  }
  return CmpPred::Eq;
}

const char *dart::cmpPredSpelling(CmpPred P) {
  switch (P) {
  case CmpPred::Eq:
    return "==";
  case CmpPred::Ne:
    return "!=";
  case CmpPred::Lt:
    return "<";
  case CmpPred::Le:
    return "<=";
  case CmpPred::Gt:
    return ">";
  case CmpPred::Ge:
    return ">=";
  }
  return "?";
}

const char *dart::irBinOpSpelling(IRBinOp Op) {
  switch (Op) {
  case IRBinOp::Add:
    return "+";
  case IRBinOp::Sub:
    return "-";
  case IRBinOp::Mul:
    return "*";
  case IRBinOp::Div:
    return "/";
  case IRBinOp::Rem:
    return "%";
  case IRBinOp::Shl:
    return "<<";
  case IRBinOp::Shr:
    return ">>";
  case IRBinOp::And:
    return "&";
  case IRBinOp::Or:
    return "|";
  case IRBinOp::Xor:
    return "^";
  }
  return "?";
}

std::string ValType::toString() const {
  if (IsPointer)
    return "ptr";
  return (Signed ? "i" : "u") + std::to_string(bits());
}

IRExprPtr IRExpr::clone() const {
  switch (K) {
  case Kind::Const: {
    const auto *C = cast<ConstExpr>(this);
    return std::make_unique<ConstExpr>(C->value(), C->valType());
  }
  case Kind::GlobalAddr:
    return std::make_unique<GlobalAddrExpr>(
        cast<GlobalAddrExpr>(this)->globalIndex());
  case Kind::FrameAddr:
    return std::make_unique<FrameAddrExpr>(
        cast<FrameAddrExpr>(this)->slotIndex());
  case Kind::Load: {
    const auto *L = cast<LoadExpr>(this);
    return std::make_unique<LoadExpr>(L->address()->clone(), L->valType());
  }
  case Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(this);
    return std::make_unique<UnaryIRExpr>(U->op(), U->operand()->clone(),
                                         U->valType());
  }
  case Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(this);
    return std::make_unique<BinaryIRExpr>(B->op(), B->lhs()->clone(),
                                          B->rhs()->clone(), B->valType());
  }
  case Kind::Cmp: {
    const auto *C = cast<CmpExpr>(this);
    return std::make_unique<CmpExpr>(C->pred(), C->lhs()->clone(),
                                     C->rhs()->clone(), C->operandValType());
  }
  case Kind::Cast: {
    const auto *C = cast<CastIRExpr>(this);
    return std::make_unique<CastIRExpr>(C->operand()->clone(), C->valType());
  }
  }
  return nullptr;
}

std::string IRExpr::toString() const {
  switch (K) {
  case Kind::Const:
    return std::to_string(cast<ConstExpr>(this)->value()) + ":" +
           valType().toString();
  case Kind::GlobalAddr:
    return "&g" + std::to_string(cast<GlobalAddrExpr>(this)->globalIndex());
  case Kind::FrameAddr:
    return "&s" + std::to_string(cast<FrameAddrExpr>(this)->slotIndex());
  case Kind::Load:
    return "load." + valType().toString() + "(" +
           cast<LoadExpr>(this)->address()->toString() + ")";
  case Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(this);
    return std::string(U->op() == IRUnOp::Neg ? "-" : "~") + "(" +
           U->operand()->toString() + ")";
  }
  case Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(this);
    return "(" + B->lhs()->toString() + " " + irBinOpSpelling(B->op()) + " " +
           B->rhs()->toString() + ")";
  }
  case Kind::Cmp: {
    const auto *C = cast<CmpExpr>(this);
    return "(" + C->lhs()->toString() + " " + cmpPredSpelling(C->pred()) +
           " " + C->rhs()->toString() + ")";
  }
  case Kind::Cast:
    return "cast." + valType().toString() + "(" +
           cast<CastIRExpr>(this)->operand()->toString() + ")";
  }
  return "<expr>";
}

std::string Instr::toString() const {
  switch (K) {
  case Kind::Store: {
    const auto *S = cast<StoreInstr>(this);
    return "store." + S->valType().toString() + " " +
           S->address()->toString() + " <- " + S->value()->toString();
  }
  case Kind::Copy: {
    const auto *C = cast<CopyInstr>(this);
    return "copy " + C->dst()->toString() + " <- " + C->src()->toString() +
           " [" + std::to_string(C->numBytes()) + " bytes]";
  }
  case Kind::CondJump: {
    const auto *J = cast<CondJumpInstr>(this);
    return "if " + J->cond()->toString() + " goto " +
           std::to_string(J->trueTarget()) + " else " +
           std::to_string(J->falseTarget()) + "   ; site " +
           std::to_string(J->siteId());
  }
  case Kind::Jump:
    return "goto " + std::to_string(cast<JumpInstr>(this)->target());
  case Kind::Call: {
    const auto *C = cast<CallInstr>(this);
    std::string Out;
    if (C->destSlot())
      Out += "s" + std::to_string(*C->destSlot()) + " <- ";
    Out += "call " + C->callee() + "(";
    bool First = true;
    for (const auto &A : C->args()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += A->toString();
    }
    return Out + ")";
  }
  case Kind::Ret: {
    const auto *R = cast<RetInstr>(this);
    return R->value() ? "ret " + R->value()->toString() : "ret";
  }
  case Kind::Abort:
    return cast<AbortInstr>(this)->why() == AbortKind::AssertFailure
               ? "abort (assert)"
               : "abort";
  case Kind::Halt:
    return "halt";
  }
  return "<instr>";
}

std::string IRFunction::toString() const {
  std::string Out = "func " + Name + " (params " +
                    std::to_string(NumParams) + ", slots " +
                    std::to_string(Slots.size()) + ")\n";
  for (size_t I = 0; I < Instrs.size(); ++I)
    Out += "  " + std::to_string(I) + ": " + Instrs[I]->toString() + "\n";
  return Out;
}

std::string IRModule::toString() const {
  std::string Out;
  for (size_t I = 0; I < Globals.size(); ++I) {
    const IRGlobal &G = Globals[I];
    Out += "global g" + std::to_string(I) + " \"" + G.Name + "\" [" +
           std::to_string(G.SizeBytes) + " bytes]";
    if (G.IsExternInput)
      Out += " extern-input";
    if (G.ReadOnly)
      Out += " ro";
    Out += "\n";
  }
  for (const auto &F : Functions)
    Out += F->toString();
  return Out;
}
