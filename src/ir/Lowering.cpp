//===- Lowering.cpp - AST to RAM-machine lowering --------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include <cassert>

using namespace dart;

ValType dart::valTypeFor(const Type *Ty) {
  switch (Ty->kind()) {
  case Type::Kind::Char:
    return ValType::int8();
  case Type::Kind::Int:
    return ValType::int32();
  case Type::Kind::Unsigned:
    return ValType::uint32();
  case Type::Kind::Long:
    return ValType::int64();
  case Type::Kind::Pointer:
    return ValType::pointer();
  default:
    assert(false && "no scalar machine type for aggregate/void type");
    return ValType::int32();
  }
}

namespace {

IRExprPtr constInt(int64_t V, ValType VT) {
  return std::make_unique<ConstExpr>(V, VT);
}

/// Lowers one function; owns label bookkeeping and temp allocation.
class FunctionLowering {
public:
  FunctionLowering(IRModule &M, IRFunction &F,
                   std::map<const VarDecl *, unsigned> &GlobalIndexOf,
                   std::map<std::string, unsigned> &StringGlobals,
                   DiagnosticsEngine &Diags)
      : M(M), F(F), GlobalIndexOf(GlobalIndexOf),
        StringGlobals(StringGlobals), Diags(Diags) {}

  void lower(const FunctionDecl &Fn);

private:
  // --- labels -----------------------------------------------------------
  unsigned newLabel() {
    LabelPos.push_back(UINT32_MAX);
    return static_cast<unsigned>(LabelPos.size() - 1);
  }
  void bind(unsigned Label) {
    assert(LabelPos[Label] == UINT32_MAX && "label bound twice");
    LabelPos[Label] = static_cast<unsigned>(F.Instrs.size());
  }
  void emitJump(SourceLocation Loc, unsigned Label) {
    auto J = std::make_unique<JumpInstr>(Loc);
    J->setTarget(Label); // label id, fixed up in finalize()
    F.Instrs.push_back(std::move(J));
  }
  void emitCondJump(SourceLocation Loc, IRExprPtr Cond, unsigned TrueLabel,
                    unsigned FalseLabel) {
    auto J = std::make_unique<CondJumpInstr>(Loc, std::move(Cond),
                                             M.allocateBranchSite());
    J->setTargets(TrueLabel, FalseLabel);
    F.Instrs.push_back(std::move(J));
  }
  void finalize();

  // --- slots ------------------------------------------------------------
  unsigned slotFor(const VarDecl *V) {
    auto It = SlotOf.find(V);
    if (It != SlotOf.end())
      return It->second;
    FrameSlot Slot;
    Slot.Name = V->name();
    Slot.SizeBytes = V->type()->size();
    Slot.Align = V->type()->align();
    F.Slots.push_back(Slot);
    unsigned Index = static_cast<unsigned>(F.Slots.size() - 1);
    SlotOf[V] = Index;
    return Index;
  }
  unsigned newTemp(ValType VT) {
    FrameSlot Slot;
    Slot.SizeBytes = VT.SizeBytes;
    Slot.Align = VT.SizeBytes;
    F.Slots.push_back(Slot);
    return static_cast<unsigned>(F.Slots.size() - 1);
  }
  IRExprPtr frameAddr(unsigned Slot) {
    return std::make_unique<FrameAddrExpr>(Slot);
  }

  void emitStore(SourceLocation Loc, IRExprPtr Addr, IRExprPtr Value) {
    F.Instrs.push_back(
        std::make_unique<StoreInstr>(Loc, std::move(Addr), std::move(Value)));
  }

  // --- string literals ----------------------------------------------------
  unsigned internString(const std::string &Bytes) {
    auto It = StringGlobals.find(Bytes);
    if (It != StringGlobals.end())
      return It->second;
    IRGlobal G;
    G.Name = "__str." + std::to_string(StringGlobals.size());
    G.SizeBytes = Bytes.size() + 1;
    G.Align = 1;
    G.Init.assign(Bytes.begin(), Bytes.end());
    G.Init.push_back(0);
    G.ReadOnly = true;
    unsigned Index = M.addGlobal(std::move(G));
    StringGlobals[Bytes] = Index;
    return Index;
  }

  // --- expression lowering ------------------------------------------------
  IRExprPtr lowerValue(const Expr *E);
  IRExprPtr lowerAddress(const Expr *E);
  void lowerForEffect(const Expr *E);
  void lowerCondBranch(const Expr *E, unsigned TrueLabel,
                       unsigned FalseLabel);
  /// Lowers an assignment; returns the (pure) target address for use by
  /// value-context callers.
  IRExprPtr lowerAssignment(const AssignExpr *A);
  IRExprPtr lowerIncDec(const UnaryExpr *U);
  IRExprPtr lowerCall(const CallExpr *C, bool WantValue);
  /// Materializes a 0/1 temp from control flow (&&, ||, ?: lowering).
  IRExprPtr lowerToBoolTemp(const Expr *E);

  /// Cast helper between machine types.
  IRExprPtr castTo(IRExprPtr V, ValType To) {
    if (V->valType() == To)
      return V;
    return std::make_unique<CastIRExpr>(std::move(V), To);
  }

  /// The element size a pointer of AST type \p PtrTy steps by.
  static uint64_t pointeeSize(const Type *PtrTy) {
    const auto *P = cast<PointerType>(PtrTy);
    // void* arithmetic steps by one byte, like GCC's extension.
    return P->pointee()->isVoid() ? 1 : P->pointee()->size();
  }

  IRModule &M;
  IRFunction &F;
  std::map<const VarDecl *, unsigned> &GlobalIndexOf;
  std::map<std::string, unsigned> &StringGlobals;
  DiagnosticsEngine &Diags;

  std::map<const VarDecl *, unsigned> SlotOf;
  std::vector<unsigned> LabelPos;
  std::vector<unsigned> BreakLabels, ContinueLabels;

  void lowerStmt(const Stmt *S);
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

IRExprPtr FunctionLowering::lowerValue(const Expr *E) {
  const Type *Ty = E->type();
  switch (E->kind()) {
  case Expr::Kind::IntLiteral: {
    const auto *L = cast<IntLiteralExpr>(E);
    ValType VT = L->isNullLiteral() ? ValType::pointer() : valTypeFor(Ty);
    return constInt(L->value(), VT);
  }
  case Expr::Kind::StringLiteral: {
    unsigned Index = internString(cast<StringLiteralExpr>(E)->bytes());
    return std::make_unique<GlobalAddrExpr>(Index);
  }
  case Expr::Kind::VarRef: {
    if (Ty->isArray())
      return lowerAddress(E); // arrays evaluate to their address
    assert(Ty->isScalar() && "struct rvalues are handled by Copy contexts");
    return std::make_unique<LoadExpr>(lowerAddress(E), valTypeFor(Ty));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::Neg:
      return std::make_unique<UnaryIRExpr>(
          IRUnOp::Neg, lowerValue(U->operand()), valTypeFor(Ty));
    case UnaryOp::BitNot:
      return std::make_unique<UnaryIRExpr>(
          IRUnOp::BitNot, lowerValue(U->operand()), valTypeFor(Ty));
    case UnaryOp::LogNot: {
      IRExprPtr Operand = lowerValue(U->operand());
      ValType OpVT = Operand->valType();
      return std::make_unique<CmpExpr>(CmpPred::Eq, std::move(Operand),
                                       constInt(0, OpVT), OpVT);
    }
    case UnaryOp::Deref:
      if (Ty->isArray() || Ty->isStruct())
        return lowerValue(U->operand()); // address-preserving
      return std::make_unique<LoadExpr>(lowerValue(U->operand()),
                                        valTypeFor(Ty));
    case UnaryOp::AddrOf:
      return lowerAddress(U->operand());
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      return lowerIncDec(U);
    }
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::LogAnd || B->op() == BinaryOp::LogOr)
      return lowerToBoolTemp(E);
    if (isComparisonOp(B->op())) {
      IRExprPtr L = lowerValue(B->lhs());
      IRExprPtr R = lowerValue(B->rhs());
      ValType OpVT = L->valType();
      CmpPred Pred;
      switch (B->op()) {
      case BinaryOp::Eq:
        Pred = CmpPred::Eq;
        break;
      case BinaryOp::Ne:
        Pred = CmpPred::Ne;
        break;
      case BinaryOp::Lt:
        Pred = CmpPred::Lt;
        break;
      case BinaryOp::Le:
        Pred = CmpPred::Le;
        break;
      case BinaryOp::Gt:
        Pred = CmpPred::Gt;
        break;
      default:
        Pred = CmpPred::Ge;
        break;
      }
      return std::make_unique<CmpExpr>(Pred, std::move(L), std::move(R),
                                       OpVT);
    }

    const Type *LTy = B->lhs()->type();
    const Type *RTy = B->rhs()->type();
    // Pointer arithmetic: scale the integer operand by the pointee size.
    if (B->op() == BinaryOp::Add || B->op() == BinaryOp::Sub) {
      if (LTy->isPointer() && RTy->isInteger()) {
        IRExprPtr Offset = std::make_unique<BinaryIRExpr>(
            IRBinOp::Mul, castTo(lowerValue(B->rhs()), ValType::int64()),
            constInt(static_cast<int64_t>(pointeeSize(LTy)),
                     ValType::int64()),
            ValType::int64());
        return std::make_unique<BinaryIRExpr>(
            B->op() == BinaryOp::Add ? IRBinOp::Add : IRBinOp::Sub,
            lowerValue(B->lhs()), std::move(Offset), ValType::pointer());
      }
      if (B->op() == BinaryOp::Add && LTy->isInteger() && RTy->isPointer()) {
        IRExprPtr Offset = std::make_unique<BinaryIRExpr>(
            IRBinOp::Mul, castTo(lowerValue(B->lhs()), ValType::int64()),
            constInt(static_cast<int64_t>(pointeeSize(RTy)),
                     ValType::int64()),
            ValType::int64());
        return std::make_unique<BinaryIRExpr>(IRBinOp::Add,
                                              lowerValue(B->rhs()),
                                              std::move(Offset),
                                              ValType::pointer());
      }
      if (B->op() == BinaryOp::Sub && LTy->isPointer() && RTy->isPointer()) {
        IRExprPtr Diff = std::make_unique<BinaryIRExpr>(
            IRBinOp::Sub, castTo(lowerValue(B->lhs()), ValType::int64()),
            castTo(lowerValue(B->rhs()), ValType::int64()),
            ValType::int64());
        return std::make_unique<BinaryIRExpr>(
            IRBinOp::Div, std::move(Diff),
            constInt(static_cast<int64_t>(pointeeSize(LTy)),
                     ValType::int64()),
            ValType::int64());
      }
    }

    IRBinOp Op;
    switch (B->op()) {
    case BinaryOp::Add:
      Op = IRBinOp::Add;
      break;
    case BinaryOp::Sub:
      Op = IRBinOp::Sub;
      break;
    case BinaryOp::Mul:
      Op = IRBinOp::Mul;
      break;
    case BinaryOp::Div:
      Op = IRBinOp::Div;
      break;
    case BinaryOp::Rem:
      Op = IRBinOp::Rem;
      break;
    case BinaryOp::Shl:
      Op = IRBinOp::Shl;
      break;
    case BinaryOp::Shr:
      Op = IRBinOp::Shr;
      break;
    case BinaryOp::BitAnd:
      Op = IRBinOp::And;
      break;
    case BinaryOp::BitOr:
      Op = IRBinOp::Or;
      break;
    case BinaryOp::BitXor:
      Op = IRBinOp::Xor;
      break;
    default:
      assert(false && "handled above");
      Op = IRBinOp::Add;
    }
    return std::make_unique<BinaryIRExpr>(Op, lowerValue(B->lhs()),
                                          lowerValue(B->rhs()),
                                          valTypeFor(Ty));
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    IRExprPtr Addr = lowerAssignment(A);
    if (Ty->isStruct())
      return Addr;
    return std::make_unique<LoadExpr>(std::move(Addr), valTypeFor(Ty));
  }
  case Expr::Kind::Call:
    return lowerCall(cast<CallExpr>(E), /*WantValue=*/true);
  case Expr::Kind::Index:
  case Expr::Kind::Member: {
    if (Ty->isArray() || Ty->isStruct())
      return lowerAddress(E);
    return std::make_unique<LoadExpr>(lowerAddress(E), valTypeFor(Ty));
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(E);
    const Type *FromTy = C->operand()->type();
    if (FromTy->isArray())
      return lowerAddress(C->operand()); // array-to-pointer decay
    if (Ty->isVoid()) {
      lowerForEffect(C->operand());
      return constInt(0, ValType::int32());
    }
    return castTo(lowerValue(C->operand()), valTypeFor(Ty));
  }
  case Expr::Kind::SizeofType:
    return constInt(cast<SizeofTypeExpr>(E)->queriedType()->size(),
                    ValType::int64());
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    ValType VT = valTypeFor(Ty);
    unsigned Temp = newTemp(VT);
    unsigned ThenL = newLabel(), ElseL = newLabel(), EndL = newLabel();
    lowerCondBranch(C->cond(), ThenL, ElseL);
    bind(ThenL);
    emitStore(E->loc(), frameAddr(Temp),
              castTo(lowerValue(C->thenExpr()), VT));
    emitJump(E->loc(), EndL);
    bind(ElseL);
    emitStore(E->loc(), frameAddr(Temp),
              castTo(lowerValue(C->elseExpr()), VT));
    bind(EndL);
    return std::make_unique<LoadExpr>(frameAddr(Temp), VT);
  }
  }
  assert(false && "unhandled expression kind in lowerValue");
  return constInt(0, ValType::int32());
}

IRExprPtr FunctionLowering::lowerAddress(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::VarRef: {
    const VarDecl *V = cast<VarRefExpr>(E)->decl();
    assert(V && "unresolved variable reference survived sema");
    if (V->storage() == VarDecl::Storage::Global) {
      auto It = GlobalIndexOf.find(V);
      assert(It != GlobalIndexOf.end() && "global not lowered");
      return std::make_unique<GlobalAddrExpr>(It->second);
    }
    return frameAddr(slotFor(V));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Deref && "not an lvalue unary expression");
    return lowerValue(U->operand());
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = I->base()->type();
    IRExprPtr Base;
    uint64_t ElemSize;
    if (const auto *A = dyn_cast<ArrayType>(BaseTy)) {
      Base = lowerAddress(I->base());
      ElemSize = A->element()->size();
    } else {
      Base = lowerValue(I->base());
      ElemSize = pointeeSize(BaseTy);
    }
    IRExprPtr Offset = std::make_unique<BinaryIRExpr>(
        IRBinOp::Mul, castTo(lowerValue(I->index()), ValType::int64()),
        constInt(static_cast<int64_t>(ElemSize), ValType::int64()),
        ValType::int64());
    return std::make_unique<BinaryIRExpr>(IRBinOp::Add, std::move(Base),
                                          std::move(Offset),
                                          ValType::pointer());
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    IRExprPtr Base = M->isArrow() ? lowerValue(M->base())
                                  : lowerAddress(M->base());
    unsigned Offset = M->field()->offset();
    if (Offset == 0)
      return Base;
    return std::make_unique<BinaryIRExpr>(
        IRBinOp::Add, std::move(Base),
        constInt(Offset, ValType::int64()), ValType::pointer());
  }
  case Expr::Kind::Assign: {
    // (a = b) as lvalue target of struct copy contexts.
    return lowerAssignment(cast<AssignExpr>(E));
  }
  default:
    assert(false && "expression is not an lvalue");
    return constInt(0, ValType::pointer());
  }
}

IRExprPtr FunctionLowering::lowerAssignment(const AssignExpr *A) {
  const Type *TargetTy = A->target()->type();
  IRExprPtr Addr = lowerAddress(A->target());

  if (TargetTy->isStruct()) {
    IRExprPtr Src = lowerAddress(A->value());
    F.Instrs.push_back(std::make_unique<CopyInstr>(
        A->loc(), Addr->clone(), std::move(Src), TargetTy->size()));
    return Addr;
  }

  ValType TargetVT = valTypeFor(TargetTy);
  IRExprPtr Value;
  if (!A->isCompound()) {
    Value = castTo(lowerValue(A->value()), TargetVT);
  } else {
    IRExprPtr Current =
        std::make_unique<LoadExpr>(Addr->clone(), TargetVT);
    IRExprPtr RHS = lowerValue(A->value());
    if (TargetTy->isPointer()) {
      // p += n  /  p -= n  with pointee scaling.
      IRExprPtr Offset = std::make_unique<BinaryIRExpr>(
          IRBinOp::Mul, castTo(std::move(RHS), ValType::int64()),
          constInt(static_cast<int64_t>(pointeeSize(TargetTy)),
                   ValType::int64()),
          ValType::int64());
      Value = std::make_unique<BinaryIRExpr>(
          A->compoundOp() == BinaryOp::Add ? IRBinOp::Add : IRBinOp::Sub,
          std::move(Current), std::move(Offset), ValType::pointer());
    } else {
      // Compute in the wider of the two operand types, then narrow back.
      ValType RHSVT = RHS->valType();
      ValType WorkVT = TargetVT;
      if (RHSVT.SizeBytes > WorkVT.SizeBytes)
        WorkVT = RHSVT;
      else if (RHSVT.SizeBytes == WorkVT.SizeBytes && !RHSVT.Signed)
        WorkVT = RHSVT;
      IRBinOp Op;
      switch (A->compoundOp()) {
      case BinaryOp::Add:
        Op = IRBinOp::Add;
        break;
      case BinaryOp::Sub:
        Op = IRBinOp::Sub;
        break;
      case BinaryOp::Mul:
        Op = IRBinOp::Mul;
        break;
      case BinaryOp::Div:
        Op = IRBinOp::Div;
        break;
      case BinaryOp::Rem:
        Op = IRBinOp::Rem;
        break;
      case BinaryOp::Shl:
        Op = IRBinOp::Shl;
        break;
      case BinaryOp::Shr:
        Op = IRBinOp::Shr;
        break;
      case BinaryOp::BitAnd:
        Op = IRBinOp::And;
        break;
      case BinaryOp::BitOr:
        Op = IRBinOp::Or;
        break;
      case BinaryOp::BitXor:
        Op = IRBinOp::Xor;
        break;
      default:
        assert(false && "not a compound-assignable operator");
        Op = IRBinOp::Add;
      }
      Value = castTo(std::make_unique<BinaryIRExpr>(
                         Op, castTo(std::move(Current), WorkVT),
                         castTo(std::move(RHS), WorkVT), WorkVT),
                     TargetVT);
    }
  }
  emitStore(A->loc(), Addr->clone(), std::move(Value));
  return Addr;
}

IRExprPtr FunctionLowering::lowerIncDec(const UnaryExpr *U) {
  const Type *Ty = U->operand()->type();
  ValType VT = valTypeFor(Ty);
  IRExprPtr Addr = lowerAddress(U->operand());
  bool IsInc = U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PostInc;
  bool IsPost = U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec;
  int64_t Step =
      Ty->isPointer() ? static_cast<int64_t>(pointeeSize(Ty)) : 1;

  std::optional<unsigned> SavedTemp;
  if (IsPost) {
    SavedTemp = newTemp(VT);
    emitStore(U->loc(), frameAddr(*SavedTemp),
              std::make_unique<LoadExpr>(Addr->clone(), VT));
  }
  IRExprPtr NewValue = std::make_unique<BinaryIRExpr>(
      IsInc ? IRBinOp::Add : IRBinOp::Sub,
      std::make_unique<LoadExpr>(Addr->clone(), VT), constInt(Step, VT), VT);
  emitStore(U->loc(), Addr->clone(), std::move(NewValue));
  if (IsPost)
    return std::make_unique<LoadExpr>(frameAddr(*SavedTemp), VT);
  return std::make_unique<LoadExpr>(std::move(Addr), VT);
}

IRExprPtr FunctionLowering::lowerCall(const CallExpr *C, bool WantValue) {
  const std::string &Name = C->callee();
  SourceLocation Loc = C->loc();

  // Control-flow builtins.
  if (Name == "abort") {
    F.Instrs.push_back(
        std::make_unique<AbortInstr>(Loc, AbortKind::AbortCall));
    return constInt(0, ValType::int32());
  }
  if (Name == "assert") {
    // assert(e): `if (!e) abort()` — an assertion violation triggers an
    // abort (paper footnote 8). The condition is a regular branch site.
    unsigned OkL = newLabel(), FailL = newLabel();
    assert(C->args().size() == 1 && "assert takes one argument");
    lowerCondBranch(C->args()[0].get(), OkL, FailL);
    bind(FailL);
    F.Instrs.push_back(
        std::make_unique<AbortInstr>(Loc, AbortKind::AssertFailure));
    bind(OkL);
    return constInt(0, ValType::int32());
  }
  if (Name == "exit") {
    if (!C->args().empty())
      lowerForEffect(C->args()[0].get());
    F.Instrs.push_back(std::make_unique<HaltInstr>(Loc));
    return constInt(0, ValType::int32());
  }

  const FunctionDecl *Callee = C->calleeDecl();
  const Type *RetTy = Callee ? Callee->returnType() : C->type();
  bool IsVoid = RetTy->isVoid();
  if (!IsVoid && !RetTy->isScalar()) {
    Diags.error(Loc, "functions returning aggregates are not supported");
    return constInt(0, ValType::int32());
  }
  ValType RetVT = IsVoid ? ValType::int32() : valTypeFor(RetTy);
  std::optional<unsigned> Dest;
  if (WantValue && !IsVoid)
    Dest = newTemp(RetVT);

  auto Call = std::make_unique<CallInstr>(Loc, Name, Dest, RetVT);
  for (const auto &Arg : C->args()) {
    const Type *ArgTy = Arg->type();
    if (ArgTy->isStruct()) {
      Diags.error(Arg->loc(),
                  "passing structs by value is not supported; pass a "
                  "pointer");
      continue;
    }
    Call->addArg(lowerValue(Arg.get()));
  }
  F.Instrs.push_back(std::move(Call));
  if (Dest)
    return std::make_unique<LoadExpr>(frameAddr(*Dest), RetVT);
  return constInt(0, ValType::int32());
}

IRExprPtr FunctionLowering::lowerToBoolTemp(const Expr *E) {
  unsigned Temp = newTemp(ValType::int32());
  unsigned TrueL = newLabel(), FalseL = newLabel(), EndL = newLabel();
  lowerCondBranch(E, TrueL, FalseL);
  bind(TrueL);
  emitStore(E->loc(), frameAddr(Temp), constInt(1, ValType::int32()));
  emitJump(E->loc(), EndL);
  bind(FalseL);
  emitStore(E->loc(), frameAddr(Temp), constInt(0, ValType::int32()));
  bind(EndL);
  return std::make_unique<LoadExpr>(frameAddr(Temp), ValType::int32());
}

void FunctionLowering::lowerForEffect(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::VarRef:
  case Expr::Kind::SizeofType:
    return; // pure, no effect
  case Expr::Kind::Assign:
    lowerAssignment(cast<AssignExpr>(E));
    return;
  case Expr::Kind::Call:
    lowerCall(cast<CallExpr>(E), /*WantValue=*/false);
    return;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      lowerIncDec(U);
      return;
    default:
      lowerForEffect(U->operand());
      return;
    }
  }
  case Expr::Kind::Cast:
    lowerForEffect(cast<CastExpr>(E)->operand());
    return;
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    unsigned ThenL = newLabel(), ElseL = newLabel(), EndL = newLabel();
    lowerCondBranch(C->cond(), ThenL, ElseL);
    bind(ThenL);
    lowerForEffect(C->thenExpr());
    emitJump(E->loc(), EndL);
    bind(ElseL);
    lowerForEffect(C->elseExpr());
    bind(EndL);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::LogAnd || B->op() == BinaryOp::LogOr) {
      unsigned L = newLabel();
      unsigned R = newLabel();
      if (B->op() == BinaryOp::LogAnd) {
        lowerCondBranch(B->lhs(), L, R);
        bind(L);
        lowerForEffect(B->rhs());
        bind(R);
      } else {
        lowerCondBranch(B->lhs(), R, L);
        bind(L);
        lowerForEffect(B->rhs());
        bind(R);
      }
      return;
    }
    lowerForEffect(B->lhs());
    lowerForEffect(B->rhs());
    return;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    lowerForEffect(I->base());
    lowerForEffect(I->index());
    return;
  }
  case Expr::Kind::Member:
    lowerForEffect(cast<MemberExpr>(E)->base());
    return;
  }
}

void FunctionLowering::lowerCondBranch(const Expr *E, unsigned TrueLabel,
                                       unsigned FalseLabel) {
  // Short-circuit operators become explicit branch chains, so each atomic
  // predicate of the source is one RAM-machine conditional statement.
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (B->op() == BinaryOp::LogAnd) {
      unsigned Mid = newLabel();
      lowerCondBranch(B->lhs(), Mid, FalseLabel);
      bind(Mid);
      lowerCondBranch(B->rhs(), TrueLabel, FalseLabel);
      return;
    }
    if (B->op() == BinaryOp::LogOr) {
      unsigned Mid = newLabel();
      lowerCondBranch(B->lhs(), TrueLabel, Mid);
      bind(Mid);
      lowerCondBranch(B->rhs(), TrueLabel, FalseLabel);
      return;
    }
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() == UnaryOp::LogNot) {
      lowerCondBranch(U->operand(), FalseLabel, TrueLabel);
      return;
    }
  }
  if (const auto *C = dyn_cast<CastExpr>(E)) {
    // Implicit decay/conversion in a condition does not change truthiness.
    if (C->isImplicit() && C->operand()->type() &&
        C->operand()->type()->isScalar()) {
      lowerCondBranch(C->operand(), TrueLabel, FalseLabel);
      return;
    }
  }
  if (const auto *L = dyn_cast<IntLiteralExpr>(E)) {
    // Constant conditions (e.g. `while (1)`) are not branch *sites*: there
    // is nothing for the directed search to flip.
    emitJump(E->loc(), L->value() != 0 ? TrueLabel : FalseLabel);
    return;
  }
  emitCondJump(E->loc(), lowerValue(E), TrueLabel, FalseLabel);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FunctionLowering::lowerStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const auto &Child : cast<CompoundStmt>(S)->body())
      lowerStmt(Child.get());
    return;
  case Stmt::Kind::Decl: {
    const VarDecl *V = cast<DeclStmt>(S)->var();
    unsigned Slot = slotFor(V);
    if (!V->init())
      return;
    if (V->type()->isStruct()) {
      IRExprPtr Src = lowerAddress(V->init());
      F.Instrs.push_back(std::make_unique<CopyInstr>(
          S->loc(), frameAddr(Slot), std::move(Src), V->type()->size()));
      return;
    }
    emitStore(S->loc(), frameAddr(Slot),
              castTo(lowerValue(V->init()), valTypeFor(V->type())));
    return;
  }
  case Stmt::Kind::Expr:
    lowerForEffect(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    unsigned ThenL = newLabel(), EndL = newLabel();
    unsigned ElseL = I->elseStmt() ? newLabel() : EndL;
    lowerCondBranch(I->cond(), ThenL, ElseL);
    bind(ThenL);
    lowerStmt(I->thenStmt());
    if (I->elseStmt()) {
      emitJump(S->loc(), EndL);
      bind(ElseL);
      lowerStmt(I->elseStmt());
    }
    bind(EndL);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    unsigned CondL = newLabel(), BodyL = newLabel(), EndL = newLabel();
    bind(CondL);
    lowerCondBranch(W->cond(), BodyL, EndL);
    bind(BodyL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(CondL);
    lowerStmt(W->body());
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    emitJump(S->loc(), CondL);
    bind(EndL);
    return;
  }
  case Stmt::Kind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(S);
    unsigned BodyL = newLabel(), CondL = newLabel(), EndL = newLabel();
    bind(BodyL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(CondL);
    lowerStmt(D->body());
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    bind(CondL);
    lowerCondBranch(D->cond(), BodyL, EndL);
    bind(EndL);
    return;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    lowerStmt(FS->init());
    unsigned CondL = newLabel(), BodyL = newLabel(), StepL = newLabel(),
             EndL = newLabel();
    bind(CondL);
    if (FS->cond())
      lowerCondBranch(FS->cond(), BodyL, EndL);
    bind(BodyL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(StepL);
    lowerStmt(FS->body());
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    bind(StepL);
    if (FS->step())
      lowerForEffect(FS->step());
    emitJump(S->loc(), CondL);
    bind(EndL);
    return;
  }
  case Stmt::Kind::Switch: {
    // Lowered to an if-chain over the scrutinee (the same shape CIL's
    // switch lowering produces): each case label is one conditional
    // statement, so the directed search can steer to every arm. Bodies
    // run in source order with C fallthrough.
    const auto *Sw = cast<SwitchStmt>(S);
    ValType CondVT = valTypeFor(Sw->cond()->type());
    unsigned Scrutinee = newTemp(CondVT);
    emitStore(S->loc(), frameAddr(Scrutinee), lowerValue(Sw->cond()));
    unsigned EndL = newLabel();

    const auto &Cases = Sw->cases();
    // One body label per arm; the dispatch chain jumps into them.
    std::vector<unsigned> BodyLabels;
    BodyLabels.reserve(Cases.size());
    for (size_t I = 0; I < Cases.size(); ++I)
      BodyLabels.push_back(newLabel());

    // Dispatch chain.
    std::optional<size_t> DefaultIndex;
    for (size_t I = 0; I < Cases.size(); ++I) {
      if (!Cases[I].Value) {
        DefaultIndex = I;
        continue;
      }
      unsigned NextTest = newLabel();
      emitCondJump(Cases[I].Loc,
                   std::make_unique<CmpExpr>(
                       CmpPred::Eq,
                       std::make_unique<LoadExpr>(frameAddr(Scrutinee),
                                                  CondVT),
                       constInt(*Cases[I].Value, CondVT), CondVT),
                   BodyLabels[I], NextTest);
      bind(NextTest);
    }
    emitJump(S->loc(), DefaultIndex ? BodyLabels[*DefaultIndex] : EndL);

    // Bodies in source order; fallthrough is just sequential layout.
    BreakLabels.push_back(EndL);
    for (size_t I = 0; I < Cases.size(); ++I) {
      bind(BodyLabels[I]);
      for (const auto &Child : Cases[I].Body)
        lowerStmt(Child.get());
    }
    BreakLabels.pop_back();
    bind(EndL);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    IRExprPtr Value;
    if (R->value())
      Value = castTo(lowerValue(R->value()), F.RetVT);
    F.Instrs.push_back(
        std::make_unique<RetInstr>(S->loc(), std::move(Value)));
    return;
  }
  case Stmt::Kind::Break:
    assert(!BreakLabels.empty() && "break outside loop survived sema");
    emitJump(S->loc(), BreakLabels.back());
    return;
  case Stmt::Kind::Continue:
    assert(!ContinueLabels.empty() &&
           "continue outside loop survived sema");
    emitJump(S->loc(), ContinueLabels.back());
    return;
  case Stmt::Kind::Null:
    return;
  }
}

void FunctionLowering::finalize() {
  for (auto &I : F.Instrs) {
    if (auto *J = dyn_cast<JumpInstr>(I.get())) {
      assert(LabelPos[J->target()] != UINT32_MAX && "unbound label");
      J->setTarget(LabelPos[J->target()]);
    } else if (auto *CJ = dyn_cast<CondJumpInstr>(I.get())) {
      assert(LabelPos[CJ->trueTarget()] != UINT32_MAX && "unbound label");
      assert(LabelPos[CJ->falseTarget()] != UINT32_MAX && "unbound label");
      CJ->setTargets(LabelPos[CJ->trueTarget()],
                     LabelPos[CJ->falseTarget()]);
    }
  }
}

void FunctionLowering::lower(const FunctionDecl &Fn) {
  F.Name = Fn.name();
  F.NumParams = static_cast<unsigned>(Fn.params().size());
  F.ReturnsVoid = Fn.returnType()->isVoid();
  if (!F.ReturnsVoid) {
    if (!Fn.returnType()->isScalar()) {
      Diags.error(Fn.loc(), "function '" + Fn.name() +
                                "' returns an aggregate; not supported");
      F.ReturnsVoid = true;
    } else {
      F.RetVT = valTypeFor(Fn.returnType());
    }
  }
  for (const auto &P : Fn.params()) {
    if (!P->type()->isScalar()) {
      Diags.error(P->loc(), "parameter '" + P->name() +
                                "' has aggregate type; pass a pointer");
      F.ParamVTs.push_back(ValType::int64());
      FrameSlot Slot;
      Slot.Name = P->name();
      Slot.SizeBytes = 8;
      Slot.Align = 8;
      F.Slots.push_back(Slot);
      continue;
    }
    F.ParamVTs.push_back(valTypeFor(P->type()));
    (void)slotFor(P.get());
  }
  lowerStmt(Fn.body());
  // Implicit return: 0 for value functions that fall off the end (C's UB,
  // resolved deterministically), plain return for void functions.
  IRExprPtr Value;
  if (!F.ReturnsVoid)
    Value = constInt(0, F.RetVT);
  F.Instrs.push_back(std::make_unique<RetInstr>(Fn.loc(), std::move(Value)));
  finalize();
}

} // namespace

LoweredProgram dart::lowerToIR(const TranslationUnit &TU,
                               DiagnosticsEngine &Diags) {
  LoweredProgram Result;
  Result.Module = std::make_unique<IRModule>();
  IRModule &M = *Result.Module;
  std::map<std::string, unsigned> StringGlobals;

  // Globals first so function bodies can address them.
  for (const auto &D : TU.decls()) {
    const auto *V = dyn_cast<VarDecl>(D.get());
    if (!V)
      continue;
    IRGlobal G;
    G.Name = V->name();
    G.SizeBytes = V->type()->size();
    G.Align = V->type()->align();
    G.IsExternInput = V->isExtern() && !V->init();
    if (V->init()) {
      // Sema guarantees global initializers are integer constant
      // expressions; encode little-endian at the variable's width.
      int64_t Value = 0;
      if (const auto *L = dyn_cast<IntLiteralExpr>(V->init()))
        Value = L->value();
      else {
        // Re-fold through the same rules sema used.
        struct Folder {
          static bool fold(const Expr *E, int64_t &Out) {
            if (const auto *L = dyn_cast<IntLiteralExpr>(E)) {
              Out = L->value();
              return true;
            }
            if (const auto *S = dyn_cast<SizeofTypeExpr>(E)) {
              Out = S->queriedType()->size();
              return true;
            }
            if (const auto *C = dyn_cast<CastExpr>(E))
              return fold(C->operand(), Out);
            if (const auto *U = dyn_cast<UnaryExpr>(E)) {
              int64_t Inner;
              if (!fold(U->operand(), Inner))
                return false;
              switch (U->op()) {
              case UnaryOp::Neg:
                Out = -Inner;
                return true;
              case UnaryOp::BitNot:
                Out = ~Inner;
                return true;
              case UnaryOp::LogNot:
                Out = !Inner;
                return true;
              default:
                return false;
              }
            }
            if (const auto *B = dyn_cast<BinaryExpr>(E)) {
              int64_t L, R;
              if (!fold(B->lhs(), L) || !fold(B->rhs(), R))
                return false;
              switch (B->op()) {
              case BinaryOp::Add:
                Out = L + R;
                return true;
              case BinaryOp::Sub:
                Out = L - R;
                return true;
              case BinaryOp::Mul:
                Out = L * R;
                return true;
              default:
                return false;
              }
            }
            return false;
          }
        };
        Folder::fold(V->init(), Value);
      }
      unsigned Width = V->type()->isScalar() ? valTypeFor(V->type()).SizeBytes
                                             : 0;
      G.Init.resize(Width);
      for (unsigned I = 0; I < Width; ++I)
        G.Init[I] = static_cast<uint8_t>(
            (static_cast<uint64_t>(Value) >> (8 * I)) & 0xff);
    }
    Result.GlobalIndexOf[V] = M.addGlobal(std::move(G));
  }

  // Then all function definitions.
  for (const auto &D : TU.decls()) {
    const auto *Fn = dyn_cast<FunctionDecl>(D.get());
    if (!Fn || !Fn->hasBody())
      continue;
    if (M.findFunction(Fn->name()))
      continue; // redefinition already diagnosed by sema
    auto F = std::make_unique<IRFunction>();
    FunctionLowering FL(M, *F, Result.GlobalIndexOf, StringGlobals, Diags);
    FL.lower(*Fn);
    M.addFunction(std::move(F));
  }
  return Result;
}
