//===- Lowering.h - AST to RAM-machine lowering -----------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC AST into the RAM-machine IR. All side effects
/// are flattened into instructions over temporary frame slots so that IR
/// expressions are pure (the paper's §2.2 invariant), and all short-circuit
/// operators become explicit conditional statements — which is what makes
/// every atomic predicate of the program a separately flippable branch for
/// the directed search.
///
//===----------------------------------------------------------------------===//

#ifndef DART_IR_LOWERING_H
#define DART_IR_LOWERING_H

#include "ast/AST.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>

namespace dart {

/// Result of lowering: the module plus maps back to the AST that the DART
/// driver uses to build inputs (paper §3.1 interface extraction).
struct LoweredProgram {
  std::unique_ptr<IRModule> Module;
  /// Global index of each AST global variable.
  std::map<const VarDecl *, unsigned> GlobalIndexOf;
};

/// The scalar machine type of an AST type. Must be a scalar type.
ValType valTypeFor(const Type *Ty);

/// Lowers \p TU. Returns a module even on error; check \p Diags.
LoweredProgram lowerToIR(const TranslationUnit &TU, DiagnosticsEngine &Diags);

} // namespace dart

#endif // DART_IR_LOWERING_H
