//===- SourceLocation.h - Source positions for diagnostics -----*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions and ranges in MiniC source
/// buffers. Line and column are 1-based; a default-constructed location is
/// invalid and prints as "<unknown>".
///
//===----------------------------------------------------------------------===//

#ifndef DART_SUPPORT_SOURCELOCATION_H
#define DART_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace dart {

/// A position in a source buffer (1-based line/column, 0-based offset).
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;
  uint32_t Offset = 0;

  bool isValid() const { return Line != 0; }

  /// Renders as "line:col" or "<unknown>" for invalid locations.
  std::string toString() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

/// A half-open range [Begin, End) in a source buffer.
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  SourceRange() = default;
  SourceRange(SourceLocation B, SourceLocation E) : Begin(B), End(E) {}
  explicit SourceRange(SourceLocation B) : Begin(B), End(B) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace dart

#endif // DART_SUPPORT_SOURCELOCATION_H
