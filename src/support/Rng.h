//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based RNG. DART's random testing (paper §2.3 `random()`,
/// §3.2 `random_bits`, the NULL/allocate coin toss of Fig. 8) must be
/// reproducible for the experiment tables, so all randomness in the engine
/// flows through this seeded generator instead of std::random_device.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SUPPORT_RNG_H
#define DART_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace dart {

/// SplitMix64: tiny, fast, passes BigCrush, and — unlike std::mt19937 —
/// trivially serializable (the whole state is one u64).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next 64 random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \p NumBits low-order random bits, sign-extended into int64_t the way
  /// the paper's `random_bits(sizeof(type))` fills a C integer.
  int64_t nextBits(unsigned NumBits) {
    assert(NumBits >= 1 && NumBits <= 64 && "bit width out of range");
    uint64_t Raw = next();
    if (NumBits == 64)
      return static_cast<int64_t>(Raw);
    uint64_t Mask = (uint64_t(1) << NumBits) - 1;
    uint64_t Val = Raw & Mask;
    // Sign-extend: the value stored in a C integer of this width.
    if (Val & (uint64_t(1) << (NumBits - 1)))
      Val |= ~Mask;
    return static_cast<int64_t>(Val);
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Fair coin toss (paper Fig. 8: pointer inputs are NULL with p=0.5).
  bool coinToss() { return next() & 1; }

  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S; }

private:
  uint64_t State;
};

} // namespace dart

#endif // DART_SUPPORT_RNG_H
