//===- SmallVec.h - Inline small-vector for trivially copyable T -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-size-optimized vector for trivially copyable element
/// types: the first N elements live inline (no allocation), larger sizes
/// spill to the heap. LinearExpr stores its (InputId, coeff) terms in one
/// of these — the overwhelming majority of path-constraint expressions
/// have one or two terms, and the previous std::map representation paid a
/// red-black-tree node allocation per term on the hottest VM hook.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SUPPORT_SMALLVEC_H
#define DART_SUPPORT_SMALLVEC_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace dart {

template <typename T, unsigned N> class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable types");
  static_assert(N >= 1, "inline capacity must be at least 1");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVec() = default;

  SmallVec(const SmallVec &Other) { assign(Other); }
  SmallVec(SmallVec &&Other) noexcept { steal(std::move(Other)); }

  SmallVec &operator=(const SmallVec &Other) {
    if (this != &Other) {
      destroyHeap();
      assign(Other);
    }
    return *this;
  }

  SmallVec &operator=(SmallVec &&Other) noexcept {
    if (this != &Other) {
      destroyHeap();
      steal(std::move(Other));
    }
    return *this;
  }

  ~SmallVec() { destroyHeap(); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }
  bool isInline() const { return Ptr == inlineData(); }

  T *begin() { return Ptr; }
  T *end() { return Ptr + Size; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Size; }

  T &operator[](size_t I) {
    assert(I < Size);
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size);
    return Ptr[I];
  }

  T &back() {
    assert(Size > 0);
    return Ptr[Size - 1];
  }
  const T &back() const {
    assert(Size > 0);
    return Ptr[Size - 1];
  }

  void clear() { Size = 0; }

  void reserve(size_t Wanted) {
    if (Wanted > Cap)
      grow(Wanted);
  }

  void push_back(const T &V) {
    if (Size == Cap)
      grow(Cap * 2);
    Ptr[Size++] = V;
  }

  /// Inserts \p V before position \p At (0 <= At <= size()).
  void insert(size_t At, const T &V) {
    assert(At <= Size);
    if (Size == Cap)
      grow(Cap * 2);
    std::memmove(Ptr + At + 1, Ptr + At, (Size - At) * sizeof(T));
    Ptr[At] = V;
    ++Size;
  }

  /// Erases the element at position \p At.
  void erase(size_t At) {
    assert(At < Size);
    std::memmove(Ptr + At, Ptr + At + 1, (Size - At - 1) * sizeof(T));
    --Size;
  }

  friend bool operator==(const SmallVec &A, const SmallVec &B) {
    if (A.Size != B.Size)
      return false;
    for (size_t I = 0; I < A.Size; ++I)
      if (!(A.Ptr[I] == B.Ptr[I]))
        return false;
    return true;
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  const T *inlineData() const { return reinterpret_cast<const T *>(Inline); }

  void assign(const SmallVec &Other) {
    Size = Other.Size;
    if (Size <= N) {
      Ptr = inlineData();
      Cap = N;
    } else {
      Ptr = new T[Other.Size];
      Cap = Other.Size;
    }
    std::memcpy(Ptr, Other.Ptr, Size * sizeof(T));
  }

  void steal(SmallVec &&Other) {
    Size = Other.Size;
    if (Other.isInline()) {
      Ptr = inlineData();
      Cap = N;
      std::memcpy(Ptr, Other.Ptr, Size * sizeof(T));
    } else {
      Ptr = Other.Ptr;
      Cap = Other.Cap;
      Other.Ptr = Other.inlineData();
      Other.Cap = N;
    }
    Other.Size = 0;
  }

  void grow(size_t Wanted) {
    size_t NewCap = Cap;
    while (NewCap < Wanted)
      NewCap *= 2;
    T *NewPtr = new T[NewCap];
    std::memcpy(NewPtr, Ptr, Size * sizeof(T));
    destroyHeap();
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void destroyHeap() {
    if (!isInline())
      delete[] Ptr;
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Ptr = inlineData();
  uint32_t Size = 0;
  uint32_t Cap = N;
};

} // namespace dart

#endif // DART_SUPPORT_SMALLVEC_H
