//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's opt-in RTTI. Class hierarchies that
/// carry a kind discriminator expose `static bool classof(const Base *)` on
/// each derived class; `isa`, `cast` and `dyn_cast` then work exactly as in
/// LLVM, without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SUPPORT_CASTING_H
#define DART_SUPPORT_CASTING_H

#include <cassert>

namespace dart {

/// True if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null input (returns null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace dart

#endif // DART_SUPPORT_CASTING_H
