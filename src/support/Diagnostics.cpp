//===- Diagnostics.cpp - Error and warning collection ---------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace dart;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::toString() const {
  return Loc.toString() + ": " + severityName(Severity) + ": " + Message;
}

void DiagnosticsEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticsEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticsEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticsEngine::toString() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}
