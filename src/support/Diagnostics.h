//===- Diagnostics.h - Error and warning collection -------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Front-end passes (lexer, parser, sema) report
/// errors and warnings here instead of aborting, so callers can inspect every
/// problem in a compilation unit and tests can assert on exact messages.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SUPPORT_DIAGNOSTICS_H
#define DART_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace dart {

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem: severity, position, and rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "line:col: error: message" in the style of C compilers.
  std::string toString() const;
};

/// Accumulates diagnostics for one compilation. Not thread-safe; each
/// front-end invocation owns one engine.
class DiagnosticsEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; convenient for test failure
  /// messages and tool output.
  std::string toString() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace dart

#endif // DART_SUPPORT_DIAGNOSTICS_H
