//===- Memory.cpp - Copy-on-write region RAM for the concrete VM ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace dart;

const char *dart::memFaultName(MemFault F) {
  switch (F) {
  case MemFault::None:
    return "none";
  case MemFault::NullDeref:
    return "NULL dereference";
  case MemFault::OutOfBounds:
    return "out-of-bounds access";
  case MemFault::UseAfterFree:
    return "use after free";
  case MemFault::BadRegion:
    return "wild pointer dereference";
  case MemFault::BadFree:
    return "free of a non-heap pointer";
  case MemFault::DoubleFree:
    return "double free";
  case MemFault::ReadOnlyWrite:
    return "write to read-only memory";
  }
  return "memory fault";
}

const std::shared_ptr<Memory::Page> &Memory::zeroPage() {
  static const std::shared_ptr<Page> Z = std::make_shared<Page>();
  return Z;
}

/// Recycled region-table chunks. Random testing tears down a Memory per
/// run, and each run allocates a handful of chunks (32 regions each);
/// recycling them turns the per-run make_shared/dispose pair — and the
/// construction of 32 Region objects inside — into a pool pop/push.
/// Thread-local: parallel workers each keep their own pool.
std::vector<std::shared_ptr<Memory::Chunk>> &Memory::chunkPool() {
  thread_local std::vector<std::shared_ptr<Chunk>> Pool;
  return Pool;
}

std::shared_ptr<Memory::Chunk> Memory::takeChunk() {
  auto &Pool = chunkPool();
  if (!Pool.empty()) {
    std::shared_ptr<Chunk> C = std::move(Pool.back());
    Pool.pop_back();
    return C;
  }
  return std::make_shared<Chunk>();
}

Memory::~Memory() {
  constexpr size_t kChunkPoolMax = 64;
  auto &Pool = chunkPool();
  for (std::shared_ptr<Chunk> &C : Chunks)
    // Only privately owned chunks may be recycled: a snapshot (or a
    // Memory resumed from one) still observes shared ones. Stale slots
    // are fully reassigned by allocate() before anyone reads them.
    if (C.use_count() == 1 && Pool.size() < kChunkPoolMax)
      Pool.push_back(std::move(C));
}

Memory::Region &Memory::mutableRegionAt(uint32_t Id) {
  std::shared_ptr<Chunk> &C = Chunks[Id / kRegionsPerChunk];
  // use_count() == 1 means this Memory holds the only reference, so no
  // snapshot (or resumed sibling) can observe the mutation; a reference
  // that is private cannot be copied concurrently, which makes the check
  // race-free without atomics beyond shared_ptr's own.
  if (C.use_count() > 1) {
    C = std::make_shared<Chunk>(*C);
    ++St.ChunkClones;
  }
  return C->R[Id % kRegionsPerChunk];
}

uint8_t *Memory::mutablePage(Region &R, size_t PageIndex) {
  std::shared_ptr<Page> &P = R.Pages[PageIndex];
  if (P.use_count() > 1) { // always true for the shared zero page
    P = std::make_shared<Page>(*P);
    ++St.PageClones;
  }
  return P->B.data();
}

Addr Memory::allocate(uint64_t Size, RegionKind Kind, std::string Name,
                      bool ReadOnly) {
  assert(NumRegions < UINT32_MAX && "region space exhausted");
  uint32_t Id = static_cast<uint32_t>(NumRegions++);
  if (Id % kRegionsPerChunk == 0)
    Chunks.push_back(takeChunk());
  // After a restore, the tail chunk's unused slots are pristine (the
  // snapshot was taken before they were ever written), so assigning every
  // field rebuilds the slot exactly.
  Region &R = mutableRegionAt(Id);
  R.Size = Size;
  R.Kind = Kind;
  R.Alive = true;
  R.ReadOnly = ReadOnly;
  R.Name = std::move(Name);
  R.Pages.assign((Size + kPageSize - 1) / kPageSize, zeroPage());
  if (Kind == RegionKind::Heap)
    HeapInUse += Size;
  return makeAddr(Id, 0);
}

MemFault Memory::free(Addr Base) {
  if (isNullAddr(Base))
    return MemFault::None; // free(NULL) is a no-op, as in C
  uint32_t Id = addrRegion(Base);
  if (Id >= NumRegions)
    return MemFault::BadRegion;
  const Region &RC = regionAt(Id);
  if (RC.Kind != RegionKind::Heap || addrOffset(Base) != 0)
    return MemFault::BadFree;
  if (!RC.Alive)
    return MemFault::DoubleFree;
  Region &R = mutableRegionAt(Id);
  R.Alive = false;
  HeapInUse -= R.Size;
  return MemFault::None;
}

void Memory::releaseStack(Addr Base) {
  if (isNullAddr(Base))
    return;
  uint32_t Id = addrRegion(Base);
  assert(Id < NumRegions && regionAt(Id).Kind == RegionKind::Stack &&
         "releaseStack on a non-stack region");
  mutableRegionAt(Id).Alive = false;
}

const Memory::Region *Memory::access(Addr A, uint64_t Size,
                                     MemFault &Fault) const {
  if (isNullAddr(A)) {
    Fault = MemFault::NullDeref;
    return nullptr;
  }
  uint32_t Id = addrRegion(A);
  if (Id >= NumRegions) {
    Fault = MemFault::BadRegion;
    return nullptr;
  }
  const Region &R = regionAt(Id);
  if (!R.Alive) {
    Fault = MemFault::UseAfterFree;
    return nullptr;
  }
  uint64_t Offset = addrOffset(A);
  if (Offset + Size > R.Size) {
    Fault = MemFault::OutOfBounds;
    return nullptr;
  }
  Fault = MemFault::None;
  return &R;
}

void Memory::readBytes(const Region &R, uint64_t Off, uint8_t *Out,
                       uint64_t N) const {
  while (N > 0) {
    size_t PageIndex = Off / kPageSize;
    uint64_t InPage = Off % kPageSize;
    uint64_t Run = std::min(N, kPageSize - InPage);
    std::memcpy(Out, R.Pages[PageIndex]->B.data() + InPage, Run);
    Off += Run;
    Out += Run;
    N -= Run;
  }
}

void Memory::writeBytes(Region &R, uint64_t Off, const uint8_t *In,
                        uint64_t N) {
  while (N > 0) {
    size_t PageIndex = Off / kPageSize;
    uint64_t InPage = Off % kPageSize;
    uint64_t Run = std::min(N, kPageSize - InPage);
    std::memcpy(mutablePage(R, PageIndex) + InPage, In, Run);
    Off += Run;
    In += Run;
    N -= Run;
  }
}

MemFault Memory::load(Addr A, unsigned Size, uint64_t &Out) const {
  MemFault Fault;
  const Region *R = access(A, Size, Fault);
  if (!R)
    return Fault;
  uint64_t Off = addrOffset(A);
  uint64_t InPage = Off % kPageSize;
  uint64_t Value = 0;
  if (InPage + Size <= kPageSize) {
    const uint8_t *Src = R->Pages[Off / kPageSize]->B.data() + InPage;
    for (unsigned I = 0; I < Size; ++I)
      Value |= static_cast<uint64_t>(Src[I]) << (8 * I);
  } else {
    uint8_t Buf[8];
    readBytes(*R, Off, Buf, Size);
    for (unsigned I = 0; I < Size; ++I)
      Value |= static_cast<uint64_t>(Buf[I]) << (8 * I);
  }
  Out = Value;
  return MemFault::None;
}

MemFault Memory::store(Addr A, unsigned Size, uint64_t Value) {
  MemFault Fault;
  const Region *RC = access(A, Size, Fault);
  if (!RC)
    return Fault;
  if (RC->ReadOnly)
    return MemFault::ReadOnlyWrite;
  Region &R = mutableRegionAt(addrRegion(A));
  uint8_t Buf[8];
  for (unsigned I = 0; I < Size; ++I)
    Buf[I] = static_cast<uint8_t>((Value >> (8 * I)) & 0xff);
  writeBytes(R, addrOffset(A), Buf, Size);
  return MemFault::None;
}

MemFault Memory::copy(Addr Dst, Addr Src, uint64_t Size) {
  if (Size == 0)
    return MemFault::None;
  MemFault Fault;
  const Region *SrcR = access(Src, Size, Fault);
  if (!SrcR)
    return Fault;
  const Region *DstRC = access(Dst, Size, Fault);
  if (!DstRC)
    return Fault;
  if (DstRC->ReadOnly)
    return MemFault::ReadOnlyWrite;
  // Stage through a buffer: this gives memmove semantics for overlapping
  // same-region copies and keeps the page walk simple.
  std::vector<uint8_t> Buf(Size);
  readBytes(*SrcR, addrOffset(Src), Buf.data(), Size);
  Region &DstR = mutableRegionAt(addrRegion(Dst));
  writeBytes(DstR, addrOffset(Dst), Buf.data(), Size);
  return MemFault::None;
}

void Memory::writeInitialImage(Addr Base, const std::vector<uint8_t> &Bytes) {
  assert(!isNullAddr(Base) && addrRegion(Base) < NumRegions &&
         "bad region for initial image");
  Region &R = mutableRegionAt(addrRegion(Base));
  assert(Bytes.size() <= R.Size && "initial image too large");
  if (!Bytes.empty())
    writeBytes(R, 0, Bytes.data(), Bytes.size());
}

bool Memory::isReadable(Addr A, uint64_t Size) const {
  MemFault Fault;
  return access(A, Size, Fault) != nullptr;
}

uint64_t Memory::regionSize(Addr A) const {
  if (isNullAddr(A) || addrRegion(A) >= NumRegions)
    return 0;
  return regionAt(addrRegion(A)).Size;
}

bool Memory::isHeapBase(Addr A) const {
  if (isNullAddr(A) || addrRegion(A) >= NumRegions)
    return false;
  const Region &R = regionAt(addrRegion(A));
  return R.Kind == RegionKind::Heap && addrOffset(A) == 0 && R.Alive;
}

Memory::Snapshot Memory::snapshot() const {
  Snapshot S;
  S.Chunks = Chunks;
  S.NumRegions = NumRegions;
  S.HeapInUse = HeapInUse;
  ++St.SnapshotsTaken;
  return S;
}

Memory::SnapshotDelta Memory::snapshotDelta(Snapshot &Base) const {
  SnapshotDelta D;
  D.NumChunks = static_cast<uint32_t>(Chunks.size());
  D.NumRegions = NumRegions;
  D.HeapInUse = HeapInUse;
  // Within a run the chunk vector only grows (restore happens before the
  // recorder's first delta), so Base never has chunks this Memory lacks.
  assert(Base.Chunks.size() <= Chunks.size() && "base ahead of memory");
  if (Base.Chunks.size() < Chunks.size())
    Base.Chunks.resize(Chunks.size());
  for (size_t I = 0; I < Chunks.size(); ++I)
    if (Base.Chunks[I] != Chunks[I]) {
      D.Changed.emplace_back(static_cast<uint32_t>(I), Chunks[I]);
      Base.Chunks[I] = Chunks[I];
    }
  Base.NumRegions = NumRegions;
  Base.HeapInUse = HeapInUse;
  ++St.SnapshotsTaken;
  return D;
}

void Memory::applyDelta(Snapshot &S, const SnapshotDelta &D) {
  S.Chunks.resize(D.NumChunks);
  for (const auto &[Index, C] : D.Changed)
    S.Chunks[Index] = C;
  S.NumRegions = D.NumRegions;
  S.HeapInUse = D.HeapInUse;
}

void Memory::composeDelta(SnapshotDelta &Into, SnapshotDelta &&Later) {
  // Both Changed lists are in ascending index order; merge with the later
  // delta winning on equal indices.
  std::vector<std::pair<uint32_t, std::shared_ptr<Chunk>>> Merged;
  Merged.reserve(Into.Changed.size() + Later.Changed.size());
  size_t A = 0, B = 0;
  while (A < Into.Changed.size() && B < Later.Changed.size()) {
    if (Into.Changed[A].first < Later.Changed[B].first)
      Merged.push_back(std::move(Into.Changed[A++]));
    else if (Later.Changed[B].first < Into.Changed[A].first)
      Merged.push_back(std::move(Later.Changed[B++]));
    else {
      Merged.push_back(std::move(Later.Changed[B++]));
      ++A;
    }
  }
  for (; A < Into.Changed.size(); ++A)
    Merged.push_back(std::move(Into.Changed[A]));
  for (; B < Later.Changed.size(); ++B)
    Merged.push_back(std::move(Later.Changed[B]));
  Into.Changed = std::move(Merged);
  Into.NumChunks = Later.NumChunks;
  Into.NumRegions = Later.NumRegions;
  Into.HeapInUse = Later.HeapInUse;
}

void Memory::restore(const Snapshot &S) {
  Chunks = S.Chunks;
  NumRegions = S.NumRegions;
  HeapInUse = S.HeapInUse;
}
