//===- Memory.cpp - Region-based RAM for the concrete VM ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include <cassert>
#include <cstring>

using namespace dart;

const char *dart::memFaultName(MemFault F) {
  switch (F) {
  case MemFault::None:
    return "none";
  case MemFault::NullDeref:
    return "NULL dereference";
  case MemFault::OutOfBounds:
    return "out-of-bounds access";
  case MemFault::UseAfterFree:
    return "use after free";
  case MemFault::BadRegion:
    return "wild pointer dereference";
  case MemFault::BadFree:
    return "free of a non-heap pointer";
  case MemFault::DoubleFree:
    return "double free";
  case MemFault::ReadOnlyWrite:
    return "write to read-only memory";
  }
  return "memory fault";
}

Addr Memory::allocate(uint64_t Size, RegionKind Kind, std::string Name,
                      bool ReadOnly) {
  assert(Regions.size() < UINT32_MAX && "region space exhausted");
  Region R;
  R.Bytes.resize(Size, 0);
  R.Kind = Kind;
  R.Name = std::move(Name);
  R.ReadOnly = ReadOnly;
  Regions.push_back(std::move(R));
  if (Kind == RegionKind::Heap)
    HeapInUse += Size;
  return makeAddr(static_cast<uint32_t>(Regions.size() - 1), 0);
}

MemFault Memory::free(Addr Base) {
  if (isNullAddr(Base))
    return MemFault::None; // free(NULL) is a no-op, as in C
  uint32_t Id = addrRegion(Base);
  if (Id >= Regions.size())
    return MemFault::BadRegion;
  Region &R = Regions[Id];
  if (R.Kind != RegionKind::Heap || addrOffset(Base) != 0)
    return MemFault::BadFree;
  if (!R.Alive)
    return MemFault::DoubleFree;
  R.Alive = false;
  HeapInUse -= R.Bytes.size();
  return MemFault::None;
}

void Memory::releaseStack(Addr Base) {
  if (isNullAddr(Base))
    return;
  uint32_t Id = addrRegion(Base);
  assert(Id < Regions.size() && Regions[Id].Kind == RegionKind::Stack &&
         "releaseStack on a non-stack region");
  Regions[Id].Alive = false;
}

const Memory::Region *Memory::access(Addr A, uint64_t Size,
                                     MemFault &Fault) const {
  if (isNullAddr(A)) {
    Fault = MemFault::NullDeref;
    return nullptr;
  }
  uint32_t Id = addrRegion(A);
  if (Id >= Regions.size()) {
    Fault = MemFault::BadRegion;
    return nullptr;
  }
  const Region &R = Regions[Id];
  if (!R.Alive) {
    Fault = MemFault::UseAfterFree;
    return nullptr;
  }
  uint64_t Offset = addrOffset(A);
  if (Offset + Size > R.Bytes.size()) {
    Fault = MemFault::OutOfBounds;
    return nullptr;
  }
  Fault = MemFault::None;
  return &R;
}

MemFault Memory::load(Addr A, unsigned Size, uint64_t &Out) const {
  MemFault Fault;
  const Region *R = access(A, Size, Fault);
  if (!R)
    return Fault;
  uint64_t Value = 0;
  const uint8_t *Src = R->Bytes.data() + addrOffset(A);
  for (unsigned I = 0; I < Size; ++I)
    Value |= static_cast<uint64_t>(Src[I]) << (8 * I);
  Out = Value;
  return MemFault::None;
}

MemFault Memory::store(Addr A, unsigned Size, uint64_t Value) {
  MemFault Fault;
  const Region *RC = access(A, Size, Fault);
  if (!RC)
    return Fault;
  if (RC->ReadOnly)
    return MemFault::ReadOnlyWrite;
  Region &R = Regions[addrRegion(A)];
  uint8_t *Dst = R.Bytes.data() + addrOffset(A);
  for (unsigned I = 0; I < Size; ++I)
    Dst[I] = static_cast<uint8_t>((Value >> (8 * I)) & 0xff);
  return MemFault::None;
}

MemFault Memory::copy(Addr Dst, Addr Src, uint64_t Size) {
  if (Size == 0)
    return MemFault::None;
  MemFault Fault;
  const Region *SrcR = access(Src, Size, Fault);
  if (!SrcR)
    return Fault;
  const Region *DstRC = access(Dst, Size, Fault);
  if (!DstRC)
    return Fault;
  if (DstRC->ReadOnly)
    return MemFault::ReadOnlyWrite;
  // memmove semantics within one region.
  Region &DstR = Regions[addrRegion(Dst)];
  std::memmove(DstR.Bytes.data() + addrOffset(Dst),
               SrcR->Bytes.data() + addrOffset(Src), Size);
  return MemFault::None;
}

void Memory::writeInitialImage(Addr Base, const std::vector<uint8_t> &Bytes) {
  assert(!isNullAddr(Base) && addrRegion(Base) < Regions.size() &&
         "bad region for initial image");
  Region &R = Regions[addrRegion(Base)];
  assert(Bytes.size() <= R.Bytes.size() && "initial image too large");
  std::memcpy(R.Bytes.data(), Bytes.data(), Bytes.size());
}

bool Memory::isReadable(Addr A, uint64_t Size) const {
  MemFault Fault;
  return access(A, Size, Fault) != nullptr;
}

uint64_t Memory::regionSize(Addr A) const {
  if (isNullAddr(A) || addrRegion(A) >= Regions.size())
    return 0;
  return Regions[addrRegion(A)].Bytes.size();
}

bool Memory::isHeapBase(Addr A) const {
  if (isNullAddr(A) || addrRegion(A) >= Regions.size())
    return false;
  const Region &R = Regions[addrRegion(A)];
  return R.Kind == RegionKind::Heap && addrOffset(A) == 0 && R.Alive;
}
