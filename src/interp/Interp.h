//===- Interp.h - Concrete VM for the RAM-machine IR ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete executor: `evaluate_concrete` and `statement_at` of the
/// paper (§2.2), with a call stack. A single Interp instance is one *run*
/// of the program under test: globals are materialized once, then the
/// driver invokes the toplevel function (possibly `depth` times, §3.2).
///
/// Instrumentation hooks (ExecHooks) receive every store, branch, call and
/// region release, letting src/concolic intertwine the symbolic execution
/// of Fig. 3 without the VM knowing anything about symbols. External
/// functions — resolved neither to a program function nor to a registered
/// native — are delegated to the hooks, which model the environment by
/// returning a fresh (random or solver-chosen) value per call.
///
//===----------------------------------------------------------------------===//

#ifndef DART_INTERP_INTERP_H
#define DART_INTERP_INTERP_H

#include "interp/Memory.h"
#include "ir/IR.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dart {

namespace jit {
class JitProgram;
struct FnJit;
} // namespace jit

/// Native-tier runtime counters for one VM (one run). Zero when no
/// JitProgram is installed or nothing dispatched natively.
struct JitRunStats {
  uint64_t BlockEntries = 0; ///< native fragment entries (blocks and units)
  uint64_t NativeInstrs = 0; ///< instructions retired in machine code
  uint64_t Deopts = 0;       ///< native exits back into the interpreter at a
                             ///< non-compilable instruction
};

/// Why a run ended abnormally. Together with MemFault details this covers
/// the error classes DART reports: crashes, assertion violations, and
/// non-termination (paper §1, §4.3).
enum class RunErrorKind {
  AbortCall,        // reached abort()
  AssertFailure,    // assert(e) with e false
  MemoryFault,      // crash: see Fault
  DivByZero,        // division or remainder by zero
  DivOverflow,      // INT_MIN / -1
  StepLimit,        // non-termination (paper: timer; here: step budget)
  StackOverflow,    // runaway recursion
  MissingFunction,  // call to an unknown function with no handler
};

struct RunError {
  RunErrorKind Kind = RunErrorKind::AbortCall;
  MemFault Fault = MemFault::None;
  SourceLocation Loc;
  std::string Message;

  std::string toString() const;
};

/// How one toplevel invocation ended.
enum class RunStatus {
  Halted,          // normal termination (the paper's `halt`)
  Errored,         // see Error (the paper's `abort` + crash classes)
  ForcingMismatch, // instrumentation aborted the run (Fig. 4 exception)
};

struct RunResult {
  RunStatus Status = RunStatus::Halted;
  RunError Error;
  int64_t ReturnValue = 0;
  uint64_t Steps = 0;
};

class Interp;

/// Read-only evaluation services the hooks may use (e.g. to resolve the
/// addresses inside an IR expression while building its symbolic image).
class EvalContext {
public:
  /// Re-evaluates a pure expression in the current frame. Must only be
  /// called on (sub)expressions the VM just evaluated successfully.
  virtual int64_t evalConcrete(const IRExpr *E) = 0;
  /// Address of a slot of the current frame.
  virtual Addr currentSlotAddr(unsigned SlotIndex) = 0;
  /// Address of a module global.
  virtual Addr globalBaseAddr(unsigned GlobalIndex) = 0;
  virtual ~EvalContext() = default;
};

/// Instrumentation interface; all callbacks default to no-ops.
class ExecHooks {
public:
  /// A scalar store is about to commit. \p ValueExpr is the pure IR
  /// expression that produced \p Value, or null when the value has no
  /// expression (native call results, copied bytes).
  virtual void onStore(EvalContext &Ctx, Addr Address, ValType VT,
                       const IRExpr *ValueExpr, int64_t Value) {
    (void)Ctx;
    (void)Address;
    (void)VT;
    (void)ValueExpr;
    (void)Value;
  }

  /// A bytewise copy is about to commit.
  virtual void onCopy(EvalContext &Ctx, Addr Dst, Addr Src, uint64_t Size) {
    (void)Ctx;
    (void)Dst;
    (void)Src;
    (void)Size;
  }

  /// A conditional statement evaluated; \p Taken is its branch value.
  /// Return false to stop the run with RunStatus::ForcingMismatch (the
  /// exception raised by compare_and_update_stack, Fig. 4).
  virtual bool onBranch(EvalContext &Ctx, const CondJumpInstr &Branch,
                        bool Taken) {
    (void)Ctx;
    (void)Branch;
    (void)Taken;
    return true;
  }

  /// Argument \p ArgIndex of a call to a program function was evaluated in
  /// the *caller* frame (which is still active). Hooks compute the symbolic
  /// image of \p ArgExpr here and bind it to the parameter address in the
  /// matching onParamBound call — this is the paper's interprocedural
  /// tracing of symbolic expressions (§2.1, §3.3).
  virtual void onCallArg(EvalContext &CallerCtx, const IRExpr *ArgExpr,
                         ValType ParamVT, int64_t Value, unsigned ArgIndex) {
    (void)CallerCtx;
    (void)ArgExpr;
    (void)ParamVT;
    (void)Value;
    (void)ArgIndex;
  }

  /// Parameter \p ArgIndex now lives at \p ParamAddr in the fresh callee
  /// frame; pairs with the preceding onCallArg calls.
  virtual void onParamBound(Addr ParamAddr, unsigned ArgIndex, ValType VT,
                            int64_t Value) {
    (void)ParamAddr;
    (void)ArgIndex;
    (void)VT;
    (void)Value;
  }

  /// A registered native (library) function is about to execute — a black
  /// box for symbolic reasoning (paper §3.1).
  virtual void onNativeCall(EvalContext &Ctx, const CallInstr &Call,
                            const std::vector<int64_t> &ArgValues) {
    (void)Ctx;
    (void)Call;
    (void)ArgValues;
  }

  /// An external (environment) function was called; produce its return
  /// value. \p DestAddr is where the value will be stored (0 when the
  /// result is discarded). Default: 0, i.e. a trivial environment.
  virtual int64_t onExternalCall(EvalContext &Ctx, const CallInstr &Call,
                                 Addr DestAddr, ValType RetVT) {
    (void)Ctx;
    (void)Call;
    (void)DestAddr;
    (void)RetVT;
    return 0;
  }

  /// A region [Base, Base+Size) died (frame pop or free()).
  virtual void onRegionDead(Addr Base, uint64_t Size) {
    (void)Base;
    (void)Size;
  }

  virtual ~ExecHooks() = default;
};

/// Outcome of a native library function.
struct NativeResult {
  int64_t Value = 0;
  std::optional<RunError> Error;
};

/// A native library function: black-box C++ code callable from MiniC.
using NativeFn =
    std::function<NativeResult(Interp &, const std::vector<int64_t> &)>;

/// Execution limits and knobs.
struct InterpOptions {
  uint64_t MaxSteps = 1u << 22;      // non-termination budget per run
  unsigned MaxCallDepth = 512;       // recursion budget
  uint64_t HeapLimitBytes = 1u << 26; // malloc beyond this returns NULL
};

class Interp : public EvalContext {
public:
  /// One activation record. Public so snapshots can carry the call stack;
  /// the addresses reference regions of the Memory captured alongside.
  struct Frame {
    const IRFunction *Fn = nullptr;
    unsigned PC = 0;
    std::vector<Addr> SlotAddrs;
    Addr RetDest = 0; // 0 = discard return value
    ValType RetVT = ValType::int32();
  };

  /// Everything needed to re-enter a run mid-execution: the COW memory
  /// image plus the VM registers (pc lives in the frames). Immutable once
  /// captured; copies are O(call depth + memory chunks). Valid for any
  /// Interp over the same IRModule instance (frames hold IRFunction
  /// pointers).
  struct Snapshot {
    Memory::Snapshot Mem;
    std::vector<Frame> Stack;
    std::vector<Addr> GlobalAddrs;
    uint64_t Steps = 0;

    size_t approxBytes() const {
      size_t B = sizeof(*this) + Mem.approxBytes();
      for (const Frame &F : Stack)
        B += sizeof(Frame) + F.SlotAddrs.size() * sizeof(Addr);
      return B;
    }
  };

  /// Incremental snapshot: the memory delta against a caller-maintained
  /// base plus a full copy of the (small) call stack. GlobalAddrs is
  /// immutable within a run, so delta consumers store it once, not per
  /// capture.
  struct SnapshotDelta {
    Memory::SnapshotDelta Mem;
    std::vector<Frame> Stack;
    uint64_t Steps = 0;

    size_t approxBytes() const {
      size_t B = sizeof(*this) + Mem.approxBytes();
      for (const Frame &F : Stack)
        B += sizeof(Frame) + F.SlotAddrs.size() * sizeof(Addr);
      return B;
    }
  };

  Interp(const IRModule &M, InterpOptions Options = {});

  /// Registers a native library function (malloc/free/abort come built in).
  void registerNative(const std::string &Name, NativeFn Fn);
  void setHooks(ExecHooks *H) { Hooks = H; }

  /// Installs a compiled image (shared, read-only) for native-tier
  /// dispatch. Null reverts to pure interpretation. The program must have
  /// been built from this VM's IRModule instance and must outlive the VM.
  void setJit(const jit::JitProgram *P) { Jit = P; }
  const JitRunStats &jitStats() const { return JitStats; }

  /// Calls a program function with the given argument values and runs to
  /// completion (of that call). May be invoked repeatedly; memory persists
  /// across calls within this Interp (= one DART run of depth > 1).
  RunResult callFunction(const std::string &Name,
                         const std::vector<int64_t> &Args);

  /// Two-phase variant for test drivers: pushes the frame and returns the
  /// addresses of its slots — the first NumParams entries are the
  /// parameters (so the driver can bind symbolic inputs to them) — without
  /// starting execution. Returns null if the function is unknown. Must be
  /// followed by finishCall(); the pointer is into the frame and only
  /// valid until the call starts executing.
  const std::vector<Addr> *beginCall(const std::string &Name,
                                     const std::vector<int64_t> &Args);
  /// Same, with the function already resolved — per-call driver loops
  /// hoist the name lookup out of the loop.
  const std::vector<Addr> &beginCall(const IRFunction &Fn,
                                     const std::vector<int64_t> &Args);
  /// Resolves a function of the module by name (null if unknown).
  const IRFunction *findFunction(const std::string &Name) const {
    return M.findFunction(Name);
  }
  /// Executes the frame pushed by beginCall until it returns.
  RunResult finishCall();

  /// Captures the full VM state. Legal at any point, including from inside
  /// a hook fired mid-instruction (the snapshot-resume layer captures at
  /// branch hooks with the pc still on the CondJump).
  Snapshot snapshot() const;

  /// Incremental capture against \p MemBase (advanced in place; see
  /// Memory::snapshotDelta). Legal wherever snapshot() is.
  SnapshotDelta snapshotDelta(Memory::Snapshot &MemBase) const {
    SnapshotDelta D;
    D.Mem = Mem.snapshotDelta(MemBase);
    D.Stack = Stack;
    D.Steps = Steps;
    return D;
  }

  /// Replaces this VM's state with \p S. The VM must have been constructed
  /// over the same IRModule. Follow with finishResumedCall() when the
  /// snapshot was taken mid-call.
  void resume(const Snapshot &S);

  /// Continues executing the call stack installed by resume() until the
  /// outermost restored frame returns (the counterpart of finishCall for a
  /// resumed run).
  RunResult finishResumedCall();

  /// Instructions this VM actually executed — unlike Steps, never
  /// rewound by resume(), so it measures real work done (snapshot stats).
  uint64_t executedSteps() const { return ExecutedSteps; }

  Memory &memory() { return Mem; }
  const IRModule &module() const { return M; }

  /// The live call stack, outermost frame first. Read-only view for
  /// observers (e.g. the points-to soundness property test resolves
  /// concrete addresses to frame slots through it).
  const std::vector<Frame> &frames() const { return Stack; }

  /// Address of global \p Index's storage.
  Addr globalAddr(unsigned Index) const { return GlobalAddrs[Index]; }
  /// All global addresses (immutable between materialization and the next
  /// resume(); the checkpoint layer stores them once per run).
  const std::vector<Addr> &globalAddrs() const { return GlobalAddrs; }

  /// Allocates a heap region honouring the heap limit; 0 (NULL) on
  /// exhaustion — the failure mode behind the paper's oSIP parser attack.
  Addr heapAlloc(uint64_t Size);

  // EvalContext:
  int64_t evalConcrete(const IRExpr *E) override;
  Addr currentSlotAddr(unsigned SlotIndex) override;
  Addr globalBaseAddr(unsigned GlobalIndex) override {
    return GlobalAddrs[GlobalIndex];
  }

private:
  void materializeGlobals();
  /// Core interpreter loop; returns when the frame at \p BaseDepth
  /// returns.
  RunResult runLoop(size_t BaseDepth);
  /// Evaluates a pure expression; on fault sets Err and returns 0.
  int64_t eval(const IRExpr *E, RunError &Err, bool &Failed);
  bool execCall(const CallInstr &Call, RunResult &Result);
  void pushFrame(const IRFunction &Fn, const std::vector<int64_t> &Args,
                 Addr RetDest, ValType RetVT);
  void popFrame();

  const IRModule &M;
  InterpOptions Options;
  Memory Mem;
  std::vector<Addr> GlobalAddrs;
  std::map<std::string, NativeFn> Natives;
  ExecHooks *Hooks = nullptr;
  const jit::JitProgram *Jit = nullptr;
  JitRunStats JitStats;
  std::vector<Frame> Stack;
  /// Spare SlotAddrs buffers from popped frames; pushFrame reuses them so
  /// the per-call push/pop pair stops allocating (short-call random
  /// testing pushes and pops one frame per toplevel call).
  std::vector<std::vector<Addr>> SlotAddrsPool;
  uint64_t Steps = 0;         ///< run-position step counter (restored by resume)
  uint64_t ExecutedSteps = 0; ///< monotone work counter (never restored)
};

} // namespace dart

#endif // DART_INTERP_INTERP_H
