//===- Memory.h - Copy-on-write region RAM for the concrete VM --*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RAM machine's memory M (paper §2.2): a mapping from addresses to
/// bytes. Addresses are 64-bit values encoding (region, offset), where each
/// global variable, stack slot, heap allocation and string literal is its
/// own region. This gives the VM precise detection of the crash classes
/// DART reports: NULL dereference, out-of-bounds access, use-after-free,
/// bad free, and writes to read-only data (§4.3's oSIP crashes are NULL
/// dereferences found exactly this way).
///
/// Storage is copy-on-write to support the snapshot-resume search: the
/// region table is chunked (kRegionsPerChunk regions per refcounted chunk)
/// and region bytes are paged (kPageSize bytes per refcounted page).
/// snapshot() is O(chunks) pointer copies; after a snapshot, the first
/// write to a chunk or page clones just that chunk or page. Snapshots are
/// immutable and may be restored into any Memory of the same module, from
/// any thread (restore clones the COW roots; writers never mutate shared
/// chunks or pages).
///
//===----------------------------------------------------------------------===//

#ifndef DART_INTERP_MEMORY_H
#define DART_INTERP_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dart {

/// A virtual address: (region id + 1) in the high 32 bits, byte offset in
/// the low 32 bits. Address 0 is NULL.
using Addr = uint64_t;

inline Addr makeAddr(uint32_t RegionId, uint32_t Offset) {
  return (static_cast<uint64_t>(RegionId + 1) << 32) | Offset;
}
inline bool isNullAddr(Addr A) { return (A >> 32) == 0; }
inline uint32_t addrRegion(Addr A) {
  return static_cast<uint32_t>(A >> 32) - 1;
}
inline uint32_t addrOffset(Addr A) { return static_cast<uint32_t>(A); }

enum class RegionKind { Global, Stack, Heap };

/// Faults a memory access can raise. These become DART crash reports.
enum class MemFault {
  None,
  NullDeref,     // address with region part 0
  OutOfBounds,   // offset+size exceeds the region
  UseAfterFree,  // region no longer alive
  BadRegion,     // address names a region that never existed
  BadFree,       // free() of a non-heap or non-base pointer
  DoubleFree,    // free() of an already-freed region
  ReadOnlyWrite, // write into a string literal
};

const char *memFaultName(MemFault F);

/// One run's memory. Regions are never recycled within a run, so stale
/// pointers reliably fault instead of aliasing new objects.
class Memory {
public:
  static constexpr uint64_t kPageSize = 256;
  static constexpr size_t kRegionsPerChunk = 32;

  /// Copy-on-write sharing counters (tests and snapshot accounting).
  struct CowStats {
    uint64_t ChunkClones = 0;    ///< region-table chunks copied on write
    uint64_t PageClones = 0;     ///< pages copied on write (incl. the
                                 ///< shared zero page materializing)
    uint64_t SnapshotsTaken = 0;
  };

private:
  struct Page {
    std::array<uint8_t, kPageSize> B{};
  };

  /// A region's page table with page 0 stored inline: stack slots and
  /// scalar globals fit one page, and a fresh table is built per region
  /// on the per-call hot path — keeping the common case out of the heap
  /// removes an allocation per frame slot per call.
  class PageList {
  public:
    void assign(size_t Count, const std::shared_ptr<Page> &P) {
      N = Count;
      One = Count >= 1 ? P : nullptr;
      if (Count > 1)
        Rest.assign(Count - 1, P);
      else
        Rest.clear();
    }
    size_t size() const { return N; }
    std::shared_ptr<Page> &operator[](size_t I) {
      return I == 0 ? One : Rest[I - 1];
    }
    const std::shared_ptr<Page> &operator[](size_t I) const {
      return I == 0 ? One : Rest[I - 1];
    }

  private:
    std::shared_ptr<Page> One;               ///< page 0
    std::vector<std::shared_ptr<Page>> Rest; ///< pages 1.. (large regions)
    size_t N = 0;
  };

  struct Region {
    uint64_t Size = 0;
    RegionKind Kind = RegionKind::Global;
    bool Alive = true;
    bool ReadOnly = false;
    std::string Name;
    PageList Pages; ///< ceil(Size / kPageSize) entries
  };

  struct Chunk {
    std::array<Region, kRegionsPerChunk> R;
  };

public:
  /// An immutable point-in-time image: shared chunk pointers plus the
  /// allocator cursors. Copying one is O(chunks); holding one pins the
  /// pages it references.
  class Snapshot {
    friend class Memory;
    std::vector<std::shared_ptr<Chunk>> Chunks;
    size_t NumRegions = 0;
    uint64_t HeapInUse = 0;

  public:
    /// Incremental footprint estimate (the shared pages are accounted to
    /// whoever dirtied them, not to every snapshot that references them).
    size_t approxBytes() const {
      return sizeof(*this) + Chunks.size() * sizeof(Chunks[0]);
    }
  };

  /// The chunks that changed since a base snapshot — the incremental form
  /// of Snapshot the checkpoint layer stores per entry. A delta chain is
  /// replayed with applyDelta (entry 0's delta is taken against an empty
  /// base, so it is a full image) and adjacent deltas can be merged with
  /// composeDelta when entries are thinned.
  class SnapshotDelta {
    friend class Memory;
    /// (chunk index, chunk) pairs in ascending index order.
    std::vector<std::pair<uint32_t, std::shared_ptr<Chunk>>> Changed;
    uint32_t NumChunks = 0;
    size_t NumRegions = 0;
    uint64_t HeapInUse = 0;

  public:
    size_t changedChunks() const { return Changed.size(); }
    /// Footprint of the delta itself plus the chunk clones it pins.
    size_t approxBytes() const {
      return sizeof(*this) + Changed.size() * (sizeof(Changed[0]) + sizeof(Chunk));
    }
  };

  Memory() = default;
  Memory(const Memory &) = default;
  Memory &operator=(const Memory &) = default;
  /// Returns privately owned chunks to the thread-local recycling pool.
  ~Memory();

  /// Creates a new region of \p Size bytes (zero-filled) and returns its
  /// base address. Zero-size regions are valid (their base can be compared
  /// but not dereferenced).
  Addr allocate(uint64_t Size, RegionKind Kind, std::string Name,
                bool ReadOnly = false);

  /// Releases a heap region. \p Base must be the exact base address.
  MemFault free(Addr Base);

  /// Releases a stack region on frame pop.
  void releaseStack(Addr Base);

  /// Loads \p Size bytes little-endian (no sign extension; the caller
  /// canonicalizes per ValType).
  MemFault load(Addr A, unsigned Size, uint64_t &Out) const;

  /// Stores the low \p Size bytes of \p Value.
  MemFault store(Addr A, unsigned Size, uint64_t Value);

  /// Bytewise copy of \p Size bytes; regions may differ.
  MemFault copy(Addr Dst, Addr Src, uint64_t Size);

  /// Writes a region's initial image, bypassing the read-only flag (used
  /// exactly once per region, at materialization).
  void writeInitialImage(Addr Base, const std::vector<uint8_t> &Bytes);

  /// True if [A, A+Size) is a readable range.
  bool isReadable(Addr A, uint64_t Size) const;

  /// Size of the region containing \p A, if valid.
  uint64_t regionSize(Addr A) const;
  bool isHeapBase(Addr A) const;

  /// Total bytes currently allocated in live heap regions.
  uint64_t heapBytesInUse() const { return HeapInUse; }
  size_t numRegions() const { return NumRegions; }

  /// Captures the current state. O(chunks); nothing is copied until a
  /// subsequent write.
  Snapshot snapshot() const;

  /// Captures the chunks that differ from \p Base and advances \p Base to
  /// the current state. Sound because \p Base holds a reference to every
  /// chunk it records, so any later mutation of one of those chunks goes
  /// through the COW clone path and changes the pointer the next delta
  /// compares against. O(chunks) pointer compares, O(dirty) copies.
  SnapshotDelta snapshotDelta(Snapshot &Base) const;

  /// Replays \p D on top of \p S (which must be the base the delta chain
  /// was taken against — empty for a chain's first delta).
  static void applyDelta(Snapshot &S, const SnapshotDelta &D);

  /// Merges two adjacent deltas of a chain: \p Into becomes
  /// "\p Into then \p Later" (later entries win per chunk index).
  static void composeDelta(SnapshotDelta &Into, SnapshotDelta &&Later);

  /// Rewinds this memory to \p S. Regions allocated after the snapshot
  /// vanish; writes made after it are undone. The snapshot stays valid
  /// (restore adopts its COW roots, it does not consume them).
  void restore(const Snapshot &S);

  const CowStats &cowStats() const { return St; }

  /// Raw host pointer to the byte at \p A, for the JIT's cell table. The
  /// caller (Interp's JIT dispatch) guarantees the region is alive, the
  /// access stays within one page, and read-only regions are never asked
  /// for with \p ForWrite. Writable pointers pin the page private first
  /// (the same COW rule every interpreted store follows), so pointers stay
  /// valid exactly until the next snapshot/restore — the runtime re-derives
  /// them at every native entry.
  uint8_t *jitCellPtr(Addr A, bool ForWrite) {
    uint32_t Off = addrOffset(A);
    size_t PageIndex = Off / kPageSize;
    if (ForWrite) {
      Region &R = mutableRegionAt(addrRegion(A));
      return mutablePage(R, PageIndex) + Off % kPageSize;
    }
    const Region &R = regionAt(addrRegion(A));
    return const_cast<uint8_t *>(R.Pages[PageIndex]->B.data()) +
           Off % kPageSize;
  }

private:
  /// Checks the access and returns the region, or null with \p Fault set.
  const Region *access(Addr A, uint64_t Size, MemFault &Fault) const;

  const Region &regionAt(uint32_t Id) const {
    return Chunks[Id / kRegionsPerChunk]->R[Id % kRegionsPerChunk];
  }
  /// Region slot for mutation; clones the owning chunk if it is shared
  /// with a snapshot (or another Memory resumed from one).
  Region &mutableRegionAt(uint32_t Id);
  /// Writable bytes of one page; clones the page if it is shared.
  uint8_t *mutablePage(Region &R, size_t PageIndex);

  void readBytes(const Region &R, uint64_t Off, uint8_t *Out,
                 uint64_t N) const;
  void writeBytes(Region &R, uint64_t Off, const uint8_t *In, uint64_t N);

  /// The process-wide all-zero page fresh regions start from; never
  /// written (its use_count is always > 1, so writers always clone).
  static const std::shared_ptr<Page> &zeroPage();

  /// Thread-local pool of recycled region-table chunks (see Memory.cpp).
  static std::vector<std::shared_ptr<Chunk>> &chunkPool();
  /// A fresh or recycled chunk for the region table.
  static std::shared_ptr<Chunk> takeChunk();

  std::vector<std::shared_ptr<Chunk>> Chunks;
  size_t NumRegions = 0;
  uint64_t HeapInUse = 0;
  mutable CowStats St;
};

} // namespace dart

#endif // DART_INTERP_MEMORY_H
