//===- Memory.h - Region-based RAM for the concrete VM ---------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RAM machine's memory M (paper §2.2): a mapping from addresses to
/// bytes. Addresses are 64-bit values encoding (region, offset), where each
/// global variable, stack slot, heap allocation and string literal is its
/// own region. This gives the VM precise detection of the crash classes
/// DART reports: NULL dereference, out-of-bounds access, use-after-free,
/// bad free, and writes to read-only data (§4.3's oSIP crashes are NULL
/// dereferences found exactly this way).
///
//===----------------------------------------------------------------------===//

#ifndef DART_INTERP_MEMORY_H
#define DART_INTERP_MEMORY_H

#include <cstdint>
#include <string>
#include <vector>

namespace dart {

/// A virtual address: (region id + 1) in the high 32 bits, byte offset in
/// the low 32 bits. Address 0 is NULL.
using Addr = uint64_t;

inline Addr makeAddr(uint32_t RegionId, uint32_t Offset) {
  return (static_cast<uint64_t>(RegionId + 1) << 32) | Offset;
}
inline bool isNullAddr(Addr A) { return (A >> 32) == 0; }
inline uint32_t addrRegion(Addr A) {
  return static_cast<uint32_t>(A >> 32) - 1;
}
inline uint32_t addrOffset(Addr A) { return static_cast<uint32_t>(A); }

enum class RegionKind { Global, Stack, Heap };

/// Faults a memory access can raise. These become DART crash reports.
enum class MemFault {
  None,
  NullDeref,     // address with region part 0
  OutOfBounds,   // offset+size exceeds the region
  UseAfterFree,  // region no longer alive
  BadRegion,     // address names a region that never existed
  BadFree,       // free() of a non-heap or non-base pointer
  DoubleFree,    // free() of an already-freed region
  ReadOnlyWrite, // store into a string literal
};

const char *memFaultName(MemFault F);

/// One run's memory. Regions are never recycled within a run, so stale
/// pointers reliably fault instead of aliasing new objects.
class Memory {
public:
  /// Creates a new region of \p Size bytes (zero-filled) and returns its
  /// base address. Zero-size regions are valid (their base can be compared
  /// but not dereferenced).
  Addr allocate(uint64_t Size, RegionKind Kind, std::string Name,
                bool ReadOnly = false);

  /// Releases a heap region. \p Base must be the exact base address.
  MemFault free(Addr Base);

  /// Releases a stack region on frame pop.
  void releaseStack(Addr Base);

  /// Loads \p Size bytes little-endian (no sign extension; the caller
  /// canonicalizes per ValType).
  MemFault load(Addr A, unsigned Size, uint64_t &Out) const;

  /// Stores the low \p Size bytes of \p Value.
  MemFault store(Addr A, unsigned Size, uint64_t Value);

  /// Bytewise copy of \p Size bytes; regions may differ.
  MemFault copy(Addr Dst, Addr Src, uint64_t Size);

  /// Writes a region's initial image, bypassing the read-only flag (used
  /// exactly once per region, at materialization).
  void writeInitialImage(Addr Base, const std::vector<uint8_t> &Bytes);

  /// True if [A, A+Size) is a readable range.
  bool isReadable(Addr A, uint64_t Size) const;

  /// Size of the region containing \p A, if valid.
  uint64_t regionSize(Addr A) const;
  bool isHeapBase(Addr A) const;

  /// Total bytes currently allocated in live heap regions.
  uint64_t heapBytesInUse() const { return HeapInUse; }
  size_t numRegions() const { return Regions.size(); }

private:
  struct Region {
    std::vector<uint8_t> Bytes;
    RegionKind Kind;
    std::string Name;
    bool Alive = true;
    bool ReadOnly = false;
  };

  /// Checks the access and returns the region, or null with \p Fault set.
  const Region *access(Addr A, uint64_t Size, MemFault &Fault) const;

  std::vector<Region> Regions;
  uint64_t HeapInUse = 0;
};

} // namespace dart

#endif // DART_INTERP_MEMORY_H
