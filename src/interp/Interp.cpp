//===- Interp.cpp - Concrete VM for the RAM-machine IR ---------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "jit/Jit.h"

#include <algorithm>
#include <cassert>

using namespace dart;

namespace {

/// Resolves a compiled fragment's cell keys to raw host byte pointers.
/// Re-derived at every native entry: write pointers pin pages private (the
/// COW rule), and any snapshot taken between entries re-shares them.
void deriveCells(Memory &Mem, const std::vector<Addr> &GlobalAddrs,
                 const Interp::Frame &F,
                 const std::vector<jit::SlotKey> &Keys, uint8_t **Cells) {
  for (size_t I = 0; I < Keys.size(); ++I) {
    Addr A = Keys[I].IsGlobal ? GlobalAddrs[Keys[I].Index]
                              : F.SlotAddrs[Keys[I].Index];
    Cells[I] = Mem.jitCellPtr(A, Keys[I].Write);
  }
}

/// Step budget handed to a whole-function unit. Clamped so the native
/// signed budget check (`sub rsi, K; js`) never sees a negative input.
constexpr uint64_t kMaxNativeBudget = uint64_t(1) << 30;

} // namespace

std::string RunError::toString() const {
  std::string Out;
  switch (Kind) {
  case RunErrorKind::AbortCall:
    Out = "abort() reached";
    break;
  case RunErrorKind::AssertFailure:
    Out = "assertion violation";
    break;
  case RunErrorKind::MemoryFault:
    Out = memFaultName(Fault);
    break;
  case RunErrorKind::DivByZero:
    Out = "division by zero";
    break;
  case RunErrorKind::DivOverflow:
    Out = "signed division overflow";
    break;
  case RunErrorKind::StepLimit:
    Out = "non-termination (step budget exhausted)";
    break;
  case RunErrorKind::StackOverflow:
    Out = "stack overflow (call depth budget exhausted)";
    break;
  case RunErrorKind::MissingFunction:
    Out = "call to unknown function";
    break;
  }
  if (!Message.empty())
    Out += ": " + Message;
  if (Loc.isValid())
    Out += " at " + Loc.toString();
  return Out;
}

Interp::Interp(const IRModule &M, InterpOptions Options)
    : M(M), Options(Options) {
  // Built-in library functions, overridable via registerNative.
  Natives["malloc"] = [](Interp &I,
                         const std::vector<int64_t> &Args) -> NativeResult {
    int64_t Size = Args.empty() ? 0 : Args[0];
    if (Size <= 0)
      return {0, std::nullopt};
    return {static_cast<int64_t>(I.heapAlloc(static_cast<uint64_t>(Size))),
            std::nullopt};
  };
  Natives["free"] = [](Interp &I,
                       const std::vector<int64_t> &Args) -> NativeResult {
    Addr Base = Args.empty() ? 0 : static_cast<Addr>(Args[0]);
    uint64_t Size = I.memory().regionSize(Base);
    MemFault F = I.memory().free(Base);
    if (F != MemFault::None) {
      RunError E;
      E.Kind = RunErrorKind::MemoryFault;
      E.Fault = F;
      return {0, E};
    }
    if (!isNullAddr(Base) && I.Hooks)
      I.Hooks->onRegionDead(Base, Size);
    return {0, std::nullopt};
  };
  materializeGlobals();
}

void Interp::registerNative(const std::string &Name, NativeFn Fn) {
  Natives[Name] = std::move(Fn);
}

Addr Interp::heapAlloc(uint64_t Size) {
  if (Mem.heapBytesInUse() + Size > Options.HeapLimitBytes)
    return 0; // allocation failure: malloc returns NULL
  return Mem.allocate(Size, RegionKind::Heap, "heap");
}

void Interp::materializeGlobals() {
  for (const IRGlobal &G : M.globals()) {
    Addr Base = Mem.allocate(G.SizeBytes, RegionKind::Global, G.Name,
                             G.ReadOnly);
    if (!G.Init.empty())
      Mem.writeInitialImage(Base, G.Init);
    GlobalAddrs.push_back(Base);
  }
}

Addr Interp::currentSlotAddr(unsigned SlotIndex) {
  assert(!Stack.empty() && "no active frame");
  assert(SlotIndex < Stack.back().SlotAddrs.size() && "bad slot index");
  return Stack.back().SlotAddrs[SlotIndex];
}

int64_t Interp::evalConcrete(const IRExpr *E) {
  RunError Err;
  bool Failed = false;
  int64_t V = eval(E, Err, Failed);
  return Failed ? 0 : V;
}

namespace {

int64_t applyBinary(IRBinOp Op, int64_t L, int64_t R, ValType VT,
                    RunError &Err, bool &Failed) {
  switch (Op) {
  case IRBinOp::Add:
    return VT.canonicalize(static_cast<int64_t>(
        static_cast<uint64_t>(L) + static_cast<uint64_t>(R)));
  case IRBinOp::Sub:
    return VT.canonicalize(static_cast<int64_t>(
        static_cast<uint64_t>(L) - static_cast<uint64_t>(R)));
  case IRBinOp::Mul:
    return VT.canonicalize(static_cast<int64_t>(
        static_cast<uint64_t>(L) * static_cast<uint64_t>(R)));
  case IRBinOp::Div:
  case IRBinOp::Rem: {
    if (R == 0) {
      Err.Kind = RunErrorKind::DivByZero;
      Failed = true;
      return 0;
    }
    if (VT.Signed && L == INT64_MIN && R == -1) {
      Err.Kind = RunErrorKind::DivOverflow;
      Failed = true;
      return 0;
    }
    if (!VT.Signed && !VT.IsPointer) {
      uint64_t UL = static_cast<uint64_t>(L) &
                    ((VT.SizeBytes == 8) ? ~uint64_t(0)
                                         : ((uint64_t(1) << VT.bits()) - 1));
      uint64_t UR = static_cast<uint64_t>(R) &
                    ((VT.SizeBytes == 8) ? ~uint64_t(0)
                                         : ((uint64_t(1) << VT.bits()) - 1));
      uint64_t Res = Op == IRBinOp::Div ? UL / UR : UL % UR;
      return VT.canonicalize(static_cast<int64_t>(Res));
    }
    int64_t Res = Op == IRBinOp::Div ? L / R : L % R;
    return VT.canonicalize(Res);
  }
  case IRBinOp::Shl:
    return VT.canonicalize(static_cast<int64_t>(static_cast<uint64_t>(L)
                                                << (R & (VT.bits() - 1))));
  case IRBinOp::Shr: {
    unsigned Count = static_cast<unsigned>(R & (VT.bits() - 1));
    if (VT.Signed)
      return VT.canonicalize(L >> Count);
    uint64_t Mask = VT.SizeBytes == 8 ? ~uint64_t(0)
                                      : ((uint64_t(1) << VT.bits()) - 1);
    return VT.canonicalize(
        static_cast<int64_t>((static_cast<uint64_t>(L) & Mask) >> Count));
  }
  case IRBinOp::And:
    return VT.canonicalize(L & R);
  case IRBinOp::Or:
    return VT.canonicalize(L | R);
  case IRBinOp::Xor:
    return VT.canonicalize(L ^ R);
  }
  return 0;
}

bool applyCmp(CmpPred Pred, int64_t L, int64_t R, ValType VT) {
  if (VT.IsPointer || !VT.Signed) {
    uint64_t UL = static_cast<uint64_t>(L);
    uint64_t UR = static_cast<uint64_t>(R);
    switch (Pred) {
    case CmpPred::Eq:
      return UL == UR;
    case CmpPred::Ne:
      return UL != UR;
    case CmpPred::Lt:
      return UL < UR;
    case CmpPred::Le:
      return UL <= UR;
    case CmpPred::Gt:
      return UL > UR;
    case CmpPred::Ge:
      return UL >= UR;
    }
  }
  switch (Pred) {
  case CmpPred::Eq:
    return L == R;
  case CmpPred::Ne:
    return L != R;
  case CmpPred::Lt:
    return L < R;
  case CmpPred::Le:
    return L <= R;
  case CmpPred::Gt:
    return L > R;
  case CmpPred::Ge:
    return L >= R;
  }
  return false;
}

} // namespace

int64_t Interp::eval(const IRExpr *E, RunError &Err, bool &Failed) {
  if (Failed)
    return 0;
  switch (E->kind()) {
  case IRExpr::Kind::Const:
    return cast<ConstExpr>(E)->value();
  case IRExpr::Kind::GlobalAddr:
    return static_cast<int64_t>(
        GlobalAddrs[cast<GlobalAddrExpr>(E)->globalIndex()]);
  case IRExpr::Kind::FrameAddr:
    return static_cast<int64_t>(
        currentSlotAddr(cast<FrameAddrExpr>(E)->slotIndex()));
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    Addr A = static_cast<Addr>(eval(L->address(), Err, Failed));
    if (Failed)
      return 0;
    uint64_t Raw = 0;
    MemFault F = Mem.load(A, L->valType().SizeBytes, Raw);
    if (F != MemFault::None) {
      Err.Kind = RunErrorKind::MemoryFault;
      Err.Fault = F;
      Failed = true;
      return 0;
    }
    return L->valType().canonicalize(static_cast<int64_t>(Raw));
  }
  case IRExpr::Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(E);
    int64_t V = eval(U->operand(), Err, Failed);
    if (Failed)
      return 0;
    if (U->op() == IRUnOp::Neg)
      return U->valType().canonicalize(
          static_cast<int64_t>(-static_cast<uint64_t>(V)));
    return U->valType().canonicalize(~V);
  }
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    int64_t L = eval(B->lhs(), Err, Failed);
    int64_t R = eval(B->rhs(), Err, Failed);
    if (Failed)
      return 0;
    return applyBinary(B->op(), L, R, B->valType(), Err, Failed);
  }
  case IRExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(E);
    int64_t L = eval(C->lhs(), Err, Failed);
    int64_t R = eval(C->rhs(), Err, Failed);
    if (Failed)
      return 0;
    return applyCmp(C->pred(), L, R, C->operandValType()) ? 1 : 0;
  }
  case IRExpr::Kind::Cast: {
    const auto *C = cast<CastIRExpr>(E);
    int64_t V = eval(C->operand(), Err, Failed);
    if (Failed)
      return 0;
    return C->valType().canonicalize(V);
  }
  }
  return 0;
}

void Interp::pushFrame(const IRFunction &Fn, const std::vector<int64_t> &Args,
                       Addr RetDest, ValType RetVT) {
  Frame F;
  F.Fn = &Fn;
  F.PC = 0;
  F.RetDest = RetDest;
  F.RetVT = RetVT;
  if (!SlotAddrsPool.empty()) {
    F.SlotAddrs = std::move(SlotAddrsPool.back());
    SlotAddrsPool.pop_back();
    F.SlotAddrs.clear();
  }
  F.SlotAddrs.reserve(Fn.Slots.size());
  for (const FrameSlot &Slot : Fn.Slots)
    // The slot's bare name is enough to identify the region in a debugger,
    // and (unlike a fn.slot concatenation) it copies without allocating —
    // this runs once per slot per call, which dominates short-call
    // workloads.
    F.SlotAddrs.push_back(
        Mem.allocate(Slot.SizeBytes, RegionKind::Stack,
                     Slot.Name.empty() ? std::string("tmp") : Slot.Name));
  Stack.push_back(std::move(F));
  // Parameter values: stored raw here; the caller-side onStore hook has
  // already recorded their symbolic images.
  for (unsigned I = 0; I < Fn.NumParams && I < Args.size(); ++I) {
    ValType VT = Fn.ParamVTs[I];
    Mem.store(Stack.back().SlotAddrs[I], VT.SizeBytes,
              static_cast<uint64_t>(VT.canonicalize(Args[I])));
  }
}

void Interp::popFrame() {
  Frame &F = Stack.back();
  for (size_t I = 0; I < F.SlotAddrs.size(); ++I) {
    Addr Base = F.SlotAddrs[I];
    if (Hooks)
      Hooks->onRegionDead(Base, F.Fn->Slots[I].SizeBytes);
    Mem.releaseStack(Base);
  }
  SlotAddrsPool.push_back(std::move(F.SlotAddrs));
  Stack.pop_back();
}

bool Interp::execCall(const CallInstr &Call, RunResult &Result) {
  RunError Err;
  bool Failed = false;
  std::vector<int64_t> ArgValues;
  ArgValues.reserve(Call.args().size());
  for (const auto &Arg : Call.args()) {
    ArgValues.push_back(eval(Arg.get(), Err, Failed));
    if (Failed) {
      Err.Loc = Call.loc();
      Result.Status = RunStatus::Errored;
      Result.Error = Err;
      return false;
    }
  }

  Addr DestAddr = 0;
  if (Call.destSlot())
    DestAddr = currentSlotAddr(*Call.destSlot());

  // 1. Program function.
  if (const IRFunction *Callee = M.findFunction(Call.callee())) {
    if (Stack.size() >= Options.MaxCallDepth) {
      Result.Status = RunStatus::Errored;
      Result.Error.Kind = RunErrorKind::StackOverflow;
      Result.Error.Loc = Call.loc();
      return false;
    }
    ++Stack.back().PC;
    // Two-phase argument binding: symbolic images are computed while the
    // caller frame is active (argument expressions reference caller
    // slots), then bound to the callee's parameter addresses after the
    // frame is pushed.
    if (Hooks)
      for (size_t I = 0; I < Call.args().size() && I < Callee->NumParams;
           ++I)
        Hooks->onCallArg(*this, Call.args()[I].get(), Callee->ParamVTs[I],
                         Callee->ParamVTs[I].canonicalize(ArgValues[I]),
                         static_cast<unsigned>(I));
    pushFrame(*Callee, ArgValues, DestAddr, Call.retValType());
    if (Hooks)
      for (unsigned I = 0; I < Callee->NumParams && I < ArgValues.size();
           ++I)
        Hooks->onParamBound(currentSlotAddr(I), I, Callee->ParamVTs[I],
                            Callee->ParamVTs[I].canonicalize(ArgValues[I]));
    return true;
  }

  // 2. Native library function (black box).
  auto NativeIt = Natives.find(Call.callee());
  if (NativeIt != Natives.end()) {
    if (Hooks)
      Hooks->onNativeCall(*this, Call, ArgValues);
    NativeResult NR = NativeIt->second(*this, ArgValues);
    if (NR.Error) {
      Result.Status = RunStatus::Errored;
      Result.Error = *NR.Error;
      Result.Error.Loc = Call.loc();
      return false;
    }
    if (DestAddr != 0) {
      ValType VT = Call.retValType();
      Mem.store(DestAddr, VT.SizeBytes,
                static_cast<uint64_t>(VT.canonicalize(NR.Value)));
      if (Hooks)
        Hooks->onStore(*this, DestAddr, VT, /*ValueExpr=*/nullptr,
                       VT.canonicalize(NR.Value));
    }
    ++Stack.back().PC;
    return true;
  }

  // 3. External (environment) function: the hooks model it (paper §3.2's
  // generated stub returning a fresh random value of the return type).
  if (Hooks) {
    ValType VT = Call.retValType();
    int64_t Value = VT.canonicalize(
        Hooks->onExternalCall(*this, Call, DestAddr, VT));
    if (DestAddr != 0)
      Mem.store(DestAddr, VT.SizeBytes, static_cast<uint64_t>(Value));
    ++Stack.back().PC;
    return true;
  }

  Result.Status = RunStatus::Errored;
  Result.Error.Kind = RunErrorKind::MissingFunction;
  Result.Error.Message = Call.callee();
  Result.Error.Loc = Call.loc();
  return false;
}

// Instruction dispatch: with DART_THREADED_DISPATCH (and a compiler that
// has GNU labels-as-values), the hot loop jumps through a computed-goto
// table instead of a switch, giving each opcode its own indirect branch
// for the predictor. MSVC and unknown compilers fall back to the switch —
// the two expansions are statement-for-statement identical (`break` exits
// the do/while exactly as it exits the switch).
#if defined(DART_THREADED_DISPATCH) &&                                         \
    (defined(__GNUC__) || defined(__clang__)) && !defined(_MSC_VER)
#define DART_USE_COMPUTED_GOTO 1
#else
#define DART_USE_COMPUTED_GOTO 0
#endif

#if DART_USE_COMPUTED_GOTO
#define DART_DISPATCH_BEGIN(KIND)                                              \
  do {                                                                         \
    goto *DispatchTbl[static_cast<size_t>(KIND)];
#define DART_CASE(NAME) Op_##NAME:
#define DART_DISPATCH_END                                                      \
  }                                                                            \
  while (0);
#else
#define DART_DISPATCH_BEGIN(KIND) switch (KIND) {
#define DART_CASE(NAME) case Instr::Kind::NAME:
#define DART_DISPATCH_END }
#endif

RunResult Interp::runLoop(size_t BaseDepth) {
  RunResult Result;
  RunError Err;
#if DART_USE_COMPUTED_GOTO
  // Order must match the Instr::Kind declaration.
  static const void *const DispatchTbl[] = {
      &&Op_Store, &&Op_Copy, &&Op_CondJump, &&Op_Jump,
      &&Op_Call,  &&Op_Ret,  &&Op_Abort,    &&Op_Halt};
#endif
  const IRFunction *JitCachedFn = nullptr;
  const jit::FnJit *JitTbl = nullptr;
  while (true) {
    Frame &F = Stack.back();
    assert(F.PC < F.Fn->Instrs.size() && "fell off the instruction stream");

    // Native-tier dispatch. Both paths leave the VM in exactly the state
    // the interpreter would have produced (PC, Steps, memory, hooks fired),
    // so a session is byte-identical with the JIT on or off.
    if (Jit) {
      if (F.Fn != JitCachedFn) {
        JitCachedFn = F.Fn;
        JitTbl = Jit->fnJit(F.Fn);
      }
      if (JitTbl && !Hooks && JitTbl->Unit.Base && Steps < Options.MaxSteps) {
        // Hook-free tier: run the whole function natively until it reaches
        // a non-compilable instruction or the step budget runs dry.
        int32_t Entry = F.PC < JitTbl->Unit.EntryOff.size()
                            ? JitTbl->Unit.EntryOff[F.PC]
                            : -1;
        if (Entry >= 0) {
          uint64_t Budget =
              std::min(Options.MaxSteps - Steps, kMaxNativeBudget);
          uint8_t *Cells[jit::kMaxCells];
          deriveCells(Mem, GlobalAddrs, F, JitTbl->Unit.Keys, Cells);
          auto Unit =
              reinterpret_cast<jit::UnitFn>(JitTbl->Unit.Base + Entry);
          jit::FnExit Exit = Unit(Cells, Budget);
          uint64_t Consumed = Budget - Exit.BudgetLeft;
          Steps += Consumed;
          ExecutedSteps += Consumed;
          F.PC = static_cast<unsigned>(Exit.PC);
          if (Consumed != 0) {
            ++JitStats.BlockEntries;
            JitStats.NativeInstrs += Consumed;
            bool AtNativeEntry = Exit.PC < JitTbl->Unit.EntryOff.size() &&
                                 JitTbl->Unit.EntryOff[Exit.PC] >= 0;
            if (!AtNativeEntry)
              ++JitStats.Deopts;
            continue;
          }
          // Budget below the first straight-line run: nothing retired
          // natively — fall through so the interpreter (owner of the exact
          // per-instruction StepLimit semantics) executes this PC.
        }
      } else if (JitTbl && Hooks && JitTbl->HasBlocks &&
                 F.PC < JitTbl->Blocks.size()) {
        // Hook-safe tier: one block, ending at (not past) any instruction
        // that must reach the instrumentation.
        const jit::CompiledBlock *B = JitTbl->Blocks[F.PC];
        if (B && Steps + B->NumInstrs <= Options.MaxSteps) {
          uint8_t *Cells[jit::kMaxCells];
          deriveCells(Mem, GlobalAddrs, F, B->Keys, Cells);
          int64_t Cond = B->Code(Cells);
          Steps += B->NumInstrs;
          ExecutedSteps += B->NumInstrs;
          ++JitStats.BlockEntries;
          JitStats.NativeInstrs += B->NumInstrs;
          if (B->Kind == jit::CompiledBlock::Term::Jump) {
            F.PC = B->JumpTarget;
            continue;
          }
          if (B->Kind == jit::CompiledBlock::Term::CondBranch) {
            // Hook contract: the pc rests on the CondJump while onBranch
            // runs (checkpoint capture reads it from the frame).
            F.PC = B->TermPC;
            bool Taken = Cond != 0;
            if (!Hooks->onBranch(*this, *B->CJ, Taken)) {
              Result.Status = RunStatus::ForcingMismatch;
              while (Stack.size() > BaseDepth)
                popFrame();
              return Result;
            }
            F.PC = Taken ? B->CJ->trueTarget() : B->CJ->falseTarget();
            continue;
          }
          // FallThrough: deopt to the interpreter at the first
          // non-compilable instruction.
          F.PC = B->TermPC;
          ++JitStats.Deopts;
          continue;
        }
      }
    }

    const Instr &I = *F.Fn->Instrs[F.PC];

    ++ExecutedSteps;
    if (++Steps > Options.MaxSteps) {
      Result.Status = RunStatus::Errored;
      Result.Error.Kind = RunErrorKind::StepLimit;
      Result.Error.Loc = I.loc();
      break;
    }

    bool Failed = false;
    DART_DISPATCH_BEGIN(I.kind())
    DART_CASE(Store) {
      const auto *S = cast<StoreInstr>(&I);
      Addr A = static_cast<Addr>(eval(S->address(), Err, Failed));
      int64_t V = eval(S->value(), Err, Failed);
      if (Failed)
        break;
      ValType VT = S->valType();
      if (Hooks)
        Hooks->onStore(*this, A, VT, S->value(), VT.canonicalize(V));
      MemFault MF = Mem.store(A, VT.SizeBytes,
                              static_cast<uint64_t>(VT.canonicalize(V)));
      if (MF != MemFault::None) {
        Err.Kind = RunErrorKind::MemoryFault;
        Err.Fault = MF;
        Failed = true;
        break;
      }
      ++F.PC;
      break;
    }
    DART_CASE(Copy) {
      const auto *C = cast<CopyInstr>(&I);
      Addr Dst = static_cast<Addr>(eval(C->dst(), Err, Failed));
      Addr Src = static_cast<Addr>(eval(C->src(), Err, Failed));
      if (Failed)
        break;
      if (Hooks)
        Hooks->onCopy(*this, Dst, Src, C->numBytes());
      MemFault MF = Mem.copy(Dst, Src, C->numBytes());
      if (MF != MemFault::None) {
        Err.Kind = RunErrorKind::MemoryFault;
        Err.Fault = MF;
        Failed = true;
        break;
      }
      ++F.PC;
      break;
    }
    DART_CASE(CondJump) {
      const auto *CJ = cast<CondJumpInstr>(&I);
      int64_t V = eval(CJ->cond(), Err, Failed);
      if (Failed)
        break;
      bool Taken = V != 0;
      if (Hooks && !Hooks->onBranch(*this, *CJ, Taken)) {
        Result.Status = RunStatus::ForcingMismatch;
        // Unwind all frames this call created.
        while (Stack.size() > BaseDepth)
          popFrame();
        return Result;
      }
      F.PC = Taken ? CJ->trueTarget() : CJ->falseTarget();
      break;
    }
    DART_CASE(Jump)
      F.PC = cast<JumpInstr>(&I)->target();
      break;
    DART_CASE(Call)
      if (!execCall(*cast<CallInstr>(&I), Result)) {
        if (Result.Status == RunStatus::Errored && !Result.Error.Loc.isValid())
          Result.Error.Loc = I.loc();
        while (Stack.size() > BaseDepth)
          popFrame();
        return Result;
      }
      break;
    DART_CASE(Ret) {
      const auto *R = cast<RetInstr>(&I);
      int64_t Value = 0;
      if (R->value()) {
        Value = eval(R->value(), Err, Failed);
        if (Failed)
          break;
      }
      Addr Dest = F.RetDest;
      ValType RetVT = F.RetVT;
      if (R->value() && Dest != 0 && Hooks)
        Hooks->onStore(*this, Dest, RetVT, R->value(),
                       RetVT.canonicalize(Value));
      bool IsOutermost = Stack.size() == BaseDepth + 1;
      popFrame();
      if (Dest != 0)
        Mem.store(Dest, RetVT.SizeBytes,
                  static_cast<uint64_t>(RetVT.canonicalize(Value)));
      if (IsOutermost) {
        Result.Status = RunStatus::Halted;
        Result.ReturnValue = RetVT.canonicalize(Value);
        Result.Steps = Steps;
        return Result;
      }
      break;
    }
    DART_CASE(Abort) {
      const auto *A = cast<AbortInstr>(&I);
      Result.Status = RunStatus::Errored;
      Result.Error.Kind = A->why() == AbortKind::AssertFailure
                              ? RunErrorKind::AssertFailure
                              : RunErrorKind::AbortCall;
      Result.Error.Loc = I.loc();
      while (Stack.size() > BaseDepth)
        popFrame();
      Result.Steps = Steps;
      return Result;
    }
    DART_CASE(Halt)
      Result.Status = RunStatus::Halted;
      while (Stack.size() > BaseDepth)
        popFrame();
      Result.Steps = Steps;
      return Result;
    DART_DISPATCH_END

    if (Failed) {
      Result.Status = RunStatus::Errored;
      Result.Error = Err;
      Result.Error.Loc = I.loc();
      while (Stack.size() > BaseDepth)
        popFrame();
      Result.Steps = Steps;
      return Result;
    }
  }
  while (Stack.size() > BaseDepth)
    popFrame();
  Result.Steps = Steps;
  return Result;
}

RunResult Interp::callFunction(const std::string &Name,
                               const std::vector<int64_t> &Args) {
  if (!beginCall(Name, Args)) {
    RunResult Result;
    Result.Status = RunStatus::Errored;
    Result.Error.Kind = RunErrorKind::MissingFunction;
    Result.Error.Message = Name;
    return Result;
  }
  return finishCall();
}

const std::vector<Addr> *
Interp::beginCall(const std::string &Name, const std::vector<int64_t> &Args) {
  const IRFunction *Fn = M.findFunction(Name);
  if (!Fn)
    return nullptr;
  return &beginCall(*Fn, Args);
}

const std::vector<Addr> &Interp::beginCall(const IRFunction &Fn,
                                           const std::vector<int64_t> &Args) {
  pushFrame(Fn, Args, /*RetDest=*/0, Fn.RetVT);
  return Stack.back().SlotAddrs;
}

RunResult Interp::finishCall() {
  assert(!Stack.empty() && "finishCall without beginCall");
  return runLoop(Stack.size() - 1);
}

Interp::Snapshot Interp::snapshot() const {
  Snapshot S;
  S.Mem = Mem.snapshot();
  S.Stack = Stack;
  S.GlobalAddrs = GlobalAddrs;
  S.Steps = Steps;
  return S;
}

void Interp::resume(const Snapshot &S) {
  // Replace the state wholesale. The constructor's materializeGlobals()
  // image is discarded: the snapshot's region ids are authoritative (they
  // were assigned by the identical materialization of the recorded run).
  Mem.restore(S.Mem);
  Stack = S.Stack;
  GlobalAddrs = S.GlobalAddrs;
  Steps = S.Steps;
}

RunResult Interp::finishResumedCall() {
  assert(!Stack.empty() && "finishResumedCall without resume");
  // BaseDepth 0: run until the outermost restored frame (the toplevel
  // call the snapshot was taken inside) returns.
  return runLoop(0);
}
