//===- SolverSession.cpp - Incremental push/pop constraint solving ---------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverSession.h"

#include <algorithm>
#include <cassert>

using namespace dart;

namespace {

int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0);
  int64_t Q = A / B;
  if ((A % B != 0) && (A < 0))
    --Q;
  return Q;
}

int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0);
  int64_t Q = A / B;
  if ((A % B != 0) && (A > 0))
    ++Q;
  return Q;
}

uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

SolverSession::SolverSession(
    LinearSolver &Solver, PredArena &Arena,
    const std::function<VarDomain(InputId)> &DomainOf)
    : Solver(Solver), Arena(Arena), DomainOf(DomainOf) {}

void SolverSession::setHint(const std::map<InputId, int64_t> *HintMap) {
  Hint = HintMap;
  ++Solver.Stats.HintSeeds;
}

SolverSession::VarState &SolverSession::touchVar(Frame &F, InputId Id) {
  assert(!F.Touched && "a univariate frame touches at most one variable");
  F.Touched = true;
  F.Var = Id;
  auto It = VarStates.find(Id);
  if (It != VarStates.end()) {
    F.HadPrev = true;
    F.Prev = It->second;
    return It->second;
  }
  F.HadPrev = false;
  VarDomain D = DomainOf(Id);
  return VarStates
      .emplace(Id, VarState{D.Min, D.Max, std::nullopt, {}})
      .first->second;
}

void SolverSession::push(PredId Id) {
  ++Solver.Stats.SessionPushes;
  Frame F;
  F.Id = Id;
  F.PrevFpLo = FpLo;
  F.PrevFpHi = FpHi;

  // Chain the fingerprint: the predicate's id plus the domain of every
  // variable it mentions (Unsat can hinge on domains, exactly why the
  // batch cache key includes them).
  uint64_t H = mix64(uint64_t(Id) + 0x9e3779b97f4a7c15ULL);
  const SymPred &P = Arena.pred(Id);
  for (const auto &[Var, C] : P.LHS.coeffs()) {
    (void)C;
    VarDomain D = DomainOf(Var);
    H = mix64(H ^ mix64(uint64_t(Var)) ^ mix64(uint64_t(D.Min)) ^
              mix64(uint64_t(D.Max) + 0x9e3779b97f4a7c15ULL));
  }
  FpLo = (FpLo ^ H) * 0x100000001b3ULL; // FNV-1a step
  FpHi = mix64(FpHi + H);

  const NormPred *N = Arena.norm(Id);
  if (!N) {
    F.Bad = true;
    ++BadCount;
  } else {
    ++Solver.Stats.NormReused; // normal form computed once, at intern time
    if (N->L.isConstant()) {
      int64_t K = N->L.constant();
      bool Holds = N->R == NormRel::EQ   ? K == 0
                   : N->R == NormRel::NE ? K != 0
                                         : K <= 0;
      if (!Holds) {
        F.ConstFalse = true;
        ++FalseCount;
      }
    } else if (N->L.coeffs().size() > 1) {
      F.Multivar = true;
      ++MultiCount;
    } else {
      InputId Var = N->L.coeffs().begin()->Id;
      int64_t A = N->L.coeffs().begin()->Coeff;
      int64_t K = N->L.constant();
      // Register the variable unconditionally: the batch fast path seeds a
      // VarState (and hence a model entry) for every variable that occurs,
      // even under a vacuous constraint such as an indivisible NE.
      VarState &St = touchVar(F, Var);
      switch (N->R) {
      case NormRel::EQ: {
        if (K % A != 0) {
          F.ConstFalse = true; // a*x == -K has no integer solution
          ++FalseCount;
          break;
        }
        int64_t V = -K / A;
        if (St.Pin && *St.Pin != V) {
          F.ConstFalse = true; // conflicts with an enclosing pin
          ++FalseCount;
          break;
        }
        St.Pin = V;
        break;
      }
      case NormRel::NE:
        if (K % A == 0)
          St.Excluded.insert(-K / A);
        break;
      case NormRel::LE:
        if (A > 0)
          St.Hi = std::min(St.Hi, floorDiv(-K, A));
        else
          St.Lo = std::max(St.Lo, ceilDiv(K, -A));
        break;
      }
    }
  }
  Frames.push_back(std::move(F));
}

void SolverSession::pop() {
  assert(!Frames.empty() && "pop without matching push");
  ++Solver.Stats.SessionPops;
  Frame F = std::move(Frames.back());
  Frames.pop_back();
  FpLo = F.PrevFpLo;
  FpHi = F.PrevFpHi;
  BadCount -= F.Bad;
  FalseCount -= F.ConstFalse;
  MultiCount -= F.Multivar;
  if (F.Touched) {
    if (F.HadPrev)
      VarStates[F.Var] = std::move(F.Prev);
    else
      VarStates.erase(F.Var);
  }
}

SolveStatus
SolverSession::solveImpl(std::map<InputId, int64_t> &Model,
                         const std::map<InputId, int64_t> *HintMap) {
  ++Solver.Stats.SessionSolves;
  Model.clear();

  // Verdict gates mirror the batch path's order: normalization overflow is
  // Unknown before anything else; a multivariate constraint (or a disabled
  // fast path) sends the *whole* system through the batch general path,
  // even if a constant-false conjunct is also in scope — the general path
  // may legitimately answer Unknown where the fast path would say Unsat,
  // and the equivalence contract requires matching it exactly.
  if (BadCount) {
    ++Solver.Stats.Unknown;
    return SolveStatus::Unknown;
  }
  if (MultiCount || !Solver.Options.EnableFastPath) {
    std::vector<SymPred> System;
    System.reserve(Frames.size());
    for (const Frame &F : Frames)
      System.push_back(Arena.pred(F.Id));
    static const std::map<InputId, int64_t> Empty;
    return Solver.solve(System, DomainOf, HintMap ? *HintMap : Empty, Model);
  }
  ++Solver.Stats.FastPathQueries;
  if (FalseCount) {
    ++Solver.Stats.Unsat;
    return SolveStatus::Unsat;
  }

  SessionUnsatCache *Cache = Solver.activeSessionCache();
  if (Cache) {
    if (Cache->contains(FpLo, FpHi)) {
      ++Solver.Stats.SessionCacheHits;
      ++Solver.Stats.Unsat;
      return SolveStatus::Unsat;
    }
    ++Solver.Stats.SessionCacheMisses;
  }
  auto Fail = [&] {
    if (Cache)
      Cache->insert(FpLo, FpHi);
    ++Solver.Stats.Unsat;
    return SolveStatus::Unsat;
  };

  // Identical model construction to the batch fast path: per variable,
  // pin if pinned, else hint / 0 / nearest bound stepped off excluded
  // values.
  for (auto &[Id, St] : VarStates) {
    if (St.Pin) {
      if (*St.Pin < St.Lo || *St.Pin > St.Hi || St.Excluded.count(*St.Pin))
        return Fail();
      Model[Id] = *St.Pin;
      continue;
    }
    if (St.Lo > St.Hi)
      return Fail();
    int64_t Candidate;
    auto HintIt = HintMap ? HintMap->find(Id) : std::map<InputId, int64_t>::const_iterator();
    if (HintMap && HintIt != HintMap->end() && HintIt->second >= St.Lo &&
        HintIt->second <= St.Hi)
      Candidate = HintIt->second;
    else if (St.Lo <= 0 && 0 <= St.Hi)
      Candidate = 0;
    else
      Candidate = St.Lo > 0 ? St.Lo : St.Hi;
    bool Found = false;
    for (int64_t Offset = 0; Offset <= 2 * int64_t(St.Excluded.size()) + 1;
         ++Offset) {
      for (int Sign = 0; Sign < (Offset == 0 ? 1 : 2); ++Sign) {
        int64_t V = Sign == 0 ? Candidate + Offset : Candidate - Offset;
        if (V < St.Lo || V > St.Hi || St.Excluded.count(V))
          continue;
        Model[Id] = V;
        Found = true;
        break;
      }
      if (Found)
        break;
    }
    if (!Found)
      return Fail();
  }
  ++Solver.Stats.Sat;
  return SolveStatus::Sat;
}
