//===- SolverSession.h - Incremental push/pop constraint solving -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An incremental view over LinearSolver for solve_path_constraint's access
/// pattern: one shared prefix conjunction, probed with many single-constraint
/// negations (push(neg b_k) / solve / pop). The batch interface renormalizes
/// and re-propagates the whole conjunction once per candidate — O(n) work
/// per probe; a session keeps the propagated per-variable state (interval,
/// pin, excluded values) alive across probes and undoes exactly one
/// constraint's contribution on pop, so a probe costs O(1) on the
/// univariate fast path.
///
/// Equivalence contract: a session solve of the pushed conjunction returns
/// the *same verdict and, on Sat, the same model* as
/// LinearSolver::solve over the equivalent constraint vector. The fast
/// path's per-variable updates are commutative and idempotent, so
/// incremental accumulation reaches the identical final state; anything
/// outside the fast path (a multivariate constraint in scope, or the fast
/// path disabled) delegates to the batch solver over the reconstructed
/// system. The differential tests pin this down: engines running with
/// `IncrementalSessions` on and off must produce identical bug sets,
/// coverage, and run counts.
///
/// Unsat probes are memoized in a SessionUnsatCache keyed on a chained
/// 128-bit fingerprint of (pushed predicate ids + their variables'
/// domains) — O(1) lookups with no canonical-string construction. Only
/// hint-independent Unsat verdicts are cached, mirroring SolverQueryCache.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SOLVER_SOLVERSESSION_H
#define DART_SOLVER_SOLVERSESSION_H

#include "solver/LinearSolver.h"
#include "symbolic/PredArena.h"

#include <map>
#include <set>
#include <vector>

namespace dart {

class SolverSession {
public:
  /// Binds to \p Solver's options, stats, and caches. \p DomainOf must
  /// outlive the session and stay constant while it is in use (domains are
  /// folded into fingerprints at push time).
  SolverSession(LinearSolver &Solver, PredArena &Arena,
                const std::function<VarDomain(InputId)> &DomainOf);

  /// Installs the preferred-value assignment used by solve(). Not owned;
  /// pass nullptr for none. Counted in SolverStats::HintSeeds — the hint
  /// is seeded once per candidate batch, not once per candidate.
  void setHint(const std::map<InputId, int64_t> *Hint);

  /// Pushes one conjunct (by arena id) onto the session.
  void push(PredId Id);
  /// Undoes the most recent push.
  void pop();
  size_t depth() const { return Frames.size(); }

  /// Solves the pushed conjunction with the installed hint.
  SolveStatus solve(std::map<InputId, int64_t> &Model) {
    return solveImpl(Model, Hint);
  }
  /// Solves ignoring the hint (the unrealizable-model retry of
  /// solveCandidates).
  SolveStatus solveNoHint(std::map<InputId, int64_t> &Model) {
    return solveImpl(Model, nullptr);
  }

  /// Current fingerprint lanes (exposed for tests).
  uint64_t fingerprintLo() const { return FpLo; }
  uint64_t fingerprintHi() const { return FpHi; }

private:
  /// Mirror of the batch fast path's per-variable accumulator.
  struct VarState {
    int64_t Lo = 0, Hi = 0;
    std::optional<int64_t> Pin;
    std::set<int64_t> Excluded;
  };

  struct Frame {
    PredId Id = kNoPred;
    uint64_t PrevFpLo = 0, PrevFpHi = 0;
    /// Normalization overflowed: the conjunction is Unknown while pushed.
    bool Bad = false;
    /// Constraint is false regardless of assignment (false constant,
    /// indivisible equality, pin conflict with an enclosing frame): Unsat
    /// while pushed — pin conflicts are scoped correctly because the frame
    /// that set the pin is, by stack discipline, still pushed.
    bool ConstFalse = false;
    /// Mentions >1 variable: solves delegate to the batch general path.
    bool Multivar = false;
    /// Undo record for the one variable this frame touched.
    bool Touched = false;
    InputId Var = 0;
    bool HadPrev = false;
    VarState Prev;
  };

  SolveStatus solveImpl(std::map<InputId, int64_t> &Model,
                        const std::map<InputId, int64_t> *HintMap);
  VarState &touchVar(Frame &F, InputId Id);

  LinearSolver &Solver;
  PredArena &Arena;
  const std::function<VarDomain(InputId)> &DomainOf;
  const std::map<InputId, int64_t> *Hint = nullptr;

  std::vector<Frame> Frames;
  std::map<InputId, VarState> VarStates;
  unsigned BadCount = 0, FalseCount = 0, MultiCount = 0;
  /// Chained fingerprint lanes; each frame stores the previous values so
  /// pop restores them exactly.
  uint64_t FpLo = 0xcbf29ce484222325ULL; // FNV offset basis
  uint64_t FpHi = 0x9e3779b97f4a7c15ULL;
};

} // namespace dart

#endif // DART_SOLVER_SOLVERSESSION_H
