//===- LinearSolver.h - Linear integer constraint solving -------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint solver DART calls from solve_path_constraint (paper
/// Fig. 5). The original used lp_solve; this is a from-scratch solver for
/// conjunctions of linear integer constraints over bounded input variables:
///
///   1. normalization to `L == 0`, `L != 0`, `L <= 0` over ideal integers,
///   2. a *fast path* for systems where every constraint is univariate
///      (the overwhelmingly common case for input-filtering code): interval
///      plus excluded-value propagation per variable,
///   3. the general case: equality substitution (unit-coefficient pivots),
///      Fourier–Motzkin elimination over the inequalities with exact
///      128-bit intermediate arithmetic, integer back-substitution, and
///      branching on violated disequalities.
///
/// The solver prefers values from a *hint* assignment (the previous run's
/// inputs) so solutions change as little as possible between runs — the
/// behaviour §2.5 of the paper relies on ("another input with the same
/// positive value of x but with y==10").
///
/// Results are Sat (with a model), Unsat, or Unknown (resource caps hit;
/// DART treats Unknown like Unsat, which only costs completeness — errors
/// found remain sound, Theorem 1(a)).
///
//===----------------------------------------------------------------------===//

#ifndef DART_SOLVER_LINEARSOLVER_H
#define DART_SOLVER_LINEARSOLVER_H

#include "symbolic/SymExpr.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dart {

enum class SolveStatus { Sat, Unsat, Unknown };

/// Inclusive variable domain.
struct VarDomain {
  int64_t Min = INT32_MIN;
  int64_t Max = INT32_MAX;
};

struct SolverOptions {
  /// Use the univariate fast path when applicable (ablation lever).
  bool EnableFastPath = true;
  /// Max disequality branch depth.
  unsigned MaxBranchDepth = 24;
  /// Cap on Fourier–Motzkin-generated constraints before giving up.
  size_t MaxDerivedConstraints = 8192;
  /// Memoize Unsat verdicts keyed on the normalized conjunction (plus the
  /// domains of its variables). Speculative frontier solving makes
  /// overlapping prefixes the common case, so the same doomed negation is
  /// asked over and over; Unsat does not depend on the hint, so the verdict
  /// is safe to replay. Sat results are never cached (their model prefers
  /// the caller's hint).
  bool EnableQueryCache = true;
  /// Solve candidate negations through an incremental SolverSession
  /// (push/pop against the shared prefix) instead of renormalizing the
  /// whole conjunction per candidate. Behaviourally identical to the batch
  /// path — this is a pure performance/ablation lever.
  bool IncrementalSessions = true;
  /// Sliced candidate queries (--slice): solveCandidates sends only the
  /// union-find closure of path-constraint conjuncts sharing inputs with
  /// the negated predicate; inputs outside the slice keep their previous
  /// concrete values (solution completion). Observably identical to
  /// unsliced — same verdicts, bugs, coverage, run schedules — only the
  /// per-query constraint count changes; off = ablation baseline.
  bool SliceQueries = true;
};

struct SolverStats {
  uint64_t Queries = 0;
  uint64_t FastPathQueries = 0;
  uint64_t Sat = 0;
  uint64_t Unsat = 0;
  uint64_t Unknown = 0;
  uint64_t FMEliminations = 0;
  uint64_t DisequalityBranches = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Predicate normalizations actually performed (batch path normalizes
  /// once per constraint per query; sessions normalize once per push).
  uint64_t Normalizations = 0;
  /// Normalizations skipped because a session (or the arena) already held
  /// the normal form.
  uint64_t NormReused = 0;
  /// Incremental-session traffic.
  uint64_t SessionPushes = 0;
  uint64_t SessionPops = 0;
  uint64_t SessionSolves = 0;
  uint64_t SessionCacheHits = 0;
  uint64_t SessionCacheMisses = 0;
  /// Hint assignments constructed by solveCandidates (one per batch after
  /// the hoist; previously one per candidate).
  uint64_t HintSeeds = 0;
  /// Query-size accounting (--stats histogram, BENCH_slice.json): one
  /// sample per candidate-negation solve, recording the full prefix
  /// conjunct count and the count actually sent (equal when slicing is
  /// off). Bucket B counts queries of exactly B predicates; the last
  /// bucket absorbs everything >= kQuerySizeBuckets-1.
  static constexpr size_t kQuerySizeBuckets = 129;
  std::array<uint64_t, kQuerySizeBuckets> QuerySizeFull{};
  std::array<uint64_t, kQuerySizeBuckets> QuerySizeSent{};
  uint64_t SlicedQueries = 0;    ///< queries whose sent set was a strict
                                 ///< subset of the full prefix
  uint64_t SliceFullPreds = 0;   ///< sum of full prefix sizes
  uint64_t SliceSentPreds = 0;   ///< sum of sent (sliced) sizes

  /// Median of a query-size histogram (0 when empty).
  static double histogramMedian(
      const std::array<uint64_t, kQuerySizeBuckets> &H);

  /// Accumulates \p Other into this (parallel per-worker stats merge).
  void merge(const SolverStats &Other);
};

/// Thread-safe Unsat-verdict cache, shareable between LinearSolver
/// instances (one per worker in the parallel engine). Sharded by key hash
/// so concurrent workers rarely contend on the same mutex.
class SolverQueryCache {
public:
  /// Returns the cached verdict for \p Key, if any.
  std::optional<SolveStatus> lookup(const std::string &Key);
  /// Records \p Status under \p Key. Only Unsat is worth storing; the
  /// caller enforces that.
  void insert(const std::string &Key, SolveStatus Status);
  /// Total entries across all shards (diagnostics).
  size_t size();

private:
  static constexpr size_t NumShards = 16;
  /// Per-shard entry cap; a shard that grows past this is cleared (the
  /// cache is a pure memoization, dropping it is always correct).
  static constexpr size_t MaxEntriesPerShard = 1 << 16;
  struct Shard {
    std::mutex M;
    std::unordered_map<std::string, SolveStatus> Map;
  };
  std::array<Shard, NumShards> Shards;
};

/// Thread-safe Unsat cache for incremental sessions, keyed on a 128-bit
/// fingerprint (prefix-session fingerprint chained with the negated
/// predicate's id and the domains involved) instead of a canonical string —
/// lookups are O(1) with no key construction. Like SolverQueryCache it is
/// pure memoization of hint-independent Unsat verdicts, so dropping or
/// overwriting entries is always correct.
class SessionUnsatCache {
public:
  /// True if \p the fingerprint (Lo, Hi) is a known-Unsat query.
  bool contains(uint64_t Lo, uint64_t Hi);
  /// Records the fingerprint of an Unsat query.
  void insert(uint64_t Lo, uint64_t Hi);
  /// Total entries across all shards (diagnostics).
  size_t size();

private:
  static constexpr size_t NumShards = 16;
  static constexpr size_t MaxEntriesPerShard = 1 << 16;
  struct Shard {
    std::mutex M;
    /// Lo lane -> Hi lane. A Lo collision with a differing Hi behaves as
    /// absent (and is overwritten), so a real 128-bit match is required for
    /// a hit.
    std::unordered_map<uint64_t, uint64_t> Map;
  };
  std::array<Shard, NumShards> Shards;
};

/// Solves conjunctions of SymPreds. Stateless between queries apart from
/// statistics and the (semantics-free) query cache.
class LinearSolver {
public:
  explicit LinearSolver(SolverOptions Options = {}) : Options(Options) {}

  /// Solves /\ Constraints. \p DomainOf supplies each variable's bounds;
  /// \p Hint (may be empty) supplies preferred values. On Sat, \p Model
  /// holds a value for every variable that occurs in the constraints.
  SolveStatus solve(const std::vector<SymPred> &Constraints,
                    const std::function<VarDomain(InputId)> &DomainOf,
                    const std::map<InputId, int64_t> &Hint,
                    std::map<InputId, int64_t> &Model);

  /// Routes cache traffic to \p Cache (not owned) instead of this solver's
  /// private cache, so workers deduplicate Unsat work across threads.
  void setSharedCache(SolverQueryCache *Cache) { SharedCache = Cache; }

  /// Same sharing story for the fingerprint-keyed session cache.
  void setSharedSessionCache(SessionUnsatCache *Cache) {
    SharedSessionCache = Cache;
  }

  const SolverOptions &options() const { return Options; }

  /// Records one candidate-negation query's size before/after slicing
  /// (equal sizes when slicing is off) for the --stats histogram.
  void noteQuerySlice(size_t FullPreds, size_t SentPreds) {
    ++Stats.QuerySizeFull[std::min(FullPreds,
                                   SolverStats::kQuerySizeBuckets - 1)];
    ++Stats.QuerySizeSent[std::min(SentPreds,
                                   SolverStats::kQuerySizeBuckets - 1)];
    if (SentPreds != FullPreds)
      ++Stats.SlicedQueries;
    Stats.SliceFullPreds += FullPreds;
    Stats.SliceSentPreds += SentPreds;
  }

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

private:
  friend class SolverSession;

  SolverQueryCache *activeCache();
  SessionUnsatCache *activeSessionCache();

  SolverOptions Options;
  SolverStats Stats;
  SolverQueryCache *SharedCache = nullptr;
  std::unique_ptr<SolverQueryCache> OwnCache;
  SessionUnsatCache *SharedSessionCache = nullptr;
  std::unique_ptr<SessionUnsatCache> OwnSessionCache;
};

} // namespace dart

#endif // DART_SOLVER_LINEARSOLVER_H
