//===- LinearSolver.h - Linear integer constraint solving -------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint solver DART calls from solve_path_constraint (paper
/// Fig. 5). The original used lp_solve; this is a from-scratch solver for
/// conjunctions of linear integer constraints over bounded input variables:
///
///   1. normalization to `L == 0`, `L != 0`, `L <= 0` over ideal integers,
///   2. a *fast path* for systems where every constraint is univariate
///      (the overwhelmingly common case for input-filtering code): interval
///      plus excluded-value propagation per variable,
///   3. the general case: equality substitution (unit-coefficient pivots),
///      Fourier–Motzkin elimination over the inequalities with exact
///      128-bit intermediate arithmetic, integer back-substitution, and
///      branching on violated disequalities.
///
/// The solver prefers values from a *hint* assignment (the previous run's
/// inputs) so solutions change as little as possible between runs — the
/// behaviour §2.5 of the paper relies on ("another input with the same
/// positive value of x but with y==10").
///
/// Results are Sat (with a model), Unsat, or Unknown (resource caps hit;
/// DART treats Unknown like Unsat, which only costs completeness — errors
/// found remain sound, Theorem 1(a)).
///
//===----------------------------------------------------------------------===//

#ifndef DART_SOLVER_LINEARSOLVER_H
#define DART_SOLVER_LINEARSOLVER_H

#include "symbolic/SymExpr.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace dart {

enum class SolveStatus { Sat, Unsat, Unknown };

/// Inclusive variable domain.
struct VarDomain {
  int64_t Min = INT32_MIN;
  int64_t Max = INT32_MAX;
};

struct SolverOptions {
  /// Use the univariate fast path when applicable (ablation lever).
  bool EnableFastPath = true;
  /// Max disequality branch depth.
  unsigned MaxBranchDepth = 24;
  /// Cap on Fourier–Motzkin-generated constraints before giving up.
  size_t MaxDerivedConstraints = 8192;
};

struct SolverStats {
  uint64_t Queries = 0;
  uint64_t FastPathQueries = 0;
  uint64_t Sat = 0;
  uint64_t Unsat = 0;
  uint64_t Unknown = 0;
  uint64_t FMEliminations = 0;
  uint64_t DisequalityBranches = 0;
};

/// Solves conjunctions of SymPreds. Stateless between queries apart from
/// statistics.
class LinearSolver {
public:
  explicit LinearSolver(SolverOptions Options = {}) : Options(Options) {}

  /// Solves /\ Constraints. \p DomainOf supplies each variable's bounds;
  /// \p Hint (may be empty) supplies preferred values. On Sat, \p Model
  /// holds a value for every variable that occurs in the constraints.
  SolveStatus solve(const std::vector<SymPred> &Constraints,
                    const std::function<VarDomain(InputId)> &DomainOf,
                    const std::map<InputId, int64_t> &Hint,
                    std::map<InputId, int64_t> &Model);

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

private:
  SolverOptions Options;
  SolverStats Stats;
};

} // namespace dart

#endif // DART_SOLVER_LINEARSOLVER_H
