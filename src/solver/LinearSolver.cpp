//===- LinearSolver.cpp - Linear integer constraint solving ----------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/LinearSolver.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

using namespace dart;

namespace {

using I128 = __int128;

/// Normalization (EQ/NE/LE over ideal integers) lives in src/symbolic as
/// NormPred/normalizePred so the predicate-interning arena can cache normal
/// forms; these aliases keep the solver code reading as before.
using Rel = NormRel;
using Norm = NormPred;

int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0);
  int64_t Q = A / B;
  if ((A % B != 0) && (A < 0))
    --Q;
  return Q;
}

int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0);
  int64_t Q = A / B;
  if ((A % B != 0) && (A > 0))
    ++Q;
  return Q;
}

bool fitsI64(I128 V) { return V >= INT64_MIN && V <= INT64_MAX; }

/// Canonical key of a normalized conjunction: per-constraint strings,
/// sorted and deduplicated (conjunction is order- and
/// duplication-insensitive), followed by the domain of every variable
/// (Unsat can hinge on domains: `x == 5` is Unsat over {0,1}).
std::string cacheKey(const std::vector<Norm> &Norms,
                     const std::set<InputId> &Vars,
                     const std::function<VarDomain(InputId)> &DomainOf) {
  std::vector<std::string> Parts;
  Parts.reserve(Norms.size());
  for (const Norm &N : Norms) {
    std::string P;
    P += N.R == Rel::EQ ? 'e' : N.R == Rel::NE ? 'n' : 'l';
    P += std::to_string(N.L.constant());
    for (const auto &[Id, C] : N.L.coeffs()) {
      P += ' ';
      P += std::to_string(Id);
      P += '*';
      P += std::to_string(C);
    }
    Parts.push_back(std::move(P));
  }
  std::sort(Parts.begin(), Parts.end());
  Parts.erase(std::unique(Parts.begin(), Parts.end()), Parts.end());
  std::string Key;
  for (const std::string &P : Parts) {
    Key += P;
    Key += ';';
  }
  for (InputId Id : Vars) {
    VarDomain D = DomainOf(Id);
    Key += std::to_string(Id);
    Key += ':';
    Key += std::to_string(D.Min);
    Key += ',';
    Key += std::to_string(D.Max);
    Key += '|';
  }
  return Key;
}

/// The recursive core solver.
class Core {
public:
  Core(const SolverOptions &Options, SolverStats &Stats,
       const std::function<VarDomain(InputId)> &DomainOf,
       const std::map<InputId, int64_t> &Hint)
      : Options(Options), Stats(Stats), DomainOf(DomainOf), Hint(Hint) {}

  SolveStatus solve(std::vector<Norm> Constraints,
                    std::map<InputId, int64_t> &Model, unsigned Depth);

private:
  std::optional<int64_t> hintFor(InputId Id) const {
    auto It = Hint.find(Id);
    if (It == Hint.end())
      return std::nullopt;
    return It->second;
  }

  /// Picks a value in [Lo, Hi], preferring the hint, then 0, then the
  /// closest bound.
  int64_t pickValue(InputId Id, int64_t Lo, int64_t Hi) const {
    if (auto H = hintFor(Id))
      if (*H >= Lo && *H <= Hi)
        return *H;
    if (Lo <= 0 && 0 <= Hi)
      return 0;
    return Lo > 0 ? Lo : Hi;
  }

  const SolverOptions &Options;
  SolverStats &Stats;
  const std::function<VarDomain(InputId)> &DomainOf;
  const std::map<InputId, int64_t> &Hint;
};

SolveStatus Core::solve(std::vector<Norm> Constraints,
                        std::map<InputId, int64_t> &Model, unsigned Depth) {
  // --- Phase 1: equality substitution -----------------------------------
  // Bindings are applied in reverse at the end: Var = Expr over survivors.
  std::vector<std::pair<InputId, LinearExpr>> Bindings;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Constraints.size(); ++I) {
      Norm &C = Constraints[I];
      if (C.R != Rel::EQ)
        continue;
      if (C.L.isConstant()) {
        if (C.L.constant() != 0)
          return SolveStatus::Unsat;
        Constraints.erase(Constraints.begin() + I);
        Changed = true;
        break;
      }
      // GCD feasibility: gcd of coefficients must divide the constant.
      int64_t G = 0;
      for (const auto &[Id, Coef] : C.L.coeffs()) {
        (void)Id;
        G = std::gcd(G, Coef < 0 ? -Coef : Coef);
      }
      if (G > 1 && C.L.constant() % G != 0)
        return SolveStatus::Unsat;
      // Find a unit-coefficient pivot.
      InputId Pivot = 0;
      int64_t PivotCoef = 0;
      for (const auto &[Id, Coef] : C.L.coeffs()) {
        if (Coef == 1 || Coef == -1) {
          Pivot = Id;
          PivotCoef = Coef;
          break;
        }
      }
      if (PivotCoef == 0)
        continue; // leave for FM as two inequalities
      // Pivot*x + Rest == 0  =>  x = -PivotCoef * Rest.
      LinearExpr Rest = C.L;
      {
        // Remove the pivot term: Rest = C.L - PivotCoef*x.
        auto PivotTerm = LinearExpr::variable(Pivot).scale(PivotCoef);
        auto R = C.L.sub(*PivotTerm);
        if (!R)
          return SolveStatus::Unknown;
        Rest = *R;
      }
      auto Subst = Rest.scale(-PivotCoef);
      if (!Subst)
        return SolveStatus::Unknown;
      Bindings.emplace_back(Pivot, *Subst);
      // Substitute into every other constraint.
      std::vector<Norm> Rewritten;
      Rewritten.reserve(Constraints.size() - 1);
      for (size_t J = 0; J < Constraints.size(); ++J) {
        if (J == I)
          continue;
        const Norm &D = Constraints[J];
        int64_t Coef = D.L.coeff(Pivot);
        if (Coef == 0) {
          Rewritten.push_back(D);
          continue;
        }
        auto Term = LinearExpr::variable(Pivot).scale(Coef);
        auto WithoutVar = D.L.sub(*Term);
        if (!WithoutVar)
          return SolveStatus::Unknown;
        auto Scaled = Subst->scale(Coef);
        if (!Scaled)
          return SolveStatus::Unknown;
        auto NewL = WithoutVar->add(*Scaled);
        if (!NewL)
          return SolveStatus::Unknown;
        Rewritten.push_back(Norm{D.R, std::move(*NewL)});
      }
      // Domain bounds of the substituted variable become inequalities.
      VarDomain Dom = DomainOf(Pivot);
      if (auto Lower = LinearExpr(Dom.Min).sub(*Subst)) // Min - x <= 0
        Rewritten.push_back(Norm{Rel::LE, std::move(*Lower)});
      else
        return SolveStatus::Unknown;
      if (auto Upper = Subst->sub(LinearExpr(Dom.Max))) // x - Max <= 0
        Rewritten.push_back(Norm{Rel::LE, std::move(*Upper)});
      else
        return SolveStatus::Unknown;
      Constraints = std::move(Rewritten);
      Changed = true;
      break;
    }
  }

  // Remaining equalities (no unit pivot): relax to a pair of inequalities.
  {
    std::vector<Norm> Expanded;
    for (Norm &C : Constraints) {
      if (C.R != Rel::EQ) {
        Expanded.push_back(std::move(C));
        continue;
      }
      auto Neg = C.L.negate();
      if (!Neg)
        return SolveStatus::Unknown;
      Expanded.push_back(Norm{Rel::LE, C.L});
      Expanded.push_back(Norm{Rel::LE, std::move(*Neg)});
    }
    Constraints = std::move(Expanded);
  }

  // --- Phase 2: split inequalities / disequalities ------------------------
  std::vector<LinearExpr> Ineqs; // each: L <= 0
  std::vector<LinearExpr> Nes;   // each: L != 0
  std::set<InputId> Vars;
  for (Norm &C : Constraints) {
    for (InputId Id : C.L.inputs())
      Vars.insert(Id);
    if (C.R == Rel::LE)
      Ineqs.push_back(std::move(C.L));
    else
      Nes.push_back(std::move(C.L));
  }
  // Add domain bounds for every surviving variable.
  for (InputId Id : Vars) {
    VarDomain Dom = DomainOf(Id);
    LinearExpr X = LinearExpr::variable(Id);
    if (auto Upper = X.sub(LinearExpr(Dom.Max)))
      Ineqs.push_back(std::move(*Upper));
    if (auto Lower = LinearExpr(Dom.Min).sub(X))
      Ineqs.push_back(std::move(*Lower));
  }

  // --- Phase 3: Fourier–Motzkin elimination -------------------------------
  // Elimination order: variable with the fewest occurrences first.
  std::vector<InputId> Order(Vars.begin(), Vars.end());
  std::stable_sort(Order.begin(), Order.end(), [&](InputId A, InputId B) {
    auto CountOcc = [&](InputId Id) {
      size_t N = 0;
      for (const LinearExpr &L : Ineqs)
        if (L.coeff(Id) != 0)
          ++N;
      return N;
    };
    return CountOcc(A) < CountOcc(B);
  });

  struct EliminationRecord {
    InputId Var;
    std::vector<LinearExpr> Uppers; // coeff > 0: a*x + r <= 0
    std::vector<LinearExpr> Lowers; // coeff < 0
  };
  std::vector<EliminationRecord> Records;

  for (InputId X : Order) {
    ++Stats.FMEliminations;
    EliminationRecord Rec;
    Rec.Var = X;
    std::vector<LinearExpr> Rest;
    for (LinearExpr &L : Ineqs) {
      int64_t C = L.coeff(X);
      if (C > 0)
        Rec.Uppers.push_back(std::move(L));
      else if (C < 0)
        Rec.Lowers.push_back(std::move(L));
      else
        Rest.push_back(std::move(L));
    }
    // Combine each (upper, lower) pair to eliminate X.
    for (const LinearExpr &U : Rec.Uppers) {
      for (const LinearExpr &Lo : Rec.Lowers) {
        int64_t A = U.coeff(X);       // > 0
        int64_t B = -Lo.coeff(X);     // > 0
        // B*U + A*Lo has no X term. Compute with 128-bit intermediates.
        LinearExpr Combined;
        bool Overflow = false;
        std::set<InputId> Keys;
        for (const auto &[Id, C] : U.coeffs())
          (void)C, Keys.insert(Id);
        for (const auto &[Id, C] : Lo.coeffs())
          (void)C, Keys.insert(Id);
        Keys.erase(X);
        LinearExpr Result;
        {
          I128 K = I128(B) * U.constant() + I128(A) * Lo.constant();
          if (!fitsI64(K)) {
            Overflow = true;
          } else {
            Result = LinearExpr(static_cast<int64_t>(K));
            for (InputId Id : Keys) {
              I128 C = I128(B) * U.coeff(Id) + I128(A) * Lo.coeff(Id);
              if (!fitsI64(C)) {
                Overflow = true;
                break;
              }
              if (C != 0) {
                auto T = LinearExpr::variable(Id).scale(
                    static_cast<int64_t>(C));
                auto Sum = Result.add(*T);
                if (!Sum) {
                  Overflow = true;
                  break;
                }
                Result = *Sum;
              }
            }
          }
        }
        (void)Combined;
        if (Overflow)
          return SolveStatus::Unknown;
        Rest.push_back(std::move(Result));
        if (Rest.size() > Options.MaxDerivedConstraints)
          return SolveStatus::Unknown;
      }
    }
    Ineqs = std::move(Rest);
    Records.push_back(std::move(Rec));
  }

  // Variable-free residue: every constant must satisfy <= 0.
  for (const LinearExpr &L : Ineqs) {
    assert(L.isConstant() && "FM left a variable behind");
    if (L.constant() > 0)
      return SolveStatus::Unsat;
  }

  // --- Phase 4: integer back-substitution ---------------------------------
  std::map<InputId, int64_t> Assign;
  auto ValueOf = [&](InputId Id) {
    auto It = Assign.find(Id);
    assert(It != Assign.end() && "back-substitution order violated");
    return It->second;
  };
  for (auto It = Records.rbegin(); It != Records.rend(); ++It) {
    int64_t Lo = INT64_MIN, Hi = INT64_MAX;
    for (const LinearExpr &U : It->Uppers) {
      // a*x + r <= 0  =>  x <= floor(-r / a)
      int64_t A = U.coeff(It->Var);
      auto Term = LinearExpr::variable(It->Var).scale(A);
      auto R = U.sub(*Term);
      if (!R)
        return SolveStatus::Unknown;
      int64_t RVal = R->evaluate(ValueOf);
      Hi = std::min(Hi, floorDiv(-RVal, A));
    }
    for (const LinearExpr &L : It->Lowers) {
      // -b*x + r <= 0  =>  x >= ceil(r / b)
      int64_t B = -L.coeff(It->Var);
      auto Term = LinearExpr::variable(It->Var).scale(-B);
      auto R = L.sub(*Term);
      if (!R)
        return SolveStatus::Unknown;
      int64_t RVal = R->evaluate(ValueOf);
      Lo = std::max(Lo, ceilDiv(RVal, B));
    }
    if (Lo > Hi) {
      // Rationally feasible but integrally infeasible along this path
      // (FM's "dark shadow" gap). Rare with unit coefficients; give up
      // rather than search exhaustively.
      return SolveStatus::Unknown;
    }
    Assign[It->Var] = pickValue(It->Var, Lo, Hi);
  }

  // Apply equality bindings in reverse order.
  for (auto It = Bindings.rbegin(); It != Bindings.rend(); ++It)
    Assign[It->first] = It->second.evaluate(ValueOf);

  // --- Phase 5: disequality check / branch --------------------------------
  for (const LinearExpr &Ne : Nes) {
    if (Ne.evaluate(ValueOf) != 0)
      continue;
    if (Depth >= Options.MaxBranchDepth)
      return SolveStatus::Unknown;
    ++Stats.DisequalityBranches;
    // Branch: Ne + 1 <= 0 (Ne < 0)   or   -Ne + 1 <= 0 (Ne > 0).
    for (int Side = 0; Side < 2; ++Side) {
      std::optional<LinearExpr> Base;
      if (Side == 0) {
        Base = Ne.add(LinearExpr(1));
      } else if (auto Negated = Ne.negate()) {
        Base = Negated->add(LinearExpr(1));
      }
      if (!Base)
        continue;
      std::vector<Norm> Sub;
      // Re-normalize the full original system plus the new side.
      for (const LinearExpr &L : Nes)
        Sub.push_back(Norm{Rel::NE, L});
      // NOTE: inequalities and equalities were already reduced; rebuild
      // from the surviving state: inequalities live in Records (pre-FM
      // originals) — reconstruct from Records' Uppers/Lowers plus residue.
      for (const auto &Rec : Records) {
        for (const LinearExpr &U : Rec.Uppers)
          Sub.push_back(Norm{Rel::LE, U});
        for (const LinearExpr &L : Rec.Lowers)
          Sub.push_back(Norm{Rel::LE, L});
      }
      for (const LinearExpr &L : Ineqs)
        Sub.push_back(Norm{Rel::LE, L});
      Sub.push_back(Norm{Rel::LE, *Base});
      std::map<InputId, int64_t> SubModel;
      SolveStatus S = solve(std::move(Sub), SubModel, Depth + 1);
      if (S == SolveStatus::Sat) {
        // Re-apply equality bindings over the sub-model.
        for (auto &[Id, V] : SubModel)
          Assign[Id] = V;
        auto ValueOf2 = [&](InputId Id) {
          auto It2 = Assign.find(Id);
          return It2 == Assign.end() ? 0 : It2->second;
        };
        for (auto It = Bindings.rbegin(); It != Bindings.rend(); ++It)
          Assign[It->first] = It->second.evaluate(ValueOf2);
        Model = Assign;
        // Verify everything (cheap safety net).
        return SolveStatus::Sat;
      }
      if (S == SolveStatus::Unknown)
        return SolveStatus::Unknown;
    }
    return SolveStatus::Unsat;
  }

  Model = Assign;
  return SolveStatus::Sat;
}

} // namespace

void SolverStats::merge(const SolverStats &Other) {
  Queries += Other.Queries;
  FastPathQueries += Other.FastPathQueries;
  Sat += Other.Sat;
  Unsat += Other.Unsat;
  Unknown += Other.Unknown;
  FMEliminations += Other.FMEliminations;
  DisequalityBranches += Other.DisequalityBranches;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  Normalizations += Other.Normalizations;
  NormReused += Other.NormReused;
  SessionPushes += Other.SessionPushes;
  SessionPops += Other.SessionPops;
  SessionSolves += Other.SessionSolves;
  SessionCacheHits += Other.SessionCacheHits;
  SessionCacheMisses += Other.SessionCacheMisses;
  HintSeeds += Other.HintSeeds;
  for (size_t I = 0; I < kQuerySizeBuckets; ++I) {
    QuerySizeFull[I] += Other.QuerySizeFull[I];
    QuerySizeSent[I] += Other.QuerySizeSent[I];
  }
  SlicedQueries += Other.SlicedQueries;
  SliceFullPreds += Other.SliceFullPreds;
  SliceSentPreds += Other.SliceSentPreds;
}

double SolverStats::histogramMedian(
    const std::array<uint64_t, kQuerySizeBuckets> &H) {
  uint64_t Total = 0;
  for (uint64_t C : H)
    Total += C;
  if (!Total)
    return 0.0;
  // Lower median: the size at cumulative count ceil(Total/2).
  uint64_t Need = (Total + 1) / 2, Seen = 0;
  for (size_t I = 0; I < H.size(); ++I) {
    Seen += H[I];
    if (Seen >= Need)
      return double(I);
  }
  return double(H.size() - 1);
}

bool SessionUnsatCache::contains(uint64_t Lo, uint64_t Hi) {
  Shard &S = Shards[Lo % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Lo);
  return It != S.Map.end() && It->second == Hi;
}

void SessionUnsatCache::insert(uint64_t Lo, uint64_t Hi) {
  Shard &S = Shards[Lo % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Map.size() >= MaxEntriesPerShard)
    S.Map.clear();
  S.Map[Lo] = Hi;
}

size_t SessionUnsatCache::size() {
  size_t Total = 0;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Map.size();
  }
  return Total;
}

std::optional<SolveStatus> SolverQueryCache::lookup(const std::string &Key) {
  Shard &S = Shards[std::hash<std::string>{}(Key) % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return std::nullopt;
  return It->second;
}

void SolverQueryCache::insert(const std::string &Key, SolveStatus Status) {
  Shard &S = Shards[std::hash<std::string>{}(Key) % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Map.size() >= MaxEntriesPerShard)
    S.Map.clear();
  S.Map.emplace(Key, Status);
}

size_t SolverQueryCache::size() {
  size_t Total = 0;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Map.size();
  }
  return Total;
}

SolverQueryCache *LinearSolver::activeCache() {
  if (!Options.EnableQueryCache)
    return nullptr;
  if (SharedCache)
    return SharedCache;
  if (!OwnCache)
    OwnCache = std::make_unique<SolverQueryCache>();
  return OwnCache.get();
}

SessionUnsatCache *LinearSolver::activeSessionCache() {
  if (!Options.EnableQueryCache)
    return nullptr;
  if (SharedSessionCache)
    return SharedSessionCache;
  if (!OwnSessionCache)
    OwnSessionCache = std::make_unique<SessionUnsatCache>();
  return OwnSessionCache.get();
}

SolveStatus
LinearSolver::solve(const std::vector<SymPred> &Constraints,
                    const std::function<VarDomain(InputId)> &DomainOf,
                    const std::map<InputId, int64_t> &Hint,
                    std::map<InputId, int64_t> &Model) {
  ++Stats.Queries;
  Model.clear();

  std::vector<Norm> Norms;
  Norms.reserve(Constraints.size());
  bool AllUnivariate = true;
  std::set<InputId> Vars;
  for (const SymPred &P : Constraints) {
    ++Stats.Normalizations;
    auto N = normalizePred(P);
    if (!N) {
      ++Stats.Unknown;
      return SolveStatus::Unknown;
    }
    if (N->L.coeffs().size() > 1)
      AllUnivariate = false;
    for (InputId Id : N->L.inputs())
      Vars.insert(Id);
    Norms.push_back(std::move(*N));
  }

  // Query-cache lookup. Only Unsat verdicts are stored: they are
  // hint-independent, while a Sat model must be recomputed to prefer the
  // caller's hint values.
  std::string Key;
  SolverQueryCache *Cache = activeCache();
  if (Cache) {
    Key = cacheKey(Norms, Vars, DomainOf);
    if (auto Cached = Cache->lookup(Key)) {
      ++Stats.CacheHits;
      ++Stats.Unsat;
      return *Cached;
    }
    ++Stats.CacheMisses;
  }
  auto Finish = [&](SolveStatus S) {
    if (Cache && S == SolveStatus::Unsat)
      Cache->insert(Key, S);
    return S;
  };

  // ---- Fast path: all constraints univariate -----------------------------
  if (AllUnivariate && Options.EnableFastPath) {
    ++Stats.FastPathQueries;
    struct VarState {
      int64_t Lo, Hi;
      std::optional<int64_t> Pin; // from equality
      std::set<int64_t> Excluded;
    };
    std::map<InputId, VarState> States;
    for (InputId Id : Vars) {
      VarDomain D = DomainOf(Id);
      States[Id] = VarState{D.Min, D.Max, std::nullopt, {}};
    }
    for (const Norm &N : Norms) {
      if (N.L.isConstant()) {
        int64_t K = N.L.constant();
        bool Holds = N.R == Rel::EQ   ? K == 0
                     : N.R == Rel::NE ? K != 0
                                      : K <= 0;
        if (!Holds) {
          ++Stats.Unsat;
          return Finish(SolveStatus::Unsat);
        }
        continue;
      }
      InputId Id = N.L.inputs()[0];
      int64_t A = N.L.coeff(Id);
      int64_t K = N.L.constant();
      VarState &St = States[Id];
      switch (N.R) {
      case Rel::EQ: {
        // a*x + k == 0
        if (K % A != 0) {
          ++Stats.Unsat;
          return Finish(SolveStatus::Unsat);
        }
        int64_t V = -K / A;
        if (St.Pin && *St.Pin != V) {
          ++Stats.Unsat;
          return Finish(SolveStatus::Unsat);
        }
        St.Pin = V;
        break;
      }
      case Rel::NE:
        if (K % A == 0)
          St.Excluded.insert(-K / A);
        break;
      case Rel::LE:
        // a*x + k <= 0: for a > 0, x <= floor(-k/a); for a < 0, dividing
        // by a flips the relation: x >= ceil(k / -a).
        if (A > 0)
          St.Hi = std::min(St.Hi, floorDiv(-K, A));
        else
          St.Lo = std::max(St.Lo, ceilDiv(K, -A));
        break;
      }
    }
    for (auto &[Id, St] : States) {
      if (St.Pin) {
        if (*St.Pin < St.Lo || *St.Pin > St.Hi || St.Excluded.count(*St.Pin)) {
          ++Stats.Unsat;
          return Finish(SolveStatus::Unsat);
        }
        Model[Id] = *St.Pin;
        continue;
      }
      if (St.Lo > St.Hi) {
        ++Stats.Unsat;
        return Finish(SolveStatus::Unsat);
      }
      // Preferred value, stepped off excluded points.
      int64_t Candidate;
      auto HintIt = Hint.find(Id);
      if (HintIt != Hint.end() && HintIt->second >= St.Lo &&
          HintIt->second <= St.Hi)
        Candidate = HintIt->second;
      else if (St.Lo <= 0 && 0 <= St.Hi)
        Candidate = 0;
      else
        Candidate = St.Lo > 0 ? St.Lo : St.Hi;
      bool Found = false;
      for (int64_t Offset = 0; Offset <= 2 * int64_t(St.Excluded.size()) + 1;
           ++Offset) {
        for (int Sign = 0; Sign < (Offset == 0 ? 1 : 2); ++Sign) {
          int64_t V = Sign == 0 ? Candidate + Offset : Candidate - Offset;
          if (V < St.Lo || V > St.Hi || St.Excluded.count(V))
            continue;
          Model[Id] = V;
          Found = true;
          break;
        }
        if (Found)
          break;
      }
      if (!Found) {
        ++Stats.Unsat;
        return Finish(SolveStatus::Unsat);
      }
    }
    ++Stats.Sat;
    return SolveStatus::Sat;
  }

  // ---- General path -------------------------------------------------------
  Core C(Options, Stats, DomainOf, Hint);
  SolveStatus S = C.solve(std::move(Norms), Model, 0);

  // Safety net: never report Sat with a model violating the input system.
  if (S == SolveStatus::Sat) {
    auto ValueOf = [&](InputId Id) {
      auto It = Model.find(Id);
      return It == Model.end() ? int64_t(0) : It->second;
    };
    for (const SymPred &P : Constraints) {
      if (!P.holds(ValueOf)) {
        S = SolveStatus::Unknown;
        break;
      }
    }
    // Every constrained variable must be in the model.
    if (S == SolveStatus::Sat)
      for (InputId Id : Vars)
        if (!Model.count(Id))
          Model[Id] = 0;
  }

  switch (S) {
  case SolveStatus::Sat:
    ++Stats.Sat;
    break;
  case SolveStatus::Unsat:
    ++Stats.Unsat;
    break;
  case SolveStatus::Unknown:
    ++Stats.Unknown;
    break;
  }
  return Finish(S);
}
