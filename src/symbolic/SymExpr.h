//===- SymExpr.h - Symbolic values over program inputs ----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic values for DART's symbolic memory S. The theory is the paper's:
/// linear integer arithmetic (DART used lp_solve, §3.3). A symbolic value is
/// either
///   - a LinearExpr: sum of coeff*input terms plus a constant, or
///   - a SymPred: a comparison `LinearExpr <pred> 0`, the image of a C
///     comparison stored into a variable.
/// Anything outside this language (products of two non-constants, shifts by
/// non-constants, ...) is not representable; the concolic evaluator then
/// falls back to the concrete value and clears `all_linear`, exactly as in
/// the paper's evaluate_symbolic (Fig. 1).
///
/// Inputs are identified by dense InputIds assigned in creation order
/// (driver initialization first, then external-function returns in
/// execution order), which keeps identities stable across runs with equal
/// prefixes — the property compare_and_update_stack relies on.
///
//===----------------------------------------------------------------------===//

#ifndef DART_SYMBOLIC_SYMEXPR_H
#define DART_SYMBOLIC_SYMEXPR_H

#include "ir/IR.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dart {

/// Dense id of one program input (one scalar cell of M0, or one external
/// function return).
using InputId = uint32_t;

/// How an input may be assigned by the solver/driver.
enum class InputKind {
  Integer,       // a scalar integer input; domain from its ValType
  PointerChoice, // the NULL/allocate coin of a pointer input (Fig. 8);
                 // domain {0, 1}; solvable only with the CUTE-style
                 // symbolic-pointer extension enabled
};

/// Registry entry describing one input.
struct InputInfo {
  InputKind Kind = InputKind::Integer;
  ValType VT = ValType::int32();
  std::string Name; // for reports, e.g. "ac_controller#0.message"

  /// Inclusive solver domain of this input.
  int64_t domainMin() const;
  int64_t domainMax() const;
};

/// One (input, coefficient) term of a LinearExpr. Public members so the
/// structured-binding idiom `for (const auto &[Id, C] : E.coeffs())` keeps
/// working across the flat-representation switch.
struct LinearTerm {
  InputId Id = 0;
  int64_t Coeff = 0;

  friend bool operator==(const LinearTerm &A, const LinearTerm &B) {
    return A.Id == B.Id && A.Coeff == B.Coeff;
  }
};

/// A linear integer expression: Const + sum Coeffs[i] * input_i.
/// Terms are kept sorted by InputId in a small inline vector (one or two
/// terms need no allocation); coefficients are never zero — zero results
/// are folded away on the fly, so isConstant() is just emptiness.
class LinearExpr {
public:
  using TermVec = SmallVec<LinearTerm, 2>;

  LinearExpr() = default;
  explicit LinearExpr(int64_t Constant) : Constant(Constant) {}

  static LinearExpr variable(InputId Id) {
    LinearExpr E;
    E.Coeffs.push_back(LinearTerm{Id, 1});
    return E;
  }

  bool isConstant() const { return Coeffs.empty(); }
  int64_t constant() const { return Constant; }
  const TermVec &coeffs() const { return Coeffs; }
  int64_t coeff(InputId Id) const;

  /// All arithmetic is overflow-checked; nullopt means the result left the
  /// safely representable range and the caller must fall back to concrete.
  std::optional<LinearExpr> add(const LinearExpr &RHS) const;
  std::optional<LinearExpr> sub(const LinearExpr &RHS) const;
  std::optional<LinearExpr> scale(int64_t Factor) const;
  std::optional<LinearExpr> negate() const { return scale(-1); }

  /// Evaluates under an assignment of inputs (missing inputs read as 0).
  int64_t evaluate(const std::function<int64_t(InputId)> &ValueOf) const;

  /// Ids of the symbolic variables occurring in this expression.
  std::vector<InputId> inputs() const;

  std::string toString() const;

  /// Structural hash (used by the predicate-interning arena).
  uint64_t hashValue() const;

  friend bool operator==(const LinearExpr &A, const LinearExpr &B) {
    return A.Constant == B.Constant && A.Coeffs == B.Coeffs;
  }

private:
  TermVec Coeffs;
  int64_t Constant = 0;
};

/// A predicate `LHS <pred> 0` over inputs, e.g. `x0 - y0 == 0`. This is the
/// path-constraint element of the paper (§2.1): each conditional statement
/// with a symbolic condition contributes one SymPred (or its negation).
struct SymPred {
  CmpPred Pred = CmpPred::Eq;
  LinearExpr LHS;

  SymPred() = default;
  SymPred(CmpPred Pred, LinearExpr LHS) : Pred(Pred), LHS(std::move(LHS)) {}

  /// Builds `L <pred> R` as `L - R <pred> 0`; nullopt on overflow.
  static std::optional<SymPred> make(CmpPred Pred, const LinearExpr &L,
                                     const LinearExpr &R);

  SymPred negated() const { return SymPred(negateCmpPred(Pred), LHS); }

  bool holds(const std::function<int64_t(InputId)> &ValueOf) const;

  /// True if no symbolic variable occurs (the predicate is decided).
  bool isConstant() const { return LHS.isConstant(); }

  std::vector<InputId> inputs() const { return LHS.inputs(); }

  std::string toString() const;

  friend bool operator==(const SymPred &A, const SymPred &B) {
    return A.Pred == B.Pred && A.LHS == B.LHS;
  }
};

/// Structural hash of a SymPred (for the interning arena).
uint64_t hashSymPred(const SymPred &P);

/// The solver's canonical relation over ideal integers: `L == 0`,
/// `L != 0`, or `L <= 0`. Defined here (not in src/solver) so the
/// predicate-interning arena can cache each predicate's normal form once
/// and every solver query reuses it.
enum class NormRel { EQ, NE, LE };

struct NormPred {
  NormRel R = NormRel::EQ;
  LinearExpr L;
};

/// Normalizes a SymPred to EQ/NE/LE form. Exploits integrality:
/// `L < 0  <=>  L + 1 <= 0`. Returns nullopt on coefficient overflow.
std::optional<NormPred> normalizePred(const SymPred &P);

/// What the symbolic memory S stores for one scalar cell.
class SymValue {
public:
  enum class Kind { Linear, Pred };

  /* implicit */ SymValue(LinearExpr E)
      : K(Kind::Linear), Lin(std::move(E)) {}
  /* implicit */ SymValue(SymPred P) : K(Kind::Pred), Pred(std::move(P)) {}

  Kind kind() const { return K; }
  bool isLinear() const { return K == Kind::Linear; }
  bool isPred() const { return K == Kind::Pred; }

  const LinearExpr &linear() const {
    assert(isLinear());
    return Lin;
  }
  const SymPred &pred() const {
    assert(isPred());
    return Pred;
  }

  /// True if the value mentions no input (purely concrete).
  bool isConstant() const {
    return isLinear() ? Lin.isConstant() : Pred.isConstant();
  }

  std::vector<InputId> inputs() const {
    return isLinear() ? Lin.inputs() : Pred.inputs();
  }

  std::string toString() const {
    return isLinear() ? Lin.toString() : Pred.toString();
  }

private:
  Kind K;
  LinearExpr Lin;
  SymPred Pred;
};

} // namespace dart

#endif // DART_SYMBOLIC_SYMEXPR_H
