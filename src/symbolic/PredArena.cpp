//===- PredArena.cpp - Content-addressed SymPred interning -----------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "symbolic/PredArena.h"

using namespace dart;

PredArena::~PredArena() {
  for (Shard &S : Shards)
    for (std::atomic<Entry *> &C : S.Chunks)
      delete[] C.load(std::memory_order_relaxed);
}

static size_t chunkOf(uint32_t Index, uint32_t &Offset) {
  // Chunk C spans indices [kChunk0*(2^C - 1), kChunk0*(2^(C+1) - 1)).
  size_t C = 0;
  uint32_t Base = 0, Cap = 8;
  while (Index >= Base + Cap) {
    Base += Cap;
    Cap *= 2;
    ++C;
  }
  Offset = Index - Base;
  return C;
}

PredArena::Entry &PredArena::slot(Shard &S, uint32_t Index) {
  uint32_t Offset;
  size_t C = chunkOf(Index, Offset);
  Entry *Chunk = S.Chunks[C].load(std::memory_order_acquire);
  if (!Chunk) {
    // Caller holds S.M, so no allocation race within the shard.
    Chunk = new Entry[size_t(kChunk0) << C];
    S.Chunks[C].store(Chunk, std::memory_order_release);
  }
  return Chunk[Offset];
}

const PredArena::Entry &PredArena::entry(PredId Id) const {
  assert(Id != kNoPred && "dereferencing kNoPred");
  const Shard &S = Shards[Id & (NumShards - 1)];
  uint32_t Index = (Id >> ShardBits) - 1;
  uint32_t Offset;
  size_t C = chunkOf(Index, Offset);
  const Entry *Chunk = S.Chunks[C].load(std::memory_order_acquire);
  assert(Chunk && "dangling PredId");
  return Chunk[Offset];
}

PredId PredArena::intern(const SymPred &P) {
  uint64_t H = hashSymPred(P);
  Shard &S = Shards[H & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Interns;
  auto [It, End] = S.Index.equal_range(H);
  for (; It != End; ++It)
    if (slot(S, It->second).P == P) {
      ++S.Hits;
      return makeId(H & (NumShards - 1), It->second);
    }
  uint32_t Index = S.Count++;
  Entry &E = slot(S, Index);
  E.P = P;
  if (std::optional<NormPred> N = normalizePred(P)) {
    E.Norm = std::move(*N);
    E.HasNorm = true;
    E.Multivar = E.Norm.L.coeffs().size() > 1;
    E.Inputs = E.Norm.L.inputs(); // already sorted by InputId
    for (InputId Id : E.Inputs)
      E.InputSig |= uint64_t(1) << (Id % 64);
  }
  S.Index.emplace(H, Index);
  return makeId(H & (NumShards - 1), Index);
}

PredId PredArena::negatedId(PredId Id) {
  Entry &E = const_cast<Entry &>(entry(Id));
  PredId Neg = E.NegId.load(std::memory_order_acquire);
  if (Neg != kNoPred)
    return Neg;
  Neg = intern(E.P.negated());
  E.NegId.store(Neg, std::memory_order_release);
  // Seed the reverse link too so neg(neg(Id)) is also O(1).
  Entry &NE = const_cast<Entry &>(entry(Neg));
  PredId Back = NE.NegId.load(std::memory_order_acquire);
  if (Back == kNoPred)
    NE.NegId.store(Id, std::memory_order_release);
  return Neg;
}

size_t PredArena::size() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Count;
  }
  return Total;
}

PredArenaStats PredArena::stats() const {
  PredArenaStats St;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    St.Size += S.Count;
    St.Interns += S.Interns;
    St.Hits += S.Hits;
  }
  return St;
}
