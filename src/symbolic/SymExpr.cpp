//===- SymExpr.cpp - Symbolic values over program inputs -------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymExpr.h"

using namespace dart;

int64_t InputInfo::domainMin() const {
  if (Kind == InputKind::PointerChoice)
    return 0;
  if (!VT.Signed)
    return 0;
  switch (VT.SizeBytes) {
  case 1:
    return -128;
  case 4:
    return INT32_MIN;
  default:
    return INT64_MIN;
  }
}

int64_t InputInfo::domainMax() const {
  if (Kind == InputKind::PointerChoice)
    return 1;
  if (!VT.Signed) {
    switch (VT.SizeBytes) {
    case 1:
      return 255;
    case 4:
      return UINT32_MAX;
    default:
      return INT64_MAX; // u64 clipped to the solver's signed range
    }
  }
  switch (VT.SizeBytes) {
  case 1:
    return 127;
  case 4:
    return INT32_MAX;
  default:
    return INT64_MAX;
  }
}

namespace {

/// Checked signed arithmetic; false on overflow.
bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}
bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

} // namespace

std::optional<LinearExpr> LinearExpr::add(const LinearExpr &RHS) const {
  LinearExpr Result = *this;
  if (!checkedAdd(Result.Constant, RHS.Constant, Result.Constant))
    return std::nullopt;
  for (const auto &[Id, C] : RHS.Coeffs) {
    int64_t &Slot = Result.Coeffs[Id];
    if (!checkedAdd(Slot, C, Slot))
      return std::nullopt;
    if (Slot == 0)
      Result.Coeffs.erase(Id);
  }
  return Result;
}

std::optional<LinearExpr> LinearExpr::sub(const LinearExpr &RHS) const {
  std::optional<LinearExpr> NegRHS = RHS.scale(-1);
  if (!NegRHS)
    return std::nullopt;
  return add(*NegRHS);
}

std::optional<LinearExpr> LinearExpr::scale(int64_t Factor) const {
  if (Factor == 0)
    return LinearExpr(0);
  LinearExpr Result;
  if (!checkedMul(Constant, Factor, Result.Constant))
    return std::nullopt;
  for (const auto &[Id, C] : Coeffs) {
    int64_t Scaled;
    if (!checkedMul(C, Factor, Scaled))
      return std::nullopt;
    Result.Coeffs[Id] = Scaled;
  }
  return Result;
}

int64_t LinearExpr::evaluate(
    const std::function<int64_t(InputId)> &ValueOf) const {
  int64_t Sum = Constant;
  for (const auto &[Id, C] : Coeffs)
    Sum += C * ValueOf(Id);
  return Sum;
}

std::vector<InputId> LinearExpr::inputs() const {
  std::vector<InputId> Ids;
  Ids.reserve(Coeffs.size());
  for (const auto &[Id, C] : Coeffs) {
    (void)C;
    Ids.push_back(Id);
  }
  return Ids;
}

std::string LinearExpr::toString() const {
  std::string Out;
  bool First = true;
  for (const auto &[Id, C] : Coeffs) {
    if (!First)
      Out += C >= 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    First = false;
    int64_t Mag = C < 0 ? -C : C;
    if (Mag != 1)
      Out += std::to_string(Mag) + "*";
    Out += "x" + std::to_string(Id);
  }
  if (First)
    return std::to_string(Constant);
  if (Constant > 0)
    Out += " + " + std::to_string(Constant);
  else if (Constant < 0)
    Out += " - " + std::to_string(-Constant);
  return Out;
}

std::optional<SymPred> SymPred::make(CmpPred Pred, const LinearExpr &L,
                                     const LinearExpr &R) {
  std::optional<LinearExpr> Diff = L.sub(R);
  if (!Diff)
    return std::nullopt;
  return SymPred(Pred, std::move(*Diff));
}

bool SymPred::holds(const std::function<int64_t(InputId)> &ValueOf) const {
  int64_t V = LHS.evaluate(ValueOf);
  switch (Pred) {
  case CmpPred::Eq:
    return V == 0;
  case CmpPred::Ne:
    return V != 0;
  case CmpPred::Lt:
    return V < 0;
  case CmpPred::Le:
    return V <= 0;
  case CmpPred::Gt:
    return V > 0;
  case CmpPred::Ge:
    return V >= 0;
  }
  return false;
}

std::string SymPred::toString() const {
  return LHS.toString() + " " + cmpPredSpelling(Pred) + " 0";
}
