//===- SymExpr.cpp - Symbolic values over program inputs -------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymExpr.h"

using namespace dart;

int64_t InputInfo::domainMin() const {
  if (Kind == InputKind::PointerChoice)
    return 0;
  if (!VT.Signed)
    return 0;
  switch (VT.SizeBytes) {
  case 1:
    return -128;
  case 4:
    return INT32_MIN;
  default:
    return INT64_MIN;
  }
}

int64_t InputInfo::domainMax() const {
  if (Kind == InputKind::PointerChoice)
    return 1;
  if (!VT.Signed) {
    switch (VT.SizeBytes) {
    case 1:
      return 255;
    case 4:
      return UINT32_MAX;
    default:
      return INT64_MAX; // u64 clipped to the solver's signed range
    }
  }
  switch (VT.SizeBytes) {
  case 1:
    return 127;
  case 4:
    return INT32_MAX;
  default:
    return INT64_MAX;
  }
}

namespace {

/// Checked signed arithmetic; false on overflow.
bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}
bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

} // namespace

int64_t LinearExpr::coeff(InputId Id) const {
  // Terms are sorted by InputId; binary search (lists are tiny, but the
  // general path probes absent ids constantly during FM elimination).
  size_t Lo = 0, Hi = Coeffs.size();
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Coeffs[Mid].Id < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return (Lo < Coeffs.size() && Coeffs[Lo].Id == Id) ? Coeffs[Lo].Coeff : 0;
}

std::optional<LinearExpr> LinearExpr::add(const LinearExpr &RHS) const {
  // Merge of two sorted term lists, folding cancelled terms away.
  LinearExpr Result;
  if (!checkedAdd(Constant, RHS.Constant, Result.Constant))
    return std::nullopt;
  Result.Coeffs.reserve(Coeffs.size() + RHS.Coeffs.size());
  size_t I = 0, J = 0;
  while (I < Coeffs.size() || J < RHS.Coeffs.size()) {
    if (J == RHS.Coeffs.size() ||
        (I < Coeffs.size() && Coeffs[I].Id < RHS.Coeffs[J].Id)) {
      Result.Coeffs.push_back(Coeffs[I++]);
    } else if (I == Coeffs.size() || RHS.Coeffs[J].Id < Coeffs[I].Id) {
      Result.Coeffs.push_back(RHS.Coeffs[J++]);
    } else {
      int64_t Sum;
      if (!checkedAdd(Coeffs[I].Coeff, RHS.Coeffs[J].Coeff, Sum))
        return std::nullopt;
      if (Sum != 0)
        Result.Coeffs.push_back(LinearTerm{Coeffs[I].Id, Sum});
      ++I;
      ++J;
    }
  }
  return Result;
}

std::optional<LinearExpr> LinearExpr::sub(const LinearExpr &RHS) const {
  std::optional<LinearExpr> NegRHS = RHS.scale(-1);
  if (!NegRHS)
    return std::nullopt;
  return add(*NegRHS);
}

std::optional<LinearExpr> LinearExpr::scale(int64_t Factor) const {
  if (Factor == 0)
    return LinearExpr(0);
  LinearExpr Result;
  if (!checkedMul(Constant, Factor, Result.Constant))
    return std::nullopt;
  Result.Coeffs.reserve(Coeffs.size());
  for (const auto &[Id, C] : Coeffs) {
    int64_t Scaled;
    if (!checkedMul(C, Factor, Scaled))
      return std::nullopt;
    Result.Coeffs.push_back(LinearTerm{Id, Scaled});
  }
  return Result;
}

int64_t LinearExpr::evaluate(
    const std::function<int64_t(InputId)> &ValueOf) const {
  int64_t Sum = Constant;
  for (const auto &[Id, C] : Coeffs)
    Sum += C * ValueOf(Id);
  return Sum;
}

std::vector<InputId> LinearExpr::inputs() const {
  std::vector<InputId> Ids;
  Ids.reserve(Coeffs.size());
  for (const auto &[Id, C] : Coeffs) {
    (void)C;
    Ids.push_back(Id);
  }
  return Ids;
}

std::string LinearExpr::toString() const {
  std::string Out;
  bool First = true;
  for (const auto &[Id, C] : Coeffs) {
    if (!First)
      Out += C >= 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    First = false;
    int64_t Mag = C < 0 ? -C : C;
    if (Mag != 1)
      Out += std::to_string(Mag) + "*";
    Out += "x" + std::to_string(Id);
  }
  if (First)
    return std::to_string(Constant);
  if (Constant > 0)
    Out += " + " + std::to_string(Constant);
  else if (Constant < 0)
    Out += " - " + std::to_string(-Constant);
  return Out;
}

namespace {

/// SplitMix64 finalizer: the mixing step of the structural hashes below.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

uint64_t LinearExpr::hashValue() const {
  uint64_t H = mix64(uint64_t(Constant) + 0x9e3779b97f4a7c15ULL);
  for (const auto &[Id, C] : Coeffs)
    H = mix64(H ^ mix64((uint64_t(Id) << 32) + uint64_t(C)));
  return H;
}

uint64_t dart::hashSymPred(const SymPred &P) {
  return mix64(P.LHS.hashValue() ^
               (uint64_t(P.Pred) + 0x9e3779b97f4a7c15ULL));
}

std::optional<NormPred> dart::normalizePred(const SymPred &P) {
  auto le = [](LinearExpr L) { return NormPred{NormRel::LE, std::move(L)}; };
  switch (P.Pred) {
  case CmpPred::Eq:
    return NormPred{NormRel::EQ, P.LHS};
  case CmpPred::Ne:
    return NormPred{NormRel::NE, P.LHS};
  case CmpPred::Le:
    return le(P.LHS);
  case CmpPred::Lt: {
    auto L = P.LHS.add(LinearExpr(1));
    if (!L)
      return std::nullopt;
    return le(std::move(*L));
  }
  case CmpPred::Ge: {
    auto L = P.LHS.negate();
    if (!L)
      return std::nullopt;
    return le(std::move(*L));
  }
  case CmpPred::Gt: {
    auto L = P.LHS.negate();
    if (!L)
      return std::nullopt;
    auto L2 = L->add(LinearExpr(1));
    if (!L2)
      return std::nullopt;
    return le(std::move(*L2));
  }
  }
  return std::nullopt;
}

std::optional<SymPred> SymPred::make(CmpPred Pred, const LinearExpr &L,
                                     const LinearExpr &R) {
  std::optional<LinearExpr> Diff = L.sub(R);
  if (!Diff)
    return std::nullopt;
  return SymPred(Pred, std::move(*Diff));
}

bool SymPred::holds(const std::function<int64_t(InputId)> &ValueOf) const {
  int64_t V = LHS.evaluate(ValueOf);
  switch (Pred) {
  case CmpPred::Eq:
    return V == 0;
  case CmpPred::Ne:
    return V != 0;
  case CmpPred::Lt:
    return V < 0;
  case CmpPred::Le:
    return V <= 0;
  case CmpPred::Gt:
    return V > 0;
  case CmpPred::Ge:
    return V >= 0;
  }
  return false;
}

std::string SymPred::toString() const {
  return LHS.toString() + " " + cmpPredSpelling(Pred) + " 0";
}
