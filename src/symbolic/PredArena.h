//===- PredArena.h - Content-addressed SymPred interning --------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe interning arena for path-constraint predicates:
/// structurally equal SymPreds share one dense PredId, so the
/// path-constraint stack, candidate solving, and the solver caches compare
/// and hash 32-bit ids instead of deep expression structures.
///
/// Each interned predicate carries, computed exactly once:
///  - its EQ/NE/LE normal form (the expensive per-query renormalization the
///    incremental SolverSession now skips entirely), and
///  - the id of its negation (filled lazily on first use, so a
///    negate-solve-negate cycle round-trips without re-interning).
///
/// Ids are *content-addressed*: the id of a predicate is a function of its
/// structure and first-interning order only. Two runs with equal path
/// prefixes emit structurally equal predicates (the compare_and_update_stack
/// invariant: input ids are assigned in creation order, which is a function
/// of the path), so equal prefixes produce equal id sequences — the same
/// stability property the solver caches and the prefix dedup rely on.
///
/// Concurrency: the arena is sharded 16 ways by predicate hash. Interning
/// takes one shard mutex; reading an entry through an id is lock-free
/// (entries are immutable after publication, chunked storage keeps their
/// addresses stable, and an id only reaches another thread through an
/// already-synchronizing channel such as the parallel engine's frontier).
///
//===----------------------------------------------------------------------===//

#ifndef DART_SYMBOLIC_PREDARENA_H
#define DART_SYMBOLIC_PREDARENA_H

#include "symbolic/SymExpr.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace dart {

/// Dense id of one interned predicate. 0 is "no predicate" (the branch had
/// a concrete or out-of-theory condition).
using PredId = uint32_t;
inline constexpr PredId kNoPred = 0;

struct PredArenaStats {
  /// Distinct predicates interned.
  size_t Size = 0;
  /// intern() calls made.
  uint64_t Interns = 0;
  /// intern() calls resolved to an already-interned predicate.
  uint64_t Hits = 0;

  double hitRate() const {
    return Interns ? double(Hits) / double(Interns) : 0.0;
  }
};

class PredArena {
public:
  PredArena() = default;
  PredArena(const PredArena &) = delete;
  PredArena &operator=(const PredArena &) = delete;
  ~PredArena();

  /// Returns the id of \p P, interning it on first sight. Thread-safe.
  PredId intern(const SymPred &P);

  /// The predicate behind \p Id. The reference is stable for the arena's
  /// lifetime.
  const SymPred &pred(PredId Id) const { return entry(Id).P; }

  /// The cached EQ/NE/LE normal form of \p Id, or nullptr if normalization
  /// overflowed (the solver then answers Unknown, as before).
  const NormPred *norm(PredId Id) const {
    const Entry &E = entry(Id);
    return E.HasNorm ? &E.Norm : nullptr;
  }

  /// True if the normal form mentions more than one input variable (such
  /// predicates fall off the incremental fast path).
  bool multivariate(PredId Id) const { return entry(Id).Multivar; }

  /// The sorted input-variable ids of \p Id's normal form, interned once.
  /// Empty for predicates without a normal form — those relate to *every*
  /// input (the sliced solver mode keeps them in every slice).
  const std::vector<InputId> &inputs(PredId Id) const {
    return entry(Id).Inputs;
  }

  /// 64-bit Bloom signature of inputs(\p Id): bit (id mod 64) per input.
  /// Two predicates with disjoint signatures certainly share no input;
  /// overlapping signatures fall back to the exact sorted lists. The
  /// diversity strategy folds these into its path signatures
  /// (pathSignature in concolic/PathSearch.h), so paths constrained by
  /// different inputs score as distant even when they branch alike.
  uint64_t inputSig(PredId Id) const { return entry(Id).InputSig; }

  /// The id of negated(\p Id); interned (and cached on the entry) on first
  /// use. Thread-safe.
  PredId negatedId(PredId Id);

  size_t size() const;
  PredArenaStats stats() const;

private:
  struct Entry {
    SymPred P;
    NormPred Norm;
    std::vector<InputId> Inputs;
    uint64_t InputSig = 0;
    bool HasNorm = false;
    bool Multivar = false;
    std::atomic<PredId> NegId{kNoPred};
  };

  static constexpr size_t NumShards = 16;
  static constexpr size_t ShardBits = 4;
  /// Chunked entry storage: chunk C holds (kChunk0 << C) entries, so
  /// addresses never move and readers need no lock.
  static constexpr size_t kChunk0 = 8;
  static constexpr size_t MaxChunks = 24;

  struct Shard {
    mutable std::mutex M;
    /// hash -> entry index (multimap: collisions are resolved by
    /// structural comparison against the stored predicate).
    std::unordered_multimap<uint64_t, uint32_t> Index;
    std::array<std::atomic<Entry *>, MaxChunks> Chunks{};
    uint32_t Count = 0;
    uint64_t Interns = 0;
    uint64_t Hits = 0;
  };

  static PredId makeId(size_t ShardNo, uint32_t Index) {
    return PredId(((Index + 1) << ShardBits) | ShardNo);
  }

  const Entry &entry(PredId Id) const;
  Entry &slot(Shard &S, uint32_t Index);

  std::array<Shard, NumShards> Shards;
};

} // namespace dart

#endif // DART_SYMBOLIC_PREDARENA_H
