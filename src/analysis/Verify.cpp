//===- Verify.cpp - Prove-or-test triage ------------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The prover combines two passes over the zone domain (Zone.h):
//
//  * forward: the per-function zone fixpoint. A direction whose branch
//    condition contradicts the forward state at the site is infeasible
//    outright.
//  * backward: weakest-precondition refinement. The condition-in-
//    direction becomes a *necessary condition* (NC) DBM that is pushed
//    backward through stores (substitution, wrap-checked against the
//    forward state), calls (may-mod havoc), and branch edges (the pred's
//    own condition refines NC). A path is cut when NC meets the forward
//    state to bottom; crossing a function entry maps NC through every
//    call site into caller terms. The direction is proved infeasible
//    when every backward path is cut before reaching the campaign entry
//    consistently.
//
// Soundness: NC is maintained as a necessary condition for "this point
// leads to the target site in the target direction". Every rewrite only
// weakens NC (drops unmappable constraints) or conjoins facts true of
// all executions (forward states, type-range invariants), and wrap
// checks are made against intervals that bound the executions of
// interest. ANY budget exhaustion yields UNKNOWN, never a proof.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verify.h"

#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"
#include "analysis/PointsTo.h"
#include "analysis/Zone.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <sstream>

using namespace dart;

const char *dart::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Proved:
    return "PROVED";
  case Verdict::Bug:
    return "BUG";
  case Verdict::Unknown:
    return "UNKNOWN";
  }
  return "UNKNOWN";
}

std::string VerifyStats::toString() const {
  std::ostringstream OS;
  OS << "verifier: " << DirsProved << "/" << DirsConsidered
     << " directions proved infeasible (" << ForwardProofs << " forward, "
     << WpProofs << " wp; " << WpItems << " wp items), "
     << FunctionsConverged << "/" << FunctionsAnalyzed
     << " zone fixpoints converged";
  return OS.str();
}

namespace {

/// Per-candidate and module-wide work limits. Exhausting ANY of them
/// makes the candidate UNKNOWN — a proof must see every path cut.
struct Budgets {
  static constexpr unsigned kItemsPerCandidate = 256;
  static constexpr unsigned kItemsPerModule = 4096;
  static constexpr unsigned kBlockVisitsPerCandidate = 4;
  static constexpr unsigned kCallDepth = 3;
};

struct FnCtx {
  std::unique_ptr<Cfg> G;
  std::unique_ptr<ZoneAnalysis> ZA;
};

/// One backward worklist item: refine NC from instruction \p End
/// (exclusive) of \p Block in \p Fn down to the block entry, then fan
/// out to predecessors / call sites.
struct WpItem {
  unsigned Fn = 0;
  unsigned Block = 0;
  unsigned End = 0; ///< instruction index, exclusive
  unsigned Depth = 0;
  ZoneState NC;
};

class Prover {
public:
  Prover(const IRModule &M, const std::string &ToplevelName,
         const StaticSummary &Sum, bool GlobalsStartAtInit)
      : M(M), Sum(Sum), T(Sum.Taint.get()),
        GlobalsStartAtInit(GlobalsStartAtInit) {
    if (!T || !T->PT)
      return;
    const CallGraph &CG = T->PT->callGraph();
    ToplevelFn = CG.indexOf(ToplevelName);
    if (ToplevelFn != CallGraph::kExternal)
      FnReachable = CG.transitiveCallees(ToplevelFn);
    Ctx.resize(M.functions().size());
    CallSites.resize(M.functions().size());
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      if (!reachable(Fn))
        continue;
      const IRFunction &F = *M.functions()[Fn];
      for (unsigned I = 0; I < F.Instrs.size(); ++I)
        if (const auto *Ca = dyn_cast<CallInstr>(F.Instrs[I].get())) {
          unsigned Callee = CG.indexOf(Ca->callee());
          if (Callee != CallGraph::kExternal)
            CallSites[Callee].push_back({Fn, I});
        }
    }
  }

  bool usable() const { return T && T->PT && ToplevelFn != ~0u; }
  bool reachable(unsigned Fn) const {
    return !FnReachable.empty() && Fn < FnReachable.size() &&
           FnReachable[Fn];
  }

  VerifyStats &stats() { return Stats; }

  /// The lazily built zone context of \p Fn (nullptr ZA when the
  /// fixpoint did not converge).
  const FnCtx &ctx(unsigned Fn) {
    FnCtx &C = Ctx[Fn];
    if (!C.G) {
      const IRFunction &F = *M.functions()[Fn];
      C.G = std::make_unique<Cfg>(Cfg::build(F));
      ZoneAnalysis::Config ZC;
      // Globals-at-init is only sound when (a) each run calls the
      // toplevel exactly once from fresh memory (GlobalsStartAtInit) and
      // (b) no program function re-enters it with mutated globals.
      ZC.GlobalsAtInit = GlobalsStartAtInit && Fn == ToplevelFn &&
                         !T->InternallyCalled[Fn];
      C.ZA = std::make_unique<ZoneAnalysis>(M, *C.G, *T, Fn, ZC);
      C.ZA->run();
      ++Stats.FunctionsAnalyzed;
      if (C.ZA->converged())
        ++Stats.FunctionsConverged;
    }
    return C;
  }

  /// Zone-proved unreachable from the campaign entry? (Used for abort
  /// and lint sites; branch directions go through proveDirection.)
  bool provedUnreachable(unsigned Fn, unsigned InstrIndex) {
    if (!usable())
      return false;
    if (!reachable(Fn))
      return true; // no call chain from the toplevel
    const FnCtx &C = ctx(Fn);
    if (!C.ZA->converged())
      return false;
    if (!C.ZA->instrReachable(InstrIndex))
      return true;
    auto S = C.ZA->stateBefore(InstrIndex);
    return S && S->isBottom();
  }

  /// Attempt to prove that branch \p InstrIndex of \p Fn can never
  /// evaluate in direction \p Dir on any execution from the campaign
  /// entry. Returns the invariant chain on success.
  std::optional<std::string> proveDirection(unsigned Fn, unsigned InstrIndex,
                                            bool Dir) {
    if (!usable() || !reachable(Fn))
      return std::nullopt;
    const FnCtx &C = ctx(Fn);
    ZoneAnalysis &ZA = *C.ZA;
    if (!ZA.converged())
      return std::nullopt;
    const IRFunction &F = *M.functions()[Fn];
    const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[InstrIndex].get());
    if (!CJ)
      return std::nullopt;

    // Forward pass: does the site's forward state tolerate Dir?
    if (!ZA.instrReachable(InstrIndex)) {
      ++Stats.ForwardProofs;
      return std::string("site is zone-unreachable in ") + F.Name;
    }
    auto Fw = ZA.stateBefore(InstrIndex);
    if (!Fw)
      return std::nullopt; // non-converged guard (shouldn't happen)
    if (Fw->isBottom()) {
      ++Stats.ForwardProofs;
      return std::string("forward zone state is infeasible at the site");
    }
    ZoneState Refined = *Fw;
    bool Expressible = ZA.refineByCond(Refined, CJ->cond(), Dir);
    if (Refined.isBottom()) {
      ++Stats.ForwardProofs;
      return "forward zone state {" + ZA.describe(*Fw) +
             "} contradicts the branch direction";
    }
    if (!Expressible)
      return std::nullopt; // NC would carry no constraint: nothing to push

    // Backward pass: the condition-in-direction as a necessary
    // condition, pushed to the campaign entry.
    ZoneState NC = topWithClamps(ZA);
    if (!ZA.refineByCond(NC, CJ->cond(), Dir) || NC.isBottom())
      return std::nullopt;
    std::vector<std::string> Chain;
    if (runWp(Fn, InstrIndex, NC, Chain)) {
      ++Stats.WpProofs;
      std::ostringstream OS;
      OS << "all paths cut by weakest-precondition refinement";
      for (const std::string &S : Chain)
        OS << "; " << S;
      return OS.str();
    }
    return std::nullopt;
  }

private:
  const IRModule &M;
  const StaticSummary &Sum;
  const TaintResult *T;
  bool GlobalsStartAtInit = false;
  unsigned ToplevelFn = ~0u;
  std::vector<bool> FnReachable;
  std::vector<FnCtx> Ctx;
  /// callee fn -> (caller fn, call instruction) sites, entry-reachable
  /// callers only.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> CallSites;
  VerifyStats Stats;

  static ZoneState topWithClamps(const ZoneAnalysis &ZA) {
    ZoneState Z = ZoneState::top(ZA.numVars());
    for (unsigned V = 1; V <= ZA.numVars(); ++V) {
      int64_t Lo, Hi;
      vtRange(ZA.varType(V), Lo, Hi);
      Z.clampRange(V, Lo, Hi);
    }
    return Z;
  }

  static void havocTyped(const ZoneAnalysis &ZA, ZoneState &Z, unsigned V) {
    Z.havoc(V);
    int64_t Lo, Hi;
    vtRange(ZA.varType(V), Lo, Hi);
    Z.clampRange(V, Lo, Hi);
  }

  /// Backward transfer of one instruction over NC. \p Fw is the forward
  /// state just before the instruction (wrap-check context). Returns
  /// false when the path is cut at this instruction.
  bool wpInstr(ZoneAnalysis &ZA, unsigned Fn, const Instr &I,
               const ZoneState &Fw, ZoneState &NC,
               std::vector<std::string> &Chain) {
    switch (I.kind()) {
    case Instr::Kind::Store: {
      const auto *St = cast<StoreInstr>(&I);
      unsigned V = 0;
      if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address()))
        V = ZA.varOfSlot(FA->slotIndex());
      else if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address()))
        V = ZA.varOfGlobal(GA->globalIndex());
      else {
        // May-write through a pointer: constraints on any possible
        // target can no longer be transported.
        if (T->PT)
          for (unsigned O : T->PT->addressTargets(Fn, St->address())) {
            unsigned W = 0;
            if (T->PT->kindOf(O) == PointsToResult::LocKind::Slot &&
                T->PT->ownerFn(O) == Fn)
              W = ZA.varOfSlot(T->PT->slotIndexOf(O));
            else if (T->PT->kindOf(O) == PointsToResult::LocKind::Global)
              W = ZA.varOfGlobal(T->PT->globalIndexOf(O));
            if (W)
              havocTyped(ZA, NC, W);
          }
        return true;
      }
      if (!V)
        return true;
      if (!(St->valType() == ZA.varType(V))) {
        havocTyped(ZA, NC, V);
        return true;
      }
      // Cut check: the stored value's forward interval must intersect
      // NC's requirement on the cell.
      Interval Val = ZA.evalInterval(Fw, St->value());
      Interval Need = NC.varInterval(V);
      if (Val.Hi < Need.Lo || Need.Hi < Val.Lo) {
        Chain.push_back("store at " + locStr(I.loc()) +
                        " can never satisfy the necessary condition");
        return false;
      }
      if (auto A = ZA.matchAtom(Fw, St->value())) {
        if (A->Var == V)
          NC.shiftVar(V, -A->Off); // v_after = v_before + Off
        else if (A->Var == 0)
          NC.substituteConst(V, A->Off);
        else
          NC.substituteOffset(V, A->Var, A->Off);
        int64_t Lo, Hi;
        vtRange(ZA.varType(V), Lo, Hi);
        NC.clampRange(V, Lo, Hi);
        if (NC.isBottom()) {
          Chain.push_back("store at " + locStr(I.loc()) +
                          " contradicts the necessary condition");
          return false;
        }
        return true;
      }
      havocTyped(ZA, NC, V);
      return true;
    }
    case Instr::Kind::Copy: {
      const auto *Cp = cast<CopyInstr>(&I);
      if (T->PT)
        for (unsigned O : T->PT->addressTargets(Fn, Cp->dst())) {
          unsigned W = 0;
          if (T->PT->kindOf(O) == PointsToResult::LocKind::Slot &&
              T->PT->ownerFn(O) == Fn)
            W = ZA.varOfSlot(T->PT->slotIndexOf(O));
          else if (T->PT->kindOf(O) == PointsToResult::LocKind::Global)
            W = ZA.varOfGlobal(T->PT->globalIndexOf(O));
          if (W)
            havocTyped(ZA, NC, W);
        }
      return true;
    }
    case Instr::Kind::Call: {
      const auto *Ca = cast<CallInstr>(&I);
      if (T->PT) {
        unsigned Callee = T->PT->callGraph().indexOf(Ca->callee());
        if (Callee != CallGraph::kExternal) {
          for (unsigned V = 1; V <= ZA.numVars(); ++V)
            if (T->PT->mayMod(Callee, cellLoc(ZA, Fn, V)))
              havocTyped(ZA, NC, V);
        } else {
          // Unknown external callee: drop everything it may touch.
          for (unsigned V = 1; V <= ZA.numVars(); ++V)
            havocTyped(ZA, NC, V);
        }
      }
      if (Ca->destSlot()) {
        unsigned V = ZA.varOfSlot(*Ca->destSlot());
        if (V)
          havocTyped(ZA, NC, V);
      }
      return true;
    }
    default:
      return true; // jumps/ret/abort/halt carry no state effect
    }
  }

  unsigned cellLoc(const ZoneAnalysis &ZA, unsigned Fn, unsigned V) const {
    // The var's cell: probe the slot and global maps.
    for (unsigned S = 0; S < M.functions()[Fn]->Slots.size(); ++S)
      if (ZA.varOfSlot(S) == V)
        return T->PT->slotLoc(Fn, S);
    for (unsigned G = 0; G < M.globals().size(); ++G)
      if (ZA.varOfGlobal(G) == V)
        return T->PT->globalLoc(G);
    return T->PT->externalLoc();
  }

  static std::string locStr(SourceLocation L) {
    return L.isValid() ? L.toString() : "?";
  }

  void note(std::vector<std::string> &Chain, std::string S) {
    if (Chain.size() < 4)
      Chain.push_back(std::move(S));
  }

  /// The backward search. Returns true when every path from the campaign
  /// entry to (Fn, TargetInstr) is cut.
  bool runWp(unsigned Fn, unsigned TargetInstr, const ZoneState &NC0,
             std::vector<std::string> &Chain) {
    std::deque<WpItem> Work;
    {
      const FnCtx &C = ctx(Fn);
      WpItem It;
      It.Fn = Fn;
      It.Block = C.G->blockOf(TargetInstr);
      It.End = TargetInstr;
      It.Depth = 0;
      It.NC = NC0;
      Work.push_back(std::move(It));
    }
    unsigned Items = 0;
    std::map<std::pair<unsigned, unsigned>, unsigned> BlockVisits;

    while (!Work.empty()) {
      WpItem It = std::move(Work.front());
      Work.pop_front();
      if (++Items > Budgets::kItemsPerCandidate)
        return false;
      if (++Stats.WpItems > Budgets::kItemsPerModule)
        return false;
      unsigned &Seen = BlockVisits[{It.Fn, It.Block}];
      if (++Seen > Budgets::kBlockVisitsPerCandidate)
        return false;

      const FnCtx &C = ctx(It.Fn);
      ZoneAnalysis &ZA = *C.ZA;
      if (!ZA.converged())
        return false;
      const IRFunction &F = *M.functions()[It.Fn];
      const BasicBlock &BB = C.G->block(It.Block);

      // Forward prefix states of the block (for wrap checks and cuts).
      const auto &InOpt = ZA.inState(It.Block);
      if (!InOpt) {
        // The block is forward-unreachable: every path through it is
        // vacuously cut.
        note(Chain, "block at " + F.Name + " is zone-unreachable");
        continue;
      }
      std::vector<ZoneState> Prefix;
      Prefix.reserve(It.End - BB.Begin + 1);
      Prefix.push_back(*InOpt);
      bool FwCut = false;
      for (unsigned I = BB.Begin; I < It.End; ++I) {
        ZoneState S = Prefix.back();
        ZA.transferInstr(S, *F.Instrs[I]);
        if (S.isBottom()) {
          FwCut = true;
          break;
        }
        Prefix.push_back(std::move(S));
      }
      if (FwCut) {
        note(Chain, "suffix of block in " + F.Name +
                        " is forward-infeasible");
        continue;
      }

      // Walk the block backward.
      ZoneState NC = std::move(It.NC);
      bool Cut = false;
      for (unsigned I = It.End; I > BB.Begin; --I) {
        const Instr &Ins = *F.Instrs[I - 1];
        if (!wpInstr(ZA, It.Fn, Ins, Prefix[I - 1 - BB.Begin], NC,
                     Chain)) {
          Cut = true;
          break;
        }
        if (NC.isBottom()) {
          Cut = true;
          note(Chain, "necessary condition became contradictory in " +
                          F.Name);
          break;
        }
      }
      if (Cut)
        continue;

      // Meet with the forward state at the block entry: executions that
      // reach this block satisfy both.
      NC.meetWith(*InOpt);
      if (NC.isBottom()) {
        note(Chain, "forward state at block entry of " + F.Name +
                        " contradicts the necessary condition");
        continue;
      }

      if (It.Block == C.G->entry()) {
        if (!crossFunctionEntry(It, NC, Work, Chain))
          return false;
        // Entry blocks can still have loop predecessors — fall through.
      }

      // Predecessor edges, refined by the pred's own condition.
      unsigned N = static_cast<unsigned>(F.Instrs.size());
      for (unsigned P : BB.Preds) {
        const BasicBlock &PB = C.G->block(P);
        const Instr *Term = C.G->terminator(P);
        ZoneState NCP = NC;
        if (const auto *CJ = dyn_cast_or_null<CondJumpInstr>(Term)) {
          unsigned TrueBlock = CJ->trueTarget() < N
                                   ? C.G->blockOf(CJ->trueTarget())
                                   : Cfg::kUnset;
          unsigned FalseBlock = CJ->falseTarget() < N
                                    ? C.G->blockOf(CJ->falseTarget())
                                    : Cfg::kUnset;
          bool IsTrue = It.Block == TrueBlock;
          bool IsFalse = It.Block == FalseBlock;
          if (IsTrue != IsFalse) {
            ZA.refineByCond(NCP, CJ->cond(), IsTrue);
            if (NCP.isBottom()) {
              note(Chain, "branch into the block in " + F.Name +
                              " contradicts the necessary condition");
              continue;
            }
          }
        }
        WpItem Next;
        Next.Fn = It.Fn;
        Next.Block = P;
        Next.End = PB.End;
        Next.Depth = It.Depth;
        Next.NC = std::move(NCP);
        Work.push_back(std::move(Next));
      }
    }
    return true;
  }

  /// NC reached the entry of \p It.Fn. For the toplevel: check the
  /// campaign entry state; for other functions: map NC into every call
  /// site. Returns false when the candidate must become UNKNOWN.
  bool crossFunctionEntry(const WpItem &It, const ZoneState &NC,
                          std::deque<WpItem> &Work,
                          std::vector<std::string> &Chain) {
    const FnCtx &C = ctx(It.Fn);
    ZoneAnalysis &ZA = *C.ZA;
    if (It.Fn == ToplevelFn) {
      ZoneState E = ZA.entryState();
      E.meetWith(NC);
      if (E.isBottom()) {
        note(Chain, "campaign entry state contradicts the necessary "
                    "condition");
        return true; // this path is cut
      }
      return false; // consistent at the campaign entry: no proof
    }
    if (It.Depth + 1 > Budgets::kCallDepth)
      return false;
    const std::vector<std::pair<unsigned, unsigned>> &Sites =
        CallSites[It.Fn];
    if (Sites.empty())
      return true; // no reachable caller: vacuously cut
    for (const auto &[CallerFn, CallIdx] : Sites) {
      const FnCtx &CC = ctx(CallerFn);
      ZoneAnalysis &CZA = *CC.ZA;
      if (!CZA.converged())
        return false;
      auto CFw = CZA.stateBefore(CallIdx);
      if (!CFw) {
        note(Chain, "call site in " +
                        M.functions()[CallerFn]->Name +
                        " is zone-unreachable");
        continue;
      }
      if (CFw->isBottom()) {
        note(Chain, "call site in " +
                        M.functions()[CallerFn]->Name +
                        " is forward-infeasible");
        continue;
      }
      auto MappedOpt = mapThroughCall(ZA, NC, CZA, *CFw, It.Fn,
                                      CallerFn, CallIdx);
      if (!MappedOpt)
        return false; // nothing mapped: the search could never cut
      ZoneState Mapped = std::move(*MappedOpt);
      if (Mapped.isBottom()) {
        note(Chain, "argument values at the call in " +
                        M.functions()[CallerFn]->Name +
                        " contradict the necessary condition");
        continue;
      }
      ZoneState Met = Mapped;
      Met.meetWith(*CFw);
      if (Met.isBottom()) {
        note(Chain, "forward state at the call in " +
                        M.functions()[CallerFn]->Name +
                        " contradicts the necessary condition");
        continue;
      }
      WpItem Next;
      Next.Fn = CallerFn;
      Next.Block = CC.G->blockOf(CallIdx);
      Next.End = CallIdx;
      Next.Depth = It.Depth + 1;
      Next.NC = std::move(Met);
      Work.push_back(std::move(Next));
    }
    return true;
  }

  /// Translate \p NC (callee var space) to the caller var space at one
  /// call site. Unmappable constraints are dropped (weakening). Returns
  /// a bottom state when a mapped constraint is immediately
  /// contradictory, and nullopt when no constraint survived at all (the
  /// backward search could then never cut: give up early).
  std::optional<ZoneState>
  mapThroughCall(const ZoneAnalysis &CalleeZA, const ZoneState &NC,
                 const ZoneAnalysis &CallerZA, const ZoneState &CallerFw,
                 unsigned CalleeFn, unsigned CallerFn, unsigned CallIdx) {
    const IRFunction &Callee = *M.functions()[CalleeFn];
    const auto *Ca =
        cast<CallInstr>(M.functions()[CallerFn]->Instrs[CallIdx].get());

    // Callee var -> caller atom (Var 0 + Off encodes a constant).
    struct Mapping {
      bool Ok = false;
      unsigned Var = 0;
      int64_t Off = 0;
    };
    std::vector<Mapping> Map(CalleeZA.numVars() + 1);
    Map[0] = {true, 0, 0};
    for (unsigned V = 1; V <= CalleeZA.numVars(); ++V) {
      // Parameter cells map through the argument expression.
      bool IsParam = false;
      for (unsigned P = 0; P < Callee.NumParams; ++P) {
        if (CalleeZA.varOfSlot(P) != V)
          continue;
        IsParam = true;
        if (P >= Ca->args().size())
          break;
        const IRExpr *Arg = Ca->args()[P].get();
        ValType PVT = P < Callee.ParamVTs.size() ? Callee.ParamVTs[P]
                                                 : ValType::int32();
        if (!(Arg->valType() == PVT) || !(CalleeZA.varType(V) == PVT))
          break;
        if (auto A = CallerZA.matchAtom(CallerFw, Arg))
          Map[V] = {true, A->Var, A->Off};
        break;
      }
      if (IsParam)
        continue;
      // Global cells map to the caller's cell for the same global.
      for (unsigned G = 0; G < M.globals().size(); ++G) {
        if (CalleeZA.varOfGlobal(G) != V)
          continue;
        unsigned CV = CallerZA.varOfGlobal(G);
        if (CV && CallerZA.varType(CV) == CalleeZA.varType(V))
          Map[V] = {true, CV, 0};
        break;
      }
      // Local (non-param) cells hold arbitrary values at entry: never
      // mappable.
    }

    ZoneState Out = ZoneState::top(CallerZA.numVars());
    for (unsigned V = 1; V <= CallerZA.numVars(); ++V) {
      int64_t Lo, Hi;
      vtRange(CallerZA.varType(V), Lo, Hi);
      Out.clampRange(V, Lo, Hi);
    }
    using I128 = __int128;
    auto Clamp = [](I128 C) -> int64_t {
      if (C >= ZoneState::kInf)
        return ZoneState::kInf;
      if (C <= -I128(ZoneState::kInf))
        return -ZoneState::kInf + 1;
      return static_cast<int64_t>(C);
    };
    unsigned MappedBounds = 0;
    for (unsigned I = 0; I <= CalleeZA.numVars(); ++I)
      for (unsigned J = 0; J <= CalleeZA.numVars(); ++J) {
        if (I == J || NC.bound(I, J) >= ZoneState::kInf)
          continue;
        if (!Map[I].Ok || !Map[J].Ok)
          continue;
        // value(I) - value(J) <= c with value(X) = var'(X) + off(X).
        I128 B = I128(NC.bound(I, J)) - Map[I].Off + Map[J].Off;
        ++MappedBounds;
        if (Map[I].Var == Map[J].Var) {
          if (B < 0) {
            Out.addBound(0, 0, -1); // constant contradiction -> bottom
            return Out;
          }
          continue;
        }
        Out.addBound(Map[I].Var, Map[J].Var, Clamp(B));
        if (Out.isBottom())
          return Out;
      }
    if (MappedBounds == 0)
      return std::nullopt;
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Public prover entry points
//===----------------------------------------------------------------------===//

/// site id -> (function, instruction) for every CondJump in the module.
std::vector<std::pair<unsigned, unsigned>>
branchSiteIndex(const IRModule &M) {
  constexpr unsigned kNoFn = ~0u;
  std::vector<std::pair<unsigned, unsigned>> SiteAt(M.numBranchSites(),
                                                    {kNoFn, 0});
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I)
      if (const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[I].get()))
        if (CJ->siteId() < SiteAt.size())
          SiteAt[CJ->siteId()] = {Fn, I};
  }
  return SiteAt;
}

} // namespace

BranchProofs dart::proveBranchDirections(const IRModule &M,
                                         const std::string &ToplevelName,
                                         const StaticSummary &Sum,
                                         bool GlobalsStartAtInit) {
  BranchProofs P;
  P.ProvedDirs.assign(2 * size_t(M.numBranchSites()), false);
  P.Chains.assign(2 * size_t(M.numBranchSites()), std::string());
  Prover Pr(M, ToplevelName, Sum, GlobalsStartAtInit);
  if (!Pr.usable()) {
    P.Stats = Pr.stats();
    return P;
  }
  auto SiteAt = branchSiteIndex(M);
  for (unsigned S = 0; S < M.numBranchSites(); ++S) {
    if (SiteAt[S].first == ~0u)
      continue;
    for (unsigned Dir = 0; Dir < 2; ++Dir) {
      size_t Bit = 2 * size_t(S) + Dir;
      if (Bit >= Sum.CoverableDirs.size() || !Sum.CoverableDirs[Bit])
        continue;
      ++Pr.stats().DirsConsidered;
      if (auto Chain = Pr.proveDirection(SiteAt[S].first, SiteAt[S].second,
                                         Dir == 1)) {
        P.ProvedDirs[Bit] = true;
        P.Chains[Bit] = std::move(*Chain);
        ++P.ProvedCount;
        ++Pr.stats().DirsProved;
      }
    }
  }
  P.Stats = Pr.stats();
  return P;
}

void dart::applyBranchProofs(StaticSummary &Sum, const BranchProofs &P) {
  for (size_t Bit = 0;
       Bit < P.ProvedDirs.size() && Bit < Sum.CoverableDirs.size(); ++Bit) {
    if (!P.ProvedDirs[Bit] || !Sum.CoverableDirs[Bit])
      continue;
    Sum.CoverableDirs[Bit] = false;
    --Sum.CoverableCount;
  }
}

//===----------------------------------------------------------------------===//
// Full triage
//===----------------------------------------------------------------------===//

VerifyResult dart::runVerifier(const IRModule &M,
                               const std::string &ToplevelName,
                               const StaticSummary &Sum,
                               const BranchProofs &P,
                               bool GlobalsStartAtInit) {
  VerifyResult R;
  R.Stats = P.Stats;
  Prover Pr(M, ToplevelName, Sum, GlobalsStartAtInit);
  auto SiteAt = branchSiteIndex(M);

  // Branch directions.
  for (unsigned S = 0; S < M.numBranchSites(); ++S) {
    if (SiteAt[S].first == ~0u)
      continue; // site id gap: no instruction, nothing to triage
    unsigned Fn = SiteAt[S].first, Idx = SiteAt[S].second;
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned Dir = 0; Dir < 2; ++Dir) {
      size_t Bit = 2 * size_t(S) + Dir;
      VerifySite VS;
      VS.Kind = VerifySiteKind::BranchDir;
      VS.Function = F.Name;
      VS.Loc = F.Instrs[Idx]->loc();
      VS.Site = S;
      VS.Direction = Dir == 1;
      if (Bit < P.ProvedDirs.size() && P.ProvedDirs[Bit]) {
        VS.V = Verdict::Proved;
        VS.Detail = P.Chains[Bit];
      } else if (Bit >= Sum.CoverableDirs.size() ||
                 !Sum.CoverableDirs[Bit]) {
        VS.V = Verdict::Proved;
        if (!Pr.usable() || !Pr.reachable(Fn))
          VS.Detail = "function is unreachable from the toplevel";
        else if (S < Sum.SiteUnreachable.size() && Sum.SiteUnreachable[S])
          VS.Detail = "site is statically unreachable (interval)";
        else
          VS.Detail = "condition is monovalent with a wrap-free proof "
                      "(interval): it never takes this direction";
      } else {
        VS.V = Verdict::Unknown;
        VS.Detail = "no proof; candidate for directed testing";
      }
      R.Sites.push_back(std::move(VS));
    }
  }

  // Abort/assert sites in entry-reachable functions.
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    if (Pr.usable() && !Pr.reachable(Fn))
      continue;
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *A = dyn_cast<AbortInstr>(F.Instrs[I].get());
      if (!A)
        continue;
      VerifySite VS;
      VS.Kind = VerifySiteKind::AbortSite;
      VS.Function = F.Name;
      VS.Loc = F.Instrs[I]->loc();
      VS.Detail = A->why() == AbortKind::AssertFailure
                      ? "assertion failure site"
                      : "abort call site";
      if (Pr.provedUnreachable(Fn, I)) {
        VS.V = Verdict::Proved;
        VS.Detail += ": proved unreachable";
      } else {
        VS.V = Verdict::Unknown;
      }
      R.Sites.push_back(std::move(VS));
    }
  }

  // Lint candidates.
  for (LintFinding &L : runLintAnalysis(M, ToplevelName)) {
    VerifySite VS;
    VS.Kind = VerifySiteKind::LintSite;
    VS.Function = L.Function;
    VS.Loc = L.Loc;
    VS.Lint = L.Kind;
    VS.Detail = L.Message;
    if (L.Kind == LintKind::UnreachableCode) {
      VS.V = Verdict::Proved; // the finding IS an unreachability proof
    } else if (L.FnIndex != ~0u && L.InstrIndex != ~0u &&
               Pr.provedUnreachable(L.FnIndex, L.InstrIndex)) {
      VS.V = Verdict::Proved;
      VS.Detail += " (site proved unreachable)";
    } else {
      VS.V = Verdict::Unknown;
    }
    R.Sites.push_back(std::move(VS));
  }

  // P's counters describe the branch-direction proofs; add the triage
  // prover's own reachability work on top (it is a separate instance).
  R.Stats = P.Stats;
  R.Stats.WpItems += Pr.stats().WpItems;
  R.Stats.FunctionsAnalyzed += Pr.stats().FunctionsAnalyzed;
  R.Stats.FunctionsConverged += Pr.stats().FunctionsConverged;
  return R;
}

//===----------------------------------------------------------------------===//
// Dynamic evidence
//===----------------------------------------------------------------------===//

namespace {

bool lintKindTraps(LintKind K) {
  switch (K) {
  case LintKind::DivisionByZero:
  case LintKind::AssertAlwaysFails:
  case LintKind::NullDereference:
  case LintKind::OutOfBoundsAccess:
  case LintKind::ControlUnreachableBug:
    return true;
  default:
    return false;
  }
}

std::string inputsToString(
    const std::vector<std::pair<std::string, int64_t>> &Inputs) {
  std::ostringstream OS;
  for (size_t I = 0; I < Inputs.size(); ++I)
    OS << (I ? ", " : "") << Inputs[I].first << " = " << Inputs[I].second;
  return OS.str();
}

} // namespace

void dart::mergeDynamicEvidence(VerifyResult &R, const CampaignEvidence &E) {
  for (VerifySite &S : R.Sites) {
    if (S.V != Verdict::Unknown)
      continue;
    if (S.Kind == VerifySiteKind::BranchDir) {
      size_t Bit = 2 * size_t(S.Site) + (S.Direction ? 1 : 0);
      if (Bit < E.Coverage.size() && E.Coverage[Bit]) {
        S.V = Verdict::Bug;
        S.Detail = "witnessed: direction covered by the campaign";
        for (const auto &W : E.Witnesses)
          if (W.Bit == Bit) {
            S.WitnessRun = W.Run;
            S.WitnessInputs = W.Inputs;
            S.Detail = std::string("witnessed by run ") +
                       std::to_string(W.Run) +
                       (W.Directed ? " (directed)" : " (initial/random)");
            if (!W.Inputs.empty())
              S.Detail += " with " + inputsToString(W.Inputs);
            break;
          }
      }
      continue;
    }
    // Abort and trap-lint sites match campaign errors by location.
    if (S.Kind == VerifySiteKind::LintSite && !lintKindTraps(S.Lint))
      continue;
    if (!S.Loc.isValid())
      continue;
    for (const auto &Err : E.Errors) {
      if (!(Err.Loc == S.Loc))
        continue;
      S.V = Verdict::Bug;
      S.WitnessRun = Err.Run;
      S.WitnessInputs = Err.Inputs;
      S.Detail = "witnessed by run " + std::to_string(Err.Run) + ": " +
                 Err.Message;
      if (!Err.Inputs.empty())
        S.Detail += " with " + inputsToString(Err.Inputs);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

namespace {

std::string siteLabel(const VerifySite &S) {
  std::ostringstream OS;
  switch (S.Kind) {
  case VerifySiteKind::BranchDir:
    OS << "branch site " << S.Site << " (" << S.Function << ":"
       << S.Loc.toString() << ") direction "
       << (S.Direction ? "true" : "false");
    break;
  case VerifySiteKind::AbortSite:
    OS << "abort site (" << S.Function << ":" << S.Loc.toString() << ")";
    break;
  case VerifySiteKind::LintSite:
    OS << "lint " << lintKindName(S.Lint) << " (" << S.Function << ":"
       << S.Loc.toString() << ")";
    break;
  }
  return OS.str();
}

const char *siteKindName(VerifySiteKind K) {
  switch (K) {
  case VerifySiteKind::BranchDir:
    return "branch-dir";
  case VerifySiteKind::AbortSite:
    return "abort-site";
  case VerifySiteKind::LintSite:
    return "lint-site";
  }
  return "branch-dir";
}

} // namespace

std::string dart::verifyResultToText(const VerifyResult &R) {
  std::ostringstream OS;
  for (const VerifySite &S : R.Sites) {
    OS << verdictName(S.V);
    for (unsigned Pad = static_cast<unsigned>(
             std::string(verdictName(S.V)).size());
         Pad < 8; ++Pad)
      OS << ' ';
    OS << ' ' << siteLabel(S);
    if (!S.Detail.empty())
      OS << ": " << S.Detail;
    OS << "\n";
  }
  OS << "verify: " << R.Sites.size() << " sites - "
     << R.count(Verdict::Proved) << " proved, " << R.count(Verdict::Bug)
     << " bugs, " << R.count(Verdict::Unknown) << " unknown\n";
  return OS.str();
}

std::string dart::verifyResultToJson(const VerifyResult &R) {
  std::ostringstream OS;
  OS << "{\"sites\":[";
  for (size_t I = 0; I < R.Sites.size(); ++I) {
    const VerifySite &S = R.Sites[I];
    if (I)
      OS << ",";
    OS << "{\"verdict\":\"" << verdictName(S.V) << "\",\"kind\":\""
       << siteKindName(S.Kind) << "\",\"function\":\""
       << jsonEscape(S.Function) << "\",\"line\":" << S.Loc.Line
       << ",\"column\":" << S.Loc.Column;
    if (S.Kind == VerifySiteKind::BranchDir)
      OS << ",\"site\":" << S.Site << ",\"direction\":"
         << (S.Direction ? "true" : "false");
    if (S.Kind == VerifySiteKind::LintSite)
      OS << ",\"lint\":\"" << lintKindName(S.Lint) << "\"";
    if (S.WitnessRun)
      OS << ",\"witnessRun\":" << S.WitnessRun;
    if (!S.WitnessInputs.empty()) {
      OS << ",\"witnessInputs\":[";
      for (size_t J = 0; J < S.WitnessInputs.size(); ++J)
        OS << (J ? "," : "") << "{\"name\":\""
           << jsonEscape(S.WitnessInputs[J].first)
           << "\",\"value\":" << S.WitnessInputs[J].second << "}";
      OS << "]";
    }
    OS << ",\"detail\":\"" << jsonEscape(S.Detail) << "\"}";
  }
  OS << "],\"summary\":{\"proved\":" << R.count(Verdict::Proved)
     << ",\"bugs\":" << R.count(Verdict::Bug)
     << ",\"unknown\":" << R.count(Verdict::Unknown) << "}}";
  return OS.str();
}

std::string dart::verifyResultToSarif(const VerifyResult &R) {
  std::ostringstream OS;
  OS << "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/"
        "sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":"
        "\"dart-verify\",\"rules\":[{\"id\":\"branch-dir\"},{\"id\":"
        "\"abort-site\"},{\"id\":\"lint-site\"}]}},\"results\":[";
  for (size_t I = 0; I < R.Sites.size(); ++I) {
    const VerifySite &S = R.Sites[I];
    const char *Level = S.V == Verdict::Bug
                            ? "error"
                            : S.V == Verdict::Proved ? "note" : "warning";
    if (I)
      OS << ",";
    OS << "{\"ruleId\":\"" << siteKindName(S.Kind) << "\",\"level\":\""
       << Level << "\",\"message\":{\"text\":\""
       << jsonEscape(std::string(verdictName(S.V)) + " " + siteLabel(S) +
                     (S.Detail.empty() ? "" : ": " + S.Detail))
       << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\""
       << ":{\"uri\":\"" << jsonEscape(S.Function)
       << "\"},\"region\":{\"startLine\":"
       << (S.Loc.Line > 0 ? S.Loc.Line : 1)
       << ",\"startColumn\":" << (S.Loc.Column > 0 ? S.Loc.Column : 1)
       << "}}}]}";
  }
  OS << "]}]}";
  return OS.str();
}
