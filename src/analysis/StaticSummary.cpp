//===- StaticSummary.cpp - Fold analyses into per-site verdicts -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticSummary.h"
#include "analysis/Cfg.h"

#include <sstream>

using namespace dart;

std::string StaticSummary::toString() const {
  std::ostringstream OS;
  OS << "static summary: " << NumBranchSites << " branch sites, "
     << prunedCount() << " pruned (";
  unsigned Untainted = 0, Mono = 0, Unreach = 0;
  for (unsigned S = 0; S < NumBranchSites; ++S) {
    if (!SiteTainted[S])
      ++Untainted;
    else if (SiteUnreachable[S])
      ++Unreach;
    else if (SiteMonovalent[S] && SiteExact[S])
      ++Mono;
  }
  OS << Untainted << " taint-free, " << Mono << " monovalent, " << Unreach
     << " unreachable)\n";
  return OS.str();
}

StaticSummary dart::computeStaticSummary(const IRModule &M,
                                         const std::string &ToplevelName) {
  StaticSummary Sum;
  Sum.NumBranchSites = M.numBranchSites();
  Sum.SiteTainted.assign(Sum.NumBranchSites, true);
  Sum.SiteMonovalent.assign(Sum.NumBranchSites, false);
  Sum.SiteExact.assign(Sum.NumBranchSites, false);
  Sum.SiteUnreachable.assign(Sum.NumBranchSites, false);
  Sum.PrunedSites.assign(Sum.NumBranchSites, false);

  TaintResult T = runTaintAnalysis(M, ToplevelName);
  if (T.PT)
    Sum.PointsTo = T.PT->stats();

  // Dependence layer, reusing the taint pass's points-to solve. Sites
  // whose condition has an empty data-source set join the prune fold
  // below; the relevant-input sets and control edges feed the sliced
  // search's statistics, the lints, and the slice API.
  auto Dep = std::make_shared<DependenceResult>(
      runDependenceAnalysis(M, ToplevelName, T.PT));
  Sum.SiteNoInputDeps.assign(Sum.NumBranchSites, false);
  for (unsigned S = 0;
       S < Sum.NumBranchSites && S < Dep->SiteDataInputs.size(); ++S)
    Sum.SiteNoInputDeps[S] = !Dep->SiteDataInputs[S].any();
  Sum.Dependence = Dep;

  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    Cfg G = Cfg::build(F);
    IntervalAnalysis::Config C;
    C.ParamsExact = F.Name == ToplevelName && !T.InternallyCalled[Fn];
    IntervalAnalysis IA(M, G, T, Fn, C);
    IA.run();

    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[I].get());
      if (!CJ || CJ->siteId() >= Sum.NumBranchSites)
        continue;
      unsigned Site = CJ->siteId();
      Sum.SiteTainted[Site] = T.exprTainted(Fn, CJ->cond());
      if (!IA.converged())
        continue;
      if (!IA.instrExecutable(I)) {
        Sum.SiteUnreachable[Site] = true;
        continue;
      }
      AbsState S = IA.stateBefore(I);
      Interval CI = IA.evalExpr(S, CJ->cond());
      Sum.SiteMonovalent[Site] = !CI.canBeZero() || !CI.canBeNonzero();
      Sum.SiteExact[Site] = CI.Exact;
    }
  }

  for (unsigned S = 0; S < Sum.NumBranchSites; ++S)
    Sum.PrunedSites[S] = !Sum.SiteTainted[S] || Sum.SiteNoInputDeps[S] ||
                         Sum.SiteUnreachable[S] ||
                         (Sum.SiteMonovalent[S] && Sum.SiteExact[S]);
  return Sum;
}
