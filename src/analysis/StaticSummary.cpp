//===- StaticSummary.cpp - Fold analyses into per-site verdicts -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticSummary.h"
#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"

#include <sstream>

using namespace dart;

std::string StaticSummary::toString() const {
  std::ostringstream OS;
  OS << "static summary: " << NumBranchSites << " branch sites, "
     << prunedCount() << " pruned (";
  unsigned Untainted = 0, Mono = 0, Unreach = 0;
  for (unsigned S = 0; S < NumBranchSites; ++S) {
    if (!SiteTainted[S])
      ++Untainted;
    else if (SiteUnreachable[S])
      ++Unreach;
    else if (SiteMonovalent[S] && SiteExact[S])
      ++Mono;
  }
  OS << Untainted << " taint-free, " << Mono << " monovalent, " << Unreach
     << " unreachable)\n";
  return OS.str();
}

StaticSummary dart::computeStaticSummary(const IRModule &M,
                                         const std::string &ToplevelName) {
  StaticSummary Sum;
  Sum.NumBranchSites = M.numBranchSites();
  Sum.SiteTainted.assign(Sum.NumBranchSites, true);
  Sum.SiteMonovalent.assign(Sum.NumBranchSites, false);
  Sum.SiteExact.assign(Sum.NumBranchSites, false);
  Sum.SiteUnreachable.assign(Sum.NumBranchSites, false);
  Sum.PrunedSites.assign(Sum.NumBranchSites, false);

  auto TP = std::make_shared<TaintResult>(runTaintAnalysis(M, ToplevelName));
  const TaintResult &T = *TP;
  Sum.Taint = TP;
  if (T.PT)
    Sum.PointsTo = T.PT->stats();

  // Dependence layer, reusing the taint pass's points-to solve. Sites
  // whose condition has an empty data-source set join the prune fold
  // below; the relevant-input sets and control edges feed the sliced
  // search's statistics, the lints, and the slice API.
  auto Dep = std::make_shared<DependenceResult>(
      runDependenceAnalysis(M, ToplevelName, T.PT));
  Sum.SiteNoInputDeps.assign(Sum.NumBranchSites, false);
  for (unsigned S = 0;
       S < Sum.NumBranchSites && S < Dep->SiteDataInputs.size(); ++S)
    Sum.SiteNoInputDeps[S] = !Dep->SiteDataInputs[S].any();
  Sum.Dependence = Dep;

  constexpr unsigned kNoFn = ~0u;
  std::vector<unsigned> SiteFn(Sum.NumBranchSites, kNoFn);
  // For monovalent sites with a wrap-free proof: the one direction the
  // condition takes (1 = true); -1 when no such proof exists.
  std::vector<int8_t> SiteOnlyDir(Sum.NumBranchSites, -1);

  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    Cfg G = Cfg::build(F);
    IntervalAnalysis::Config C;
    C.ParamsExact = F.Name == ToplevelName && !T.InternallyCalled[Fn];
    IntervalAnalysis IA(M, G, T, Fn, C);
    IA.run();

    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[I].get());
      if (!CJ || CJ->siteId() >= Sum.NumBranchSites)
        continue;
      unsigned Site = CJ->siteId();
      SiteFn[Site] = Fn;
      Sum.SiteTainted[Site] = T.exprTainted(Fn, CJ->cond());
      if (!IA.converged())
        continue;
      if (!IA.instrExecutable(I)) {
        Sum.SiteUnreachable[Site] = true;
        continue;
      }
      AbsState S = IA.stateBefore(I);
      Interval CI = IA.evalExpr(S, CJ->cond());
      Sum.SiteMonovalent[Site] = !CI.canBeZero() || !CI.canBeNonzero();
      Sum.SiteExact[Site] = CI.Exact;
      if (Sum.SiteMonovalent[Site] && Sum.SiteExact[Site])
        SiteOnlyDir[Site] = CI.canBeZero() ? 0 : 1;
    }
  }

  for (unsigned S = 0; S < Sum.NumBranchSites; ++S)
    Sum.PrunedSites[S] = !Sum.SiteTainted[S] || Sum.SiteNoInputDeps[S] ||
                         Sum.SiteUnreachable[S] ||
                         (Sum.SiteMonovalent[S] && Sum.SiteExact[S]);

  // The early-exit universe: every direction minus what a proof removes.
  // Only refutations shrink it — reachability is the call graph's (no
  // indirect calls in the IR, so the closure is exact), unreachability
  // and single-direction facts come with the interval analysis'
  // converged/Exact certificates.
  CallGraph CG = CallGraph::build(M);
  unsigned Toplevel = CG.indexOf(ToplevelName);
  std::vector<bool> FnReachable;
  if (Toplevel != CallGraph::kExternal)
    FnReachable = CG.transitiveCallees(Toplevel);
  Sum.CoverableDirs.assign(2 * size_t(Sum.NumBranchSites), false);
  for (unsigned S = 0; S < Sum.NumBranchSites; ++S) {
    if (SiteFn[S] == kNoFn)
      continue; // site id gap: never executes
    if (!FnReachable.empty() && !FnReachable[SiteFn[S]])
      continue; // function never called from the toplevel
    if (Sum.SiteUnreachable[S])
      continue;
    for (unsigned Dir = 0; Dir < 2; ++Dir) {
      if (SiteOnlyDir[S] >= 0 && unsigned(SiteOnlyDir[S]) != Dir)
        continue; // proved: the condition never takes this direction
      Sum.CoverableDirs[2 * S + Dir] = true;
      ++Sum.CoverableCount;
    }
  }
  return Sum;
}
