//===- StaticSummary.h - Per-program static facts for the engines -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product the directed search consumes from the dataflow framework:
/// one verdict per branch site. A site is *prunable* when the solver
/// probe for its negated path predicate is statically known to be
/// Unsat, so the engine can mark the branch Done at birth and never
/// push it as a flip candidate. Three sufficient conditions:
///
///  1. Taint-free: the condition reads no input-reachable storage
///     (Taint.h), so on every run it is concrete and the recorded
///     predicate is the trivially-true placeholder — its negation is
///     constant-false.
///  2. Monovalent and Exact: interval analysis proves the condition has
///     a single truth value on every execution (Interval.h), and the
///     Exact bit certifies the proof transfers to the solver's
///     ideal-integer theory — the negated constraint is Unsat within the
///     input domains, exactly what the unpruned engine would discover by
///     paying a solver call.
///  3. Statically unreachable: the site can never execute, so its Done
///     bit is never consulted.
///
/// Pruning must not change anything observable except solver traffic:
/// path constraints are still recorded (prefixes, coverage bitmaps, and
/// run schedules are untouched), diff-tested in tests/analysis_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_STATICSUMMARY_H
#define DART_ANALYSIS_STATICSUMMARY_H

#include "analysis/Dependence.h"
#include "analysis/Interval.h"
#include "analysis/PointsTo.h"
#include "analysis/Taint.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace dart {

struct StaticSummary {
  unsigned NumBranchSites = 0;
  /// Solver-shape counters of the points-to analysis the verdicts are
  /// built on (surfaced by --stats).
  PointsToStats PointsTo;
  /// Interprocedural dependence layer: per-site relevant-input sets,
  /// control-dependence edges, and the source universe. Shared (one
  /// solve) with the lints, the slice API, and --stats.
  std::shared_ptr<const DependenceResult> Dependence;
  /// The taint/alias solve the verdicts are built on, kept alive so the
  /// verifier (Verify.h) can reuse it instead of re-running points-to.
  std::shared_ptr<const TaintResult> Taint;
  /// Site may observe a symbolic input (conservative default: true).
  std::vector<bool> SiteTainted;
  /// The dependence layer found no input source among the condition's
  /// data dependences: the condition can depend on no symbolic input, so
  /// its negated path constraint is statically Unsat (same argument as
  /// taint-freeness, reached through the set-valued lattice).
  std::vector<bool> SiteNoInputDeps;
  /// Interval analysis proved a single truth value on every execution.
  std::vector<bool> SiteMonovalent;
  /// The monovalence proof is wrap-free (transfers to the ideal theory).
  std::vector<bool> SiteExact;
  /// No statically feasible path reaches the site.
  std::vector<bool> SiteUnreachable;
  /// The engine verdict: never push this site as a flip candidate.
  std::vector<bool> PrunedSites;
  /// The coverage universe for early exit, bit `2*site + direction` (the
  /// engines' coverage-bitmap encoding): set when the campaign could
  /// conceivably cover that direction. Excluded are sites whose id never
  /// appears in the module, sites in functions the call graph cannot
  /// reach from the toplevel, statically unreachable sites, and — for
  /// monovalent sites with a wrap-free proof — the direction the
  /// condition can never take. Deliberately an *over*approximation
  /// otherwise: a direction wrongly kept only delays early exit (the run
  /// budget still bounds the campaign); a direction wrongly dropped
  /// could stop a search with work left, so only proofs remove bits.
  std::vector<bool> CoverableDirs;
  /// Number of set bits in CoverableDirs.
  unsigned CoverableCount = 0;

  unsigned prunedCount() const {
    unsigned N = 0;
    for (bool B : PrunedSites)
      N += B;
    return N;
  }

  std::string toString() const;
};

/// Run taint + per-function interval analysis and fold the results into
/// per-site verdicts. \p ToplevelName seeds the taint analysis; its
/// parameters get Exact full-domain intervals only when the generated
/// driver is its sole caller.
StaticSummary computeStaticSummary(const IRModule &M,
                                   const std::string &ToplevelName);

} // namespace dart

#endif // DART_ANALYSIS_STATICSUMMARY_H
