//===- Cfg.h - Control-flow graph over the RAM-machine IR -------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit control-flow graph over `IRFunction::Instrs`. The paper's
/// static layer (§3.1) extracts the program interface; this CFG is the
/// substrate for the dataflow analyses that extend that layer: basic
/// blocks, successor/predecessor edges, reverse postorder, entry
/// reachability, and dominators (Cooper-Harvey-Kennedy).
///
/// Block boundaries follow the classic leader rule: instruction 0, every
/// jump target, and every instruction after a terminator (CondJump, Jump,
/// Ret, Abort, Halt) starts a block. Blocks are numbered in instruction
/// order, so block 0 is always the entry.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_CFG_H
#define DART_ANALYSIS_CFG_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace dart {

struct BasicBlock {
  unsigned Id = 0;
  /// Instruction index range [Begin, End) in IRFunction::Instrs.
  unsigned Begin = 0, End = 0;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

class Cfg {
public:
  /// Build the CFG for \p F. \p F must outlive the Cfg.
  static Cfg build(const IRFunction &F);

  const IRFunction &function() const { return *F; }
  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  const BasicBlock &block(unsigned Id) const { return Blocks[Id]; }
  /// The block containing instruction \p InstrIndex.
  unsigned blockOf(unsigned InstrIndex) const { return BlockOf[InstrIndex]; }
  unsigned entry() const { return 0; }

  /// The terminator instruction of \p B, or null when the block falls
  /// through (its last instruction is not a terminator).
  const Instr *terminator(unsigned B) const;

  /// Reachable blocks in reverse postorder (entry first). Blocks not listed
  /// here are unreachable from the entry by any CFG path.
  const std::vector<unsigned> &rpo() const { return Rpo; }
  bool isReachable(unsigned B) const { return RpoIndex[B] != kUnset; }
  /// Position of \p B in rpo(); only meaningful for reachable blocks.
  unsigned rpoIndex(unsigned B) const { return RpoIndex[B]; }

  /// Immediate dominator of \p B. The entry is its own idom; unreachable
  /// blocks report kUnset.
  unsigned idom(unsigned B) const { return Idom[B]; }
  /// Does \p A dominate \p B? (Reflexive; false if either is unreachable.)
  bool dominates(unsigned A, unsigned B) const;

  std::string toString() const;

  static constexpr unsigned kUnset = ~0u;

private:
  const IRFunction *F = nullptr;
  std::vector<BasicBlock> Blocks;
  std::vector<unsigned> BlockOf;
  std::vector<unsigned> Rpo;
  std::vector<unsigned> RpoIndex;
  std::vector<unsigned> Idom;

  void computeRpo();
  void computeDominators();
};

} // namespace dart

#endif // DART_ANALYSIS_CFG_H
