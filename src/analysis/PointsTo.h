//===- PointsTo.h - Andersen-style points-to over the IR --------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-insensitive, field-insensitive, inclusion-based (Andersen)
/// points-to analysis over the RAM-machine IR. The paper's machine deals
/// in raw addresses (§2.2); the PR-4 dataflow layer was alias-blind —
/// any store through a computed address either killed precision
/// wholesale (taint: every escaped slot is permanently symbolic) or was
/// ignored as unreachable (intervals). This analysis gives every pass a
/// common answer to "which objects can this address expression denote?".
///
/// Abstract locations (one blob per object — field-insensitive):
///
///   External      everything the driver owns: the cells backing pointer
///                 inputs, external-function return targets, and anything
///                 handed to a native/external callee. External is its own
///                 points-to member (driver cells point at driver cells).
///   Global(g)     one per module global (arrays included).
///   Slot(f,s)     one per frame slot, conflating frames of f (recursion).
///   Heap(f,i)     one per malloc call site (function f, instruction i).
///
/// Each location carries a points-to set: the locations a pointer stored
/// *in* it may target. Per-function Ret nodes carry the points-to set of
/// returned values. Constraints are generated once per instruction and
/// resolved by the inclusion-constraint worklist solver in Dataflow.h
/// (`ConstraintGraph`); `*p = q` / `x = *p` constraints add copy edges as
/// p's set grows, the classic Andersen complex-constraint rule.
///
/// Soundness contract (checked by tests/pointsto_property_test.cpp): for
/// every Store the VM executes, the concrete target cell's abstract
/// location is a member of `addressTargets` of the Store's address
/// expression. Address arithmetic is handled conservatively — a Binary
/// over pointers unions both operand target sets, and the VM's region
/// model guarantees in-bounds arithmetic never crosses objects.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_POINTSTO_H
#define DART_ANALYSIS_POINTSTO_H

#include "analysis/CallGraph.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dart {

/// Solver-shape counters for the --stats PointsTo block.
struct PointsToStats {
  /// Abstract locations (External + globals + slots + heap sites).
  unsigned NumLocs = 0;
  /// Inclusion constraints in the solved graph (base + derived edges).
  unsigned NumConstraints = 0;
  /// Node visits the worklist fixpoint performed.
  unsigned SolverIterations = 0;
  /// Wall time of constraint generation + solving, microseconds.
  uint64_t WallMicros = 0;

  void merge(const PointsToStats &O) {
    NumLocs += O.NumLocs;
    NumConstraints += O.NumConstraints;
    SolverIterations += O.SolverIterations;
    WallMicros += O.WallMicros;
  }
  std::string toString() const;
};

class PointsToResult {
public:
  enum class LocKind { External, Global, Slot, Heap };

  /// The abstract location id space. External is always id 0.
  unsigned externalLoc() const { return 0; }
  unsigned globalLoc(unsigned G) const { return 1 + G; }
  unsigned slotLoc(unsigned Fn, unsigned S) const {
    return SlotBase[Fn] + S;
  }
  /// The heap location of the malloc at (\p Fn, \p InstrIndex), if that
  /// instruction is a malloc call site.
  int heapLoc(unsigned Fn, unsigned InstrIndex) const;

  unsigned numLocs() const { return NumLocs; }
  LocKind kindOf(unsigned Loc) const;
  /// Owning function of a Slot/Heap location.
  unsigned ownerFn(unsigned Loc) const;
  /// Slot index of a Slot location / global index of a Global location.
  unsigned slotIndexOf(unsigned Loc) const;
  unsigned globalIndexOf(unsigned Loc) const;
  /// Object size in bytes (0 for External and Heap, whose size is
  /// per-run).
  uint64_t locSize(unsigned Loc) const;
  std::string locName(unsigned Loc) const;

  /// The points-to set of location \p Loc: sorted location ids a pointer
  /// stored in the object may target.
  const std::vector<unsigned> &pointsTo(unsigned Loc) const {
    return Pts[Loc];
  }
  /// The points-to set of values returned by function \p Fn.
  const std::vector<unsigned> &returnPointsTo(unsigned Fn) const {
    return RetPts[Fn];
  }

  /// The objects the *value* of \p E (evaluated in \p Fn) may point at —
  /// for an address expression, the objects a Load/Store through it may
  /// touch. Empty means "no tracked object": the value is null, a pure
  /// integer, or an address the VM would trap on.
  std::vector<unsigned> addressTargets(unsigned Fn, const IRExpr *E) const;

  /// Is slot \p S's address ever held anywhere? (Member of some memory
  /// location's or return node's points-to set.)
  bool addressTaken(unsigned Fn, unsigned S) const;
  /// True when every holder of slot \p S's address is a slot of the same
  /// function — the address never reaches a global, the heap, a return
  /// value, another function's frame, or the external world. Such slots
  /// are still precisely trackable per-frame: no other frame or callee
  /// can concretely reach them.
  bool onlyLocallyAliased(unsigned Fn, unsigned S) const;

  /// May a call to \p Fn (or any transitive callee) write / read the
  /// object at \p Loc through a pointer? Direct accesses to the callee's
  /// own frame are excluded — they touch the *callee's* frame instance,
  /// which is invisible to the caller unless aliased (and then the
  /// computed-access rule records it).
  bool mayMod(unsigned Fn, unsigned Loc) const { return Mod[Fn][Loc]; }
  bool mayRef(unsigned Fn, unsigned Loc) const { return Ref[Fn][Loc]; }

  const IRModule &module() const { return *M; }
  const CallGraph &callGraph() const { return CG; }
  const PointsToStats &stats() const { return Stats; }

  /// Is \p Fn reachable from itself along call edges? Frame conflation
  /// makes must-alias reasoning about its slots unsound (an aliased
  /// singleton target may belong to another live activation).
  bool selfRecursive(unsigned Fn) const {
    for (unsigned C : CG.callees(Fn))
      if (CG.transitiveCallees(C)[Fn])
        return true;
    return false;
  }

private:
  friend PointsToResult runPointsToAnalysis(const IRModule &M,
                                            const std::string &ToplevelName);

  const IRModule *M = nullptr;
  CallGraph CG;
  unsigned NumLocs = 0;
  unsigned NumGlobals = 0;
  std::vector<unsigned> SlotBase; // per function
  std::unordered_map<uint64_t, unsigned> HeapLocOf; // (fn,instr) -> loc
  /// (fn, instr) of each Heap location, indexed by loc - HeapBase.
  std::vector<std::pair<unsigned, unsigned>> HeapSiteOf;
  unsigned HeapBase = 0;
  std::vector<std::vector<unsigned>> Pts;    // per location
  std::vector<std::vector<unsigned>> RetPts; // per function
  std::vector<std::vector<bool>> Mod, Ref; // per function, per location
  /// Per location: node ids holding its address (memory locations, or
  /// RetBase + fn for return nodes).
  std::vector<std::vector<unsigned>> Holders;
  PointsToStats Stats;

  void unionInto(std::vector<unsigned> &Out,
                 const std::vector<unsigned> &Add) const;
};

/// Build the call graph, generate constraints, and solve. \p ToplevelName
/// seeds the external world: its parameters (and every extern-input
/// global) may hold driver-owned addresses.
PointsToResult runPointsToAnalysis(const IRModule &M,
                                   const std::string &ToplevelName);

/// The slots of \p Fn the alias-aware scalar analyses (Interval.h,
/// Liveness.h) may track precisely: scalar-sized, every direct access
/// width-matching, never an operand of a bytewise Copy, and
/// onlyLocallyAliased. Computed accesses to them are resolved through
/// \p PT at each instruction.
std::vector<bool> aliasTrackableSlots(const IRModule &M, unsigned Fn,
                                      const PointsToResult &PT);

} // namespace dart

#endif // DART_ANALYSIS_POINTSTO_H
