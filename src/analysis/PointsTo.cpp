//===- PointsTo.cpp - Andersen-style points-to analysis --------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"
#include "analysis/Dataflow.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>

using namespace dart;

namespace {

/// The node lattice: a bitset over abstract locations. Kept as a plain
/// vector<bool> sized lazily by the join (temp nodes usually stay empty).
using LocSet = std::vector<bool>;

bool joinLocSet(LocSet &Into, const LocSet &From) {
  if (Into.size() < From.size())
    Into.resize(From.size(), false);
  bool Changed = false;
  for (size_t I = 0; I < From.size(); ++I)
    if (From[I] && !Into[I]) {
      Into[I] = true;
      Changed = true;
    }
  return Changed;
}

template <typename Fn> void forEachBit(const LocSet &S, Fn F) {
  for (size_t I = 0; I < S.size(); ++I)
    if (S[I])
      F(static_cast<unsigned>(I));
}

/// The interpreter's native library (src/interp): only malloc produces a
/// program-visible object; the rest neither read nor write program memory
/// through their arguments.
bool isKnownNative(const std::string &Name) {
  return Name == "malloc" || Name == "free" || Name == "abort" ||
         Name == "assert" || Name == "exit";
}

/// Constraint generation state.
struct Generator {
  const IRModule &M;
  PointsToResult &R;
  ConstraintGraph<LocSet> &G;
  /// Complex constraints: for pointer node N, LoadCons[N] are nodes D
  /// with `D ⊇ *N`, StoreCons[N] are nodes S with `*N ⊇ S`.
  std::vector<std::vector<unsigned>> LoadCons, StoreCons;
  /// Cached address-of nodes, one per taken location.
  std::vector<int> AddrNodeOf;
  unsigned RetBase;
  unsigned ComplexCount = 0;

  Generator(const IRModule &M, PointsToResult &R, ConstraintGraph<LocSet> &G,
            unsigned RetBase)
      : M(M), R(R), G(G), AddrNodeOf(R.numLocs(), -1), RetBase(RetBase) {}

  void seed(unsigned Node, unsigned Loc) {
    LocSet &V = G.value(Node);
    if (V.size() <= Loc)
      V.resize(Loc + 1, false);
    V[Loc] = true;
  }

  unsigned freshNode() {
    unsigned N = G.addNode();
    LoadCons.resize(N + 1);
    StoreCons.resize(N + 1);
    return N;
  }

  unsigned addrNode(unsigned Loc) {
    if (AddrNodeOf[Loc] < 0) {
      unsigned N = freshNode();
      seed(N, Loc);
      AddrNodeOf[Loc] = static_cast<int>(N);
    }
    return static_cast<unsigned>(AddrNodeOf[Loc]);
  }

  void addLoadCons(unsigned Ptr, unsigned Dst) {
    LoadCons[Ptr].push_back(Dst);
    ++ComplexCount;
  }
  void addStoreCons(unsigned Ptr, unsigned Src) {
    StoreCons[Ptr].push_back(Src);
    ++ComplexCount;
  }

  /// Node computing the pointer content of \p E, or -1 when the value can
  /// never carry an object address (integers, comparisons, constants).
  int genExpr(unsigned Fn, const IRExpr *E) {
    switch (E->kind()) {
    case IRExpr::Kind::Const:
    case IRExpr::Kind::Cmp:
      return -1;
    case IRExpr::Kind::FrameAddr:
      return static_cast<int>(
          addrNode(R.slotLoc(Fn, cast<FrameAddrExpr>(E)->slotIndex())));
    case IRExpr::Kind::GlobalAddr:
      return static_cast<int>(
          addrNode(R.globalLoc(cast<GlobalAddrExpr>(E)->globalIndex())));
    case IRExpr::Kind::Load: {
      int Addr = genExpr(Fn, cast<LoadExpr>(E)->address());
      if (Addr < 0)
        return -1; // constant address: the VM traps before any load
      unsigned T = freshNode();
      addLoadCons(static_cast<unsigned>(Addr), T);
      return static_cast<int>(T);
    }
    case IRExpr::Kind::Unary:
      return genExpr(Fn, cast<UnaryIRExpr>(E)->operand());
    case IRExpr::Kind::Cast:
      return genExpr(Fn, cast<CastIRExpr>(E)->operand());
    case IRExpr::Kind::Binary: {
      // Pointer arithmetic in either operand position; unioning both is
      // sound for every operator (the result can only address an object
      // one operand already addressed — the VM's region model traps on
      // anything conjured from pure integers).
      int L = genExpr(Fn, cast<BinaryIRExpr>(E)->lhs());
      int Rh = genExpr(Fn, cast<BinaryIRExpr>(E)->rhs());
      if (L < 0)
        return Rh;
      if (Rh < 0)
        return L;
      unsigned T = freshNode();
      G.addEdge(static_cast<unsigned>(L), T);
      G.addEdge(static_cast<unsigned>(Rh), T);
      return static_cast<int>(T);
    }
    }
    return -1;
  }

  /// The node holding what flows *into* the cells a Store/Copy writes.
  void genWrite(unsigned Fn, const IRExpr *Address, int ValueNode) {
    if (ValueNode < 0)
      return;
    if (const auto *FA = dyn_cast<FrameAddrExpr>(Address)) {
      G.addEdge(static_cast<unsigned>(ValueNode),
                R.slotLoc(Fn, FA->slotIndex()));
      return;
    }
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(Address)) {
      G.addEdge(static_cast<unsigned>(ValueNode),
                R.globalLoc(GA->globalIndex()));
      return;
    }
    int Addr = genExpr(Fn, Address);
    if (Addr >= 0)
      addStoreCons(static_cast<unsigned>(Addr),
                   static_cast<unsigned>(ValueNode));
  }

  void genInstr(unsigned Fn, unsigned InstrIdx, const Instr &I) {
    switch (I.kind()) {
    case Instr::Kind::Store: {
      const auto *St = cast<StoreInstr>(&I);
      genWrite(Fn, St->address(), genExpr(Fn, St->value()));
      return;
    }
    case Instr::Kind::Copy: {
      // Bytewise copy: any pointer stored in the source blob may end up
      // in the destination blob.
      const auto *C = cast<CopyInstr>(&I);
      int SrcV;
      if (const auto *FA = dyn_cast<FrameAddrExpr>(C->src()))
        SrcV = static_cast<int>(R.slotLoc(Fn, FA->slotIndex()));
      else if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->src()))
        SrcV = static_cast<int>(R.globalLoc(GA->globalIndex()));
      else {
        int Ns = genExpr(Fn, C->src());
        if (Ns < 0)
          return;
        unsigned T = freshNode();
        addLoadCons(static_cast<unsigned>(Ns), T);
        SrcV = static_cast<int>(T);
      }
      genWrite(Fn, C->dst(), SrcV);
      return;
    }
    case Instr::Kind::Call: {
      const auto *C = cast<CallInstr>(&I);
      unsigned Callee = R.callGraph().indexOf(C->callee());
      if (Callee != CallGraph::kExternal) {
        const IRFunction &CF = *M.functions()[Callee];
        for (unsigned A = 0; A < C->args().size() && A < CF.NumParams; ++A) {
          int Na = genExpr(Fn, C->args()[A].get());
          if (Na >= 0)
            G.addEdge(static_cast<unsigned>(Na), R.slotLoc(Callee, A));
        }
        if (C->destSlot())
          G.addEdge(RetBase + Callee, R.slotLoc(Fn, *C->destSlot()));
        return;
      }
      if (C->callee() == "malloc") {
        int H = R.heapLoc(Fn, InstrIdx);
        if (H >= 0 && C->destSlot())
          seed(R.slotLoc(Fn, *C->destSlot()), static_cast<unsigned>(H));
        return;
      }
      if (isKnownNative(C->callee()))
        return; // free/abort/assert/exit: no memory flow
      // External environment function: argument addresses escape into the
      // driver-owned world, pointer results target driver-owned cells.
      for (const IRExprPtr &A : C->args()) {
        int Na = genExpr(Fn, A.get());
        if (Na >= 0)
          G.addEdge(static_cast<unsigned>(Na), R.externalLoc());
      }
      if (C->destSlot() && C->retValType().IsPointer)
        seed(R.slotLoc(Fn, *C->destSlot()), R.externalLoc());
      return;
    }
    case Instr::Kind::Ret: {
      if (const IRExpr *V = cast<RetInstr>(&I)->value()) {
        int Nv = genExpr(Fn, V);
        if (Nv >= 0)
          G.addEdge(static_cast<unsigned>(Nv), RetBase + Fn);
      }
      return;
    }
    case Instr::Kind::CondJump:
    case Instr::Kind::Jump:
    case Instr::Kind::Abort:
    case Instr::Kind::Halt:
      return;
    }
  }
};

} // namespace

std::string PointsToStats::toString() const {
  std::ostringstream OS;
  OS << "points-to: " << NumLocs << " abstract locations, " << NumConstraints
     << " constraints, " << SolverIterations << " solver iterations, "
     << WallMicros << " us";
  return OS.str();
}

int PointsToResult::heapLoc(unsigned Fn, unsigned InstrIndex) const {
  auto It = HeapLocOf.find(uint64_t(Fn) << 32 | InstrIndex);
  return It != HeapLocOf.end() ? static_cast<int>(It->second) : -1;
}

PointsToResult::LocKind PointsToResult::kindOf(unsigned Loc) const {
  if (Loc == 0)
    return LocKind::External;
  if (Loc <= NumGlobals)
    return LocKind::Global;
  if (Loc < HeapBase)
    return LocKind::Slot;
  return LocKind::Heap;
}

unsigned PointsToResult::ownerFn(unsigned Loc) const {
  if (kindOf(Loc) == LocKind::Heap)
    return HeapSiteOf[Loc - HeapBase].first;
  // Slot: find the owning function by base offset.
  unsigned Fn = 0;
  for (unsigned I = 0; I < SlotBase.size(); ++I)
    if (SlotBase[I] <= Loc)
      Fn = I;
  return Fn;
}

unsigned PointsToResult::slotIndexOf(unsigned Loc) const {
  return Loc - SlotBase[ownerFn(Loc)];
}

unsigned PointsToResult::globalIndexOf(unsigned Loc) const {
  return Loc - 1;
}

uint64_t PointsToResult::locSize(unsigned Loc) const {
  switch (kindOf(Loc)) {
  case LocKind::Global:
    return M->globals()[globalIndexOf(Loc)].SizeBytes;
  case LocKind::Slot: {
    unsigned Fn = ownerFn(Loc);
    return M->functions()[Fn]->Slots[Loc - SlotBase[Fn]].SizeBytes;
  }
  case LocKind::External:
  case LocKind::Heap:
    return 0;
  }
  return 0;
}

std::string PointsToResult::locName(unsigned Loc) const {
  switch (kindOf(Loc)) {
  case LocKind::External:
    return "<external>";
  case LocKind::Global:
    return "g:" + M->globals()[globalIndexOf(Loc)].Name;
  case LocKind::Slot: {
    unsigned Fn = ownerFn(Loc);
    unsigned S = Loc - SlotBase[Fn];
    const FrameSlot &Slot = M->functions()[Fn]->Slots[S];
    return M->functions()[Fn]->Name + ":" +
           (Slot.Name.empty() ? "#" + std::to_string(S) : Slot.Name);
  }
  case LocKind::Heap: {
    auto [Fn, I] = HeapSiteOf[Loc - HeapBase];
    return "heap:" + M->functions()[Fn]->Name + "@" + std::to_string(I);
  }
  }
  return "?";
}

void PointsToResult::unionInto(std::vector<unsigned> &Out,
                               const std::vector<unsigned> &Add) const {
  for (unsigned L : Add)
    Out.push_back(L);
}

std::vector<unsigned> PointsToResult::addressTargets(unsigned Fn,
                                                     const IRExpr *E) const {
  std::vector<unsigned> Out;
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::Cmp:
    break;
  case IRExpr::Kind::FrameAddr:
    Out.push_back(slotLoc(Fn, cast<FrameAddrExpr>(E)->slotIndex()));
    break;
  case IRExpr::Kind::GlobalAddr:
    Out.push_back(globalLoc(cast<GlobalAddrExpr>(E)->globalIndex()));
    break;
  case IRExpr::Kind::Load:
    for (unsigned O : addressTargets(Fn, cast<LoadExpr>(E)->address()))
      unionInto(Out, Pts[O]);
    break;
  case IRExpr::Kind::Unary:
    return addressTargets(Fn, cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Cast:
    return addressTargets(Fn, cast<CastIRExpr>(E)->operand());
  case IRExpr::Kind::Binary: {
    Out = addressTargets(Fn, cast<BinaryIRExpr>(E)->lhs());
    unionInto(Out, addressTargets(Fn, cast<BinaryIRExpr>(E)->rhs()));
    break;
  }
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool PointsToResult::addressTaken(unsigned Fn, unsigned S) const {
  unsigned Loc = slotLoc(Fn, S);
  return Loc < Holders.size() && !Holders[Loc].empty();
}

bool PointsToResult::onlyLocallyAliased(unsigned Fn, unsigned S) const {
  unsigned Loc = slotLoc(Fn, S);
  if (Loc >= Holders.size())
    return true;
  for (unsigned H : Holders[Loc]) {
    if (H >= NumLocs)
      return false; // held in a return value: leaves the frame
    if (kindOf(H) != LocKind::Slot || ownerFn(H) != Fn)
      return false;
  }
  return true;
}

PointsToResult dart::runPointsToAnalysis(const IRModule &M,
                                         const std::string &ToplevelName) {
  auto T0 = std::chrono::steady_clock::now();
  PointsToResult R;
  R.M = &M;
  R.CG = CallGraph::build(M);
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  R.NumGlobals = static_cast<unsigned>(M.globals().size());

  // Location layout: External, globals, slots (per function), heap sites.
  unsigned Next = 1 + R.NumGlobals;
  R.SlotBase.resize(NumFns);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    R.SlotBase[Fn] = Next;
    Next += static_cast<unsigned>(M.functions()[Fn]->Slots.size());
  }
  R.HeapBase = Next;
  for (const CallGraphSite &S : R.CG.sites()) {
    if (S.CalleeFn != CallGraph::kExternal)
      continue;
    const auto *C =
        cast<CallInstr>(M.functions()[S.CallerFn]->Instrs[S.InstrIndex].get());
    if (C->callee() == "malloc") {
      R.HeapLocOf[uint64_t(S.CallerFn) << 32 | S.InstrIndex] = Next++;
      R.HeapSiteOf.push_back({S.CallerFn, S.InstrIndex});
    }
  }
  R.NumLocs = Next;

  // Node layout: [0, NumLocs) memory locations, then per-function return
  // nodes, then expression temporaries.
  ConstraintGraph<LocSet> G(R.NumLocs + NumFns);
  unsigned RetBase = R.NumLocs;
  Generator Gen(M, R, G, RetBase);
  Gen.LoadCons.resize(G.numNodes());
  Gen.StoreCons.resize(G.numNodes());

  // Seeds: the driver's world points at itself; the toplevel's parameters
  // and every extern-input global may hold driver-owned addresses (§3.1's
  // input pointers always target fresh driver cells, never program
  // objects).
  Gen.seed(R.externalLoc(), R.externalLoc());
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    if (F.Name == ToplevelName)
      for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P)
        Gen.seed(R.slotLoc(Fn, P), R.externalLoc());
  }
  for (unsigned Gi = 0; Gi < R.NumGlobals; ++Gi)
    if (M.globals()[Gi].IsExternInput)
      Gen.seed(R.globalLoc(Gi), R.externalLoc());

  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I)
      Gen.genInstr(Fn, I, *F.Instrs[I]);
  }

  unsigned Visits = G.solve(joinLocSet, [&](unsigned N, auto Grow) {
    const LocSet Val = G.value(N); // copy: Grow may reallocate values
    for (unsigned Dst : Gen.LoadCons[N])
      forEachBit(Val, [&](unsigned O) { Grow(O, Dst); });
    for (unsigned Src : Gen.StoreCons[N])
      forEachBit(Val, [&](unsigned O) { Grow(Src, O); });
  });

  // Extract memory-location and return-node sets; drop the temporaries.
  R.Pts.assign(R.NumLocs, {});
  for (unsigned L = 0; L < R.NumLocs; ++L)
    forEachBit(G.value(L), [&](unsigned O) { R.Pts[L].push_back(O); });
  R.RetPts.assign(NumFns, {});
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    forEachBit(G.value(RetBase + Fn),
               [&](unsigned O) { R.RetPts[Fn].push_back(O); });

  // Holder index: where is each location's address stored? Return nodes
  // count (ids >= NumLocs) — an address held in a return value escapes
  // its frame.
  R.Holders.assign(R.NumLocs, {});
  for (unsigned L = 0; L < R.NumLocs; ++L)
    for (unsigned O : R.Pts[L])
      R.Holders[O].push_back(L);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    for (unsigned O : R.RetPts[Fn])
      R.Holders[O].push_back(RetBase + Fn);

  // Mod/ref: the objects each function may write/read through computed
  // addresses (plus direct global accesses), closed over the call graph.
  std::vector<std::vector<bool>> ModLocal(NumFns,
                                          std::vector<bool>(R.NumLocs, false));
  std::vector<std::vector<bool>> RefLocal = ModLocal;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    auto AddTargets = [&](std::vector<bool> &Set, const IRExpr *Addr) {
      for (unsigned O : R.addressTargets(Fn, Addr))
        Set[O] = true;
    };
    // Every Load in an expression tree is a read.
    std::function<void(const IRExpr *)> WalkReads = [&](const IRExpr *E) {
      switch (E->kind()) {
      case IRExpr::Kind::Load: {
        const auto *L = cast<LoadExpr>(E);
        if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
          RefLocal[Fn][R.globalLoc(GA->globalIndex())] = true;
        else if (!isa<FrameAddrExpr>(L->address())) {
          AddTargets(RefLocal[Fn], L->address());
          WalkReads(L->address());
        }
        return;
      }
      case IRExpr::Kind::Unary:
        WalkReads(cast<UnaryIRExpr>(E)->operand());
        return;
      case IRExpr::Kind::Cast:
        WalkReads(cast<CastIRExpr>(E)->operand());
        return;
      case IRExpr::Kind::Binary:
        WalkReads(cast<BinaryIRExpr>(E)->lhs());
        WalkReads(cast<BinaryIRExpr>(E)->rhs());
        return;
      case IRExpr::Kind::Cmp:
        WalkReads(cast<CmpExpr>(E)->lhs());
        WalkReads(cast<CmpExpr>(E)->rhs());
        return;
      default:
        return;
      }
    };
    auto WalkWrite = [&](const IRExpr *Addr) {
      if (const auto *GA = dyn_cast<GlobalAddrExpr>(Addr))
        ModLocal[Fn][R.globalLoc(GA->globalIndex())] = true;
      else if (!isa<FrameAddrExpr>(Addr)) {
        AddTargets(ModLocal[Fn], Addr);
        WalkReads(Addr);
      }
    };
    for (const InstrPtr &IP : F.Instrs) {
      const Instr &I = *IP;
      switch (I.kind()) {
      case Instr::Kind::Store:
        WalkWrite(cast<StoreInstr>(&I)->address());
        WalkReads(cast<StoreInstr>(&I)->value());
        break;
      case Instr::Kind::Copy: {
        const auto *C = cast<CopyInstr>(&I);
        WalkWrite(C->dst());
        if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->src()))
          RefLocal[Fn][R.globalLoc(GA->globalIndex())] = true;
        else if (!isa<FrameAddrExpr>(C->src())) {
          AddTargets(RefLocal[Fn], C->src());
          WalkReads(C->src());
        }
        break;
      }
      case Instr::Kind::CondJump:
        WalkReads(cast<CondJumpInstr>(&I)->cond());
        break;
      case Instr::Kind::Call:
        for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
          WalkReads(A.get());
        break;
      case Instr::Kind::Ret:
        if (const IRExpr *V = cast<RetInstr>(&I)->value())
          WalkReads(V);
        break;
      default:
        break;
      }
    }
  }
  R.Mod.assign(NumFns, std::vector<bool>(R.NumLocs, false));
  R.Ref = R.Mod;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    std::vector<bool> Reached = R.CG.transitiveCallees(Fn);
    for (unsigned Cal = 0; Cal < NumFns; ++Cal) {
      if (!Reached[Cal])
        continue;
      for (unsigned L = 0; L < R.NumLocs; ++L) {
        if (ModLocal[Cal][L])
          R.Mod[Fn][L] = true;
        if (RefLocal[Cal][L])
          R.Ref[Fn][L] = true;
      }
    }
  }

  R.Stats.NumLocs = R.NumLocs;
  R.Stats.NumConstraints = G.numEdges() + Gen.ComplexCount;
  R.Stats.SolverIterations = Visits;
  R.Stats.WallMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  return R;
}

std::vector<bool> dart::aliasTrackableSlots(const IRModule &M, unsigned Fn,
                                            const PointsToResult &PT) {
  const IRFunction &F = *M.functions()[Fn];
  size_t NumSlots = F.Slots.size();
  std::vector<bool> T(NumSlots, false);
  for (size_t S = 0; S < NumSlots; ++S) {
    uint64_t Sz = F.Slots[S].SizeBytes;
    T[S] = (Sz == 1 || Sz == 4 || Sz == 8) &&
           PT.onlyLocallyAliased(Fn, static_cast<unsigned>(S));
  }
  auto Untrack = [&](unsigned S) {
    if (S < NumSlots)
      T[S] = false;
  };
  // Direct accesses must be width-matching (a partial read/write breaks
  // the whole-slot fact model), and bytewise Copy operands are out.
  std::function<void(const IRExpr *)> Walk = [&](const IRExpr *E) {
    switch (E->kind()) {
    case IRExpr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
        unsigned S = FA->slotIndex();
        if (S < NumSlots && F.Slots[S].SizeBytes != L->valType().SizeBytes)
          Untrack(S);
        return;
      }
      Walk(L->address());
      return;
    }
    case IRExpr::Kind::Unary:
      Walk(cast<UnaryIRExpr>(E)->operand());
      return;
    case IRExpr::Kind::Cast:
      Walk(cast<CastIRExpr>(E)->operand());
      return;
    case IRExpr::Kind::Binary:
      Walk(cast<BinaryIRExpr>(E)->lhs());
      Walk(cast<BinaryIRExpr>(E)->rhs());
      return;
    case IRExpr::Kind::Cmp:
      Walk(cast<CmpExpr>(E)->lhs());
      Walk(cast<CmpExpr>(E)->rhs());
      return;
    default:
      return;
    }
  };
  auto UntrackCopyOperand = [&](const IRExpr *Op) {
    if (const auto *FA = dyn_cast<FrameAddrExpr>(Op)) {
      Untrack(FA->slotIndex());
      return;
    }
    for (unsigned O : PT.addressTargets(Fn, Op))
      if (PT.kindOf(O) == PointsToResult::LocKind::Slot &&
          PT.ownerFn(O) == Fn)
        Untrack(PT.slotIndexOf(O));
    Walk(Op);
  };
  for (const InstrPtr &IP : F.Instrs) {
    const Instr &I = *IP;
    switch (I.kind()) {
    case Instr::Kind::Store: {
      const auto *St = cast<StoreInstr>(&I);
      if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
        unsigned S = FA->slotIndex();
        if (S < NumSlots && F.Slots[S].SizeBytes != St->valType().SizeBytes)
          Untrack(S);
      } else {
        Walk(St->address());
      }
      Walk(St->value());
      break;
    }
    case Instr::Kind::Copy:
      UntrackCopyOperand(cast<CopyInstr>(&I)->dst());
      UntrackCopyOperand(cast<CopyInstr>(&I)->src());
      break;
    case Instr::Kind::CondJump:
      Walk(cast<CondJumpInstr>(&I)->cond());
      break;
    case Instr::Kind::Call:
      for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
        Walk(A.get());
      break;
    case Instr::Kind::Ret:
      if (const IRExpr *V = cast<RetInstr>(&I)->value())
        Walk(V);
      break;
    default:
      break;
    }
  }
  return T;
}
