//===- Dataflow.h - Generic worklist dataflow solver ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative dataflow solver over a Cfg, parameterized by a
/// lattice problem. A problem supplies:
///
///   using Value = ...;                  // one lattice element per block
///   static constexpr bool IsForward;    // direction
///   Value initial();                    // optimistic initial element
///   Value boundary();                   // element at entry (fwd) / exit (bwd)
///   bool join(Value &Into, const Value &From);   // returns "Into changed"
///   Value transfer(unsigned BlockId, const Value &In);
///
/// The solver seeds the worklist in reverse postorder (forward) or
/// postorder (backward) and iterates block transfers to a fixpoint.
/// `join` must be monotone w.r.t. the problem's lattice order and
/// `transfer` monotone in its input; with a finite-height lattice (or a
/// widening transfer) the solver terminates. Only blocks reachable from
/// the entry are visited; unreachable blocks keep `initial()`.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_DATAFLOW_H
#define DART_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <deque>
#include <unordered_set>
#include <vector>

namespace dart {

template <typename Problem> struct DataflowResult {
  /// In[b]: state before the block's first instruction (forward) or after
  /// its last (backward).
  std::vector<typename Problem::Value> In;
  /// Out[b] = transfer(b, In[b]).
  std::vector<typename Problem::Value> Out;
  /// Total block transfers executed (for the property tests' idempotence
  /// and termination assertions).
  unsigned Iterations = 0;
};

template <typename Problem>
DataflowResult<Problem> solveDataflow(const Cfg &G, Problem &P) {
  constexpr bool Fwd = Problem::IsForward;
  unsigned N = G.numBlocks();
  DataflowResult<Problem> R;
  R.In.assign(N, P.initial());
  R.Out.assign(N, P.initial());
  if (N == 0)
    return R;

  // For the backward direction an "entry" is any block without successors
  // (Ret/Abort/Halt blocks); flow edges are reversed.
  auto FlowPreds = [&](unsigned B) -> const std::vector<unsigned> & {
    return Fwd ? G.block(B).Preds : G.block(B).Succs;
  };
  auto FlowSuccs = [&](unsigned B) -> const std::vector<unsigned> & {
    return Fwd ? G.block(B).Succs : G.block(B).Preds;
  };
  auto IsBoundary = [&](unsigned B) {
    return Fwd ? B == G.entry() : G.block(B).Succs.empty();
  };

  std::deque<unsigned> Worklist;
  std::vector<bool> InList(N, false);
  const std::vector<unsigned> &Rpo = G.rpo();
  if (Fwd) {
    for (unsigned B : Rpo) {
      Worklist.push_back(B);
      InList[B] = true;
    }
  } else {
    for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
      Worklist.push_back(*It);
      InList[*It] = true;
    }
  }

  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    InList[B] = false;

    typename Problem::Value In = IsBoundary(B) ? P.boundary() : P.initial();
    for (unsigned Pred : FlowPreds(B))
      if (G.isReachable(Pred))
        P.join(In, R.Out[Pred]);
    R.In[B] = In;

    typename Problem::Value Out = P.transfer(B, R.In[B]);
    ++R.Iterations;
    if (P.join(R.Out[B], Out)) {
      for (unsigned S : FlowSuccs(B)) {
        if (G.isReachable(S) && !InList[S]) {
          Worklist.push_back(S);
          InList[S] = true;
        }
      }
    }
  }
  return R;
}

/// The CFG-free companion of solveDataflow: a worklist fixpoint over an
/// *inclusion-constraint graph*. Nodes carry lattice elements, a directed
/// edge From -> To is the constraint `Value[To] ⊇ Value[From]`, and a
/// visit callback may add edges while the solve runs — which is exactly
/// the shape of Andersen-style points-to resolution, where `*p = q` and
/// `q = *p` constraints materialize copy edges as p's set grows.
///
/// `Join(Into, From)` has the same contract as Problem::join above:
/// monotone, returns "Into changed". Termination follows from values only
/// growing and the edge set being bounded (duplicates are rejected).
template <typename Value> class ConstraintGraph {
public:
  explicit ConstraintGraph(unsigned NumNodes)
      : Vals(NumNodes), Succs(NumNodes) {}

  unsigned numNodes() const { return static_cast<unsigned>(Vals.size()); }
  unsigned addNode() {
    Vals.emplace_back();
    Succs.emplace_back();
    return numNodes() - 1;
  }
  Value &value(unsigned N) { return Vals[N]; }
  const Value &value(unsigned N) const { return Vals[N]; }
  unsigned numEdges() const {
    return static_cast<unsigned>(EdgeSet.size());
  }

  /// Record the constraint `Value[To] ⊇ Value[From]`; false if it was
  /// already present.
  bool addEdge(unsigned From, unsigned To) {
    if (!EdgeSet.insert(uint64_t(From) << 32 | To).second)
      return false;
    Succs[From].push_back(To);
    return true;
  }

  /// Iterate to a fixpoint. \p Visit(N, Grow) is called whenever node N's
  /// element may have grown; it may call Grow(From, To) to add derived
  /// edges (their source values propagate immediately). Returns the
  /// number of node visits.
  template <typename JoinFn, typename VisitFn>
  unsigned solve(JoinFn Join, VisitFn Visit) {
    std::deque<unsigned> Worklist;
    std::vector<bool> InList(numNodes(), false);
    auto Push = [&](unsigned N) {
      if (N < InList.size() && !InList[N]) {
        InList[N] = true;
        Worklist.push_back(N);
      }
    };
    for (unsigned N = 0; N < numNodes(); ++N)
      Push(N);

    unsigned Visits = 0;
    auto Grow = [&](unsigned From, unsigned To) {
      if (addEdge(From, To) && Join(Vals[To], Vals[From]))
        Push(To);
    };
    while (!Worklist.empty()) {
      unsigned N = Worklist.front();
      Worklist.pop_front();
      InList[N] = false;
      ++Visits;
      Visit(N, Grow);
      for (unsigned S : Succs[N])
        if (Join(Vals[S], Vals[N]))
          Push(S);
    }
    return Visits;
  }

private:
  std::vector<Value> Vals;
  std::vector<std::vector<unsigned>> Succs;
  std::unordered_set<uint64_t> EdgeSet;
};

} // namespace dart

#endif // DART_ANALYSIS_DATAFLOW_H
