//===- Dependence.h - Interprocedural data+control dependence ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which *inputs* can influence each branch site — as a set, not a bit?
/// Taint.h answers "can this condition observe any symbolic value";
/// pruning only needs that bool, but the sliced solver mode, the
/// dependence lints, and --stats need to know *which* of the program's
/// input sources reach each site, and whether a site's very execution
/// (not just its condition) is steered by inputs.
///
/// Input sources are the places the generated driver injects fresh
/// values each run (§3.1): one source per toplevel parameter, one per
/// extern-input global, and a single ExternalWorld source standing for
/// everything behind the driver-owned External location (pointer input
/// cells, external-function returns). Sources form a finite universe, so
/// dependence is a bitset lattice — the fixpoint generalizes the taint
/// sweep from bool to SourceSet and reuses the same alias discipline
/// (stores through computed addresses touch exactly their may-targets),
/// widened with index flows (an input used only as an array index still
/// steers which cell is touched) and implicit flows (a write carries the
/// sources of the branches controlling whether it executes — the data
/// and control fixpoints are solved jointly).
///
/// Control dependence is the classic Ferrante-Ottenstein-Warren
/// construction on post-dominators (computed here on each function's
/// reverse CFG with a virtual exit, since Cfg only carries forward
/// dominators). Interprocedural closure: a callee's blocks inherit the
/// control context of every call site. A branch site's *relevant-input
/// set* is the data sources of its condition unioned with the sources
/// controlling whether the site executes at all — the set the sliced
/// search uses, because whether a conjunct appears in the path
/// constraint is itself input-dependent (see DESIGN.md §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_DEPENDENCE_H
#define DART_ANALYSIS_DEPENDENCE_H

#include "analysis/PointsTo.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace dart {

/// A set over the program's input sources (small, dense ids).
class SourceSet {
public:
  SourceSet() = default;
  explicit SourceSet(unsigned Universe) : W((Universe + 63) / 64, 0) {}

  /// The full set over a universe of \p Universe sources (the ⊤ the
  /// analysis degrades to at untracked addresses).
  static SourceSet all(unsigned Universe) {
    SourceSet S(Universe);
    for (unsigned I = 0; I < Universe; ++I)
      S.set(I);
    return S;
  }

  void set(unsigned I) { W[I / 64] |= uint64_t(1) << (I % 64); }
  bool test(unsigned I) const {
    return I / 64 < W.size() && (W[I / 64] >> (I % 64)) & 1;
  }
  /// Union \p O into this set; returns true if any bit was added.
  bool unionWith(const SourceSet &O) {
    bool Changed = false;
    for (size_t I = 0; I < O.W.size() && I < W.size(); ++I) {
      uint64_t New = W[I] | O.W[I];
      if (New != W[I]) {
        W[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }
  bool any() const {
    for (uint64_t X : W)
      if (X)
        return true;
    return false;
  }
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t X : W)
      for (; X; X &= X - 1)
        ++N;
    return N;
  }

private:
  std::vector<uint64_t> W;
};

/// One input source: where the driver injects a fresh value each run.
struct InputSource {
  enum class Kind { ExternalWorld, Param, ExternGlobal };
  Kind K = Kind::ExternalWorld;
  unsigned Fn = 0;    ///< Param: toplevel module index
  unsigned Index = 0; ///< Param: slot index / ExternGlobal: global index
  std::string Name;   ///< parameter or global name ("<external>" for world)
};

/// Analysis-shape counters for the --stats Dependence block.
struct DependenceStats {
  unsigned NumSources = 0;     ///< input sources in the universe
  unsigned NumBranchSites = 0;
  unsigned SitesNoDataDeps = 0; ///< sites whose condition depends on no input
  unsigned CtrlDepEdges = 0;    ///< direct FOW control-dependence edges
  /// Sum over branch sites of |relevant-input set| (data + control);
  /// divide by NumBranchSites for the mean --stats prints.
  uint64_t RelevantInputsTotal = 0;
  uint64_t WallMicros = 0;

  void merge(const DependenceStats &O) {
    NumSources += O.NumSources;
    NumBranchSites += O.NumBranchSites;
    SitesNoDataDeps += O.SitesNoDataDeps;
    CtrlDepEdges += O.CtrlDepEdges;
    RelevantInputsTotal += O.RelevantInputsTotal;
    WallMicros += O.WallMicros;
  }
  std::string toString() const;
};

struct DependenceResult {
  /// The alias layer the location lattice is built on; always set.
  std::shared_ptr<const PointsToResult> PT;
  /// The source universe. Id 0 is always ExternalWorld.
  std::vector<InputSource> Sources;
  /// Per abstract location (PointsToResult id space): which sources may
  /// flow a value into the object.
  std::vector<SourceSet> LocSources;
  /// Per function: which sources may flow into its return value.
  std::vector<SourceSet> RetSources;
  /// Per branch site id (CondJumpInstr::siteId): data sources of the
  /// condition expression.
  std::vector<SourceSet> SiteDataInputs;
  /// Per branch site: the relevant-input set — data sources of the
  /// condition plus every source controlling whether the site executes
  /// (intraprocedural control deps + interprocedural call context).
  std::vector<SourceSet> SiteRelevant;
  /// Per function, per CFG block: sources of every branch the block is
  /// transitively control-dependent on, including call context.
  std::vector<std::vector<SourceSet>> BlockCtrlSources;
  /// Per function, per block: is the block control-dependent on at least
  /// one branch (or called only from guarded contexts)? Toplevel entry
  /// blocks that execute unconditionally report false.
  std::vector<std::vector<bool>> BlockGuarded;
  /// Per function, per block: direct FOW control-dependence edges — the
  /// CondJump instruction indices (in the same function) the block is
  /// directly control-dependent on. Slice.cpp walks these.
  std::vector<std::vector<std::vector<unsigned>>> CtrlDepBranches;
  /// Per function: is it reachable from the toplevel along call edges?
  std::vector<bool> ReachableFromToplevel;
  /// Union of: data sources of every branch condition, sources of every
  /// argument to an external/native call, sources of the toplevel's
  /// return value, and sources reaching the External location. A source
  /// absent from this set influences no branch, output, or bug site —
  /// the dead-input lint's evidence.
  SourceSet UsedSources;
  DependenceStats Stats;

  /// Which sources may the value of \p E (evaluated in \p Fn) carry?
  SourceSet exprSources(unsigned Fn, const IRExpr *E) const;

  /// The toplevel's module index, or ~0u when the name resolved to no
  /// program function.
  unsigned ToplevelFn = ~0u;
};

/// Run the whole-program dependence fixpoint. \p ToplevelName seeds the
/// source universe (its parameters become Param sources) exactly as
/// runTaintAnalysis seeds taint. When \p PT is non-null the alias solve
/// is reused instead of recomputed.
DependenceResult
runDependenceAnalysis(const IRModule &M, const std::string &ToplevelName,
                      std::shared_ptr<const PointsToResult> PT = nullptr);

} // namespace dart

#endif // DART_ANALYSIS_DEPENDENCE_H
