//===- Lint.cpp - Static defect reporting -----------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/Cfg.h"
#include "analysis/Dependence.h"
#include "analysis/Interval.h"
#include "analysis/Liveness.h"
#include "analysis/PointsTo.h"
#include "analysis/Taint.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>
#include <sstream>

using namespace dart;

namespace {

/// One finding, keyed for deterministic function/instruction ordering.
struct Finding {
  unsigned InstrIndex;
  LintKind Kind;
  SourceLocation Loc;
  std::string Message;
};

/// Does the block contain anything a user would recognize as code?
/// (Purely synthetic glue — jumps, temp shuffles without a location —
/// should not produce "unreachable code" reports.)
const Instr *firstUserInstr(const IRFunction &F, const BasicBlock &B) {
  for (unsigned I = B.Begin; I < B.End; ++I) {
    const Instr &In = *F.Instrs[I];
    if (In.loc().Line == 0)
      continue;
    switch (In.kind()) {
    case Instr::Kind::Store:
    case Instr::Kind::Copy:
    case Instr::Kind::Call:
    case Instr::Kind::CondJump:
    case Instr::Kind::Abort:
    case Instr::Kind::Ret:
      return &In;
    default:
      break;
    }
  }
  return nullptr;
}

/// Scan \p E for Div/Rem whose divisor is provably always zero in \p S.
void findZeroDivisors(const IntervalAnalysis &IA, const AbsState &S,
                      const IRExpr *E, bool &Found) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load:
    findZeroDivisors(IA, S, cast<LoadExpr>(E)->address(), Found);
    return;
  case IRExpr::Kind::Unary:
    findZeroDivisors(IA, S, cast<UnaryIRExpr>(E)->operand(), Found);
    return;
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    findZeroDivisors(IA, S, B->lhs(), Found);
    findZeroDivisors(IA, S, B->rhs(), Found);
    if (B->op() == IRBinOp::Div || B->op() == IRBinOp::Rem) {
      Interval D = IA.evalExpr(S, B->rhs());
      if (D.Lo == 0 && D.Hi == 0)
        Found = true;
    }
    return;
  }
  case IRExpr::Kind::Cmp:
    findZeroDivisors(IA, S, cast<CmpExpr>(E)->lhs(), Found);
    findZeroDivisors(IA, S, cast<CmpExpr>(E)->rhs(), Found);
    return;
  case IRExpr::Kind::Cast:
    findZeroDivisors(IA, S, cast<CastIRExpr>(E)->operand(), Found);
    return;
  }
}

bool instrDividesByZero(const IntervalAnalysis &IA, const AbsState &S,
                        const Instr &I) {
  bool Found = false;
  switch (I.kind()) {
  case Instr::Kind::Store:
    findZeroDivisors(IA, S, cast<StoreInstr>(&I)->address(), Found);
    findZeroDivisors(IA, S, cast<StoreInstr>(&I)->value(), Found);
    break;
  case Instr::Kind::CondJump:
    findZeroDivisors(IA, S, cast<CondJumpInstr>(&I)->cond(), Found);
    break;
  case Instr::Kind::Call:
    for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
      findZeroDivisors(IA, S, A.get(), Found);
    break;
  case Instr::Kind::Ret:
    if (const IRExpr *V = cast<RetInstr>(&I)->value())
      findZeroDivisors(IA, S, V, Found);
    break;
  default:
    break;
  }
  return Found;
}

/// Find tracked named slots \p I reads while definitely unassigned.
template <typename Fn>
void forEachUninitUse(const IRExpr *E, const std::vector<bool> &DU,
                      const std::vector<bool> &Tracked, Fn Report) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      if (S < Tracked.size() && Tracked[S] && DU[S])
        Report(S);
      return;
    }
    forEachUninitUse(L->address(), DU, Tracked, Report);
    return;
  }
  case IRExpr::Kind::Unary:
    forEachUninitUse(cast<UnaryIRExpr>(E)->operand(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Binary:
    forEachUninitUse(cast<BinaryIRExpr>(E)->lhs(), DU, Tracked, Report);
    forEachUninitUse(cast<BinaryIRExpr>(E)->rhs(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Cmp:
    forEachUninitUse(cast<CmpExpr>(E)->lhs(), DU, Tracked, Report);
    forEachUninitUse(cast<CmpExpr>(E)->rhs(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Cast:
    forEachUninitUse(cast<CastIRExpr>(E)->operand(), DU, Tracked, Report);
    return;
  }
}

/// Does \p E mention any object address (FrameAddr/GlobalAddr)?
bool mentionsAddress(const IRExpr *E) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
    return false;
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return true;
  case IRExpr::Kind::Load:
    // A loaded value can carry a pointer, but its interval is then the
    // full range and the OOB check is vacuous — no need to treat it as a
    // base.
    return false;
  case IRExpr::Kind::Unary:
    return mentionsAddress(cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Binary:
    return mentionsAddress(cast<BinaryIRExpr>(E)->lhs()) ||
           mentionsAddress(cast<BinaryIRExpr>(E)->rhs());
  case IRExpr::Kind::Cmp:
    return false;
  case IRExpr::Kind::Cast:
    return mentionsAddress(cast<CastIRExpr>(E)->operand());
  }
  return false;
}

/// `base + offset` view of an address expression: the object's size and
/// name plus the byte-offset interval, when the base is a syntactically
/// known slot or global.
struct BaseOffset {
  uint64_t Size = 0;
  std::string Name;
  Interval Off;
};

std::optional<BaseOffset> decomposeAddress(const IRModule &M,
                                           const IRFunction &F,
                                           const IntervalAnalysis &IA,
                                           const AbsState &S,
                                           const IRExpr *E) {
  switch (E->kind()) {
  case IRExpr::Kind::FrameAddr: {
    unsigned Slot = cast<FrameAddrExpr>(E)->slotIndex();
    if (Slot >= F.Slots.size())
      return std::nullopt;
    return BaseOffset{F.Slots[Slot].SizeBytes, F.Slots[Slot].Name,
                      {0, 0, false}};
  }
  case IRExpr::Kind::GlobalAddr: {
    const IRGlobal &G = M.globals()[cast<GlobalAddrExpr>(E)->globalIndex()];
    return BaseOffset{G.SizeBytes, G.Name, {0, 0, false}};
  }
  case IRExpr::Kind::Cast:
    return decomposeAddress(M, F, IA, S, cast<CastIRExpr>(E)->operand());
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    if (B->op() != IRBinOp::Add && B->op() != IRBinOp::Sub)
      return std::nullopt;
    const IRExpr *BaseE = B->lhs(), *OffE = B->rhs();
    if (B->op() == IRBinOp::Add && !mentionsAddress(BaseE) &&
        mentionsAddress(OffE))
      std::swap(BaseE, OffE);
    if (mentionsAddress(OffE))
      return std::nullopt; // two bases (or base on the subtrahend side)
    auto Base = decomposeAddress(M, F, IA, S, BaseE);
    if (!Base)
      return std::nullopt;
    Interval O = IA.evalExpr(S, OffE);
    __int128 Lo = Base->Off.Lo, Hi = Base->Off.Hi;
    if (B->op() == IRBinOp::Add) {
      Lo += O.Lo;
      Hi += O.Hi;
    } else {
      Lo -= O.Hi;
      Hi -= O.Lo;
    }
    if (Lo < INT64_MIN || Hi > INT64_MAX)
      return std::nullopt;
    Base->Off = {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi), false};
    return Base;
  }
  default:
    return std::nullopt;
  }
}

/// Per-function lint context for the memory-safety checks.
struct MemCheck {
  const IRModule &M;
  const IRFunction &F;
  unsigned FnIndex;
  const IntervalAnalysis &IA;
  const PointsToResult *PT;

  /// Is every may-target of \p V a slot of this function (and at least
  /// one)? Then the value can only be a dangling address once the frame
  /// dies.
  bool onlyLocalTargets(const IRExpr *V) const {
    if (!PT)
      return false;
    std::vector<unsigned> T = PT->addressTargets(FnIndex, V);
    if (T.empty())
      return false;
    for (unsigned O : T)
      if (PT->kindOf(O) != PointsToResult::LocKind::Slot ||
          PT->ownerFn(O) != FnIndex)
        return false;
    return true;
  }

  /// Does storing through \p Addr write memory that outlives this frame
  /// (a global, the heap, the external world, or another function's
  /// frame)?
  bool destOutlivesFrame(const IRExpr *Addr) const {
    if (isa<FrameAddrExpr>(Addr))
      return false;
    if (isa<GlobalAddrExpr>(Addr))
      return true;
    if (!PT)
      return false;
    for (unsigned O : PT->addressTargets(FnIndex, Addr))
      if (PT->kindOf(O) != PointsToResult::LocKind::Slot ||
          PT->ownerFn(O) != FnIndex)
        return true;
    return false;
  }
};

} // namespace

const char *dart::lintKindName(LintKind K) {
  switch (K) {
  case LintKind::UnreachableCode:
    return "unreachable-code";
  case LintKind::DivisionByZero:
    return "division-by-zero";
  case LintKind::AssertAlwaysFails:
    return "assert-always-fails";
  case LintKind::UninitializedRead:
    return "uninitialized-read";
  case LintKind::DeadStore:
    return "dead-store";
  case LintKind::OutOfBoundsAccess:
    return "out-of-bounds";
  case LintKind::NullDereference:
    return "null-dereference";
  case LintKind::StackAddressEscape:
    return "stack-address-escape";
  case LintKind::DeadInput:
    return "dead-input";
  case LintKind::WriteOnlyVariable:
    return "write-only-variable";
  case LintKind::ControlUnreachableBug:
    return "control-unreachable-bug";
  }
  return "unknown";
}

namespace {

void lintFunction(const IRModule &M, unsigned FnIndex, const TaintResult &T,
                  std::vector<Finding> &Out) {
  const IRFunction &F = *M.functions()[FnIndex];
  if (F.Instrs.empty())
    return;
  Cfg G = Cfg::build(F);
  IntervalAnalysis IA(M, G, T, FnIndex, IntervalAnalysis::Config());
  IA.run();
  LivenessResult LV = runLivenessAnalysis(G, T, FnIndex);
  MemCheck MC{M, F, FnIndex, IA, T.PT.get()};

  auto Report = [&](unsigned InstrIndex, LintKind Kind, std::string Msg) {
    Out.push_back(
        {InstrIndex, Kind, F.Instrs[InstrIndex]->loc(), std::move(Msg)});
  };

  // 1. Unreachable code: entries of statically infeasible regions. Only
  // report when the fixpoint converged (a bailed analysis proves
  // nothing), and only blocks containing user-visible instructions.
  if (IA.converged()) {
    for (unsigned B = 0; B < G.numBlocks(); ++B) {
      // Only blocks the CFG can reach: syntactically dead regions (e.g.
      // the synthesized trailing return of a function whose paths all
      // return explicitly) are not dataflow findings.
      if (IA.blockExecutable(B) || !G.isReachable(B))
        continue;
      bool RegionEntry = true;
      for (unsigned P : G.block(B).Preds)
        if (!IA.blockExecutable(P))
          RegionEntry = false;
      if (!RegionEntry)
        continue;
      if (const Instr *I = firstUserInstr(F, G.block(B))) {
        unsigned Index = G.block(B).Begin;
        while (F.Instrs[Index].get() != I)
          ++Index;
        Report(Index, LintKind::UnreachableCode,
               "unreachable code in '" + F.Name + "'");
      }
    }
  }

  // 6/7. Out-of-bounds and null-dereference checks on a computed
  // Load/Store address in state S.
  auto CheckAccess = [&](unsigned InstrIndex, const IRExpr *Addr,
                         uint64_t Width, const AbsState &S) {
    if (!IA.converged())
      return;
    Interval AI = IA.evalExpr(S, Addr);
    if (AI.Lo == 0 && AI.Hi == 0) {
      Report(InstrIndex, LintKind::NullDereference,
             "null dereference: address is always 0");
      return;
    }
    auto BO = decomposeAddress(M, F, IA, S, Addr);
    if (!BO || BO->Size == 0 || Width > BO->Size)
      return;
    int64_t MaxOff = static_cast<int64_t>(BO->Size - Width);
    if (BO->Off.Hi < 0 || BO->Off.Lo > MaxOff) {
      std::ostringstream OS;
      OS << "out-of-bounds access";
      if (!BO->Name.empty())
        OS << " of '" << BO->Name << "'";
      OS << ": offset " << BO->Off.toString() << " outside [0," << MaxOff
         << "]";
      Report(InstrIndex, LintKind::OutOfBoundsAccess, OS.str());
    }
  };
  // Walk every Load with a computed address inside \p E.
  auto CheckLoads = [&](unsigned InstrIndex, const IRExpr *Root,
                        const AbsState &S) {
    std::function<void(const IRExpr *)> Walk = [&](const IRExpr *E) {
      switch (E->kind()) {
      case IRExpr::Kind::Load: {
        const auto *L = cast<LoadExpr>(E);
        if (!isa<FrameAddrExpr>(L->address()) &&
            !isa<GlobalAddrExpr>(L->address())) {
          CheckAccess(InstrIndex, L->address(), L->valType().SizeBytes, S);
          Walk(L->address());
        }
        return;
      }
      case IRExpr::Kind::Unary:
        Walk(cast<UnaryIRExpr>(E)->operand());
        return;
      case IRExpr::Kind::Cast:
        Walk(cast<CastIRExpr>(E)->operand());
        return;
      case IRExpr::Kind::Binary:
        Walk(cast<BinaryIRExpr>(E)->lhs());
        Walk(cast<BinaryIRExpr>(E)->rhs());
        return;
      case IRExpr::Kind::Cmp:
        Walk(cast<CmpExpr>(E)->lhs());
        Walk(cast<CmpExpr>(E)->rhs());
        return;
      default:
        return;
      }
    };
    Walk(Root);
  };

  std::set<unsigned> UninitReported; // one report per slot
  for (unsigned B = 0; B < G.numBlocks(); ++B) {
    if (!IA.blockExecutable(B) || !G.isReachable(B))
      continue;
    AbsState S = IA.inState(B);
    for (unsigned I = G.block(B).Begin; I < G.block(B).End; ++I) {
      const Instr &In = *F.Instrs[I];
      bool UserVisible = In.loc().Line > 0;

      // 2. Guaranteed division by zero.
      if (IA.converged() && UserVisible && instrDividesByZero(IA, S, In))
        Report(I, LintKind::DivisionByZero,
               "division by zero: divisor is always 0");

      // 3. Guaranteed assert failure: an assert lowers to a CondJump
      // whose false edge jumps to an Abort(AssertFailure) block.
      if (IA.converged()) {
        if (const auto *CJ = dyn_cast<CondJumpInstr>(&In)) {
          Interval CI = IA.evalExpr(S, CJ->cond());
          if (CI.Lo == 0 && CI.Hi == 0 &&
              CJ->falseTarget() < F.Instrs.size()) {
            const BasicBlock &FB = G.block(G.blockOf(CJ->falseTarget()));
            const auto *A = dyn_cast<AbortInstr>(F.Instrs[FB.Begin].get());
            if (A && A->why() == AbortKind::AssertFailure)
              Report(I, LintKind::AssertAlwaysFails,
                     "assertion always fails");
          }
        }
      }

      // 4. Uninitialized reads: definitely unassigned on every path.
      const std::vector<bool> &DU = LV.DefinitelyUnassignedBefore[I];
      auto ReportUninit = [&](unsigned Slot) {
        if (F.Slots[Slot].Name.empty() || !UninitReported.insert(Slot).second)
          return;
        Report(I, LintKind::UninitializedRead,
               "'" + F.Slots[Slot].Name +
                   "' is read before it is ever assigned");
      };
      switch (In.kind()) {
      case Instr::Kind::Store:
        if (!isa<FrameAddrExpr>(cast<StoreInstr>(&In)->address()))
          forEachUninitUse(cast<StoreInstr>(&In)->address(), DU, LV.Tracked,
                           ReportUninit);
        forEachUninitUse(cast<StoreInstr>(&In)->value(), DU, LV.Tracked,
                         ReportUninit);
        break;
      case Instr::Kind::CondJump:
        forEachUninitUse(cast<CondJumpInstr>(&In)->cond(), DU, LV.Tracked,
                         ReportUninit);
        break;
      case Instr::Kind::Call:
        for (const IRExprPtr &A : cast<CallInstr>(&In)->args())
          forEachUninitUse(A.get(), DU, LV.Tracked, ReportUninit);
        break;
      case Instr::Kind::Ret:
        if (const IRExpr *V = cast<RetInstr>(&In)->value())
          forEachUninitUse(V, DU, LV.Tracked, ReportUninit);
        break;
      default:
        break;
      }

      // 5. Dead stores to named locals.
      if (const auto *St = dyn_cast<StoreInstr>(&In)) {
        if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
          unsigned Slot = FA->slotIndex();
          if (Slot < LV.Tracked.size() && LV.Tracked[Slot] &&
              !F.Slots[Slot].Name.empty() && UserVisible &&
              !LV.LiveAfter[I][Slot])
            Report(I, LintKind::DeadStore,
                   "value stored to '" + F.Slots[Slot].Name +
                       "' is never read");
        }
      }

      // 6/7. Guaranteed out-of-bounds / null dereference.
      if (UserVisible) {
        switch (In.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&In);
          if (!isa<FrameAddrExpr>(St->address()) &&
              !isa<GlobalAddrExpr>(St->address())) {
            CheckAccess(I, St->address(), St->valType().SizeBytes, S);
            CheckLoads(I, St->address(), S);
          }
          CheckLoads(I, St->value(), S);
          break;
        }
        case Instr::Kind::CondJump:
          CheckLoads(I, cast<CondJumpInstr>(&In)->cond(), S);
          break;
        case Instr::Kind::Call:
          for (const IRExprPtr &A : cast<CallInstr>(&In)->args())
            CheckLoads(I, A.get(), S);
          break;
        case Instr::Kind::Ret:
          if (const IRExpr *V = cast<RetInstr>(&In)->value())
            CheckLoads(I, V, S);
          break;
        default:
          break;
        }
      }

      // 8. Stack addresses that outlive the frame: returned, or stored
      // into longer-lived memory.
      if (UserVisible) {
        if (const auto *Ret = dyn_cast<RetInstr>(&In)) {
          if (Ret->value() && MC.onlyLocalTargets(Ret->value()))
            Report(I, LintKind::StackAddressEscape,
                   "'" + F.Name + "' returns the address of a local");
        } else if (const auto *St = dyn_cast<StoreInstr>(&In)) {
          if (MC.onlyLocalTargets(St->value()) &&
              MC.destOutlivesFrame(St->address()))
            Report(I, LintKind::StackAddressEscape,
                   "address of a local in '" + F.Name +
                       "' is stored where it outlives the frame");
        }
      }

      IA.transferInstr(S, In);
    }
  }

  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    return A.InstrIndex < B.InstrIndex;
  });
}

} // namespace

/// RFC 8259 string escaping over raw bytes. Besides the two mandatory
/// escapes, every control character and every byte outside printable
/// ASCII is emitted as \u00XX (bytes-as-Latin-1: identifiers from
/// unparseable sources can carry arbitrary bytes, and escaping them
/// keeps the document pure ASCII and parseable by any conforming
/// reader). The byte must pass through snprintf as an unsigned value —
/// a plain char promotes negatively for bytes >= 0x80 and would print
/// garbage like ￿ffe9.
std::string dart::jsonEscape(const std::string &S) {
  std::ostringstream OS;
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (C < 0x20 || C >= 0x7f) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", static_cast<unsigned>(C));
        OS << Buf;
      } else {
        OS << static_cast<char>(C);
      }
    }
  }
  return OS.str();
}

namespace {

/// Apply \p F to every IRExpr node under \p E, including \p E itself.
template <typename Fn> void forEachExprNode(const IRExpr *E, Fn F) {
  F(E);
  switch (E->kind()) {
  case IRExpr::Kind::Load:
    forEachExprNode(cast<LoadExpr>(E)->address(), F);
    return;
  case IRExpr::Kind::Unary:
    forEachExprNode(cast<UnaryIRExpr>(E)->operand(), F);
    return;
  case IRExpr::Kind::Binary:
    forEachExprNode(cast<BinaryIRExpr>(E)->lhs(), F);
    forEachExprNode(cast<BinaryIRExpr>(E)->rhs(), F);
    return;
  case IRExpr::Kind::Cmp:
    forEachExprNode(cast<CmpExpr>(E)->lhs(), F);
    forEachExprNode(cast<CmpExpr>(E)->rhs(), F);
    return;
  case IRExpr::Kind::Cast:
    forEachExprNode(cast<CastIRExpr>(E)->operand(), F);
    return;
  default:
    return;
  }
}

/// Apply \p F to every top-level expression operand of \p I.
template <typename Fn> void forEachInstrExpr(const Instr &I, Fn F) {
  switch (I.kind()) {
  case Instr::Kind::Store:
    F(cast<StoreInstr>(&I)->address());
    F(cast<StoreInstr>(&I)->value());
    return;
  case Instr::Kind::Copy:
    F(cast<CopyInstr>(&I)->dst());
    F(cast<CopyInstr>(&I)->src());
    return;
  case Instr::Kind::CondJump:
    F(cast<CondJumpInstr>(&I)->cond());
    return;
  case Instr::Kind::Call:
    for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
      F(A.get());
    return;
  case Instr::Kind::Ret:
    if (const IRExpr *V = cast<RetInstr>(&I)->value())
      F(V);
    return;
  default:
    return;
  }
}

/// 9. Write-only globals. A named, writable, non-input global whose
/// address occurs in the whole module *only* as the direct destination of
/// stores can never be read (taking its address — the only other way to
/// reach it — would itself be a disqualifying occurrence), so every value
/// written to it is lost. Purely syntactic and therefore a guarantee;
/// writes through a computed address (g[i] = ...) leave the global's
/// address visible in the index expression and conservatively disqualify.
void lintWriteOnlyGlobals(const IRModule &M, std::vector<LintFinding> &Out) {
  size_t NumG = M.globals().size();
  std::vector<bool> StoredDirect(NumG, false), OtherUse(NumG, false);
  std::vector<SourceLocation> StoreLoc(NumG);
  std::vector<unsigned> StoreFn(NumG, 0);
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (const auto &IP : F.Instrs) {
      const Instr &In = *IP;
      const IRExpr *WriteAddr = nullptr;
      unsigned WriteG = 0;
      if (const auto *St = dyn_cast<StoreInstr>(&In)) {
        if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address())) {
          WriteAddr = St->address();
          WriteG = GA->globalIndex();
        }
      } else if (const auto *Cp = dyn_cast<CopyInstr>(&In)) {
        if (const auto *GA = dyn_cast<GlobalAddrExpr>(Cp->dst())) {
          WriteAddr = Cp->dst();
          WriteG = GA->globalIndex();
        }
      }
      if (WriteAddr) {
        if (!StoredDirect[WriteG] ||
            (StoreLoc[WriteG].Line == 0 && In.loc().Line > 0)) {
          StoreLoc[WriteG] = In.loc();
          StoreFn[WriteG] = Fn;
        }
        StoredDirect[WriteG] = true;
      }
      forEachInstrExpr(In, [&](const IRExpr *Root) {
        forEachExprNode(Root, [&](const IRExpr *E) {
          if (E == WriteAddr)
            return;
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(E))
            OtherUse[GA->globalIndex()] = true;
        });
      });
    }
  }
  for (unsigned G = 0; G < NumG; ++G) {
    const IRGlobal &Gl = M.globals()[G];
    if (StoredDirect[G] && !OtherUse[G] && !Gl.Name.empty() &&
        !Gl.ReadOnly && !Gl.IsExternInput)
      Out.push_back({LintKind::WriteOnlyVariable,
                     M.functions()[StoreFn[G]]->Name, StoreLoc[G],
                     "global '" + Gl.Name + "' is written but never read"});
  }
}

/// 10/11. The dependence-powered input lints. Only meaningful when a
/// toplevel names the function the driver calls: its parameters are the
/// Param sources and call-edge reachability is anchored there.
void lintDependence(const IRModule &M, const std::string &ToplevelName,
                    std::vector<LintFinding> &Out) {
  // A fresh points-to solve anchored at the toplevel — the per-function
  // lints' solve is anchored at no function, so its pointer parameters
  // have no targets and reusing it would drop flows through them.
  DependenceResult Dep = runDependenceAnalysis(M, ToplevelName);
  if (Dep.ToplevelFn == ~0u)
    return;

  // 10. Dead inputs. UsedSources covers branches, outputs (toplevel
  // return, external-call arguments) and external-world stores; a bug can
  // also surface as a runtime trap, so extend the set with the sources of
  // every divisor and every computed access address before calling an
  // input influence-free. Absence from this may-set is a guarantee.
  SourceSet Used = Dep.UsedSources;
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (const auto &IP : F.Instrs) {
      forEachInstrExpr(*IP, [&](const IRExpr *Root) {
        forEachExprNode(Root, [&](const IRExpr *E) {
          if (const auto *B = dyn_cast<BinaryIRExpr>(E)) {
            if (B->op() == IRBinOp::Div || B->op() == IRBinOp::Rem)
              Used.unionWith(Dep.exprSources(Fn, B->rhs()));
          } else if (const auto *L = dyn_cast<LoadExpr>(E)) {
            if (!isa<FrameAddrExpr>(L->address()) &&
                !isa<GlobalAddrExpr>(L->address()))
              Used.unionWith(Dep.exprSources(Fn, L->address()));
          }
        });
      });
      if (const auto *St = dyn_cast<StoreInstr>(IP.get())) {
        if (!isa<FrameAddrExpr>(St->address()) &&
            !isa<GlobalAddrExpr>(St->address()))
          Used.unionWith(Dep.exprSources(Fn, St->address()));
      } else if (const auto *Cp = dyn_cast<CopyInstr>(IP.get())) {
        if (!isa<FrameAddrExpr>(Cp->dst()) && !isa<GlobalAddrExpr>(Cp->dst()))
          Used.unionWith(Dep.exprSources(Fn, Cp->dst()));
        if (!isa<FrameAddrExpr>(Cp->src()) && !isa<GlobalAddrExpr>(Cp->src()))
          Used.unionWith(Dep.exprSources(Fn, Cp->src()));
      }
    }
  }
  for (unsigned Id = 1; Id < Dep.Sources.size(); ++Id) {
    if (Used.test(Id))
      continue;
    const InputSource &S = Dep.Sources[Id];
    if (S.K == InputSource::Kind::Param) {
      const IRFunction &F = *M.functions()[S.Fn];
      std::string Name = S.Index < F.Slots.size() &&
                                 !F.Slots[S.Index].Name.empty()
                             ? F.Slots[S.Index].Name
                             : S.Name;
      SourceLocation Loc{};
      for (const auto &IP : F.Instrs)
        if (IP->loc().Line > 0) {
          Loc = IP->loc();
          break;
        }
      Out.push_back({LintKind::DeadInput, F.Name, Loc,
                     "input parameter '" + Name + "' of '" + F.Name +
                         "' influences no branch, output, or trapping "
                         "operation"});
    } else if (S.K == InputSource::Kind::ExternGlobal) {
      Out.push_back({LintKind::DeadInput, ToplevelName, SourceLocation{},
                     "extern input '" + S.Name +
                         "' influences no branch, output, or trapping "
                         "operation"});
    }
  }

  // 11. Control-unreachable bug sites. A guarded abort/assert whose
  // transitive controlling branches (including the call contexts that
  // reach its function) all have input-independent conditions executes —
  // or not — identically on every run: no input choice steers execution
  // toward or away from it, so the directed search can never target it.
  // Blocks in reverse-unreachable regions carry the full source set and
  // are skipped automatically.
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    if (Fn >= Dep.ReachableFromToplevel.size() ||
        !Dep.ReachableFromToplevel[Fn])
      continue;
    const IRFunction &F = *M.functions()[Fn];
    if (F.Instrs.empty())
      continue;
    bool HasAbort = false;
    for (const auto &IP : F.Instrs)
      if (isa<AbortInstr>(IP.get()))
        HasAbort = true;
    if (!HasAbort)
      continue;
    Cfg G = Cfg::build(F);
    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *A = dyn_cast<AbortInstr>(F.Instrs[I].get());
      if (!A)
        continue;
      unsigned B = G.blockOf(I);
      if (B == Cfg::kUnset || !G.isReachable(B))
        continue;
      if (!Dep.BlockGuarded[Fn][B] || Dep.BlockCtrlSources[Fn][B].any())
        continue;
      const char *What =
          A->why() == AbortKind::AssertFailure ? "assertion" : "abort";
      Out.push_back({LintKind::ControlUnreachableBug, F.Name,
                     F.Instrs[I]->loc(),
                     std::string(What) + " in '" + F.Name +
                         "' is guarded only by input-independent branches: "
                         "no input choice affects whether it executes",
                     Fn, I});
    }
  }
}

} // namespace

std::vector<LintFinding>
dart::runLintAnalysis(const IRModule &M, const std::string &ToplevelName) {
  // The per-function lints run taint without a toplevel: no parameter is
  // an input seed, so the taint result only contributes alias, escape,
  // and stored-global facts and the findings do not depend on which
  // function the driver calls. The dependence lints re-seed from the
  // toplevel on the same points-to solve.
  TaintResult T = runTaintAnalysis(M, "");
  std::vector<LintFinding> Result;
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    std::vector<Finding> Findings;
    lintFunction(M, Fn, T, Findings);
    for (Finding &F : Findings)
      Result.push_back({F.Kind, M.functions()[Fn]->Name, F.Loc,
                        std::move(F.Message), Fn, F.InstrIndex});
  }
  lintWriteOnlyGlobals(M, Result);
  if (!ToplevelName.empty())
    lintDependence(M, ToplevelName, Result);
  return Result;
}

unsigned dart::runLintPass(const IRModule &M, DiagnosticsEngine &Diags,
                           const std::string &ToplevelName) {
  std::vector<LintFinding> Findings = runLintAnalysis(M, ToplevelName);
  for (const LintFinding &F : Findings)
    Diags.warning(F.Loc, F.Message);
  return static_cast<unsigned>(Findings.size());
}

std::string dart::lintFindingsToJson(const std::string &File,
                                     const std::vector<LintFinding> &Fs) {
  std::ostringstream OS;
  OS << "{\"file\":\"" << jsonEscape(File) << "\",\"findings\":[";
  for (size_t I = 0; I < Fs.size(); ++I) {
    const LintFinding &F = Fs[I];
    if (I)
      OS << ",";
    OS << "{\"kind\":\"" << lintKindName(F.Kind) << "\",\"function\":\""
       << jsonEscape(F.Function) << "\",\"line\":" << F.Loc.Line
       << ",\"column\":" << F.Loc.Column << ",\"message\":\""
       << jsonEscape(F.Message) << "\"}";
  }
  OS << "]}";
  return OS.str();
}

std::string dart::lintFindingsToSarif(const std::string &File,
                                      const std::vector<LintFinding> &Fs) {
  std::ostringstream OS;
  OS << "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/"
        "sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":"
        "\"dart-analyze\",\"rules\":[";
  std::vector<std::string> Rules;
  for (const LintFinding &F : Fs) {
    std::string Id = lintKindName(F.Kind);
    if (std::find(Rules.begin(), Rules.end(), Id) == Rules.end())
      Rules.push_back(std::move(Id));
  }
  for (size_t I = 0; I < Rules.size(); ++I)
    OS << (I ? "," : "") << "{\"id\":\"" << Rules[I] << "\"}";
  OS << "]}},\"results\":[";
  for (size_t I = 0; I < Fs.size(); ++I) {
    const LintFinding &F = Fs[I];
    if (I)
      OS << ",";
    OS << "{\"ruleId\":\"" << lintKindName(F.Kind)
       << "\",\"level\":\"warning\",\"message\":{\"text\":\""
       << jsonEscape(F.Message) << "\"},\"locations\":[{\"physicalLocation\""
       << ":{\"artifactLocation\":{\"uri\":\"" << jsonEscape(File)
       << "\"},\"region\":{\"startLine\":" << (F.Loc.Line > 0 ? F.Loc.Line : 1)
       << ",\"startColumn\":" << (F.Loc.Column > 0 ? F.Loc.Column : 1)
       << "}}}]}";
  }
  OS << "]}]}";
  return OS.str();
}
