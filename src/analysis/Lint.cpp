//===- Lint.cpp - Static defect reporting -----------------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/Cfg.h"
#include "analysis/Interval.h"
#include "analysis/Liveness.h"
#include "analysis/Taint.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace dart;

namespace {

/// One finding, keyed for deterministic function/instruction ordering.
struct Finding {
  unsigned InstrIndex;
  SourceLocation Loc;
  std::string Message;
};

/// Does the block contain anything a user would recognize as code?
/// (Purely synthetic glue — jumps, temp shuffles without a location —
/// should not produce "unreachable code" reports.)
const Instr *firstUserInstr(const IRFunction &F, const BasicBlock &B) {
  for (unsigned I = B.Begin; I < B.End; ++I) {
    const Instr &In = *F.Instrs[I];
    if (In.loc().Line == 0)
      continue;
    switch (In.kind()) {
    case Instr::Kind::Store:
    case Instr::Kind::Copy:
    case Instr::Kind::Call:
    case Instr::Kind::CondJump:
    case Instr::Kind::Abort:
    case Instr::Kind::Ret:
      return &In;
    default:
      break;
    }
  }
  return nullptr;
}

/// Scan \p E for Div/Rem whose divisor is provably always zero in \p S.
void findZeroDivisors(const IntervalAnalysis &IA, const AbsState &S,
                      const IRExpr *E, bool &Found) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load:
    findZeroDivisors(IA, S, cast<LoadExpr>(E)->address(), Found);
    return;
  case IRExpr::Kind::Unary:
    findZeroDivisors(IA, S, cast<UnaryIRExpr>(E)->operand(), Found);
    return;
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    findZeroDivisors(IA, S, B->lhs(), Found);
    findZeroDivisors(IA, S, B->rhs(), Found);
    if (B->op() == IRBinOp::Div || B->op() == IRBinOp::Rem) {
      Interval D = IA.evalExpr(S, B->rhs());
      if (D.Lo == 0 && D.Hi == 0)
        Found = true;
    }
    return;
  }
  case IRExpr::Kind::Cmp:
    findZeroDivisors(IA, S, cast<CmpExpr>(E)->lhs(), Found);
    findZeroDivisors(IA, S, cast<CmpExpr>(E)->rhs(), Found);
    return;
  case IRExpr::Kind::Cast:
    findZeroDivisors(IA, S, cast<CastIRExpr>(E)->operand(), Found);
    return;
  }
}

bool instrDividesByZero(const IntervalAnalysis &IA, const AbsState &S,
                        const Instr &I) {
  bool Found = false;
  switch (I.kind()) {
  case Instr::Kind::Store:
    findZeroDivisors(IA, S, cast<StoreInstr>(&I)->address(), Found);
    findZeroDivisors(IA, S, cast<StoreInstr>(&I)->value(), Found);
    break;
  case Instr::Kind::CondJump:
    findZeroDivisors(IA, S, cast<CondJumpInstr>(&I)->cond(), Found);
    break;
  case Instr::Kind::Call:
    for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
      findZeroDivisors(IA, S, A.get(), Found);
    break;
  case Instr::Kind::Ret:
    if (const IRExpr *V = cast<RetInstr>(&I)->value())
      findZeroDivisors(IA, S, V, Found);
    break;
  default:
    break;
  }
  return Found;
}

/// Find tracked named slots \p I reads while definitely unassigned.
template <typename Fn>
void forEachUninitUse(const IRExpr *E, const std::vector<bool> &DU,
                      const std::vector<bool> &Tracked, Fn Report) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      if (S < Tracked.size() && Tracked[S] && DU[S])
        Report(S);
      return;
    }
    forEachUninitUse(L->address(), DU, Tracked, Report);
    return;
  }
  case IRExpr::Kind::Unary:
    forEachUninitUse(cast<UnaryIRExpr>(E)->operand(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Binary:
    forEachUninitUse(cast<BinaryIRExpr>(E)->lhs(), DU, Tracked, Report);
    forEachUninitUse(cast<BinaryIRExpr>(E)->rhs(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Cmp:
    forEachUninitUse(cast<CmpExpr>(E)->lhs(), DU, Tracked, Report);
    forEachUninitUse(cast<CmpExpr>(E)->rhs(), DU, Tracked, Report);
    return;
  case IRExpr::Kind::Cast:
    forEachUninitUse(cast<CastIRExpr>(E)->operand(), DU, Tracked, Report);
    return;
  }
}

void lintFunction(const IRModule &M, unsigned FnIndex, const TaintResult &T,
                  std::vector<Finding> &Out) {
  const IRFunction &F = *M.functions()[FnIndex];
  if (F.Instrs.empty())
    return;
  Cfg G = Cfg::build(F);
  IntervalAnalysis IA(M, G, T, FnIndex, IntervalAnalysis::Config());
  IA.run();
  LivenessResult LV = runLivenessAnalysis(G, T, FnIndex);

  auto Report = [&](unsigned InstrIndex, std::string Msg) {
    Out.push_back({InstrIndex, F.Instrs[InstrIndex]->loc(),
                   std::move(Msg)});
  };

  // 1. Unreachable code: entries of statically infeasible regions. Only
  // report when the fixpoint converged (a bailed analysis proves
  // nothing), and only blocks containing user-visible instructions.
  if (IA.converged()) {
    for (unsigned B = 0; B < G.numBlocks(); ++B) {
      // Only blocks the CFG can reach: syntactically dead regions (e.g.
      // the synthesized trailing return of a function whose paths all
      // return explicitly) are not dataflow findings.
      if (IA.blockExecutable(B) || !G.isReachable(B))
        continue;
      bool RegionEntry = true;
      for (unsigned P : G.block(B).Preds)
        if (!IA.blockExecutable(P))
          RegionEntry = false;
      if (!RegionEntry)
        continue;
      if (const Instr *I = firstUserInstr(F, G.block(B))) {
        unsigned Index = G.block(B).Begin;
        while (F.Instrs[Index].get() != I)
          ++Index;
        Report(Index, "unreachable code in '" + F.Name + "'");
      }
    }
  }

  std::set<unsigned> UninitReported; // one report per slot
  for (unsigned B = 0; B < G.numBlocks(); ++B) {
    if (!IA.blockExecutable(B) || !G.isReachable(B))
      continue;
    AbsState S = IA.inState(B);
    for (unsigned I = G.block(B).Begin; I < G.block(B).End; ++I) {
      const Instr &In = *F.Instrs[I];

      // 2. Guaranteed division by zero.
      if (IA.converged() && In.loc().Line > 0 &&
          instrDividesByZero(IA, S, In))
        Report(I, "division by zero: divisor is always 0");

      // 3. Guaranteed assert failure: an assert lowers to a CondJump
      // whose false edge jumps to an Abort(AssertFailure) block.
      if (IA.converged()) {
        if (const auto *CJ = dyn_cast<CondJumpInstr>(&In)) {
          Interval CI = IA.evalExpr(S, CJ->cond());
          if (CI.Lo == 0 && CI.Hi == 0 &&
              CJ->falseTarget() < F.Instrs.size()) {
            const BasicBlock &FB = G.block(G.blockOf(CJ->falseTarget()));
            const auto *A = dyn_cast<AbortInstr>(F.Instrs[FB.Begin].get());
            if (A && A->why() == AbortKind::AssertFailure)
              Report(I, "assertion always fails");
          }
        }
      }

      // 4. Uninitialized reads: definitely unassigned on every path.
      const std::vector<bool> &DU = LV.DefinitelyUnassignedBefore[I];
      auto ReportUninit = [&](unsigned Slot) {
        if (F.Slots[Slot].Name.empty() || !UninitReported.insert(Slot).second)
          return;
        Report(I, "'" + F.Slots[Slot].Name +
                      "' is read before it is ever assigned");
      };
      switch (In.kind()) {
      case Instr::Kind::Store:
        if (!isa<FrameAddrExpr>(cast<StoreInstr>(&In)->address()))
          forEachUninitUse(cast<StoreInstr>(&In)->address(), DU, LV.Tracked,
                           ReportUninit);
        forEachUninitUse(cast<StoreInstr>(&In)->value(), DU, LV.Tracked,
                         ReportUninit);
        break;
      case Instr::Kind::CondJump:
        forEachUninitUse(cast<CondJumpInstr>(&In)->cond(), DU, LV.Tracked,
                         ReportUninit);
        break;
      case Instr::Kind::Call:
        for (const IRExprPtr &A : cast<CallInstr>(&In)->args())
          forEachUninitUse(A.get(), DU, LV.Tracked, ReportUninit);
        break;
      case Instr::Kind::Ret:
        if (const IRExpr *V = cast<RetInstr>(&In)->value())
          forEachUninitUse(V, DU, LV.Tracked, ReportUninit);
        break;
      default:
        break;
      }

      // 5. Dead stores to named locals.
      if (const auto *St = dyn_cast<StoreInstr>(&In)) {
        if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
          unsigned Slot = FA->slotIndex();
          if (Slot < LV.Tracked.size() && LV.Tracked[Slot] &&
              !F.Slots[Slot].Name.empty() && In.loc().Line > 0 &&
              !LV.LiveAfter[I][Slot])
            Report(I, "value stored to '" + F.Slots[Slot].Name +
                          "' is never read");
        }
      }

      IA.transferInstr(S, In);
    }
  }

  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    return A.InstrIndex < B.InstrIndex;
  });
}

} // namespace

unsigned dart::runLintPass(const IRModule &M, DiagnosticsEngine &Diags) {
  // Lint runs without a toplevel: no parameter is an input seed, so the
  // taint result only contributes escape and stored-global facts.
  TaintResult T = runTaintAnalysis(M, "");
  unsigned Count = 0;
  for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
    std::vector<Finding> Findings;
    lintFunction(M, Fn, T, Findings);
    for (const Finding &F : Findings) {
      Diags.warning(F.Loc, F.Message);
      ++Count;
    }
  }
  return Count;
}
