//===- CallGraph.cpp - Explicit call graph over the IR ---------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <deque>

using namespace dart;

CallGraph CallGraph::build(const IRModule &M) {
  CallGraph CG;
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  CG.Callees.resize(NumFns);
  CG.Callers.resize(NumFns);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    CG.IndexOf[M.functions()[Fn]->Name] = Fn;

  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *C = dyn_cast<CallInstr>(F.Instrs[I].get());
      if (!C)
        continue;
      auto It = CG.IndexOf.find(C->callee());
      unsigned Callee = It != CG.IndexOf.end() ? It->second : kExternal;
      CG.Sites.push_back({Fn, I, Callee});
      if (Callee != kExternal) {
        CG.Callees[Fn].push_back(Callee);
        CG.Callers[Callee].push_back(Fn);
      }
    }
  }
  auto Dedup = [](std::vector<unsigned> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  };
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    Dedup(CG.Callees[Fn]);
    Dedup(CG.Callers[Fn]);
  }
  return CG;
}

unsigned CallGraph::indexOf(const std::string &Name) const {
  auto It = IndexOf.find(Name);
  return It != IndexOf.end() ? It->second : kExternal;
}

std::vector<bool> CallGraph::transitiveCallees(unsigned Fn) const {
  std::vector<bool> Reached(numFunctions(), false);
  std::deque<unsigned> Worklist{Fn};
  Reached[Fn] = true;
  while (!Worklist.empty()) {
    unsigned F = Worklist.front();
    Worklist.pop_front();
    for (unsigned C : Callees[F])
      if (!Reached[C]) {
        Reached[C] = true;
        Worklist.push_back(C);
      }
  }
  return Reached;
}
