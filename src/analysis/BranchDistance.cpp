//===- BranchDistance.cpp - Static distance-to-uncovered metric ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BranchDistance.h"
#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"

#include <deque>

using namespace dart;

BranchDistanceMap BranchDistanceMap::build(const IRModule &M) {
  BranchDistanceMap BD;
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  std::vector<Cfg> Cfgs;
  Cfgs.reserve(NumFns);
  std::vector<unsigned> BlockBase(NumFns, 0);
  unsigned NumBlocks = 0;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    Cfgs.push_back(Cfg::build(*M.functions()[Fn]));
    BlockBase[Fn] = NumBlocks;
    NumBlocks += Cfgs.back().numBlocks();
  }
  BD.RevAdj.assign(NumBlocks, {});

  // Intra-function CFG edges.
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const Cfg &G = Cfgs[Fn];
    for (unsigned B = 0; B < G.numBlocks(); ++B)
      for (unsigned S : G.block(B).Succs)
        BD.RevAdj[BlockBase[Fn] + S].push_back(BlockBase[Fn] + B);
  }
  // Call edges: the calling block can reach the callee's entry block.
  CallGraph CG = CallGraph::build(M);
  for (const CallGraphSite &S : CG.sites()) {
    if (S.CalleeFn == CallGraph::kExternal)
      continue;
    const Cfg &Caller = Cfgs[S.CallerFn];
    unsigned B = Caller.blockOf(S.InstrIndex);
    if (B == Cfg::kUnset)
      continue;
    BD.RevAdj[BlockBase[S.CalleeFn] + Cfgs[S.CalleeFn].entry()].push_back(
        BlockBase[S.CallerFn] + B);
  }

  // Site metadata: where each CondJump sits and where each direction
  // lands.
  unsigned MaxSite = 0;
  bool AnySite = false;
  for (const auto &F : M.functions())
    for (const InstrPtr &I : F->Instrs)
      if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get())) {
        MaxSite = std::max(MaxSite, CJ->siteId());
        AnySite = true;
      }
  BD.NumSites = AnySite ? MaxSite + 1 : 0;
  BD.SiteBlock.assign(BD.NumSites, kNoBlock);
  BD.LandingBlock.assign(2 * BD.NumSites, kNoBlock);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    const Cfg &G = Cfgs[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[I].get());
      if (!CJ)
        continue;
      unsigned S = CJ->siteId();
      unsigned B = G.blockOf(I);
      if (B != Cfg::kUnset)
        BD.SiteBlock[S] = BlockBase[Fn] + B;
      unsigned FalseB = G.blockOf(CJ->falseTarget());
      unsigned TrueB = G.blockOf(CJ->trueTarget());
      if (FalseB != Cfg::kUnset)
        BD.LandingBlock[2 * S] = BlockBase[Fn] + FalseB;
      if (TrueB != Cfg::kUnset)
        BD.LandingBlock[2 * S + 1] = BlockBase[Fn] + TrueB;
    }
  }
  return BD;
}

std::vector<uint32_t>
BranchDistanceMap::priorities(const std::vector<bool> &Covered) const {
  auto BitCovered = [&](unsigned Bit) {
    return Bit < Covered.size() && Covered[Bit];
  };

  // Multi-source backward BFS: distance from each block to the nearest
  // block whose CondJump still has an uncovered direction.
  std::vector<uint32_t> Dist(RevAdj.size(), kUnreachablePriority);
  std::deque<unsigned> Worklist;
  for (unsigned S = 0; S < NumSites; ++S) {
    if (SiteBlock[S] == kNoBlock)
      continue;
    if (BitCovered(2 * S) && BitCovered(2 * S + 1))
      continue;
    if (Dist[SiteBlock[S]] == kUnreachablePriority) {
      Dist[SiteBlock[S]] = 0;
      Worklist.push_back(SiteBlock[S]);
    }
  }
  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    for (unsigned P : RevAdj[B])
      if (Dist[P] == kUnreachablePriority) {
        Dist[P] = Dist[B] + 1;
        Worklist.push_back(P);
      }
  }

  std::vector<uint32_t> Prio(2 * NumSites, kUnreachablePriority);
  for (unsigned Bit = 0; Bit < Prio.size(); ++Bit) {
    if (!BitCovered(Bit)) {
      Prio[Bit] = 0;
      continue;
    }
    unsigned Land = LandingBlock[Bit];
    if (Land == kNoBlock || Dist[Land] == kUnreachablePriority)
      continue;
    Prio[Bit] = 1 + Dist[Land];
  }
  return Prio;
}
