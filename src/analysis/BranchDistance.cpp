//===- BranchDistance.cpp - Static distance-to-uncovered metric ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BranchDistance.h"
#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"

#include <deque>

using namespace dart;

BranchDistanceMap BranchDistanceMap::build(const IRModule &M) {
  BranchDistanceMap BD;
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  std::vector<Cfg> Cfgs;
  Cfgs.reserve(NumFns);
  std::vector<unsigned> BlockBase(NumFns, 0);
  unsigned NumBlocks = 0;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    Cfgs.push_back(Cfg::build(*M.functions()[Fn]));
    BlockBase[Fn] = NumBlocks;
    NumBlocks += Cfgs.back().numBlocks();
  }
  BD.RevAdj.assign(NumBlocks, {});

  // Intra-function CFG edges.
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const Cfg &G = Cfgs[Fn];
    for (unsigned B = 0; B < G.numBlocks(); ++B)
      for (unsigned S : G.block(B).Succs)
        BD.RevAdj[BlockBase[Fn] + S].push_back(BlockBase[Fn] + B);
  }
  // Call edges: the calling block can reach the callee's entry block.
  CallGraph CG = CallGraph::build(M);
  for (const CallGraphSite &S : CG.sites()) {
    if (S.CalleeFn == CallGraph::kExternal)
      continue;
    const Cfg &Caller = Cfgs[S.CallerFn];
    unsigned B = Caller.blockOf(S.InstrIndex);
    if (B == Cfg::kUnset)
      continue;
    BD.RevAdj[BlockBase[S.CalleeFn] + Cfgs[S.CalleeFn].entry()].push_back(
        BlockBase[S.CallerFn] + B);
  }

  // Site metadata: where each CondJump sits and where each direction
  // lands.
  unsigned MaxSite = 0;
  bool AnySite = false;
  for (const auto &F : M.functions())
    for (const InstrPtr &I : F->Instrs)
      if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get())) {
        MaxSite = std::max(MaxSite, CJ->siteId());
        AnySite = true;
      }
  BD.NumSites = AnySite ? MaxSite + 1 : 0;
  BD.SiteBlock.assign(BD.NumSites, kNoBlock);
  BD.LandingBlock.assign(2 * BD.NumSites, kNoBlock);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    const Cfg &G = Cfgs[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I) {
      const auto *CJ = dyn_cast<CondJumpInstr>(F.Instrs[I].get());
      if (!CJ)
        continue;
      unsigned S = CJ->siteId();
      unsigned B = G.blockOf(I);
      if (B != Cfg::kUnset)
        BD.SiteBlock[S] = BlockBase[Fn] + B;
      unsigned FalseB = G.blockOf(CJ->falseTarget());
      unsigned TrueB = G.blockOf(CJ->trueTarget());
      if (FalseB != Cfg::kUnset)
        BD.LandingBlock[2 * S] = BlockBase[Fn] + FalseB;
      if (TrueB != Cfg::kUnset)
        BD.LandingBlock[2 * S + 1] = BlockBase[Fn] + TrueB;
    }
  }
  return BD;
}

void BranchDistanceMap::computeInto(const std::vector<bool> &Covered,
                                    std::vector<uint32_t> &Dist,
                                    std::vector<uint32_t> &Prio) const {
  auto BitCovered = [&](unsigned Bit) {
    return Bit < Covered.size() && Covered[Bit];
  };

  // Multi-source backward BFS: distance from each block to the nearest
  // block whose CondJump still has an uncovered direction.
  Dist.assign(RevAdj.size(), kUnreachablePriority);
  std::deque<unsigned> Worklist;
  for (unsigned S = 0; S < NumSites; ++S) {
    if (SiteBlock[S] == kNoBlock)
      continue;
    if (BitCovered(2 * S) && BitCovered(2 * S + 1))
      continue;
    if (Dist[SiteBlock[S]] == kUnreachablePriority) {
      Dist[SiteBlock[S]] = 0;
      Worklist.push_back(SiteBlock[S]);
    }
  }
  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    for (unsigned P : RevAdj[B])
      if (Dist[P] == kUnreachablePriority) {
        Dist[P] = Dist[B] + 1;
        Worklist.push_back(P);
      }
  }

  Prio.assign(2 * NumSites, kUnreachablePriority);
  for (unsigned Bit = 0; Bit < Prio.size(); ++Bit) {
    if (!BitCovered(Bit)) {
      Prio[Bit] = 0;
      continue;
    }
    unsigned Land = LandingBlock[Bit];
    if (Land == kNoBlock || Dist[Land] == kUnreachablePriority)
      continue;
    Prio[Bit] = 1 + Dist[Land];
  }
}

std::vector<uint32_t>
BranchDistanceMap::priorities(const std::vector<bool> &Covered) const {
  std::vector<uint32_t> Dist, Prio;
  computeInto(Covered, Dist, Prio);
  return Prio;
}

DistancePriorityTracker::DistancePriorityTracker(const BranchDistanceMap &Map)
    : Map(Map), Covered(2 * size_t(Map.numSites()), false) {
  Map.computeInto(Covered, Dist, Prio);
}

unsigned DistancePriorityTracker::sync(const std::vector<bool> &Now) {
  size_t Limit = std::min(Now.size(), Covered.size());
  FreshBits.clear();
  bool SiteSaturated = false;
  for (size_t Bit = 0; Bit < Limit; ++Bit) {
    if (!Now[Bit] || Covered[Bit])
      continue;
    Covered[Bit] = true;
    FreshBits.push_back(static_cast<uint32_t>(Bit));
    unsigned S = static_cast<unsigned>(Bit / 2);
    // A BFS source disappears only when the *other* direction was already
    // covered and the site actually exists in the block graph.
    if (Covered[2 * S] && Covered[2 * S + 1] &&
        Map.SiteBlock[S] != BranchDistanceMap::kNoBlock)
      SiteSaturated = true;
  }
  if (FreshBits.empty())
    return 0;
  if (SiteSaturated) {
    // The source set shrank; distances may grow anywhere. One full BFS.
    ++FullRecomputes;
    Map.computeInto(Covered, Dist, Prio);
    return static_cast<unsigned>(FreshBits.size());
  }
  // Source set unchanged (every touched site keeps an uncovered sibling,
  // so its block stays a BFS source): Dist is untouched and the only
  // entries that change are the fresh bits' own, from 0 (uncovered) to
  // their landing-block distance.
  for (uint32_t Bit : FreshBits) {
    unsigned Land = Map.LandingBlock[Bit];
    Prio[Bit] = (Land == BranchDistanceMap::kNoBlock ||
                 Dist[Land] == BranchDistanceMap::kUnreachablePriority)
                    ? BranchDistanceMap::kUnreachablePriority
                    : 1 + Dist[Land];
    ++IncrementalUpdates;
  }
  return static_cast<unsigned>(FreshBits.size());
}
