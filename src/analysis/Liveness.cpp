//===- Liveness.cpp - Liveness / definite assignment instances --*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/Dataflow.h"

using namespace dart;

namespace {

/// Shared context for the use/def walkers. PT may be null (no alias
/// layer): tracking then falls back to never-escaped slots, which no
/// computed access can reach.
struct Ctx {
  const IRFunction &F;
  const std::vector<bool> &Tracked;
  const PointsToResult *PT;
  unsigned Fn;
  /// Frame conflation: in a self-recursive function a may-alias
  /// singleton can denote another activation's slot, so computed stores
  /// are never strong defs.
  bool SelfRecursive;
};

/// Invoke \p Use for every tracked slot the address expression \p Addr
/// may denote (a computed read/write reaches them through the alias
/// layer).
template <typename Fn>
void forEachAliasedSlot(const Ctx &C, const IRExpr *Addr, Fn Use) {
  if (!C.PT)
    return;
  for (unsigned O : C.PT->addressTargets(C.Fn, Addr))
    if (C.PT->kindOf(O) == PointsToResult::LocKind::Slot &&
        C.PT->ownerFn(O) == C.Fn) {
      unsigned S = C.PT->slotIndexOf(O);
      if (S < C.Tracked.size() && C.Tracked[S])
        Use(S);
    }
}

/// Invoke \p Use for every tracked slot a Load in \p E reads — directly,
/// or as a may-alias target of a computed address.
template <typename Fn>
void forEachUse(const Ctx &C, const IRExpr *E, Fn Use) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      if (S < C.Tracked.size() && C.Tracked[S])
        Use(S);
      return;
    }
    forEachAliasedSlot(C, L->address(), Use);
    forEachUse(C, L->address(), Use);
    return;
  }
  case IRExpr::Kind::Unary:
    forEachUse(C, cast<UnaryIRExpr>(E)->operand(), Use);
    return;
  case IRExpr::Kind::Binary:
    forEachUse(C, cast<BinaryIRExpr>(E)->lhs(), Use);
    forEachUse(C, cast<BinaryIRExpr>(E)->rhs(), Use);
    return;
  case IRExpr::Kind::Cmp:
    forEachUse(C, cast<CmpExpr>(E)->lhs(), Use);
    forEachUse(C, cast<CmpExpr>(E)->rhs(), Use);
    return;
  case IRExpr::Kind::Cast:
    forEachUse(C, cast<CastIRExpr>(E)->operand(), Use);
    return;
  }
}

/// Invoke \p Use for every tracked slot instruction \p I reads,
/// including reads a callee may perform through an alias (recursion).
template <typename Fn>
void forEachInstrUse(const Ctx &C, const Instr &I, Fn Use) {
  switch (I.kind()) {
  case Instr::Kind::Store: {
    const auto *St = cast<StoreInstr>(&I);
    if (!isa<FrameAddrExpr>(St->address()))
      forEachUse(C, St->address(), Use);
    forEachUse(C, St->value(), Use);
    return;
  }
  case Instr::Kind::Copy:
    // Copy operand cells are untrackable by construction; only the
    // address computations themselves can read tracked slots.
    forEachUse(C, cast<CopyInstr>(&I)->dst(), Use);
    forEachUse(C, cast<CopyInstr>(&I)->src(), Use);
    return;
  case Instr::Kind::CondJump:
    forEachUse(C, cast<CondJumpInstr>(&I)->cond(), Use);
    return;
  case Instr::Kind::Call: {
    const auto *Ca = cast<CallInstr>(&I);
    for (const IRExprPtr &A : Ca->args())
      forEachUse(C, A.get(), Use);
    if (C.PT) {
      unsigned Callee = C.PT->callGraph().indexOf(Ca->callee());
      if (Callee != CallGraph::kExternal)
        for (unsigned S = 0; S < C.Tracked.size(); ++S)
          if (C.Tracked[S] &&
              C.PT->mayRef(Callee, C.PT->slotLoc(C.Fn, S)))
            Use(S);
    }
    return;
  }
  case Instr::Kind::Ret:
    if (const IRExpr *V = cast<RetInstr>(&I)->value())
      forEachUse(C, V, Use);
    return;
  case Instr::Kind::Jump:
  case Instr::Kind::Abort:
  case Instr::Kind::Halt:
    return;
  }
}

/// The tracked slot instruction \p I *fully and certainly* overwrites,
/// if any: a direct width-matching Store, a Call destination, or a
/// computed Store whose address must-aliases exactly one same-function
/// slot (singleton target, matching width, no recursion).
int strongDefOf(const Ctx &C, const Instr &I) {
  if (const auto *St = dyn_cast<StoreInstr>(&I)) {
    if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
      unsigned S = FA->slotIndex();
      if (S < C.Tracked.size() && C.Tracked[S])
        return static_cast<int>(S);
      return -1;
    }
    if (C.PT && !C.SelfRecursive) {
      std::vector<unsigned> T = C.PT->addressTargets(C.Fn, St->address());
      if (T.size() == 1 &&
          C.PT->kindOf(T[0]) == PointsToResult::LocKind::Slot &&
          C.PT->ownerFn(T[0]) == C.Fn) {
        unsigned S = C.PT->slotIndexOf(T[0]);
        if (S < C.Tracked.size() && C.Tracked[S] &&
            C.F.Slots[S].SizeBytes == St->valType().SizeBytes)
          return static_cast<int>(S);
      }
    }
    return -1;
  }
  if (const auto *Ca = dyn_cast<CallInstr>(&I)) {
    if (Ca->destSlot()) {
      unsigned S = *Ca->destSlot();
      if (S < C.Tracked.size() && C.Tracked[S])
        return static_cast<int>(S);
    }
  }
  return -1;
}

/// Invoke \p Def for every tracked slot instruction \p I *may* write —
/// computed-store may-alias targets and callee mod sets. Weak defs never
/// kill liveness, but they do clear "definitely unassigned" (the
/// false-positive-free direction for the uninit-read lint).
template <typename Fn>
void forEachWeakDef(const Ctx &C, const Instr &I, Fn Def) {
  if (!C.PT)
    return;
  if (const auto *St = dyn_cast<StoreInstr>(&I)) {
    if (!isa<FrameAddrExpr>(St->address()))
      forEachAliasedSlot(C, St->address(), Def);
    return;
  }
  if (const auto *Ca = dyn_cast<CallInstr>(&I)) {
    unsigned Callee = C.PT->callGraph().indexOf(Ca->callee());
    if (Callee != CallGraph::kExternal)
      for (unsigned S = 0; S < C.Tracked.size(); ++S)
        if (C.Tracked[S] && C.PT->mayMod(Callee, C.PT->slotLoc(C.Fn, S)))
          Def(S);
  }
}

struct LivenessProblem {
  using Value = std::vector<bool>;
  static constexpr bool IsForward = false;

  const Cfg &G;
  const Ctx &C;
  size_t NumSlots;

  Value initial() { return Value(NumSlots, false); }
  Value boundary() { return Value(NumSlots, false); } // nothing live at exit

  bool join(Value &Into, const Value &From) {
    bool Changed = false;
    for (size_t I = 0; I < NumSlots; ++I)
      if (From[I] && !Into[I]) {
        Into[I] = true;
        Changed = true;
      }
    return Changed;
  }

  Value transfer(unsigned B, const Value &LiveOut) {
    Value Live = LiveOut;
    const BasicBlock &BB = G.block(B);
    const IRFunction &F = G.function();
    for (unsigned I = BB.End; I > BB.Begin; --I) {
      const Instr &In = *F.Instrs[I - 1];
      int D = strongDefOf(C, In);
      if (D >= 0)
        Live[D] = false;
      forEachInstrUse(C, In, [&](unsigned S) { Live[S] = true; });
    }
    return Live;
  }
};

/// Forward "definitely unassigned": bit set = no path assigns the slot.
struct DefiniteAssignmentProblem {
  using Value = std::vector<bool>;
  static constexpr bool IsForward = true;

  const Cfg &G;
  const Ctx &C;
  size_t NumSlots;
  unsigned NumParams;

  Value initial() { return Value(NumSlots, true); } // identity for AND
  Value boundary() {
    Value V(NumSlots, false);
    for (size_t S = NumParams; S < NumSlots; ++S)
      V[S] = C.Tracked[S];
    return V;
  }

  bool join(Value &Into, const Value &From) {
    bool Changed = false;
    for (size_t I = 0; I < NumSlots; ++I)
      if (Into[I] && !From[I]) {
        Into[I] = false;
        Changed = true;
      }
    return Changed;
  }

  Value transfer(unsigned B, const Value &In) {
    Value V = In;
    const BasicBlock &BB = G.block(B);
    const IRFunction &F = G.function();
    for (unsigned I = BB.Begin; I < BB.End; ++I) {
      const Instr &Ins = *F.Instrs[I];
      int D = strongDefOf(C, Ins);
      if (D >= 0)
        V[D] = false;
      forEachWeakDef(C, Ins, [&](unsigned S) { V[S] = false; });
    }
    return V;
  }
};

} // namespace

LivenessResult dart::runLivenessAnalysis(const Cfg &G, const TaintResult &T,
                                         unsigned FnIndex) {
  const IRFunction &F = G.function();
  size_t NumSlots = F.Slots.size();
  size_t NumInstrs = F.Instrs.size();

  LivenessResult R;
  if (T.PT) {
    R.Tracked = aliasTrackableSlots(T.PT->module(), FnIndex, *T.PT);
  } else {
    R.Tracked.assign(NumSlots, false);
    for (size_t S = 0; S < NumSlots; ++S) {
      uint64_t Sz = F.Slots[S].SizeBytes;
      R.Tracked[S] = !T.SlotEscaped[FnIndex][S] &&
                     (Sz == 1 || Sz == 4 || Sz == 8);
    }
  }

  R.LiveAfter.assign(NumInstrs, std::vector<bool>(NumSlots, false));
  R.DefinitelyUnassignedBefore.assign(NumInstrs,
                                      std::vector<bool>(NumSlots, false));
  if (G.numBlocks() == 0)
    return R;

  Ctx C{F, R.Tracked, T.PT.get(), FnIndex,
        T.PT ? T.PT->selfRecursive(FnIndex) : true};

  LivenessProblem LP{G, C, NumSlots};
  auto Live = solveDataflow(G, LP);
  DefiniteAssignmentProblem DP{G, C, NumSlots, F.NumParams};
  auto Def = solveDataflow(G, DP);

  // Expand block fixpoints to per-instruction boundaries.
  for (unsigned B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    // Backward: Live.In[b] is the block's live-out set.
    std::vector<bool> Live_ = Live.In[B];
    for (unsigned I = BB.End; I > BB.Begin; --I) {
      R.LiveAfter[I - 1] = Live_;
      const Instr &In = *F.Instrs[I - 1];
      int D = strongDefOf(C, In);
      if (D >= 0)
        Live_[D] = false;
      forEachInstrUse(C, In, [&](unsigned S) { Live_[S] = true; });
    }
    // Forward: Def.In[b] is the state before the block's first
    // instruction; unreachable blocks keep the optimistic all-true value,
    // which the lint pass skips via its reachability check.
    std::vector<bool> DU = G.isReachable(B) ? Def.In[B] : DP.initial();
    for (unsigned I = BB.Begin; I < BB.End; ++I) {
      R.DefinitelyUnassignedBefore[I] = DU;
      const Instr &Ins = *F.Instrs[I];
      int D = strongDefOf(C, Ins);
      if (D >= 0)
        DU[D] = false;
      forEachWeakDef(C, Ins, [&](unsigned S) { DU[S] = false; });
    }
  }
  return R;
}
