//===- Liveness.cpp - Liveness / definite assignment instances --*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/Dataflow.h"

using namespace dart;

namespace {

/// Invoke \p Use for every tracked slot a direct Load in \p E reads.
template <typename Fn>
void forEachUse(const IRExpr *E, const std::vector<bool> &Tracked, Fn Use) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      if (S < Tracked.size() && Tracked[S])
        Use(S);
      return;
    }
    forEachUse(L->address(), Tracked, Use);
    return;
  }
  case IRExpr::Kind::Unary:
    forEachUse(cast<UnaryIRExpr>(E)->operand(), Tracked, Use);
    return;
  case IRExpr::Kind::Binary:
    forEachUse(cast<BinaryIRExpr>(E)->lhs(), Tracked, Use);
    forEachUse(cast<BinaryIRExpr>(E)->rhs(), Tracked, Use);
    return;
  case IRExpr::Kind::Cmp:
    forEachUse(cast<CmpExpr>(E)->lhs(), Tracked, Use);
    forEachUse(cast<CmpExpr>(E)->rhs(), Tracked, Use);
    return;
  case IRExpr::Kind::Cast:
    forEachUse(cast<CastIRExpr>(E)->operand(), Tracked, Use);
    return;
  }
}

/// Invoke \p Use for every tracked slot instruction \p I reads.
template <typename Fn>
void forEachInstrUse(const Instr &I, const std::vector<bool> &Tracked,
                     Fn Use) {
  switch (I.kind()) {
  case Instr::Kind::Store: {
    const auto *St = cast<StoreInstr>(&I);
    if (!isa<FrameAddrExpr>(St->address()))
      forEachUse(St->address(), Tracked, Use);
    forEachUse(St->value(), Tracked, Use);
    return;
  }
  case Instr::Kind::Copy:
    forEachUse(cast<CopyInstr>(&I)->dst(), Tracked, Use);
    forEachUse(cast<CopyInstr>(&I)->src(), Tracked, Use);
    return;
  case Instr::Kind::CondJump:
    forEachUse(cast<CondJumpInstr>(&I)->cond(), Tracked, Use);
    return;
  case Instr::Kind::Call:
    for (const IRExprPtr &A : cast<CallInstr>(&I)->args())
      forEachUse(A.get(), Tracked, Use);
    return;
  case Instr::Kind::Ret:
    if (const IRExpr *V = cast<RetInstr>(&I)->value())
      forEachUse(V, Tracked, Use);
    return;
  case Instr::Kind::Jump:
  case Instr::Kind::Abort:
  case Instr::Kind::Halt:
    return;
  }
}

/// The tracked slot instruction \p I fully overwrites, if any.
int defOf(const Instr &I, const std::vector<bool> &Tracked) {
  if (const auto *St = dyn_cast<StoreInstr>(&I)) {
    if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
      unsigned S = FA->slotIndex();
      if (S < Tracked.size() && Tracked[S])
        return static_cast<int>(S);
    }
    return -1;
  }
  if (const auto *C = dyn_cast<CallInstr>(&I)) {
    if (C->destSlot()) {
      unsigned S = *C->destSlot();
      if (S < Tracked.size() && Tracked[S])
        return static_cast<int>(S);
    }
  }
  return -1;
}

struct LivenessProblem {
  using Value = std::vector<bool>;
  static constexpr bool IsForward = false;

  const Cfg &G;
  const std::vector<bool> &Tracked;
  size_t NumSlots;

  Value initial() { return Value(NumSlots, false); }
  Value boundary() { return Value(NumSlots, false); } // nothing live at exit

  bool join(Value &Into, const Value &From) {
    bool Changed = false;
    for (size_t I = 0; I < NumSlots; ++I)
      if (From[I] && !Into[I]) {
        Into[I] = true;
        Changed = true;
      }
    return Changed;
  }

  Value transfer(unsigned B, const Value &LiveOut) {
    Value Live = LiveOut;
    const BasicBlock &BB = G.block(B);
    const IRFunction &F = G.function();
    for (unsigned I = BB.End; I > BB.Begin; --I) {
      const Instr &In = *F.Instrs[I - 1];
      int D = defOf(In, Tracked);
      if (D >= 0)
        Live[D] = false;
      forEachInstrUse(In, Tracked, [&](unsigned S) { Live[S] = true; });
    }
    return Live;
  }
};

/// Forward "definitely unassigned": bit set = no path assigns the slot.
struct DefiniteAssignmentProblem {
  using Value = std::vector<bool>;
  static constexpr bool IsForward = true;

  const Cfg &G;
  const std::vector<bool> &Tracked;
  size_t NumSlots;
  unsigned NumParams;

  Value initial() { return Value(NumSlots, true); } // identity for AND
  Value boundary() {
    Value V(NumSlots, false);
    for (size_t S = NumParams; S < NumSlots; ++S)
      V[S] = Tracked[S];
    return V;
  }

  bool join(Value &Into, const Value &From) {
    bool Changed = false;
    for (size_t I = 0; I < NumSlots; ++I)
      if (Into[I] && !From[I]) {
        Into[I] = false;
        Changed = true;
      }
    return Changed;
  }

  Value transfer(unsigned B, const Value &In) {
    Value V = In;
    const BasicBlock &BB = G.block(B);
    const IRFunction &F = G.function();
    for (unsigned I = BB.Begin; I < BB.End; ++I) {
      int D = defOf(*F.Instrs[I], Tracked);
      if (D >= 0)
        V[D] = false;
    }
    return V;
  }
};

} // namespace

LivenessResult dart::runLivenessAnalysis(const Cfg &G, const TaintResult &T,
                                         unsigned FnIndex) {
  const IRFunction &F = G.function();
  size_t NumSlots = F.Slots.size();
  size_t NumInstrs = F.Instrs.size();

  LivenessResult R;
  R.Tracked.assign(NumSlots, false);
  for (size_t S = 0; S < NumSlots; ++S) {
    uint64_t Sz = F.Slots[S].SizeBytes;
    R.Tracked[S] = !T.SlotEscaped[FnIndex][S] &&
                   (Sz == 1 || Sz == 4 || Sz == 8);
  }

  R.LiveAfter.assign(NumInstrs, std::vector<bool>(NumSlots, false));
  R.DefinitelyUnassignedBefore.assign(NumInstrs,
                                      std::vector<bool>(NumSlots, false));
  if (G.numBlocks() == 0)
    return R;

  LivenessProblem LP{G, R.Tracked, NumSlots};
  auto Live = solveDataflow(G, LP);
  DefiniteAssignmentProblem DP{G, R.Tracked, NumSlots, F.NumParams};
  auto Def = solveDataflow(G, DP);

  // Expand block fixpoints to per-instruction boundaries.
  for (unsigned B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    // Backward: Live.In[b] is the block's live-out set.
    std::vector<bool> Live_ = Live.In[B];
    for (unsigned I = BB.End; I > BB.Begin; --I) {
      R.LiveAfter[I - 1] = Live_;
      const Instr &In = *F.Instrs[I - 1];
      int D = defOf(In, R.Tracked);
      if (D >= 0)
        Live_[D] = false;
      forEachInstrUse(In, R.Tracked, [&](unsigned S) { Live_[S] = true; });
    }
    // Forward: Def.In[b] is the state before the block's first
    // instruction; unreachable blocks keep the optimistic all-true value,
    // which the lint pass skips via its reachability check.
    std::vector<bool> DU = G.isReachable(B) ? Def.In[B] : DP.initial();
    for (unsigned I = BB.Begin; I < BB.End; ++I) {
      R.DefinitelyUnassignedBefore[I] = DU;
      int D = defOf(*F.Instrs[I], R.Tracked);
      if (D >= 0)
        DU[D] = false;
    }
  }
  return R;
}
