//===- Interval.cpp - Interval propagation transfer functions ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Interval.h"

#include <algorithm>
#include <deque>
#include <sstream>

using namespace dart;

std::string Interval::toString() const {
  std::ostringstream OS;
  OS << "[" << Lo << "," << Hi << "]" << (Exact ? "!" : "");
  return OS.str();
}

void dart::vtRange(ValType VT, int64_t &Lo, int64_t &Hi) {
  if (VT.SizeBytes == 8) {
    // 8-byte canonical values are the raw int64 bits (pointers and
    // unsigned included), so the canonical range is all of int64.
    Lo = INT64_MIN;
    Hi = INT64_MAX;
    return;
  }
  unsigned Bits = VT.bits();
  if (VT.Signed) {
    Lo = -(int64_t(1) << (Bits - 1));
    Hi = (int64_t(1) << (Bits - 1)) - 1;
  } else {
    Lo = 0;
    Hi = (int64_t(1) << Bits) - 1;
  }
}

Interval dart::fullRange(ValType VT, bool Exact) {
  Interval I;
  vtRange(VT, I.Lo, I.Hi);
  I.Exact = Exact;
  return I;
}

namespace {

using I128 = __int128;

/// Ideal result range [Lo,Hi] fits the type: keep the corners (the
/// interpreter's canonicalize is the identity on them, so wrapped ==
/// ideal). Otherwise the operation may wrap: full range, not Exact.
Interval fitOrFull(I128 Lo, I128 Hi, ValType VT, bool ExactIfFits) {
  int64_t VLo, VHi;
  vtRange(VT, VLo, VHi);
  if (Lo >= VLo && Hi <= VHi)
    return {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi), ExactIfFits};
  return fullRange(VT, false);
}

/// Same, for operations the symbolic evaluator always concretizes
/// (their values enter linear images only as runtime constants, so the
/// Exact bit is vacuously satisfiable either way).
Interval fitOrFullVacuous(I128 Lo, I128 Hi, ValType VT) {
  int64_t VLo, VHi;
  vtRange(VT, VLo, VHi);
  bool Exact = !VT.IsPointer;
  if (Lo >= VLo && Hi <= VHi)
    return {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi), Exact};
  return fullRange(VT, Exact);
}

} // namespace

int64_t dart::decodeGlobalInit(const IRGlobal &G, ValType VT) {
  uint64_t Raw = 0;
  for (unsigned I = 0; I < VT.SizeBytes; ++I) {
    uint8_t Byte = I < G.Init.size() ? G.Init[I] : 0;
    Raw |= uint64_t(Byte) << (8 * I);
  }
  return VT.canonicalize(static_cast<int64_t>(Raw));
}

Interval dart::applyBinaryInterval(IRBinOp Op, Interval A, Interval B,
                                   ValType VT) {
  I128 ALo = A.Lo, AHi = A.Hi, BLo = B.Lo, BHi = B.Hi;
  bool BothExact = A.Exact && B.Exact;
  switch (Op) {
  case IRBinOp::Add:
    return fitOrFull(ALo + BLo, AHi + BHi, VT, BothExact);
  case IRBinOp::Sub:
    return fitOrFull(ALo - BHi, AHi - BLo, VT, BothExact);
  case IRBinOp::Mul: {
    I128 C[4] = {ALo * BLo, ALo * BHi, AHi * BLo, AHi * BHi};
    I128 Lo = *std::min_element(C, C + 4), Hi = *std::max_element(C, C + 4);
    return fitOrFull(Lo, Hi, VT, BothExact);
  }
  case IRBinOp::Div: {
    if (VT.SizeBytes == 8 && !VT.Signed)
      return fullRange(VT, !VT.IsPointer); // raw unsigned division
    if (B.contains(0))
      return fullRange(VT, true); // or a DivByZero trap
    I128 Lo = 0, Hi = 0;
    bool First = true;
    for (I128 D : {BLo, BHi, I128(-1), I128(1)}) {
      if (D < BLo || D > BHi)
        continue;
      for (I128 N : {ALo, AHi}) {
        I128 Q = N / D;
        Lo = First ? Q : std::min(Lo, Q);
        Hi = First ? Q : std::max(Hi, Q);
        First = false;
      }
    }
    return fitOrFullVacuous(Lo, Hi, VT);
  }
  case IRBinOp::Rem: {
    if (VT.SizeBytes == 8 && !VT.Signed)
      return fullRange(VT, !VT.IsPointer);
    if (B.contains(0))
      return fullRange(VT, true);
    I128 M = std::max(BLo < 0 ? -BLo : BLo, BHi < 0 ? -BHi : BHi);
    I128 Lo = -(M - 1), Hi = M - 1;
    if (ALo >= 0) {
      Lo = 0;
      Hi = std::min(Hi, AHi);
    } else if (AHi <= 0) {
      Hi = 0;
      Lo = std::max(Lo, ALo);
    }
    return fitOrFullVacuous(Lo, Hi, VT);
  }
  case IRBinOp::Shl: {
    // The interpreter masks the count to VT.bits()-1; only a constant
    // in-range count is a static multiply by 2^k.
    if (B.isSingleton() && B.Lo >= 0 && B.Lo < VT.bits()) {
      I128 Scale = I128(1) << B.Lo;
      return fitOrFull(ALo * Scale, AHi * Scale, VT, BothExact);
    }
    return fullRange(VT, false);
  }
  case IRBinOp::Shr:
  case IRBinOp::And:
  case IRBinOp::Or:
  case IRBinOp::Xor:
    return fullRange(VT, !VT.IsPointer); // always concretized (vacuous)
  }
  return fullRange(VT, false);
}

Interval dart::applyCmpInterval(CmpPred Pred, Interval A, Interval B,
                                ValType OperandVT) {
  bool Exact = A.Exact && B.Exact;
  // Canonical values order like int64 except raw 8-byte unsigned
  // (pointers, pointer-sized unsigned), where only equality is
  // representation-independent.
  bool Orderable = OperandVT.SizeBytes < 8 ||
                   (OperandVT.Signed && !OperandVT.IsPointer);
  bool Disjoint = A.Hi < B.Lo || B.Hi < A.Lo;
  bool SameSingleton = A.isSingleton() && B.isSingleton() && A.Lo == B.Lo;
  int Known = -1;
  switch (Pred) {
  case CmpPred::Eq:
    Known = Disjoint ? 0 : SameSingleton ? 1 : -1;
    break;
  case CmpPred::Ne:
    Known = Disjoint ? 1 : SameSingleton ? 0 : -1;
    break;
  case CmpPred::Lt:
    if (Orderable)
      Known = A.Hi < B.Lo ? 1 : A.Lo >= B.Hi ? 0 : -1;
    break;
  case CmpPred::Le:
    if (Orderable)
      Known = A.Hi <= B.Lo ? 1 : A.Lo > B.Hi ? 0 : -1;
    break;
  case CmpPred::Gt:
    if (Orderable)
      Known = A.Lo > B.Hi ? 1 : A.Hi <= B.Lo ? 0 : -1;
    break;
  case CmpPred::Ge:
    if (Orderable)
      Known = A.Lo >= B.Hi ? 1 : A.Hi < B.Lo ? 0 : -1;
    break;
  }
  if (Known < 0)
    return {0, 1, Exact};
  return {Known, Known, Exact};
}

Interval dart::applyUnaryInterval(IRUnOp Op, Interval A, ValType VT) {
  if (Op == IRUnOp::Neg)
    return fitOrFull(-I128(A.Hi), -I128(A.Lo), VT, A.Exact);
  // BitNot ~v = -v-1; the evaluator always concretizes it.
  return fitOrFullVacuous(-I128(A.Hi) - 1, -I128(A.Lo) - 1, VT);
}

Interval dart::applyCastInterval(Interval A, ValType VT) {
  int64_t VLo, VHi;
  vtRange(VT, VLo, VHi);
  // The concolic evaluator passes casts through symbolically, so
  // Exactness survives only when the cast is the identity on the whole
  // operand range.
  if (A.Lo >= VLo && A.Hi <= VHi)
    return {A.Lo, A.Hi, A.Exact && !VT.IsPointer};
  return fullRange(VT, false);
}

IntervalAnalysis::IntervalAnalysis(const IRModule &M, const Cfg &G,
                                   const TaintResult &T, unsigned FnIndex,
                                   Config C)
    : M(M), G(G), T(T), FnIndex(FnIndex), C(C), F(G.function()) {
  if (T.PT) {
    Trackable = aliasTrackableSlots(M, FnIndex, *T.PT);
  } else {
    Trackable.assign(F.Slots.size(), false);
    for (unsigned S = 0; S < F.Slots.size(); ++S)
      Trackable[S] = !T.SlotEscaped[FnIndex][S];
  }
}

AbsState IntervalAnalysis::entryState() const {
  AbsState S;
  S.Reachable = true;
  S.Slots.assign(F.Slots.size(), std::nullopt);
  for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P) {
    if (!Trackable[P])
      continue;
    ValType VT = P < F.ParamVTs.size() ? F.ParamVTs[P] : ValType::int32();
    if (F.Slots[P].SizeBytes != VT.SizeBytes)
      continue;
    S.Slots[P] = SlotFact{VT, fullRange(VT, C.ParamsExact && !VT.IsPointer)};
  }
  return S;
}

bool IntervalAnalysis::joinInto(AbsState &Into, const AbsState &From,
                                bool Widen) const {
  if (!From.Reachable)
    return false;
  if (!Into.Reachable) {
    Into = From;
    return true;
  }
  bool Changed = false;
  for (size_t I = 0; I < Into.Slots.size(); ++I) {
    auto &A = Into.Slots[I];
    if (!A)
      continue;
    const auto &B = From.Slots[I];
    if (!B || !(B->VT == A->VT)) {
      A.reset();
      Changed = true;
      continue;
    }
    Interval J{std::min(A->I.Lo, B->I.Lo), std::max(A->I.Hi, B->I.Hi),
               A->I.Exact && B->I.Exact};
    if (J.Lo != A->I.Lo || J.Hi != A->I.Hi || J.Exact != A->I.Exact) {
      if (Widen)
        A.reset(); // jump straight to top: guarantees termination
      else
        A->I = J;
      Changed = true;
    }
  }
  return Changed;
}

Interval IntervalAnalysis::evalExpr(const AbsState &S,
                                    const IRExpr *E) const {
  ValType VT = E->valType();
  switch (E->kind()) {
  case IRExpr::Kind::Const: {
    int64_t V = cast<ConstExpr>(E)->value();
    return {V, V, true};
  }
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return fullRange(VT, false);
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned Slot = FA->slotIndex();
      if (Slot < S.Slots.size() && S.Slots[Slot] &&
          S.Slots[Slot]->VT == VT)
        return S.Slots[Slot]->I;
      return fullRange(VT, false);
    }
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address())) {
      const IRGlobal &Gl = M.globals()[GA->globalIndex()];
      bool Pure = !T.GlobalStored[GA->globalIndex()] &&
                  !T.GlobalEscaped[GA->globalIndex()];
      if (Pure && Gl.SizeBytes == VT.SizeBytes && !VT.IsPointer) {
        if (Gl.IsExternInput)
          return fullRange(VT, true); // fresh input, domain = type range
        int64_t V = decodeGlobalInit(Gl, VT);
        return {V, V, true};
      }
      return fullRange(VT, false);
    }
    return fullRange(VT, false);
  }
  case IRExpr::Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(E);
    Interval A = evalExpr(S, U->operand());
    if (U->op() == IRUnOp::Neg)
      return fitOrFull(-I128(A.Hi), -I128(A.Lo), VT, A.Exact);
    // BitNot ~v = -v-1; the evaluator always concretizes it.
    return fitOrFullVacuous(-I128(A.Hi) - 1, -I128(A.Lo) - 1, VT);
  }
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    return applyBinaryInterval(B->op(), evalExpr(S, B->lhs()),
                               evalExpr(S, B->rhs()), VT);
  }
  case IRExpr::Kind::Cmp: {
    const auto *Cm = cast<CmpExpr>(E);
    return applyCmpInterval(Cm->pred(), evalExpr(S, Cm->lhs()),
                            evalExpr(S, Cm->rhs()), Cm->operandValType());
  }
  case IRExpr::Kind::Cast: {
    Interval A = evalExpr(S, cast<CastIRExpr>(E)->operand());
    int64_t VLo, VHi;
    vtRange(VT, VLo, VHi);
    // The concolic evaluator passes casts through symbolically, so
    // Exactness survives only when the cast is the identity on the whole
    // operand range.
    if (A.Lo >= VLo && A.Hi <= VHi)
      return {A.Lo, A.Hi, A.Exact && !VT.IsPointer};
    return fullRange(VT, false);
  }
  }
  return fullRange(VT, false);
}

void IntervalAnalysis::transferInstr(AbsState &S, const Instr &I) const {
  switch (I.kind()) {
  case Instr::Kind::Store: {
    const auto *St = cast<StoreInstr>(&I);
    const auto *FA = dyn_cast<FrameAddrExpr>(St->address());
    if (!FA) {
      // Computed store: kill every may-aliased trackable slot. An empty
      // target set means the VM traps — no cell changes.
      if (T.PT)
        for (unsigned O : T.PT->addressTargets(FnIndex, St->address()))
          if (T.PT->kindOf(O) == PointsToResult::LocKind::Slot &&
              T.PT->ownerFn(O) == FnIndex) {
            unsigned Slot = T.PT->slotIndexOf(O);
            if (Slot < S.Slots.size())
              S.Slots[Slot].reset();
          }
      return;
    }
    unsigned Slot = FA->slotIndex();
    if (Slot >= S.Slots.size() || !Trackable[Slot])
      return;
    ValType VT = St->valType();
    if (F.Slots[Slot].SizeBytes != VT.SizeBytes) {
      S.Slots[Slot].reset();
      return;
    }
    S.Slots[Slot] = SlotFact{VT, evalExpr(S, St->value())};
    return;
  }
  case Instr::Kind::Call: {
    const auto *C = cast<CallInstr>(&I);
    // An internal callee (or anything it transitively calls) may write
    // through an alias into this frame — only possible under recursion
    // for trackable slots (their addresses never leave the function, but
    // a recursive activation shares the conflated abstract frame).
    if (T.PT) {
      unsigned Callee = T.PT->callGraph().indexOf(C->callee());
      if (Callee != CallGraph::kExternal)
        for (unsigned Slot = 0; Slot < S.Slots.size(); ++Slot)
          if (S.Slots[Slot] &&
              T.PT->mayMod(Callee,
                           T.PT->slotLoc(FnIndex,
                                         static_cast<unsigned>(Slot))))
            S.Slots[Slot].reset();
    }
    if (!C->destSlot())
      return;
    unsigned Slot = *C->destSlot();
    if (Slot >= S.Slots.size() || !Trackable[Slot])
      return;
    ValType VT = C->retValType();
    if (F.Slots[Slot].SizeBytes != VT.SizeBytes) {
      S.Slots[Slot].reset();
      return;
    }
    // External returns are fresh full-domain inputs; native returns are
    // runtime constants; internal returns are unconstrained here.
    bool Internal = M.findFunction(C->callee()) != nullptr;
    S.Slots[Slot] = SlotFact{VT, fullRange(VT, !Internal && !VT.IsPointer)};
    return;
  }
  case Instr::Kind::Copy:
    // Copy operands (direct or via may-alias) are untrackable by
    // aliasTrackableSlots, so no tracked fact can change here.
    return;
  default:
    return;
  }
}

void IntervalAnalysis::flowOut(unsigned B, const AbsState &ExitState,
                               std::vector<AbsState> &PerSucc) const {
  const BasicBlock &BB = G.block(B);
  PerSucc.assign(BB.Succs.size(), AbsState{});
  const Instr &Last = *F.Instrs[BB.End - 1];
  if (const auto *CJ = dyn_cast<CondJumpInstr>(&Last)) {
    Interval CI = evalExpr(ExitState, CJ->cond());
    unsigned N = static_cast<unsigned>(F.Instrs.size());
    unsigned TrueBlock =
        CJ->trueTarget() < N ? G.blockOf(CJ->trueTarget()) : Cfg::kUnset;
    unsigned FalseBlock =
        CJ->falseTarget() < N ? G.blockOf(CJ->falseTarget()) : Cfg::kUnset;
    for (size_t J = 0; J < BB.Succs.size(); ++J) {
      bool Feasible =
          (BB.Succs[J] == TrueBlock && CI.canBeNonzero()) ||
          (BB.Succs[J] == FalseBlock && CI.canBeZero());
      if (Feasible)
        PerSucc[J] = ExitState;
    }
    return;
  }
  for (size_t J = 0; J < BB.Succs.size(); ++J)
    PerSucc[J] = ExitState;
}

void IntervalAnalysis::run() {
  unsigned N = G.numBlocks();
  In.assign(N, AbsState{});
  Visits.assign(N, 0);
  if (N == 0)
    return;
  In[G.entry()] = entryState();

  std::deque<unsigned> Worklist{G.entry()};
  std::vector<bool> InList(N, false);
  InList[G.entry()] = true;
  std::vector<AbsState> PerSucc;
  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    InList[B] = false;
    if (++Visits[B] > C.MaxBlockVisits) {
      Ok = false;
      return;
    }
    AbsState S = In[B];
    const BasicBlock &BB = G.block(B);
    for (unsigned I = BB.Begin; I < BB.End; ++I)
      transferInstr(S, *F.Instrs[I]);
    flowOut(B, S, PerSucc);
    for (size_t J = 0; J < BB.Succs.size(); ++J) {
      unsigned Succ = BB.Succs[J];
      bool Widen = Visits[Succ] >= C.WidenAfter;
      if (joinInto(In[Succ], PerSucc[J], Widen) && !InList[Succ]) {
        Worklist.push_back(Succ);
        InList[Succ] = true;
      }
    }
  }
}

bool IntervalAnalysis::blockExecutable(unsigned B) const {
  return !Ok || In[B].Reachable;
}

bool IntervalAnalysis::instrExecutable(unsigned InstrIndex) const {
  return blockExecutable(G.blockOf(InstrIndex));
}

AbsState IntervalAnalysis::stateBefore(unsigned InstrIndex) const {
  unsigned B = G.blockOf(InstrIndex);
  if (!Ok || !In[B].Reachable) {
    // Conservative state: reachable, nothing known.
    AbsState S;
    S.Reachable = Ok ? false : true;
    S.Slots.assign(F.Slots.size(), std::nullopt);
    return S;
  }
  AbsState S = In[B];
  for (unsigned I = G.block(B).Begin; I < InstrIndex; ++I)
    transferInstr(S, *F.Instrs[I]);
  return S;
}
