//===- CallGraph.h - Explicit call graph over the IR ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-level companion of Cfg: which functions call which, at
/// which instructions. The paper's interprocedural handling (§3.3) walks
/// call edges dynamically; the static layer needs them ahead of any run —
/// the points-to constraint generator wires argument/return flow along
/// them, mod/ref summaries close over them, and the branch-distance
/// metric treats a call as an edge from the calling block into the
/// callee's entry.
///
/// Call targets are resolved by name with the interpreter's precedence:
/// a program function shadows natives and externals. Calls to names
/// outside the module (native library or external environment functions)
/// have no callee index and appear only in `sites()`.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_CALLGRAPH_H
#define DART_ANALYSIS_CALLGRAPH_H

#include "ir/IR.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dart {

/// One Call instruction, resolved.
struct CallGraphSite {
  unsigned CallerFn = 0;
  unsigned InstrIndex = 0;
  /// Module index of the callee, or kExternal for native/external names.
  unsigned CalleeFn = 0;
};

class CallGraph {
public:
  static constexpr unsigned kExternal = ~0u;

  /// Build the call graph for \p M. \p M must outlive the graph.
  static CallGraph build(const IRModule &M);

  unsigned numFunctions() const {
    return static_cast<unsigned>(Callees.size());
  }
  /// Module index of \p Name, or kExternal if it is not a program function.
  unsigned indexOf(const std::string &Name) const;
  /// Deduplicated internal callee / caller indices.
  const std::vector<unsigned> &callees(unsigned Fn) const {
    return Callees[Fn];
  }
  const std::vector<unsigned> &callers(unsigned Fn) const {
    return Callers[Fn];
  }
  /// Every Call instruction in the module, in function/instruction order.
  const std::vector<CallGraphSite> &sites() const { return Sites; }

  /// Functions reachable from \p Fn along call edges, including \p Fn
  /// itself (bit per module index) — the closure mod/ref folds over.
  std::vector<bool> transitiveCallees(unsigned Fn) const;

private:
  std::vector<std::vector<unsigned>> Callees;
  std::vector<std::vector<unsigned>> Callers;
  std::vector<CallGraphSite> Sites;
  std::unordered_map<std::string, unsigned> IndexOf;
};

} // namespace dart

#endif // DART_ANALYSIS_CALLGRAPH_H
