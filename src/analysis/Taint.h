//===- Taint.h - Input-taint reachability over the IR -----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which storage locations — and hence which branch conditions — can
/// transitively depend on a DART input? The paper's static interface
/// extraction (§3.1) decides *where* symbolic values enter the program
/// (toplevel parameters, extern variables, external-function returns);
/// this analysis extends it with *where they can flow*, as a
/// flow-insensitive whole-program fixpoint over frame slots, globals, and
/// call edges.
///
/// The concolic engine only ever attaches a symbolic expression to memory
/// it has bound an input to or copied one into, so any branch whose
/// condition reads exclusively untainted storage is concrete on every run:
/// its recorded path predicate is the trivially-true placeholder and the
/// solver probe for its negation is a guaranteed Unsat. Over-approximation
/// is the safety requirement — a location is marked tainted unless no
/// execution can make it symbolic:
///
///  - Taint lives on *abstract locations* (see PointsTo.h): a store
///    through a computed address taints exactly the locations the address
///    may target; a load through one is tainted iff some may-target is.
///    Before the alias layer, every escaped slot was permanently tainted
///    and every computed load was tainted — pointer-heavy programs
///    degenerated to "everything symbolic".
///  - Globals behave likewise; an `extern` global is a seed input, and so
///    is everything reachable from the driver-owned External location.
///  - Call edges propagate argument taint into callee parameter slots and
///    callee return taint into the destination slot; external and native
///    calls taint their destination unconditionally.
///
/// The object-level property is the right one for pruning: "untainted"
/// means the cell can never *hold* a symbolic value. A load of a concrete
/// cell through a tainted index still yields a concrete value (the VM
/// concretizes addresses), so a branch reading only untainted cells
/// records the trivially-true predicate on every run.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_TAINT_H
#define DART_ANALYSIS_TAINT_H

#include "analysis/PointsTo.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace dart {

struct TaintResult {
  /// The points-to analysis taint is layered on; always set by
  /// runTaintAnalysis. Shared so downstream consumers (intervals,
  /// liveness, lints, stats) reuse one solve.
  std::shared_ptr<const PointsToResult> PT;
  /// Per abstract location (PointsToResult id space): can the object hold
  /// a symbolic value on some run? The authoritative result; the
  /// Slot/Global vectors below are mirrors.
  std::vector<bool> LocTainted;
  /// Per function (module index), per frame slot: can the slot hold a
  /// symbolic value on some run?
  std::vector<std::vector<bool>> SlotTainted;
  /// Per function, per slot: does the slot's address escape direct
  /// width-matching Load/Store use (syntactically)? No longer implies
  /// taint — the points-to layer decides what an escaped address can
  /// actually reach. Kept for consumers that want the cheap syntactic
  /// bit; the alias-aware analyses use aliasTrackableSlots instead.
  std::vector<std::vector<bool>> SlotEscaped;
  /// Per function: can its return value be symbolic?
  std::vector<bool> RetTainted;
  /// Per global: can the global hold a symbolic value? (Extern-input
  /// globals are seeds; escaped or stored-to globals can be written one.)
  std::vector<bool> GlobalTainted;
  /// Per global: is it ever the direct target of a Store/Copy?
  std::vector<bool> GlobalStored;
  /// Per global: does its address escape into computed addressing (array
  /// indexing, pointer arithmetic, address-of arguments)?
  std::vector<bool> GlobalEscaped;
  /// Per function: is it called from inside the module? (The toplevel's
  /// parameters get full-domain *exact* intervals only when the driver is
  /// the sole caller.)
  std::vector<bool> InternallyCalled;

  /// Can evaluating \p E in function \p FnIndex observe a symbolic value?
  bool exprTainted(unsigned FnIndex, const IRExpr *E) const;

  /// Conservative taint of the cells address expression \p Addr may
  /// denote: true when the target set is empty (an address the VM would
  /// trap on — stay safe) or when any may-target is tainted.
  bool anyTargetTainted(unsigned FnIndex, const IRExpr *Addr) const;
};

/// Run the whole-program taint fixpoint. \p ToplevelName's parameters are
/// input seeds (the generated driver binds them to fresh inputs each run).
TaintResult runTaintAnalysis(const IRModule &M,
                             const std::string &ToplevelName);

} // namespace dart

#endif // DART_ANALYSIS_TAINT_H
