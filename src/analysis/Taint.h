//===- Taint.h - Input-taint reachability over the IR -----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which storage locations — and hence which branch conditions — can
/// transitively depend on a DART input? The paper's static interface
/// extraction (§3.1) decides *where* symbolic values enter the program
/// (toplevel parameters, extern variables, external-function returns);
/// this analysis extends it with *where they can flow*, as a
/// flow-insensitive whole-program fixpoint over frame slots, globals, and
/// call edges.
///
/// The concolic engine only ever attaches a symbolic expression to memory
/// it has bound an input to or copied one into, so any branch whose
/// condition reads exclusively untainted storage is concrete on every run:
/// its recorded path predicate is the trivially-true placeholder and the
/// solver probe for its negation is a guaranteed Unsat. Over-approximation
/// is the safety requirement — a location is marked tainted unless no
/// execution can make it symbolic:
///
///  - Slots whose address escapes (a FrameAddr used as anything other than
///    the direct, width-matching address of a Load/Store, including
///    address-of arguments and struct Copy operands) are tainted: a callee
///    or aliased pointer may write an input into them.
///  - Loads from computed addresses (arrays, pointers, heap) are tainted.
///  - Globals behave likewise; an `extern` global is a seed input.
///  - Call edges propagate argument taint into callee parameter slots and
///    callee return taint into the destination slot; external and native
///    calls taint their destination unconditionally.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_TAINT_H
#define DART_ANALYSIS_TAINT_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace dart {

struct TaintResult {
  /// Per function (module index), per frame slot: can the slot hold a
  /// symbolic value on some run?
  std::vector<std::vector<bool>> SlotTainted;
  /// Per function, per slot: does the slot's address escape direct
  /// width-matching Load/Store use? Escaped slots are always tainted and
  /// are skipped by the slot-precise interval and liveness analyses.
  std::vector<std::vector<bool>> SlotEscaped;
  /// Per function: can its return value be symbolic?
  std::vector<bool> RetTainted;
  /// Per global: can the global hold a symbolic value? (Extern-input
  /// globals are seeds; escaped or stored-to globals can be written one.)
  std::vector<bool> GlobalTainted;
  /// Per global: is it ever the direct target of a Store/Copy?
  std::vector<bool> GlobalStored;
  /// Per global: does its address escape into computed addressing (array
  /// indexing, pointer arithmetic, address-of arguments)?
  std::vector<bool> GlobalEscaped;
  /// Per function: is it called from inside the module? (The toplevel's
  /// parameters get full-domain *exact* intervals only when the driver is
  /// the sole caller.)
  std::vector<bool> InternallyCalled;

  /// Can evaluating \p E in function \p FnIndex observe a symbolic value?
  bool exprTainted(unsigned FnIndex, const IRExpr *E) const;
};

/// Run the whole-program taint fixpoint. \p ToplevelName's parameters are
/// input seeds (the generated driver binds them to fresh inputs each run).
TaintResult runTaintAnalysis(const IRModule &M,
                             const std::string &ToplevelName);

} // namespace dart

#endif // DART_ANALYSIS_TAINT_H
