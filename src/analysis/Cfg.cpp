//===- Cfg.cpp - Control-flow graph construction ----------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <sstream>

using namespace dart;

namespace {

bool isTerminator(const Instr &I) {
  switch (I.kind()) {
  case Instr::Kind::CondJump:
  case Instr::Kind::Jump:
  case Instr::Kind::Ret:
  case Instr::Kind::Abort:
  case Instr::Kind::Halt:
    return true;
  default:
    return false;
  }
}

} // namespace

Cfg Cfg::build(const IRFunction &F) {
  Cfg G;
  G.F = &F;
  unsigned N = static_cast<unsigned>(F.Instrs.size());
  if (N == 0) {
    G.RpoIndex.assign(0, kUnset);
    return G;
  }

  // Leaders: instruction 0, every jump target, everything after a
  // terminator.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (unsigned I = 0; I < N; ++I) {
    const Instr &In = *F.Instrs[I];
    if (const auto *CJ = dyn_cast<CondJumpInstr>(&In)) {
      if (CJ->trueTarget() < N)
        Leader[CJ->trueTarget()] = true;
      if (CJ->falseTarget() < N)
        Leader[CJ->falseTarget()] = true;
    } else if (const auto *J = dyn_cast<JumpInstr>(&In)) {
      if (J->target() < N)
        Leader[J->target()] = true;
    }
    if (isTerminator(In) && I + 1 < N)
      Leader[I + 1] = true;
  }

  G.BlockOf.assign(N, 0);
  for (unsigned I = 0; I < N; ++I) {
    if (Leader[I]) {
      BasicBlock B;
      B.Id = static_cast<unsigned>(G.Blocks.size());
      B.Begin = I;
      G.Blocks.push_back(B);
    }
    G.BlockOf[I] = static_cast<unsigned>(G.Blocks.size() - 1);
    G.Blocks.back().End = I + 1;
  }

  // Edges.
  auto AddEdge = [&G](unsigned From, unsigned To) {
    auto &S = G.Blocks[From].Succs;
    if (std::find(S.begin(), S.end(), To) == S.end()) {
      S.push_back(To);
      G.Blocks[To].Preds.push_back(From);
    }
  };
  for (BasicBlock &B : G.Blocks) {
    const Instr &Last = *F.Instrs[B.End - 1];
    if (const auto *CJ = dyn_cast<CondJumpInstr>(&Last)) {
      if (CJ->trueTarget() < N)
        AddEdge(B.Id, G.BlockOf[CJ->trueTarget()]);
      if (CJ->falseTarget() < N)
        AddEdge(B.Id, G.BlockOf[CJ->falseTarget()]);
    } else if (const auto *J = dyn_cast<JumpInstr>(&Last)) {
      if (J->target() < N)
        AddEdge(B.Id, G.BlockOf[J->target()]);
    } else if (!isTerminator(Last) && B.End < N) {
      AddEdge(B.Id, G.BlockOf[B.End]);
    }
  }

  G.computeRpo();
  G.computeDominators();
  return G;
}

const Instr *Cfg::terminator(unsigned B) const {
  const Instr &Last = *F->Instrs[Blocks[B].End - 1];
  return isTerminator(Last) ? &Last : nullptr;
}

void Cfg::computeRpo() {
  unsigned N = numBlocks();
  RpoIndex.assign(N, kUnset);
  if (N == 0)
    return;

  // Iterative DFS computing postorder, then reverse.
  std::vector<unsigned> Post;
  Post.reserve(N);
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<unsigned, unsigned>> Stack; // (block, next succ)
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      unsigned S = Blocks[B].Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      State[B] = 2;
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

void Cfg::computeDominators() {
  // Cooper-Harvey-Kennedy: iterate intersect() over reverse postorder.
  unsigned N = numBlocks();
  Idom.assign(N, kUnset);
  if (N == 0)
    return;
  Idom[0] = 0;

  auto Intersect = [this](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : Rpo) {
      if (B == 0)
        continue;
      unsigned NewIdom = kUnset;
      for (unsigned P : Blocks[B].Preds) {
        if (Idom[P] == kUnset)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom == kUnset ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != kUnset && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool Cfg::dominates(unsigned A, unsigned B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B's dominator chain toward the entry; rpo indices strictly
  // decrease along it, so the walk terminates.
  while (true) {
    if (A == B)
      return true;
    if (B == 0)
      return false;
    B = Idom[B];
  }
}

std::string Cfg::toString() const {
  std::ostringstream OS;
  OS << "cfg " << (F ? F->Name : "<null>") << " (" << numBlocks()
     << " blocks)\n";
  for (const BasicBlock &B : Blocks) {
    OS << "  b" << B.Id << " [" << B.Begin << "," << B.End << ")";
    if (!B.Succs.empty()) {
      OS << " ->";
      for (unsigned S : B.Succs)
        OS << " b" << S;
    }
    if (!isReachable(B.Id))
      OS << " (unreachable)";
    else if (B.Id != 0)
      OS << " idom=b" << Idom[B.Id];
    OS << "\n";
  }
  return OS.str();
}
