//===- Dependence.cpp - Interprocedural data+control dependence -----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"

#include "analysis/Cfg.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

using namespace dart;

namespace {

/// Per-function control-dependence scaffolding: post-dominators on the
/// reverse CFG with a virtual exit, then the FOW edge walk.
struct PostDoms {
  /// Immediate post-dominator per block; kExit for blocks whose only
  /// post-dominator is the virtual exit, Cfg::kUnset for blocks that
  /// cannot reach function exit (infinite loops — handled conservatively
  /// by the caller).
  std::vector<unsigned> Ipdom;
  unsigned Exit = 0; ///< virtual exit id (== numBlocks)

  static PostDoms build(const Cfg &G) {
    unsigned N = G.numBlocks();
    PostDoms P;
    P.Exit = N;
    P.Ipdom.assign(N + 1, Cfg::kUnset);

    // Reverse graph: node ids 0..N-1 plus the virtual exit N. An edge
    // A->B of the forward CFG is B->A here; every block without forward
    // successors feeds the exit, so the exit is the reverse entry.
    std::vector<std::vector<unsigned>> RevSuccs(N + 1), RevPreds(N + 1);
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock &BB = G.block(B);
      if (BB.Succs.empty()) {
        RevSuccs[N].push_back(B);
        RevPreds[B].push_back(N);
      }
      for (unsigned S : BB.Succs) {
        RevSuccs[S].push_back(B);
        RevPreds[B].push_back(S);
      }
    }

    // RPO of the reverse graph from the exit.
    std::vector<unsigned> Rpo, RpoIndex(N + 1, Cfg::kUnset);
    {
      std::vector<uint8_t> State(N + 1, 0);
      std::vector<std::pair<unsigned, size_t>> Stack{{N, 0}};
      State[N] = 1;
      while (!Stack.empty()) {
        auto &[B, I] = Stack.back();
        if (I < RevSuccs[B].size()) {
          unsigned S = RevSuccs[B][I++];
          if (!State[S]) {
            State[S] = 1;
            Stack.push_back({S, 0});
          }
        } else {
          Rpo.push_back(B);
          Stack.pop_back();
        }
      }
      std::reverse(Rpo.begin(), Rpo.end());
      for (unsigned I = 0; I < Rpo.size(); ++I)
        RpoIndex[Rpo[I]] = I;
    }

    // Cooper-Harvey-Kennedy on the reverse graph.
    P.Ipdom[N] = N;
    auto Intersect = [&](unsigned A, unsigned B) {
      while (A != B) {
        while (RpoIndex[A] > RpoIndex[B])
          A = P.Ipdom[A];
        while (RpoIndex[B] > RpoIndex[A])
          B = P.Ipdom[B];
      }
      return A;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned B : Rpo) {
        if (B == N)
          continue;
        unsigned NewIpdom = Cfg::kUnset;
        for (unsigned Pr : RevPreds[B]) {
          if (P.Ipdom[Pr] == Cfg::kUnset)
            continue;
          NewIpdom = NewIpdom == Cfg::kUnset ? Pr : Intersect(NewIpdom, Pr);
        }
        if (NewIpdom != Cfg::kUnset && P.Ipdom[B] != NewIpdom) {
          P.Ipdom[B] = NewIpdom;
          Changed = true;
        }
      }
    }
    return P;
  }
};

struct Builder {
  const IRModule &M;
  DependenceResult &R;
  unsigned NumSources;
  /// Set before the joint fixpoint: per-function CFGs for mapping a
  /// writing instruction to its block's control sources.
  const std::vector<Cfg> *Cfgs = nullptr;
  std::unordered_map<std::string, unsigned> FnIndexOf;

  Builder(const IRModule &M, DependenceResult &R, unsigned NumSources)
      : M(M), R(R), NumSources(NumSources) {
    for (unsigned I = 0; I < M.functions().size(); ++I)
      FnIndexOf[M.functions()[I]->Name] = I;
  }

  SourceSet top() const { return SourceSet::all(NumSources); }

  /// The control sources of the block holding instruction \p II —
  /// implicit-flow widening: whether a write executes at all is decided
  /// by the branches its block is control-dependent on, so the written
  /// cell *depends on* their sources even when the stored value is a
  /// constant (`if (input) g = 1;` makes g depend on input). Taint omits
  /// implicit flows (the shadow VM only tracks values); dependence must
  /// not, or the control-unreachable-bug lint would call g's readers
  /// input-independent.
  SourceSet ctrlOf(unsigned Fn, unsigned II) const {
    SourceSet S(NumSources);
    if (!Cfgs || Fn >= R.BlockCtrlSources.size())
      return S;
    unsigned Bk = (*Cfgs)[Fn].blockOf(II);
    if (Bk == Cfg::kUnset || Bk >= R.BlockCtrlSources[Fn].size())
      return S;
    return R.BlockCtrlSources[Fn][Bk];
  }

  /// One data-propagation sweep; returns true if any source bit moved.
  /// The sweep mirrors Taint.cpp's, generalized from bool to SourceSet,
  /// with two deliberate widenings beyond taint. First: a Store/Copy
  /// through a computed address also flows the *address expression's*
  /// sources into the written cells (which cell gets written depends on
  /// the index), and a Load through a computed address carries the
  /// index's sources too. Second: every write carries its block's
  /// control sources (see ctrlOf). Taint omits both (the VM concretizes
  /// addresses and values, so the cell never *holds* a symbolic value
  /// through either channel) — but the lints need influence, not
  /// symbolic-ness: an input used only as an array index or a guard
  /// still steers observable behaviour.
  bool propagate() {
    bool Changed = false;
    const PointsToResult &PT = *R.PT;
    auto FlowIntoLoc = [&](unsigned Loc, const SourceSet &S) {
      if (Loc < R.LocSources.size() && R.LocSources[Loc].unionWith(S))
        Changed = true;
    };
    auto FlowIntoSlot = [&](unsigned Fn, unsigned S, const SourceSet &Src) {
      if (S < M.functions()[Fn]->Slots.size())
        FlowIntoLoc(PT.slotLoc(Fn, S), Src);
    };
    auto FlowIntoWrite = [&](unsigned Fn, const IRExpr *Addr,
                             const SourceSet &Src) {
      if (const auto *FA = dyn_cast<FrameAddrExpr>(Addr))
        FlowIntoSlot(Fn, FA->slotIndex(), Src);
      else if (const auto *GA = dyn_cast<GlobalAddrExpr>(Addr))
        FlowIntoLoc(PT.globalLoc(GA->globalIndex()), Src);
      else
        for (unsigned O : PT.addressTargets(Fn, Addr))
          FlowIntoLoc(O, Src);
    };
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      const IRFunction &F = *M.functions()[Fn];
      for (unsigned II = 0; II < F.Instrs.size(); ++II) {
        const Instr &I = *F.Instrs[II];
        switch (I.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&I);
          SourceSet Src = R.exprSources(Fn, St->value());
          if (!isa<FrameAddrExpr>(St->address()) &&
              !isa<GlobalAddrExpr>(St->address()))
            Src.unionWith(R.exprSources(Fn, St->address()));
          Src.unionWith(ctrlOf(Fn, II));
          if (Src.any())
            FlowIntoWrite(Fn, St->address(), Src);
          break;
        }
        case Instr::Kind::Copy: {
          const auto *C = cast<CopyInstr>(&I);
          SourceSet Src(NumSources);
          if (const auto *FA = dyn_cast<FrameAddrExpr>(C->src()))
            Src = R.LocSources[PT.slotLoc(Fn, FA->slotIndex())];
          else if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->src()))
            Src = R.LocSources[PT.globalLoc(GA->globalIndex())];
          else {
            std::vector<unsigned> Targets = PT.addressTargets(Fn, C->src());
            if (Targets.empty())
              Src = top();
            for (unsigned O : Targets)
              Src.unionWith(R.LocSources[O]);
            Src.unionWith(R.exprSources(Fn, C->src()));
          }
          if (!isa<FrameAddrExpr>(C->dst()) && !isa<GlobalAddrExpr>(C->dst()))
            Src.unionWith(R.exprSources(Fn, C->dst()));
          Src.unionWith(ctrlOf(Fn, II));
          if (Src.any())
            FlowIntoWrite(Fn, C->dst(), Src);
          break;
        }
        case Instr::Kind::Call: {
          const auto *C = cast<CallInstr>(&I);
          SourceSet Ctrl = ctrlOf(Fn, II);
          auto It = FnIndexOf.find(C->callee());
          if (It != FnIndexOf.end()) {
            unsigned Callee = It->second;
            const IRFunction &CF = *M.functions()[Callee];
            for (unsigned A = 0; A < C->args().size() && A < CF.NumParams;
                 ++A) {
              SourceSet S = R.exprSources(Fn, C->args()[A].get());
              S.unionWith(Ctrl);
              if (S.any())
                FlowIntoSlot(Callee, A, S);
            }
            if (C->destSlot()) {
              SourceSet S = R.RetSources[Callee];
              S.unionWith(Ctrl);
              FlowIntoSlot(Fn, *C->destSlot(), S);
            }
          } else if (C->destSlot()) {
            // Native or external callee: externals return fresh inputs
            // (§3.1) — the ExternalWorld source — and natives are opaque
            // transforms of their arguments.
            SourceSet S(NumSources);
            S.set(0);
            for (const IRExprPtr &A : C->args())
              S.unionWith(R.exprSources(Fn, A.get()));
            S.unionWith(Ctrl);
            FlowIntoSlot(Fn, *C->destSlot(), S);
          }
          break;
        }
        case Instr::Kind::Ret: {
          const auto *Ret = cast<RetInstr>(&I);
          if (!Ret->value())
            break;
          SourceSet S = R.exprSources(Fn, Ret->value());
          S.unionWith(ctrlOf(Fn, II));
          if (R.RetSources[Fn].unionWith(S))
            Changed = true;
          break;
        }
        default:
          break;
        }
      }
    }
    return Changed;
  }
};

} // namespace

SourceSet DependenceResult::exprSources(unsigned Fn, const IRExpr *E) const {
  unsigned N = static_cast<unsigned>(Sources.size());
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return SourceSet(N); // addresses are concrete
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
      return LocSources[PT->slotLoc(Fn, FA->slotIndex())];
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      return LocSources[PT->globalLoc(GA->globalIndex())];
    // Computed address: the loaded value carries the sources of every
    // may-target cell plus the index's own (which cell is read depends
    // on it). An empty target set means the VM would trap — stay ⊤.
    std::vector<unsigned> Targets = PT->addressTargets(Fn, L->address());
    if (Targets.empty())
      return SourceSet::all(N);
    SourceSet S = exprSources(Fn, L->address());
    for (unsigned O : Targets)
      S.unionWith(LocSources[O]);
    return S;
  }
  case IRExpr::Kind::Unary:
    return exprSources(Fn, cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Binary: {
    SourceSet S = exprSources(Fn, cast<BinaryIRExpr>(E)->lhs());
    S.unionWith(exprSources(Fn, cast<BinaryIRExpr>(E)->rhs()));
    return S;
  }
  case IRExpr::Kind::Cmp: {
    SourceSet S = exprSources(Fn, cast<CmpExpr>(E)->lhs());
    S.unionWith(exprSources(Fn, cast<CmpExpr>(E)->rhs()));
    return S;
  }
  case IRExpr::Kind::Cast:
    return exprSources(Fn, cast<CastIRExpr>(E)->operand());
  }
  return SourceSet::all(N);
}

std::string DependenceStats::toString() const {
  std::ostringstream OS;
  OS << "Dependence: " << NumSources << " input sources, " << NumBranchSites
     << " branch sites (" << SitesNoDataDeps << " with no input data deps), "
     << CtrlDepEdges << " control-dep edges";
  if (NumBranchSites)
    OS << ", mean relevant inputs/site "
       << (double(RelevantInputsTotal) / NumBranchSites);
  OS << ", " << WallMicros << " us";
  return OS.str();
}

DependenceResult
dart::runDependenceAnalysis(const IRModule &M, const std::string &ToplevelName,
                            std::shared_ptr<const PointsToResult> PT) {
  auto T0 = std::chrono::steady_clock::now();
  DependenceResult R;
  R.PT = PT ? std::move(PT)
            : std::make_shared<PointsToResult>(
                  runPointsToAnalysis(M, ToplevelName));
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  unsigned NumGlobals = static_cast<unsigned>(M.globals().size());

  // Source universe: ExternalWorld is id 0, then the toplevel's
  // parameters in slot order, then extern-input globals in index order.
  R.Sources.push_back({InputSource::Kind::ExternalWorld, 0, 0, "<external>"});
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    if (F.Name == ToplevelName) {
      R.ToplevelFn = Fn;
      for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P)
        R.Sources.push_back({InputSource::Kind::Param, Fn, P,
                             F.Name + ":param" + std::to_string(P)});
    }
  }
  for (unsigned G = 0; G < NumGlobals; ++G)
    if (M.globals()[G].IsExternInput)
      R.Sources.push_back(
          {InputSource::Kind::ExternGlobal, 0, G, M.globals()[G].Name});
  unsigned NumSources = static_cast<unsigned>(R.Sources.size());

  R.LocSources.assign(R.PT->numLocs(), SourceSet(NumSources));
  R.RetSources.assign(NumFns, SourceSet(NumSources));

  // Seeds mirror runTaintAnalysis: the External location holds the world
  // source; each toplevel parameter slot and extern-input global holds
  // its own source bit.
  R.LocSources[R.PT->externalLoc()].set(0);
  for (unsigned S = 1; S < NumSources; ++S) {
    const InputSource &Src = R.Sources[S];
    if (Src.K == InputSource::Kind::Param)
      R.LocSources[R.PT->slotLoc(Src.Fn, Src.Index)].set(S);
    else
      R.LocSources[R.PT->globalLoc(Src.Index)].set(S);
  }

  Builder B(M, R, NumSources);

  // --- Control-dependence structure (CFGs, post-dominators, FOW edges) ---
  const CallGraph &CG = R.PT->callGraph();
  R.ReachableFromToplevel.assign(NumFns, false);
  if (R.ToplevelFn != ~0u)
    R.ReachableFromToplevel = CG.transitiveCallees(R.ToplevelFn);

  R.BlockCtrlSources.resize(NumFns);
  R.BlockGuarded.resize(NumFns);
  R.CtrlDepBranches.resize(NumFns);
  std::vector<Cfg> Cfgs;
  Cfgs.reserve(NumFns);
  std::vector<std::vector<bool>> RevReachable(NumFns);
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    Cfgs.push_back(Cfg::build(F));
    const Cfg &G = Cfgs.back();
    unsigned N = G.numBlocks();
    R.BlockCtrlSources[Fn].assign(N, SourceSet(NumSources));
    R.BlockGuarded[Fn].assign(N, false);
    R.CtrlDepBranches[Fn].assign(N, {});
    RevReachable[Fn].assign(N, false);

    PostDoms P = PostDoms::build(G);
    for (unsigned Bk = 0; Bk < N; ++Bk)
      RevReachable[Fn][Bk] = P.Ipdom[Bk] != Cfg::kUnset;
    // FOW: for each branch edge A->S with S not post-dominating A, every
    // block on the post-dominator path from S up to (excluding) ipdom(A)
    // is control-dependent on A's terminator.
    for (unsigned A = 0; A < N; ++A) {
      const Instr *T = G.terminator(A);
      if (!T || T->kind() != Instr::Kind::CondJump)
        continue;
      if (P.Ipdom[A] == Cfg::kUnset)
        continue; // branch cannot reach exit; blocks below stay ⊤ anyway
      unsigned BranchInstr = G.block(A).End - 1;
      for (unsigned S : G.block(A).Succs) {
        unsigned X = S;
        while (X != P.Ipdom[A] && X != P.Exit && X != Cfg::kUnset) {
          std::vector<unsigned> &Deps = R.CtrlDepBranches[Fn][X];
          if (std::find(Deps.begin(), Deps.end(), BranchInstr) == Deps.end()) {
            Deps.push_back(BranchInstr);
            ++R.Stats.CtrlDepEdges;
          }
          X = P.Ipdom[X];
        }
      }
    }
  }

  // Interprocedural closure: a function's blocks inherit the control
  // context of its call sites. FnCtrlSources is a may-union over call
  // sites; FnGuarded is a must-AND (one unguarded call chain means the
  // body can execute unconditionally) solved as a greatest fixpoint.
  std::vector<SourceSet> FnCtrlSources(NumFns, SourceSet(NumSources));
  std::vector<bool> FnGuarded(NumFns, true);
  if (R.ToplevelFn != ~0u)
    FnGuarded[R.ToplevelFn] = false;

  auto BlockFixpoint = [&](unsigned Fn) {
    const Cfg &G = Cfgs[Fn];
    unsigned N = G.numBlocks();
    bool Any = false;
    for (unsigned Bk = 0; Bk < N; ++Bk) {
      if (!RevReachable[Fn][Bk]) {
        // Cannot reach function exit (or forward-unreachable): stay ⊤,
        // guarded — conservative toward not-reporting and full slices.
        if (R.BlockCtrlSources[Fn][Bk].unionWith(B.top()))
          Any = true;
        R.BlockGuarded[Fn][Bk] = true;
        continue;
      }
      if (R.BlockCtrlSources[Fn][Bk].unionWith(FnCtrlSources[Fn]))
        Any = true;
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned Bk = 0; Bk < N; ++Bk) {
        if (!RevReachable[Fn][Bk])
          continue;
        for (unsigned BranchInstr : R.CtrlDepBranches[Fn][Bk]) {
          const auto *CJ =
              cast<CondJumpInstr>(M.functions()[Fn]->Instrs[BranchInstr].get());
          SourceSet S = R.exprSources(Fn, CJ->cond());
          S.unionWith(R.BlockCtrlSources[Fn][G.blockOf(BranchInstr)]);
          if (R.BlockCtrlSources[Fn][Bk].unionWith(S))
            Changed = Any = true;
        }
      }
    }
    return Any;
  };

  // Joint fixpoint. Data sources feed branch conditions, whose sources
  // feed the control closure; control sources feed back into the data
  // sweep through the implicit-flow widening at writes (Builder::ctrlOf:
  // `if (input) g = 1;` makes g depend on input). Both lattices are
  // finite and every step is monotone, so alternating the two sweeps to
  // mutual quiescence terminates.
  B.Cfgs = &Cfgs;
  bool AnyChanged = true;
  while (AnyChanged) {
    AnyChanged = false;
    while (B.propagate())
      AnyChanged = true;
    bool InterChanged = true;
    while (InterChanged) {
      InterChanged = false;
      for (unsigned Fn = 0; Fn < NumFns; ++Fn)
        if (BlockFixpoint(Fn))
          InterChanged = true;
      for (const CallGraphSite &Site : CG.sites()) {
        if (Site.CalleeFn == CallGraph::kExternal)
          continue;
        if (!R.ReachableFromToplevel.empty() &&
            !R.ReachableFromToplevel[Site.CallerFn])
          continue;
        unsigned Bk = Cfgs[Site.CallerFn].blockOf(Site.InstrIndex);
        if (FnCtrlSources[Site.CalleeFn].unionWith(
                R.BlockCtrlSources[Site.CallerFn][Bk]))
          InterChanged = true;
      }
      if (InterChanged)
        AnyChanged = true;
    }
  }

  // FnGuarded greatest fixpoint: start at "guarded" and lower a callee
  // whenever some reachable call site executes unconditionally.
  bool GuardChanged = true;
  while (GuardChanged) {
    GuardChanged = false;
    for (const CallGraphSite &Site : CG.sites()) {
      if (Site.CalleeFn == CallGraph::kExternal || !FnGuarded[Site.CalleeFn])
        continue;
      if (!R.ReachableFromToplevel.empty() &&
          !R.ReachableFromToplevel[Site.CallerFn])
        continue;
      unsigned Bk = Cfgs[Site.CallerFn].blockOf(Site.InstrIndex);
      bool SiteGuarded = !R.CtrlDepBranches[Site.CallerFn][Bk].empty() ||
                         !RevReachable[Site.CallerFn][Bk] ||
                         FnGuarded[Site.CallerFn];
      if (!SiteGuarded) {
        FnGuarded[Site.CalleeFn] = false;
        GuardChanged = true;
      }
    }
  }
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    for (unsigned Bk = 0; Bk < Cfgs[Fn].numBlocks(); ++Bk)
      if (RevReachable[Fn][Bk])
        R.BlockGuarded[Fn][Bk] =
            !R.CtrlDepBranches[Fn][Bk].empty() || FnGuarded[Fn];

  // --- Per-site tables and the dead-input evidence set ---
  unsigned MaxSite = 0;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    for (const InstrPtr &IP : M.functions()[Fn]->Instrs)
      if (const auto *CJ = dyn_cast<CondJumpInstr>(IP.get()))
        MaxSite = std::max(MaxSite, CJ->siteId() + 1);
  R.SiteDataInputs.assign(MaxSite, SourceSet(NumSources));
  R.SiteRelevant.assign(MaxSite, SourceSet(NumSources));
  R.UsedSources = SourceSet(NumSources);
  R.UsedSources.unionWith(R.LocSources[R.PT->externalLoc()]);
  if (R.ToplevelFn != ~0u)
    R.UsedSources.unionWith(R.RetSources[R.ToplevelFn]);

  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned II = 0; II < F.Instrs.size(); ++II) {
      const Instr &I = *F.Instrs[II];
      if (const auto *CJ = dyn_cast<CondJumpInstr>(&I)) {
        unsigned Site = CJ->siteId();
        R.SiteDataInputs[Site] = R.exprSources(Fn, CJ->cond());
        R.SiteRelevant[Site] = R.SiteDataInputs[Site];
        R.SiteRelevant[Site].unionWith(
            R.BlockCtrlSources[Fn][Cfgs[Fn].blockOf(II)]);
        R.UsedSources.unionWith(R.SiteDataInputs[Site]);
      } else if (const auto *C = dyn_cast<CallInstr>(&I)) {
        // Arguments handed to the outside world are observable outputs.
        if (CG.indexOf(C->callee()) == CallGraph::kExternal)
          for (const IRExprPtr &A : C->args())
            R.UsedSources.unionWith(R.exprSources(Fn, A.get()));
      }
    }
  }

  R.Stats.NumSources = NumSources;
  R.Stats.NumBranchSites = MaxSite;
  for (unsigned S = 0; S < MaxSite; ++S) {
    if (!R.SiteDataInputs[S].any())
      ++R.Stats.SitesNoDataDeps;
    R.Stats.RelevantInputsTotal += R.SiteRelevant[S].count();
  }
  R.Stats.WallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
  return R;
}
