//===- Zone.h - Relational zone (DBM) domain over the IR --------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A relational zone domain (difference-bound matrices) layered on the
/// interval framework: per function, a small universe of *cells* — alias-
/// trackable frame slots plus never-escaped scalar globals — and a matrix
/// of bounds `cell_i - cell_j <= c` over their canonical int64 values,
/// with a pseudo-variable fixed at zero so row/column 0 carry the plain
/// interval bounds.
///
/// Unlike IntervalAnalysis (deliberately path-insensitive: its facts back
/// the solver-traffic pruning argument), ZoneAnalysis refines state along
/// CondJump edges, so facts here are *machine-semantics* truths about the
/// paths that reach a point. They are sound for reachability verdicts and
/// for the verifier's infeasibility proofs (Verify.h), but must never
/// feed StaticSummary::PrunedSites — path-dependent proofs do not
/// transfer to the solver's ideal-integer theory the way the monovalent+
/// Exact argument does.
///
/// Soundness discipline, shared with Interval.h: every relational fact is
/// recorded only when the producing operation is wrap-free over the
/// current bounds (checked against vtRange), and every approximation only
/// *weakens* bounds — finite bounds are clamped toward +inf, never
/// tightened. Matrices are kept transitively closed by incremental
/// closure so consistency (no negative cycle) is always decidable by a
/// diagonal check.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_ZONE_H
#define DART_ANALYSIS_ZONE_H

#include "analysis/Cfg.h"
#include "analysis/Interval.h"
#include "analysis/Taint.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dart {

/// One difference-bound matrix. Indices run 0..numVars(): index 0 is the
/// constant-zero pseudo-variable, 1..N the tracked cells (ZoneAnalysis
/// owns the cell mapping). Entry (I,J) bounds `V_I - V_J <= c`.
class ZoneState {
public:
  /// +infinity sentinel. Finite bounds live in (-kInf, kInf) so three
  /// bounds always add without int64 overflow; clamping a computed bound
  /// into that window only ever weakens it (a larger upper bound), which
  /// is sound.
  static constexpr int64_t kInf = INT64_MAX / 4;

  ZoneState() = default;
  /// The no-information state over \p NumVars cells.
  static ZoneState top(unsigned NumVars);

  bool isBottom() const { return Bot; }
  unsigned numVars() const { return N; }
  int64_t bound(unsigned I, unsigned J) const { return at(I, J); }

  /// Add `V_I - V_J <= C` and restore transitive closure incrementally
  /// (O(n^2)); detects inconsistency (sets bottom).
  void addBound(unsigned I, unsigned J, int64_t C);
  /// Interval projection of cell \p V (1-based): [-D[0][V], D[V][0]].
  Interval varInterval(unsigned V) const;
  /// Forget everything about \p V (closure is preserved).
  void havoc(unsigned V);
  /// Forward assignments: v := c, v := u + c (u != v), v := v + c.
  void assignConst(unsigned V, int64_t C);
  void assignOffset(unsigned V, unsigned U, int64_t C);
  void shiftVar(unsigned V, int64_t C);
  /// Backward (weakest-precondition) substitutions: rewrite a necessary
  /// condition that holds *after* `v := c` / `v := u + c` into one that
  /// holds before (constraints on v are transferred to the source, then
  /// v is forgotten). U must differ from V; `v := v + c` is shiftVar
  /// with -C.
  void substituteConst(unsigned V, int64_t C);
  void substituteOffset(unsigned V, unsigned U, int64_t C);
  /// Clamp cell \p V into [Lo, Hi].
  void clampRange(unsigned V, int64_t Lo, int64_t Hi);

  /// Pointwise max (convex-hull join). Both sides must be non-bottom
  /// over the same universe. Returns true when this state changed. With
  /// \p Widen, every grown entry jumps straight to +inf (termination);
  /// the result may then be weaker than closed, which is sound.
  bool joinWith(const ZoneState &O, bool Widen);
  /// Pointwise min + full re-closure (may set bottom).
  void meetWith(const ZoneState &O);

  /// Render the non-trivial constraints; \p NameOf maps 1-based cell
  /// indices to names.
  std::string toString(const std::function<std::string(unsigned)> &NameOf)
      const;

private:
  int64_t &at(unsigned I, unsigned J) { return D[I * (N + 1) + J]; }
  int64_t at(unsigned I, unsigned J) const { return D[I * (N + 1) + J]; }
  /// Clamp a computed bound into the representable window (weakening).
  static int64_t clampBound(int64_t C) {
    if (C >= kInf)
      return kInf;
    if (C <= -kInf)
      return -kInf + 1;
    return C;
  }
  void close();

  unsigned N = 0;
  bool Bot = false;
  std::vector<int64_t> D;
};

/// Forward zone fixpoint over one function's CFG, with path-sensitive
/// edge refinement. Shares the taint/alias layer (and the wrap-around
/// interval combinators) with IntervalAnalysis.
class ZoneAnalysis {
public:
  struct Config {
    /// Cell-universe cap: matrix work is O(MaxVars^2) per constraint.
    unsigned MaxVars = 24;
    /// Widen a grown bound to +inf after this many visits (loop heads).
    unsigned WidenAfter = 6;
    /// Give up (conservatively: everything reachable, states unknown) if
    /// any block is visited this many times.
    unsigned MaxBlockVisits = 48;
    /// Pin non-extern-input global cells to their initial image at the
    /// function entry. Only sound for a campaign toplevel the generated
    /// driver is the sole caller of: each run starts from fresh memory.
    bool GlobalsAtInit = false;
  };

  /// An expression that provably equals `value(Var) + Off` (Var == 0:
  /// the constant Off) wrap-free under the current state.
  struct Atom {
    unsigned Var = 0;
    int64_t Off = 0;
  };

  ZoneAnalysis(const IRModule &M, const Cfg &G, const TaintResult &T,
               unsigned FnIndex, Config C);

  void run();
  bool converged() const { return Ok; }

  unsigned numVars() const { return static_cast<unsigned>(VarCell.size()); }
  /// 1-based cell index of a slot/global, or 0 when untracked.
  unsigned varOfSlot(unsigned S) const {
    return S < SlotVar.size() ? SlotVar[S] : 0;
  }
  unsigned varOfGlobal(unsigned G) const {
    return G < GlobalVar.size() ? GlobalVar[G] : 0;
  }
  /// The single ValType every access of this cell uses.
  ValType varType(unsigned V) const { return VarCell[V - 1].VT; }
  std::string varName(unsigned V) const;

  /// Is there a statically feasible path from the entry to \p B?
  /// (Conservative true when the fixpoint did not converge.)
  bool blockReachable(unsigned B) const;
  bool instrReachable(unsigned InstrIndex) const;

  /// Fixpoint state at block entry (nullopt: unreached or no fixpoint).
  const std::optional<ZoneState> &inState(unsigned B) const { return In[B]; }
  /// State just before \p InstrIndex (walks the block prefix).
  std::optional<ZoneState> stateBefore(unsigned InstrIndex) const;

  /// Apply \p I's effect on \p Z (public so the verifier can walk block
  /// prefixes).
  void transferInstr(ZoneState &Z, const Instr &I) const;
  /// Refine \p Z with "Cond evaluates in direction \p Dir" (Dir true =
  /// nonzero). Returns true when at least one constraint was added (the
  /// condition was zone-expressible); on contradiction \p Z is bottom.
  bool refineByCond(ZoneState &Z, const IRExpr *Cond, bool Dir) const;
  /// Interval of \p E under \p Z, through the shared wrap-aware
  /// combinators (leaf loads of tracked cells project the zone).
  Interval evalInterval(const ZoneState &Z, const IRExpr *E) const;
  /// Atom decomposition of \p E under \p Z (see Atom).
  std::optional<Atom> matchAtom(const ZoneState &Z, const IRExpr *E) const;

  const Cfg &cfg() const { return G; }
  const IRFunction &function() const { return F; }
  std::string describe(const ZoneState &Z) const;

  /// The state the fixpoint starts from: top, every cell clamped to its
  /// type range (public so the verifier can test "consistent at the
  /// campaign entry").
  ZoneState entryState() const;

private:
  struct Cell {
    bool IsGlobal = false;
    unsigned Index = 0; ///< slot index or global index
    ValType VT;
  };

  const IRModule &M;
  const Cfg &G;
  const TaintResult &T;
  unsigned FnIndex;
  Config C;
  const IRFunction &F;
  std::vector<Cell> VarCell;        ///< cell universe, 1-based via +1
  std::vector<unsigned> SlotVar;    ///< slot -> var (0 = none)
  std::vector<unsigned> GlobalVar;  ///< global -> var (0 = none)
  bool Ok = true;
  std::vector<std::optional<ZoneState>> In;
  std::vector<unsigned> Visits;

  void buildUniverse();
  /// The states this block hands to each CFG successor (refined along
  /// CondJump edges); nullopt = infeasible edge.
  void flowOut(unsigned B, const ZoneState &ExitState,
               std::vector<std::optional<ZoneState>> &PerSucc) const;
};

} // namespace dart

#endif // DART_ANALYSIS_ZONE_H
