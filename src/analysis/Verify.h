//===- Verify.h - Prove-or-test triage of every site ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prove-or-test layer: every branch direction, abort/assert site,
/// and lint candidate gets one of three verdicts.
///
///   PROVED    a path-sensitive proof (forward zone facts + backward
///             weakest-precondition refinement over the interprocedural
///             CFG) shows no machine execution from the campaign entry
///             can reach the site/direction. The invariant chain that
///             cuts every path is retained for display.
///   BUG       a concolic campaign produced a concrete witness: the
///             direction was covered, or an error stopped a run at the
///             site's source location. Witness run + inputs retained.
///   UNKNOWN   neither; these sites are exactly where testing budget
///             should go, so they become directed-search targets.
///
/// Proofs are machine-semantics sound (wrap-around, alias-checked via
/// points-to) and therefore refine `StaticSummary::CoverableDirs`: a
/// proved-infeasible direction leaves the early-exit coverage universe,
/// which turns heuristic saturation into a *completeness certificate* —
/// when every remaining coverable direction is covered, Theorem 1(b)'s
/// branch-coverage goal is met for the whole module. Proofs must NOT
/// feed `PrunedSites`: pruning needs ideal-theory unsatisfiability, and
/// path-sensitive machine proofs do not transfer (see Zone.h).
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_VERIFY_H
#define DART_ANALYSIS_VERIFY_H

#include "analysis/Lint.h"
#include "analysis/StaticSummary.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dart {

enum class Verdict { Proved, Bug, Unknown };

const char *verdictName(Verdict V);

enum class VerifySiteKind { BranchDir, AbortSite, LintSite };

/// One triaged site.
struct VerifySite {
  VerifySiteKind Kind = VerifySiteKind::BranchDir;
  Verdict V = Verdict::Unknown;
  std::string Function;
  SourceLocation Loc;
  /// BranchDir: branch site id and the direction triaged (true = the
  /// condition evaluates nonzero).
  unsigned Site = 0;
  bool Direction = false;
  /// LintSite: the originating lint kind.
  LintKind Lint = LintKind::DeadStore;
  /// Human-readable payload: the proof chain for PROVED, the witness
  /// summary for BUG, the lint message / missing-proof note otherwise.
  std::string Detail;
  /// BUG only: the 1-based campaign run that witnessed the site and the
  /// input vector that drove it (empty when unavailable).
  unsigned WitnessRun = 0;
  std::vector<std::pair<std::string, int64_t>> WitnessInputs;
};

/// Prover work counters for --stats and the bench axis.
struct VerifyStats {
  unsigned DirsConsidered = 0;   ///< coverable directions examined
  unsigned DirsProved = 0;       ///< directions proved infeasible
  unsigned ForwardProofs = 0;    ///< cut by forward zone state alone
  unsigned WpProofs = 0;         ///< needed the backward WP refiner
  unsigned WpItems = 0;          ///< WP worklist items processed
  unsigned FunctionsAnalyzed = 0;
  unsigned FunctionsConverged = 0;

  std::string toString() const;
};

/// Result of the branch-direction prover alone (what the engines apply
/// before a campaign).
struct BranchProofs {
  /// Bit `2*site + direction` set when that direction is proved
  /// infeasible from the campaign entry.
  std::vector<bool> ProvedDirs;
  unsigned ProvedCount = 0;
  /// Per proved bit: the invariant chain (indexed by bit; empty strings
  /// for unproved bits).
  std::vector<std::string> Chains;
  VerifyStats Stats;
};

/// Prove branch directions infeasible. Only directions inside
/// \p Sum.CoverableDirs are attempted (the rest are already excluded).
/// Requires \p Sum.Taint (points-to-backed); returns no proofs without
/// it. \p GlobalsStartAtInit: every toplevel invocation starts from the
/// module's initial global image — true only for campaigns with one
/// toplevel call per run (DartOptions::Depth == 1); deeper campaigns
/// carry global state across calls, so entry must assume arbitrary
/// type-ranged globals.
BranchProofs proveBranchDirections(const IRModule &M,
                                   const std::string &ToplevelName,
                                   const StaticSummary &Sum,
                                   bool GlobalsStartAtInit);

/// Remove proved directions from \p Sum's coverage universe. After this,
/// covering every remaining CoverableDirs bit is a completeness
/// certificate for branch coverage.
void applyBranchProofs(StaticSummary &Sum, const BranchProofs &P);

/// Full static triage: every coverable branch direction, every abort
/// site in an entry-reachable function, every lint finding.
struct VerifyResult {
  std::vector<VerifySite> Sites;
  VerifyStats Stats;

  unsigned count(Verdict V) const {
    unsigned N = 0;
    for (const VerifySite &S : Sites)
      N += S.V == V;
    return N;
  }
};

VerifyResult runVerifier(const IRModule &M, const std::string &ToplevelName,
                         const StaticSummary &Sum, const BranchProofs &P,
                         bool GlobalsStartAtInit);

/// What a concolic campaign observed, in analysis-layer terms (the tool
/// translates the engine's report so this library stays below the core).
struct CampaignEvidence {
  /// Final coverage bitmap, bit `2*site + direction`.
  std::vector<bool> Coverage;
  struct Error {
    SourceLocation Loc;
    unsigned Run = 0;
    std::vector<std::pair<std::string, int64_t>> Inputs;
    std::string Message;
  };
  std::vector<Error> Errors;
  /// Per-direction witnesses (which run first covered a bit), when the
  /// engine captured them.
  struct DirWitness {
    uint32_t Bit = 0;
    unsigned Run = 0;
    bool Directed = false;
    std::vector<std::pair<std::string, int64_t>> Inputs;
  };
  std::vector<DirWitness> Witnesses;
};

/// Upgrade UNKNOWN sites to BUG where the campaign witnessed them: a
/// covered direction for BranchDir sites, a matching error location for
/// abort sites and trap-kind lint sites.
void mergeDynamicEvidence(VerifyResult &R, const CampaignEvidence &E);

std::string verifyResultToText(const VerifyResult &R);
std::string verifyResultToJson(const VerifyResult &R);
std::string verifyResultToSarif(const VerifyResult &R);

} // namespace dart

#endif // DART_ANALYSIS_VERIFY_H
