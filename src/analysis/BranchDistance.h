//===- BranchDistance.h - Static distance-to-uncovered metric ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static branch-distance metric for frontier ordering: for every
/// branch-site direction, the shortest path (in blocks, over the
/// interprocedural block graph) from the direction's landing block to any
/// branch site that still has an uncovered direction. The paper's search
/// (§2.3) is depth-first; `--strategy distance` instead flips the frontier
/// candidate whose negated branch is statically closest to uncovered
/// code — a cheap, recomputable-per-iteration hint, not a soundness
/// mechanism.
///
/// The block graph is built once per module: every function's CFG edges,
/// plus an edge from each calling block to the callee's entry block.
/// Distances are then a multi-source backward BFS from the blocks whose
/// terminating CondJump has an uncovered direction, re-run from the
/// current coverage bitmap each time the engine asks — O(blocks + edges),
/// trivially cheap next to a solver call.
///
/// Priorities (lower = more urgent), indexed by `2*site + direction`:
///
///   0                      the direction itself is uncovered
///   1 + dist(landing)      covered; its landing block reaches uncovered
///                          code in `dist` edges
///   kUnreachablePriority   covered and no uncovered branch is reachable
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_BRANCHDISTANCE_H
#define DART_ANALYSIS_BRANCHDISTANCE_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace dart {

class BranchDistanceMap {
public:
  static constexpr uint32_t kUnreachablePriority = ~0u;

  /// Build the interprocedural block graph and the per-site landing
  /// blocks. \p M must outlive the map.
  static BranchDistanceMap build(const IRModule &M);

  unsigned numSites() const { return NumSites; }
  unsigned numBlocks() const {
    return static_cast<unsigned>(RevAdj.size());
  }

  /// Compute the priority of every (site, direction) pair from the
  /// coverage bitmap (bit `2*site + taken`, the engines' encoding). The
  /// result has `2 * numSites()` entries; sites beyond the bitmap are
  /// treated as uncovered.
  std::vector<uint32_t> priorities(const std::vector<bool> &Covered) const;

private:
  unsigned NumSites = 0;
  /// Reversed block-graph adjacency: RevAdj[v] = blocks with an edge
  /// into v.
  std::vector<std::vector<unsigned>> RevAdj;
  /// Global block id of the CondJump for each site (kNoBlock if the site
  /// id never appears in the module).
  std::vector<unsigned> SiteBlock;
  /// Global block id each direction lands in, indexed by 2*site + dir.
  std::vector<unsigned> LandingBlock;

  static constexpr unsigned kNoBlock = ~0u;
};

} // namespace dart

#endif // DART_ANALYSIS_BRANCHDISTANCE_H
