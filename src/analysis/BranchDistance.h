//===- BranchDistance.h - Static distance-to-uncovered metric ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static branch-distance metric for frontier ordering: for every
/// branch-site direction, the shortest path (in blocks, over the
/// interprocedural block graph) from the direction's landing block to any
/// branch site that still has an uncovered direction. The paper's search
/// (§2.3) is depth-first; `--strategy distance` instead flips the frontier
/// candidate whose negated branch is statically closest to uncovered
/// code — a cheap hint, not a soundness mechanism.
///
/// The block graph is built once per module: every function's CFG edges,
/// plus an edge from each calling block to the callee's entry block.
/// Distances are a multi-source backward BFS from the blocks whose
/// terminating CondJump has an uncovered direction.
///
/// Priorities (lower = more urgent), indexed by `2*site + direction`:
///
///   0                      the direction itself is uncovered
///   1 + dist(landing)      covered; its landing block reaches uncovered
///                          code in `dist` edges
///   kUnreachablePriority   covered and no uncovered branch is reachable
///
/// `priorities()` recomputes the whole BFS from a coverage bitmap — the
/// reference implementation, and the equality oracle the tests pin the
/// incremental path against. The engines instead keep a
/// DistancePriorityTracker: coverage only ever grows, and covering one
/// direction of a site that still has an uncovered sibling leaves the
/// BFS source set untouched, so the only priority that changes is the
/// newly covered bit's own (0 -> landing-based) — an O(1) update. Only
/// when a whole site saturates (both directions covered) does a source
/// disappear, and the tracker falls back to one full recompute.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_BRANCHDISTANCE_H
#define DART_ANALYSIS_BRANCHDISTANCE_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace dart {

class BranchDistanceMap {
public:
  static constexpr uint32_t kUnreachablePriority = ~0u;

  /// Build the interprocedural block graph and the per-site landing
  /// blocks. \p M must outlive the map.
  static BranchDistanceMap build(const IRModule &M);

  unsigned numSites() const { return NumSites; }
  unsigned numBlocks() const {
    return static_cast<unsigned>(RevAdj.size());
  }

  /// Compute the priority of every (site, direction) pair from the
  /// coverage bitmap (bit `2*site + taken`, the engines' encoding). The
  /// result has `2 * numSites()` entries; sites beyond the bitmap are
  /// treated as uncovered. Full recompute — the incremental tracker's
  /// equality oracle.
  std::vector<uint32_t> priorities(const std::vector<bool> &Covered) const;

private:
  friend class DistancePriorityTracker;

  /// The shared BFS body: distances from every block to the nearest
  /// still-uncovered site, then the per-direction priority table.
  void computeInto(const std::vector<bool> &Covered,
                   std::vector<uint32_t> &Dist,
                   std::vector<uint32_t> &Prio) const;

  unsigned NumSites = 0;
  /// Reversed block-graph adjacency: RevAdj[v] = blocks with an edge
  /// into v.
  std::vector<std::vector<unsigned>> RevAdj;
  /// Global block id of the CondJump for each site (kNoBlock if the site
  /// id never appears in the module).
  std::vector<unsigned> SiteBlock;
  /// Global block id each direction lands in, indexed by 2*site + dir.
  std::vector<unsigned> LandingBlock;

  static constexpr unsigned kNoBlock = ~0u;
};

/// Incrementally maintained priority table, equal at every point to
/// `Map.priorities(Covered)` for the coverage applied so far (coverage
/// only grows). Covering a direction whose site keeps an uncovered
/// sibling is an O(1) update; covering the last direction of a site
/// removes a BFS source and triggers one full recompute. Not thread-safe:
/// the parallel engine keeps one tracker per worker and re-syncs it from
/// the shared bitmap only when the coverage generation counter moves.
class DistancePriorityTracker {
public:
  explicit DistancePriorityTracker(const BranchDistanceMap &Map);

  /// Fold in a coverage bitmap (must be a superset of everything applied
  /// before — the engines' bitmaps only gain bits). Returns the number of
  /// fresh direction bits applied.
  unsigned sync(const std::vector<bool> &Now);

  /// The current table; reference stays valid across sync() calls.
  const std::vector<uint32_t> &priorities() const { return Prio; }

  uint64_t incrementalUpdates() const { return IncrementalUpdates; }
  uint64_t fullRecomputes() const { return FullRecomputes; }

private:
  const BranchDistanceMap &Map;
  std::vector<bool> Covered;
  std::vector<uint32_t> Dist;
  std::vector<uint32_t> Prio;
  std::vector<uint32_t> FreshBits; // scratch, reused across sync() calls
  uint64_t IncrementalUpdates = 0;
  uint64_t FullRecomputes = 0;
};

} // namespace dart

#endif // DART_ANALYSIS_BRANCHDISTANCE_H
