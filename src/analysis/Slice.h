//===- Slice.h - Statement-level backward slicing ---------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which statements can influence a given statement? The backward slice
/// of a criterion instruction is the set of instructions whose removal
/// could change what the criterion computes or whether it executes:
/// transitive data flow through the abstract-location lattice (alias-
/// aware via PointsTo) plus control dependence (Dependence.h's FOW
/// edges), closed over call edges — a marked call site pulls in its
/// callee's return computation, a marked callee pulls in every call site
/// that decides whether it runs.
///
/// The slice is flow-insensitive on memory (one demanded-location set
/// for the whole program, like the points-to and taint fixpoints it sits
/// on), which over-approximates: everything that may influence the
/// criterion is in the slice, statements outside it provably cannot.
/// That direction is the useful one — the lints and the sliced solver
/// mode both reason from *absence*.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_SLICE_H
#define DART_ANALYSIS_SLICE_H

#include "analysis/Dependence.h"
#include "ir/IR.h"

#include <vector>

namespace dart {

/// The statement to slice from: instruction \p InstrIndex of function
/// module-index \p Fn.
struct SliceCriterion {
  unsigned Fn = 0;
  unsigned InstrIndex = 0;
};

struct SliceResult {
  /// Per function (module index), per instruction: is it in the slice?
  std::vector<std::vector<bool>> InSlice;

  bool contains(unsigned Fn, unsigned InstrIndex) const {
    return Fn < InSlice.size() && InstrIndex < InSlice[Fn].size() &&
           InSlice[Fn][InstrIndex];
  }
  unsigned size() const {
    unsigned N = 0;
    for (const auto &F : InSlice)
      for (bool B : F)
        N += B;
    return N;
  }
};

/// Compute the backward slice of \p C. \p Dep supplies the alias layer
/// and the control-dependence edges (one runDependenceAnalysis serves
/// any number of slices).
SliceResult computeBackwardSlice(const IRModule &M,
                                 const DependenceResult &Dep,
                                 SliceCriterion C);

} // namespace dart

#endif // DART_ANALYSIS_SLICE_H
