//===- Lint.h - Static defect reporting over the IR -------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing face of the dataflow framework (`dart analyze`):
/// whole-program static defect reports via Diagnostics, one warning per
/// finding, with source locations from the lowered IR. Five defect
/// classes, each backed by one of the analyses:
///
///   unreachable code        executable-edge reachability (Interval.h)
///   division by zero        divisor interval is exactly [0,0]
///   assert always fails     assert condition interval is exactly [0,0]
///   uninitialized read      definite assignment (Liveness.h)
///   dead store              backward liveness (Liveness.h)
///
/// Every report is a *guarantee* (true on all executions reaching the
/// program point), never a heuristic: the pass aims for zero false
/// positives, at the cost of missing may-bugs.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_LINT_H
#define DART_ANALYSIS_LINT_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

namespace dart {

/// Analyze every function in \p M, appending one warning per finding to
/// \p Diags (in function/instruction order). Returns the finding count.
unsigned runLintPass(const IRModule &M, DiagnosticsEngine &Diags);

} // namespace dart

#endif // DART_ANALYSIS_LINT_H
