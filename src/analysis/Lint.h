//===- Lint.h - Static defect reporting over the IR -------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing face of the dataflow framework (`dart analyze`):
/// whole-program static defect reports with source locations from the
/// lowered IR. Eleven defect classes, each backed by one of the analyses:
///
///   unreachable code        executable-edge reachability (Interval.h)
///   division by zero        divisor interval is exactly [0,0]
///   assert always fails     assert condition interval is exactly [0,0]
///   uninitialized read      definite assignment (Liveness.h)
///   dead store              backward liveness (Liveness.h)
///   out-of-bounds access    base+offset decomposition: the offset
///                           interval lies entirely outside the object
///   null dereference        address interval is exactly [0,0]
///   stack address escape    points-to: a returned or outliving-stored
///                           value can only target the frame's own slots
///   dead input              dependence (Dependence.h): a DART input
///                           source influences no branch, no output, and
///                           no potentially-trapping operation
///   write-only variable     a named global is stored directly but its
///                           address never occurs anywhere else, so the
///                           stored values are never read
///   control-unreachable bug dependence: a guarded abort/assert site all
///                           of whose (interprocedural) controlling
///                           branches are input-independent — no input
///                           choice affects whether it executes
///
/// The dead-input and control-unreachable-bug classes need to know which
/// function the test driver calls; they only run when a toplevel name is
/// supplied (dart analyze --toplevel).
///
/// Every report is a *guarantee* (true on all executions reaching the
/// program point), never a heuristic: the pass aims for zero false
/// positives, at the cost of missing may-bugs.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_LINT_H
#define DART_ANALYSIS_LINT_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace dart {

enum class LintKind {
  UnreachableCode,
  DivisionByZero,
  AssertAlwaysFails,
  UninitializedRead,
  DeadStore,
  OutOfBoundsAccess,
  NullDereference,
  StackAddressEscape,
  DeadInput,
  WriteOnlyVariable,
  ControlUnreachableBug,
};

/// Stable kebab-case identifier ("unreachable-code", "out-of-bounds",
/// ...), the `kind` field of --format json output.
const char *lintKindName(LintKind K);

/// One structured finding, in function/instruction order.
struct LintFinding {
  LintKind Kind;
  std::string Function;
  SourceLocation Loc;
  std::string Message;
  /// IR coordinates of the offending instruction when the producing pass
  /// knows them (~0u otherwise) — the verifier's anchor for reachability
  /// proofs.
  unsigned FnIndex = ~0u;
  unsigned InstrIndex = ~0u;
};

/// Analyze every function in \p M and return the structured findings.
/// A non-empty \p ToplevelName names the function the generated driver
/// calls and enables the dependence-powered input lints (dead-input,
/// control-unreachable-bug); with no toplevel those classes are skipped
/// because no parameter is an input and reachability is undefined.
std::vector<LintFinding> runLintAnalysis(const IRModule &M,
                                         const std::string &ToplevelName = "");

/// Compatibility wrapper: append one warning per finding to \p Diags and
/// return the finding count.
unsigned runLintPass(const IRModule &M, DiagnosticsEngine &Diags,
                     const std::string &ToplevelName = "");

/// Render findings as a machine-readable JSON document:
/// {"file": ..., "findings": [{"kind","function","line","column",
/// "message"}, ...]}.
std::string lintFindingsToJson(const std::string &File,
                               const std::vector<LintFinding> &Findings);

/// Render findings as a minimal SARIF 2.1.0 document (one run, one rule
/// per lint kind, every result level "warning").
std::string lintFindingsToSarif(const std::string &File,
                                const std::vector<LintFinding> &Findings);

/// Escape a string for embedding in a JSON string literal (shared by the
/// JSON/SARIF renderers here and in Verify.cpp).
std::string jsonEscape(const std::string &S);

} // namespace dart

#endif // DART_ANALYSIS_LINT_H
