//===- Slice.cpp - Statement-level backward slicing -----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Slice.h"

#include "analysis/Cfg.h"

#include <vector>

using namespace dart;

namespace {

struct Slicer {
  const IRModule &M;
  const DependenceResult &Dep;
  const PointsToResult &PT;
  SliceResult R;
  /// Demanded abstract locations: a definition of any of these can
  /// influence the criterion.
  std::vector<bool> Demanded;
  /// Per function: is its return value demanded?
  std::vector<bool> DemandedRet;
  /// Per function: is any of its instructions marked (so its call sites
  /// join the slice as control context)?
  std::vector<bool> FnEntered;
  std::vector<Cfg> Cfgs;
  bool Changed = false;

  Slicer(const IRModule &M, const DependenceResult &Dep)
      : M(M), Dep(Dep), PT(*Dep.PT) {
    unsigned NumFns = static_cast<unsigned>(M.functions().size());
    R.InSlice.resize(NumFns);
    for (unsigned Fn = 0; Fn < NumFns; ++Fn)
      R.InSlice[Fn].assign(M.functions()[Fn]->Instrs.size(), false);
    Demanded.assign(PT.numLocs(), false);
    DemandedRet.assign(NumFns, false);
    FnEntered.assign(NumFns, false);
    Cfgs.reserve(NumFns);
    for (unsigned Fn = 0; Fn < NumFns; ++Fn)
      Cfgs.push_back(Cfg::build(*M.functions()[Fn]));
  }

  void demandLoc(unsigned Loc) {
    if (Loc < Demanded.size() && !Demanded[Loc]) {
      Demanded[Loc] = true;
      Changed = true;
    }
  }

  void demandAll() {
    for (unsigned L = 0; L < Demanded.size(); ++L)
      demandLoc(L);
  }

  /// Demand every location a read inside \p E may observe.
  void demandExpr(unsigned Fn, const IRExpr *E) {
    switch (E->kind()) {
    case IRExpr::Kind::Const:
    case IRExpr::Kind::FrameAddr:
    case IRExpr::Kind::GlobalAddr:
      return;
    case IRExpr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
        demandLoc(PT.slotLoc(Fn, FA->slotIndex()));
        return;
      }
      if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address())) {
        demandLoc(PT.globalLoc(GA->globalIndex()));
        return;
      }
      std::vector<unsigned> Targets = PT.addressTargets(Fn, L->address());
      if (Targets.empty())
        demandAll(); // untracked address: stay conservative
      for (unsigned O : Targets)
        demandLoc(O);
      demandExpr(Fn, L->address());
      return;
    }
    case IRExpr::Kind::Unary:
      demandExpr(Fn, cast<UnaryIRExpr>(E)->operand());
      return;
    case IRExpr::Kind::Binary:
      demandExpr(Fn, cast<BinaryIRExpr>(E)->lhs());
      demandExpr(Fn, cast<BinaryIRExpr>(E)->rhs());
      return;
    case IRExpr::Kind::Cmp:
      demandExpr(Fn, cast<CmpExpr>(E)->lhs());
      demandExpr(Fn, cast<CmpExpr>(E)->rhs());
      return;
    case IRExpr::Kind::Cast:
      demandExpr(Fn, cast<CastIRExpr>(E)->operand());
      return;
    }
  }

  /// Locations instruction (\p Fn, \p II) may define.
  std::vector<unsigned> defLocs(unsigned Fn, unsigned II) const {
    const Instr &I = *M.functions()[Fn]->Instrs[II];
    auto WriteTargets = [&](const IRExpr *Addr) -> std::vector<unsigned> {
      if (const auto *FA = dyn_cast<FrameAddrExpr>(Addr))
        return {PT.slotLoc(Fn, FA->slotIndex())};
      if (const auto *GA = dyn_cast<GlobalAddrExpr>(Addr))
        return {PT.globalLoc(GA->globalIndex())};
      return PT.addressTargets(Fn, Addr);
    };
    switch (I.kind()) {
    case Instr::Kind::Store:
      return WriteTargets(cast<StoreInstr>(&I)->address());
    case Instr::Kind::Copy:
      return WriteTargets(cast<CopyInstr>(&I)->dst());
    case Instr::Kind::Call: {
      const auto *C = cast<CallInstr>(&I);
      std::vector<unsigned> Locs;
      const CallGraph &CG = PT.callGraph();
      unsigned Callee = CG.indexOf(C->callee());
      if (C->destSlot())
        Locs.push_back(PT.slotLoc(Fn, *C->destSlot()));
      if (Callee != CallGraph::kExternal) {
        const IRFunction &CF = *M.functions()[Callee];
        for (unsigned A = 0; A < C->args().size() && A < CF.NumParams; ++A)
          Locs.push_back(PT.slotLoc(Callee, A));
        // Callee side-effect writes happen at the callee's own Store
        // instructions, which the module-wide definition scan marks
        // directly — no need to fold mayMod in here.
      } else {
        // External/native callee: may write through every pointer
        // argument and into the driver-owned world.
        Locs.push_back(PT.externalLoc());
        for (const IRExprPtr &A : C->args())
          for (unsigned O : PT.addressTargets(Fn, A.get()))
            Locs.push_back(O);
      }
      return Locs;
    }
    default:
      return {};
    }
  }

  void mark(unsigned Fn, unsigned II) {
    if (R.InSlice[Fn][II])
      return;
    R.InSlice[Fn][II] = true;
    Changed = true;
    if (!FnEntered[Fn]) {
      FnEntered[Fn] = true;
      // Control context: whether this function runs at all is decided at
      // its call sites.
      for (const CallGraphSite &Site : PT.callGraph().sites())
        if (Site.CalleeFn == Fn)
          mark(Site.CallerFn, Site.InstrIndex);
    }
    // Intraprocedural control dependence.
    unsigned Bk = Cfgs[Fn].blockOf(II);
    if (Fn < Dep.CtrlDepBranches.size() &&
        Bk < Dep.CtrlDepBranches[Fn].size())
      for (unsigned Br : Dep.CtrlDepBranches[Fn][Bk])
        mark(Fn, Br);
    // Data demand of the instruction's own reads.
    const Instr &I = *M.functions()[Fn]->Instrs[II];
    switch (I.kind()) {
    case Instr::Kind::Store: {
      const auto *St = cast<StoreInstr>(&I);
      demandExpr(Fn, St->value());
      demandExpr(Fn, St->address());
      break;
    }
    case Instr::Kind::Copy: {
      const auto *C = cast<CopyInstr>(&I);
      demandExpr(Fn, C->src());
      demandExpr(Fn, C->dst());
      if (const auto *FA = dyn_cast<FrameAddrExpr>(C->src()))
        demandLoc(PT.slotLoc(Fn, FA->slotIndex()));
      else if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->src()))
        demandLoc(PT.globalLoc(GA->globalIndex()));
      else
        for (unsigned O : PT.addressTargets(Fn, C->src()))
          demandLoc(O);
      break;
    }
    case Instr::Kind::CondJump:
      demandExpr(Fn, cast<CondJumpInstr>(&I)->cond());
      break;
    case Instr::Kind::Call: {
      const auto *C = cast<CallInstr>(&I);
      for (const IRExprPtr &A : C->args())
        demandExpr(Fn, A.get());
      unsigned Callee = PT.callGraph().indexOf(C->callee());
      if (Callee != CallGraph::kExternal && C->destSlot() &&
          !DemandedRet[Callee]) {
        DemandedRet[Callee] = true;
        Changed = true;
      }
      break;
    }
    case Instr::Kind::Ret:
      if (const IRExpr *V = cast<RetInstr>(&I)->value())
        demandExpr(Fn, V);
      break;
    default:
      break;
    }
  }

  SliceResult run(SliceCriterion C) {
    if (C.Fn >= R.InSlice.size() || C.InstrIndex >= R.InSlice[C.Fn].size())
      return std::move(R);
    mark(C.Fn, C.InstrIndex);
    // Fixpoint: marking demands locations; any instruction defining a
    // demanded location joins the slice, which may demand more.
    bool Again = true;
    while (Again) {
      Changed = false;
      for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
        const IRFunction &F = *M.functions()[Fn];
        for (unsigned II = 0; II < F.Instrs.size(); ++II) {
          if (R.InSlice[Fn][II])
            continue;
          const Instr &I = *F.Instrs[II];
          if (I.kind() == Instr::Kind::Ret && DemandedRet[Fn]) {
            mark(Fn, II);
            continue;
          }
          for (unsigned Loc : defLocs(Fn, II))
            if (Loc < Demanded.size() && Demanded[Loc]) {
              mark(Fn, II);
              break;
            }
        }
      }
      Again = Changed;
    }
    return std::move(R);
  }
};

} // namespace

SliceResult dart::computeBackwardSlice(const IRModule &M,
                                       const DependenceResult &Dep,
                                       SliceCriterion C) {
  Slicer S(M, Dep);
  return S.run(C);
}
