//===- Zone.cpp - Difference-bound-matrix zone domain -----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Zone.h"

#include "analysis/PointsTo.h"

#include <algorithm>
#include <deque>
#include <sstream>

using namespace dart;

namespace {

using I128 = __int128;

/// Clamp an extended-precision bound into ZoneState's finite window.
/// Raising a too-small bound to -kInf+1 only weakens it, which is sound.
int64_t clamp128(I128 C) {
  if (C >= ZoneState::kInf)
    return ZoneState::kInf;
  if (C <= -I128(ZoneState::kInf))
    return -ZoneState::kInf + 1;
  return static_cast<int64_t>(C);
}

} // namespace

//===----------------------------------------------------------------------===//
// ZoneState
//===----------------------------------------------------------------------===//

ZoneState ZoneState::top(unsigned NumVars) {
  ZoneState Z;
  Z.N = NumVars;
  Z.D.assign(size_t(NumVars + 1) * (NumVars + 1), kInf);
  for (unsigned I = 0; I <= NumVars; ++I)
    Z.at(I, I) = 0;
  return Z;
}

void ZoneState::addBound(unsigned I, unsigned J, int64_t C) {
  if (Bot)
    return;
  C = clampBound(C);
  if (I == J) {
    if (C < 0)
      Bot = true;
    return;
  }
  if (C >= at(I, J))
    return; // no tightening
  // Incremental closure: the matrix is closed, so every shortest path
  // using the new edge I->J decomposes as a->I, I->J, J->b with the old
  // closed distances on the outer legs.
  for (unsigned A = 0; A <= N; ++A) {
    int64_t AI = at(A, I);
    if (AI >= kInf)
      continue;
    for (unsigned B = 0; B <= N; ++B) {
      int64_t JB = at(J, B);
      if (JB >= kInf)
        continue;
      I128 Via = I128(AI) + C + JB; // three finite terms: no overflow
      if (Via < at(A, B)) {
        if (A == B && Via < 0) {
          Bot = true;
          return;
        }
        at(A, B) = clamp128(Via);
      }
    }
  }
}

Interval ZoneState::varInterval(unsigned V) const {
  if (V == 0)
    return {0, 0, false};
  Interval R;
  R.Lo = at(0, V) >= kInf ? INT64_MIN : -at(0, V);
  R.Hi = at(V, 0) >= kInf ? INT64_MAX : at(V, 0);
  R.Exact = false;
  return R;
}

void ZoneState::havoc(unsigned V) {
  if (Bot)
    return;
  // Dropping one node's edges keeps a closed matrix closed: the triangle
  // inequalities through V become vacuous, the rest are untouched.
  for (unsigned A = 0; A <= N; ++A) {
    at(V, A) = kInf;
    at(A, V) = kInf;
  }
  at(V, V) = 0;
}

void ZoneState::assignConst(unsigned V, int64_t C) {
  havoc(V);
  addBound(V, 0, C);
  addBound(0, V, clamp128(-I128(C)));
}

void ZoneState::assignOffset(unsigned V, unsigned U, int64_t C) {
  havoc(V);
  addBound(V, U, C);
  addBound(U, V, clamp128(-I128(C)));
}

void ZoneState::shiftVar(unsigned V, int64_t C) {
  if (Bot)
    return;
  // v := v + c: every bound v - a <= d becomes (new v) - a <= d + c and
  // a - v <= d becomes a - (new v) <= d - c. Rank-preserving, so the
  // matrix stays closed.
  for (unsigned A = 0; A <= N; ++A) {
    if (A == V)
      continue;
    if (at(V, A) < kInf)
      at(V, A) = clamp128(I128(at(V, A)) + C);
    if (at(A, V) < kInf)
      at(A, V) = clamp128(I128(at(A, V)) - C);
  }
}

void ZoneState::substituteConst(unsigned V, int64_t C) {
  if (Bot)
    return;
  // Necessary condition after `v := c` becomes one before: every
  // constraint on v is evaluated at v = c (constraints on the zero row
  // turn into pure consistency checks via addBound's I==J path).
  struct Pending {
    unsigned I, J;
    I128 C;
  };
  std::vector<Pending> Adds;
  for (unsigned A = 0; A <= N; ++A) {
    if (A == V)
      continue;
    if (at(V, A) < kInf) // c - a <= b  =>  0 - a <= b - c
      Adds.push_back({0, A, I128(at(V, A)) - C});
    if (at(A, V) < kInf) // a - c <= b  =>  a - 0 <= b + c
      Adds.push_back({A, 0, I128(at(A, V)) + C});
  }
  havoc(V);
  for (const Pending &P : Adds) {
    addBound(P.I, P.J, clamp128(P.C));
    if (Bot)
      return;
  }
}

void ZoneState::substituteOffset(unsigned V, unsigned U, int64_t C) {
  if (Bot)
    return;
  struct Pending {
    unsigned I, J;
    I128 C;
  };
  std::vector<Pending> Adds;
  for (unsigned A = 0; A <= N; ++A) {
    if (A == V)
      continue;
    if (at(V, A) < kInf) // (u + c) - a <= b  =>  u - a <= b - c
      Adds.push_back({U, A, I128(at(V, A)) - C});
    if (at(A, V) < kInf) // a - (u + c) <= b  =>  a - u <= b + c
      Adds.push_back({A, U, I128(at(A, V)) + C});
  }
  havoc(V);
  for (const Pending &P : Adds) {
    addBound(P.I, P.J, clamp128(P.C));
    if (Bot)
      return;
  }
}

void ZoneState::clampRange(unsigned V, int64_t Lo, int64_t Hi) {
  addBound(V, 0, Hi);
  addBound(0, V, clamp128(-I128(Lo)));
}

bool ZoneState::joinWith(const ZoneState &O, bool Widen) {
  bool Changed = false;
  for (size_t I = 0; I < D.size(); ++I) {
    if (O.D[I] > D[I]) {
      D[I] = Widen ? kInf : O.D[I];
      Changed = true;
    }
  }
  return Changed;
}

void ZoneState::meetWith(const ZoneState &O) {
  if (Bot)
    return;
  if (O.Bot) {
    Bot = true;
    return;
  }
  for (size_t I = 0; I < D.size(); ++I)
    D[I] = std::min(D[I], O.D[I]);
  close();
}

void ZoneState::close() {
  for (unsigned K = 0; K <= N; ++K)
    for (unsigned A = 0; A <= N; ++A) {
      int64_t AK = at(A, K);
      if (AK >= kInf)
        continue;
      for (unsigned B = 0; B <= N; ++B) {
        int64_t KB = at(K, B);
        if (KB >= kInf)
          continue;
        I128 Via = I128(AK) + KB;
        if (Via < at(A, B)) {
          if (A == B && Via < 0) {
            Bot = true;
            return;
          }
          at(A, B) = clamp128(Via);
        }
      }
    }
  for (unsigned A = 0; A <= N; ++A)
    if (at(A, A) < 0) {
      Bot = true;
      return;
    }
}

std::string ZoneState::toString(
    const std::function<std::string(unsigned)> &NameOf) const {
  if (Bot)
    return "bottom";
  std::ostringstream OS;
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << "; ";
    First = false;
  };
  for (unsigned V = 1; V <= N; ++V) {
    int64_t Lo = at(0, V), Hi = at(V, 0);
    if (Lo >= kInf && Hi >= kInf)
      continue;
    Sep();
    OS << NameOf(V) << " in [";
    if (Lo >= kInf)
      OS << "-inf";
    else
      OS << -Lo;
    OS << ",";
    if (Hi >= kInf)
      OS << "+inf";
    else
      OS << Hi;
    OS << "]";
  }
  for (unsigned I = 1; I <= N; ++I)
    for (unsigned J = 1; J <= N; ++J) {
      if (I == J || at(I, J) >= kInf)
        continue;
      Sep();
      OS << NameOf(I) << " - " << NameOf(J) << " <= " << at(I, J);
    }
  if (First)
    OS << "top";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// ZoneAnalysis: cell universe
//===----------------------------------------------------------------------===//

namespace {

/// Walk every sub-expression of \p E.
template <typename Fn> void forEachExpr(const IRExpr *E, Fn F) {
  if (!E)
    return;
  F(E);
  switch (E->kind()) {
  case IRExpr::Kind::Load:
    forEachExpr(cast<LoadExpr>(E)->address(), F);
    break;
  case IRExpr::Kind::Unary:
    forEachExpr(cast<UnaryIRExpr>(E)->operand(), F);
    break;
  case IRExpr::Kind::Binary:
    forEachExpr(cast<BinaryIRExpr>(E)->lhs(), F);
    forEachExpr(cast<BinaryIRExpr>(E)->rhs(), F);
    break;
  case IRExpr::Kind::Cmp:
    forEachExpr(cast<CmpExpr>(E)->lhs(), F);
    forEachExpr(cast<CmpExpr>(E)->rhs(), F);
    break;
  case IRExpr::Kind::Cast:
    forEachExpr(cast<CastIRExpr>(E)->operand(), F);
    break;
  default:
    break;
  }
}

/// Walk every expression operand of \p I.
template <typename Fn> void forEachInstrExpr(const Instr &I, Fn F) {
  switch (I.kind()) {
  case Instr::Kind::Store:
    forEachExpr(cast<StoreInstr>(&I)->address(), F);
    forEachExpr(cast<StoreInstr>(&I)->value(), F);
    break;
  case Instr::Kind::Copy:
    forEachExpr(cast<CopyInstr>(&I)->dst(), F);
    forEachExpr(cast<CopyInstr>(&I)->src(), F);
    break;
  case Instr::Kind::CondJump:
    forEachExpr(cast<CondJumpInstr>(&I)->cond(), F);
    break;
  case Instr::Kind::Call:
    for (const auto &A : cast<CallInstr>(&I)->args())
      forEachExpr(A.get(), F);
    break;
  case Instr::Kind::Ret:
    forEachExpr(cast<RetInstr>(&I)->value(), F);
    break;
  default:
    break;
  }
}

/// Accumulates the single ValType all typed accesses of a cell use, or
/// marks the cell ineligible when accesses disagree.
struct AccessTag {
  bool Seen = false;
  bool Mixed = false;
  ValType VT;

  void note(ValType T) {
    if (!Seen) {
      Seen = true;
      VT = T;
    } else if (!(VT == T)) {
      Mixed = true;
    }
  }
  bool single() const { return Seen && !Mixed; }
};

} // namespace

void ZoneAnalysis::buildUniverse() {
  SlotVar.assign(F.Slots.size(), 0);
  GlobalVar.assign(M.globals().size(), 0);
  if (!T.PT)
    return; // no alias layer: no cells (everything stays unknown)

  // Frame slots: alias-trackable (onlyLocallyAliased, width-matched
  // direct accesses, no Copy operands), scalar-sized, and every typed
  // access — loads, stores, call-return writes, the implicit parameter
  // store — at ONE ValType. That type becomes the cell's permanent tag:
  // whatever raw bytes land in the cell, the value read back at the tag
  // type is its canonical value, so `cell in vtRange(tag)` is invariant.
  std::vector<bool> Trackable = aliasTrackableSlots(M, FnIndex, *T.PT);
  std::vector<AccessTag> SlotTag(F.Slots.size());
  for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P)
    SlotTag[P].note(P < F.ParamVTs.size() ? F.ParamVTs[P]
                                          : ValType::int32());
  for (const auto &IP : F.Instrs) {
    forEachInstrExpr(*IP, [&](const IRExpr *E) {
      if (const auto *L = dyn_cast<LoadExpr>(E))
        if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
          if (FA->slotIndex() < SlotTag.size())
            SlotTag[FA->slotIndex()].note(L->valType());
    });
    if (const auto *St = dyn_cast<StoreInstr>(IP.get())) {
      if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address()))
        if (FA->slotIndex() < SlotTag.size())
          SlotTag[FA->slotIndex()].note(St->valType());
    } else if (const auto *Ca = dyn_cast<CallInstr>(IP.get())) {
      if (Ca->destSlot() && *Ca->destSlot() < SlotTag.size())
        SlotTag[*Ca->destSlot()].note(Ca->retValType());
    }
  }

  auto AddCell = [&](bool IsGlobal, unsigned Index, ValType VT) -> bool {
    if (VarCell.size() >= C.MaxVars)
      return false;
    VarCell.push_back({IsGlobal, Index, VT});
    unsigned V = static_cast<unsigned>(VarCell.size());
    (IsGlobal ? GlobalVar[Index] : SlotVar[Index]) = V;
    return true;
  };

  for (unsigned S = 0; S < F.Slots.size(); ++S) {
    if (!Trackable[S] || F.Slots[S].SizeBytes > 8)
      continue;
    if (!SlotTag[S].single() || SlotTag[S].VT.IsPointer ||
        SlotTag[S].VT.SizeBytes != F.Slots[S].SizeBytes)
      continue;
    if (!AddCell(false, S, SlotTag[S].VT))
      return;
  }

  // Globals: never escaped (their address never leaves direct accesses,
  // so only direct stores and calls can change them), scalar-sized, one
  // module-wide access type. Writes through computed addresses resolve
  // via points-to and havoc the cell; callee writes havoc via mayMod.
  std::vector<AccessTag> GlobalTag(M.globals().size());
  std::vector<bool> UsedHere(M.globals().size(), false);
  for (const auto &FnP : M.functions()) {
    for (const auto &IP : FnP->Instrs) {
      forEachInstrExpr(*IP, [&](const IRExpr *E) {
        if (const auto *L = dyn_cast<LoadExpr>(E))
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address())) {
            GlobalTag[GA->globalIndex()].note(L->valType());
            if (FnP.get() == &F)
              UsedHere[GA->globalIndex()] = true;
          }
      });
      if (const auto *St = dyn_cast<StoreInstr>(IP.get()))
        if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address())) {
          GlobalTag[GA->globalIndex()].note(St->valType());
          if (FnP.get() == &F)
            UsedHere[GA->globalIndex()] = true;
        }
    }
  }
  for (unsigned G = 0; G < M.globals().size(); ++G) {
    uint64_t Sz = M.globals()[G].SizeBytes;
    if (!UsedHere[G] || T.GlobalEscaped[G])
      continue;
    if (Sz != 1 && Sz != 2 && Sz != 4 && Sz != 8)
      continue;
    if (!GlobalTag[G].single() || GlobalTag[G].VT.IsPointer ||
        GlobalTag[G].VT.SizeBytes != Sz)
      continue;
    if (!AddCell(true, G, GlobalTag[G].VT))
      return;
  }
}

ZoneAnalysis::ZoneAnalysis(const IRModule &M, const Cfg &G,
                           const TaintResult &T, unsigned FnIndex, Config C)
    : M(M), G(G), T(T), FnIndex(FnIndex), C(C), F(G.function()) {
  buildUniverse();
}

std::string ZoneAnalysis::varName(unsigned V) const {
  const Cell &Ce = VarCell[V - 1];
  if (Ce.IsGlobal)
    return M.globals()[Ce.Index].Name;
  const std::string &N = F.Slots[Ce.Index].Name;
  if (!N.empty())
    return N;
  return "slot#" + std::to_string(Ce.Index);
}

std::string ZoneAnalysis::describe(const ZoneState &Z) const {
  return Z.toString([this](unsigned V) { return varName(V); });
}

ZoneState ZoneAnalysis::entryState() const {
  ZoneState Z = ZoneState::top(numVars());
  for (unsigned V = 1; V <= numVars(); ++V) {
    const Cell &Ce = VarCell[V - 1];
    int64_t Lo, Hi;
    vtRange(Ce.VT, Lo, Hi);
    if (Ce.IsGlobal && C.GlobalsAtInit &&
        !M.globals()[Ce.Index].IsExternInput) {
      // Campaign entry: every run starts from the global's initial image
      // (extern-input globals are fresh inputs — full type range).
      int64_t Init = decodeGlobalInit(M.globals()[Ce.Index], Ce.VT);
      Z.clampRange(V, Init, Init);
    } else {
      Z.clampRange(V, Lo, Hi);
    }
  }
  return Z;
}

//===----------------------------------------------------------------------===//
// ZoneAnalysis: expression evaluation
//===----------------------------------------------------------------------===//

std::optional<ZoneAnalysis::Atom>
ZoneAnalysis::matchAtom(const ZoneState &Z, const IRExpr *E) const {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
    return Atom{0, cast<ConstExpr>(E)->value()};
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    unsigned V = 0;
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
      V = varOfSlot(FA->slotIndex());
    else if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      V = varOfGlobal(GA->globalIndex());
    if (V && varType(V) == L->valType())
      return Atom{V, 0};
    return std::nullopt;
  }
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    if (B->op() != IRBinOp::Add && B->op() != IRBinOp::Sub)
      return std::nullopt;
    const IRExpr *Var = B->lhs(), *Cst = B->rhs();
    if (B->op() == IRBinOp::Add && isa<ConstExpr>(Var))
      std::swap(Var, Cst);
    const auto *CE = dyn_cast<ConstExpr>(Cst);
    if (!CE)
      return std::nullopt;
    // The variable operand's value must be its canonical value at the
    // result type (else the implicit conversion could rewrap it).
    if (!(Var->valType() == E->valType()))
      return std::nullopt;
    auto A = matchAtom(Z, Var);
    if (!A)
      return std::nullopt;
    I128 Off = I128(A->Off) +
               (B->op() == IRBinOp::Add ? I128(CE->value())
                                        : -I128(CE->value()));
    // Wrap check: the ideal result over the variable's whole current
    // range must fit the result type, else the machine may canonicalize.
    Interval VI = Z.varInterval(A->Var);
    int64_t Lo, Hi;
    vtRange(E->valType(), Lo, Hi);
    if (I128(VI.Lo) + Off < Lo || I128(VI.Hi) + Off > Hi)
      return std::nullopt;
    return Atom{A->Var, static_cast<int64_t>(Off)};
  }
  case IRExpr::Kind::Cast: {
    auto A = matchAtom(Z, cast<CastIRExpr>(E)->operand());
    if (!A)
      return std::nullopt;
    // Identity cast: the operand's whole value range fits the target
    // type, so canonicalization is a no-op.
    Interval VI = Z.varInterval(A->Var);
    int64_t Lo, Hi;
    vtRange(E->valType(), Lo, Hi);
    if (I128(VI.Lo) + A->Off < Lo || I128(VI.Hi) + A->Off > Hi)
      return std::nullopt;
    if (E->valType().IsPointer)
      return std::nullopt;
    return A;
  }
  default:
    return std::nullopt;
  }
}

Interval ZoneAnalysis::evalInterval(const ZoneState &Z,
                                    const IRExpr *E) const {
  ValType VT = E->valType();
  switch (E->kind()) {
  case IRExpr::Kind::Const: {
    int64_t V = cast<ConstExpr>(E)->value();
    return {V, V, false};
  }
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return fullRange(VT, false);
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned V = varOfSlot(FA->slotIndex());
      if (V && varType(V) == VT)
        return Z.varInterval(V);
      return fullRange(VT, false);
    }
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address())) {
      unsigned V = varOfGlobal(GA->globalIndex());
      if (V && varType(V) == VT)
        return Z.varInterval(V);
      const IRGlobal &Gl = M.globals()[GA->globalIndex()];
      bool Pure = !T.GlobalStored[GA->globalIndex()] &&
                  !T.GlobalEscaped[GA->globalIndex()];
      if (Pure && Gl.SizeBytes == VT.SizeBytes && !VT.IsPointer) {
        if (Gl.IsExternInput)
          return fullRange(VT, false);
        int64_t V2 = decodeGlobalInit(Gl, VT);
        return {V2, V2, false};
      }
      return fullRange(VT, false);
    }
    return fullRange(VT, false);
  }
  case IRExpr::Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(E);
    return applyUnaryInterval(U->op(), evalInterval(Z, U->operand()), VT);
  }
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    return applyBinaryInterval(B->op(), evalInterval(Z, B->lhs()),
                               evalInterval(Z, B->rhs()), VT);
  }
  case IRExpr::Kind::Cmp: {
    const auto *Cm = cast<CmpExpr>(E);
    return applyCmpInterval(Cm->pred(), evalInterval(Z, Cm->lhs()),
                            evalInterval(Z, Cm->rhs()),
                            Cm->operandValType());
  }
  case IRExpr::Kind::Cast:
    return applyCastInterval(
        evalInterval(Z, cast<CastIRExpr>(E)->operand()), VT);
  }
  return fullRange(VT, false);
}

//===----------------------------------------------------------------------===//
// ZoneAnalysis: transfer
//===----------------------------------------------------------------------===//

namespace {

/// Havoc a cell while keeping its type-range invariant: whatever bytes a
/// write put there, the value read back at the tag type is canonical.
void havocToTypeRange(ZoneState &Z, unsigned V, ValType VT) {
  Z.havoc(V);
  int64_t Lo, Hi;
  vtRange(VT, Lo, Hi);
  Z.clampRange(V, Lo, Hi);
}

} // namespace

void ZoneAnalysis::transferInstr(ZoneState &Z, const Instr &I) const {
  if (Z.isBottom() || numVars() == 0)
    return;
  switch (I.kind()) {
  case Instr::Kind::Store: {
    const auto *St = cast<StoreInstr>(&I);
    unsigned V = 0;
    if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address()))
      V = varOfSlot(FA->slotIndex());
    else if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address()))
      V = varOfGlobal(GA->globalIndex());
    else {
      // Computed store: kill every may-aliased cell. (An empty target
      // set means the VM traps — no cell changes.)
      if (T.PT)
        for (unsigned O : T.PT->addressTargets(FnIndex, St->address())) {
          unsigned W = 0;
          if (T.PT->kindOf(O) == PointsToResult::LocKind::Slot &&
              T.PT->ownerFn(O) == FnIndex)
            W = varOfSlot(T.PT->slotIndexOf(O));
          else if (T.PT->kindOf(O) == PointsToResult::LocKind::Global)
            W = varOfGlobal(T.PT->globalIndexOf(O));
          if (W)
            havocToTypeRange(Z, W, varType(W));
        }
      return;
    }
    if (!V)
      return;
    if (!(St->valType() == varType(V))) { // single-access-VT should hold
      havocToTypeRange(Z, V, varType(V));
      return;
    }
    if (auto A = matchAtom(Z, St->value())) {
      if (A->Var == V)
        Z.shiftVar(V, A->Off);
      else if (A->Var == 0)
        Z.assignConst(V, A->Off);
      else
        Z.assignOffset(V, A->Var, A->Off);
      return;
    }
    Interval VI = evalInterval(Z, St->value());
    Z.havoc(V);
    Z.clampRange(V, VI.Lo, VI.Hi);
    return;
  }
  case Instr::Kind::Copy: {
    const auto *Cp = cast<CopyInstr>(&I);
    if (T.PT)
      for (unsigned O : T.PT->addressTargets(FnIndex, Cp->dst())) {
        unsigned W = 0;
        if (T.PT->kindOf(O) == PointsToResult::LocKind::Slot &&
            T.PT->ownerFn(O) == FnIndex)
          W = varOfSlot(T.PT->slotIndexOf(O));
        else if (T.PT->kindOf(O) == PointsToResult::LocKind::Global)
          W = varOfGlobal(T.PT->globalIndexOf(O));
        if (W)
          havocToTypeRange(Z, W, varType(W));
      }
    return;
  }
  case Instr::Kind::Call: {
    const auto *Ca = cast<CallInstr>(&I);
    if (T.PT) {
      unsigned Callee = T.PT->callGraph().indexOf(Ca->callee());
      if (Callee != CallGraph::kExternal) {
        // An internal callee may write tracked cells only through the
        // may-mod relation (tracked slots are only locally aliased,
        // tracked globals never escape, so external/native callees
        // cannot touch them at all).
        for (unsigned V = 1; V <= numVars(); ++V) {
          const Cell &Ce = VarCell[V - 1];
          unsigned Loc = Ce.IsGlobal
                             ? T.PT->globalLoc(Ce.Index)
                             : T.PT->slotLoc(FnIndex, Ce.Index);
          if (T.PT->mayMod(Callee, Loc))
            havocToTypeRange(Z, V, Ce.VT);
        }
      }
    }
    if (Ca->destSlot()) {
      unsigned V = varOfSlot(*Ca->destSlot());
      if (V)
        havocToTypeRange(Z, V, varType(V));
    }
    return;
  }
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// ZoneAnalysis: branch refinement
//===----------------------------------------------------------------------===//

bool ZoneAnalysis::refineByCond(ZoneState &Z, const IRExpr *Cond,
                                bool Dir) const {
  if (Z.isBottom())
    return true;
  // Shared last resort for zone-inexpressible conditions (e.g. a
  // non-convex Ne over singleton ranges): the whole condition's interval
  // may still *decide* the direction.
  auto Fallback = [&]() -> bool {
    Interval CI = evalInterval(Z, Cond);
    if (Dir && !CI.canBeNonzero()) {
      Z.addBound(0, 0, -1);
      return true;
    }
    if (!Dir && !CI.canBeZero()) {
      Z.addBound(0, 0, -1);
      return true;
    }
    return false;
  };
  if (const auto *Cm = dyn_cast<CmpExpr>(Cond)) {
    ValType OpVT = Cm->operandValType();
    bool Orderable =
        OpVT.SizeBytes < 8 || (OpVT.Signed && !OpVT.IsPointer);
    CmpPred P = Dir ? Cm->pred() : negateCmpPred(Cm->pred());
    std::optional<Atom> LA, RA;
    if (Cm->lhs()->valType() == OpVT)
      LA = matchAtom(Z, Cm->lhs());
    if (Cm->rhs()->valType() == OpVT)
      RA = matchAtom(Z, Cm->rhs());
    // One-sided fallback: a non-atom side contributes its interval
    // corner (a *necessary* consequence of the comparison).
    if (LA && !RA) {
      Interval RI = evalInterval(Z, Cm->rhs());
      RA = Atom{0, 0};
      // encode the corner below via a pseudo-const pair per predicate
      switch (P) {
      case CmpPred::Lt:
      case CmpPred::Le:
      case CmpPred::Eq:
        RA->Off = RI.Hi; // va <= rhs <= RI.Hi side; Ge/Gt handled sym.
        break;
      default:
        RA->Off = RI.Lo;
        break;
      }
      if (P == CmpPred::Ne)
        return Fallback();
      // For Eq we may add both sides; redo with exact corners:
      if (P == CmpPred::Eq) {
        bool Added = false;
        I128 Hi = I128(RI.Hi) - LA->Off, Lo = I128(RI.Lo) - LA->Off;
        Z.addBound(LA->Var, 0, clamp128(Hi));
        Z.addBound(0, LA->Var, clamp128(-Lo));
        Added = true;
        return Added;
      }
    } else if (!LA && RA) {
      Interval LI = evalInterval(Z, Cm->lhs());
      LA = Atom{0, 0};
      switch (P) {
      case CmpPred::Gt:
      case CmpPred::Ge:
      case CmpPred::Eq:
        LA->Off = LI.Hi;
        break;
      default:
        LA->Off = LI.Lo;
        break;
      }
      if (P == CmpPred::Ne)
        return Fallback();
      if (P == CmpPred::Eq) {
        I128 Hi = I128(LI.Hi) - RA->Off, Lo = I128(LI.Lo) - RA->Off;
        Z.addBound(RA->Var, 0, clamp128(Hi));
        Z.addBound(0, RA->Var, clamp128(-Lo));
        return true;
      }
    }
    if (!LA || !RA)
      return Fallback();
    unsigned A = LA->Var, B = RA->Var;
    I128 CA = LA->Off, CB = RA->Off;
    switch (P) {
    case CmpPred::Eq:
      Z.addBound(A, B, clamp128(CB - CA));
      Z.addBound(B, A, clamp128(CA - CB));
      return true;
    case CmpPred::Ne:
      if (A == 0 && B == 0) { // constant condition: decide it
        if (CA == CB)
          Z.addBound(0, 0, -1); // contradiction -> bottom
        return true;
      }
      return Fallback(); // not convex
    case CmpPred::Lt:
      if (!Orderable)
        return Fallback();
      Z.addBound(A, B, clamp128(CB - CA - 1));
      return true;
    case CmpPred::Le:
      if (!Orderable)
        return Fallback();
      Z.addBound(A, B, clamp128(CB - CA));
      return true;
    case CmpPred::Gt:
      if (!Orderable)
        return Fallback();
      Z.addBound(B, A, clamp128(CA - CB - 1));
      return true;
    case CmpPred::Ge:
      if (!Orderable)
        return Fallback();
      Z.addBound(B, A, clamp128(CA - CB));
      return true;
    }
    return Fallback();
  }
  // Raw truth test: `if (e)`.
  if (auto A = matchAtom(Z, Cond)) {
    if (A->Var == 0) { // constant: decide
      bool Truth = A->Off != 0;
      if (Truth != Dir)
        Z.addBound(0, 0, -1);
      return true;
    }
    I128 Val = -I128(A->Off); // e == 0  <=>  var == -Off
    if (!Dir) {
      Z.addBound(A->Var, 0, clamp128(Val));
      Z.addBound(0, A->Var, clamp128(-Val));
      return true;
    }
    // var != -Off: convex only at an interval boundary.
    Interval VI = Z.varInterval(A->Var);
    if (Val < VI.Lo || Val > VI.Hi)
      return true; // already nonzero: condition adds nothing
    if (I128(VI.Lo) == Val) {
      Z.addBound(0, A->Var, clamp128(-(Val + 1)));
      return true;
    }
    if (I128(VI.Hi) == Val) {
      Z.addBound(A->Var, 0, clamp128(Val - 1));
      return true;
    }
    return Fallback();
  }
  return Fallback();
}

//===----------------------------------------------------------------------===//
// ZoneAnalysis: fixpoint
//===----------------------------------------------------------------------===//

void ZoneAnalysis::flowOut(unsigned B, const ZoneState &ExitState,
                           std::vector<std::optional<ZoneState>> &PerSucc)
    const {
  const BasicBlock &BB = G.block(B);
  PerSucc.assign(BB.Succs.size(), std::nullopt);
  const Instr &Last = *F.Instrs[BB.End - 1];
  if (const auto *CJ = dyn_cast<CondJumpInstr>(&Last)) {
    unsigned N = static_cast<unsigned>(F.Instrs.size());
    unsigned TrueBlock =
        CJ->trueTarget() < N ? G.blockOf(CJ->trueTarget()) : Cfg::kUnset;
    unsigned FalseBlock =
        CJ->falseTarget() < N ? G.blockOf(CJ->falseTarget()) : Cfg::kUnset;
    for (size_t J = 0; J < BB.Succs.size(); ++J) {
      bool IsTrue = BB.Succs[J] == TrueBlock;
      bool IsFalse = BB.Succs[J] == FalseBlock;
      if (!IsTrue && !IsFalse)
        continue;
      ZoneState Z = ExitState;
      if (IsTrue != IsFalse) // both-directions edge: no refinement
        refineByCond(Z, CJ->cond(), IsTrue);
      if (!Z.isBottom())
        PerSucc[J] = std::move(Z);
    }
    return;
  }
  for (size_t J = 0; J < BB.Succs.size(); ++J)
    PerSucc[J] = ExitState;
}

void ZoneAnalysis::run() {
  unsigned N = G.numBlocks();
  In.assign(N, std::nullopt);
  Visits.assign(N, 0);
  if (N == 0)
    return;
  In[G.entry()] = entryState();

  std::deque<unsigned> Worklist{G.entry()};
  std::vector<bool> InList(N, false);
  InList[G.entry()] = true;
  std::vector<std::optional<ZoneState>> PerSucc;
  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    InList[B] = false;
    if (++Visits[B] > C.MaxBlockVisits) {
      Ok = false;
      return;
    }
    ZoneState S = *In[B];
    const BasicBlock &BB = G.block(B);
    for (unsigned I = BB.Begin; I < BB.End; ++I) {
      transferInstr(S, *F.Instrs[I]);
      if (S.isBottom())
        break;
    }
    if (S.isBottom())
      continue;
    flowOut(B, S, PerSucc);
    for (size_t J = 0; J < BB.Succs.size(); ++J) {
      if (!PerSucc[J])
        continue;
      unsigned Succ = BB.Succs[J];
      bool Changed;
      if (!In[Succ]) {
        In[Succ] = std::move(*PerSucc[J]);
        Changed = true;
      } else {
        bool Widen = Visits[Succ] >= C.WidenAfter;
        Changed = In[Succ]->joinWith(*PerSucc[J], Widen);
      }
      if (Changed && !InList[Succ]) {
        Worklist.push_back(Succ);
        InList[Succ] = true;
      }
    }
  }
}

bool ZoneAnalysis::blockReachable(unsigned B) const {
  return !Ok || In[B].has_value();
}

bool ZoneAnalysis::instrReachable(unsigned InstrIndex) const {
  return blockReachable(G.blockOf(InstrIndex));
}

std::optional<ZoneState>
ZoneAnalysis::stateBefore(unsigned InstrIndex) const {
  unsigned B = G.blockOf(InstrIndex);
  if (!Ok || !In[B])
    return std::nullopt;
  ZoneState S = *In[B];
  for (unsigned I = G.block(B).Begin; I < InstrIndex; ++I) {
    transferInstr(S, *F.Instrs[I]);
    if (S.isBottom())
      break;
  }
  return S;
}
