//===- Taint.cpp - Input-taint reachability fixpoint ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

#include <unordered_map>

using namespace dart;

namespace {

/// Escape/seed pass state shared with the fixpoint.
struct Builder {
  const IRModule &M;
  TaintResult &R;
  std::unordered_map<std::string, unsigned> FnIndexOf;

  Builder(const IRModule &M, TaintResult &R) : M(M), R(R) {
    for (unsigned I = 0; I < M.functions().size(); ++I)
      FnIndexOf[M.functions()[I]->Name] = I;
  }

  /// Mark every FrameAddr/GlobalAddr occurring in \p E as escaped, except
  /// when \p E itself is a direct address whose access width is
  /// \p DirectWidth (the Load/Store width). DirectWidth 0 = no direct use.
  void walkAddresses(unsigned Fn, const IRExpr *E, uint64_t DirectWidth) {
    switch (E->kind()) {
    case IRExpr::Kind::Const:
      return;
    case IRExpr::Kind::FrameAddr: {
      unsigned S = cast<FrameAddrExpr>(E)->slotIndex();
      const IRFunction &F = *M.functions()[Fn];
      if (DirectWidth == 0 || S >= F.Slots.size() ||
          F.Slots[S].SizeBytes != DirectWidth)
        R.SlotEscaped[Fn][S] = true;
      return;
    }
    case IRExpr::Kind::GlobalAddr: {
      unsigned G = cast<GlobalAddrExpr>(E)->globalIndex();
      if (DirectWidth == 0 || M.globals()[G].SizeBytes != DirectWidth)
        R.GlobalEscaped[G] = true;
      return;
    }
    case IRExpr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      walkAddresses(Fn, L->address(), L->valType().SizeBytes);
      return;
    }
    case IRExpr::Kind::Unary:
      walkAddresses(Fn, cast<UnaryIRExpr>(E)->operand(), 0);
      return;
    case IRExpr::Kind::Binary:
      walkAddresses(Fn, cast<BinaryIRExpr>(E)->lhs(), 0);
      walkAddresses(Fn, cast<BinaryIRExpr>(E)->rhs(), 0);
      return;
    case IRExpr::Kind::Cmp:
      walkAddresses(Fn, cast<CmpExpr>(E)->lhs(), 0);
      walkAddresses(Fn, cast<CmpExpr>(E)->rhs(), 0);
      return;
    case IRExpr::Kind::Cast:
      walkAddresses(Fn, cast<CastIRExpr>(E)->operand(), 0);
      return;
    }
  }

  void escapePass() {
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      const IRFunction &F = *M.functions()[Fn];
      for (const InstrPtr &IP : F.Instrs) {
        const Instr &I = *IP;
        switch (I.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&I);
          walkAddresses(Fn, St->address(), St->valType().SizeBytes);
          walkAddresses(Fn, St->value(), 0);
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address()))
            R.GlobalStored[GA->globalIndex()] = true;
          break;
        }
        case Instr::Kind::Copy: {
          // Bytewise copies sidestep the scalar Load/Store discipline the
          // slot-precise analyses rely on: both operands escape.
          const auto *C = cast<CopyInstr>(&I);
          walkAddresses(Fn, C->dst(), 0);
          walkAddresses(Fn, C->src(), 0);
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->dst()))
            R.GlobalStored[GA->globalIndex()] = true;
          break;
        }
        case Instr::Kind::CondJump:
          walkAddresses(Fn, cast<CondJumpInstr>(&I)->cond(), 0);
          break;
        case Instr::Kind::Call: {
          const auto *C = cast<CallInstr>(&I);
          for (const IRExprPtr &A : C->args())
            walkAddresses(Fn, A.get(), 0);
          auto It = FnIndexOf.find(C->callee());
          if (It != FnIndexOf.end())
            R.InternallyCalled[It->second] = true;
          break;
        }
        case Instr::Kind::Ret:
          if (const IRExpr *V = cast<RetInstr>(&I)->value())
            walkAddresses(Fn, V, 0);
          break;
        case Instr::Kind::Jump:
        case Instr::Kind::Abort:
        case Instr::Kind::Halt:
          break;
        }
      }
    }
  }

  /// One propagation sweep; returns true if any taint bit was added.
  bool propagate() {
    bool Changed = false;
    const PointsToResult &PT = *R.PT;
    auto TaintLoc = [&](unsigned Loc) {
      if (Loc < R.LocTainted.size() && !R.LocTainted[Loc]) {
        R.LocTainted[Loc] = true;
        Changed = true;
      }
    };
    auto TaintSlot = [&](unsigned Fn, unsigned S) {
      if (S < M.functions()[Fn]->Slots.size())
        TaintLoc(PT.slotLoc(Fn, S));
    };
    // Store/Copy through a computed address: taint exactly the may-alias
    // targets. An empty target set means the VM would trap — no cell to
    // taint.
    auto TaintWrite = [&](unsigned Fn, const IRExpr *Addr) {
      if (const auto *FA = dyn_cast<FrameAddrExpr>(Addr))
        TaintSlot(Fn, FA->slotIndex());
      else if (const auto *GA = dyn_cast<GlobalAddrExpr>(Addr))
        TaintLoc(PT.globalLoc(GA->globalIndex()));
      else
        for (unsigned O : PT.addressTargets(Fn, Addr))
          TaintLoc(O);
    };
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      const IRFunction &F = *M.functions()[Fn];
      for (const InstrPtr &IP : F.Instrs) {
        const Instr &I = *IP;
        switch (I.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&I);
          if (R.exprTainted(Fn, St->value()))
            TaintWrite(Fn, St->address());
          break;
        }
        case Instr::Kind::Copy: {
          // Bytewise copy: tainted iff some source cell may be tainted.
          const auto *C = cast<CopyInstr>(&I);
          bool SrcTainted;
          if (const auto *FA = dyn_cast<FrameAddrExpr>(C->src()))
            SrcTainted = R.LocTainted[PT.slotLoc(Fn, FA->slotIndex())];
          else if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->src()))
            SrcTainted = R.LocTainted[PT.globalLoc(GA->globalIndex())];
          else
            SrcTainted = R.anyTargetTainted(Fn, C->src());
          if (SrcTainted)
            TaintWrite(Fn, C->dst());
          break;
        }
        case Instr::Kind::Call: {
          const auto *C = cast<CallInstr>(&I);
          auto It = FnIndexOf.find(C->callee());
          if (It != FnIndexOf.end()) {
            unsigned Callee = It->second;
            const IRFunction &CF = *M.functions()[Callee];
            for (unsigned A = 0;
                 A < C->args().size() && A < CF.NumParams; ++A)
              if (R.exprTainted(Fn, C->args()[A].get()))
                TaintSlot(Callee, A);
            if (C->destSlot() && R.RetTainted[Callee])
              TaintSlot(Fn, *C->destSlot());
          } else if (C->destSlot()) {
            // Native or external callee: externals return fresh inputs
            // (§3.1), natives are opaque.
            TaintSlot(Fn, *C->destSlot());
          }
          break;
        }
        case Instr::Kind::Ret: {
          const auto *Ret = cast<RetInstr>(&I);
          if (Ret->value() && !R.RetTainted[Fn] &&
              R.exprTainted(Fn, Ret->value())) {
            R.RetTainted[Fn] = true;
            Changed = true;
          }
          break;
        }
        default:
          break;
        }
      }
    }
    return Changed;
  }
};

} // namespace

bool TaintResult::anyTargetTainted(unsigned FnIndex,
                                   const IRExpr *Addr) const {
  std::vector<unsigned> Targets = PT->addressTargets(FnIndex, Addr);
  if (Targets.empty())
    return true;
  for (unsigned O : Targets)
    if (O < LocTainted.size() && LocTainted[O])
      return true;
  return false;
}

bool TaintResult::exprTainted(unsigned FnIndex, const IRExpr *E) const {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return false; // addresses are concrete
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      if (S >= SlotTainted[FnIndex].size())
        return true;
      return PT ? LocTainted[PT->slotLoc(FnIndex, S)]
                : SlotTainted[FnIndex][S];
    }
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      return PT ? LocTainted[PT->globalLoc(GA->globalIndex())]
                : GlobalTainted[GA->globalIndex()];
    // Computed address: tainted iff some may-target cell is (or the
    // address is untracked). Without the alias layer, conservatively
    // tainted.
    return !PT || anyTargetTainted(FnIndex, L->address());
  }
  case IRExpr::Kind::Unary:
    return exprTainted(FnIndex, cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Binary:
    return exprTainted(FnIndex, cast<BinaryIRExpr>(E)->lhs()) ||
           exprTainted(FnIndex, cast<BinaryIRExpr>(E)->rhs());
  case IRExpr::Kind::Cmp:
    return exprTainted(FnIndex, cast<CmpExpr>(E)->lhs()) ||
           exprTainted(FnIndex, cast<CmpExpr>(E)->rhs());
  case IRExpr::Kind::Cast:
    return exprTainted(FnIndex, cast<CastIRExpr>(E)->operand());
  }
  return true;
}

TaintResult dart::runTaintAnalysis(const IRModule &M,
                                   const std::string &ToplevelName) {
  TaintResult R;
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  unsigned NumGlobals = static_cast<unsigned>(M.globals().size());
  R.SlotTainted.resize(NumFns);
  R.SlotEscaped.resize(NumFns);
  for (unsigned I = 0; I < NumFns; ++I) {
    R.SlotTainted[I].assign(M.functions()[I]->Slots.size(), false);
    R.SlotEscaped[I].assign(M.functions()[I]->Slots.size(), false);
  }
  R.RetTainted.assign(NumFns, false);
  R.GlobalTainted.assign(NumGlobals, false);
  R.GlobalStored.assign(NumGlobals, false);
  R.GlobalEscaped.assign(NumGlobals, false);
  R.InternallyCalled.assign(NumFns, false);

  R.PT = std::make_shared<PointsToResult>(runPointsToAnalysis(M, ToplevelName));
  R.LocTainted.assign(R.PT->numLocs(), false);

  Builder B(M, R);
  B.escapePass();

  // Seeds: the driver binds fresh inputs to the toplevel's parameters and
  // to every extern variable each run (§3.1), and owns everything behind
  // the External location. Escaped storage is NOT blanket-tainted any
  // more — the propagation sweep taints exactly the may-alias targets of
  // each tainted store.
  R.LocTainted[R.PT->externalLoc()] = true;
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    if (F.Name == ToplevelName)
      for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P)
        R.LocTainted[R.PT->slotLoc(Fn, P)] = true;
  }
  for (unsigned G = 0; G < NumGlobals; ++G)
    if (M.globals()[G].IsExternInput)
      R.LocTainted[R.PT->globalLoc(G)] = true;

  while (B.propagate()) {
  }

  // Mirror the location bits into the legacy per-slot/per-global views.
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    for (unsigned S = 0; S < M.functions()[Fn]->Slots.size(); ++S)
      R.SlotTainted[Fn][S] = R.LocTainted[R.PT->slotLoc(Fn, S)];
  for (unsigned G = 0; G < NumGlobals; ++G)
    R.GlobalTainted[G] = R.LocTainted[R.PT->globalLoc(G)];
  return R;
}
