//===- Taint.cpp - Input-taint reachability fixpoint ------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

#include <unordered_map>

using namespace dart;

namespace {

/// Escape/seed pass state shared with the fixpoint.
struct Builder {
  const IRModule &M;
  TaintResult &R;
  std::unordered_map<std::string, unsigned> FnIndexOf;

  Builder(const IRModule &M, TaintResult &R) : M(M), R(R) {
    for (unsigned I = 0; I < M.functions().size(); ++I)
      FnIndexOf[M.functions()[I]->Name] = I;
  }

  /// Mark every FrameAddr/GlobalAddr occurring in \p E as escaped, except
  /// when \p E itself is a direct address whose access width is
  /// \p DirectWidth (the Load/Store width). DirectWidth 0 = no direct use.
  void walkAddresses(unsigned Fn, const IRExpr *E, uint64_t DirectWidth) {
    switch (E->kind()) {
    case IRExpr::Kind::Const:
      return;
    case IRExpr::Kind::FrameAddr: {
      unsigned S = cast<FrameAddrExpr>(E)->slotIndex();
      const IRFunction &F = *M.functions()[Fn];
      if (DirectWidth == 0 || S >= F.Slots.size() ||
          F.Slots[S].SizeBytes != DirectWidth)
        R.SlotEscaped[Fn][S] = true;
      return;
    }
    case IRExpr::Kind::GlobalAddr: {
      unsigned G = cast<GlobalAddrExpr>(E)->globalIndex();
      if (DirectWidth == 0 || M.globals()[G].SizeBytes != DirectWidth)
        R.GlobalEscaped[G] = true;
      return;
    }
    case IRExpr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      walkAddresses(Fn, L->address(), L->valType().SizeBytes);
      return;
    }
    case IRExpr::Kind::Unary:
      walkAddresses(Fn, cast<UnaryIRExpr>(E)->operand(), 0);
      return;
    case IRExpr::Kind::Binary:
      walkAddresses(Fn, cast<BinaryIRExpr>(E)->lhs(), 0);
      walkAddresses(Fn, cast<BinaryIRExpr>(E)->rhs(), 0);
      return;
    case IRExpr::Kind::Cmp:
      walkAddresses(Fn, cast<CmpExpr>(E)->lhs(), 0);
      walkAddresses(Fn, cast<CmpExpr>(E)->rhs(), 0);
      return;
    case IRExpr::Kind::Cast:
      walkAddresses(Fn, cast<CastIRExpr>(E)->operand(), 0);
      return;
    }
  }

  void escapePass() {
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      const IRFunction &F = *M.functions()[Fn];
      for (const InstrPtr &IP : F.Instrs) {
        const Instr &I = *IP;
        switch (I.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&I);
          walkAddresses(Fn, St->address(), St->valType().SizeBytes);
          walkAddresses(Fn, St->value(), 0);
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address()))
            R.GlobalStored[GA->globalIndex()] = true;
          break;
        }
        case Instr::Kind::Copy: {
          // Bytewise copies sidestep the scalar Load/Store discipline the
          // slot-precise analyses rely on: both operands escape.
          const auto *C = cast<CopyInstr>(&I);
          walkAddresses(Fn, C->dst(), 0);
          walkAddresses(Fn, C->src(), 0);
          if (const auto *GA = dyn_cast<GlobalAddrExpr>(C->dst()))
            R.GlobalStored[GA->globalIndex()] = true;
          break;
        }
        case Instr::Kind::CondJump:
          walkAddresses(Fn, cast<CondJumpInstr>(&I)->cond(), 0);
          break;
        case Instr::Kind::Call: {
          const auto *C = cast<CallInstr>(&I);
          for (const IRExprPtr &A : C->args())
            walkAddresses(Fn, A.get(), 0);
          auto It = FnIndexOf.find(C->callee());
          if (It != FnIndexOf.end())
            R.InternallyCalled[It->second] = true;
          break;
        }
        case Instr::Kind::Ret:
          if (const IRExpr *V = cast<RetInstr>(&I)->value())
            walkAddresses(Fn, V, 0);
          break;
        case Instr::Kind::Jump:
        case Instr::Kind::Abort:
        case Instr::Kind::Halt:
          break;
        }
      }
    }
  }

  /// One propagation sweep; returns true if any taint bit was added.
  bool propagate() {
    bool Changed = false;
    auto TaintSlot = [&](unsigned Fn, unsigned S) {
      if (S < R.SlotTainted[Fn].size() && !R.SlotTainted[Fn][S]) {
        R.SlotTainted[Fn][S] = true;
        Changed = true;
      }
    };
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn) {
      const IRFunction &F = *M.functions()[Fn];
      for (const InstrPtr &IP : F.Instrs) {
        const Instr &I = *IP;
        switch (I.kind()) {
        case Instr::Kind::Store: {
          const auto *St = cast<StoreInstr>(&I);
          if (!R.exprTainted(Fn, St->value()))
            break;
          if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address()))
            TaintSlot(Fn, FA->slotIndex());
          else if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address())) {
            if (!R.GlobalTainted[GA->globalIndex()]) {
              R.GlobalTainted[GA->globalIndex()] = true;
              Changed = true;
            }
          }
          // Computed-address stores only reach escaped storage, which is
          // already permanently tainted.
          break;
        }
        case Instr::Kind::Call: {
          const auto *C = cast<CallInstr>(&I);
          auto It = FnIndexOf.find(C->callee());
          if (It != FnIndexOf.end()) {
            unsigned Callee = It->second;
            const IRFunction &CF = *M.functions()[Callee];
            for (unsigned A = 0;
                 A < C->args().size() && A < CF.NumParams; ++A)
              if (R.exprTainted(Fn, C->args()[A].get()))
                TaintSlot(Callee, A);
            if (C->destSlot() && R.RetTainted[Callee])
              TaintSlot(Fn, *C->destSlot());
          } else if (C->destSlot()) {
            // Native or external callee: externals return fresh inputs
            // (§3.1), natives are opaque.
            TaintSlot(Fn, *C->destSlot());
          }
          break;
        }
        case Instr::Kind::Ret: {
          const auto *Ret = cast<RetInstr>(&I);
          if (Ret->value() && !R.RetTainted[Fn] &&
              R.exprTainted(Fn, Ret->value())) {
            R.RetTainted[Fn] = true;
            Changed = true;
          }
          break;
        }
        default:
          break;
        }
      }
    }
    return Changed;
  }
};

} // namespace

bool TaintResult::exprTainted(unsigned FnIndex, const IRExpr *E) const {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::FrameAddr:
  case IRExpr::Kind::GlobalAddr:
    return false; // addresses are concrete
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address())) {
      unsigned S = FA->slotIndex();
      return S >= SlotTainted[FnIndex].size() || SlotTainted[FnIndex][S];
    }
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      return GlobalTainted[GA->globalIndex()];
    return true; // computed address: arrays, pointers, heap
  }
  case IRExpr::Kind::Unary:
    return exprTainted(FnIndex, cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Binary:
    return exprTainted(FnIndex, cast<BinaryIRExpr>(E)->lhs()) ||
           exprTainted(FnIndex, cast<BinaryIRExpr>(E)->rhs());
  case IRExpr::Kind::Cmp:
    return exprTainted(FnIndex, cast<CmpExpr>(E)->lhs()) ||
           exprTainted(FnIndex, cast<CmpExpr>(E)->rhs());
  case IRExpr::Kind::Cast:
    return exprTainted(FnIndex, cast<CastIRExpr>(E)->operand());
  }
  return true;
}

TaintResult dart::runTaintAnalysis(const IRModule &M,
                                   const std::string &ToplevelName) {
  TaintResult R;
  unsigned NumFns = static_cast<unsigned>(M.functions().size());
  unsigned NumGlobals = static_cast<unsigned>(M.globals().size());
  R.SlotTainted.resize(NumFns);
  R.SlotEscaped.resize(NumFns);
  for (unsigned I = 0; I < NumFns; ++I) {
    R.SlotTainted[I].assign(M.functions()[I]->Slots.size(), false);
    R.SlotEscaped[I].assign(M.functions()[I]->Slots.size(), false);
  }
  R.RetTainted.assign(NumFns, false);
  R.GlobalTainted.assign(NumGlobals, false);
  R.GlobalStored.assign(NumGlobals, false);
  R.GlobalEscaped.assign(NumGlobals, false);
  R.InternallyCalled.assign(NumFns, false);

  Builder B(M, R);
  B.escapePass();

  // Seeds: the driver binds fresh inputs to the toplevel's parameters and
  // to every extern variable each run (§3.1); escaped storage may be
  // handed a symbolic value through any alias.
  for (unsigned Fn = 0; Fn < NumFns; ++Fn) {
    const IRFunction &F = *M.functions()[Fn];
    if (F.Name == ToplevelName)
      for (unsigned P = 0; P < F.NumParams && P < F.Slots.size(); ++P)
        R.SlotTainted[Fn][P] = true;
    for (unsigned S = 0; S < F.Slots.size(); ++S)
      if (R.SlotEscaped[Fn][S])
        R.SlotTainted[Fn][S] = true;
  }
  for (unsigned G = 0; G < NumGlobals; ++G)
    if (M.globals()[G].IsExternInput || R.GlobalEscaped[G])
      R.GlobalTainted[G] = true;

  while (B.propagate()) {
  }
  return R;
}
