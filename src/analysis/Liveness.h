//===- Liveness.h - Slot liveness and definite assignment -------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two classic bitvector problems over the CFG, instantiated on the
/// generic worklist solver (Dataflow.h), both restricted to
/// *trackable* slots — scalar frame slots whose address never escapes
/// (see Taint.h): for those, every access in the IR is a direct
/// width-matching Load/Store, so use/def sets are exact.
///
///  - Backward liveness: a Store to a slot that is dead afterwards is a
///    dead store (reported by the lint pass for named slots).
///  - Forward definite assignment: a Load from a slot that is
///    *definitely unassigned* — no path from the entry assigns it — is an
///    uninitialized read. Requiring "unassigned on all paths" keeps the
///    lint free of false positives on merge points.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_LIVENESS_H
#define DART_ANALYSIS_LIVENESS_H

#include "analysis/Cfg.h"
#include "analysis/Taint.h"

#include <vector>

namespace dart {

struct LivenessResult {
  /// Per tracked slot: is it live at the given instruction boundary?
  /// LiveAfter[i] = live-out of instruction i (bit per slot).
  std::vector<std::vector<bool>> LiveAfter;
  /// DefinitelyUnassignedBefore[i][s]: no path from the entry to
  /// instruction i assigns slot s. Parameters count as assigned.
  std::vector<std::vector<bool>> DefinitelyUnassignedBefore;
  /// Which slots the analyses track (scalar, non-escaped).
  std::vector<bool> Tracked;
};

/// Run both problems for the function underlying \p G.
LivenessResult runLivenessAnalysis(const Cfg &G, const TaintResult &T,
                                   unsigned FnIndex);

} // namespace dart

#endif // DART_ANALYSIS_LIVENESS_H
