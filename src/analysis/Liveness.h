//===- Liveness.h - Slot liveness and definite assignment -------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two classic bitvector problems over the CFG, instantiated on the
/// generic worklist solver (Dataflow.h), both restricted to
/// *trackable* slots (see aliasTrackableSlots in PointsTo.h): scalar
/// frame slots that are at most locally aliased. Direct accesses give
/// exact use/def sets; computed accesses are resolved through the
/// points-to layer — a may-alias load is a use, a may-alias store is a
/// weak def (never kills liveness, but clears "definitely unassigned"),
/// and a must-alias store (singleton target, matching width, no
/// recursion) is as strong as a direct one.
///
///  - Backward liveness: a Store to a slot that is dead afterwards is a
///    dead store (reported by the lint pass for named slots).
///  - Forward definite assignment: a Load from a slot that is
///    *definitely unassigned* — no path from the entry assigns it — is an
///    uninitialized read. Requiring "unassigned on all paths" keeps the
///    lint free of false positives on merge points.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_LIVENESS_H
#define DART_ANALYSIS_LIVENESS_H

#include "analysis/Cfg.h"
#include "analysis/Taint.h"

#include <vector>

namespace dart {

struct LivenessResult {
  /// Per tracked slot: is it live at the given instruction boundary?
  /// LiveAfter[i] = live-out of instruction i (bit per slot).
  std::vector<std::vector<bool>> LiveAfter;
  /// DefinitelyUnassignedBefore[i][s]: no path from the entry to
  /// instruction i assigns slot s. Parameters count as assigned.
  std::vector<std::vector<bool>> DefinitelyUnassignedBefore;
  /// Which slots the analyses track (scalar, at most locally aliased).
  std::vector<bool> Tracked;
};

/// Run both problems for the function underlying \p G.
LivenessResult runLivenessAnalysis(const Cfg &G, const TaintResult &T,
                                   unsigned FnIndex);

} // namespace dart

#endif // DART_ANALYSIS_LIVENESS_H
