//===- Interval.h - Constant/interval propagation over the IR ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Path-insensitive interval (constant-range) propagation per function,
/// with conditional-constant-propagation-style executable-edge tracking:
/// a CondJump whose condition interval is monovalent ([0,0] or 0-free)
/// only propagates state along the feasible edge, and blocks never
/// reached by a feasible edge are statically unreachable.
///
/// Intervals are over *canonical* values — the int64 a ValType-typed
/// object holds after `ValType::canonicalize` — and every transfer
/// mirrors the interpreter's wrap-around semantics: an operation whose
/// ideal (unbounded integer) result range fits the result type keeps the
/// ideal corners; anything that may wrap falls to the full type range.
///
/// Each interval carries an `Exact` bit, the bridge between machine
/// semantics and the solver's ideal-integer theory: when set, every
/// operation on the chains producing this value is wrap-free for *all*
/// in-domain input values, so the concolic engine's linear image of the
/// value evaluates identically over ideal integers. A branch that is both
/// monovalent and Exact is therefore skippable without consulting the
/// solver — the negated path constraint is unsatisfiable in the solver's
/// own theory (see StaticSummary.h). Values the symbolic evaluator always
/// concretizes (Div/Rem/Shr/And/Or/Xor/BitNot results) are vacuously
/// Exact: they enter linear images only as runtime constants, which their
/// interval bounds.
///
/// No branch refinement is performed (conditions never narrow operand
/// intervals): a fact proved here holds for every execution regardless of
/// path, which is what the pruning soundness argument needs.
///
//===----------------------------------------------------------------------===//

#ifndef DART_ANALYSIS_INTERVAL_H
#define DART_ANALYSIS_INTERVAL_H

#include "analysis/Cfg.h"
#include "analysis/Taint.h"

#include <optional>
#include <string>
#include <vector>

namespace dart {

/// Inclusive range of canonical int64 values, plus the ideal-theory
/// transfer bit (see file comment).
struct Interval {
  int64_t Lo = 0;
  int64_t Hi = 0;
  bool Exact = false;

  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }
  bool isSingleton() const { return Lo == Hi; }
  /// Can the value be zero / nonzero? (The two CondJump directions.)
  bool canBeZero() const { return contains(0); }
  bool canBeNonzero() const { return Lo != 0 || Hi != 0; }

  std::string toString() const;
};

/// The canonical-value range of \p VT (what `canonicalize` maps into).
void vtRange(ValType VT, int64_t &Lo, int64_t &Hi);
Interval fullRange(ValType VT, bool Exact = false);

/// The interval transfer of one operation — the combinators
/// IntervalAnalysis::evalExpr is built from, exposed so the relational
/// zone domain (Zone.h) can re-evaluate expressions against sharper
/// operand bounds without duplicating the wrap-around discipline.
Interval applyBinaryInterval(IRBinOp Op, Interval A, Interval B, ValType VT);
Interval applyCmpInterval(CmpPred Pred, Interval A, Interval B,
                          ValType OperandVT);
Interval applyUnaryInterval(IRUnOp Op, Interval A, ValType VT);
Interval applyCastInterval(Interval A, ValType VT);
/// Canonical value of global \p G's initializer decoded at \p VT.
int64_t decodeGlobalInit(const IRGlobal &G, ValType VT);

/// Abstract value of one frame slot: the type it was last stored at and
/// the interval of its canonical value.
struct SlotFact {
  ValType VT;
  Interval I;
};

/// Per-program-point state: reachability plus one optional fact per frame
/// slot (nullopt = unknown/top; escaped slots are never tracked).
struct AbsState {
  bool Reachable = false;
  std::vector<std::optional<SlotFact>> Slots;
};

class IntervalAnalysis {
public:
  struct Config {
    /// Give the function's parameters Exact full-domain intervals. Only
    /// sound for the toplevel when the generated driver is its sole
    /// caller: internal call sites pass arbitrary expressions whose
    /// linear images need not match the parameter's machine value.
    bool ParamsExact = false;
    /// Widen a slot to top when its joined interval is still changing
    /// after this many visits to a block (loop heads).
    unsigned WidenAfter = 8;
    /// Give up (conservatively: everything reachable, nothing monovalent)
    /// if any block is visited this many times.
    unsigned MaxBlockVisits = 64;
  };

  IntervalAnalysis(const IRModule &M, const Cfg &G, const TaintResult &T,
                   unsigned FnIndex, Config C);

  void run();

  /// May this slot carry a precise whole-slot fact? Alias-aware: locally
  /// aliased slots are trackable (computed accesses are resolved through
  /// the points-to layer at each instruction); without the alias layer,
  /// falls back to "never escaped".
  bool trackable(unsigned S) const {
    return S < Trackable.size() && Trackable[S];
  }

  /// False when the fixpoint hit MaxBlockVisits; all queries then return
  /// their conservative answers.
  bool converged() const { return Ok; }

  /// Is there a statically feasible path from the entry to \p B?
  bool blockExecutable(unsigned B) const;
  bool instrExecutable(unsigned InstrIndex) const;

  /// Fixpoint state at the start of block \p B.
  const AbsState &inState(unsigned B) const { return In[B]; }
  /// State just before \p InstrIndex (walks the block prefix).
  AbsState stateBefore(unsigned InstrIndex) const;

  /// Interval of \p E evaluated in \p S. \p S must be reachable.
  Interval evalExpr(const AbsState &S, const IRExpr *E) const;

  /// Apply \p I's effect on \p S (public so lint passes can walk blocks
  /// instruction by instruction).
  void transferInstr(AbsState &S, const Instr &I) const;

private:
  const IRModule &M;
  const Cfg &G;
  const TaintResult &T;
  unsigned FnIndex;
  Config C;
  const IRFunction &F;
  std::vector<bool> Trackable;
  bool Ok = true;
  std::vector<AbsState> In;
  std::vector<unsigned> Visits;

  AbsState entryState() const;
  bool joinInto(AbsState &Into, const AbsState &From, bool Widen) const;
  /// The states this block hands to each CFG successor, in the same
  /// order as `G.block(B).Succs`; infeasible edges get Reachable=false.
  void flowOut(unsigned B, const AbsState &InState,
               std::vector<AbsState> &PerSucc) const;
};

} // namespace dart

#endif // DART_ANALYSIS_INTERVAL_H
