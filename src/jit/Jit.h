//===- Jit.h - Baseline JIT: IR blocks as native x86-64 code ----*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-tier layer: straight-line arithmetic, direct scalar
/// loads/stores and branches of the RAM-machine IR compile to x86-64
/// machine code; everything else (calls, copies, returns, computed
/// addresses, div/rem fault paths, symbolic stores) trampolines back into
/// the interpreter, which remains the semantic oracle. A DART session is
/// byte-identical with the JIT on or off — same runs, bugs, models,
/// coverage, step counts — because the compiled subset replicates
/// Interp::eval exactly and every conditional still reaches the
/// instrumentation hooks.
///
/// Two tiers are compiled per function:
///
///  - **Blocks** (hook-safe): used whenever ExecHooks are installed, i.e.
///    every concolic run. A block covers a maximal run of compilable
///    instructions from a leader PC and ends *at* a conditional — the
///    branch value is computed natively, then the runtime fires onBranch
///    (checkpoint capture, Fig. 4 stack update) exactly as the interpreter
///    would. Stores compile only when the interprocedural taint analysis
///    (src/analysis/Taint.h, layered on aliasTrackableSlots points-to)
///    proves both the destination cell and the stored expression can never
///    be symbolic: for such stores ConcolicRun::onStore is a no-op
///    (evaluate returns concrete, eraseRange touches no cells), so
///    skipping the hook is invisible.
///
///  - **Units** (hook-free): used when no hooks are installed — the §4.1
///    random-testing baseline. The whole function body becomes one native
///    unit with internal jumps; conditionals branch natively, and the unit
///    only exits at non-compilable instructions or when the remaining step
///    budget can't cover the next straight-line run (preserving the exact
///    StepLimit semantics of the per-instruction interpreter counter).
///
/// Cell addressing: the compiled subset only touches direct frame slots
/// and globals — each is its own COW region at offset 0, so the runtime
/// passes an array of raw host byte pointers (derived fresh at every
/// native entry via Memory::jitCellPtr, which pins written pages private
/// ahead of the write — the COW page rule snapshots rely on).
///
//===----------------------------------------------------------------------===//

#ifndef DART_JIT_JIT_H
#define DART_JIT_JIT_H

#include "ir/IR.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dart::jit {

/// Is native execution available in this build on this machine? False on
/// non-x86-64 hosts, under sanitizers, and when configured with
/// -DDART_JIT=OFF — callers fall back to the interpreter silently.
bool jitSupported();

/// One cell a compiled fragment reads or writes: a frame slot of the
/// function (IsGlobal false) or a module global. The runtime resolves the
/// key to a raw host pointer at every native entry.
struct SlotKey {
  bool IsGlobal = false;
  bool Write = false;
  unsigned Index = 0;
};

/// Hard cap on distinct cells per compiled fragment (the runtime derives
/// pointers into a fixed-size stack array).
inline constexpr size_t kMaxCells = 64;

/// Hook-safe tier: int64_t (*)(cell pointers) returning the condition
/// value for CondBranch terminators (unused otherwise).
using BlockFn = int64_t (*)(uint8_t *const *Cells);

struct CompiledBlock {
  BlockFn Code = nullptr;
  /// Interpreter steps the block retires, including a Jump/CondJump
  /// terminator (FallThrough terminators are not executed natively).
  unsigned NumInstrs = 0;
  /// FallThrough: first PC the interpreter must execute. CondBranch: the
  /// conditional's own PC (the pc the branch hook contract requires).
  unsigned TermPC = 0;
  enum class Term : uint8_t { FallThrough, Jump, CondBranch };
  Term Kind = Term::FallThrough;
  unsigned JumpTarget = 0;           ///< Term::Jump
  const CondJumpInstr *CJ = nullptr; ///< Term::CondBranch
  std::vector<SlotKey> Keys;
  size_t CodeOff = 0; ///< build-time offset into the code image
};

/// Hook-free tier exit descriptor, returned in rax:rdx.
struct FnExit {
  uint64_t PC;         ///< where the interpreter resumes
  uint64_t BudgetLeft; ///< unspent step budget (consumed = in - out)
};
using UnitFn = FnExit (*)(uint8_t *const *Cells, uint64_t Budget);

/// Hook-free tier: the whole function as one native unit.
struct FnUnit {
  const uint8_t *Base = nullptr;
  /// Per PC: offset of its native entry point (a step-budget check), or -1
  /// when that PC must be entered through the interpreter.
  std::vector<int32_t> EntryOff;
  std::vector<SlotKey> Keys;
  size_t CodeOff = 0, CodeLen = 0; ///< build-time
};

/// Both tiers for one function.
struct FnJit {
  /// Hook-safe blocks indexed by leader PC (null = no block starts here).
  std::vector<const CompiledBlock *> Blocks;
  bool HasBlocks = false;
  /// Hook-free whole-function unit (Base null when not compiled, e.g. the
  /// function touches more than kMaxCells cells).
  FnUnit Unit;
};

/// Compile-time statistics (per session; runtime counters live in the VM).
struct JitBuildStats {
  uint64_t BlocksCompiled = 0;
  uint64_t UnitsCompiled = 0;
  uint64_t CodeBytes = 0;
};

/// The compiled image of one module: immutable after build, shared
/// read-only by every VM (and every parallel worker) of the session.
class JitProgram {
public:
  /// Compiles every function of \p M. \p ToplevelName seeds the taint
  /// analysis that decides which stores are hook-safe. Returns null when
  /// native execution is unsupported or executable memory is unavailable.
  static std::unique_ptr<const JitProgram> build(const IRModule &M,
                                                 const std::string &ToplevelName);

  /// The compiled tiers for \p F, or null if nothing compiled.
  const FnJit *fnJit(const IRFunction *F) const {
    auto It = Index.find(F);
    return It == Index.end() ? nullptr : &Fns[It->second];
  }

  const JitBuildStats &stats() const { return Stats; }

  ~JitProgram();
  JitProgram(const JitProgram &) = delete;
  JitProgram &operator=(const JitProgram &) = delete;

private:
  JitProgram() = default;

  std::unordered_map<const IRFunction *, size_t> Index;
  std::deque<FnJit> Fns;
  std::deque<CompiledBlock> BlockStore;
  JitBuildStats Stats;
  uint8_t *ExecBase = nullptr;
  size_t ExecSize = 0;
};

} // namespace dart::jit

#endif // DART_JIT_JIT_H
