//===- Jit.cpp - Baseline JIT block/unit compilers --------------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"
#include "analysis/Taint.h"
#include "jit/X64Emitter.h"
#include "support/Casting.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define DART_JIT_HAVE_MMAP 1
#endif

using namespace dart;
using namespace dart::jit;

bool dart::jit::jitSupported() {
#if defined(DART_JIT_DISABLED) || !defined(__x86_64__) ||                      \
    !defined(DART_JIT_HAVE_MMAP)
  return false;
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return false;
#else
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) ||     \
    __has_feature(memory_sanitizer)
  return false;
#endif
#endif
  return true;
#endif
}

namespace {

/// Per-fragment table of the cells native code touches, deduplicated by
/// (IsGlobal, Index); a later write upgrades an earlier read-only entry.
class CellTable {
public:
  /// Index of the cell's pointer in the runtime table, or -1 when adding it
  /// would exceed kMaxCells.
  int keyFor(bool IsGlobal, unsigned Index, bool Write) {
    for (size_t I = 0; I < Keys.size(); ++I)
      if (Keys[I].IsGlobal == IsGlobal && Keys[I].Index == Index) {
        Keys[I].Write |= Write;
        return static_cast<int>(I);
      }
    if (Keys.size() >= kMaxCells)
      return -1;
    Keys.push_back({IsGlobal, Write, Index});
    return static_cast<int>(Keys.size() - 1);
  }

  /// How many cells of \p Cells are not yet in the table.
  size_t
  countNew(const std::vector<std::pair<bool, unsigned>> &Cells) const {
    size_t New = 0;
    for (size_t I = 0; I < Cells.size(); ++I) {
      bool Seen = false;
      for (const SlotKey &K : Keys)
        if (K.IsGlobal == Cells[I].first && K.Index == Cells[I].second)
          Seen = true;
      for (size_t J = 0; J < I && !Seen; ++J)
        Seen = Cells[J] == Cells[I];
      if (!Seen)
        ++New;
    }
    return New;
  }

  size_t size() const { return Keys.size(); }
  std::vector<SlotKey> take() { return std::move(Keys); }

private:
  std::vector<SlotKey> Keys;
};

/// Shared per-function compile context.
struct FnCtx {
  const IRModule &M;
  const IRFunction &F;
  unsigned FnIndex;
  const TaintResult &Taint;
};

/// Is \p E in the compiled expression subset? Only direct, in-bounds scalar
/// loads (a frame slot or global at offset 0), fault-free arithmetic, and
/// comparisons qualify. Bare FrameAddr/GlobalAddr values are excluded: VM
/// virtual addresses are allocated per run and unknowable at compile time.
bool exprCompilable(const FnCtx &C, const IRExpr *E) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
    return true;
  case IRExpr::Kind::GlobalAddr:
  case IRExpr::Kind::FrameAddr:
    return false;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    uint64_t Need = L->valType().SizeBytes;
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
      return C.F.Slots[FA->slotIndex()].SizeBytes >= Need;
    if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      return C.M.globals()[GA->globalIndex()].SizeBytes >= Need;
    return false;
  }
  case IRExpr::Kind::Unary:
    return exprCompilable(C, cast<UnaryIRExpr>(E)->operand());
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    if (B->op() == IRBinOp::Div || B->op() == IRBinOp::Rem)
      return false; // divide-by-zero fault path stays in the interpreter
    return exprCompilable(C, B->lhs()) && exprCompilable(C, B->rhs());
  }
  case IRExpr::Kind::Cmp: {
    const auto *Cm = cast<CmpExpr>(E);
    return exprCompilable(C, Cm->lhs()) && exprCompilable(C, Cm->rhs());
  }
  case IRExpr::Kind::Cast:
    return exprCompilable(C, cast<CastIRExpr>(E)->operand());
  }
  return false;
}

/// A store the JIT can execute: direct dest cell big enough for the value,
/// not read-only, compilable value expression.
bool storeCompilable(const FnCtx &C, const StoreInstr *S) {
  uint64_t Need = S->valType().SizeBytes;
  if (const auto *FA = dyn_cast<FrameAddrExpr>(S->address())) {
    if (C.F.Slots[FA->slotIndex()].SizeBytes < Need)
      return false;
  } else if (const auto *GA = dyn_cast<GlobalAddrExpr>(S->address())) {
    const IRGlobal &G = C.M.globals()[GA->globalIndex()];
    if (G.ReadOnly || G.SizeBytes < Need)
      return false;
  } else {
    return false;
  }
  return exprCompilable(C, S->value());
}

/// In the hook-safe tier a store may additionally only compile when taint
/// analysis proves neither the destination cell nor the stored value can
/// ever be symbolic — then ConcolicRun::onStore is a provable no-op and
/// skipping it cannot perturb the search.
bool storeHookSafe(const FnCtx &C, const StoreInstr *S) {
  if (const auto *FA = dyn_cast<FrameAddrExpr>(S->address())) {
    if (C.Taint.SlotTainted[C.FnIndex][FA->slotIndex()])
      return false;
  } else if (const auto *GA = dyn_cast<GlobalAddrExpr>(S->address())) {
    if (C.Taint.GlobalTainted[GA->globalIndex()])
      return false;
  }
  return !C.Taint.exprTainted(C.FnIndex, S->value());
}

/// Collects the distinct cells \p E reads into \p Out (dups allowed; the
/// table dedups).
void collectCells(const IRExpr *E,
                  std::vector<std::pair<bool, unsigned>> &Out) {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::GlobalAddr:
  case IRExpr::Kind::FrameAddr:
    return;
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
      Out.emplace_back(false, FA->slotIndex());
    else if (const auto *GA = dyn_cast<GlobalAddrExpr>(L->address()))
      Out.emplace_back(true, GA->globalIndex());
    return;
  }
  case IRExpr::Kind::Unary:
    collectCells(cast<UnaryIRExpr>(E)->operand(), Out);
    return;
  case IRExpr::Kind::Binary:
    collectCells(cast<BinaryIRExpr>(E)->lhs(), Out);
    collectCells(cast<BinaryIRExpr>(E)->rhs(), Out);
    return;
  case IRExpr::Kind::Cmp:
    collectCells(cast<CmpExpr>(E)->lhs(), Out);
    collectCells(cast<CmpExpr>(E)->rhs(), Out);
    return;
  case IRExpr::Kind::Cast:
    collectCells(cast<CastIRExpr>(E)->operand(), Out);
    return;
  }
}

void collectStoreCells(const StoreInstr *S,
                       std::vector<std::pair<bool, unsigned>> &Out) {
  if (const auto *FA = dyn_cast<FrameAddrExpr>(S->address()))
    Out.emplace_back(false, FA->slotIndex());
  else if (const auto *GA = dyn_cast<GlobalAddrExpr>(S->address()))
    Out.emplace_back(true, GA->globalIndex());
  collectCells(S->value(), Out);
}

/// Emits \p Ex, leaving the canonical result in rax. Mirrors Interp::eval
/// bit-for-bit: every intermediate is canonicalized to its ValType in the
/// full 64-bit register, operands evaluate left-to-right.
void emitExpr(X64Emitter &E, CellTable &T, const IRExpr *Ex) {
  switch (Ex->kind()) {
  case IRExpr::Kind::Const:
    E.movRaxImm(cast<ConstExpr>(Ex)->value());
    return;
  case IRExpr::Kind::GlobalAddr:
  case IRExpr::Kind::FrameAddr:
    return; // unreachable: rejected by exprCompilable
  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(Ex);
    int Key;
    if (const auto *FA = dyn_cast<FrameAddrExpr>(L->address()))
      Key = T.keyFor(false, FA->slotIndex(), /*Write=*/false);
    else
      Key = T.keyFor(true, cast<GlobalAddrExpr>(L->address())->globalIndex(),
                     /*Write=*/false);
    E.movRcxCellPtr(static_cast<unsigned>(Key));
    E.loadRaxFromRcx(L->valType());
    return;
  }
  case IRExpr::Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(Ex);
    emitExpr(E, T, U->operand());
    if (U->op() == IRUnOp::Neg)
      E.negRax();
    else
      E.notRax();
    E.canonRax(U->valType());
    return;
  }
  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(Ex);
    ValType VT = B->valType();
    emitExpr(E, T, B->lhs());
    E.pushRax();
    emitExpr(E, T, B->rhs());
    E.popRcx(); // lhs in rcx, rhs in rax
    switch (B->op()) {
    case IRBinOp::Add:
      E.addRaxRcx();
      break;
    case IRBinOp::Sub:
      E.subRcxRax();
      E.movRaxRcx();
      break;
    case IRBinOp::Mul:
      E.imulRaxRcx();
      break;
    case IRBinOp::And:
      E.andRaxRcx();
      break;
    case IRBinOp::Or:
      E.orRaxRcx();
      break;
    case IRBinOp::Xor:
      E.xorRaxRcx();
      break;
    case IRBinOp::Shl:
      E.xchgRaxRcx(); // lhs back in rax, count in rcx
      E.andEcxImm8(static_cast<uint8_t>(VT.bits() - 1));
      E.shlRaxCl();
      break;
    case IRBinOp::Shr:
      E.xchgRaxRcx();
      E.andEcxImm8(static_cast<uint8_t>(VT.bits() - 1));
      if (VT.Signed) {
        E.sarRaxCl(); // arithmetic shift of the raw canonical value
      } else {
        // The interpreter zero-truncates the LHS to the value width before
        // a logical shift; rax may hold a sign-extended narrower value.
        E.canonRax(ValType{VT.SizeBytes, false, false});
        E.shrRaxCl();
      }
      break;
    case IRBinOp::Div:
    case IRBinOp::Rem:
      break; // unreachable: rejected by exprCompilable
    }
    E.canonRax(VT);
    return;
  }
  case IRExpr::Kind::Cmp: {
    const auto *Cm = cast<CmpExpr>(Ex);
    emitExpr(E, T, Cm->lhs());
    E.pushRax();
    emitExpr(E, T, Cm->rhs());
    E.popRcx(); // lhs in rcx, rhs in rax
    E.cmpRcxRax();
    E.setccRax(cmpConditionCode(Cm->pred(), Cm->operandValType()));
    return;
  }
  case IRExpr::Kind::Cast:
    emitExpr(E, T, cast<CastIRExpr>(Ex)->operand());
    E.canonRax(Ex->valType());
    return;
  }
}

void emitStore(X64Emitter &E, CellTable &T, const StoreInstr *S) {
  emitExpr(E, T, S->value());
  int Key;
  if (const auto *FA = dyn_cast<FrameAddrExpr>(S->address()))
    Key = T.keyFor(false, FA->slotIndex(), /*Write=*/true);
  else
    Key = T.keyFor(true, cast<GlobalAddrExpr>(S->address())->globalIndex(),
                   /*Write=*/true);
  E.movRcxCellPtr(static_cast<unsigned>(Key));
  E.storeRaxToRcx(S->valType());
}

/// Instruction classification shared by both tiers.
enum class IKind : uint8_t {
  NativeStore, ///< compiled store
  Jump,        ///< unconditional jump (free in both tiers)
  NativeCond,  ///< CondJump with a compilable condition
  Exit         ///< everything else: interpreter only
};

std::vector<IKind> classify(const FnCtx &C, bool HookSafe) {
  std::vector<IKind> K(C.F.Instrs.size(), IKind::Exit);
  for (size_t P = 0; P < C.F.Instrs.size(); ++P) {
    const Instr *I = C.F.Instrs[P].get();
    if (const auto *S = dyn_cast<StoreInstr>(I)) {
      if (storeCompilable(C, S) && (!HookSafe || storeHookSafe(C, S)))
        K[P] = IKind::NativeStore;
    } else if (isa<JumpInstr>(I)) {
      K[P] = IKind::Jump;
    } else if (const auto *CJ = dyn_cast<CondJumpInstr>(I)) {
      if (exprCompilable(C, CJ->cond()))
        K[P] = IKind::NativeCond;
    }
  }
  return K;
}

/// Leader PCs: entry, every branch target, and the instruction after any
/// interpreter-only instruction (where native execution could resume).
std::vector<bool> computeLeaders(const FnCtx &C, const std::vector<IKind> &K) {
  size_t N = C.F.Instrs.size();
  std::vector<bool> Leader(N, false);
  if (N == 0)
    return Leader;
  Leader[0] = true;
  for (size_t P = 0; P < N; ++P) {
    const Instr *I = C.F.Instrs[P].get();
    if (const auto *CJ = dyn_cast<CondJumpInstr>(I)) {
      Leader[CJ->trueTarget()] = true;
      Leader[CJ->falseTarget()] = true;
    } else if (const auto *J = dyn_cast<JumpInstr>(I)) {
      Leader[J->target()] = true;
    }
    if (K[P] == IKind::Exit && P + 1 < N)
      Leader[P + 1] = true;
  }
  return Leader;
}

//===----------------------------------------------------------------------===//
// Hook-safe tier: per-block compilation
//===----------------------------------------------------------------------===//

/// Compiles the hook-safe block starting at leader \p Start, or returns
/// false when no instruction there compiles. The block body is emitted into
/// \p E; descriptor fields (all but Code) are filled in \p B.
bool compileBlock(const FnCtx &C, const std::vector<IKind> &K, size_t Start,
                  X64Emitter &E, CompiledBlock &B) {
  CellTable T;
  size_t N = C.F.Instrs.size();
  size_t PC = Start;
  unsigned NumInstrs = 0;
  B.Kind = CompiledBlock::Term::FallThrough;

  while (PC < N) {
    const Instr *I = C.F.Instrs[PC].get();
    // Reserve this instruction's cells up front so emission can't overflow
    // the runtime pointer table mid-instruction.
    std::vector<std::pair<bool, unsigned>> Cells;
    if (K[PC] == IKind::NativeStore)
      collectStoreCells(cast<StoreInstr>(I), Cells);
    else if (K[PC] == IKind::NativeCond)
      collectCells(cast<CondJumpInstr>(I)->cond(), Cells);
    bool Fits = T.size() + T.countNew(Cells) <= kMaxCells;

    if (K[PC] == IKind::NativeStore && Fits) {
      emitStore(E, T, cast<StoreInstr>(I));
      ++NumInstrs;
      ++PC;
      continue;
    }
    if (K[PC] == IKind::Jump) {
      ++NumInstrs;
      B.Kind = CompiledBlock::Term::Jump;
      B.JumpTarget = cast<JumpInstr>(I)->target();
      B.TermPC = static_cast<unsigned>(PC);
      break;
    }
    if (K[PC] == IKind::NativeCond && Fits) {
      const auto *CJ = cast<CondJumpInstr>(I);
      emitExpr(E, T, CJ->cond());
      ++NumInstrs; // the branch itself retires natively; hooks fire after
      B.Kind = CompiledBlock::Term::CondBranch;
      B.TermPC = static_cast<unsigned>(PC);
      B.CJ = CJ;
      break;
    }
    // Interpreter-only instruction (or cell table full): deopt here.
    B.Kind = CompiledBlock::Term::FallThrough;
    B.TermPC = static_cast<unsigned>(PC);
    break;
  }
  if (NumInstrs == 0 || PC >= N)
    return false; // well-formed IR always breaks at a terminator

  if (B.Kind != CompiledBlock::Term::CondBranch)
    E.xorEaxEax(); // no condition value to report
  E.ret();
  B.NumInstrs = NumInstrs;
  B.Keys = T.take();
  return true;
}

//===----------------------------------------------------------------------===//
// Hook-free tier: whole-function units
//===----------------------------------------------------------------------===//

/// Compiles the whole function as one native unit with internal jumps.
/// Returns false when the function would exceed kMaxCells or contains
/// nothing worth running natively.
bool compileUnit(const FnCtx &C, X64Emitter &E, FnUnit &U) {
  size_t N = C.F.Instrs.size();
  if (N == 0)
    return false;
  std::vector<IKind> K = classify(C, /*HookSafe=*/false);

  bool AnyNative = false;
  CellTable Probe;
  std::vector<std::pair<bool, unsigned>> AllCells;
  for (size_t P = 0; P < N; ++P) {
    if (K[P] == IKind::NativeStore) {
      collectStoreCells(cast<StoreInstr>(C.F.Instrs[P].get()), AllCells);
      AnyNative = true;
    } else if (K[P] == IKind::NativeCond) {
      collectCells(cast<CondJumpInstr>(C.F.Instrs[P].get())->cond(),
                   AllCells);
      AnyNative = true;
    }
  }
  if (!AnyNative || Probe.countNew(AllCells) > kMaxCells)
    return false;

  std::vector<bool> Leader = computeLeaders(C, K);
  CellTable T;
  std::vector<size_t> Off(N, 0);
  struct Fixup {
    size_t Pos;
    unsigned TargetPC;
  };
  std::vector<Fixup> Fixups;
  struct BudgetStub {
    size_t JsPos;
    unsigned PC;
    int32_t Steps;
  };
  std::vector<BudgetStub> Stubs;
  U.EntryOff.assign(N, -1);

  for (size_t P = 0; P < N; ++P) {
    Off[P] = E.size();
    // A leader that runs natively opens with a step-budget check covering
    // its whole straight-line run (stores never trap, so once the check
    // passes every instruction of the run retires).
    if (Leader[P] && K[P] != IKind::Exit) {
      U.EntryOff[P] = static_cast<int32_t>(E.size());
      int32_t Run = 0;
      for (size_t Q = P;; ++Q) {
        ++Run;
        if (K[Q] == IKind::Jump || K[Q] == IKind::NativeCond)
          break; // run ends with its own control transfer
        if (Q + 1 >= N || K[Q + 1] == IKind::Exit || Leader[Q + 1])
          break;
      }
      E.subRsiImm32(Run);
      Stubs.push_back({E.jccRel32(0x8), static_cast<unsigned>(P), Run});
    }
    switch (K[P]) {
    case IKind::NativeStore:
      emitStore(E, T, cast<StoreInstr>(C.F.Instrs[P].get()));
      break;
    case IKind::Jump:
      Fixups.push_back(
          {E.jmpRel32(), cast<JumpInstr>(C.F.Instrs[P].get())->target()});
      break;
    case IKind::NativeCond: {
      const auto *CJ = cast<CondJumpInstr>(C.F.Instrs[P].get());
      emitExpr(E, T, CJ->cond());
      E.testRaxRax();
      Fixups.push_back({E.jccRel32(0x5), CJ->trueTarget()}); // jnz taken
      Fixups.push_back({E.jmpRel32(), CJ->falseTarget()});
      break;
    }
    case IKind::Exit:
      // Return to the interpreter at this PC, budget untouched.
      E.movEaxImm32(static_cast<uint32_t>(P));
      E.movRdxRsi();
      E.ret();
      break;
    }
  }
  // Budget-exhausted stubs: refund the whole run (nothing of it executed)
  // and hand the PC back to the interpreter, which owns the exact
  // per-instruction StepLimit semantics.
  for (const BudgetStub &S : Stubs) {
    E.patchRel32(S.JsPos, E.size());
    E.addRsiImm32(S.Steps);
    E.movEaxImm32(S.PC);
    E.movRdxRsi();
    E.ret();
  }
  for (const Fixup &F : Fixups)
    E.patchRel32(F.Pos, Off[F.TargetPC]);
  U.Keys = T.take();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// JitProgram assembly
//===----------------------------------------------------------------------===//

std::unique_ptr<const JitProgram>
JitProgram::build(const IRModule &M, const std::string &ToplevelName) {
  if (!jitSupported())
    return nullptr;
#if !DART_JIT_HAVE_MMAP
  return nullptr;
#else
  TaintResult Taint = runTaintAnalysis(M, ToplevelName);

  std::unique_ptr<JitProgram> P(new JitProgram());
  std::vector<uint8_t> Image;
  auto Align16 = [&Image] {
    while (Image.size() % 16 != 0)
      Image.push_back(0xcc); // int3 padding between fragments
  };

  for (size_t FI = 0; FI < M.functions().size(); ++FI) {
    const IRFunction &F = *M.functions()[FI];
    FnCtx C{M, F, static_cast<unsigned>(FI), Taint};
    P->Fns.emplace_back();
    FnJit &FJ = P->Fns.back();
    FJ.Blocks.assign(F.Instrs.size(), nullptr);

    // Hook-safe blocks: one per leader whose first instruction compiles.
    std::vector<IKind> KSafe = classify(C, /*HookSafe=*/true);
    std::vector<bool> Leader = computeLeaders(C, KSafe);
    for (size_t PC = 0; PC < F.Instrs.size(); ++PC) {
      if (!Leader[PC])
        continue;
      X64Emitter E;
      CompiledBlock B;
      if (!compileBlock(C, KSafe, PC, E, B))
        continue;
      Align16();
      B.CodeOff = Image.size();
      Image.insert(Image.end(), E.Code.begin(), E.Code.end());
      P->BlockStore.push_back(std::move(B));
      FJ.Blocks[PC] = &P->BlockStore.back();
      FJ.HasBlocks = true;
      ++P->Stats.BlocksCompiled;
    }

    // Hook-free whole-function unit.
    X64Emitter UE;
    if (compileUnit(C, UE, FJ.Unit)) {
      Align16();
      FJ.Unit.CodeOff = Image.size();
      FJ.Unit.CodeLen = UE.Code.size();
      Image.insert(Image.end(), UE.Code.begin(), UE.Code.end());
      ++P->Stats.UnitsCompiled;
    }

    if (FJ.HasBlocks || FJ.Unit.CodeLen != 0)
      P->Index[&F] = P->Fns.size() - 1;
  }

  if (Image.empty())
    return nullptr; // nothing compiled anywhere — run pure interpreter

  // One contiguous W^X image: map writable, copy, then flip to RX.
  void *Mem = mmap(nullptr, Image.size(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  std::memcpy(Mem, Image.data(), Image.size());
  if (mprotect(Mem, Image.size(), PROT_READ | PROT_EXEC) != 0) {
    munmap(Mem, Image.size());
    return nullptr;
  }
  P->ExecBase = static_cast<uint8_t *>(Mem);
  P->ExecSize = Image.size();
  P->Stats.CodeBytes = Image.size();

  for (CompiledBlock &B : P->BlockStore)
    B.Code = reinterpret_cast<BlockFn>(P->ExecBase + B.CodeOff);
  for (FnJit &FJ : P->Fns)
    if (FJ.Unit.CodeLen != 0)
      FJ.Unit.Base = P->ExecBase + FJ.Unit.CodeOff;

  return P;
#endif
}

JitProgram::~JitProgram() {
#if DART_JIT_HAVE_MMAP
  if (ExecBase)
    munmap(ExecBase, ExecSize);
#endif
}
