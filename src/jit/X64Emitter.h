//===- X64Emitter.h - Minimal x86-64 encoder for the baseline JIT -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough of an x86-64 assembler for the template JIT: an accumulator
/// scheme over rax (current value) and rcx (scratch/left operand), with the
/// cell-pointer table in rdi and the step budget in rsi. Every helper
/// appends its encoding to a plain byte vector; the JitProgram copies the
/// bytes into executable memory once the whole module is compiled, so no
/// relocation beyond unit-local rel32 fixups is ever needed.
///
/// The emitted code must replicate the interpreter bit-for-bit, so the
/// helpers mirror Interp's eval() contract: every expression result is held
/// canonicalized (ValType::canonicalize) in the full 64-bit register.
///
//===----------------------------------------------------------------------===//

#ifndef DART_JIT_X64EMITTER_H
#define DART_JIT_X64EMITTER_H

#include "ir/IR.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace dart::jit {

class X64Emitter {
public:
  std::vector<uint8_t> Code;

  size_t size() const { return Code.size(); }

  void byte(uint8_t B) { Code.push_back(B); }
  void bytes(std::initializer_list<uint8_t> Bs) {
    Code.insert(Code.end(), Bs);
  }
  void imm32(int32_t V) {
    for (int I = 0; I < 4; ++I)
      byte(static_cast<uint8_t>((static_cast<uint32_t>(V) >> (8 * I)) & 0xff));
  }
  void imm64(int64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>((static_cast<uint64_t>(V) >> (8 * I)) & 0xff));
  }
  /// Patches a previously emitted rel32 at \p Pos to land on \p Target
  /// (both are offsets into Code).
  void patchRel32(size_t Pos, size_t Target) {
    int32_t Rel = static_cast<int32_t>(static_cast<int64_t>(Target) -
                                       (static_cast<int64_t>(Pos) + 4));
    for (int I = 0; I < 4; ++I)
      Code[Pos + I] =
          static_cast<uint8_t>((static_cast<uint32_t>(Rel) >> (8 * I)) & 0xff);
  }

  // --- Loading the accumulator -------------------------------------------

  void movRaxImm(int64_t V) {
    if (V >= INT32_MIN && V <= INT32_MAX) {
      bytes({0x48, 0xc7, 0xc0}); // mov rax, imm32 (sign-extended)
      imm32(static_cast<int32_t>(V));
    } else {
      bytes({0x48, 0xb8}); // movabs rax, imm64
      imm64(V);
    }
  }

  /// rcx <- Cells[Key] (the cell-pointer table lives in rdi).
  void movRcxCellPtr(unsigned Key) {
    int32_t Disp = static_cast<int32_t>(8 * Key);
    if (Disp == 0) {
      bytes({0x48, 0x8b, 0x0f}); // mov rcx, [rdi]
    } else if (Disp < 128) {
      bytes({0x48, 0x8b, 0x4f, static_cast<uint8_t>(Disp)});
    } else {
      bytes({0x48, 0x8b, 0x8f}); // mov rcx, [rdi+disp32]
      imm32(Disp);
    }
  }

  /// rax <- canonical load of \p VT from [rcx] (matches Mem.load +
  /// ValType::canonicalize: little-endian bytes, then sign/zero-extend).
  void loadRaxFromRcx(ValType VT) {
    switch (VT.SizeBytes) {
    case 1:
      if (VT.Signed)
        bytes({0x48, 0x0f, 0xbe, 0x01}); // movsx rax, byte [rcx]
      else
        bytes({0x48, 0x0f, 0xb6, 0x01}); // movzx rax, byte [rcx]
      break;
    case 4:
      if (VT.Signed)
        bytes({0x48, 0x63, 0x01}); // movsxd rax, dword [rcx]
      else
        bytes({0x8b, 0x01}); // mov eax, [rcx] (zero-extends)
      break;
    default:
      bytes({0x48, 0x8b, 0x01}); // mov rax, [rcx]
      break;
    }
  }

  /// [rcx] <- low VT.SizeBytes of rax (matches Mem.store's little-endian
  /// truncation; rax already holds the canonical value).
  void storeRaxToRcx(ValType VT) {
    switch (VT.SizeBytes) {
    case 1:
      bytes({0x88, 0x01}); // mov [rcx], al
      break;
    case 4:
      bytes({0x89, 0x01}); // mov [rcx], eax
      break;
    default:
      bytes({0x48, 0x89, 0x01}); // mov [rcx], rax
      break;
    }
  }

  // --- ALU (operands per the interpreter's applyBinary) ------------------

  void pushRax() { byte(0x50); }
  void popRcx() { byte(0x59); }
  void movRaxRcx() { bytes({0x48, 0x89, 0xc8}); } // mov rax, rcx
  void xchgRaxRcx() { bytes({0x48, 0x91}); }
  void negRax() { bytes({0x48, 0xf7, 0xd8}); }
  void notRax() { bytes({0x48, 0xf7, 0xd0}); }
  void addRaxRcx() { bytes({0x48, 0x01, 0xc8}); }
  void subRcxRax() { bytes({0x48, 0x29, 0xc1}); } // rcx -= rax
  void imulRaxRcx() { bytes({0x48, 0x0f, 0xaf, 0xc1}); }
  void andRaxRcx() { bytes({0x48, 0x21, 0xc8}); }
  void orRaxRcx() { bytes({0x48, 0x09, 0xc8}); }
  void xorRaxRcx() { bytes({0x48, 0x31, 0xc8}); }
  void andEcxImm8(uint8_t Mask) { bytes({0x83, 0xe1, Mask}); }
  void shlRaxCl() { bytes({0x48, 0xd3, 0xe0}); }
  void sarRaxCl() { bytes({0x48, 0xd3, 0xf8}); }
  void shrRaxCl() { bytes({0x48, 0xd3, 0xe8}); }
  void cmpRcxRax() { bytes({0x48, 0x39, 0xc1}); }
  void testRaxRax() { bytes({0x48, 0x85, 0xc0}); }
  void xorEaxEax() { bytes({0x31, 0xc0}); }
  void ret() { byte(0xc3); }

  /// setcc al; movzx eax, al — leaves the 0/1 comparison result canonical.
  /// \p CC is the x86 condition-code nibble (e.g. 0x4 = e, 0xC = l).
  void setccRax(uint8_t CC) {
    bytes({0x0f, static_cast<uint8_t>(0x90 | CC), 0xc0}); // setcc al
    bytes({0x0f, 0xb6, 0xc0});                            // movzx eax, al
  }

  /// Re-canonicalizes rax to \p VT in place (the interpreter's
  /// ValType::canonicalize after every arithmetic step).
  void canonRax(ValType VT) {
    switch (VT.SizeBytes) {
    case 1:
      if (VT.Signed)
        bytes({0x48, 0x0f, 0xbe, 0xc0}); // movsx rax, al
      else
        bytes({0x0f, 0xb6, 0xc0}); // movzx eax, al
      break;
    case 4:
      if (VT.Signed)
        bytes({0x48, 0x63, 0xc0}); // movsxd rax, eax
      else
        bytes({0x89, 0xc0}); // mov eax, eax
      break;
    default:
      break; // 8-byte values are already canonical
    }
  }

  // --- Step budget (whole-function units; budget counter in rsi) ---------

  void subRsiImm32(int32_t K) {
    bytes({0x48, 0x81, 0xee});
    imm32(K);
  }
  void addRsiImm32(int32_t K) {
    bytes({0x48, 0x81, 0xc6});
    imm32(K);
  }
  /// mov eax, imm32 (zero-extends into rax — exit PCs fit 32 bits).
  void movEaxImm32(uint32_t V) {
    byte(0xb8);
    imm32(static_cast<int32_t>(V));
  }
  void movRdxRsi() { bytes({0x48, 0x89, 0xf2}); }

  /// jmp rel32; returns the offset of the rel32 for patching.
  size_t jmpRel32() {
    byte(0xe9);
    size_t Pos = size();
    imm32(0);
    return Pos;
  }
  /// jcc rel32; \p CC is the condition-code nibble (0x5 = nz, 0x8 = s).
  size_t jccRel32(uint8_t CC) {
    bytes({0x0f, static_cast<uint8_t>(0x80 | CC)});
    size_t Pos = size();
    imm32(0);
    return Pos;
  }
};

/// x86 condition-code nibble for an IR comparison under \p OperandVT's
/// signedness rule (pointers and unsigned types compare unsigned —
/// mirroring the interpreter's applyCmp on canonical 64-bit values).
inline uint8_t cmpConditionCode(CmpPred P, ValType OperandVT) {
  bool Uns = OperandVT.IsPointer || !OperandVT.Signed;
  switch (P) {
  case CmpPred::Eq:
    return 0x4; // e
  case CmpPred::Ne:
    return 0x5; // ne
  case CmpPred::Lt:
    return Uns ? 0x2 : 0xc; // b : l
  case CmpPred::Le:
    return Uns ? 0x6 : 0xe; // be : le
  case CmpPred::Gt:
    return Uns ? 0x7 : 0xf; // a : g
  case CmpPred::Ge:
    return Uns ? 0x3 : 0xd; // ae : ge
  }
  return 0x4;
}

} // namespace dart::jit

#endif // DART_JIT_X64EMITTER_H
