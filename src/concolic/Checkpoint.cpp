//===- Checkpoint.cpp - Snapshot-resume for the directed search ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/Checkpoint.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace dart;

static uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CheckpointRecorder::reset() {
  Entries.clear();
  MemBase = Memory::Snapshot();
  GlobalAddrs.clear();
  CowBase = VM.memory().cowStats();
  LastLevel = 0;
  LevelStride = 1;
  DeferCount = 0;
  HasCapture = false;
  CallIndex = 0;
}

bool CheckpointRecorder::captureAt(size_t K, const CompletenessFlags &Flags,
                                   size_t SymLogPos, size_t CovLogPos,
                                   const BranchSiteInfo &Site) {
  InputId Level = InputsCreated();
  if (!Policy.CaptureAllConditionals) {
    // Level gating: resumeFor only ever selects the deepest entry of an
    // input level (see the file comment in Checkpoint.h), so conditionals
    // within an already-captured level are provably useless to capture.
    if (HasCapture && Level < LastLevel + LevelStride)
      return false;
    // Frontier feedback: within the level, prefer to sit just before a
    // branch whose negation the search can still schedule toward fresh
    // coverage — entries anywhere in a level serve the same children, and
    // deeper placement shortens every replay. Bounded deferral so levels
    // whose branches are all settled still get their entry (it serves
    // children resuming *past* this level too).
    bool Worthy = Site.NegationSchedulable && !Site.NegationCovered;
    if (Worthy && NegationPriorities &&
        Site.NegationBit < NegationPriorities->size() &&
        (*NegationPriorities)[Site.NegationBit] == UINT32_MAX)
      Worthy = false; // distance prior: flip cannot reach uncovered code
    if (!Worthy && DeferCount < Policy.MaxDeferConditionals) {
      ++DeferCount;
      return false;
    }
    // Demand feedback: skip levels no scheduled child has ever resumed
    // into (after warmup). A mispredicted skip only makes some future
    // child resume one level shallower or replay fully — never wrong.
    if (Demand && Demand->warm(Policy.DemandWarmup) &&
        !Demand->anyDemandIn(Level, Level + Policy.DemandWindow)) {
      LastLevel = Level;
      HasCapture = true;
      DeferCount = 0;
      ++SkippedByDemandTotal;
      return false;
    }
  }

  uint64_t T0 = nowNanos();
  CheckpointEntry E;
  E.Vm = VM.snapshotDelta(MemBase);
  // The branch hook fires mid-CondJump, after the step counter already
  // ticked for it. Store the pre-instruction count so the resumed run
  // re-executes the CondJump and reproduces identical step totals.
  assert(E.Vm.Steps > 0 && "branch hook before any step?");
  --E.Vm.Steps;
  E.BranchIndex = K;
  E.InputsCreated = Level;
  E.CallIndex = CallIndex;
  E.Flags = Flags;
  E.SymLogPos = SymLogPos;
  E.CovLogPos = CovLogPos;
  if (Entries.empty())
    GlobalAddrs = VM.globalAddrs();

  if (Entries.size() >= Policy.MaxEntriesPerRun && Entries.size() >= 2) {
    // Geometric thinning: fold every second entry into its successor
    // (delta composition keeps the chain replayable) and double the level
    // stride, so entry spacing grows with run depth while staying under
    // the cap. The final entry always survives — MemBase anchors there.
    std::vector<CheckpointEntry> Kept;
    Kept.reserve(Entries.size() / 2 + 1);
    size_t I = 0;
    for (; I + 1 < Entries.size(); I += 2) {
      CheckpointEntry &Drop = Entries[I];
      CheckpointEntry &Keep = Entries[I + 1];
      Memory::composeDelta(Drop.Vm.Mem, std::move(Keep.Vm.Mem));
      Keep.Vm.Mem = std::move(Drop.Vm.Mem);
      Kept.push_back(std::move(Keep));
    }
    if (I < Entries.size())
      Kept.push_back(std::move(Entries[I]));
    Entries = std::move(Kept);
    if (LevelStride < (InputId(1) << 24))
      LevelStride *= 2;
  }

  Entries.push_back(std::move(E));
  HasCapture = true;
  LastLevel = Level;
  DeferCount = 0;
  if (Policy.LevelStrideGrowth > 1 && LevelStride < (InputId(1) << 24))
    LevelStride *= Policy.LevelStrideGrowth;
  CaptureNanosTotal += nowNanos() - T0;
  return true;
}

std::shared_ptr<CheckpointPack>
CheckpointRecorder::finalize(ConcolicRun &Run, const PathData &Path,
                             std::vector<InputInfo> Registry) {
  auto Pack = std::make_shared<CheckpointPack>();
  auto C = std::make_shared<CheckpointPack::Contents>();
  C->Entries = std::move(Entries);
  Entries.clear();
  C->GlobalAddrs = std::move(GlobalAddrs);
  GlobalAddrs.clear();
  MemBase = Memory::Snapshot();
  C->FinalCovCount = Run.coveredCount();
  C->FinalS = Run.takeSymbolicMemory();
  C->SymLog = Run.takeSymJournal();
  C->CovLog = Run.takeCovLog();
  C->FinalCov = Run.takeCoveredBits();
  C->ConstraintTrace = Path.Constraints;
  C->Registry = std::move(Registry);
  Pack->NumEntries = C->Entries.size();

  // Resident-byte estimate for the eviction ledger: per-entry deltas (the
  // pairs plus the chunk clones they pin), the shared logs/state, and the
  // pages *this run* dirtied (pinned by the entry deltas even after the
  // run's Memory moves on) — a per-run clone delta, not the session
  // cumulative, so pooled VMs stay accurately accounted.
  size_t B = sizeof(CheckpointPack) + sizeof(CheckpointPack::Contents);
  for (const CheckpointEntry &E : C->Entries)
    B += sizeof(CheckpointEntry) + E.Vm.approxBytes();
  B += C->SymLog.size() * (sizeof(SymMemUndo) + 32);
  B += C->FinalS.size() * 64;
  B += C->CovLog.capacity() * sizeof(uint32_t);
  B += C->FinalCov.size() / 8;
  B += C->ConstraintTrace.size() * sizeof(PredId);
  B += C->Registry.size() * sizeof(InputInfo);
  B += C->GlobalAddrs.size() * sizeof(Addr);
  const Memory::CowStats &Now = VM.memory().cowStats();
  B += (Now.PageClones - CowBase.PageClones) * Memory::kPageSize;
  CowBase = Now;
  Pack->ApproxBytes = B;
  Pack->C = std::move(C);
  return Pack;
}

std::optional<MaterializedCheckpoint>
CheckpointPack::resumeFor(InputId MinChangedId) const {
  // Pin the contents, then materialize without the lock: immutable after
  // finalize, and the pin keeps an eviction from freeing them mid-read.
  std::shared_ptr<const Contents> P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    P = C;
  }
  if (!P || P->Entries.empty())
    return std::nullopt;
  // Deepest entry whose inputs all predate every changed input. Entries
  // are in capture order, so InputsCreated is nondecreasing.
  auto It = std::upper_bound(
      P->Entries.begin(), P->Entries.end(), MinChangedId,
      [](InputId Id, const CheckpointEntry &E) { return Id < E.InputsCreated; });
  if (It == P->Entries.begin())
    return std::nullopt; // even the first conditional saw a changed input
  const CheckpointEntry &E = *std::prev(It);

  MaterializedCheckpoint M;
  // Compose the delta chain forward into a full image. O(sum of delta
  // sizes up to the entry) — bounded by MaxEntriesPerRun small deltas.
  for (auto I = P->Entries.begin(); I != It; ++I)
    Memory::applyDelta(M.Vm.Mem, I->Vm.Mem);
  M.Vm.Stack = E.Vm.Stack;
  M.Vm.GlobalAddrs = P->GlobalAddrs;
  M.Vm.Steps = E.Vm.Steps;
  M.S = P->FinalS;
  M.S.rollback(P->SymLog, E.SymLogPos);
  M.Cov = P->FinalCov;
  for (size_t I = E.CovLogPos; I < P->CovLog.size(); ++I)
    M.Cov[P->CovLog[I]] = false;
  M.CovCount =
      P->FinalCovCount - static_cast<unsigned>(P->CovLog.size() - E.CovLogPos);
  M.Constraints.assign(P->ConstraintTrace.begin(),
                       P->ConstraintTrace.begin() + E.BranchIndex);
  M.BranchIndex = E.BranchIndex;
  M.InputsCreated = E.InputsCreated;
  M.CallIndex = E.CallIndex;
  M.Flags = E.Flags;
  M.SkippedSteps = E.Vm.Steps;
  M.RegistryPrefix.assign(P->Registry.begin(),
                          P->Registry.begin() + E.InputsCreated);
  return M;
}

void CheckpointPack::release() {
  std::shared_ptr<const Contents> Dead;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Dead = std::move(C);
    C = nullptr;
  }
  // Dead destroys outside the lock (and only once the last concurrent
  // resumeFor drops its pin).
}

std::optional<InputId>
dart::minChangedInput(const std::map<InputId, int64_t> &Model,
                      const std::map<InputId, int64_t> &IM) {
  std::optional<InputId> Min;
  for (const auto &[Id, Value] : Model) {
    auto It = IM.find(Id);
    bool Changed = It == IM.end() || It->second != Value;
    if (Changed && (!Min || Id < *Min))
      Min = Id;
  }
  return Min;
}

void CheckpointLedger::admit(std::shared_ptr<CheckpointPack> Pack) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Drop packs nothing references any more (no queued child can resume
  // from them); they are free memory, not evictions. The sweep is
  // amortized — O(live) work only when the list doubled since the last
  // sweep — so admits stay O(1) on average even when a parallel frontier
  // keeps hundreds of packs alive (a per-admit sweep under this global
  // mutex serializes the workers).
  if (Live.size() >= SweepWatermark) {
    for (auto It = Live.begin(); It != Live.end();) {
      if (It->use_count() == 1) {
        Resident -= (*It)->approxBytes();
        It = Live.erase(It);
      } else {
        ++It;
      }
    }
    SweepWatermark = std::max<size_t>(kMinSweepWatermark, 2 * Live.size());
  }
  Resident += Pack->approxBytes();
  Live.push_back(std::move(Pack));
  Peak = std::max(Peak, Resident);
  if (Budget == 0)
    return;
  if (Resident > Budget) {
    // Over budget: free dead packs before sacrificing live ones.
    for (auto It = Live.begin(); It != Live.end();) {
      if (It->use_count() == 1) {
        Resident -= (*It)->approxBytes();
        It = Live.erase(It);
      } else {
        ++It;
      }
    }
    SweepWatermark = std::max<size_t>(kMinSweepWatermark, 2 * Live.size());
  }
  // Oldest-first eviction; a single over-budget pack evicts itself (the
  // search then just replays fully — still correct, never wrong).
  while (Resident > Budget && !Live.empty()) {
    std::shared_ptr<CheckpointPack> Victim = std::move(Live.front());
    Live.pop_front();
    Resident -= Victim->approxBytes();
    Victim->release();
    ++Evictions;
  }
}

uint64_t CheckpointLedger::peakResidentBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Peak;
}

uint64_t CheckpointLedger::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evictions;
}
