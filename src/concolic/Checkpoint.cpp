//===- Checkpoint.cpp - Snapshot-resume for the directed search ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/Checkpoint.h"

#include <algorithm>
#include <cassert>

using namespace dart;

void CheckpointRecorder::captureAt(size_t K, const CompletenessFlags &Flags,
                                   size_t SymLogPos, size_t CovLogPos) {
  CheckpointEntry E;
  E.Vm = VM.snapshot();
  // The branch hook fires mid-CondJump, after the step counter already
  // ticked for it. Store the pre-instruction count so the resumed run
  // re-executes the CondJump and reproduces identical step totals.
  assert(E.Vm.Steps > 0 && "branch hook before any step?");
  --E.Vm.Steps;
  E.BranchIndex = K;
  E.InputsCreated = InputsCreated();
  E.CallIndex = CallIndex;
  E.Flags = Flags;
  E.SymLogPos = SymLogPos;
  E.CovLogPos = CovLogPos;
  Entries.push_back(std::move(E));
}

std::shared_ptr<CheckpointPack>
CheckpointRecorder::finalize(ConcolicRun &Run, const PathData &Path,
                             std::vector<InputInfo> Registry) {
  auto Pack = std::make_shared<CheckpointPack>();
  Pack->Entries = std::move(Entries);
  Entries.clear();
  Pack->FinalCovCount = Run.coveredCount();
  Pack->FinalS = Run.takeSymbolicMemory();
  Pack->SymLog = Run.takeSymJournal();
  Pack->CovLog = Run.takeCovLog();
  Pack->FinalCov = Run.takeCoveredBits();
  Pack->ConstraintTrace = Path.Constraints;
  Pack->Registry = std::move(Registry);
  Pack->NumEntries = Pack->Entries.size();

  // Rough resident-byte estimate for the eviction ledger: per-entry
  // snapshot roots, the shared logs/state, and the pages this run dirtied
  // (pinned by the entry snapshots even after the run's Memory dies).
  size_t B = sizeof(CheckpointPack);
  for (const CheckpointEntry &E : Pack->Entries)
    B += sizeof(CheckpointEntry) + E.Vm.approxBytes();
  B += Pack->SymLog.size() * (sizeof(SymMemUndo) + 32);
  B += Pack->FinalS.size() * 64;
  B += Pack->CovLog.capacity() * sizeof(uint32_t);
  B += Pack->FinalCov.size() / 8;
  B += Pack->ConstraintTrace.size() * sizeof(PredId);
  B += Pack->Registry.size() * sizeof(InputInfo);
  B += VM.memory().cowStats().PageClones * Memory::kPageSize;
  Pack->ApproxBytes = B;
  return Pack;
}

std::optional<MaterializedCheckpoint>
CheckpointPack::resumeFor(InputId MinChangedId) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Evicted || Entries.empty())
    return std::nullopt;
  // Deepest entry whose inputs all predate every changed input. Entries
  // are in capture order, so InputsCreated is nondecreasing.
  auto It = std::upper_bound(
      Entries.begin(), Entries.end(), MinChangedId,
      [](InputId Id, const CheckpointEntry &E) { return Id < E.InputsCreated; });
  if (It == Entries.begin())
    return std::nullopt; // even the first conditional saw a changed input
  const CheckpointEntry &E = *std::prev(It);

  MaterializedCheckpoint M;
  M.Vm = E.Vm; // COW roots: O(chunks + call depth)
  M.S = FinalS;
  M.S.rollback(SymLog, E.SymLogPos);
  M.Cov = FinalCov;
  for (size_t I = E.CovLogPos; I < CovLog.size(); ++I)
    M.Cov[CovLog[I]] = false;
  M.CovCount =
      FinalCovCount - static_cast<unsigned>(CovLog.size() - E.CovLogPos);
  M.Constraints.assign(ConstraintTrace.begin(),
                       ConstraintTrace.begin() + E.BranchIndex);
  M.BranchIndex = E.BranchIndex;
  M.InputsCreated = E.InputsCreated;
  M.CallIndex = E.CallIndex;
  M.Flags = E.Flags;
  M.SkippedSteps = E.Vm.Steps;
  M.RegistryPrefix.assign(Registry.begin(),
                          Registry.begin() + E.InputsCreated);
  return M;
}

void CheckpointPack::release() {
  std::lock_guard<std::mutex> Lock(Mu);
  Evicted = true;
  Entries.clear();
  Entries.shrink_to_fit();
  FinalS = SymbolicMemory();
  SymLog.clear();
  SymLog.shrink_to_fit();
  CovLog.clear();
  CovLog.shrink_to_fit();
  FinalCov.clear();
  FinalCov.shrink_to_fit();
  ConstraintTrace.clear();
  ConstraintTrace.shrink_to_fit();
  Registry.clear();
  Registry.shrink_to_fit();
}

std::optional<InputId>
dart::minChangedInput(const std::map<InputId, int64_t> &Model,
                      const std::map<InputId, int64_t> &IM) {
  std::optional<InputId> Min;
  for (const auto &[Id, Value] : Model) {
    auto It = IM.find(Id);
    bool Changed = It == IM.end() || It->second != Value;
    if (Changed && (!Min || Id < *Min))
      Min = Id;
  }
  return Min;
}

void CheckpointLedger::admit(std::shared_ptr<CheckpointPack> Pack) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Drop packs nothing references any more (no queued child can resume
  // from them); they are free memory, not evictions.
  for (auto It = Live.begin(); It != Live.end();) {
    if (It->use_count() == 1) {
      Resident -= (*It)->approxBytes();
      It = Live.erase(It);
    } else {
      ++It;
    }
  }
  Resident += Pack->approxBytes();
  Live.push_back(std::move(Pack));
  Peak = std::max(Peak, Resident);
  if (Budget == 0)
    return;
  // Oldest-first eviction; a single over-budget pack evicts itself (the
  // search then just replays fully — still correct, never wrong).
  while (Resident > Budget && !Live.empty()) {
    std::shared_ptr<CheckpointPack> Victim = std::move(Live.front());
    Live.pop_front();
    Resident -= Victim->approxBytes();
    Victim->release();
    ++Evictions;
  }
}

uint64_t CheckpointLedger::peakResidentBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Peak;
}

uint64_t CheckpointLedger::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evictions;
}
