//===- Concolic.h - Intertwined concrete/symbolic execution -----*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of DART (paper §2): one *instrumented run* of the program,
/// executing concretely in the VM while this module shadows it
/// symbolically.
///
///  - SymbolicEvaluator is Fig. 1's evaluate_symbolic: it maps pure IR
///    expressions to symbolic values over inputs, falling back to the
///    concrete value — and clearing the completeness flags `all_linear` /
///    `all_locs_definite` — whenever the expression leaves the linear
///    theory or dereferences input-dependent addresses.
///  - ConcolicRun is Fig. 3's instrumented_program body: it implements the
///    VM hooks, maintains the symbolic memory S, collects the path
///    constraint, and runs Fig. 4's compare_and_update_stack on every
///    conditional (raising the forcing_ok exception by stopping the VM).
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_CONCOLIC_H
#define DART_CONCOLIC_CONCOLIC_H

#include "concolic/SymbolicMemory.h"
#include "interp/Interp.h"
#include "symbolic/PredArena.h"
#include "symbolic/SymExpr.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

namespace dart {

/// The two completeness flags of the paper (§2.3). They start true and are
/// cleared — never re-set — during a directed search; if either is false
/// when the directed search finishes, exploration was incomplete and
/// run_DART restarts with fresh random inputs instead of terminating.
struct CompletenessFlags {
  bool AllLinear = true;
  bool AllLocsDefinite = true;

  bool allSet() const { return AllLinear && AllLocsDefinite; }
};

/// Per-engine knobs for the symbolic layer.
struct ConcolicOptions {
  /// CUTE-style extension (off = paper behaviour): treat the NULL/allocate
  /// coin of pointer inputs as a solvable boolean, so `p == NULL` branches
  /// can be flipped by the solver instead of by random restarts.
  bool SymbolicPointers = false;
  /// Optimization (off = literal Fig. 5): branches whose condition carried
  /// no symbolic variable are born `done`, so the search never asks the
  /// solver to negate a constraint that does not exist.
  bool MarkConcreteBranchesDone = false;
  /// Branch sites in the program under test (IRModule::numBranchSites);
  /// sizes the coverage bitmap up front. 0 = grow on demand.
  unsigned NumBranchSites = 0;
  /// Per-site static-analysis verdicts (StaticSummary::PrunedSites, not
  /// owned, must outlive every run): a site marked true has a statically
  /// Unsat negation, so its records are born `done` and the search never
  /// pays a solver call to rediscover that. Constraints are still
  /// recorded — prefixes, coverage, and run schedules are untouched.
  const std::vector<bool> *PrunedSites = nullptr;
};

/// Fig. 1's evaluate_symbolic. Stateless w.r.t. the run; reads S.
class SymbolicEvaluator {
public:
  SymbolicEvaluator(const SymbolicMemory &S,
                    const std::vector<InputInfo> &Inputs,
                    const ConcolicOptions &Options)
      : S(S), Inputs(Inputs), Options(Options) {}

  /// Symbolic value of \p E, or nullopt = "use the concrete value".
  /// Clears flags in \p Flags on theory fallbacks.
  std::optional<SymValue> evaluate(EvalContext &Ctx, const IRExpr *E,
                                   CompletenessFlags &Flags) const;

  /// The path-constraint contribution of branching on \p Cond with outcome
  /// \p Taken: a predicate that *holds* on the executed path. nullopt when
  /// the condition is concrete or outside the theory.
  std::optional<SymPred> branchPredicate(EvalContext &Ctx, const IRExpr *Cond,
                                         bool Taken,
                                         CompletenessFlags &Flags) const;

private:
  bool mentionsPointerChoice(const LinearExpr &L) const;
  /// Linear image of an operand: its symbolic value if present, else its
  /// concrete value as a constant. nullopt if the symbolic value is a
  /// predicate (outside arithmetic) or mentions a pointer choice.
  std::optional<LinearExpr> linearOperand(EvalContext &Ctx, const IRExpr *E,
                                          const std::optional<SymValue> &Sym,
                                          CompletenessFlags &Flags) const;

  const SymbolicMemory &S;
  const std::vector<InputInfo> &Inputs;
  const ConcolicOptions &Options;
};

/// What the run knows about the conditional it is about to execute —
/// frontier feedback for the checkpoint layer's capture cost model. All
/// fields describe the *negation* of the direction being taken, i.e. the
/// flip a future child run could schedule here.
struct BranchSiteInfo {
  /// The branch carried a solvable constraint (a flip is expressible).
  bool Flippable = false;
  /// The search may still schedule the flip of this position: the
  /// constraint is flippable and the position's record is not already
  /// done (explored, born-done concrete, or statically pruned).
  bool NegationSchedulable = false;
  /// The negated direction's coverage bit is already set in this run's
  /// bitmap (an under-approximation of global coverage).
  bool NegationCovered = false;
  /// Coverage-bitmap bit of the negated direction (2*site + direction),
  /// for BranchDistance priority lookups.
  uint32_t NegationBit = 0;
};

/// Observer the checkpoint layer installs on a run: fired in the branch
/// hook *before* the branch's constraint, coverage bit, or Fig. 4
/// bookkeeping commit, so a capture describes the state "about to execute
/// conditional K" (\p Flags is the pre-branch flag state; the predicate
/// has been evaluated — a pure read — to fill \p Site). The log positions
/// let the observer mark where in the run's undo journal / coverage log
/// this branch sits. Returns whether a capture was actually recorded —
/// the run starts journaling S mutations and coverage flips at the first
/// true (undo records older than the first capture can never be
/// replayed, so journaling before it would be pure overhead).
class BranchCaptureHook {
public:
  virtual bool captureAt(size_t K, const CompletenessFlags &Flags,
                         size_t SymLogPos, size_t CovLogPos,
                         const BranchSiteInfo &Site) = 0;
  virtual ~BranchCaptureHook() = default;
};

/// One entry of the inter-run `stack` (paper §2.3): the branch value taken
/// at the i-th conditional and whether both directions have been explored.
struct BranchRecord {
  bool Branch = false;
  bool Done = false;
  unsigned SiteId = 0;
};

/// Everything one instrumented run produced for solve_path_constraint.
struct PathData {
  std::vector<BranchRecord> Stack;
  /// Aligned with Stack: the id (in the engine's PredArena) of the
  /// predicate that held at each conditional, or kNoPred for
  /// concrete/out-of-theory conditions. Ids, not deep predicates: equal
  /// prefixes share ids, so downstream comparison/hashing is O(1).
  std::vector<PredId> Constraints;
};

/// The instrumentation for one run. Create fresh per run with the stack
/// predicted by the previous run's solve_path_constraint. \p Arena is the
/// engine-lifetime predicate arena every run's constraints intern into.
class ConcolicRun : public ExecHooks {
public:
  ConcolicRun(const std::vector<InputInfo> &Inputs, PredArena &Arena,
              std::vector<BranchRecord> PredictedStack,
              const ConcolicOptions &Options)
      : Inputs(Inputs), Arena(Arena), Options(Options),
        Eval(S, Inputs, Options), Stack(std::move(PredictedStack)),
        CoveredBits(2 * size_t(Options.NumBranchSites), false) {}

  /// Rewinds this object to the state a freshly constructed run would
  /// have, with \p PredictedStack as the new prediction. Pooled engines
  /// call this between runs instead of reconstructing, keeping the
  /// capacity of the per-run vectors. Reinstall the capture hook (and the
  /// external model) afterwards.
  void reset(std::vector<BranchRecord> PredictedStack) {
    S.setJournal(nullptr);
    S.clear();
    Flags = CompletenessFlags();
    Stack = std::move(PredictedStack);
    Constraints.clear();
    K = 0;
    ForcingOk = true;
    CoveredBits.assign(2 * size_t(Options.NumBranchSites), false);
    CoveredCount = 0;
    PendingArgs.clear();
    Capture = nullptr;
    Journaling = false;
    // finalize() steals the journal vectors into the run's pack, so their
    // capacity is gone by the time a pooled run is reset. Re-reserving the
    // high-water mark turns ~log2(entries) mid-run reallocations per run
    // into one up-front allocation.
    SymJournal.clear();
    SymJournal.reserve(SymJournalHint);
    CovLog.clear();
    CovLog.reserve(CovLogHint);
  }

  /// Environment model for external functions, installed by the driver:
  /// must return the concrete value and perform any input bookkeeping
  /// (fresh InputId, S binding via bindInput).
  std::function<int64_t(EvalContext &, const CallInstr &, Addr, ValType)>
      ExternalFn;

  /// Binds a fresh input cell: S[Address] := x_Id (driver initialization
  /// and external-function returns).
  void bindInput(Addr Address, ValType VT, InputId Id) {
    S.set(Address, VT.SizeBytes, SymValue(LinearExpr::variable(Id)));
  }

  SymbolicMemory &symbolicMemory() { return S; }
  CompletenessFlags &flags() { return Flags; }
  bool forcingOk() const { return ForcingOk; }
  /// Number of conditionals executed (k in Fig. 3).
  size_t conditionalsExecuted() const { return K; }
  /// Branch-direction coverage bitmap of this run: bit 2*site + direction
  /// (a flat vector<bool>, not a red-black tree — onBranch is the hottest
  /// hook in the engine).
  const std::vector<bool> &coveredBits() const { return CoveredBits; }
  /// Number of bits set in coveredBits().
  unsigned coveredCount() const { return CoveredCount; }
  /// Extracts the run's path data (call after the run).
  PathData takePath() {
    PathData P;
    P.Stack = std::move(Stack);
    P.Constraints = std::move(Constraints);
    return P;
  }

  // --- Checkpoint support (src/concolic/Checkpoint.*) ---------------------

  /// Installs \p H. Journaling of S mutations and coverage-bit flips —
  /// what lets the observer's captures be materialized from the run's
  /// final state — starts lazily at the first actual capture: rollback
  /// only ever replays the journal suffix at or after the first entry's
  /// position, so earlier records would be dead weight. Call before
  /// execution starts.
  void setCaptureHook(BranchCaptureHook *H) {
    Capture = H;
    S.setJournal(nullptr);
  }

  /// Rewinds this *fresh* run onto a checkpoint: the first \p KStart
  /// conditionals count as already executed with \p ConstraintPrefix as
  /// their recorded constraints, S / coverage / flags as of that point.
  /// The predicted Stack passed to the constructor is untouched — the
  /// VM resumes mid-prefix and replays only the suffix, so Fig. 4's
  /// compare starts at position KStart. Call after setCaptureHook.
  void adoptCheckpoint(size_t KStart, std::vector<PredId> ConstraintPrefix,
                       SymbolicMemory SPrefix, std::vector<bool> Cov,
                       unsigned CovCount, CompletenessFlags F) {
    K = KStart;
    Constraints = std::move(ConstraintPrefix);
    S.replaceCells(std::move(SPrefix));
    CoveredBits = std::move(Cov);
    CoveredCount = CovCount;
    Flags = F;
  }

  /// Steals the run's final symbolic memory (detaching the journal first —
  /// the returned object must not keep a pointer into this run).
  SymbolicMemory takeSymbolicMemory() {
    S.setJournal(nullptr);
    return std::move(S);
  }
  SymbolicMemory::Journal takeSymJournal() {
    SymJournalHint = std::max(SymJournalHint, SymJournal.size());
    return std::move(SymJournal);
  }
  /// Indices of coverage bits freshly set by this run, in set order.
  std::vector<uint32_t> takeCovLog() {
    CovLogHint = std::max(CovLogHint, CovLog.size());
    return std::move(CovLog);
  }
  std::vector<bool> takeCoveredBits() { return std::move(CoveredBits); }

  // --- ExecHooks ----------------------------------------------------------
  void onStore(EvalContext &Ctx, Addr Address, ValType VT,
               const IRExpr *ValueExpr, int64_t Value) override;
  void onCopy(EvalContext &Ctx, Addr Dst, Addr Src, uint64_t Size) override;
  bool onBranch(EvalContext &Ctx, const CondJumpInstr &Branch,
                bool Taken) override;
  void onCallArg(EvalContext &CallerCtx, const IRExpr *ArgExpr,
                 ValType ParamVT, int64_t Value, unsigned ArgIndex) override;
  void onParamBound(Addr ParamAddr, unsigned ArgIndex, ValType VT,
                    int64_t Value) override;
  void onNativeCall(EvalContext &Ctx, const CallInstr &Call,
                    const std::vector<int64_t> &ArgValues) override;
  int64_t onExternalCall(EvalContext &Ctx, const CallInstr &Call,
                         Addr DestAddr, ValType RetVT) override;
  void onRegionDead(Addr Base, uint64_t Size) override;

private:
  const std::vector<InputInfo> &Inputs;
  PredArena &Arena;
  ConcolicOptions Options;
  SymbolicMemory S;
  SymbolicEvaluator Eval;
  CompletenessFlags Flags;

  std::vector<BranchRecord> Stack;
  std::vector<PredId> Constraints;
  size_t K = 0;
  bool ForcingOk = true;
  std::vector<bool> CoveredBits;
  unsigned CoveredCount = 0;
  /// Symbolic images of call arguments between onCallArg and onParamBound.
  std::vector<std::optional<SymValue>> PendingArgs;

  // Checkpoint recording (active only when Capture is installed).
  BranchCaptureHook *Capture = nullptr;
  /// Set at the run's first actual capture (see setCaptureHook).
  bool Journaling = false;
  SymbolicMemory::Journal SymJournal;
  std::vector<uint32_t> CovLog;
  /// High-water marks of the journals across pooled runs (reserve hints).
  size_t SymJournalHint = 0;
  size_t CovLogHint = 0;
};

} // namespace dart

#endif // DART_CONCOLIC_CONCOLIC_H
