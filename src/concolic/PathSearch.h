//===- PathSearch.h - solve_path_constraint and search strategies -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 5's solve_path_constraint: pick the deepest not-yet-done branch of
/// the last execution, negate its constraint, and solve the prefix to get
/// the next run's inputs. The paper's search is depth-first; footnote 4
/// allows other orders, implemented here as breadth-first and random
/// branch-selection strategies.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_PATHSEARCH_H
#define DART_CONCOLIC_PATHSEARCH_H

#include "concolic/Concolic.h"
#include "solver/LinearSolver.h"
#include "support/Rng.h"

#include <map>

namespace dart {

/// Branch-selection order for the directed search (paper footnote 4).
/// Distance picks the flip whose landing block is statically closest to
/// a not-yet-covered branch (see analysis/BranchDistance.h), with
/// depth-first order as the tie-break.
enum class SearchStrategy { DepthFirst, BreadthFirst, RandomBranch, Distance };

const char *searchStrategyName(SearchStrategy S);

/// Outcome of solve_path_constraint.
struct SolveOutcome {
  /// True if a flippable branch with a satisfiable negation was found.
  bool Found = false;
  /// The stack to predict the next run with: Stack[0..j] with branch j
  /// flipped (its done flag is set on arrival, Fig. 4).
  std::vector<BranchRecord> NextStack;
  /// Solver model: new values for the inputs in the constraint prefix
  /// (IM' of Fig. 5; apply over the previous IM).
  std::map<InputId, int64_t> Model;
  /// Index of the flipped branch.
  size_t FlippedIndex = 0;
  /// Number of solver queries issued.
  unsigned SolverCalls = 0;
  /// See CandidateSet::TheoryMisled (propagated so the sequential engine
  /// can clear `all_linear` when a doomed flip was dropped).
  bool TheoryMisled = false;
};

/// Fig. 5. \p Arena is the arena the path's constraint ids live in. \p Hint
/// is the previous IM restricted to known inputs: solutions prefer old
/// values so unrelated inputs stay put (IM + IM').
/// \p SitePriorities (Distance strategy only) maps coverage bit
/// `2*site + direction` to its static distance priority; null keeps every
/// strategy's historical order byte-identical.
SolveOutcome solvePathConstraint(const PathData &Path, PredArena &Arena,
                                 LinearSolver &Solver,
                                 const std::function<VarDomain(InputId)> &DomainOf,
                                 const std::map<InputId, int64_t> &Hint,
                                 SearchStrategy Strategy, Rng &Rng,
                                 const std::vector<uint32_t> *SitePriorities =
                                     nullptr);

/// Every satisfiable branch flip of one path (speculative frontier
/// expansion, footnote 4's strategy freedom taken to its limit).
struct CandidateSet {
  /// Satisfiable flips in strategy order; each element is a complete
  /// SolveOutcome (stack prefix with the flip applied, solver model).
  std::vector<SolveOutcome> Candidates;
  /// Total solver queries issued across all candidates.
  unsigned SolverCalls = 0;
  /// True if some flippable branch was skipped because \p MaxCandidates
  /// was hit — exploration through this path is then incomplete.
  bool Truncated = false;
  /// True if a satisfiable flip was dropped because its model changed no
  /// input: the branch was recorded under wrapped 32-bit arithmetic the
  /// ideal-integer theory cannot express, so running the "new" inputs
  /// would replay the old path into a forcing mismatch. The engine must
  /// clear `all_linear` (the subtree stays unexplored).
  bool TheoryMisled = false;
};

/// The multi-candidate solve_path_constraint the parallel engine feeds the
/// frontier with: instead of returning at the first satisfiable negation,
/// collects every satisfiable flip (up to \p MaxCandidates; 0 = all, the
/// only setting that preserves exhaustive exploration).
/// solvePathConstraint is exactly this with MaxCandidates == 1.
///
/// With SolverOptions::IncrementalSessions on, candidates are solved
/// through one SolverSession: the shared prefix is pushed once and
/// adjusted by push/pop deltas as the strategy order walks the path, so
/// each probe reuses the prefix's propagated state instead of
/// renormalizing the whole conjunction. Off, each candidate rebuilds and
/// solves the full system (the pre-session batch behaviour; ablation and
/// differential-test lever).
CandidateSet solveCandidates(const PathData &Path, PredArena &Arena,
                             LinearSolver &Solver,
                             const std::function<VarDomain(InputId)> &DomainOf,
                             const std::map<InputId, int64_t> &Hint,
                             SearchStrategy Strategy, Rng &Rng,
                             unsigned MaxCandidates,
                             const std::vector<uint32_t> *SitePriorities =
                                 nullptr);

} // namespace dart

#endif // DART_CONCOLIC_PATHSEARCH_H
