//===- PathSearch.h - solve_path_constraint and search strategies -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 5's solve_path_constraint: pick the deepest not-yet-done branch of
/// the last execution, negate its constraint, and solve the prefix to get
/// the next run's inputs. The paper's search is depth-first; footnote 4
/// allows other orders, implemented here as breadth-first and random
/// branch-selection strategies.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_PATHSEARCH_H
#define DART_CONCOLIC_PATHSEARCH_H

#include "concolic/Concolic.h"
#include "solver/LinearSolver.h"
#include "support/Rng.h"

#include <map>

namespace dart {

/// Branch-selection order for the directed search (paper footnote 4).
enum class SearchStrategy { DepthFirst, BreadthFirst, RandomBranch };

const char *searchStrategyName(SearchStrategy S);

/// Outcome of solve_path_constraint.
struct SolveOutcome {
  /// True if a flippable branch with a satisfiable negation was found.
  bool Found = false;
  /// The stack to predict the next run with: Stack[0..j] with branch j
  /// flipped (its done flag is set on arrival, Fig. 4).
  std::vector<BranchRecord> NextStack;
  /// Solver model: new values for the inputs in the constraint prefix
  /// (IM' of Fig. 5; apply over the previous IM).
  std::map<InputId, int64_t> Model;
  /// Index of the flipped branch.
  size_t FlippedIndex = 0;
  /// Number of solver queries issued.
  unsigned SolverCalls = 0;
};

/// Fig. 5. \p Hint is the previous IM restricted to known inputs: solutions
/// prefer old values so unrelated inputs stay put (IM + IM').
SolveOutcome solvePathConstraint(const PathData &Path, LinearSolver &Solver,
                                 const std::function<VarDomain(InputId)> &DomainOf,
                                 const std::map<InputId, int64_t> &Hint,
                                 SearchStrategy Strategy, Rng &Rng);

} // namespace dart

#endif // DART_CONCOLIC_PATHSEARCH_H
