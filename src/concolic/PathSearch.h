//===- PathSearch.h - solve_path_constraint and search strategies -*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 5's solve_path_constraint: pick the deepest not-yet-done branch of
/// the last execution, negate its constraint, and solve the prefix to get
/// the next run's inputs. The paper's search is depth-first; footnote 4
/// allows other orders, implemented here as breadth-first and random
/// branch-selection strategies.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_PATHSEARCH_H
#define DART_CONCOLIC_PATHSEARCH_H

#include "concolic/Concolic.h"
#include "solver/LinearSolver.h"
#include "support/Rng.h"

#include <map>
#include <mutex>

namespace dart {

/// Branch-selection order for the directed search (paper footnote 4).
/// Distance picks the flip whose landing block is statically closest to
/// a not-yet-covered branch (see analysis/BranchDistance.h), with
/// depth-first order as the tie-break. Diversity is adaptive random
/// testing over path signatures: prefer the flip whose predicted path is
/// most Hamming-distant from a sample of already-executed paths.
/// Portfolio is not a branch order at all — the parallel engine maps it
/// to a per-worker assignment of the single strategies (W0 dfs,
/// W1 distance, the rest diversity); anywhere a concrete order is
/// needed it degrades to depth-first.
enum class SearchStrategy {
  DepthFirst,
  BreadthFirst,
  RandomBranch,
  Distance,
  Diversity,
  Portfolio,
};

const char *searchStrategyName(SearchStrategy S);

/// 64-bit Bloom signature of an executed path: one hashed bit per
/// (site, taken-direction) on the branch stack, OR'd with each recorded
/// constraint's input signature (PredArena::inputSig — which inputs the
/// path actually constrained). Two paths through different branches or
/// touching different inputs diverge in the signature with high
/// probability; Hamming distance over signatures is the ART metric.
uint64_t pathSignature(const PathData &Path, const PredArena &Arena);

/// Signature of the path a flip at \p FlipIndex forces: the executed
/// prefix below the flip, plus the flipped direction of the branch
/// itself. This is computable *before* running the child — it is what
/// the diversity strategy scores and what the parallel frontier stores
/// per work item.
uint64_t predictedSignature(const PathData &Path, size_t FlipIndex,
                            const PredArena &Arena);

/// Fixed-capacity uniform sample of executed-path signatures (reservoir
/// sampling), shared by every worker under `--strategy diversity` /
/// portfolio. Capacity is constant, so scoring a candidate is O(capacity)
/// and inserting is O(1) — the archive never scans or stores the full
/// execution history. The reservoir keeps its own deterministic Rng
/// (seeded once from the campaign seed) so sampling does not perturb the
/// engines' input-generation streams; at jobs 1 the sample sequence is a
/// pure function of the run order, keeping single-strategy campaigns
/// deterministic.
class DiversitySampler {
public:
  static constexpr unsigned kCapacity = 32;

  explicit DiversitySampler(uint64_t Seed) : SampleRng(Seed) {}

  /// Fold one executed path's signature into the reservoir.
  void insert(uint64_t Sig);

  /// Stable copy of the current sample (thread-safe snapshot; scoring
  /// walks the copy so a concurrent insert cannot tear a read).
  std::vector<uint64_t> snapshot() const;

  /// Smallest Hamming distance from \p Sig to any archived signature;
  /// 64 (the maximum) when the archive is empty, so the first runs rank
  /// every candidate equally novel.
  static unsigned minDistance(uint64_t Sig,
                              const std::vector<uint64_t> &Archive);

private:
  mutable std::mutex Mu;
  std::vector<uint64_t> Archive;
  uint64_t Seen = 0;
  Rng SampleRng;
};

/// Sentinel for SolveOutcome::TargetBit.
constexpr uint32_t kNoTargetBit = ~uint32_t(0);

/// Outcome of solve_path_constraint.
struct SolveOutcome {
  /// True if a flippable branch with a satisfiable negation was found.
  bool Found = false;
  /// The stack to predict the next run with: Stack[0..j] with branch j
  /// flipped (its done flag is set on arrival, Fig. 4).
  std::vector<BranchRecord> NextStack;
  /// Solver model: new values for the inputs in the constraint prefix
  /// (IM' of Fig. 5; apply over the previous IM).
  std::map<InputId, int64_t> Model;
  /// Index of the flipped branch.
  size_t FlippedIndex = 0;
  /// Number of solver queries issued.
  unsigned SolverCalls = 0;
  /// See CandidateSet::TheoryMisled (propagated so the sequential engine
  /// can clear `all_linear` when a doomed flip was dropped).
  bool TheoryMisled = false;
  /// Coverage bit `2*site + direction` the flipped branch aims at (the
  /// direction the *next* run is predicted to take), or kNoTargetBit.
  /// Lets the engine attribute newly covered directions to the solver
  /// query that targeted them (verifier witnesses).
  uint32_t TargetBit = kNoTargetBit;
};

/// Fig. 5. \p Arena is the arena the path's constraint ids live in. \p Hint
/// is the previous IM restricted to known inputs: solutions prefer old
/// values so unrelated inputs stay put (IM + IM').
/// \p SitePriorities (Distance strategy only) maps coverage bit
/// `2*site + direction` to its static distance priority; null keeps every
/// strategy's historical order byte-identical. \p Sampler (Diversity
/// only) is the executed-path archive candidates are scored against;
/// null degrades Diversity to depth-first order.
SolveOutcome solvePathConstraint(const PathData &Path, PredArena &Arena,
                                 LinearSolver &Solver,
                                 const std::function<VarDomain(InputId)> &DomainOf,
                                 const std::map<InputId, int64_t> &Hint,
                                 SearchStrategy Strategy, Rng &Rng,
                                 const std::vector<uint32_t> *SitePriorities =
                                     nullptr,
                                 const DiversitySampler *Sampler = nullptr);

/// Every satisfiable branch flip of one path (speculative frontier
/// expansion, footnote 4's strategy freedom taken to its limit).
struct CandidateSet {
  /// Satisfiable flips in strategy order; each element is a complete
  /// SolveOutcome (stack prefix with the flip applied, solver model).
  std::vector<SolveOutcome> Candidates;
  /// Total solver queries issued across all candidates.
  unsigned SolverCalls = 0;
  /// True if some flippable branch was skipped because \p MaxCandidates
  /// was hit — exploration through this path is then incomplete.
  bool Truncated = false;
  /// True if a satisfiable flip was dropped because its model changed no
  /// input: the branch was recorded under wrapped 32-bit arithmetic the
  /// ideal-integer theory cannot express, so running the "new" inputs
  /// would replay the old path into a forcing mismatch. The engine must
  /// clear `all_linear` (the subtree stays unexplored).
  bool TheoryMisled = false;
};

/// The multi-candidate solve_path_constraint the parallel engine feeds the
/// frontier with: instead of returning at the first satisfiable negation,
/// collects every satisfiable flip (up to \p MaxCandidates; 0 = all, the
/// only setting that preserves exhaustive exploration).
/// solvePathConstraint is exactly this with MaxCandidates == 1.
///
/// With SolverOptions::IncrementalSessions on, candidates are solved
/// through one SolverSession: the shared prefix is pushed once and
/// adjusted by push/pop deltas as the strategy order walks the path, so
/// each probe reuses the prefix's propagated state instead of
/// renormalizing the whole conjunction. Off, each candidate rebuilds and
/// solves the full system (the pre-session batch behaviour; ablation and
/// differential-test lever).
CandidateSet solveCandidates(const PathData &Path, PredArena &Arena,
                             LinearSolver &Solver,
                             const std::function<VarDomain(InputId)> &DomainOf,
                             const std::map<InputId, int64_t> &Hint,
                             SearchStrategy Strategy, Rng &Rng,
                             unsigned MaxCandidates,
                             const std::vector<uint32_t> *SitePriorities =
                                 nullptr,
                             const DiversitySampler *Sampler = nullptr);

} // namespace dart

#endif // DART_CONCOLIC_PATHSEARCH_H
