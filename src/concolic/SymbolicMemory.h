//===- SymbolicMemory.h - The paper's symbolic memory S ---------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic memory S (paper §2.3): a map from memory addresses to
/// symbolic expressions. Cells are keyed by exact address and record the
/// scalar width they describe. Stores of concrete values erase overlapping
/// cells (equivalent to the paper's storing of constant expressions, but
/// keeps S small); region death (frame pop, free) scrubs the region's
/// address range.
///
/// An optional undo journal records every mutation in reverse form; the
/// checkpoint layer replays a journal suffix backwards to roll a run's
/// final S back to any branch position (rollback()).
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_SYMBOLICMEMORY_H
#define DART_CONCOLIC_SYMBOLICMEMORY_H

#include "interp/Memory.h"
#include "symbolic/SymExpr.h"

#include <map>
#include <optional>
#include <vector>

namespace dart {

/// One reverse-mutation record: how to undo a single cell change.
struct SymMemUndo {
  Addr Address = 0;
  unsigned Width = 0;
  /// The cell's previous value — reinsert on undo; nullopt means the cell
  /// did not exist (undo = erase).
  std::optional<SymValue> Old;
};

class SymbolicMemory {
public:
  using Journal = std::vector<SymMemUndo>;
  /// Binds S[Address] (a \p SizeBytes-wide cell) to \p Value. Constant
  /// values erase instead (concrete fallback).
  void set(Addr Address, unsigned SizeBytes, SymValue Value);

  /// The symbolic value of the cell at \p Address if it was bound with the
  /// same width; nullopt otherwise (including partial overlaps).
  std::optional<SymValue> get(Addr Address, unsigned SizeBytes) const;

  /// Erases every cell overlapping [Address, Address+SizeBytes).
  void eraseRange(Addr Address, uint64_t SizeBytes);

  /// Struct copy: replays S entries from the source range into the
  /// destination range (same offsets), erasing stale destination cells.
  void copyRange(Addr Dst, Addr Src, uint64_t SizeBytes);

  size_t size() const { return Cells.size(); }
  void clear() { Cells.clear(); }

  /// Iteration support (tests, debugging).
  const std::map<Addr, std::pair<unsigned, SymValue>> &cells() const {
    return Cells;
  }

  /// Starts (non-null) or stops (null) journaling mutations into \p J.
  /// The journal pointer is not owned and must outlive the recording.
  void setJournal(Journal *J) { Log = J; }

  /// Replaces the cell map wholesale (checkpoint adoption); journaling
  /// state is unaffected.
  void replaceCells(SymbolicMemory &&Other) { Cells = std::move(Other.Cells); }

  /// Undoes every journaled mutation from the end of \p J down to (and
  /// excluding) position \p Pos, restoring the state S had when the
  /// journal was \p Pos entries long. Does not journal the undos.
  void rollback(const Journal &J, size_t Pos);

private:
  /// Address -> (width, value). Cells never overlap: set() scrubs first.
  std::map<Addr, std::pair<unsigned, SymValue>> Cells;
  Journal *Log = nullptr;
};

} // namespace dart

#endif // DART_CONCOLIC_SYMBOLICMEMORY_H
