//===- SymbolicMemory.h - The paper's symbolic memory S ---------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic memory S (paper §2.3): a map from memory addresses to
/// symbolic expressions. Cells are keyed by exact address and record the
/// scalar width they describe. Stores of concrete values erase overlapping
/// cells (equivalent to the paper's storing of constant expressions, but
/// keeps S small); region death (frame pop, free) scrubs the region's
/// address range.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_SYMBOLICMEMORY_H
#define DART_CONCOLIC_SYMBOLICMEMORY_H

#include "interp/Memory.h"
#include "symbolic/SymExpr.h"

#include <map>
#include <optional>

namespace dart {

class SymbolicMemory {
public:
  /// Binds S[Address] (a \p SizeBytes-wide cell) to \p Value. Constant
  /// values erase instead (concrete fallback).
  void set(Addr Address, unsigned SizeBytes, SymValue Value);

  /// The symbolic value of the cell at \p Address if it was bound with the
  /// same width; nullopt otherwise (including partial overlaps).
  std::optional<SymValue> get(Addr Address, unsigned SizeBytes) const;

  /// Erases every cell overlapping [Address, Address+SizeBytes).
  void eraseRange(Addr Address, uint64_t SizeBytes);

  /// Struct copy: replays S entries from the source range into the
  /// destination range (same offsets), erasing stale destination cells.
  void copyRange(Addr Dst, Addr Src, uint64_t SizeBytes);

  size_t size() const { return Cells.size(); }
  void clear() { Cells.clear(); }

  /// Iteration support (tests, debugging).
  const std::map<Addr, std::pair<unsigned, SymValue>> &cells() const {
    return Cells;
  }

private:
  /// Address -> (width, value). Cells never overlap: set() scrubs first.
  std::map<Addr, std::pair<unsigned, SymValue>> Cells;
};

} // namespace dart

#endif // DART_CONCOLIC_SYMBOLICMEMORY_H
