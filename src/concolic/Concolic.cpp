//===- Concolic.cpp - Intertwined concrete/symbolic execution --------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/Concolic.h"

#include <cassert>

using namespace dart;

bool SymbolicEvaluator::mentionsPointerChoice(const LinearExpr &L) const {
  for (const auto &[Id, C] : L.coeffs()) {
    (void)C;
    if (Id < Inputs.size() && Inputs[Id].Kind == InputKind::PointerChoice)
      return true;
  }
  return false;
}

std::optional<LinearExpr>
SymbolicEvaluator::linearOperand(EvalContext &Ctx, const IRExpr *E,
                                 const std::optional<SymValue> &Sym,
                                 CompletenessFlags &Flags) const {
  if (!Sym)
    return LinearExpr(Ctx.evalConcrete(E));
  if (Sym->isPred()) {
    // Arithmetic over a stored comparison result leaves the theory.
    Flags.AllLinear = false;
    return std::nullopt;
  }
  if (mentionsPointerChoice(Sym->linear())) {
    // Pointer values are only compared, never computed with; arithmetic on
    // an input-dependent pointer is an address we cannot reason about.
    Flags.AllLocsDefinite = false;
    return std::nullopt;
  }
  return Sym->linear();
}

std::optional<SymValue>
SymbolicEvaluator::evaluate(EvalContext &Ctx, const IRExpr *E,
                            CompletenessFlags &Flags) const {
  switch (E->kind()) {
  case IRExpr::Kind::Const:
  case IRExpr::Kind::GlobalAddr:
  case IRExpr::Kind::FrameAddr:
    return std::nullopt; // concrete

  case IRExpr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    // The address is always resolved concretely (this is the key dynamic
    // advantage over static analysis, §2.5): no alias analysis, just the
    // actual runtime address. If the address *computation* was symbolic,
    // constraints we emit assume this fixed address — record the
    // incompleteness (Fig. 1's all_locs_definite).
    std::optional<SymValue> AddrSym =
        evaluate(Ctx, L->address(), Flags);
    if (AddrSym && !AddrSym->isConstant())
      Flags.AllLocsDefinite = false;
    Addr A = static_cast<Addr>(Ctx.evalConcrete(L->address()));
    return S.get(A, L->valType().SizeBytes);
  }

  case IRExpr::Kind::Unary: {
    const auto *U = cast<UnaryIRExpr>(E);
    std::optional<SymValue> Op = evaluate(Ctx, U->operand(), Flags);
    if (!Op)
      return std::nullopt;
    if (U->op() == IRUnOp::Neg) {
      std::optional<LinearExpr> L =
          linearOperand(Ctx, U->operand(), Op, Flags);
      if (!L)
        return std::nullopt;
      std::optional<LinearExpr> Negated = L->negate();
      if (!Negated) {
        Flags.AllLinear = false;
        return std::nullopt;
      }
      return SymValue(std::move(*Negated));
    }
    // Bitwise complement of a symbolic value leaves the theory.
    Flags.AllLinear = false;
    return std::nullopt;
  }

  case IRExpr::Kind::Binary: {
    const auto *B = cast<BinaryIRExpr>(E);
    std::optional<SymValue> LS = evaluate(Ctx, B->lhs(), Flags);
    std::optional<SymValue> RS = evaluate(Ctx, B->rhs(), Flags);
    if (!LS && !RS)
      return std::nullopt; // fully concrete

    switch (B->op()) {
    case IRBinOp::Add:
    case IRBinOp::Sub: {
      std::optional<LinearExpr> L = linearOperand(Ctx, B->lhs(), LS, Flags);
      std::optional<LinearExpr> R = linearOperand(Ctx, B->rhs(), RS, Flags);
      if (!L || !R)
        return std::nullopt;
      std::optional<LinearExpr> Result =
          B->op() == IRBinOp::Add ? L->add(*R) : L->sub(*R);
      if (!Result) {
        Flags.AllLinear = false;
        return std::nullopt;
      }
      return SymValue(std::move(*Result));
    }
    case IRBinOp::Mul: {
      // Fig. 1: the product of two non-constant expressions is nonlinear.
      if (LS && RS && !LS->isConstant() && !RS->isConstant()) {
        Flags.AllLinear = false;
        return std::nullopt;
      }
      const IRExpr *SymSide = LS ? B->lhs() : B->rhs();
      const std::optional<SymValue> &SymVal = LS ? LS : RS;
      const IRExpr *ConstSide = LS ? B->rhs() : B->lhs();
      std::optional<LinearExpr> L =
          linearOperand(Ctx, SymSide, SymVal, Flags);
      if (!L)
        return std::nullopt;
      int64_t Factor = Ctx.evalConcrete(ConstSide);
      std::optional<LinearExpr> Result = L->scale(Factor);
      if (!Result) {
        Flags.AllLinear = false;
        return std::nullopt;
      }
      return SymValue(std::move(*Result));
    }
    case IRBinOp::Shl: {
      // x << k with concrete k is x * 2^k: still linear.
      if (LS && !RS && !LS->isPred()) {
        int64_t Count = Ctx.evalConcrete(B->rhs());
        if (Count >= 0 && Count < 62) {
          std::optional<LinearExpr> L =
              linearOperand(Ctx, B->lhs(), LS, Flags);
          if (!L)
            return std::nullopt;
          std::optional<LinearExpr> Result =
              L->scale(int64_t(1) << Count);
          if (Result)
            return SymValue(std::move(*Result));
        }
      }
      Flags.AllLinear = false;
      return std::nullopt;
    }
    case IRBinOp::Div:
    case IRBinOp::Rem:
    case IRBinOp::Shr:
    case IRBinOp::And:
    case IRBinOp::Or:
    case IRBinOp::Xor:
      // Outside linear integer arithmetic: concrete fallback (Fig. 1).
      Flags.AllLinear = false;
      return std::nullopt;
    }
    return std::nullopt;
  }

  case IRExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(E);
    std::optional<SymValue> LS = evaluate(Ctx, C->lhs(), Flags);
    std::optional<SymValue> RS = evaluate(Ctx, C->rhs(), Flags);
    if (!LS && !RS)
      return std::nullopt;

    // Comparisons against a stored comparison result: `flag == 0/1` style
    // tests reduce to the stored predicate (or its negation).
    if ((LS && LS->isPred()) || (RS && RS->isPred())) {
      const SymValue &PredSide = (LS && LS->isPred()) ? *LS : *RS;
      const IRExpr *OtherE = (LS && LS->isPred()) ? C->rhs() : C->lhs();
      const std::optional<SymValue> &OtherS =
          (LS && LS->isPred()) ? RS : LS;
      if (!OtherS || OtherS->isConstant()) {
        int64_t K = OtherS && OtherS->isLinear()
                        ? OtherS->linear().constant()
                        : Ctx.evalConcrete(OtherE);
        if (C->pred() == CmpPred::Eq && K == 1)
          return SymValue(PredSide.pred());
        if (C->pred() == CmpPred::Eq && K == 0)
          return SymValue(PredSide.pred().negated());
        if (C->pred() == CmpPred::Ne && K == 0)
          return SymValue(PredSide.pred());
        if (C->pred() == CmpPred::Ne && K == 1)
          return SymValue(PredSide.pred().negated());
      }
      Flags.AllLinear = false;
      return std::nullopt;
    }

    // Pointer comparisons: concrete values decide them (the dynamic-alias
    // advantage of §2.5). With the symbolic-pointer extension, equality
    // against NULL is expressible through the allocation-choice input.
    if (C->operandValType().IsPointer) {
      auto BareChoice =
          [&](const std::optional<SymValue> &V) -> std::optional<InputId> {
        if (!V || !V->isLinear())
          return std::nullopt;
        const LinearExpr &L = V->linear();
        if (L.constant() != 0 || L.coeffs().size() != 1)
          return std::nullopt;
        const auto &[Id, Coef] = *L.coeffs().begin();
        if (Coef != 1 || Id >= Inputs.size() ||
            Inputs[Id].Kind != InputKind::PointerChoice)
          return std::nullopt;
        return Id;
      };
      if (Options.SymbolicPointers &&
          (C->pred() == CmpPred::Eq || C->pred() == CmpPred::Ne)) {
        std::optional<InputId> LC = BareChoice(LS);
        std::optional<InputId> RC = BareChoice(RS);
        const IRExpr *OtherE = LC ? C->rhs() : C->lhs();
        const std::optional<SymValue> &OtherS = LC ? RS : LS;
        std::optional<InputId> Choice = LC ? LC : RC;
        if (Choice && !OtherS && Ctx.evalConcrete(OtherE) == 0) {
          // p ==/!= NULL  <=>  choice ==/!= 0.
          return SymValue(
              SymPred(C->pred(), LinearExpr::variable(*Choice)));
        }
      }
      Flags.AllLocsDefinite = false;
      return std::nullopt;
    }

    std::optional<LinearExpr> L = linearOperand(Ctx, C->lhs(), LS, Flags);
    std::optional<LinearExpr> R = linearOperand(Ctx, C->rhs(), RS, Flags);
    if (!L || !R)
      return std::nullopt;
    std::optional<SymPred> P = SymPred::make(C->pred(), *L, *R);
    if (!P) {
      Flags.AllLinear = false;
      return std::nullopt;
    }
    return SymValue(std::move(*P));
  }

  case IRExpr::Kind::Cast: {
    // Width/sign conversions pass through: the theory works over ideal
    // integers, the same (documented) approximation the paper's lp_solve
    // backend makes for C's modular arithmetic.
    const auto *C = cast<CastIRExpr>(E);
    return evaluate(Ctx, C->operand(), Flags);
  }
  }
  return std::nullopt;
}

std::optional<SymPred>
SymbolicEvaluator::branchPredicate(EvalContext &Ctx, const IRExpr *Cond,
                                   bool Taken,
                                   CompletenessFlags &Flags) const {
  std::optional<SymValue> V = evaluate(Ctx, Cond, Flags);
  if (!V || V->isConstant())
    return std::nullopt;
  if (V->isPred())
    return Taken ? V->pred() : V->pred().negated();
  const LinearExpr &L = V->linear();
  if (mentionsPointerChoice(L)) {
    // `if (p)` on a pointer input: expressible only as a choice predicate,
    // and only when the value is exactly the choice variable.
    if (Options.SymbolicPointers && L.constant() == 0 &&
        L.coeffs().size() == 1 && L.coeffs().begin()->Coeff == 1) {
      SymPred P(CmpPred::Ne, L);
      return Taken ? P : P.negated();
    }
    Flags.AllLocsDefinite = false;
    return std::nullopt;
  }
  SymPred P(CmpPred::Ne, L);
  return Taken ? P : P.negated();
}

//===----------------------------------------------------------------------===//
// ConcolicRun: the instrumented program of Fig. 3
//===----------------------------------------------------------------------===//

void ConcolicRun::onStore(EvalContext &Ctx, Addr Address, ValType VT,
                          const IRExpr *ValueExpr, int64_t Value) {
  (void)Value;
  if (!ValueExpr) {
    // No expression (native-call result, ...): the cell becomes concrete.
    S.eraseRange(Address, VT.SizeBytes);
    return;
  }
  // Fig. 3, assignment case: S := S + [m -> evaluate_symbolic(e, M, S)].
  std::optional<SymValue> Sym = Eval.evaluate(Ctx, ValueExpr, Flags);
  if (Sym && !Sym->isConstant())
    S.set(Address, VT.SizeBytes, std::move(*Sym));
  else
    S.eraseRange(Address, VT.SizeBytes);
}

void ConcolicRun::onCopy(EvalContext &Ctx, Addr Dst, Addr Src,
                         uint64_t Size) {
  (void)Ctx;
  S.copyRange(Dst, Src, Size);
}

bool ConcolicRun::onBranch(EvalContext &Ctx, const CondJumpInstr &Branch,
                           bool Taken) {
  // Path constraint contribution (Fig. 3, conditional case). Evaluated
  // before the capture hook — the evaluation reads VM memory and S but
  // mutates neither (only Flags, saved below), so the capture still
  // describes the state "about to execute conditional K" while knowing
  // whether the branch is flippable.
  CompletenessFlags PreFlags = Flags;
  std::optional<SymPred> C =
      Eval.branchPredicate(Ctx, Branch.cond(), Taken, Flags);
  bool Flippable = C.has_value();

  // Checkpoint capture: before any of this branch's effects (constraint,
  // coverage bit, stack update, flag fallbacks) commit, so a resumed run
  // re-executes conditional K itself and reproduces them identically.
  if (Capture) {
    BranchSiteInfo Site;
    size_t NegBit = 2 * size_t(Branch.siteId()) + (Taken ? 0 : 1);
    Site.Flippable = Flippable;
    Site.NegationBit = static_cast<uint32_t>(NegBit);
    Site.NegationCovered = NegBit < CoveredBits.size() && CoveredBits[NegBit];
    if (K < Stack.size()) {
      // Prefix position: the prediction's record says whether the search
      // may still flip it (the flip position itself becomes done below).
      Site.NegationSchedulable =
          Flippable && !Stack[K].Done && K + 1 != Stack.size();
    } else {
      bool BornDone =
          (Options.MarkConcreteBranchesDone && !Flippable) ||
          (Options.PrunedSites &&
           Branch.siteId() < Options.PrunedSites->size() &&
           (*Options.PrunedSites)[Branch.siteId()]);
      Site.NegationSchedulable = Flippable && !BornDone;
    }
    if (Capture->captureAt(K, PreFlags, SymJournal.size(), CovLog.size(),
                           Site) &&
        !Journaling) {
      // First capture of this run: start journaling here. Everything the
      // materializer can roll back to lies at or after this position, so
      // records from before the first capture would never be replayed.
      Journaling = true;
      S.setJournal(&SymJournal);
    }
  }
  if (!Flippable && !Options.MarkConcreteBranchesDone) {
    // Literal Fig. 3: conditions outside the theory contribute their
    // concrete truth value — a constant predicate whose negation the
    // solver will (vainly) be asked to satisfy, exactly like lp_solve
    // receiving a constant-false system.
    C = SymPred(CmpPred::Eq, LinearExpr(0)); // trivially true
  }
  Constraints.push_back(C ? Arena.intern(*C) : kNoPred);
  size_t Bit = 2 * size_t(Branch.siteId()) + (Taken ? 1 : 0);
  if (Bit >= CoveredBits.size())
    CoveredBits.resize(Bit + 1, false);
  if (!CoveredBits[Bit]) {
    CoveredBits[Bit] = true;
    ++CoveredCount;
    if (Capture && Journaling)
      CovLog.push_back(static_cast<uint32_t>(Bit));
  }

  // compare_and_update_stack (Fig. 4).
  if (K < Stack.size()) {
    if (Stack[K].Branch != Taken) {
      // The prediction failed: a prior incompleteness misled the solver.
      ForcingOk = false;
      ++K;
      return false; // VM reports RunStatus::ForcingMismatch
    }
    if (K == Stack.size() - 1)
      Stack[K].Done = true;
  } else {
    BranchRecord R;
    R.Branch = Taken;
    R.SiteId = Branch.siteId();
    // Optimization (off by default): a branch with no flippable constraint
    // may be born `done`, sparing the solver the doomed negation attempts.
    R.Done = Options.MarkConcreteBranchesDone && !Flippable;
    // Static pruning: sites whose negation the dataflow framework proved
    // Unsat (taint-free or exactly-monovalent) are likewise born done.
    if (Options.PrunedSites && Branch.siteId() < Options.PrunedSites->size() &&
        (*Options.PrunedSites)[Branch.siteId()])
      R.Done = true;
    Stack.push_back(R);
  }
  ++K;
  return true;
}

void ConcolicRun::onCallArg(EvalContext &CallerCtx, const IRExpr *ArgExpr,
                            ValType ParamVT, int64_t Value,
                            unsigned ArgIndex) {
  (void)ParamVT;
  (void)Value;
  if (PendingArgs.size() <= ArgIndex)
    PendingArgs.resize(ArgIndex + 1);
  PendingArgs[ArgIndex] = Eval.evaluate(CallerCtx, ArgExpr, Flags);
}

void ConcolicRun::onParamBound(Addr ParamAddr, unsigned ArgIndex, ValType VT,
                               int64_t Value) {
  (void)Value;
  std::optional<SymValue> Sym;
  if (ArgIndex < PendingArgs.size())
    Sym = std::move(PendingArgs[ArgIndex]);
  if (Sym && !Sym->isConstant())
    S.set(ParamAddr, VT.SizeBytes, std::move(*Sym));
  else
    S.eraseRange(ParamAddr, VT.SizeBytes);
  if (ArgIndex + 1 == PendingArgs.size())
    PendingArgs.clear();
}

void ConcolicRun::onNativeCall(EvalContext &Ctx, const CallInstr &Call,
                               const std::vector<int64_t> &ArgValues) {
  (void)ArgValues;
  // Library functions are black boxes (paper §3.1): executing them on
  // symbolic data is fine concretely, but the symbolic trace cannot follow
  // — record the incompleteness if any argument is symbolic.
  for (const auto &Arg : Call.args()) {
    std::optional<SymValue> Sym = Eval.evaluate(Ctx, Arg.get(), Flags);
    if (Sym && !Sym->isConstant()) {
      Flags.AllLinear = false;
      break;
    }
  }
}

int64_t ConcolicRun::onExternalCall(EvalContext &Ctx, const CallInstr &Call,
                                    Addr DestAddr, ValType RetVT) {
  if (ExternalFn)
    return ExternalFn(Ctx, Call, DestAddr, RetVT);
  return 0;
}

void ConcolicRun::onRegionDead(Addr Base, uint64_t Size) {
  S.eraseRange(Base, Size);
}
