//===- SymbolicMemory.cpp - The paper's symbolic memory S ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/SymbolicMemory.h"

#include <cassert>
#include <vector>

using namespace dart;

void SymbolicMemory::eraseRange(Addr Address, uint64_t SizeBytes) {
  if (SizeBytes == 0)
    return;
  Addr End = Address + SizeBytes;
  // Find the first cell that could overlap: start a little earlier to catch
  // cells beginning before Address but extending into the range (max cell
  // width is 8 bytes).
  Addr ScanFrom = Address >= 8 ? Address - 8 : 0;
  auto It = Cells.lower_bound(ScanFrom);
  while (It != Cells.end() && It->first < End) {
    Addr CellBegin = It->first;
    Addr CellEnd = CellBegin + It->second.first;
    if (CellEnd > Address && CellBegin < End) {
      if (Log)
        // The cell is erased right below, so its value can be moved into
        // the undo record instead of deep-copied.
        Log->push_back(
            {CellBegin, It->second.first, std::move(It->second.second)});
      It = Cells.erase(It);
    } else {
      ++It;
    }
  }
}

void SymbolicMemory::set(Addr Address, unsigned SizeBytes, SymValue Value) {
  eraseRange(Address, SizeBytes);
  if (Value.isConstant())
    return; // concrete values are represented by absence
  if (Log)
    Log->push_back({Address, SizeBytes, std::nullopt});
  Cells.emplace(Address, std::make_pair(SizeBytes, std::move(Value)));
}

std::optional<SymValue> SymbolicMemory::get(Addr Address,
                                            unsigned SizeBytes) const {
  auto It = Cells.find(Address);
  if (It == Cells.end() || It->second.first != SizeBytes)
    return std::nullopt;
  return It->second.second;
}

void SymbolicMemory::copyRange(Addr Dst, Addr Src, uint64_t SizeBytes) {
  if (SizeBytes == 0 || Dst == Src)
    return;
  // Collect source cells fully inside the range first (the erase below may
  // touch them when ranges overlap).
  std::vector<std::pair<uint64_t, std::pair<unsigned, SymValue>>> Moved;
  Addr SrcEnd = Src + SizeBytes;
  for (auto It = Cells.lower_bound(Src); It != Cells.end() && It->first < SrcEnd;
       ++It) {
    Addr CellBegin = It->first;
    Addr CellEnd = CellBegin + It->second.first;
    if (CellEnd <= SrcEnd)
      Moved.emplace_back(CellBegin - Src, It->second);
  }
  eraseRange(Dst, SizeBytes);
  for (auto &[Offset, Cell] : Moved) {
    if (Log)
      Log->push_back({Dst + Offset, Cell.first, std::nullopt});
    Cells.emplace(Dst + Offset, std::move(Cell));
  }
}

void SymbolicMemory::rollback(const Journal &J, size_t Pos) {
  assert(Pos <= J.size() && "rollback past the journal");
  for (size_t I = J.size(); I-- > Pos;) {
    const SymMemUndo &U = J[I];
    if (U.Old)
      Cells.insert_or_assign(U.Address, std::make_pair(U.Width, *U.Old));
    else
      Cells.erase(U.Address);
  }
}
