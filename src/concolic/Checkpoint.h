//===- Checkpoint.h - Snapshot-resume for the directed search ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution checkpointing for DART's directed search. The search (paper
/// §2.5, Fig. 5) flips one branch of the previous path, so run k+1
/// executes an *instruction-identical* prefix of run k up to the flip —
/// but not a state-identical one: the solver changed some input values,
/// and those inputs are read inside the prefix. The usable rule is:
///
///   A checkpoint captured at conditional i — when N_i inputs existed —
///   reproduces the child's state exactly iff every input the solver's
///   model changed has id >= N_i (inputs are created in execution order,
///   and the prefix before conditional i only ever reads inputs < N_i).
///
/// CheckpointRecorder captures CheckpointEntries *selectively* (see
/// CheckpointPolicy: one entry per input level, deferred to schedulable
/// frontier sites, geometrically thinned under a per-run cap) as chunk
/// deltas against the previous entry (Memory::snapshotDelta, O(dirty));
/// symbolic state rides as log positions into undo journals. finalize
/// seals everything into an immutable CheckpointPack.
/// resumeFor(minChangedId) picks the deepest valid entry and materializes
/// a complete resume state: VM image (delta chain composed forward),
/// symbolic memory S (final S rolled back through the journal), coverage
/// bitmap (final bitmap with later-set bits cleared), constraint prefix
/// (stable PredIds in the shared arena), and the input-registry prefix.
///
/// Why input levels are the only capture points that matter: resumeFor
/// selects the deepest entry with InputsCreated <= minChanged, and a
/// child flipping conditional j always has minChanged strictly below
/// InputsCreated(j) (the model must perturb an input the flipped
/// constraint reads, and those were all created before j executed). So
/// among entries sharing an InputsCreated value, only the deepest can
/// ever be selected — capturing once per distinct value loses almost
/// nothing, and cuts capture work from O(conditionals) to O(inputs).
///
/// Packs are shared by value (shared_ptr) across parallel workers:
/// contents are immutable after finalize, materialization copies COW
/// roots, and a ledger (CheckpointLedger) bounds resident bytes by
/// evicting old packs — an evicted pack simply misses, and the engine
/// falls back to a full replay, keeping the search observably identical.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_CHECKPOINT_H
#define DART_CONCOLIC_CHECKPOINT_H

#include "concolic/Concolic.h"
#include "interp/Interp.h"
#include "symbolic/SymExpr.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace dart {

/// One capture point: the state "about to execute conditional
/// BranchIndex", stored as a memory delta against the previous entry
/// (entry 0's delta is a full image). Scalars plus log positions; the
/// bulky shared state (final S, journals, constraint trace, global
/// addresses) lives once per pack.
struct CheckpointEntry {
  Interp::SnapshotDelta Vm; ///< VM mid-CondJump; Steps excludes the CondJump
  size_t BranchIndex = 0; ///< K at capture
  InputId InputsCreated = 0; ///< inputs existing before this conditional
  unsigned CallIndex = 0; ///< driver toplevel-call loop position (§3.2)
  CompletenessFlags Flags;
  size_t SymLogPos = 0; ///< S undo-journal length at capture
  size_t CovLogPos = 0; ///< coverage log length at capture
};

/// Capture cost model knobs (see DESIGN.md "The capture cost model").
struct CheckpointPolicy {
  /// Hard cap on entries per run. Reaching it folds every second entry
  /// into its successor (composeDelta) and doubles LevelStride, so entry
  /// spacing grows geometrically with run depth.
  unsigned MaxEntriesPerRun = 96;
  /// After each capture the minimum input-level gap to the next capture
  /// is multiplied by this factor (the gap resets to 1 each run), so a
  /// run contributes O(log depth) entries at geometrically spaced levels.
  /// Sparse tails are a feature, not just a saving: a child resuming
  /// shallow re-executes more prefix and thereby re-captures the low
  /// levels *its* children gate on — levels a deep resume would have
  /// skipped right past and never recorded. 1 = capture every level.
  unsigned LevelStrideGrowth = 2;
  /// A new input level normally triggers a capture at its first
  /// conditional; when that branch's negation is unschedulable or already
  /// covered, the capture is deferred up to this many conditionals in the
  /// hope of landing just before a branch the search can still flip
  /// (entries within a level serve the same children; deeper = shorter
  /// replays). 0 = never defer.
  unsigned MaxDeferConditionals = 3;
  /// Cross-run demand feedback: once this many minChanged samples were
  /// observed, levels whose first DemandWindow input ids were never the
  /// gate of any scheduled child are skipped entirely. 0 = never skip.
  unsigned DemandWarmup = 64;
  /// Input-id window a level's entry is credited for (see above).
  unsigned DemandWindow = 32;
  /// Escape hatch: capture at every conditional like the original
  /// implementation (ablation/debugging; deltas and caps still apply).
  bool CaptureAllConditionals = false;
};

/// Session-wide, lock-free record of which input ids have acted as the
/// resume gate (minChangedInput) of a scheduled child. Engines record;
/// recorders consult it to skip capturing levels no child ever resumes
/// into. Purely heuristic: a stale or missed bit only shifts which
/// resumes hit, never the search.
class CaptureDemand {
public:
  static constexpr InputId kTrackedIds = 4096;

  void record(InputId Id) {
    Samples.fetch_add(1, std::memory_order_relaxed);
    if (Id < kTrackedIds)
      Bits[Id / 64].fetch_or(uint64_t(1) << (Id % 64),
                             std::memory_order_relaxed);
  }
  bool warm(uint64_t Warmup) const {
    return Warmup != 0 && Samples.load(std::memory_order_relaxed) >= Warmup;
  }
  /// True if any id in [Lo, Hi) was ever recorded. Ids beyond the tracked
  /// range are conservatively treated as demanded.
  bool anyDemandIn(InputId Lo, InputId Hi) const {
    if (Hi > kTrackedIds)
      return true;
    for (InputId I = Lo; I < Hi;) {
      uint64_t Word = Bits[I / 64].load(std::memory_order_relaxed);
      InputId WordEnd = (I / 64 + 1) * 64;
      for (; I < Hi && I < WordEnd; ++I)
        if (Word & (uint64_t(1) << (I % 64)))
          return true;
    }
    return false;
  }

private:
  std::array<std::atomic<uint64_t>, kTrackedIds / 64> Bits{};
  std::atomic<uint64_t> Samples{0};
};

/// A fully reconstructed resume point, independent of the pack it came
/// from (eviction after materialization is harmless).
struct MaterializedCheckpoint {
  Interp::Snapshot Vm;
  SymbolicMemory S;
  std::vector<bool> Cov;
  unsigned CovCount = 0;
  std::vector<PredId> Constraints; ///< prefix [0, BranchIndex)
  size_t BranchIndex = 0;
  InputId InputsCreated = 0;
  unsigned CallIndex = 0;
  CompletenessFlags Flags;
  uint64_t SkippedSteps = 0; ///< prefix instructions resume avoids
  std::vector<InputInfo> RegistryPrefix; ///< first InputsCreated entries
};

/// All checkpoints of one run, immutable once finalized. Thread-safe:
/// the contents live behind one shared_ptr swapped under a mutex, so
/// resumeFor grabs a reference in O(1) and materializes lock-free —
/// speculative siblings resuming from the same parent never serialize —
/// while a ledger eviction on another thread stays safe.
class CheckpointPack {
public:
  /// Deepest entry valid for a child whose model changed no input below
  /// \p MinChangedId (entries are captured in nondecreasing InputsCreated
  /// order), materialized into a standalone resume state. nullopt when no
  /// entry qualifies or the pack was evicted.
  std::optional<MaterializedCheckpoint> resumeFor(InputId MinChangedId) const;

  /// Frees the pack's contents (ledger eviction). Subsequent resumeFor
  /// calls miss; MaterializedCheckpoints already handed out stay valid.
  void release();

  size_t approxBytes() const { return ApproxBytes; }
  size_t numEntries() const { return NumEntries; }

private:
  friend class CheckpointRecorder;

  /// Everything materialization reads; immutable after finalize.
  struct Contents {
    std::vector<CheckpointEntry> Entries; ///< delta chain, capture order
    std::vector<Addr> GlobalAddrs; ///< immutable within a run; stored once
    SymbolicMemory FinalS;
    SymbolicMemory::Journal SymLog;
    std::vector<uint32_t> CovLog; ///< bits set by the run, in order
    std::vector<bool> FinalCov;
    unsigned FinalCovCount = 0;
    std::vector<PredId> ConstraintTrace; ///< the run's full constraint list
    std::vector<InputInfo> Registry;     ///< input registry at end of run
  };

  std::shared_ptr<const Contents> C; ///< null once evicted
  size_t ApproxBytes = 0;
  size_t NumEntries = 0;
  mutable std::mutex Mu; ///< guards the C swap only, never the reads
};

/// The BranchCaptureHook implementation one run carries: applies the
/// capture cost model at each conditional, snapshots deltas at the chosen
/// ones, and assembles the pack when the run ends. Pooled engines keep
/// one recorder per worker and reset() it between runs.
class CheckpointRecorder : public BranchCaptureHook {
public:
  /// \p InputsCreated reports the driver's inputs-created-so-far counter
  /// (InputManager::inputsThisRun) — a callback to keep this layer free of
  /// a dependency on the driver. \p Demand (optional) feeds cross-run
  /// level-demand feedback; \p NegationPriorities (optional, distance
  /// strategy) lets the recorder treat flips the distance map proved
  /// unreachable-from-uncovered as unschedulable. Both must outlive the
  /// recorder; the priorities vector may be reassigned between runs.
  CheckpointRecorder(Interp &VM, std::function<InputId()> InputsCreated,
                     CheckpointPolicy Policy = {},
                     const CaptureDemand *Demand = nullptr,
                     const std::vector<uint32_t> *NegationPriorities = nullptr)
      : VM(VM), InputsCreated(std::move(InputsCreated)), Policy(Policy),
        Demand(Demand), NegationPriorities(NegationPriorities) {
    CowBase = VM.memory().cowStats();
  }

  /// Driver loop position, updated by executeDartRun before each toplevel
  /// call so captures know where to resume the call loop.
  unsigned CallIndex = 0;

  /// Rewinds per-run state for the next run (cumulative counters like
  /// captureNanos survive). Also re-baselines the COW clone counters used
  /// for the pinned-page estimate, so pooled VMs account per run.
  void reset();

  bool captureAt(size_t K, const CompletenessFlags &Flags, size_t SymLogPos,
                 size_t CovLogPos, const BranchSiteInfo &Site) override;

  /// Consumes \p Run's final state (symbolic memory, journals, coverage)
  /// plus the completed path's constraint trace and the input registry,
  /// and seals everything into an immutable pack. Call after the engine
  /// has merged coverage and taken the path.
  std::shared_ptr<CheckpointPack> finalize(ConcolicRun &Run,
                                           const PathData &Path,
                                           std::vector<InputInfo> Registry);

  size_t numCaptured() const { return Entries.size(); }
  /// Cumulative wall time spent capturing (across resets).
  uint64_t captureNanos() const { return CaptureNanosTotal; }
  /// Cumulative levels skipped by demand feedback (across resets).
  uint64_t levelsSkippedByDemand() const { return SkippedByDemandTotal; }

private:
  Interp &VM;
  std::function<InputId()> InputsCreated;
  CheckpointPolicy Policy;
  const CaptureDemand *Demand;
  const std::vector<uint32_t> *NegationPriorities;
  std::vector<CheckpointEntry> Entries;
  Memory::Snapshot MemBase; ///< memory image as of the last entry
  std::vector<Addr> GlobalAddrs; ///< grabbed at the run's first capture
  Memory::CowStats CowBase; ///< cowStats at reset (per-run clone deltas)
  InputId LastLevel = 0;    ///< InputsCreated at the last capture/skip
  InputId LevelStride = 1;  ///< min level advance between captures
  unsigned DeferCount = 0;  ///< conditionals deferred within this level
  bool HasCapture = false;  ///< some capture/skip decision was made
  uint64_t CaptureNanosTotal = 0;
  uint64_t SkippedByDemandTotal = 0;
};

/// Smallest input id whose model value differs from the parent run's
/// input map — the earliest input the solver perturbed. nullopt when the
/// model changes nothing (such candidates are normally dropped as
/// TheoryMisled before scheduling; treated as "no valid checkpoint").
std::optional<InputId>
minChangedInput(const std::map<InputId, int64_t> &Model,
                const std::map<InputId, int64_t> &IM);

/// Bounds resident checkpoint bytes across a session. Oldest-first (LRU
/// by admission; under the directed search's depth-first order, admission
/// order tracks prefix depth, so the shallowest prefixes go first).
/// Thread-safe.
class CheckpointLedger {
public:
  /// \p BudgetBytes 0 = unbounded.
  explicit CheckpointLedger(uint64_t BudgetBytes) : Budget(BudgetBytes) {}

  /// Registers a freshly finalized pack; may evict older packs (and, if a
  /// single pack exceeds the whole budget, the new one) to honour the
  /// budget. Also drops packs no longer referenced by any pending work.
  void admit(std::shared_ptr<CheckpointPack> Pack);

  uint64_t peakResidentBytes() const;
  uint64_t evictions() const;

private:
  static constexpr size_t kMinSweepWatermark = 32;

  uint64_t Budget;
  mutable std::mutex Mu;
  uint64_t Resident = 0;
  uint64_t Peak = 0;
  uint64_t Evictions = 0;
  size_t SweepWatermark = kMinSweepWatermark; ///< amortized-sweep trigger
  std::list<std::shared_ptr<CheckpointPack>> Live; ///< admission order
};

} // namespace dart

#endif // DART_CONCOLIC_CHECKPOINT_H
