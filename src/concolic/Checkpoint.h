//===- Checkpoint.h - Snapshot-resume for the directed search ---*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution checkpointing for DART's directed search. The search (paper
/// §2.5, Fig. 5) flips one branch of the previous path, so run k+1
/// executes an *instruction-identical* prefix of run k up to the flip —
/// but not a state-identical one: the solver changed some input values,
/// and those inputs are read inside the prefix. The usable rule is:
///
///   A checkpoint captured at conditional i — when N_i inputs existed —
///   reproduces the child's state exactly iff every input the solver's
///   model changed has id >= N_i (inputs are created in execution order,
///   and the prefix before conditional i only ever reads inputs < N_i).
///
/// CheckpointRecorder captures one CheckpointEntry per conditional of a
/// run (VM snapshot via the COW Memory, O(chunks); symbolic state via log
/// positions into undo journals) and finalizes them into an immutable
/// CheckpointPack. resumeFor(minChangedId) picks the deepest valid entry
/// and materializes a complete resume state: VM image, symbolic memory S
/// (final S rolled back through the journal), coverage bitmap (final
/// bitmap with later-set bits cleared), constraint prefix (stable PredIds
/// in the shared arena), and the input-registry prefix.
///
/// Packs are shared by value (shared_ptr) across parallel workers:
/// contents are immutable after finalize, materialization copies COW
/// roots, and a ledger (CheckpointLedger) bounds resident bytes by
/// evicting old packs — an evicted pack simply misses, and the engine
/// falls back to a full replay, keeping the search observably identical.
///
//===----------------------------------------------------------------------===//

#ifndef DART_CONCOLIC_CHECKPOINT_H
#define DART_CONCOLIC_CHECKPOINT_H

#include "concolic/Concolic.h"
#include "interp/Interp.h"
#include "symbolic/SymExpr.h"

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace dart {

/// One capture point: the state "about to execute conditional
/// BranchIndex". Scalars plus log positions; the bulky shared state
/// (final S, journals, constraint trace) lives once per pack.
struct CheckpointEntry {
  Interp::Snapshot Vm;    ///< VM mid-CondJump; Steps excludes the CondJump
  size_t BranchIndex = 0; ///< K at capture
  InputId InputsCreated = 0; ///< inputs existing before this conditional
  unsigned CallIndex = 0; ///< driver toplevel-call loop position (§3.2)
  CompletenessFlags Flags;
  size_t SymLogPos = 0; ///< S undo-journal length at capture
  size_t CovLogPos = 0; ///< coverage log length at capture
};

/// A fully reconstructed resume point, independent of the pack it came
/// from (eviction after materialization is harmless).
struct MaterializedCheckpoint {
  Interp::Snapshot Vm;
  SymbolicMemory S;
  std::vector<bool> Cov;
  unsigned CovCount = 0;
  std::vector<PredId> Constraints; ///< prefix [0, BranchIndex)
  size_t BranchIndex = 0;
  InputId InputsCreated = 0;
  unsigned CallIndex = 0;
  CompletenessFlags Flags;
  uint64_t SkippedSteps = 0; ///< prefix instructions resume avoids
  std::vector<InputInfo> RegistryPrefix; ///< first InputsCreated entries
};

/// All checkpoints of one run, immutable once finalized. Thread-safe:
/// resumeFor and release serialize on an internal mutex, so a ledger on
/// one thread can evict while workers on others attempt resumes.
class CheckpointPack {
public:
  /// Deepest entry valid for a child whose model changed no input below
  /// \p MinChangedId (entries are captured in nondecreasing InputsCreated
  /// order), materialized into a standalone resume state. nullopt when no
  /// entry qualifies or the pack was evicted.
  std::optional<MaterializedCheckpoint> resumeFor(InputId MinChangedId) const;

  /// Frees the pack's contents (ledger eviction). Subsequent resumeFor
  /// calls miss; MaterializedCheckpoints already handed out stay valid.
  void release();

  size_t approxBytes() const { return ApproxBytes; }
  size_t numEntries() const { return NumEntries; }

private:
  friend class CheckpointRecorder;

  std::vector<CheckpointEntry> Entries;
  SymbolicMemory FinalS;
  SymbolicMemory::Journal SymLog;
  std::vector<uint32_t> CovLog; ///< bits set by the run, in order
  std::vector<bool> FinalCov;
  unsigned FinalCovCount = 0;
  std::vector<PredId> ConstraintTrace; ///< the run's full constraint list
  std::vector<InputInfo> Registry;     ///< input registry at end of run
  size_t ApproxBytes = 0;
  size_t NumEntries = 0;
  bool Evicted = false;
  mutable std::mutex Mu;
};

/// The BranchCaptureHook implementation one run carries: snapshots the VM
/// at every conditional and assembles the pack when the run ends.
class CheckpointRecorder : public BranchCaptureHook {
public:
  /// \p InputsCreated reports the driver's inputs-created-so-far counter
  /// (InputManager::inputsThisRun) — a callback to keep this layer free of
  /// a dependency on the driver.
  CheckpointRecorder(Interp &VM, std::function<InputId()> InputsCreated)
      : VM(VM), InputsCreated(std::move(InputsCreated)) {}

  /// Driver loop position, updated by executeDartRun before each toplevel
  /// call so captures know where to resume the call loop.
  unsigned CallIndex = 0;

  void captureAt(size_t K, const CompletenessFlags &Flags, size_t SymLogPos,
                 size_t CovLogPos) override;

  /// Consumes \p Run's final state (symbolic memory, journals, coverage)
  /// plus the completed path's constraint trace and the input registry,
  /// and seals everything into an immutable pack. Call after the engine
  /// has merged coverage and taken the path.
  std::shared_ptr<CheckpointPack> finalize(ConcolicRun &Run,
                                           const PathData &Path,
                                           std::vector<InputInfo> Registry);

  size_t numCaptured() const { return Entries.size(); }

private:
  Interp &VM;
  std::function<InputId()> InputsCreated;
  std::vector<CheckpointEntry> Entries;
};

/// Smallest input id whose model value differs from the parent run's
/// input map — the earliest input the solver perturbed. nullopt when the
/// model changes nothing (such candidates are normally dropped as
/// TheoryMisled before scheduling; treated as "no valid checkpoint").
std::optional<InputId>
minChangedInput(const std::map<InputId, int64_t> &Model,
                const std::map<InputId, int64_t> &IM);

/// Bounds resident checkpoint bytes across a session. Oldest-first (LRU
/// by admission; under the directed search's depth-first order, admission
/// order tracks prefix depth, so the shallowest prefixes go first).
/// Thread-safe.
class CheckpointLedger {
public:
  /// \p BudgetBytes 0 = unbounded.
  explicit CheckpointLedger(uint64_t BudgetBytes) : Budget(BudgetBytes) {}

  /// Registers a freshly finalized pack; may evict older packs (and, if a
  /// single pack exceeds the whole budget, the new one) to honour the
  /// budget. Also drops packs no longer referenced by any pending work.
  void admit(std::shared_ptr<CheckpointPack> Pack);

  uint64_t peakResidentBytes() const;
  uint64_t evictions() const;

private:
  uint64_t Budget;
  mutable std::mutex Mu;
  uint64_t Resident = 0;
  uint64_t Peak = 0;
  uint64_t Evictions = 0;
  std::list<std::shared_ptr<CheckpointPack>> Live; ///< admission order
};

} // namespace dart

#endif // DART_CONCOLIC_CHECKPOINT_H
