//===- PathSearch.cpp - solve_path_constraint and search strategies --------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/PathSearch.h"

#include <algorithm>
#include <cassert>

using namespace dart;

const char *dart::searchStrategyName(SearchStrategy S) {
  switch (S) {
  case SearchStrategy::DepthFirst:
    return "dfs";
  case SearchStrategy::BreadthFirst:
    return "bfs";
  case SearchStrategy::RandomBranch:
    return "random";
  }
  return "?";
}

CandidateSet dart::solveCandidates(
    const PathData &Path, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint, SearchStrategy Strategy,
    Rng &Rng, unsigned MaxCandidates) {
  assert(Path.Stack.size() == Path.Constraints.size() &&
         "stack and path constraint must stay aligned");
  CandidateSet Result;

  // Candidate branches: not yet done. Order per strategy; depth-first
  // (descending index) reproduces Fig. 5's recursion exactly.
  std::vector<size_t> Candidates;
  for (size_t I = 0; I < Path.Stack.size(); ++I)
    if (!Path.Stack[I].Done)
      Candidates.push_back(I);
  switch (Strategy) {
  case SearchStrategy::DepthFirst:
    std::reverse(Candidates.begin(), Candidates.end());
    break;
  case SearchStrategy::BreadthFirst:
    break; // ascending
  case SearchStrategy::RandomBranch:
    for (size_t I = Candidates.size(); I > 1; --I)
      std::swap(Candidates[I - 1], Candidates[Rng.nextBelow(I)]);
    break;
  }

  for (size_t J : Candidates) {
    // A conditional without a constraint (concrete or out-of-theory
    // condition) negates to nothing the solver can satisfy; Fig. 5 then
    // recurses to the next candidate.
    if (!Path.Constraints[J])
      continue;
    if (MaxCandidates && Result.Candidates.size() >= MaxCandidates) {
      Result.Truncated = true;
      break;
    }

    std::vector<SymPred> System;
    System.reserve(J + 1);
    for (size_t H = 0; H < J; ++H)
      if (Path.Constraints[H])
        System.push_back(*Path.Constraints[H]);
    System.push_back(Path.Constraints[J]->negated());

    std::map<InputId, int64_t> Model;
    ++Result.SolverCalls;
    if (Solver.solve(System, DomainOf, Hint, Model) != SolveStatus::Sat)
      continue;

    // The theory reasons over ideal integers while the VM wraps at 32
    // bits, so a Sat model is not automatically a *realizable* one. Two
    // failure shapes, both bred by large-magnitude hints:
    //  - the model changes no input: the negated branch was recorded under
    //    wrapped arithmetic, the old inputs already "satisfy" the flip
    //    ideally, and rerunning them replays the old path verbatim;
    //  - some prefix constraint evaluates outside int32 under the model:
    //    the VM's comparison will wrap and may take the other direction.
    // Either way the run would end in a forcing mismatch. Retry once with
    // an empty hint — unanchored, the solver picks small canonical values
    // on which ideal and wrapped arithmetic agree — and only if that model
    // is also unrealizable drop the flip and report the theory misled.
    auto Unrealizable = [&](const std::map<InputId, int64_t> &M) {
      bool Changes = false;
      for (const auto &[Id, V] : M) {
        auto It = Hint.find(Id);
        if (It == Hint.end() || It->second != V) {
          Changes = true;
          break;
        }
      }
      if (!Changes)
        return true;
      auto ValueOf = [&](InputId Id) {
        auto It = M.find(Id);
        if (It != M.end())
          return It->second;
        auto Ht = Hint.find(Id);
        return Ht != Hint.end() ? Ht->second : int64_t(0);
      };
      for (const SymPred &P : System) {
        // The int32 window only applies where the VM evaluates at int
        // width: every variable's domain contained in int32. Wider inputs
        // (unsigned, long) legitimately carry values beyond it.
        bool Int32Math = true;
        for (InputId Id : P.LHS.inputs()) {
          VarDomain D = DomainOf(Id);
          if (D.Min < INT32_MIN || D.Max > INT32_MAX) {
            Int32Math = false;
            break;
          }
        }
        if (!Int32Math)
          continue;
        int64_t V = P.LHS.evaluate(ValueOf);
        int64_t VarPart = V - P.LHS.constant();
        if (V < INT32_MIN || V > INT32_MAX || VarPart < INT32_MIN ||
            VarPart > INT32_MAX)
          return true;
      }
      return false;
    };
    if (Unrealizable(Model)) {
      std::map<InputId, int64_t> Retry;
      ++Result.SolverCalls;
      if (Solver.solve(System, DomainOf, {}, Retry) != SolveStatus::Sat ||
          Unrealizable(Retry)) {
        Result.TheoryMisled = true;
        continue;
      }
      Model = std::move(Retry);
    }

    SolveOutcome Outcome;
    Outcome.Found = true;
    Outcome.FlippedIndex = J;
    Outcome.Model = std::move(Model);
    Outcome.NextStack.assign(Path.Stack.begin(),
                             Path.Stack.begin() + J + 1);
    Outcome.NextStack[J].Branch = !Outcome.NextStack[J].Branch;
    // Done stays false: compare_and_update_stack sets it when the next run
    // actually reaches this conditional (Fig. 4).
    Outcome.NextStack[J].Done = false;
    Result.Candidates.push_back(std::move(Outcome));
  }
  return Result;
}

SolveOutcome dart::solvePathConstraint(
    const PathData &Path, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint, SearchStrategy Strategy,
    Rng &Rng) {
  CandidateSet Set =
      solveCandidates(Path, Solver, DomainOf, Hint, Strategy, Rng, 1);
  SolveOutcome Outcome;
  Outcome.SolverCalls = Set.SolverCalls;
  if (!Set.Candidates.empty()) {
    Outcome = std::move(Set.Candidates.front());
    Outcome.SolverCalls = Set.SolverCalls;
  }
  Outcome.TheoryMisled = Set.TheoryMisled;
  return Outcome;
}
