//===- PathSearch.cpp - solve_path_constraint and search strategies --------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/PathSearch.h"

#include <algorithm>
#include <cassert>

using namespace dart;

const char *dart::searchStrategyName(SearchStrategy S) {
  switch (S) {
  case SearchStrategy::DepthFirst:
    return "dfs";
  case SearchStrategy::BreadthFirst:
    return "bfs";
  case SearchStrategy::RandomBranch:
    return "random";
  }
  return "?";
}

SolveOutcome dart::solvePathConstraint(
    const PathData &Path, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint, SearchStrategy Strategy,
    Rng &Rng) {
  assert(Path.Stack.size() == Path.Constraints.size() &&
         "stack and path constraint must stay aligned");
  SolveOutcome Outcome;

  // Candidate branches: not yet done. Order per strategy; depth-first
  // (descending index) reproduces Fig. 5's recursion exactly.
  std::vector<size_t> Candidates;
  for (size_t I = 0; I < Path.Stack.size(); ++I)
    if (!Path.Stack[I].Done)
      Candidates.push_back(I);
  switch (Strategy) {
  case SearchStrategy::DepthFirst:
    std::reverse(Candidates.begin(), Candidates.end());
    break;
  case SearchStrategy::BreadthFirst:
    break; // ascending
  case SearchStrategy::RandomBranch:
    for (size_t I = Candidates.size(); I > 1; --I)
      std::swap(Candidates[I - 1], Candidates[Rng.nextBelow(I)]);
    break;
  }

  for (size_t J : Candidates) {
    // A conditional without a constraint (concrete or out-of-theory
    // condition) negates to nothing the solver can satisfy; Fig. 5 then
    // recurses to the next candidate.
    if (!Path.Constraints[J])
      continue;

    std::vector<SymPred> System;
    System.reserve(J + 1);
    for (size_t H = 0; H < J; ++H)
      if (Path.Constraints[H])
        System.push_back(*Path.Constraints[H]);
    System.push_back(Path.Constraints[J]->negated());

    std::map<InputId, int64_t> Model;
    ++Outcome.SolverCalls;
    if (Solver.solve(System, DomainOf, Hint, Model) != SolveStatus::Sat)
      continue;

    Outcome.Found = true;
    Outcome.FlippedIndex = J;
    Outcome.Model = std::move(Model);
    Outcome.NextStack.assign(Path.Stack.begin(),
                             Path.Stack.begin() + J + 1);
    Outcome.NextStack[J].Branch = !Outcome.NextStack[J].Branch;
    // Done stays false: compare_and_update_stack sets it when the next run
    // actually reaches this conditional (Fig. 4).
    Outcome.NextStack[J].Done = false;
    return Outcome;
  }
  return Outcome;
}
