//===- PathSearch.cpp - solve_path_constraint and search strategies --------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/PathSearch.h"

#include "solver/SolverSession.h"

#include <algorithm>
#include <cassert>

using namespace dart;

const char *dart::searchStrategyName(SearchStrategy S) {
  switch (S) {
  case SearchStrategy::DepthFirst:
    return "dfs";
  case SearchStrategy::BreadthFirst:
    return "bfs";
  case SearchStrategy::RandomBranch:
    return "random";
  case SearchStrategy::Distance:
    return "distance";
  case SearchStrategy::Diversity:
    return "diversity";
  case SearchStrategy::Portfolio:
    return "portfolio";
  }
  return "?";
}

namespace {

/// One Bloom bit per (site, direction), spread by a SplitMix64 finalizer
/// so nearby site ids land on unrelated bits.
uint64_t branchSigBit(unsigned SiteId, bool Branch) {
  uint64_t Z = (uint64_t(SiteId) << 1 | (Branch ? 1 : 0)) +
               0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  Z ^= Z >> 31;
  return uint64_t(1) << (Z & 63);
}

/// Signature contribution of stack position I: its taken direction plus
/// the inputs its constraint touches (negation touches the same inputs,
/// so this also serves the predicted-child case).
uint64_t entrySignature(const PathData &Path, size_t I,
                        const PredArena &Arena) {
  uint64_t Sig = branchSigBit(Path.Stack[I].SiteId, Path.Stack[I].Branch);
  if (Path.Constraints[I] != kNoPred)
    Sig |= Arena.inputSig(Path.Constraints[I]);
  return Sig;
}

} // namespace

uint64_t dart::pathSignature(const PathData &Path, const PredArena &Arena) {
  uint64_t Sig = 0;
  for (size_t I = 0; I < Path.Stack.size(); ++I)
    Sig |= entrySignature(Path, I, Arena);
  return Sig;
}

uint64_t dart::predictedSignature(const PathData &Path, size_t FlipIndex,
                                  const PredArena &Arena) {
  uint64_t Sig = 0;
  for (size_t I = 0; I < FlipIndex; ++I)
    Sig |= entrySignature(Path, I, Arena);
  Sig |= branchSigBit(Path.Stack[FlipIndex].SiteId,
                      !Path.Stack[FlipIndex].Branch);
  if (Path.Constraints[FlipIndex] != kNoPred)
    Sig |= Arena.inputSig(Path.Constraints[FlipIndex]);
  return Sig;
}

void DiversitySampler::insert(uint64_t Sig) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Seen;
  if (Archive.size() < kCapacity) {
    Archive.push_back(Sig);
    return;
  }
  // Classic reservoir step: the n-th signature replaces a random slot
  // with probability capacity/n, keeping the archive a uniform sample of
  // everything seen so far.
  uint64_t Slot = SampleRng.nextBelow(Seen);
  if (Slot < kCapacity)
    Archive[size_t(Slot)] = Sig;
}

std::vector<uint64_t> DiversitySampler::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Archive;
}

unsigned DiversitySampler::minDistance(uint64_t Sig,
                                       const std::vector<uint64_t> &Archive) {
  if (Archive.empty())
    return 64;
  unsigned Best = 64;
  for (uint64_t A : Archive) {
    unsigned D = unsigned(__builtin_popcountll(Sig ^ A));
    if (D < Best)
      Best = D;
  }
  return Best;
}

namespace {

/// The theory reasons over ideal integers while the VM wraps at 32 bits,
/// so a Sat model is not automatically a *realizable* one. Two failure
/// shapes, both bred by large-magnitude hints:
///  - the model changes no input: the negated branch was recorded under
///    wrapped arithmetic, the old inputs already "satisfy" the flip
///    ideally, and rerunning them replays the old path verbatim;
///  - some constraint evaluates outside int32 under the model: the VM's
///    comparison will wrap and may take the other direction.
/// \p ForEachPred enumerates the solved system's predicates.
bool unrealizable(
    const std::map<InputId, int64_t> &M,
    const std::map<InputId, int64_t> &Hint,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::function<void(const std::function<void(const SymPred &)> &)>
        &ForEachPred) {
  bool Changes = false;
  for (const auto &[Id, V] : M) {
    auto It = Hint.find(Id);
    if (It == Hint.end() || It->second != V) {
      Changes = true;
      break;
    }
  }
  if (!Changes)
    return true;
  auto ValueOf = [&](InputId Id) {
    auto It = M.find(Id);
    if (It != M.end())
      return It->second;
    auto Ht = Hint.find(Id);
    return Ht != Hint.end() ? Ht->second : int64_t(0);
  };
  bool Bad = false;
  ForEachPred([&](const SymPred &P) {
    if (Bad)
      return;
    // The int32 window only applies where the VM evaluates at int width:
    // every variable's domain contained in int32. Wider inputs (unsigned,
    // long) legitimately carry values beyond it.
    bool Int32Math = true;
    for (const auto &[Id, C] : P.LHS.coeffs()) {
      (void)C;
      VarDomain D = DomainOf(Id);
      if (D.Min < INT32_MIN || D.Max > INT32_MAX) {
        Int32Math = false;
        break;
      }
    }
    if (!Int32Math)
      return;
    int64_t V = P.LHS.evaluate(ValueOf);
    int64_t VarPart = V - P.LHS.constant();
    if (V < INT32_MIN || V > INT32_MAX || VarPart < INT32_MIN ||
        VarPart > INT32_MAX)
      Bad = true;
  });
  return Bad;
}

/// Candidate branch indices of \p Path (not yet done), in strategy order;
/// depth-first (descending index) reproduces Fig. 5's recursion exactly.
/// Distance stably sorts by the static priority of the *negated*
/// direction — the side the flip would newly take — with depth-first
/// order as the tie-break (and as the fallback when no priorities were
/// supplied). Diversity sorts by descending minimum Hamming distance of
/// the predicted child signature from the executed-path sample, again
/// with depth-first tie-break (and fallback when no sampler / an empty
/// archive was supplied). Portfolio never reaches this function with its
/// own identity — the parallel engine maps it per worker — but degrades
/// to depth-first if it does.
std::vector<size_t> candidateOrder(const PathData &Path,
                                   const PredArena &Arena,
                                   SearchStrategy Strategy, Rng &Rng,
                                   const std::vector<uint32_t> *SitePriorities,
                                   const DiversitySampler *Sampler) {
  std::vector<size_t> Candidates;
  for (size_t I = 0; I < Path.Stack.size(); ++I)
    if (!Path.Stack[I].Done)
      Candidates.push_back(I);
  switch (Strategy) {
  case SearchStrategy::DepthFirst:
  case SearchStrategy::Portfolio:
    std::reverse(Candidates.begin(), Candidates.end());
    break;
  case SearchStrategy::BreadthFirst:
    break; // ascending
  case SearchStrategy::RandomBranch:
    for (size_t I = Candidates.size(); I > 1; --I)
      std::swap(Candidates[I - 1], Candidates[Rng.nextBelow(I)]);
    break;
  case SearchStrategy::Distance: {
    std::reverse(Candidates.begin(), Candidates.end());
    if (SitePriorities) {
      auto PriorityOf = [&](size_t I) -> uint32_t {
        // Flipping branch I lands on the opposite direction of the
        // recorded one; bits beyond the map are unknown sites, treated
        // as uncovered (priority 0).
        size_t Bit = 2 * size_t(Path.Stack[I].SiteId) +
                     (Path.Stack[I].Branch ? 0 : 1);
        return Bit < SitePriorities->size() ? (*SitePriorities)[Bit] : 0;
      };
      std::stable_sort(
          Candidates.begin(), Candidates.end(),
          [&](size_t A, size_t B) { return PriorityOf(A) < PriorityOf(B); });
    }
    break;
  }
  case SearchStrategy::Diversity: {
    std::reverse(Candidates.begin(), Candidates.end());
    if (!Sampler)
      break;
    std::vector<uint64_t> Snap = Sampler->snapshot();
    if (Snap.empty())
      break;
    // Cumulative prefix signatures (Cum[I] = entries 0..I-1) make every
    // candidate's predicted signature O(1) instead of O(depth).
    std::vector<uint64_t> Cum(Path.Stack.size() + 1, 0);
    for (size_t I = 0; I < Path.Stack.size(); ++I)
      Cum[I + 1] = Cum[I] | entrySignature(Path, I, Arena);
    std::vector<unsigned> Score(Path.Stack.size(), 0);
    for (size_t J : Candidates) {
      uint64_t Sig =
          Cum[J] | branchSigBit(Path.Stack[J].SiteId, !Path.Stack[J].Branch);
      if (Path.Constraints[J] != kNoPred)
        Sig |= Arena.inputSig(Path.Constraints[J]);
      Score[J] = DiversitySampler::minDistance(Sig, Snap);
    }
    std::stable_sort(Candidates.begin(), Candidates.end(), [&](size_t A, size_t B) {
      return Score[A] > Score[B];
    });
    break;
  }
  }
  return Candidates;
}

SolveOutcome makeOutcome(const PathData &Path, size_t J,
                         std::map<InputId, int64_t> Model) {
  SolveOutcome Outcome;
  Outcome.Found = true;
  Outcome.FlippedIndex = J;
  Outcome.Model = std::move(Model);
  Outcome.NextStack.assign(Path.Stack.begin(), Path.Stack.begin() + J + 1);
  Outcome.NextStack[J].Branch = !Outcome.NextStack[J].Branch;
  // Done stays false: compare_and_update_stack sets it when the next run
  // actually reaches this conditional (Fig. 4).
  Outcome.NextStack[J].Done = false;
  // The flipped direction's coverage bit: the original record took
  // Branch, the next run aims at its negation.
  Outcome.TargetBit =
      2 * uint32_t(Path.Stack[J].SiteId) + (Path.Stack[J].Branch ? 0 : 1);
  return Outcome;
}

/// Cumulative non-null constraint counts: element J = number of stack
/// positions H < J carrying a real (non-kNoPred) conjunct. Lets the query
/// paths report full-system sizes in O(1) per candidate.
std::vector<unsigned> cumulativeConjuncts(const PathData &Path) {
  std::vector<unsigned> Cum(Path.Constraints.size() + 1, 0);
  for (size_t I = 0; I < Path.Constraints.size(); ++I)
    Cum[I + 1] = Cum[I] + (Path.Constraints[I] != kNoPred ? 1 : 0);
  return Cum;
}

/// Do two sorted input-id lists share an element?
bool sortedIntersects(const std::vector<InputId> &A,
                      const std::vector<InputId> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J])
      ++I;
    else if (B[J] < A[I])
      ++J;
    else
      return true;
  }
  return false;
}

/// Incremental mode: one SolverSession holds the propagated prefix; the
/// walk from candidate to candidate pushes/pops only the delta, and each
/// probe is push(negation)/solve/pop. DFS and BFS orders make the total
/// push traffic O(path + candidates) instead of the batch mode's
/// O(path * candidates) renormalizations.
CandidateSet solveWithSession(
    const PathData &Path, PredArena &Arena, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint,
    const std::vector<size_t> &Candidates, unsigned MaxCandidates) {
  CandidateSet Result;
  SolverSession Session(Solver, Arena, DomainOf);
  Session.setHint(&Hint);
  std::vector<unsigned> Cum = cumulativeConjuncts(Path); // once per batch, not once per candidate

  // Number of stack positions currently reflected in the session (null
  // constraints occupy a position but push nothing).
  size_t CurIdx = 0;
  auto SyncPrefix = [&](size_t J) {
    while (CurIdx > J) {
      --CurIdx;
      if (Path.Constraints[CurIdx] != kNoPred)
        Session.pop();
    }
    while (CurIdx < J) {
      if (Path.Constraints[CurIdx] != kNoPred)
        Session.push(Path.Constraints[CurIdx]);
      ++CurIdx;
    }
  };

  for (size_t J : Candidates) {
    // A conditional without a constraint (concrete or out-of-theory
    // condition) negates to nothing the solver can satisfy; Fig. 5 then
    // recurses to the next candidate.
    if (Path.Constraints[J] == kNoPred)
      continue;
    if (MaxCandidates && Result.Candidates.size() >= MaxCandidates) {
      Result.Truncated = true;
      break;
    }

    SyncPrefix(J);
    PredId NegId = Arena.negatedId(Path.Constraints[J]);
    Session.push(NegId);
    Solver.noteQuerySlice(Cum[J] + 1, Cum[J] + 1);
    auto ForEachPred = [&](const std::function<void(const SymPred &)> &Fn) {
      for (size_t H = 0; H < J; ++H)
        if (Path.Constraints[H] != kNoPred)
          Fn(Arena.pred(Path.Constraints[H]));
      Fn(Arena.pred(NegId));
    };

    std::map<InputId, int64_t> Model;
    ++Result.SolverCalls;
    if (Session.solve(Model) != SolveStatus::Sat) {
      Session.pop();
      continue;
    }
    if (unrealizable(Model, Hint, DomainOf, ForEachPred)) {
      // Retry once with an empty hint — unanchored, the solver picks small
      // canonical values on which ideal and wrapped arithmetic agree — and
      // only if that model is also unrealizable drop the flip and report
      // the theory misled (the engine must clear `all_linear`).
      std::map<InputId, int64_t> Retry;
      ++Result.SolverCalls;
      if (Session.solveNoHint(Retry) != SolveStatus::Sat ||
          unrealizable(Retry, Hint, DomainOf, ForEachPred)) {
        Session.pop();
        Result.TheoryMisled = true;
        continue;
      }
      Model = std::move(Retry);
    }
    Session.pop();
    Result.Candidates.push_back(makeOutcome(Path, J, std::move(Model)));
  }
  return Result;
}

/// Sliced mode (SolverOptions::SliceQueries, rides the session path):
/// per candidate, only the union-find closure of prefix conjuncts that
/// transitively share input variables with the negated predicate is sent
/// to the solver. Everything outside the closure mentions only variables
/// disjoint from the slice and is already satisfied by the hint (the
/// recorded run's own inputs), so dropping it cannot change the verdict;
/// on Sat, inputs outside the slice simply keep their previous concrete
/// values (*solution completion* — the model omits them and every model
/// consumer falls back to the previous IM, which is exactly the value
/// the hint-preferring unsliced solve would have returned for them).
/// Conjuncts without a normal form (solver must answer Unknown) or with
/// a constant normal form (possible ConstFalse/Unsat) stay in every
/// slice so verdicts match the full system exactly. The
/// unrealizable-model check always walks the *full* prefix, and the
/// no-hint retry re-solves the full system — an unanchored solve may
/// move any prefix variable, so slicing it would complete differently
/// than the unsliced baseline. Observable equivalence with unsliced mode
/// is pinned by tests/slice_diff_test.cpp.
CandidateSet solveSliced(const PathData &Path, PredArena &Arena,
                         LinearSolver &Solver,
                         const std::function<VarDomain(InputId)> &DomainOf,
                         const std::map<InputId, int64_t> &Hint,
                         const std::vector<size_t> &Candidates,
                         unsigned MaxCandidates) {
  CandidateSet Result;
  SolverSession Session(Solver, Arena, DomainOf);
  Session.setHint(&Hint);
  std::vector<unsigned> Cum = cumulativeConjuncts(Path);

  // Per-position conjunct metadata, gathered once per path.
  struct Conjunct {
    PredId Id = kNoPred;
    uint64_t Sig = 0;
    bool Always = false; ///< kept in every slice (no norm, or constant)
  };
  std::vector<Conjunct> Prefix(Path.Constraints.size());
  for (size_t I = 0; I < Path.Constraints.size(); ++I) {
    PredId Id = Path.Constraints[I];
    if (Id == kNoPred)
      continue;
    Prefix[I].Id = Id;
    Prefix[I].Sig = Arena.inputSig(Id);
    Prefix[I].Always = !Arena.norm(Id) || Arena.inputs(Id).empty();
  }

  std::vector<uint8_t> InSlice;
  std::vector<InputId> SliceVars, Merged;
  for (size_t J : Candidates) {
    if (Path.Constraints[J] == kNoPred)
      continue;
    if (MaxCandidates && Result.Candidates.size() >= MaxCandidates) {
      Result.Truncated = true;
      break;
    }
    while (Session.depth())
      Session.pop();

    PredId NegId = Arena.negatedId(Path.Constraints[J]);

    // The negation's variables seed the component; a sweep to fixpoint
    // pulls in every conjunct transitively sharing a variable with it.
    // Bloom signatures reject disjoint conjuncts without touching the
    // exact sorted lists.
    InSlice.assign(J, 0);
    SliceVars = Arena.inputs(NegId);
    uint64_t SliceSig = Arena.inputSig(NegId);
    unsigned Sent = 0;
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (size_t H = 0; H < J; ++H) {
        const Conjunct &C = Prefix[H];
        if (C.Id == kNoPred || InSlice[H])
          continue;
        bool Take = C.Always;
        if (!Take && (C.Sig & SliceSig))
          Take = sortedIntersects(Arena.inputs(C.Id), SliceVars);
        if (!Take)
          continue;
        InSlice[H] = 1;
        ++Sent;
        Grew = true;
        const std::vector<InputId> &In = Arena.inputs(C.Id);
        Merged.clear();
        std::set_union(SliceVars.begin(), SliceVars.end(), In.begin(),
                       In.end(), std::back_inserter(Merged));
        SliceVars.swap(Merged);
        SliceSig |= C.Sig;
      }
    }

    for (size_t H = 0; H < J; ++H)
      if (InSlice[H])
        Session.push(Prefix[H].Id);
    Session.push(NegId);
    Solver.noteQuerySlice(Cum[J] + 1, Sent + 1);

    // Realizability is always judged against the full prefix: the VM
    // replays every recorded conditional, sliced or not.
    auto ForEachPred = [&](const std::function<void(const SymPred &)> &Fn) {
      for (size_t H = 0; H < J; ++H)
        if (Path.Constraints[H] != kNoPred)
          Fn(Arena.pred(Path.Constraints[H]));
      Fn(Arena.pred(NegId));
    };

    std::map<InputId, int64_t> Model;
    ++Result.SolverCalls;
    if (Session.solve(Model) != SolveStatus::Sat)
      continue;
    if (unrealizable(Model, Hint, DomainOf, ForEachPred)) {
      while (Session.depth())
        Session.pop();
      for (size_t H = 0; H < J; ++H)
        if (Path.Constraints[H] != kNoPred)
          Session.push(Path.Constraints[H]);
      Session.push(NegId);
      std::map<InputId, int64_t> Retry;
      ++Result.SolverCalls;
      if (Session.solveNoHint(Retry) != SolveStatus::Sat ||
          unrealizable(Retry, Hint, DomainOf, ForEachPred)) {
        Result.TheoryMisled = true;
        continue;
      }
      Model = std::move(Retry);
    }
    Result.Candidates.push_back(makeOutcome(Path, J, std::move(Model)));
  }
  return Result;
}

/// Batch mode (IncrementalSessions off): rebuild and solve the full
/// conjunction per candidate — the pre-session behaviour, kept as the
/// differential-test and ablation baseline.
CandidateSet solveBatch(const PathData &Path, PredArena &Arena,
                        LinearSolver &Solver,
                        const std::function<VarDomain(InputId)> &DomainOf,
                        const std::map<InputId, int64_t> &Hint,
                        const std::vector<size_t> &Candidates,
                        unsigned MaxCandidates) {
  CandidateSet Result;
  for (size_t J : Candidates) {
    if (Path.Constraints[J] == kNoPred)
      continue;
    if (MaxCandidates && Result.Candidates.size() >= MaxCandidates) {
      Result.Truncated = true;
      break;
    }

    std::vector<SymPred> System;
    System.reserve(J + 1);
    for (size_t H = 0; H < J; ++H)
      if (Path.Constraints[H] != kNoPred)
        System.push_back(Arena.pred(Path.Constraints[H]));
    System.push_back(Arena.pred(Path.Constraints[J]).negated());
    auto ForEachPred = [&](const std::function<void(const SymPred &)> &Fn) {
      for (const SymPred &P : System)
        Fn(P);
    };

    std::map<InputId, int64_t> Model;
    ++Result.SolverCalls;
    Solver.noteQuerySlice(System.size(), System.size());
    if (Solver.solve(System, DomainOf, Hint, Model) != SolveStatus::Sat)
      continue;
    if (unrealizable(Model, Hint, DomainOf, ForEachPred)) {
      std::map<InputId, int64_t> Retry;
      ++Result.SolverCalls;
      if (Solver.solve(System, DomainOf, {}, Retry) != SolveStatus::Sat ||
          unrealizable(Retry, Hint, DomainOf, ForEachPred)) {
        Result.TheoryMisled = true;
        continue;
      }
      Model = std::move(Retry);
    }
    Result.Candidates.push_back(makeOutcome(Path, J, std::move(Model)));
  }
  return Result;
}

} // namespace

CandidateSet dart::solveCandidates(
    const PathData &Path, PredArena &Arena, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint, SearchStrategy Strategy,
    Rng &Rng, unsigned MaxCandidates,
    const std::vector<uint32_t> *SitePriorities,
    const DiversitySampler *Sampler) {
  assert(Path.Stack.size() == Path.Constraints.size() &&
         "stack and path constraint must stay aligned");
  std::vector<size_t> Candidates =
      candidateOrder(Path, Arena, Strategy, Rng, SitePriorities, Sampler);
  if (Solver.options().IncrementalSessions) {
    if (Solver.options().SliceQueries)
      return solveSliced(Path, Arena, Solver, DomainOf, Hint, Candidates,
                         MaxCandidates);
    return solveWithSession(Path, Arena, Solver, DomainOf, Hint, Candidates,
                            MaxCandidates);
  }
  return solveBatch(Path, Arena, Solver, DomainOf, Hint, Candidates,
                    MaxCandidates);
}

SolveOutcome dart::solvePathConstraint(
    const PathData &Path, PredArena &Arena, LinearSolver &Solver,
    const std::function<VarDomain(InputId)> &DomainOf,
    const std::map<InputId, int64_t> &Hint, SearchStrategy Strategy,
    Rng &Rng, const std::vector<uint32_t> *SitePriorities,
    const DiversitySampler *Sampler) {
  CandidateSet Set = solveCandidates(Path, Arena, Solver, DomainOf, Hint,
                                     Strategy, Rng, 1, SitePriorities, Sampler);
  SolveOutcome Outcome;
  Outcome.SolverCalls = Set.SolverCalls;
  if (!Set.Candidates.empty()) {
    Outcome = std::move(Set.Candidates.front());
    Outcome.SolverCalls = Set.SolverCalls;
  }
  Outcome.TheoryMisled = Set.TheoryMisled;
  return Outcome;
}
