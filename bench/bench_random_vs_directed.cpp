//===- bench_random_vs_directed.cpp - Reproduces §1/§2 micro-claims --------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating comparisons:
//  - §1: the then-branch of `if (x == 10)` has one chance in 2^32 under
//    random testing, but "can be viewed as 0.5 with DART".
//  - §2.1: the h/f example — random testing is unlikely to ever find the
//    abort; DART's directed search finds it on the second run.
//  - §2.5: the foobar example with the nonlinear condition — DART finds
//    the reachable abort with high probability despite the solver knowing
//    nothing about x*x*x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dart;
using namespace dart::bench;

namespace {

const char *EqualityFilter = "void check(int x) { if (x == 10) abort(); }";

const char *IntroExample = R"(
  int f(int x) { return 2 * x; }
  int h(int x, int y) {
    if (x != y)
      if (f(x) == x + 10)
        abort();
    return 0;
  }
)";

const char *FoobarExample = R"(
  void foobar(char x, int y) {
    if (x * x * x > 0) {
      if (x > 0 && y == 10)
        abort();
    } else {
      if (x > 0 && y == 20)
        abort();
    }
  }
)";

void printTable() {
  printHeader("Sections 1, 2.1, 2.5 - random vs. directed search");
  std::printf("%-28s %-26s %s\n", "program", "directed (runs to bug)",
              "random (capped at 100000)");

  struct Row {
    const char *Name;
    const char *Source;
    const char *Toplevel;
  } Rows[] = {
      {"if (x == 10) filter", EqualityFilter, "check"},
      {"h/f intro example", IntroExample, "h"},
      {"foobar (nonlinear)", FoobarExample, "foobar"},
  };

  for (const Row &R : Rows) {
    auto D = compileOrDie(R.Source, R.Name);
    DartReport Directed = session(*D, R.Toplevel, 1, 100000, 2005);
    DartReport Random =
        session(*D, R.Toplevel, 1, 100000, 7, /*RandomOnly=*/true);
    char DirectedCell[48], RandomCell[48];
    std::snprintf(DirectedCell, sizeof(DirectedCell), "%s in %u runs",
                  Directed.BugFound ? "bug" : "no bug", Directed.Runs);
    std::snprintf(RandomCell, sizeof(RandomCell), "%s in %u runs",
                  Random.BugFound ? "bug" : "no bug", Random.Runs);
    std::printf("%-28s %-26s %s\n", R.Name, DirectedCell, RandomCell);
  }
  std::printf("\npaper: random reach-probability of x==10 is 2^-32 per run;"
              "\n       DART reaches it by flipping the branch constraint "
              "(~run 2).\n");

  // The "probability 0.5" claim: across seeds, DART's first flip succeeds.
  unsigned FoundIn2 = 0;
  const unsigned Trials = 50;
  auto D = compileOrDie(EqualityFilter, "filter");
  for (uint64_t Seed = 1; Seed <= Trials; ++Seed) {
    DartReport R = session(*D, "check", 1, 10, Seed);
    if (R.BugFound && R.Runs <= 2)
      ++FoundIn2;
  }
  std::printf("\nacross %u seeds: found within 2 runs in %u cases "
              "(paper: branch probability ~0.5 -> here deterministic,\n"
              "the equality constraint is always solvable)\n",
              Trials, FoundIn2);
}

void BM_DirectedEqualityFilter(benchmark::State &State) {
  auto D = compileOrDie(EqualityFilter, "filter");
  for (auto _ : State) {
    DartReport R = session(*D, "check", 1, 10);
    benchmark::DoNotOptimize(R.BugFound);
  }
}
BENCHMARK(BM_DirectedEqualityFilter);

void BM_DirectedIntroExample(benchmark::State &State) {
  auto D = compileOrDie(IntroExample, "intro");
  for (auto _ : State) {
    DartReport R = session(*D, "h", 1, 10);
    benchmark::DoNotOptimize(R.BugFound);
  }
}
BENCHMARK(BM_DirectedIntroExample);

void BM_Random1000RunsBaseline(benchmark::State &State) {
  auto D = compileOrDie(EqualityFilter, "filter");
  for (auto _ : State) {
    DartReport R = session(*D, "check", 1, 1000, 3, true);
    benchmark::DoNotOptimize(R.Runs);
  }
}
BENCHMARK(BM_Random1000RunsBaseline);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
