//===- bench_osip.cpp - Reproduces paper §4.3 (oSIP audit) -----------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper §4.3: DART treated each of oSIP 2.0.9's ~600 externally visible
// functions as a toplevel with a 1000-run budget and "found a way to crash
// 65% of them"; most crashes were NULL-pointer dereferences of unchecked
// arguments. It also found a remotely-triggerable parser crash: a large
// message makes an internal allocation fail and the unchecked NULL
// propagates into a dereference (fixed in oSIP 2.2.0).
//
// Our substitute is miniSIP (src/workloads/MiniSip.cpp): ~90 exported
// functions with the same defect idioms. This harness audits every
// function and reproduces both the crash-rate shape and the parser attack.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <map>

using namespace dart;
using namespace dart::bench;

namespace {

struct AuditResult {
  unsigned Total = 0;
  unsigned Crashed = 0;
  std::map<std::string, unsigned> ByKind;
  std::vector<std::string> CrashedNames;
};

AuditResult auditLibrary(const Dart &D, unsigned MaxRunsPerFunction) {
  AuditResult Result;
  for (const std::string &Fn : D.definedFunctions()) {
    ++Result.Total;
    DartOptions Opts;
    Opts.ToplevelName = Fn;
    Opts.MaxRuns = MaxRunsPerFunction;
    Opts.Seed = 2005;
    // Keep each attempt snappy; crashes here are shallow.
    Opts.Interp.MaxSteps = 1u << 18;
    DartReport R = D.run(Opts);
    if (!R.BugFound)
      continue;
    ++Result.Crashed;
    Result.CrashedNames.push_back(Fn);
    ++Result.ByKind[R.Bugs[0].Error.toString().substr(
        0, R.Bugs[0].Error.toString().find(" at "))];
  }
  return Result;
}

void printAuditTable() {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  printHeader("Section 4.3 - library audit (miniSIP, the oSIP substitute)");
  std::printf("paper: oSIP 2.0.9, ~600 exported functions, <= 1000 runs "
              "each -> 65%% crashed\n\n");
  AuditResult R = auditLibrary(*D, 1000);
  std::printf("miniSIP: %u exported functions, <= 1000 runs each -> "
              "%u crashed (%.0f%%)\n",
              R.Total, R.Crashed, 100.0 * R.Crashed / R.Total);
  std::printf("\ncrash breakdown:\n");
  for (const auto &[Kind, Count] : R.ByKind)
    std::printf("  %-45s %u\n", Kind.c_str(), Count);
}

void printParserAttack() {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  printHeader("Section 4.3 - the parser attack (unchecked allocation)");
  // Model the paper's setup: the allocator can serve at most ~2.5 MB of
  // stack-like scratch space; a larger incoming message makes malloc fail
  // and sip_receive dereferences the unchecked NULL.
  for (const char *Fn : {"sip_receive", "sip_receive_fixed"}) {
    DartOptions Opts;
    Opts.ToplevelName = Fn;
    Opts.MaxRuns = 200;
    Opts.Seed = 11;
    Opts.Interp.HeapLimitBytes = 5u << 19; // ~2.5 MB, like cygwin's stack
    DartReport R = D->run(Opts);
    std::printf("%-18s: %s", Fn,
                R.BugFound ? R.Bugs[0].toString().c_str()
                           : "no crash found");
    std::printf("\n");
  }
  std::printf("(paper: any SIP message larger than ~2.5 MB kills the oSIP "
              "parser;\n fixed in oSIP 2.2.0 by checking the allocation — "
              "sip_receive_fixed)\n");
}

void BM_AuditOneCrashingFunction(benchmark::State &State) {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "sip_uri_get_host";
    Opts.MaxRuns = 1000;
    DartReport R = D->run(Opts);
    State.counters["runs_to_crash"] = R.Runs;
  }
}
BENCHMARK(BM_AuditOneCrashingFunction);

void BM_AuditOneSafeFunction(benchmark::State &State) {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "sip_status_class";
    Opts.MaxRuns = 100;
    DartReport R = D->run(Opts);
    benchmark::DoNotOptimize(R.BugFound);
  }
}
BENCHMARK(BM_AuditOneSafeFunction);

} // namespace

int main(int argc, char **argv) {
  printAuditTable();
  printParserAttack();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
